package packet

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"bgpbench/internal/netaddr"
)

func testHeader() Header {
	return Header{
		TOS:      0,
		ID:       0x1234,
		TTL:      64,
		Protocol: 17,
		Src:      netaddr.MustParseAddr("10.0.0.1"),
		Dst:      netaddr.MustParseAddr("192.0.2.5"),
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	payload := []byte("hello, router")
	b := Marshal(testHeader(), payload)
	h, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != netaddr.MustParseAddr("10.0.0.1") || h.Dst != netaddr.MustParseAddr("192.0.2.5") {
		t.Fatalf("addresses wrong: %v", h)
	}
	if h.TTL != 64 || h.Protocol != 17 || h.ID != 0x1234 {
		t.Fatalf("fields wrong: %+v", h)
	}
	if h.TotalLen != MinHeaderLen+len(payload) {
		t.Fatalf("TotalLen = %d", h.TotalLen)
	}
}

func TestMarshalWithOptions(t *testing.T) {
	h := testHeader()
	h.Options = []byte{0x94, 0x04, 0, 0} // router alert, padded to 4 bytes
	b := Marshal(h, nil)
	got, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.HeaderLen() != 24 || len(got.Options) != 4 {
		t.Fatalf("options round trip: %+v", got)
	}
}

func TestChecksumValidatesZero(t *testing.T) {
	// A correct header checksums to zero over the full header.
	b := Marshal(testHeader(), nil)
	if Checksum(b[:MinHeaderLen]) != 0 {
		t.Fatal("checksum over valid header != 0")
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers are implicitly zero-padded.
	if Checksum([]byte{0x12}) != ^uint16(0x1200) {
		t.Fatalf("odd checksum = %#x", Checksum([]byte{0x12}))
	}
}

func TestParseHeaderErrors(t *testing.T) {
	good := Marshal(testHeader(), []byte("x"))

	if _, err := ParseHeader(good[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}

	bad := append([]byte(nil), good...)
	bad[0] = 6<<4 | 5
	if _, err := ParseHeader(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[0] = 4<<4 | 4
	if _, err := ParseHeader(bad); !errors.Is(err, ErrBadIHL) {
		t.Errorf("ihl: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[8] ^= 0xFF // corrupt TTL without fixing checksum
	if _, err := ParseHeader(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("checksum: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[2], bad[3] = 0xFF, 0xFF // total length beyond buffer
	// Fix checksum so the total-length check is what fires.
	bad[10], bad[11] = 0, 0
	cs := Checksum(bad[:MinHeaderLen])
	bad[10], bad[11] = byte(cs>>8), byte(cs)
	if _, err := ParseHeader(bad); !errors.Is(err, ErrBadTotalLen) {
		t.Errorf("total length: %v", err)
	}
}

func TestDecrementTTL(t *testing.T) {
	b := Marshal(testHeader(), []byte("payload"))
	if err := DecrementTTL(b); err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(b) // re-validates the checksum
	if err != nil {
		t.Fatalf("checksum invalid after decrement: %v", err)
	}
	if h.TTL != 63 {
		t.Fatalf("TTL = %d, want 63", h.TTL)
	}
}

func TestDecrementTTLExpired(t *testing.T) {
	h := testHeader()
	h.TTL = 1
	b := Marshal(h, nil)
	if err := DecrementTTL(b); !errors.Is(err, ErrTTLExpired) {
		t.Fatalf("TTL=1: %v", err)
	}
	h.TTL = 0
	b = Marshal(h, nil)
	if err := DecrementTTL(b); !errors.Is(err, ErrTTLExpired) {
		t.Fatalf("TTL=0: %v", err)
	}
}

// TestIncrementalChecksumEqualsFull is the RFC 1624 property: patching the
// checksum incrementally gives the same result as recomputing it in full.
func TestIncrementalChecksumEqualsFull(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		h := Header{
			TOS:      uint8(r.Intn(256)),
			ID:       uint16(r.Intn(65536)),
			TTL:      uint8(2 + r.Intn(254)),
			Protocol: uint8(r.Intn(256)),
			Src:      netaddr.AddrFromV4(r.Uint32()),
			Dst:      netaddr.AddrFromV4(r.Uint32()),
		}
		b := Marshal(h, nil)
		if err := DecrementTTL(b); err != nil {
			t.Fatal(err)
		}
		// Full recomputation over the patched header.
		incr := uint16(b[10])<<8 | uint16(b[11])
		b[10], b[11] = 0, 0
		full := Checksum(b[:MinHeaderLen])
		if incr != full {
			t.Fatalf("iteration %d: incremental %#x != full %#x", i, incr, full)
		}
		b[10], b[11] = byte(full>>8), byte(full)
	}
}

func TestIncrementalChecksumProperty(t *testing.T) {
	// For arbitrary single-word changes, incremental update must agree with
	// a recomputed checksum of a 2-word pseudo buffer.
	f := func(w1, w2, newW2 uint16) bool {
		buf := []byte{byte(w1 >> 8), byte(w1), byte(w2 >> 8), byte(w2)}
		old := Checksum(buf)
		buf[2], buf[3] = byte(newW2>>8), byte(newW2)
		full := Checksum(buf)
		incr := IncrementalChecksum(old, w2, newW2)
		// 0x0000 and 0xFFFF are equivalent representations of checksum zero
		// in one's complement; normalize before comparing.
		norm := func(x uint16) uint16 {
			if x == 0xFFFF {
				return 0
			}
			return x
		}
		return norm(full) == norm(incr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDstFastPath(t *testing.T) {
	b := Marshal(testHeader(), nil)
	if Dst(b) != netaddr.MustParseAddr("192.0.2.5") {
		t.Fatalf("Dst = %v", Dst(b))
	}
}
