// Package packet provides IPv4 packet synthesis and parsing for the data
// plane: header construction, validation, the Internet checksum, and the
// incremental checksum update (RFC 1624) used when a forwarder decrements
// the TTL. The benchmark's cross-traffic generator and the RFC 1812
// forwarding engine are built on it.
package packet

import (
	"errors"
	"fmt"

	"bgpbench/internal/netaddr"
)

// MinHeaderLen is the length of an IPv4 header without options.
const MinHeaderLen = 20

// Common errors returned by validation; forwarding code switches on these
// to decide whether to drop or reply with an ICMP-equivalent action.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: not IPv4")
	ErrBadIHL      = errors.New("packet: bad header length")
	ErrBadChecksum = errors.New("packet: header checksum mismatch")
	ErrBadTotalLen = errors.New("packet: bad total length")
	ErrTTLExpired  = errors.New("packet: TTL expired")
)

// Header is a parsed IPv4 header (options preserved as raw bytes).
type Header struct {
	IHL      int // header length in 32-bit words (5..15)
	TOS      uint8
	TotalLen int
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      netaddr.Addr
	Dst      netaddr.Addr
	Options  []byte
}

// HeaderLen returns the header length in bytes.
func (h Header) HeaderLen() int { return h.IHL * 4 }

// String summarizes the header for diagnostics.
func (h Header) String() string {
	return fmt.Sprintf("IPv4 %s -> %s ttl=%d proto=%d len=%d", h.Src, h.Dst, h.TTL, h.Protocol, h.TotalLen)
}

// Checksum computes the Internet checksum (RFC 1071) over b, which is
// padded with a zero byte if its length is odd.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// IncrementalChecksum updates checksum old for a 16-bit field change from
// oldVal to newVal, per RFC 1624 equation 3: HC' = ~(~HC + ~m + m').
func IncrementalChecksum(old, oldVal, newVal uint16) uint16 {
	sum := uint32(^old&0xFFFF) + uint32(^oldVal&0xFFFF) + uint32(newVal)
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// Marshal renders the header followed by payload. The checksum field is
// computed; h.Checksum is ignored. TotalLen is derived from the payload.
func Marshal(h Header, payload []byte) []byte {
	if h.IHL == 0 {
		h.IHL = 5 + (len(h.Options)+3)/4
	}
	hl := h.IHL * 4
	total := hl + len(payload)
	b := make([]byte, total)
	b[0] = 4<<4 | byte(h.IHL)
	b[1] = h.TOS
	b[2], b[3] = byte(total>>8), byte(total)
	b[4], b[5] = byte(h.ID>>8), byte(h.ID)
	ff := uint16(h.Flags)<<13 | h.FragOff&0x1FFF
	b[6], b[7] = byte(ff>>8), byte(ff)
	b[8] = h.TTL
	b[9] = h.Protocol
	copy(b[12:16], h.Src.Bytes())
	copy(b[16:20], h.Dst.Bytes())
	copy(b[20:hl], h.Options)
	cs := Checksum(b[:hl])
	b[10], b[11] = byte(cs>>8), byte(cs)
	copy(b[hl:], payload)
	return b
}

// ParseHeader decodes and validates an IPv4 header in place. It checks
// version, IHL, total length and the header checksum (the RFC 1812
// receive-side validations); TTL handling is the forwarder's job.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < MinHeaderLen {
		return Header{}, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return Header{}, ErrBadVersion
	}
	ihl := int(b[0] & 0x0F)
	if ihl < 5 {
		return Header{}, ErrBadIHL
	}
	hl := ihl * 4
	if len(b) < hl {
		return Header{}, ErrTruncated
	}
	if Checksum(b[:hl]) != 0 {
		return Header{}, ErrBadChecksum
	}
	total := int(b[2])<<8 | int(b[3])
	if total < hl || total > len(b) {
		return Header{}, ErrBadTotalLen
	}
	h := Header{
		IHL:      ihl,
		TOS:      b[1],
		TotalLen: total,
		ID:       uint16(b[4])<<8 | uint16(b[5]),
		Flags:    b[6] >> 5,
		FragOff:  (uint16(b[6])<<8 | uint16(b[7])) & 0x1FFF,
		TTL:      b[8],
		Protocol: b[9],
		Checksum: uint16(b[10])<<8 | uint16(b[11]),
		Src:      netaddr.AddrFromBytes(b[12:16]),
		Dst:      netaddr.AddrFromBytes(b[16:20]),
	}
	if hl > MinHeaderLen {
		h.Options = append([]byte(nil), b[MinHeaderLen:hl]...)
	}
	return h, nil
}

// DecrementTTL performs the RFC 1812 TTL step directly on the packet
// bytes: it decrements the TTL and patches the checksum incrementally
// (RFC 1624). It returns ErrTTLExpired (leaving the packet unchanged) when
// the TTL is already 0 or would reach 0.
func DecrementTTL(b []byte) error {
	if len(b) < MinHeaderLen {
		return ErrTruncated
	}
	if b[8] <= 1 {
		return ErrTTLExpired
	}
	// TTL shares its 16-bit checksum word with the protocol field.
	oldWord := uint16(b[8])<<8 | uint16(b[9])
	b[8]--
	newWord := uint16(b[8])<<8 | uint16(b[9])
	oldCS := uint16(b[10])<<8 | uint16(b[11])
	newCS := IncrementalChecksum(oldCS, oldWord, newWord)
	b[10], b[11] = byte(newCS>>8), byte(newCS)
	return nil
}

// Dst extracts the destination address without a full parse; used on the
// fast path. The caller must have validated the length.
func Dst(b []byte) netaddr.Addr { return netaddr.AddrFromBytes(b[16:20]) }
