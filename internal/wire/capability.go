package wire

import "fmt"

// Optional parameter types in the OPEN message (RFC 4271 section 4.2 /
// RFC 5492).
const (
	OptParamCapabilities = 2
)

// Capability codes (IANA BGP capability registry; the ones relevant to a
// 2007-era speaker).
const (
	CapMultiprotocol   = 1  // RFC 2858
	CapRouteRefresh    = 2  // RFC 2918
	CapGracefulRestart = 64 // RFC 4724
	CapFourOctetAS     = 65 // RFC 4893
)

// Capability is one advertised capability: a code and an opaque value.
type Capability struct {
	Code  uint8
	Value []byte
}

// String names common capabilities.
func (c Capability) String() string {
	switch c.Code {
	case CapMultiprotocol:
		return "multiprotocol"
	case CapRouteRefresh:
		return "route-refresh"
	case CapGracefulRestart:
		return "graceful-restart"
	case CapFourOctetAS:
		return "4-octet-as"
	}
	return fmt.Sprintf("capability(%d)", c.Code)
}

// MultiprotocolIPv4Unicast is the conventional MP capability value for
// AFI 1 (IPv4), SAFI 1 (unicast).
func MultiprotocolIPv4Unicast() Capability {
	return Capability{Code: CapMultiprotocol, Value: []byte{0, byte(AFIIPv4), 0, SAFIUnicast}}
}

// MultiprotocolIPv6Unicast is the RFC 4760 MP capability value for AFI 2
// (IPv6), SAFI 1 (unicast).
func MultiprotocolIPv6Unicast() Capability {
	return Capability{Code: CapMultiprotocol, Value: []byte{0, byte(AFIIPv6), 0, SAFIUnicast}}
}

// RouteRefreshCapability is the empty-bodied route-refresh capability.
func RouteRefreshCapability() Capability {
	return Capability{Code: CapRouteRefresh}
}

// FourOctetASCapability advertises the speaker's true 4-octet AS number
// (RFC 6793).
func FourOctetASCapability(as uint32) Capability {
	return Capability{Code: CapFourOctetAS, Value: []byte{byte(as >> 24), byte(as >> 16), byte(as >> 8), byte(as)}}
}

// MultiprotocolAFIs returns the set of unicast AFIs advertised by MP
// capabilities in the list. A speaker that advertises no MP capability is
// an IPv4-unicast-only speaker by RFC 4760 convention, so the result
// includes AFI 1 in that case.
func MultiprotocolAFIs(caps []Capability) map[uint16]bool {
	out := map[uint16]bool{}
	sawMP := false
	for _, c := range caps {
		if c.Code != CapMultiprotocol || len(c.Value) != 4 {
			continue
		}
		sawMP = true
		if c.Value[3] == SAFIUnicast {
			out[uint16(c.Value[0])<<8|uint16(c.Value[1])] = true
		}
	}
	if !sawMP {
		out[AFIIPv4] = true
	}
	return out
}

// MarshalCapabilities encodes capabilities as the OPEN message's optional
// parameter block (one capabilities parameter holding all of them), ready
// to assign to Open.OptParams.
func MarshalCapabilities(caps []Capability) ([]byte, error) {
	if len(caps) == 0 {
		return nil, nil
	}
	var body []byte
	for _, c := range caps {
		if len(c.Value) > 255 {
			return nil, fmt.Errorf("wire: capability %d value too long (%d bytes)", c.Code, len(c.Value))
		}
		body = append(body, c.Code, byte(len(c.Value)))
		body = append(body, c.Value...)
	}
	if len(body) > 255 {
		return nil, fmt.Errorf("wire: capabilities block too long (%d bytes)", len(body))
	}
	return append([]byte{OptParamCapabilities, byte(len(body))}, body...), nil
}

// ParseCapabilities extracts the capabilities advertised in an OPEN
// message's optional parameters. Unknown optional parameter types are
// skipped (per RFC 5492 they would normally trigger a NOTIFICATION, but a
// benchmark speaker is deliberately permissive); malformed encodings
// return an error with the RFC 4271 OPEN error subcode.
func ParseCapabilities(optParams []byte) ([]Capability, error) {
	var out []Capability
	b := optParams
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, notifyErrf(ErrCodeOpen, ErrSubBadOptParam, nil, "truncated optional parameter header")
		}
		typ, plen := b[0], int(b[1])
		if len(b) < 2+plen {
			return nil, notifyErrf(ErrCodeOpen, ErrSubBadOptParam, nil, "optional parameter overruns block")
		}
		val := b[2 : 2+plen]
		if typ == OptParamCapabilities {
			for len(val) > 0 {
				if len(val) < 2 {
					return nil, notifyErrf(ErrCodeOpen, ErrSubBadOptParam, nil, "truncated capability header")
				}
				code, clen := val[0], int(val[1])
				if len(val) < 2+clen {
					return nil, notifyErrf(ErrCodeOpen, ErrSubBadOptParam, nil, "capability overruns parameter")
				}
				cap := Capability{Code: code}
				if clen > 0 {
					cap.Value = append([]byte(nil), val[2:2+clen]...)
				}
				out = append(out, cap)
				val = val[2+clen:]
			}
		}
		b = b[2+plen:]
	}
	return out, nil
}

// HasCapability reports whether the list advertises the given code.
func HasCapability(caps []Capability, code uint8) bool {
	for _, c := range caps {
		if c.Code == code {
			return true
		}
	}
	return false
}
