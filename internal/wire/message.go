package wire

import (
	"fmt"

	"bgpbench/internal/netaddr"
)

// Message is any BGP message that can be marshalled onto the wire.
type Message interface {
	// Type returns the BGP message type code.
	Type() MsgType
	// AppendBody appends the message body (everything after the 19-byte
	// header) to dst and returns the extended slice.
	AppendBody(dst []byte) []byte
}

// Marshal renders a complete BGP message: marker, length, type, body.
func Marshal(m Message) ([]byte, error) {
	return AppendMessage(make([]byte, 0, HeaderLen+64), m)
}

// AppendMessage appends the complete wire encoding of m (marker, length,
// type, body) to dst and returns the extended slice. Senders that encode
// many messages reuse one buffer across calls instead of allocating per
// message as Marshal does. UPDATEs are encoded in canonical 2-octet-AS
// mode; use AppendMessageMode for a session that negotiated 4-octet ASNs.
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	return AppendMessageMode(dst, m, false)
}

// AppendMessageMode is AppendMessage with the session's AS encoding mode:
// when as4 is true, UPDATE AS_PATH/AGGREGATOR attributes are written with
// 4-octet ASNs and no AS4_PATH shadow attribute (RFC 6793).
func AppendMessageMode(dst []byte, m Message, as4 bool) ([]byte, error) {
	start := len(dst)
	for i := 0; i < 16; i++ {
		dst = append(dst, 0xFF)
	}
	dst = append(dst, 0, 0, byte(m.Type()))
	if u, ok := m.(Update); ok {
		dst = u.appendBodyMode(dst, as4)
	} else {
		dst = m.AppendBody(dst)
	}
	n := len(dst) - start
	if n > MaxMsgLen {
		return dst[:start], fmt.Errorf("wire: %s message length %d exceeds maximum %d", m.Type(), n, MaxMsgLen)
	}
	dst[start+16] = byte(n >> 8)
	dst[start+17] = byte(n)
	return dst, nil
}

// ParseHeader validates a 19-byte BGP header and returns the total message
// length and type.
func ParseHeader(h []byte) (length int, typ MsgType, err error) {
	if len(h) < HeaderLen {
		return 0, 0, notifyErrf(ErrCodeHeader, ErrSubBadLength, nil, "short header (%d bytes)", len(h))
	}
	for i := 0; i < 16; i++ {
		if h[i] != 0xFF {
			return 0, 0, notifyErrf(ErrCodeHeader, ErrSubSyncLost, nil, "connection not synchronized (marker byte %d = %#x)", i, h[i])
		}
	}
	length = int(h[16])<<8 | int(h[17])
	typ = MsgType(h[18])
	if length < HeaderLen || length > MaxMsgLen {
		return 0, 0, notifyErrf(ErrCodeHeader, ErrSubBadLength, h[16:18], "bad message length %d", length)
	}
	switch typ {
	case MsgOpen:
		if length < MinOpenLen {
			return 0, 0, notifyErrf(ErrCodeHeader, ErrSubBadLength, h[16:18], "OPEN length %d < %d", length, MinOpenLen)
		}
	case MsgUpdate:
		if length < HeaderLen+4 {
			return 0, 0, notifyErrf(ErrCodeHeader, ErrSubBadLength, h[16:18], "UPDATE length %d too small", length)
		}
	case MsgNotification:
		if length < HeaderLen+2 {
			return 0, 0, notifyErrf(ErrCodeHeader, ErrSubBadLength, h[16:18], "NOTIFICATION length %d too small", length)
		}
	case MsgKeepalive:
		if length != HeaderLen {
			return 0, 0, notifyErrf(ErrCodeHeader, ErrSubBadLength, h[16:18], "KEEPALIVE length %d != %d", length, HeaderLen)
		}
	case MsgRouteRefresh:
		if length != HeaderLen+4 {
			return 0, 0, notifyErrf(ErrCodeHeader, ErrSubBadLength, h[16:18], "ROUTE-REFRESH length %d != %d", length, HeaderLen+4)
		}
	default:
		return 0, 0, notifyErrf(ErrCodeHeader, ErrSubBadMsgType, []byte{byte(typ)}, "bad message type %d", typ)
	}
	return length, typ, nil
}

// ParseBody decodes a message body of the given type. body excludes the
// 19-byte header. UPDATEs are decoded in 2-octet-AS mode; use
// ParseBodyMode for a session that negotiated 4-octet ASNs.
func ParseBody(typ MsgType, body []byte) (Message, error) {
	return ParseBodyMode(typ, body, false)
}

// ParseBodyMode is ParseBody with the session's AS encoding mode.
func ParseBodyMode(typ MsgType, body []byte, as4 bool) (Message, error) {
	switch typ {
	case MsgOpen:
		return parseOpen(body)
	case MsgUpdate:
		return parseUpdate(body, as4)
	case MsgNotification:
		return parseNotification(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, notifyErrf(ErrCodeHeader, ErrSubBadLength, nil, "KEEPALIVE with body")
		}
		return Keepalive{}, nil
	case MsgRouteRefresh:
		return parseRouteRefresh(body)
	}
	return nil, notifyErrf(ErrCodeHeader, ErrSubBadMsgType, []byte{byte(typ)}, "bad message type %d", typ)
}

// Parse decodes a complete message (header + body) from b.
func Parse(b []byte) (Message, error) {
	length, typ, err := ParseHeader(b)
	if err != nil {
		return nil, err
	}
	if len(b) != length {
		return nil, notifyErrf(ErrCodeHeader, ErrSubBadLength, nil, "buffer length %d != header length %d", len(b), length)
	}
	return ParseBody(typ, b[HeaderLen:])
}

// Open is the BGP OPEN message (RFC 4271 section 4.2). AS is the true
// (4-octet) AS number; the 2-octet wire field carries AS_TRANS when it
// does not fit (RFC 6793), and the real value travels in the 4-octet-AS
// capability.
type Open struct {
	Version  uint8
	AS       uint32
	HoldTime uint16 // seconds; 0 disables keepalives, otherwise must be >= 3
	ID       netaddr.Addr
	// OptParams carries raw optional parameters (e.g. capabilities,
	// RFC 5492). They are preserved but not interpreted.
	OptParams []byte
}

// NewOpen builds an OPEN with the protocol version filled in.
func NewOpen(as uint32, holdTime uint16, id netaddr.Addr) Open {
	return Open{Version: Version, AS: as, HoldTime: holdTime, ID: id}
}

// Type returns MsgOpen.
func (Open) Type() MsgType { return MsgOpen }

// AppendBody appends the OPEN body.
func (o Open) AppendBody(dst []byte) []byte {
	was := o.AS
	if was > 0xFFFF {
		was = ASTrans
	}
	dst = append(dst, o.Version, byte(was>>8), byte(was), byte(o.HoldTime>>8), byte(o.HoldTime))
	dst = o.ID.AppendBytes(dst)
	dst = append(dst, byte(len(o.OptParams)))
	return append(dst, o.OptParams...)
}

// Caps parses the capabilities advertised in the optional parameters,
// returning nil when the block is absent or malformed (OPEN validation
// reports malformed blocks separately).
func (o Open) Caps() []Capability {
	caps, err := ParseCapabilities(o.OptParams)
	if err != nil {
		return nil
	}
	return caps
}

// FourOctetAS returns the AS number advertised in the 4-octet-AS
// capability (RFC 6793) and whether the capability was present.
func (o Open) FourOctetAS() (uint32, bool) {
	for _, c := range o.Caps() {
		if c.Code == CapFourOctetAS && len(c.Value) == 4 {
			return be32(c.Value), true
		}
	}
	return 0, false
}

// EffectiveAS returns the peer's true AS number: the 4-octet-AS
// capability value when advertised, otherwise the 2-octet field.
func (o Open) EffectiveAS() uint32 {
	if as, ok := o.FourOctetAS(); ok {
		return as
	}
	return o.AS
}

func parseOpen(b []byte) (Message, error) {
	if len(b) < MinOpenLen-HeaderLen {
		return nil, notifyErrf(ErrCodeOpen, ErrSubBadOptParam, nil, "short OPEN body (%d bytes)", len(b))
	}
	o := Open{
		Version:  b[0],
		AS:       uint32(b[1])<<8 | uint32(b[2]),
		HoldTime: uint16(b[3])<<8 | uint16(b[4]),
		ID:       netaddr.AddrFromBytes(b[5:9]),
	}
	optLen := int(b[9])
	if len(b) != 10+optLen {
		return nil, notifyErrf(ErrCodeOpen, ErrSubBadOptParam, nil, "OPEN optional parameter length %d mismatches body", optLen)
	}
	if o.Version != Version {
		return nil, notifyErrf(ErrCodeOpen, ErrSubBadVersion, []byte{0, Version}, "unsupported version %d", o.Version)
	}
	if o.HoldTime == 1 || o.HoldTime == 2 {
		return nil, notifyErrf(ErrCodeOpen, ErrSubBadHoldTime, nil, "hold time %d (must be 0 or >= 3)", o.HoldTime)
	}
	if o.ID.IsZero() {
		return nil, notifyErrf(ErrCodeOpen, ErrSubBadBGPID, nil, "zero BGP identifier")
	}
	if optLen > 0 {
		o.OptParams = append([]byte(nil), b[10:10+optLen]...)
	}
	return o, nil
}

// Update is the BGP UPDATE message (RFC 4271 section 4.3). Withdrawn and
// NLRI may mix address families: IPv4 prefixes use the classic top-level
// fields on the wire, IPv6 prefixes are folded into MP_REACH_NLRI /
// MP_UNREACH_NLRI attributes (RFC 4760) on encode and unfolded on parse.
type Update struct {
	Withdrawn []netaddr.Prefix
	Attrs     PathAttrs
	NLRI      []netaddr.Prefix
}

// Type returns MsgUpdate.
func (Update) Type() MsgType { return MsgUpdate }

// splitFamily partitions prefixes into IPv4 (classic encoding) and
// non-IPv4 (MP attribute encoding). The common all-v4 case returns the
// input slice unchanged with a nil remainder.
func splitFamily(ps []netaddr.Prefix) (v4, mp []netaddr.Prefix) {
	allV4 := true
	for _, p := range ps {
		if !p.Addr().Is4() {
			allV4 = false
			break
		}
	}
	if allV4 {
		return ps, nil
	}
	for _, p := range ps {
		if p.Addr().Is4() {
			v4 = append(v4, p)
		} else {
			mp = append(mp, p)
		}
	}
	return v4, mp
}

// AppendBody appends the UPDATE body in canonical 2-octet-AS mode.
func (u Update) AppendBody(dst []byte) []byte {
	return u.appendBodyMode(dst, false)
}

func (u Update) appendBodyMode(dst []byte, as4 bool) []byte {
	v4NLRI, mpNLRI := splitFamily(u.NLRI)
	v4Wdr, mpWdr := splitFamily(u.Withdrawn)
	// Withdrawn routes (IPv4 only; IPv6 withdrawals ride MP_UNREACH_NLRI).
	wStart := len(dst)
	dst = append(dst, 0, 0)
	for _, p := range v4Wdr {
		dst = p.AppendWire(dst)
	}
	wLen := len(dst) - wStart - 2
	dst[wStart] = byte(wLen >> 8)
	dst[wStart+1] = byte(wLen)
	// Path attributes: present when the update announces something,
	// explicitly carries attributes, or needs MP attributes.
	aStart := len(dst)
	dst = append(dst, 0, 0)
	if len(u.NLRI) > 0 || len(mpWdr) > 0 || !u.Attrs.Equal(PathAttrs{}) {
		dst = u.Attrs.appendWireMode(dst, as4, mpNLRI, mpWdr)
	}
	aLen := len(dst) - aStart - 2
	dst[aStart] = byte(aLen >> 8)
	dst[aStart+1] = byte(aLen)
	for _, p := range v4NLRI {
		dst = p.AppendWire(dst)
	}
	return dst
}

func parseUpdate(b []byte, as4 bool) (Message, error) {
	if len(b) < 4 {
		return nil, notifyErrf(ErrCodeUpdate, ErrSubMalformedAttrList, nil, "short UPDATE body")
	}
	wLen := int(b[0])<<8 | int(b[1])
	if len(b) < 2+wLen+2 {
		return nil, notifyErrf(ErrCodeUpdate, ErrSubMalformedAttrList, nil, "withdrawn routes length %d overruns body", wLen)
	}
	var u Update
	wb := b[2 : 2+wLen]
	for len(wb) > 0 {
		p, n, err := netaddr.PrefixFromWire(wb)
		if err != nil {
			return nil, notifyErrf(ErrCodeUpdate, ErrSubInvalidNetwork, nil, "withdrawn route: %v", err)
		}
		u.Withdrawn = append(u.Withdrawn, p)
		wb = wb[n:]
	}
	rest := b[2+wLen:]
	aLen := int(rest[0])<<8 | int(rest[1])
	if len(rest) < 2+aLen {
		return nil, notifyErrf(ErrCodeUpdate, ErrSubMalformedAttrList, nil, "attribute length %d overruns body", aLen)
	}
	var mp mpAttrData
	if aLen > 0 {
		attrs, mpd, err := parseAttrsMode(rest[2:2+aLen], as4)
		if err != nil {
			return nil, err
		}
		u.Attrs = attrs
		mp = mpd
	}
	nb := rest[2+aLen:]
	for len(nb) > 0 {
		p, n, err := netaddr.PrefixFromWire(nb)
		if err != nil {
			return nil, notifyErrf(ErrCodeUpdate, ErrSubInvalidNetwork, nil, "NLRI: %v", err)
		}
		u.NLRI = append(u.NLRI, p)
		nb = nb[n:]
	}
	// Unfold the MP attribute payload: announced prefixes join NLRI, MP
	// withdrawals join Withdrawn, and the MP next hop stands in when no
	// classic NEXT_HOP was present.
	u.NLRI = append(u.NLRI, mp.nlri...)
	u.Withdrawn = append(u.Withdrawn, mp.withdrawn...)
	if !u.Attrs.HasNextHop && mp.hasNextHop {
		u.Attrs.NextHop, u.Attrs.HasNextHop = mp.nextHop, true
	}
	if len(u.NLRI) > 0 {
		if err := u.Attrs.validateForAnnounce(); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// Notification is the BGP NOTIFICATION message (RFC 4271 section 4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// NotificationFrom converts a NotifyError into the message announcing it.
func NotificationFrom(e *NotifyError) Notification {
	return Notification{Code: e.Code, Subcode: e.Subcode, Data: e.Data}
}

// Type returns MsgNotification.
func (Notification) Type() MsgType { return MsgNotification }

// AppendBody appends the NOTIFICATION body.
func (n Notification) AppendBody(dst []byte) []byte {
	dst = append(dst, n.Code, n.Subcode)
	return append(dst, n.Data...)
}

// Error lets a received Notification be used directly as a session error.
func (n Notification) Error() string {
	return fmt.Sprintf("wire: NOTIFICATION code %d subcode %d", n.Code, n.Subcode)
}

func parseNotification(b []byte) (Message, error) {
	if len(b) < 2 {
		return nil, notifyErrf(ErrCodeHeader, ErrSubBadLength, nil, "short NOTIFICATION body")
	}
	n := Notification{Code: b[0], Subcode: b[1]}
	if len(b) > 2 {
		n.Data = append([]byte(nil), b[2:]...)
	}
	return n, nil
}

// RouteRefresh is the RFC 2918 ROUTE-REFRESH message: a request that the
// peer re-advertise its full Adj-RIB-Out for the address family.
type RouteRefresh struct {
	AFI  uint16
	SAFI uint8
}

// IPv4UnicastRefresh requests the conventional AFI 1 / SAFI 1 table.
func IPv4UnicastRefresh() RouteRefresh {
	return RouteRefresh{AFI: AFIIPv4, SAFI: SAFIUnicast}
}

// IPv6UnicastRefresh requests the AFI 2 / SAFI 1 table (RFC 4760).
func IPv6UnicastRefresh() RouteRefresh {
	return RouteRefresh{AFI: AFIIPv6, SAFI: SAFIUnicast}
}

// Type returns MsgRouteRefresh.
func (RouteRefresh) Type() MsgType { return MsgRouteRefresh }

// AppendBody appends AFI, reserved, SAFI.
func (r RouteRefresh) AppendBody(dst []byte) []byte {
	return append(dst, byte(r.AFI>>8), byte(r.AFI), 0, r.SAFI)
}

func parseRouteRefresh(b []byte) (Message, error) {
	if len(b) != 4 {
		return nil, notifyErrf(ErrCodeHeader, ErrSubBadLength, nil, "ROUTE-REFRESH body %d bytes", len(b))
	}
	return RouteRefresh{AFI: uint16(b[0])<<8 | uint16(b[1]), SAFI: b[3]}, nil
}

// Keepalive is the BGP KEEPALIVE message (header only).
type Keepalive struct{}

// Type returns MsgKeepalive.
func (Keepalive) Type() MsgType { return MsgKeepalive }

// AppendBody appends nothing: a KEEPALIVE is just the header.
func (Keepalive) AppendBody(dst []byte) []byte { return dst }
