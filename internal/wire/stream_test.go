package wire

import (
	"bytes"
	"io"
	"net"
	"testing"

	"bgpbench/internal/netaddr"
)

func TestReaderWriterPipe(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	msgs := []Message{
		NewOpen(65001, 90, netaddr.MustParseAddr("1.1.1.1")),
		Keepalive{},
		Update{
			Attrs: NewPathAttrs(OriginIGP, NewASPath(65001, 65002), netaddr.MustParseAddr("10.0.0.1")),
			NLRI:  []netaddr.Prefix{netaddr.MustParsePrefix("192.0.2.0/24")},
		},
		Notification{Code: ErrCodeCease},
	}
	for _, m := range msgs {
		if err := w.WriteMessage(m); err != nil {
			t.Fatal(err)
		}
	}

	r := NewReader(&buf)
	for i, want := range msgs {
		got, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("message %d: type %v, want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := r.ReadMessage(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWriterBuffered(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := w.WriteMessageBuffered(Keepalive{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := 0; i < 10; i++ {
		if _, err := r.ReadMessage(); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
}

func TestReaderGarbage(t *testing.T) {
	garbage := bytes.Repeat([]byte{0x00}, HeaderLen)
	r := NewReader(bytes.NewReader(garbage))
	if _, err := r.ReadMessage(); !isNotify(err, ErrCodeHeader, ErrSubSyncLost) {
		t.Fatalf("err = %v, want sync-lost", err)
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	full, err := Marshal(NewOpen(1, 90, netaddr.MustParseAddr("1.1.1.1")))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(full[:len(full)-3]))
	if _, err := r.ReadMessage(); err == nil {
		t.Fatal("truncated body should error")
	}
}

func TestStreamOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const n = 200
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		w := NewWriter(conn)
		for i := 0; i < n; i++ {
			u := Update{
				Attrs: NewPathAttrs(OriginIGP, NewASPath(uint32(i+1)), netaddr.AddrFrom4(10, 0, 0, 1)),
				NLRI:  []netaddr.Prefix{netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i)<<8), 24)},
			}
			if err := w.WriteMessageBuffered(u); err != nil {
				done <- err
				return
			}
		}
		done <- w.Flush()
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := NewReader(conn)
	for i := 0; i < n; i++ {
		m, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		u, ok := m.(Update)
		if !ok {
			t.Fatalf("message %d: got %T", i, m)
		}
		if first, _ := u.Attrs.ASPath.First(); first != uint32(i+1) {
			t.Fatalf("message %d: AS %d", i, first)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
