package wire

import (
	"bgpbench/internal/netaddr"

	"math/rand"
	"testing"
)

// TestParseNeverPanicsOnRandomBytes is the robustness property a router's
// message parser must have: arbitrary input produces an error or a valid
// message, never a panic or out-of-range access.
func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(1701))
	for i := 0; i < 20000; i++ {
		n := r.Intn(128)
		buf := make([]byte, n)
		r.Read(buf)
		Parse(buf)
	}
}

// TestParseNeverPanicsOnCorruptedValidMessages flips bytes of well-formed
// messages: framing stays plausible, bodies get hostile.
func TestParseNeverPanicsOnCorruptedValidMessages(t *testing.T) {
	r := rand.New(rand.NewSource(1702))
	seeds := [][]byte{}
	o, _ := Marshal(NewOpen(65001, 90, netaddr.AddrFromV4(0x0A000001)))
	seeds = append(seeds, o)
	u, _ := Marshal(Update{
		Attrs: NewPathAttrs(OriginIGP, NewASPath(1, 2, 3), netaddr.AddrFromV4(0x0A000001)),
		NLRI:  randomPrefixes(r, 8),
	})
	seeds = append(seeds, u)
	nmsg, _ := Marshal(Notification{Code: 6})
	seeds = append(seeds, nmsg)

	for i := 0; i < 30000; i++ {
		seed := seeds[r.Intn(len(seeds))]
		buf := append([]byte(nil), seed...)
		for flips := 1 + r.Intn(4); flips > 0; flips-- {
			// Corrupt only past the marker so the body parser is reached.
			pos := 16 + r.Intn(len(buf)-16)
			buf[pos] ^= byte(1 << r.Intn(8))
		}
		// Re-fix the length field half of the time so deeper parsing runs.
		if r.Intn(2) == 0 {
			buf[16] = byte(len(buf) >> 8)
			buf[17] = byte(len(buf))
		}
		m, err := Parse(buf)
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	}
}

// TestParsedMessagesRemarshal: any message the parser accepts must survive
// a marshal -> parse round trip (idempotent canonicalization).
func TestParsedMessagesRemarshal(t *testing.T) {
	r := rand.New(rand.NewSource(1703))
	accepted := 0
	for i := 0; i < 30000; i++ {
		n := HeaderLen + r.Intn(96)
		buf := make([]byte, n)
		r.Read(buf)
		// Plausible framing: fix marker, length, and a valid type.
		for j := 0; j < 16; j++ {
			buf[j] = 0xFF
		}
		buf[16], buf[17] = byte(n>>8), byte(n)
		buf[18] = byte(1 + r.Intn(4))
		m, err := Parse(buf)
		if err != nil {
			continue
		}
		accepted++
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message failed to marshal: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("remarshal not parseable: %v", err)
		}
	}
	if accepted == 0 {
		t.Log("no random frames parsed (expected: most are malformed)")
	}
}
