package wire

import (
	"sync"
	"sync/atomic"
)

// Intern is a concurrency-safe deduplication table for path attribute
// blocks. Real routing tables carry a few thousand distinct attribute sets
// across hundreds of thousands of prefixes, so storing one canonical
// *PathAttrs per distinct path — keyed by the canonical wire encoding —
// collapses the memory footprint of the RIBs and turns the deep
// PathAttrs.Equal comparisons on the router's hot paths (Adj-RIB-Out
// dedupe, export batching, MRAI grouping) into pointer comparisons: two
// interned attribute sets are semantically equal iff their pointers are
// equal.
//
// Callers must treat interned attribute sets as immutable; the table hands
// out the same pointer to every caller that interns an equal block.
type Intern struct {
	mu sync.RWMutex
	m  map[string]*PathAttrs

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewIntern returns an empty intern table.
func NewIntern() *Intern {
	return &Intern{m: make(map[string]*PathAttrs)}
}

// Intern returns the canonical pointer for a, inserting a deep copy on
// first sight. Safe for concurrent use.
func (t *Intern) Intern(a PathAttrs) *PathAttrs {
	key := a.appendWire(make([]byte, 0, 64))
	t.mu.RLock()
	p := t.m[string(key)]
	t.mu.RUnlock()
	if p != nil {
		t.hits.Add(1)
		return p
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if p := t.m[string(key)]; p != nil {
		t.hits.Add(1)
		return p
	}
	t.misses.Add(1)
	// Clone so the canonical copy cannot alias caller-owned slices.
	c := a.Clone()
	t.m[string(key)] = &c
	return &c
}

// Len returns the number of distinct attribute sets interned.
func (t *Intern) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// InternStats is a snapshot of an intern table's effectiveness.
type InternStats struct {
	Size   int    // distinct attribute sets held
	Hits   uint64 // lookups answered by an existing canonical copy
	Misses uint64 // lookups that inserted a new canonical copy
}

// HitRate returns the fraction of lookups answered from the table.
func (s InternStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns current counters.
func (t *Intern) Stats() InternStats {
	return InternStats{Size: t.Len(), Hits: t.hits.Load(), Misses: t.misses.Load()}
}
