package wire

import (
	"sync"
	"testing"

	"bgpbench/internal/netaddr"
)

func internAttrs(asns ...uint32) PathAttrs {
	return NewPathAttrs(OriginIGP, NewASPath(asns...), netaddr.MustParseAddr("192.0.2.1"))
}

func TestInternDedupes(t *testing.T) {
	tbl := NewIntern()
	a := tbl.Intern(internAttrs(1, 2, 3))
	b := tbl.Intern(internAttrs(1, 2, 3))
	if a != b {
		t.Fatal("equal attrs should intern to the same pointer")
	}
	c := tbl.Intern(internAttrs(1, 2))
	if c == a {
		t.Fatal("distinct attrs must not share a pointer")
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tbl.Len())
	}
	s := tbl.Stats()
	if s.Size != 2 || s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 1.0/3.0 {
		t.Fatalf("HitRate = %v", got)
	}
}

// TestInternDistinguishesOptionalAttrs: attribute sets that differ only in
// optional attributes (MED, LOCAL_PREF, communities) must not collapse.
func TestInternDistinguishesOptionalAttrs(t *testing.T) {
	tbl := NewIntern()
	base := internAttrs(1, 2)
	withPref := internAttrs(1, 2)
	withPref.HasLocalPref, withPref.LocalPref = true, 200
	withMED := internAttrs(1, 2)
	withMED.HasMED, withMED.MED = true, 50
	p1, p2, p3 := tbl.Intern(base), tbl.Intern(withPref), tbl.Intern(withMED)
	if p1 == p2 || p1 == p3 || p2 == p3 {
		t.Fatal("optional-attribute variants must intern separately")
	}
	for i, want := range []*PathAttrs{p1, p2, p3} {
		if !want.Equal([]PathAttrs{base, withPref, withMED}[i]) {
			t.Fatalf("canonical copy %d differs from input", i)
		}
	}
}

// TestInternDoesNotAliasInput: mutating the caller's copy after interning
// must not change the canonical copy.
func TestInternDoesNotAliasInput(t *testing.T) {
	tbl := NewIntern()
	in := internAttrs(7, 8, 9)
	p := tbl.Intern(in)
	in.ASPath = NewASPath(1)
	if !p.Equal(internAttrs(7, 8, 9)) {
		t.Fatal("canonical copy aliases caller-owned state")
	}
}

// TestInternConcurrent hammers the table from many goroutines interning a
// small set of distinct attrs; all goroutines must converge on the same
// canonical pointers. Run under -race this also proves thread safety.
func TestInternConcurrent(t *testing.T) {
	tbl := NewIntern()
	const workers = 8
	const distinct = 16
	got := make([][]*PathAttrs, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]*PathAttrs, distinct)
			for i := 0; i < 500; i++ {
				k := (i + w) % distinct
				got[w][k] = tbl.Intern(internAttrs(uint32(k+1), uint32(k+100)))
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != distinct {
		t.Fatalf("Len = %d, want %d", tbl.Len(), distinct)
	}
	for k := 0; k < distinct; k++ {
		for w := 1; w < workers; w++ {
			if got[w][k] != got[0][k] {
				t.Fatalf("workers disagree on canonical pointer for key %d", k)
			}
		}
	}
}
