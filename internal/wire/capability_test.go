package wire

import (
	"bgpbench/internal/netaddr"

	"bytes"
	"math/rand"
	"testing"
)

func TestCapabilitiesRoundTrip(t *testing.T) {
	caps := []Capability{
		MultiprotocolIPv4Unicast(),
		RouteRefreshCapability(),
		{Code: CapFourOctetAS, Value: []byte{0, 1, 0, 0}},
	}
	blob, err := MarshalCapabilities(caps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseCapabilities(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(caps) {
		t.Fatalf("got %d capabilities, want %d", len(got), len(caps))
	}
	for i := range caps {
		if got[i].Code != caps[i].Code || !bytes.Equal(got[i].Value, caps[i].Value) {
			t.Fatalf("capability %d: %+v != %+v", i, got[i], caps[i])
		}
	}
}

func TestCapabilitiesThroughOpenMessage(t *testing.T) {
	caps := []Capability{MultiprotocolIPv4Unicast(), RouteRefreshCapability()}
	blob, err := MarshalCapabilities(caps)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOpen(65001, 90, netaddr.AddrFromV4(0x01010101))
	o.OptParams = blob
	m, err := Parse(mustMarshal(t, o))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseCapabilities(m.(Open).OptParams)
	if err != nil {
		t.Fatal(err)
	}
	if !HasCapability(got, CapMultiprotocol) || !HasCapability(got, CapRouteRefresh) {
		t.Fatalf("capabilities lost through OPEN: %v", got)
	}
	if HasCapability(got, CapGracefulRestart) {
		t.Fatal("phantom capability")
	}
}

func TestMarshalCapabilitiesEmpty(t *testing.T) {
	blob, err := MarshalCapabilities(nil)
	if err != nil || blob != nil {
		t.Fatalf("empty: %v %v", blob, err)
	}
}

func TestMarshalCapabilitiesLimits(t *testing.T) {
	if _, err := MarshalCapabilities([]Capability{{Code: 1, Value: make([]byte, 256)}}); err == nil {
		t.Fatal("oversized value accepted")
	}
	many := make([]Capability, 90)
	for i := range many {
		many[i] = Capability{Code: uint8(i), Value: []byte{1}}
	}
	if _, err := MarshalCapabilities(many); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestParseCapabilitiesErrors(t *testing.T) {
	cases := [][]byte{
		{2},             // truncated parameter header
		{2, 5, 1, 2},    // parameter overruns block
		{2, 1, 1},       // truncated capability header
		{2, 3, 1, 5, 0}, // capability overruns parameter
	}
	for i, in := range cases {
		if _, err := ParseCapabilities(in); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestParseCapabilitiesSkipsUnknownParams(t *testing.T) {
	// Unknown parameter type 99 followed by a capabilities parameter.
	in := []byte{99, 2, 0xAA, 0xBB, 2, 2, CapRouteRefresh, 0}
	caps, err := ParseCapabilities(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 1 || caps[0].Code != CapRouteRefresh {
		t.Fatalf("caps = %v", caps)
	}
}

func TestCapabilityString(t *testing.T) {
	for _, c := range []Capability{
		{Code: CapMultiprotocol}, {Code: CapRouteRefresh},
		{Code: CapGracefulRestart}, {Code: CapFourOctetAS}, {Code: 200},
	} {
		if c.String() == "" {
			t.Errorf("empty name for code %d", c.Code)
		}
	}
}

// TestParseCapabilitiesNeverPanics throws random bytes at the parser.
func TestParseCapabilitiesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, r.Intn(64))
		r.Read(buf)
		ParseCapabilities(buf) // must not panic; errors are fine
	}
}
