package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"bgpbench/internal/netaddr"
)

// frameUpdate wraps raw UPDATE body parts (withdrawn block, attribute
// block, NLRI block) in a valid message frame, so the seed corpus can
// carry deliberately malformed bodies past the header checks.
func frameUpdate(wdr, attrs, nlri []byte) []byte {
	n := HeaderLen + 2 + len(wdr) + 2 + len(attrs) + len(nlri)
	msg := make([]byte, 0, n)
	for i := 0; i < 16; i++ {
		msg = append(msg, 0xFF)
	}
	msg = append(msg, byte(n>>8), byte(n), byte(MsgUpdate))
	msg = append(msg, byte(len(wdr)>>8), byte(len(wdr)))
	msg = append(msg, wdr...)
	msg = append(msg, byte(len(attrs)>>8), byte(len(attrs)))
	msg = append(msg, attrs...)
	return append(msg, nlri...)
}

// mpUpdateSeeds is the MP-BGP / 4-byte-AS seed corpus: well-formed
// MP_REACH/MP_UNREACH and AS4_PATH messages plus the hostile encodings a
// parser must reject without panicking — truncated MP NLRI, truncated MP
// next hops, and unknown AFI/SAFI pairs.
func mpUpdateSeeds(t testing.TB) [][]byte {
	t.Helper()
	var seeds [][]byte
	add := func(m Message) {
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("seed marshal: %v", err)
		}
		seeds = append(seeds, b)
	}

	nh6 := netaddr.MustParseAddr("2001:db8::1")
	v6a := netaddr.MustParsePrefix("2001:db8:1::/48")
	v6b := netaddr.MustParsePrefix("2001:db8:2::/64")
	v4a := netaddr.MustParsePrefix("10.1.0.0/16")

	// Well-formed MP_REACH_NLRI: IPv6 NLRI + IPv6 next hop.
	add(Update{
		Attrs: NewPathAttrs(OriginIGP, NewASPath(65001, 100), nh6),
		NLRI:  []netaddr.Prefix{v6a, v6b},
	})
	// Dual-stack announce: classic NLRI and MP NLRI in one UPDATE.
	add(Update{
		Attrs: NewPathAttrs(OriginIGP, NewASPath(65001, 100), nh6),
		NLRI:  []netaddr.Prefix{v4a, v6a},
	})
	// MP_UNREACH_NLRI: IPv6 withdrawals only.
	add(Update{Withdrawn: []netaddr.Prefix{v6a, v6b}})
	// AS4_PATH: a 4-byte ASN forces AS_TRANS substitution plus the
	// AS4_PATH shadow attribute in canonical 2-octet mode.
	as4u := Update{
		Attrs: NewPathAttrs(OriginIGP, NewASPath(70000, 65001, 100), netaddr.AddrFrom4(10, 0, 0, 1)),
		NLRI:  []netaddr.Prefix{v4a},
	}
	add(as4u)
	// The same message in negotiated 4-octet mode (no AS4_PATH, wide
	// AS_PATH segments).
	wide, err := AppendMessageMode(nil, as4u, true)
	if err != nil {
		t.Fatalf("as4 seed marshal: %v", err)
	}
	seeds = append(seeds, wide)

	attr := func(typ AttrType, val []byte) []byte {
		return append([]byte{FlagOptional, byte(typ), byte(len(val))}, val...)
	}
	// MP_REACH with an unknown AFI (99).
	seeds = append(seeds, frameUpdate(nil, attr(AttrMPReachNLRI,
		[]byte{0x00, 0x63, SAFIUnicast, 4, 10, 0, 0, 1, 0x00, 0x10, 0x0A, 0x01}), nil))
	// MP_REACH with an unknown SAFI (77).
	seeds = append(seeds, frameUpdate(nil, attr(AttrMPReachNLRI,
		[]byte{0x00, 0x02, 0x4D, 4, 10, 0, 0, 1, 0x00, 0x10, 0x0A, 0x01}), nil))
	// MP_REACH whose declared /64 NLRI is cut off after two bytes.
	seeds = append(seeds, frameUpdate(nil, attr(AttrMPReachNLRI,
		[]byte{0x00, 0x02, SAFIUnicast, 4, 10, 0, 0, 1, 0x00, 0x40, 0x20, 0x01}), nil))
	// MP_REACH whose declared 16-byte next hop overruns the value.
	seeds = append(seeds, frameUpdate(nil, attr(AttrMPReachNLRI,
		[]byte{0x00, 0x02, SAFIUnicast, 16, 0x20, 0x01}), nil))
	// MP_UNREACH whose declared /128 withdrawal has no address bytes.
	seeds = append(seeds, frameUpdate(nil, attr(AttrMPUnreachNLRI,
		[]byte{0x00, 0x02, SAFIUnicast, 0x80}), nil))
	// MP_UNREACH truncated before the SAFI octet.
	seeds = append(seeds, frameUpdate(nil, attr(AttrMPUnreachNLRI,
		[]byte{0x00, 0x02}), nil))
	// AS4_PATH whose segment header promises more ASNs than fit.
	seeds = append(seeds, frameUpdate(nil, attr(AttrAS4Path,
		[]byte{2, 3, 0x00, 0x01, 0x11, 0x70}), nil))
	return seeds
}

// FuzzParseMPUpdate fuzzes the UPDATE parser in both ASN modes from the
// MP-BGP seed corpus. Anything accepted must survive a same-mode
// remarshal round trip; everything else must fail with an error, never a
// panic.
func FuzzParseMPUpdate(f *testing.F) {
	for _, s := range mpUpdateSeeds(f) {
		f.Add(s, false)
		f.Add(s, true)
	}
	f.Fuzz(func(t *testing.T, data []byte, as4 bool) {
		if len(data) <= HeaderLen {
			return
		}
		m, err := ParseBodyMode(MsgUpdate, data[HeaderLen:], as4)
		if err != nil {
			return
		}
		out, err := AppendMessageMode(nil, m, as4)
		if err != nil {
			t.Fatalf("accepted update failed to marshal (as4=%v): %v", as4, err)
		}
		m2, err := ParseBodyMode(MsgUpdate, out[HeaderLen:], as4)
		if err != nil {
			t.Fatalf("remarshal not parseable (as4=%v): %v", as4, err)
		}
		out2, err := AppendMessageMode(nil, m2, as4)
		if err != nil {
			t.Fatalf("second marshal failed (as4=%v): %v", as4, err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("marshal not idempotent (as4=%v):\n  %x\n  %x", as4, out, out2)
		}
	})
}

// TestParseNeverPanicsOnCorruptedMPUpdates sweeps bit flips over the MP
// seed corpus the way the other corruption tests do, biased toward the
// attribute region so the MP_REACH/MP_UNREACH/AS4_PATH decoders see
// hostile AFIs, lengths, and prefix bit counts.
func TestParseNeverPanicsOnCorruptedMPUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(1705))
	seeds := mpUpdateSeeds(t)
	for i := 0; i < 30000; i++ {
		seed := seeds[r.Intn(len(seeds))]
		buf := append([]byte(nil), seed...)
		for flips := 1 + r.Intn(4); flips > 0; flips-- {
			pos := 16 + r.Intn(len(buf)-16)
			if r.Intn(2) == 0 && len(buf) > HeaderLen+4 {
				// Bias into the attribute block (past withdrawn length).
				pos = HeaderLen + 4 + r.Intn(len(buf)-HeaderLen-4)
			}
			buf[pos] ^= byte(1 << r.Intn(8))
		}
		for _, as4 := range []bool{false, true} {
			m, err := ParseBodyMode(MsgUpdate, buf[HeaderLen:], as4)
			if err != nil {
				continue
			}
			if _, err := AppendMessageMode(nil, m, as4); err != nil {
				t.Fatalf("accepted corrupted update failed to marshal (as4=%v): %v", as4, err)
			}
		}
	}
}
