package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"bgpbench/internal/netaddr"
)

func mustMarshal(t *testing.T, m Message) []byte {
	t.Helper()
	b, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", m, err)
	}
	return b
}

func TestKeepaliveRoundTrip(t *testing.T) {
	b := mustMarshal(t, Keepalive{})
	if len(b) != HeaderLen {
		t.Fatalf("KEEPALIVE length %d, want %d", len(b), HeaderLen)
	}
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(Keepalive); !ok {
		t.Fatalf("got %T, want Keepalive", m)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := NewOpen(65001, 180, netaddr.MustParseAddr("10.0.0.1"))
	o.OptParams = []byte{2, 6, 1, 4, 0, 1, 0, 1} // an opaque capability blob
	m, err := Parse(mustMarshal(t, o))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(Open)
	if !ok {
		t.Fatalf("got %T, want Open", m)
	}
	if got.Version != 4 || got.AS != 65001 || got.HoldTime != 180 ||
		got.ID != netaddr.MustParseAddr("10.0.0.1") || !bytes.Equal(got.OptParams, o.OptParams) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestOpenValidation(t *testing.T) {
	base := NewOpen(65001, 180, netaddr.MustParseAddr("10.0.0.1"))

	bad := base
	bad.Version = 3
	if _, err := Parse(mustMarshal(t, bad)); !isNotify(err, ErrCodeOpen, ErrSubBadVersion) {
		t.Errorf("version 3: err = %v, want OPEN/bad-version", err)
	}

	bad = base
	bad.HoldTime = 2
	if _, err := Parse(mustMarshal(t, bad)); !isNotify(err, ErrCodeOpen, ErrSubBadHoldTime) {
		t.Errorf("hold time 2: err = %v, want OPEN/bad-hold-time", err)
	}

	bad = base
	bad.ID = netaddr.AddrFromV4(0)
	if _, err := Parse(mustMarshal(t, bad)); !isNotify(err, ErrCodeOpen, ErrSubBadBGPID) {
		t.Errorf("zero ID: err = %v, want OPEN/bad-id", err)
	}

	// Hold time 0 (keepalives disabled) is legal.
	ok := base
	ok.HoldTime = 0
	if _, err := Parse(mustMarshal(t, ok)); err != nil {
		t.Errorf("hold time 0 rejected: %v", err)
	}
}

func isNotify(err error, code, subcode uint8) bool {
	var ne *NotifyError
	if !errors.As(err, &ne) {
		return false
	}
	return ne.Code == code && ne.Subcode == subcode
}

func TestNotificationRoundTrip(t *testing.T) {
	n := Notification{Code: ErrCodeCease, Subcode: 0, Data: []byte("bye")}
	m, err := Parse(mustMarshal(t, n))
	if err != nil {
		t.Fatal(err)
	}
	got := m.(Notification)
	if got.Code != n.Code || got.Subcode != n.Subcode || !bytes.Equal(got.Data, n.Data) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Error() == "" {
		t.Error("Notification.Error() empty")
	}
}

func randomAttrs(r *rand.Rand) PathAttrs {
	a := NewPathAttrs(Origin(r.Intn(3)), randomASPath(r), netaddr.AddrFromV4(r.Uint32()))
	if r.Intn(2) == 0 {
		a.MED, a.HasMED = r.Uint32(), true
	}
	if r.Intn(2) == 0 {
		a.LocalPref, a.HasLocalPref = r.Uint32(), true
	}
	if r.Intn(4) == 0 {
		a.AtomicAggregate = true
	}
	if r.Intn(4) == 0 {
		a.Aggregator = &Aggregator{AS: uint32(r.Intn(65536)), Addr: netaddr.AddrFromV4(r.Uint32())}
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		a.Communities = append(a.Communities, CommunityFrom(uint16(r.Intn(65536)), uint16(r.Intn(65536))))
	}
	return a
}

func randomPrefixes(r *rand.Rand, max int) []netaddr.Prefix {
	n := r.Intn(max)
	out := make([]netaddr.Prefix, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, netaddr.PrefixFrom(netaddr.AddrFromV4(r.Uint32()), 8+r.Intn(25)))
	}
	return out
}

func TestUpdateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		u := Update{
			Withdrawn: randomPrefixes(r, 8),
			NLRI:      randomPrefixes(r, 8),
		}
		if len(u.NLRI) > 0 || r.Intn(2) == 0 {
			u.Attrs = randomAttrs(r)
		}
		m, err := Parse(mustMarshal(t, u))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		got := m.(Update)
		if len(got.Withdrawn) != len(u.Withdrawn) || len(got.NLRI) != len(u.NLRI) {
			t.Fatalf("iteration %d: prefix counts differ", i)
		}
		for j := range u.Withdrawn {
			if got.Withdrawn[j] != u.Withdrawn[j] {
				t.Fatalf("iteration %d: withdrawn[%d] = %v, want %v", i, j, got.Withdrawn[j], u.Withdrawn[j])
			}
		}
		for j := range u.NLRI {
			if got.NLRI[j] != u.NLRI[j] {
				t.Fatalf("iteration %d: nlri[%d] = %v, want %v", i, j, got.NLRI[j], u.NLRI[j])
			}
		}
		// Communities are canonicalized (sorted) on encode; sort expectation.
		want := u.Attrs.Clone()
		sortCommunities(want.Communities)
		if (len(u.NLRI) > 0 || !u.Attrs.Equal(PathAttrs{})) && !got.Attrs.Equal(want) {
			t.Fatalf("iteration %d: attrs = %v, want %v", i, got.Attrs, want)
		}
	}
}

func sortCommunities(cs []Community) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j] < cs[j-1]; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func TestUpdateEndOfRIB(t *testing.T) {
	// An empty UPDATE (no withdrawn, no attrs, no NLRI) is the conventional
	// end-of-RIB marker.
	b := mustMarshal(t, Update{})
	if len(b) != HeaderLen+4 {
		t.Fatalf("empty UPDATE length %d, want %d", len(b), HeaderLen+4)
	}
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	u := m.(Update)
	if len(u.Withdrawn) != 0 || len(u.NLRI) != 0 {
		t.Fatal("empty UPDATE decoded non-empty")
	}
}

func TestUpdateMissingMandatoryAttrs(t *testing.T) {
	u := Update{NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("10.0.0.0/8")}}
	u.Attrs.ASPath = NewASPath(65001)
	u.Attrs.HasNextHop = true
	u.Attrs.NextHop = netaddr.MustParseAddr("192.0.2.1")
	// Missing ORIGIN.
	if _, err := Parse(mustMarshal(t, u)); !isNotify(err, ErrCodeUpdate, ErrSubMissingWellKnown) {
		t.Errorf("missing ORIGIN: err = %v", err)
	}
	u.Attrs.HasOrigin = true
	u.Attrs.HasNextHop = false
	if _, err := Parse(mustMarshal(t, u)); !isNotify(err, ErrCodeUpdate, ErrSubMissingWellKnown) {
		t.Errorf("missing NEXT_HOP: err = %v", err)
	}
}

func TestHeaderValidation(t *testing.T) {
	good := mustMarshal(t, Keepalive{})

	bad := append([]byte(nil), good...)
	bad[3] = 0x00 // corrupt marker
	if _, err := Parse(bad); !isNotify(err, ErrCodeHeader, ErrSubSyncLost) {
		t.Errorf("corrupt marker: err = %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[18] = 9 // bad type
	if _, err := Parse(bad); !isNotify(err, ErrCodeHeader, ErrSubBadMsgType) {
		t.Errorf("bad type: err = %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[17] = HeaderLen - 1 // length below minimum
	if _, err := Parse(bad); !isNotify(err, ErrCodeHeader, ErrSubBadLength) {
		t.Errorf("short length: err = %v", err)
	}

	// KEEPALIVE with a body.
	bad = append(append([]byte(nil), good...), 0xAB)
	bad[17] = HeaderLen + 1
	if _, err := Parse(bad); !isNotify(err, ErrCodeHeader, ErrSubBadLength) {
		t.Errorf("keepalive with body: err = %v", err)
	}
}

func TestMarshalTooLarge(t *testing.T) {
	var u Update
	for i := 0; i < 1200; i++ {
		u.NLRI = append(u.NLRI, netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i)<<8), 24))
	}
	u.Attrs = NewPathAttrs(OriginIGP, NewASPath(1), netaddr.MustParseAddr("10.0.0.1"))
	if _, err := Marshal(u); err == nil {
		t.Fatal("oversized UPDATE should fail to marshal")
	}
}

func TestParseAttrsErrors(t *testing.T) {
	cases := []struct {
		name    string
		in      []byte
		subcode uint8
	}{
		{"truncated header", []byte{0x40}, ErrSubMalformedAttrList},
		{"origin bad length", []byte{0x40, 1, 2, 0, 0}, ErrSubAttrLength},
		{"origin bad value", []byte{0x40, 1, 1, 7}, ErrSubInvalidOrigin},
		{"nexthop bad length", []byte{0x40, 3, 2, 1, 2}, ErrSubAttrLength},
		{"med bad length", []byte{0x80, 4, 1, 9}, ErrSubAttrLength},
		{"overrun", []byte{0x40, 1, 200, 0}, ErrSubAttrLength},
		{"unknown well-known", []byte{0x40, 99, 1, 0}, ErrSubUnrecognizedWellKnown},
		{"duplicate", []byte{0x40, 1, 1, 0, 0x40, 1, 1, 0}, ErrSubMalformedAttrList},
		{"communities bad length", []byte{0xC0, 8, 3, 1, 2, 3}, ErrSubOptAttr},
	}
	for _, c := range cases {
		_, err := parseAttrs(c.in)
		if !isNotify(err, ErrCodeUpdate, c.subcode) {
			t.Errorf("%s: err = %v, want UPDATE subcode %d", c.name, err, c.subcode)
		}
	}
}

func TestUnknownOptionalTransitivePreserved(t *testing.T) {
	// flags: optional+transitive, type 200, len 3.
	in := []byte{FlagOptional | FlagTransitive, 200, 3, 0xDE, 0xAD, 0xBF}
	a, err := parseAttrs(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Unknown) != 1 || a.Unknown[0].Type != 200 {
		t.Fatalf("unknown attr not preserved: %+v", a.Unknown)
	}
	if a.Unknown[0].Flags&FlagPartial == 0 {
		t.Error("partial bit not set on preserved unknown attribute")
	}
	// Non-transitive optional attributes are dropped.
	in = []byte{FlagOptional, 201, 1, 0x01}
	a, err = parseAttrs(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Unknown) != 0 {
		t.Fatal("non-transitive optional attribute should be dropped")
	}
}

func TestExtendedLengthAttr(t *testing.T) {
	// Build a path long enough to force the extended-length encoding.
	asns := make([]uint32, 0, 200)
	for i := 0; i < 200; i++ {
		asns = append(asns, uint32(i+1))
	}
	// A single segment holds at most 255 ASNs; 200 fits, value len 402 > 255.
	a := NewPathAttrs(OriginIGP, NewASPath(asns...), netaddr.MustParseAddr("10.0.0.1"))
	u := Update{Attrs: a, NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("10.0.0.0/8")}}
	m, err := Parse(mustMarshal(t, u))
	if err != nil {
		t.Fatal(err)
	}
	if !m.(Update).Attrs.ASPath.Equal(a.ASPath) {
		t.Fatal("extended-length AS_PATH round trip failed")
	}
}

func TestCommunityString(t *testing.T) {
	c := CommunityFrom(65001, 42)
	if c.String() != "65001:42" {
		t.Errorf("String() = %q", c.String())
	}
}

func TestPathAttrsString(t *testing.T) {
	a := NewPathAttrs(OriginIGP, NewASPath(1, 2), netaddr.MustParseAddr("10.0.0.1"))
	a.HasMED, a.MED = true, 5
	a.Communities = []Community{CommunityFrom(1, 2)}
	s := a.String()
	for _, want := range []string{"origin=IGP", "as-path=[1 2]", "next-hop=10.0.0.1", "med=5", "communities=1:2"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

func TestAttrFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"origin marked optional", []byte{FlagOptional | FlagTransitive, byte(AttrOrigin), 1, 0}},
		{"origin not transitive", []byte{0x00, byte(AttrOrigin), 1, 0}},
		{"med marked transitive", []byte{FlagOptional | FlagTransitive, byte(AttrMED), 4, 0, 0, 0, 1}},
		{"med not optional", []byte{0x00, byte(AttrMED), 4, 0, 0, 0, 1}},
		{"aggregator not optional", []byte{FlagTransitive, byte(AttrAggregator), 6, 0, 1, 1, 2, 3, 4}},
		{"communities not transitive", []byte{FlagOptional, byte(AttrCommunities), 4, 0, 1, 0, 2}},
	}
	for _, c := range cases {
		if _, err := parseAttrs(c.in); !isNotify(err, ErrCodeUpdate, ErrSubAttrFlags) {
			t.Errorf("%s: err = %v, want attribute-flags error", c.name, err)
		}
	}
	// Correct flags still parse.
	good := []byte{FlagTransitive, byte(AttrOrigin), 1, 0}
	if _, err := parseAttrs(good); err != nil {
		t.Fatalf("well-formed ORIGIN rejected: %v", err)
	}
}
