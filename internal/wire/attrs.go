package wire

import (
	"fmt"
	"sort"
	"strings"

	"bgpbench/internal/netaddr"
)

// Community is an RFC 1997 community value, conventionally written
// "asn:value".
type Community uint32

// String renders the conventional "asn:value" form.
func (c Community) String() string {
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xFFFF)
}

// CommunityFrom builds a community from its AS and value halves.
func CommunityFrom(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// Aggregator is the AGGREGATOR attribute value: the AS and router that
// formed an aggregate route. The AS is 4-octet; on a 2-octet session the
// wire carries AS_TRANS plus an AS4_AGGREGATOR attribute (RFC 6793).
type Aggregator struct {
	AS   uint32
	Addr netaddr.Addr
}

// RawAttr preserves an optional transitive attribute this implementation
// does not interpret, so it can be forwarded unchanged (RFC 4271 sec 5).
type RawAttr struct {
	Flags byte
	Type  AttrType
	Value []byte
}

// PathAttrs is the parsed path attribute block of an UPDATE message. The
// zero value has no attributes set; HasMED/HasLocalPref discriminate unset
// optional attributes from zero-valued ones.
//
// NextHop may be IPv4 or IPv6. An IPv4 next hop encodes as the classic
// NEXT_HOP attribute; an IPv6 next hop travels inside MP_REACH_NLRI
// (RFC 4760), which the canonical encoding emits with an empty NLRI block
// so that equal attribute sets keep identical canonical bytes regardless
// of which prefixes they are attached to.
type PathAttrs struct {
	Origin          Origin
	HasOrigin       bool
	ASPath          ASPath
	NextHop         netaddr.Addr
	HasNextHop      bool
	MED             uint32
	HasMED          bool
	LocalPref       uint32
	HasLocalPref    bool
	AtomicAggregate bool
	Aggregator      *Aggregator
	Communities     []Community
	Unknown         []RawAttr
}

// NewPathAttrs builds the minimal well-formed attribute set for an
// announcement: ORIGIN, AS_PATH, and NEXT_HOP.
func NewPathAttrs(origin Origin, path ASPath, nextHop netaddr.Addr) PathAttrs {
	return PathAttrs{
		Origin:     origin,
		HasOrigin:  true,
		ASPath:     path,
		NextHop:    nextHop,
		HasNextHop: true,
	}
}

// Clone deep-copies the attribute set.
func (a PathAttrs) Clone() PathAttrs {
	out := a
	out.ASPath = a.ASPath.Clone()
	if a.Aggregator != nil {
		agg := *a.Aggregator
		out.Aggregator = &agg
	}
	out.Communities = append([]Community(nil), a.Communities...)
	if a.Unknown != nil {
		out.Unknown = make([]RawAttr, len(a.Unknown))
		for i, u := range a.Unknown {
			out.Unknown[i] = RawAttr{Flags: u.Flags, Type: u.Type, Value: append([]byte(nil), u.Value...)}
		}
	}
	return out
}

// Equal reports semantic equality of two attribute sets (unknown attributes
// compare by exact bytes).
func (a PathAttrs) Equal(b PathAttrs) bool {
	if a.HasOrigin != b.HasOrigin || (a.HasOrigin && a.Origin != b.Origin) {
		return false
	}
	if !a.ASPath.Equal(b.ASPath) {
		return false
	}
	if a.HasNextHop != b.HasNextHop || (a.HasNextHop && a.NextHop != b.NextHop) {
		return false
	}
	if a.HasMED != b.HasMED || (a.HasMED && a.MED != b.MED) {
		return false
	}
	if a.HasLocalPref != b.HasLocalPref || (a.HasLocalPref && a.LocalPref != b.LocalPref) {
		return false
	}
	if a.AtomicAggregate != b.AtomicAggregate {
		return false
	}
	if (a.Aggregator == nil) != (b.Aggregator == nil) {
		return false
	}
	if a.Aggregator != nil && *a.Aggregator != *b.Aggregator {
		return false
	}
	if len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	if len(a.Unknown) != len(b.Unknown) {
		return false
	}
	for i := range a.Unknown {
		u, v := a.Unknown[i], b.Unknown[i]
		if u.Flags != v.Flags || u.Type != v.Type || string(u.Value) != string(v.Value) {
			return false
		}
	}
	return true
}

// HasCommunity reports whether the set carries the given community.
func (a PathAttrs) HasCommunity(c Community) bool {
	for _, x := range a.Communities {
		if x == c {
			return true
		}
	}
	return false
}

// String summarizes the attributes for logs.
func (a PathAttrs) String() string {
	var parts []string
	if a.HasOrigin {
		parts = append(parts, "origin="+a.Origin.String())
	}
	parts = append(parts, "as-path=["+a.ASPath.String()+"]")
	if a.HasNextHop {
		parts = append(parts, "next-hop="+a.NextHop.String())
	}
	if a.HasMED {
		parts = append(parts, fmt.Sprintf("med=%d", a.MED))
	}
	if a.HasLocalPref {
		parts = append(parts, fmt.Sprintf("local-pref=%d", a.LocalPref))
	}
	if len(a.Communities) > 0 {
		cs := make([]string, len(a.Communities))
		for i, c := range a.Communities {
			cs[i] = c.String()
		}
		parts = append(parts, "communities="+strings.Join(cs, ","))
	}
	return strings.Join(parts, " ")
}

// MarshalAttrs renders the canonical path-attribute block encoding of a.
// Equal attribute sets produce identical bytes, so the result doubles as
// a grouping key when coalescing routes into shared UPDATE messages. The
// canonical form is 2-octet-AS (AS_TRANS + AS4_PATH when a 4-byte ASN is
// present), which keeps it byte-identical to the historical encoding for
// any attribute set expressible before RFC 6793 support.
func MarshalAttrs(a PathAttrs) []byte {
	return a.appendWire(nil)
}

// UnmarshalAttrs decodes a path-attribute block (the inverse of
// MarshalAttrs). MRT table dumps store attribute blocks in this format.
func UnmarshalAttrs(b []byte) (PathAttrs, error) {
	a, mp, err := parseAttrsMode(b, false)
	if err != nil {
		return a, err
	}
	if !a.HasNextHop && mp.hasNextHop {
		a.NextHop, a.HasNextHop = mp.nextHop, true
	}
	return a, nil
}

func appendAttrHeader(dst []byte, flags byte, typ AttrType, valLen int) []byte {
	if valLen > 255 {
		flags |= FlagExtLen
		return append(dst, flags, byte(typ), byte(valLen>>8), byte(valLen))
	}
	return append(dst, flags, byte(typ), byte(valLen))
}

// appendWire appends the canonical path attribute block: 2-octet AS mode
// with no NLRI folded into the MP attributes.
func (a PathAttrs) appendWire(dst []byte) []byte {
	return a.appendWireMode(dst, false, nil, nil)
}

// appendWireMode appends the full path attribute block. Attributes are
// emitted in ascending type-code order, which keeps encodings canonical
// and deterministic. In 2-octet mode (as4 false) AS_PATH carries AS_TRANS
// substitutions and the true path follows in AS4_PATH when needed. mpNLRI
// and mpWithdrawn are the non-IPv4 prefixes to fold into MP_REACH_NLRI and
// MP_UNREACH_NLRI (RFC 4760); both may be nil.
func (a PathAttrs) appendWireMode(dst []byte, as4 bool, mpNLRI, mpWithdrawn []netaddr.Prefix) []byte {
	if a.HasOrigin {
		dst = appendAttrHeader(dst, FlagTransitive, AttrOrigin, 1)
		dst = append(dst, byte(a.Origin))
	}
	// AS_PATH is always emitted (possibly empty) when any attribute is
	// present: it is mandatory for announcements.
	pl := a.ASPath.wireLen(as4)
	dst = appendAttrHeader(dst, FlagTransitive, AttrASPath, pl)
	dst = a.ASPath.appendWire(dst, as4)
	if a.HasNextHop && a.NextHop.Is4() {
		dst = appendAttrHeader(dst, FlagTransitive, AttrNextHop, 4)
		dst = a.NextHop.AppendBytes(dst)
	}
	if a.HasMED {
		dst = appendAttrHeader(dst, FlagOptional, AttrMED, 4)
		dst = append(dst, byte(a.MED>>24), byte(a.MED>>16), byte(a.MED>>8), byte(a.MED))
	}
	if a.HasLocalPref {
		dst = appendAttrHeader(dst, FlagTransitive, AttrLocalPref, 4)
		dst = append(dst, byte(a.LocalPref>>24), byte(a.LocalPref>>16), byte(a.LocalPref>>8), byte(a.LocalPref))
	}
	if a.AtomicAggregate {
		dst = appendAttrHeader(dst, FlagTransitive, AttrAtomicAggregate, 0)
	}
	if a.Aggregator != nil {
		if as4 {
			dst = appendAttrHeader(dst, FlagOptional|FlagTransitive, AttrAggregator, 8)
			as := a.Aggregator.AS
			dst = append(dst, byte(as>>24), byte(as>>16), byte(as>>8), byte(as))
		} else {
			as := a.Aggregator.AS
			if as > 0xFFFF {
				as = ASTrans
			}
			dst = appendAttrHeader(dst, FlagOptional|FlagTransitive, AttrAggregator, 6)
			dst = append(dst, byte(as>>8), byte(as))
		}
		dst = a.Aggregator.Addr.AppendBytes(dst)
	}
	if len(a.Communities) > 0 {
		cs := append([]Community(nil), a.Communities...)
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		dst = appendAttrHeader(dst, FlagOptional|FlagTransitive, AttrCommunities, 4*len(cs))
		for _, c := range cs {
			dst = append(dst, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
		}
	}
	// MP_REACH_NLRI: required whenever the next hop is IPv6 (there is no
	// classic encoding for it) or non-IPv4 NLRI must be announced.
	if (a.HasNextHop && a.NextHop.Is6()) || len(mpNLRI) > 0 {
		dst = a.appendMPReach(dst, mpNLRI)
	}
	if len(mpWithdrawn) > 0 {
		dst = appendMPUnreach(dst, mpWithdrawn)
	}
	if !as4 && a.ASPath.needsAS4() {
		pl4 := a.ASPath.wireLen(true)
		dst = appendAttrHeader(dst, FlagOptional|FlagTransitive, AttrAS4Path, pl4)
		dst = a.ASPath.appendWire(dst, true)
	}
	if !as4 && a.Aggregator != nil && a.Aggregator.AS > 0xFFFF {
		dst = appendAttrHeader(dst, FlagOptional|FlagTransitive, AttrAS4Aggregator, 8)
		as := a.Aggregator.AS
		dst = append(dst, byte(as>>24), byte(as>>16), byte(as>>8), byte(as))
		dst = a.Aggregator.Addr.AppendBytes(dst)
	}
	for _, u := range a.Unknown {
		dst = appendAttrHeader(dst, u.Flags&^FlagExtLen, u.Type, len(u.Value))
		dst = append(dst, u.Value...)
	}
	return dst
}

// appendMPReach appends the MP_REACH_NLRI attribute (RFC 4760 section 3):
// AFI, SAFI, next-hop length + next hop, one reserved octet, NLRI. The
// address family is taken from the NLRI (all prefixes in one MP_REACH
// share a family); with no NLRI it reflects the next hop's family.
func (a PathAttrs) appendMPReach(dst []byte, nlri []netaddr.Prefix) []byte {
	fam := netaddr.FamilyV6
	if len(nlri) > 0 {
		fam = nlri[0].Family()
	} else if a.HasNextHop {
		fam = a.NextHop.Family()
	}
	vlen := 2 + 1 + 1 + 1 // AFI + SAFI + nhLen + reserved
	if a.HasNextHop {
		vlen += a.NextHop.Bits() / 8
	}
	for _, p := range nlri {
		vlen += 1 + p.WireLen()
	}
	dst = appendAttrHeader(dst, FlagOptional, AttrMPReachNLRI, vlen)
	afi := fam.AFI()
	dst = append(dst, byte(afi>>8), byte(afi), SAFIUnicast)
	if a.HasNextHop {
		dst = append(dst, byte(a.NextHop.Bits()/8))
		dst = a.NextHop.AppendBytes(dst)
	} else {
		dst = append(dst, 0)
	}
	dst = append(dst, 0) // reserved
	for _, p := range nlri {
		dst = p.AppendWire(dst)
	}
	return dst
}

// appendMPUnreach appends the MP_UNREACH_NLRI attribute (RFC 4760
// section 4): AFI, SAFI, withdrawn routes.
func appendMPUnreach(dst []byte, withdrawn []netaddr.Prefix) []byte {
	vlen := 3
	for _, p := range withdrawn {
		vlen += 1 + p.WireLen()
	}
	dst = appendAttrHeader(dst, FlagOptional, AttrMPUnreachNLRI, vlen)
	afi := withdrawn[0].Family().AFI()
	dst = append(dst, byte(afi>>8), byte(afi), SAFIUnicast)
	for _, p := range withdrawn {
		dst = p.AppendWire(dst)
	}
	return dst
}

// mpAttrData carries the UPDATE-level payload that RFC 4760 moves inside
// the attribute block: MP announced/withdrawn prefixes and the MP next
// hop. parseUpdate folds it back into the Update.
type mpAttrData struct {
	nlri       []netaddr.Prefix
	withdrawn  []netaddr.Prefix
	nextHop    netaddr.Addr
	hasNextHop bool
}

// parseAttrs decodes a path attribute block of exactly len(b) bytes in
// 2-octet canonical mode, discarding MP payload data.
func parseAttrs(b []byte) (PathAttrs, error) {
	a, _, err := parseAttrsMode(b, false)
	return a, err
}

// parseAttrsMode decodes a path attribute block. as4 selects the AS_PATH
// and AGGREGATOR encoding negotiated for the session (RFC 6793); in
// 2-octet mode AS4_PATH/AS4_AGGREGATOR are merged per RFC 6793 4.2.3.
func parseAttrsMode(b []byte, as4 bool) (PathAttrs, mpAttrData, error) {
	var a PathAttrs
	var mp mpAttrData
	var as4Path *ASPath
	var as4Agg *Aggregator
	seen := map[AttrType]bool{}
	for len(b) > 0 {
		if len(b) < 3 {
			return a, mp, notifyErrf(ErrCodeUpdate, ErrSubMalformedAttrList, nil, "truncated attribute header")
		}
		flags := b[0]
		typ := AttrType(b[1])
		var vlen, hlen int
		if flags&FlagExtLen != 0 {
			if len(b) < 4 {
				return a, mp, notifyErrf(ErrCodeUpdate, ErrSubMalformedAttrList, nil, "truncated extended attribute header")
			}
			vlen = int(b[2])<<8 | int(b[3])
			hlen = 4
		} else {
			vlen = int(b[2])
			hlen = 3
		}
		if len(b) < hlen+vlen {
			return a, mp, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, b[:min(len(b), hlen)], "attribute %s length %d overruns block", typ, vlen)
		}
		val := b[hlen : hlen+vlen]
		if seen[typ] {
			return a, mp, notifyErrf(ErrCodeUpdate, ErrSubMalformedAttrList, nil, "duplicate attribute %s", typ)
		}
		seen[typ] = true

		if err := checkAttrFlags(flags, typ); err != nil {
			return a, mp, err
		}
		switch typ {
		case AttrOrigin:
			if vlen != 1 {
				return a, mp, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "ORIGIN length %d", vlen)
			}
			if val[0] > byte(OriginIncomplete) {
				return a, mp, notifyErrf(ErrCodeUpdate, ErrSubInvalidOrigin, val, "ORIGIN value %d", val[0])
			}
			a.Origin, a.HasOrigin = Origin(val[0]), true
		case AttrASPath:
			size := 2
			if as4 {
				size = 4
			}
			p, err := parseASPath(val, size)
			if err != nil {
				return a, mp, err
			}
			a.ASPath = p
		case AttrNextHop:
			if vlen != 4 {
				return a, mp, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "NEXT_HOP length %d", vlen)
			}
			a.NextHop, a.HasNextHop = netaddr.AddrFromBytes(val), true
		case AttrMED:
			if vlen != 4 {
				return a, mp, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "MED length %d", vlen)
			}
			a.MED, a.HasMED = be32(val), true
		case AttrLocalPref:
			if vlen != 4 {
				return a, mp, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "LOCAL_PREF length %d", vlen)
			}
			a.LocalPref, a.HasLocalPref = be32(val), true
		case AttrAtomicAggregate:
			if vlen != 0 {
				return a, mp, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "ATOMIC_AGGREGATE length %d", vlen)
			}
			a.AtomicAggregate = true
		case AttrAggregator:
			if as4 {
				if vlen != 8 {
					return a, mp, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "AGGREGATOR length %d", vlen)
				}
				a.Aggregator = &Aggregator{AS: be32(val[:4]), Addr: netaddr.AddrFromBytes(val[4:8])}
			} else {
				if vlen != 6 {
					return a, mp, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "AGGREGATOR length %d", vlen)
				}
				a.Aggregator = &Aggregator{
					AS:   uint32(val[0])<<8 | uint32(val[1]),
					Addr: netaddr.AddrFromBytes(val[2:6]),
				}
			}
		case AttrCommunities:
			if vlen%4 != 0 {
				return a, mp, notifyErrf(ErrCodeUpdate, ErrSubOptAttr, val, "COMMUNITIES length %d", vlen)
			}
			for i := 0; i < vlen; i += 4 {
				a.Communities = append(a.Communities, Community(be32(val[i:i+4])))
			}
		case AttrMPReachNLRI:
			if err := parseMPReach(val, &mp); err != nil {
				return a, mp, err
			}
		case AttrMPUnreachNLRI:
			if err := parseMPUnreach(val, &mp); err != nil {
				return a, mp, err
			}
		case AttrAS4Path:
			p, err := parseASPath(val, 4)
			if err != nil {
				return a, mp, err
			}
			// A session that negotiated 4-octet ASNs must not see AS4_PATH;
			// RFC 6793 says discard it there.
			if !as4 {
				as4Path = &p
			}
		case AttrAS4Aggregator:
			if vlen != 8 {
				return a, mp, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "AS4_AGGREGATOR length %d", vlen)
			}
			if !as4 {
				as4Agg = &Aggregator{AS: be32(val[:4]), Addr: netaddr.AddrFromBytes(val[4:8])}
			}
		default:
			if flags&FlagOptional == 0 {
				return a, mp, notifyErrf(ErrCodeUpdate, ErrSubUnrecognizedWellKnown, val, "unrecognized well-known attribute %d", typ)
			}
			// Unknown optional attribute: keep transitive ones (with the
			// partial bit set on re-advertisement), drop non-transitive.
			if flags&FlagTransitive != 0 {
				a.Unknown = append(a.Unknown, RawAttr{
					Flags: flags | FlagPartial,
					Type:  typ,
					Value: append([]byte(nil), val...),
				})
			}
		}
		b = b[hlen+vlen:]
	}
	if as4Path != nil {
		a.ASPath = mergeAS4Path(a.ASPath, *as4Path)
	}
	if as4Agg != nil && a.Aggregator != nil && a.Aggregator.AS == ASTrans {
		agg := *as4Agg
		a.Aggregator = &agg
	}
	return a, mp, nil
}

// parseMPReach decodes an MP_REACH_NLRI value: AFI, SAFI, next hop,
// reserved octet, NLRI.
func parseMPReach(val []byte, mp *mpAttrData) error {
	if len(val) < 5 {
		return notifyErrf(ErrCodeUpdate, ErrSubOptAttr, val, "MP_REACH_NLRI length %d", len(val))
	}
	afi := uint16(val[0])<<8 | uint16(val[1])
	safi := val[2]
	fam, ok := netaddr.FamilyFromAFI(afi)
	if !ok || safi != SAFIUnicast {
		return notifyErrf(ErrCodeUpdate, ErrSubOptAttr, val[:3], "MP_REACH_NLRI unsupported AFI %d / SAFI %d", afi, safi)
	}
	nhLen := int(val[3])
	if len(val) < 4+nhLen+1 {
		return notifyErrf(ErrCodeUpdate, ErrSubOptAttr, nil, "MP_REACH_NLRI next hop overruns attribute")
	}
	switch nhLen {
	case 0:
	case 4, 16:
		mp.nextHop = netaddr.AddrFromBytes(val[4 : 4+nhLen])
		mp.hasNextHop = true
	default:
		return notifyErrf(ErrCodeUpdate, ErrSubOptAttr, nil, "MP_REACH_NLRI next hop length %d", nhLen)
	}
	nb := val[4+nhLen+1:] // skip reserved octet
	for len(nb) > 0 {
		p, n, err := netaddr.PrefixFromWireFamily(nb, fam)
		if err != nil {
			return notifyErrf(ErrCodeUpdate, ErrSubOptAttr, nil, "MP_REACH_NLRI: %v", err)
		}
		mp.nlri = append(mp.nlri, p)
		nb = nb[n:]
	}
	return nil
}

// parseMPUnreach decodes an MP_UNREACH_NLRI value: AFI, SAFI, withdrawn
// routes.
func parseMPUnreach(val []byte, mp *mpAttrData) error {
	if len(val) < 3 {
		return notifyErrf(ErrCodeUpdate, ErrSubOptAttr, val, "MP_UNREACH_NLRI length %d", len(val))
	}
	afi := uint16(val[0])<<8 | uint16(val[1])
	safi := val[2]
	fam, ok := netaddr.FamilyFromAFI(afi)
	if !ok || safi != SAFIUnicast {
		return notifyErrf(ErrCodeUpdate, ErrSubOptAttr, val[:3], "MP_UNREACH_NLRI unsupported AFI %d / SAFI %d", afi, safi)
	}
	nb := val[3:]
	for len(nb) > 0 {
		p, n, err := netaddr.PrefixFromWireFamily(nb, fam)
		if err != nil {
			return notifyErrf(ErrCodeUpdate, ErrSubOptAttr, nil, "MP_UNREACH_NLRI: %v", err)
		}
		mp.withdrawn = append(mp.withdrawn, p)
		nb = nb[n:]
	}
	return nil
}

// validateForAnnounce enforces the mandatory attributes that RFC 4271
// requires when an UPDATE carries NLRI.
func (a PathAttrs) validateForAnnounce() error {
	if !a.HasOrigin {
		return notifyErrf(ErrCodeUpdate, ErrSubMissingWellKnown, []byte{byte(AttrOrigin)}, "missing ORIGIN")
	}
	if !a.HasNextHop {
		return notifyErrf(ErrCodeUpdate, ErrSubMissingWellKnown, []byte{byte(AttrNextHop)}, "missing NEXT_HOP")
	}
	return nil
}

// checkAttrFlags enforces RFC 4271 section 5's flag rules for the
// attributes this implementation recognizes: well-known attributes must be
// transitive and not optional; MED and the RFC 4760 MP attributes are
// optional non-transitive; AGGREGATOR, COMMUNITIES, and the RFC 6793 AS4
// attributes are optional transitive. Violations yield the attribute-flags
// error (subcode 4).
func checkAttrFlags(flags byte, typ AttrType) error {
	bad := func() error {
		return notifyErrf(ErrCodeUpdate, ErrSubAttrFlags, []byte{flags, byte(typ)},
			"attribute %s has invalid flags %#x", typ, flags)
	}
	switch typ {
	case AttrOrigin, AttrASPath, AttrNextHop, AttrLocalPref, AttrAtomicAggregate:
		// Well-known: transitive set, optional clear.
		if flags&FlagOptional != 0 || flags&FlagTransitive == 0 {
			return bad()
		}
	case AttrMED, AttrMPReachNLRI, AttrMPUnreachNLRI:
		// Optional non-transitive.
		if flags&FlagOptional == 0 || flags&FlagTransitive != 0 {
			return bad()
		}
	case AttrAggregator, AttrCommunities, AttrAS4Path, AttrAS4Aggregator:
		// Optional transitive.
		if flags&FlagOptional == 0 || flags&FlagTransitive == 0 {
			return bad()
		}
	}
	return nil
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
