package wire

import (
	"fmt"
	"sort"
	"strings"

	"bgpbench/internal/netaddr"
)

// Community is an RFC 1997 community value, conventionally written
// "asn:value".
type Community uint32

// String renders the conventional "asn:value" form.
func (c Community) String() string {
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xFFFF)
}

// CommunityFrom builds a community from its AS and value halves.
func CommunityFrom(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// Aggregator is the AGGREGATOR attribute value: the AS and router that
// formed an aggregate route.
type Aggregator struct {
	AS   uint16
	Addr netaddr.Addr
}

// RawAttr preserves an optional transitive attribute this implementation
// does not interpret, so it can be forwarded unchanged (RFC 4271 sec 5).
type RawAttr struct {
	Flags byte
	Type  AttrType
	Value []byte
}

// PathAttrs is the parsed path attribute block of an UPDATE message. The
// zero value has no attributes set; HasMED/HasLocalPref discriminate unset
// optional attributes from zero-valued ones.
type PathAttrs struct {
	Origin          Origin
	HasOrigin       bool
	ASPath          ASPath
	NextHop         netaddr.Addr
	HasNextHop      bool
	MED             uint32
	HasMED          bool
	LocalPref       uint32
	HasLocalPref    bool
	AtomicAggregate bool
	Aggregator      *Aggregator
	Communities     []Community
	Unknown         []RawAttr
}

// NewPathAttrs builds the minimal well-formed attribute set for an
// announcement: ORIGIN, AS_PATH, and NEXT_HOP.
func NewPathAttrs(origin Origin, path ASPath, nextHop netaddr.Addr) PathAttrs {
	return PathAttrs{
		Origin:     origin,
		HasOrigin:  true,
		ASPath:     path,
		NextHop:    nextHop,
		HasNextHop: true,
	}
}

// Clone deep-copies the attribute set.
func (a PathAttrs) Clone() PathAttrs {
	out := a
	out.ASPath = a.ASPath.Clone()
	if a.Aggregator != nil {
		agg := *a.Aggregator
		out.Aggregator = &agg
	}
	out.Communities = append([]Community(nil), a.Communities...)
	if a.Unknown != nil {
		out.Unknown = make([]RawAttr, len(a.Unknown))
		for i, u := range a.Unknown {
			out.Unknown[i] = RawAttr{Flags: u.Flags, Type: u.Type, Value: append([]byte(nil), u.Value...)}
		}
	}
	return out
}

// Equal reports semantic equality of two attribute sets (unknown attributes
// compare by exact bytes).
func (a PathAttrs) Equal(b PathAttrs) bool {
	if a.HasOrigin != b.HasOrigin || (a.HasOrigin && a.Origin != b.Origin) {
		return false
	}
	if !a.ASPath.Equal(b.ASPath) {
		return false
	}
	if a.HasNextHop != b.HasNextHop || (a.HasNextHop && a.NextHop != b.NextHop) {
		return false
	}
	if a.HasMED != b.HasMED || (a.HasMED && a.MED != b.MED) {
		return false
	}
	if a.HasLocalPref != b.HasLocalPref || (a.HasLocalPref && a.LocalPref != b.LocalPref) {
		return false
	}
	if a.AtomicAggregate != b.AtomicAggregate {
		return false
	}
	if (a.Aggregator == nil) != (b.Aggregator == nil) {
		return false
	}
	if a.Aggregator != nil && *a.Aggregator != *b.Aggregator {
		return false
	}
	if len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	if len(a.Unknown) != len(b.Unknown) {
		return false
	}
	for i := range a.Unknown {
		u, v := a.Unknown[i], b.Unknown[i]
		if u.Flags != v.Flags || u.Type != v.Type || string(u.Value) != string(v.Value) {
			return false
		}
	}
	return true
}

// HasCommunity reports whether the set carries the given community.
func (a PathAttrs) HasCommunity(c Community) bool {
	for _, x := range a.Communities {
		if x == c {
			return true
		}
	}
	return false
}

// String summarizes the attributes for logs.
func (a PathAttrs) String() string {
	var parts []string
	if a.HasOrigin {
		parts = append(parts, "origin="+a.Origin.String())
	}
	parts = append(parts, "as-path=["+a.ASPath.String()+"]")
	if a.HasNextHop {
		parts = append(parts, "next-hop="+a.NextHop.String())
	}
	if a.HasMED {
		parts = append(parts, fmt.Sprintf("med=%d", a.MED))
	}
	if a.HasLocalPref {
		parts = append(parts, fmt.Sprintf("local-pref=%d", a.LocalPref))
	}
	if len(a.Communities) > 0 {
		cs := make([]string, len(a.Communities))
		for i, c := range a.Communities {
			cs[i] = c.String()
		}
		parts = append(parts, "communities="+strings.Join(cs, ","))
	}
	return strings.Join(parts, " ")
}

// MarshalAttrs renders the canonical path-attribute block encoding of a.
// Equal attribute sets produce identical bytes, so the result doubles as
// a grouping key when coalescing routes into shared UPDATE messages.
func MarshalAttrs(a PathAttrs) []byte {
	return a.appendWire(nil)
}

// UnmarshalAttrs decodes a path-attribute block (the inverse of
// MarshalAttrs). MRT table dumps store attribute blocks in this format.
func UnmarshalAttrs(b []byte) (PathAttrs, error) {
	return parseAttrs(b)
}

func appendAttrHeader(dst []byte, flags byte, typ AttrType, valLen int) []byte {
	if valLen > 255 {
		flags |= FlagExtLen
		return append(dst, flags, byte(typ), byte(valLen>>8), byte(valLen))
	}
	return append(dst, flags, byte(typ), byte(valLen))
}

// appendWire appends the full path attribute block. Attributes are emitted
// in ascending type-code order, which keeps encodings canonical and
// deterministic for tests.
func (a PathAttrs) appendWire(dst []byte) []byte {
	if a.HasOrigin {
		dst = appendAttrHeader(dst, FlagTransitive, AttrOrigin, 1)
		dst = append(dst, byte(a.Origin))
	}
	// AS_PATH is always emitted (possibly empty) when any attribute is
	// present: it is mandatory for announcements.
	pl := a.ASPath.wireLen()
	dst = appendAttrHeader(dst, FlagTransitive, AttrASPath, pl)
	dst = a.ASPath.appendWire(dst)
	if a.HasNextHop {
		dst = appendAttrHeader(dst, FlagTransitive, AttrNextHop, 4)
		dst = a.NextHop.AppendBytes(dst)
	}
	if a.HasMED {
		dst = appendAttrHeader(dst, FlagOptional, AttrMED, 4)
		dst = append(dst, byte(a.MED>>24), byte(a.MED>>16), byte(a.MED>>8), byte(a.MED))
	}
	if a.HasLocalPref {
		dst = appendAttrHeader(dst, FlagTransitive, AttrLocalPref, 4)
		dst = append(dst, byte(a.LocalPref>>24), byte(a.LocalPref>>16), byte(a.LocalPref>>8), byte(a.LocalPref))
	}
	if a.AtomicAggregate {
		dst = appendAttrHeader(dst, FlagTransitive, AttrAtomicAggregate, 0)
	}
	if a.Aggregator != nil {
		dst = appendAttrHeader(dst, FlagOptional|FlagTransitive, AttrAggregator, 6)
		dst = append(dst, byte(a.Aggregator.AS>>8), byte(a.Aggregator.AS))
		dst = a.Aggregator.Addr.AppendBytes(dst)
	}
	if len(a.Communities) > 0 {
		cs := append([]Community(nil), a.Communities...)
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		dst = appendAttrHeader(dst, FlagOptional|FlagTransitive, AttrCommunities, 4*len(cs))
		for _, c := range cs {
			dst = append(dst, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
		}
	}
	for _, u := range a.Unknown {
		dst = appendAttrHeader(dst, u.Flags&^FlagExtLen, u.Type, len(u.Value))
		dst = append(dst, u.Value...)
	}
	return dst
}

// parseAttrs decodes a path attribute block of exactly len(b) bytes.
func parseAttrs(b []byte) (PathAttrs, error) {
	var a PathAttrs
	seen := map[AttrType]bool{}
	for len(b) > 0 {
		if len(b) < 3 {
			return a, notifyErrf(ErrCodeUpdate, ErrSubMalformedAttrList, nil, "truncated attribute header")
		}
		flags := b[0]
		typ := AttrType(b[1])
		var vlen, hlen int
		if flags&FlagExtLen != 0 {
			if len(b) < 4 {
				return a, notifyErrf(ErrCodeUpdate, ErrSubMalformedAttrList, nil, "truncated extended attribute header")
			}
			vlen = int(b[2])<<8 | int(b[3])
			hlen = 4
		} else {
			vlen = int(b[2])
			hlen = 3
		}
		if len(b) < hlen+vlen {
			return a, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, b[:min(len(b), hlen)], "attribute %s length %d overruns block", typ, vlen)
		}
		val := b[hlen : hlen+vlen]
		if seen[typ] {
			return a, notifyErrf(ErrCodeUpdate, ErrSubMalformedAttrList, nil, "duplicate attribute %s", typ)
		}
		seen[typ] = true

		if err := checkAttrFlags(flags, typ); err != nil {
			return a, err
		}
		switch typ {
		case AttrOrigin:
			if vlen != 1 {
				return a, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "ORIGIN length %d", vlen)
			}
			if val[0] > byte(OriginIncomplete) {
				return a, notifyErrf(ErrCodeUpdate, ErrSubInvalidOrigin, val, "ORIGIN value %d", val[0])
			}
			a.Origin, a.HasOrigin = Origin(val[0]), true
		case AttrASPath:
			p, err := parseASPath(val)
			if err != nil {
				return a, err
			}
			a.ASPath = p
		case AttrNextHop:
			if vlen != 4 {
				return a, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "NEXT_HOP length %d", vlen)
			}
			a.NextHop, a.HasNextHop = netaddr.AddrFromBytes(val), true
		case AttrMED:
			if vlen != 4 {
				return a, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "MED length %d", vlen)
			}
			a.MED, a.HasMED = be32(val), true
		case AttrLocalPref:
			if vlen != 4 {
				return a, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "LOCAL_PREF length %d", vlen)
			}
			a.LocalPref, a.HasLocalPref = be32(val), true
		case AttrAtomicAggregate:
			if vlen != 0 {
				return a, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "ATOMIC_AGGREGATE length %d", vlen)
			}
			a.AtomicAggregate = true
		case AttrAggregator:
			if vlen != 6 {
				return a, notifyErrf(ErrCodeUpdate, ErrSubAttrLength, val, "AGGREGATOR length %d", vlen)
			}
			a.Aggregator = &Aggregator{
				AS:   uint16(val[0])<<8 | uint16(val[1]),
				Addr: netaddr.AddrFromBytes(val[2:6]),
			}
		case AttrCommunities:
			if vlen%4 != 0 {
				return a, notifyErrf(ErrCodeUpdate, ErrSubOptAttr, val, "COMMUNITIES length %d", vlen)
			}
			for i := 0; i < vlen; i += 4 {
				a.Communities = append(a.Communities, Community(be32(val[i:i+4])))
			}
		default:
			if flags&FlagOptional == 0 {
				return a, notifyErrf(ErrCodeUpdate, ErrSubUnrecognizedWellKnown, val, "unrecognized well-known attribute %d", typ)
			}
			// Unknown optional attribute: keep transitive ones (with the
			// partial bit set on re-advertisement), drop non-transitive.
			if flags&FlagTransitive != 0 {
				a.Unknown = append(a.Unknown, RawAttr{
					Flags: flags | FlagPartial,
					Type:  typ,
					Value: append([]byte(nil), val...),
				})
			}
		}
		b = b[hlen+vlen:]
	}
	return a, nil
}

// validateForAnnounce enforces the mandatory attributes that RFC 4271
// requires when an UPDATE carries NLRI.
func (a PathAttrs) validateForAnnounce() error {
	if !a.HasOrigin {
		return notifyErrf(ErrCodeUpdate, ErrSubMissingWellKnown, []byte{byte(AttrOrigin)}, "missing ORIGIN")
	}
	if !a.HasNextHop {
		return notifyErrf(ErrCodeUpdate, ErrSubMissingWellKnown, []byte{byte(AttrNextHop)}, "missing NEXT_HOP")
	}
	return nil
}

// checkAttrFlags enforces RFC 4271 section 5's flag rules for the
// attributes this implementation recognizes: well-known attributes must be
// transitive and not optional; MED is optional non-transitive; AGGREGATOR
// and COMMUNITIES are optional transitive. Violations yield the
// attribute-flags error (subcode 4).
func checkAttrFlags(flags byte, typ AttrType) error {
	bad := func() error {
		return notifyErrf(ErrCodeUpdate, ErrSubAttrFlags, []byte{flags, byte(typ)},
			"attribute %s has invalid flags %#x", typ, flags)
	}
	switch typ {
	case AttrOrigin, AttrASPath, AttrNextHop, AttrLocalPref, AttrAtomicAggregate:
		// Well-known: transitive set, optional clear.
		if flags&FlagOptional != 0 || flags&FlagTransitive == 0 {
			return bad()
		}
	case AttrMED:
		// Optional non-transitive.
		if flags&FlagOptional == 0 || flags&FlagTransitive != 0 {
			return bad()
		}
	case AttrAggregator, AttrCommunities:
		// Optional transitive.
		if flags&FlagOptional == 0 || flags&FlagTransitive == 0 {
			return bad()
		}
	}
	return nil
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
