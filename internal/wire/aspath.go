package wire

import (
	"strconv"
	"strings"
)

// ASSegment is one segment of an AS_PATH attribute: either an ordered
// AS_SEQUENCE or an unordered AS_SET (produced by aggregation).
type ASSegment struct {
	Type byte // SegASSet or SegASSequence
	ASNs []uint16
}

// ASPath is the full AS_PATH attribute value: a list of segments.
type ASPath struct {
	Segments []ASSegment
}

// NewASPath builds a single-sequence path from the given ASNs. An empty
// argument list yields an empty path (as originated by the local AS before
// prepending).
func NewASPath(asns ...uint16) ASPath {
	if len(asns) == 0 {
		return ASPath{}
	}
	seg := ASSegment{Type: SegASSequence, ASNs: append([]uint16(nil), asns...)}
	return ASPath{Segments: []ASSegment{seg}}
}

// Length returns the AS-path length used by the decision process: each AS in
// a sequence counts 1, and each AS_SET counts 1 in total (RFC 4271 sec 9.1.2.2).
func (p ASPath) Length() int {
	n := 0
	for _, s := range p.Segments {
		if s.Type == SegASSet {
			n++
		} else {
			n += len(s.ASNs)
		}
	}
	return n
}

// Contains reports whether the path traverses the given AS. It is the loop
// detection predicate from RFC 4271 section 9.1.2.
func (p ASPath) Contains(asn uint16) bool {
	for _, s := range p.Segments {
		for _, a := range s.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// First returns the neighbouring AS (the first AS of the first sequence
// segment) and true, or 0 and false for an empty path.
func (p ASPath) First() (uint16, bool) {
	for _, s := range p.Segments {
		if len(s.ASNs) > 0 {
			return s.ASNs[0], true
		}
	}
	return 0, false
}

// Origin returns the originating AS (the last AS of the path) and true, or
// 0 and false for an empty path.
func (p ASPath) Origin() (uint16, bool) {
	for i := len(p.Segments) - 1; i >= 0; i-- {
		s := p.Segments[i]
		if len(s.ASNs) > 0 {
			return s.ASNs[len(s.ASNs)-1], true
		}
	}
	return 0, false
}

// Prepend returns a copy of the path with asn prepended to the leading
// AS_SEQUENCE, creating one if the path starts with a set or is empty. The
// receiver is not modified; paths are treated as immutable once stored in a
// RIB.
func (p ASPath) Prepend(asn uint16) ASPath {
	if len(p.Segments) == 0 || p.Segments[0].Type != SegASSequence {
		segs := make([]ASSegment, 0, len(p.Segments)+1)
		segs = append(segs, ASSegment{Type: SegASSequence, ASNs: []uint16{asn}})
		for _, s := range p.Segments {
			segs = append(segs, ASSegment{Type: s.Type, ASNs: append([]uint16(nil), s.ASNs...)})
		}
		return ASPath{Segments: segs}
	}
	segs := make([]ASSegment, len(p.Segments))
	head := p.Segments[0]
	asns := make([]uint16, 0, len(head.ASNs)+1)
	asns = append(asns, asn)
	asns = append(asns, head.ASNs...)
	segs[0] = ASSegment{Type: SegASSequence, ASNs: asns}
	for i := 1; i < len(p.Segments); i++ {
		s := p.Segments[i]
		segs[i] = ASSegment{Type: s.Type, ASNs: append([]uint16(nil), s.ASNs...)}
	}
	return ASPath{Segments: segs}
}

// Clone deep-copies the path.
func (p ASPath) Clone() ASPath {
	segs := make([]ASSegment, len(p.Segments))
	for i, s := range p.Segments {
		segs[i] = ASSegment{Type: s.Type, ASNs: append([]uint16(nil), s.ASNs...)}
	}
	return ASPath{Segments: segs}
}

// Equal reports deep equality of two paths.
func (p ASPath) Equal(q ASPath) bool {
	if len(p.Segments) != len(q.Segments) {
		return false
	}
	for i := range p.Segments {
		a, b := p.Segments[i], q.Segments[i]
		if a.Type != b.Type || len(a.ASNs) != len(b.ASNs) {
			return false
		}
		for j := range a.ASNs {
			if a.ASNs[j] != b.ASNs[j] {
				return false
			}
		}
	}
	return true
}

// String renders the path in the conventional "65001 65002 {65003,65004}"
// notation.
func (p ASPath) String() string {
	var b strings.Builder
	for i, s := range p.Segments {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.Type == SegASSet {
			b.WriteByte('{')
			for j, a := range s.ASNs {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatUint(uint64(a), 10))
			}
			b.WriteByte('}')
		} else {
			for j, a := range s.ASNs {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(strconv.FormatUint(uint64(a), 10))
			}
		}
	}
	return b.String()
}

// appendWire appends the attribute value encoding of the path.
func (p ASPath) appendWire(dst []byte) []byte {
	for _, s := range p.Segments {
		dst = append(dst, s.Type, byte(len(s.ASNs)))
		for _, a := range s.ASNs {
			dst = append(dst, byte(a>>8), byte(a))
		}
	}
	return dst
}

// wireLen returns the encoded size of the path attribute value.
func (p ASPath) wireLen() int {
	n := 0
	for _, s := range p.Segments {
		n += 2 + 2*len(s.ASNs)
	}
	return n
}

// parseASPath decodes an AS_PATH attribute value.
func parseASPath(b []byte) (ASPath, error) {
	var p ASPath
	for len(b) > 0 {
		if len(b) < 2 {
			return ASPath{}, notifyErrf(ErrCodeUpdate, ErrSubMalformedASPath, nil, "truncated AS_PATH segment header")
		}
		typ, cnt := b[0], int(b[1])
		if typ != SegASSet && typ != SegASSequence {
			return ASPath{}, notifyErrf(ErrCodeUpdate, ErrSubMalformedASPath, nil, "bad AS_PATH segment type %d", typ)
		}
		if cnt == 0 {
			return ASPath{}, notifyErrf(ErrCodeUpdate, ErrSubMalformedASPath, nil, "empty AS_PATH segment")
		}
		need := 2 + 2*cnt
		if len(b) < need {
			return ASPath{}, notifyErrf(ErrCodeUpdate, ErrSubMalformedASPath, nil, "truncated AS_PATH segment body")
		}
		seg := ASSegment{Type: typ, ASNs: make([]uint16, cnt)}
		for i := 0; i < cnt; i++ {
			seg.ASNs[i] = uint16(b[2+2*i])<<8 | uint16(b[3+2*i])
		}
		p.Segments = append(p.Segments, seg)
		b = b[need:]
	}
	return p, nil
}
