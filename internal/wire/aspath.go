package wire

import (
	"strconv"
	"strings"
)

// ASSegment is one segment of an AS_PATH attribute: either an ordered
// AS_SEQUENCE or an unordered AS_SET (produced by aggregation). ASNs are
// 4-octet (RFC 6793); when a session negotiates only 2-octet AS numbers,
// values above 0xFFFF are substituted with AS_TRANS on the wire and the
// true path travels in the AS4_PATH attribute.
type ASSegment struct {
	Type byte // SegASSet or SegASSequence
	ASNs []uint32
}

// ASPath is the full AS_PATH attribute value: a list of segments.
type ASPath struct {
	Segments []ASSegment
}

// NewASPath builds a single-sequence path from the given ASNs. An empty
// argument list yields an empty path (as originated by the local AS before
// prepending).
func NewASPath(asns ...uint32) ASPath {
	if len(asns) == 0 {
		return ASPath{}
	}
	seg := ASSegment{Type: SegASSequence, ASNs: append([]uint32(nil), asns...)}
	return ASPath{Segments: []ASSegment{seg}}
}

// Length returns the AS-path length used by the decision process: each AS in
// a sequence counts 1, and each AS_SET counts 1 in total (RFC 4271 sec 9.1.2.2).
func (p ASPath) Length() int {
	n := 0
	for _, s := range p.Segments {
		if s.Type == SegASSet {
			n++
		} else {
			n += len(s.ASNs)
		}
	}
	return n
}

// asnCount returns the total number of ASNs across all segments, counting
// every AS_SET member. This is the RFC 6793 section 4.2.3 merge count, not
// the decision-process length.
func (p ASPath) asnCount() int {
	n := 0
	for _, s := range p.Segments {
		n += len(s.ASNs)
	}
	return n
}

// Contains reports whether the path traverses the given AS. It is the loop
// detection predicate from RFC 4271 section 9.1.2.
func (p ASPath) Contains(asn uint32) bool {
	for _, s := range p.Segments {
		for _, a := range s.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// First returns the neighbouring AS (the first AS of the first sequence
// segment) and true, or 0 and false for an empty path.
func (p ASPath) First() (uint32, bool) {
	for _, s := range p.Segments {
		if len(s.ASNs) > 0 {
			return s.ASNs[0], true
		}
	}
	return 0, false
}

// Origin returns the originating AS (the last AS of the path) and true, or
// 0 and false for an empty path.
func (p ASPath) Origin() (uint32, bool) {
	for i := len(p.Segments) - 1; i >= 0; i-- {
		s := p.Segments[i]
		if len(s.ASNs) > 0 {
			return s.ASNs[len(s.ASNs)-1], true
		}
	}
	return 0, false
}

// needsAS4 reports whether any ASN exceeds the 2-octet range, requiring
// AS_TRANS substitution plus an AS4_PATH attribute when encoding for an
// old (2-octet) speaker.
func (p ASPath) needsAS4() bool {
	for _, s := range p.Segments {
		for _, a := range s.ASNs {
			if a > 0xFFFF {
				return true
			}
		}
	}
	return false
}

// Prepend returns a copy of the path with asn prepended to the leading
// AS_SEQUENCE, creating one if the path starts with a set or is empty. The
// receiver is not modified; paths are treated as immutable once stored in a
// RIB.
func (p ASPath) Prepend(asn uint32) ASPath {
	if len(p.Segments) == 0 || p.Segments[0].Type != SegASSequence {
		segs := make([]ASSegment, 0, len(p.Segments)+1)
		segs = append(segs, ASSegment{Type: SegASSequence, ASNs: []uint32{asn}})
		for _, s := range p.Segments {
			segs = append(segs, ASSegment{Type: s.Type, ASNs: append([]uint32(nil), s.ASNs...)})
		}
		return ASPath{Segments: segs}
	}
	segs := make([]ASSegment, len(p.Segments))
	head := p.Segments[0]
	asns := make([]uint32, 0, len(head.ASNs)+1)
	asns = append(asns, asn)
	asns = append(asns, head.ASNs...)
	segs[0] = ASSegment{Type: SegASSequence, ASNs: asns}
	for i := 1; i < len(p.Segments); i++ {
		s := p.Segments[i]
		segs[i] = ASSegment{Type: s.Type, ASNs: append([]uint32(nil), s.ASNs...)}
	}
	return ASPath{Segments: segs}
}

// Clone deep-copies the path.
func (p ASPath) Clone() ASPath {
	segs := make([]ASSegment, len(p.Segments))
	for i, s := range p.Segments {
		segs[i] = ASSegment{Type: s.Type, ASNs: append([]uint32(nil), s.ASNs...)}
	}
	return ASPath{Segments: segs}
}

// Equal reports deep equality of two paths.
func (p ASPath) Equal(q ASPath) bool {
	if len(p.Segments) != len(q.Segments) {
		return false
	}
	for i := range p.Segments {
		a, b := p.Segments[i], q.Segments[i]
		if a.Type != b.Type || len(a.ASNs) != len(b.ASNs) {
			return false
		}
		for j := range a.ASNs {
			if a.ASNs[j] != b.ASNs[j] {
				return false
			}
		}
	}
	return true
}

// String renders the path in the conventional "65001 65002 {65003,65004}"
// notation.
func (p ASPath) String() string {
	var b strings.Builder
	for i, s := range p.Segments {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.Type == SegASSet {
			b.WriteByte('{')
			for j, a := range s.ASNs {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatUint(uint64(a), 10))
			}
			b.WriteByte('}')
		} else {
			for j, a := range s.ASNs {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(strconv.FormatUint(uint64(a), 10))
			}
		}
	}
	return b.String()
}

// appendWire appends the attribute value encoding of the path. In 2-octet
// mode (as4 false) ASNs above 0xFFFF are written as AS_TRANS; the caller
// is responsible for also emitting AS4_PATH so the true path survives.
func (p ASPath) appendWire(dst []byte, as4 bool) []byte {
	for _, s := range p.Segments {
		dst = append(dst, s.Type, byte(len(s.ASNs)))
		for _, a := range s.ASNs {
			if as4 {
				dst = append(dst, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
			} else {
				w := a
				if w > 0xFFFF {
					w = ASTrans
				}
				dst = append(dst, byte(w>>8), byte(w))
			}
		}
	}
	return dst
}

// wireLen returns the encoded size of the path attribute value.
func (p ASPath) wireLen(as4 bool) int {
	sz := 2
	if as4 {
		sz = 4
	}
	n := 0
	for _, s := range p.Segments {
		n += 2 + sz*len(s.ASNs)
	}
	return n
}

// parseASPath decodes an AS_PATH (or AS4_PATH) attribute value. asnSize is
// the per-ASN octet count: 2 for a classic AS_PATH on a 2-octet session, 4
// for AS4_PATH and for AS_PATH on a session that negotiated 4-octet AS
// numbers.
func parseASPath(b []byte, asnSize int) (ASPath, error) {
	var p ASPath
	for len(b) > 0 {
		if len(b) < 2 {
			return ASPath{}, notifyErrf(ErrCodeUpdate, ErrSubMalformedASPath, nil, "truncated AS_PATH segment header")
		}
		typ, cnt := b[0], int(b[1])
		if typ != SegASSet && typ != SegASSequence {
			return ASPath{}, notifyErrf(ErrCodeUpdate, ErrSubMalformedASPath, nil, "bad AS_PATH segment type %d", typ)
		}
		if cnt == 0 {
			return ASPath{}, notifyErrf(ErrCodeUpdate, ErrSubMalformedASPath, nil, "empty AS_PATH segment")
		}
		need := 2 + asnSize*cnt
		if len(b) < need {
			return ASPath{}, notifyErrf(ErrCodeUpdate, ErrSubMalformedASPath, nil, "truncated AS_PATH segment body")
		}
		seg := ASSegment{Type: typ, ASNs: make([]uint32, cnt)}
		for i := 0; i < cnt; i++ {
			off := 2 + asnSize*i
			if asnSize == 4 {
				seg.ASNs[i] = uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
			} else {
				seg.ASNs[i] = uint32(b[off])<<8 | uint32(b[off+1])
			}
		}
		p.Segments = append(p.Segments, seg)
		b = b[need:]
	}
	return p, nil
}

// mergeAS4Path reconstructs the true path from a 2-octet AS_PATH (with
// AS_TRANS substitutions) and the AS4_PATH attribute, per RFC 6793
// section 4.2.3: when AS4_PATH claims more ASNs than AS_PATH it is
// ignored; otherwise the merged path is the leading (n - n4) ASNs of
// AS_PATH followed by all of AS4_PATH.
func mergeAS4Path(path, as4 ASPath) ASPath {
	n, n4 := path.asnCount(), as4.asnCount()
	if n4 > n || n4 == 0 {
		return path
	}
	lead := n - n4
	if lead == 0 {
		return as4.Clone()
	}
	var out ASPath
	taken := 0
	for _, s := range path.Segments {
		if taken >= lead {
			break
		}
		take := len(s.ASNs)
		if taken+take > lead {
			take = lead - taken
		}
		out.Segments = append(out.Segments, ASSegment{Type: s.Type, ASNs: append([]uint32(nil), s.ASNs[:take]...)})
		taken += take
	}
	for _, s := range as4.Segments {
		out.Segments = append(out.Segments, ASSegment{Type: s.Type, ASNs: append([]uint32(nil), s.ASNs...)})
	}
	return out
}
