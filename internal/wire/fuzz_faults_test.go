package wire

import (
	"bgpbench/internal/netaddr"

	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"bgpbench/internal/netem"
)

// openWithCaps builds the richest OPEN this speaker can emit: all four
// known capability codes, one with a multi-byte value.
func openWithCaps(t testing.TB) []byte {
	t.Helper()
	opt, err := MarshalCapabilities([]Capability{
		MultiprotocolIPv4Unicast(),
		RouteRefreshCapability(),
		{Code: CapGracefulRestart, Value: []byte{0x40, 0x78, 0x00, 0x01, 0x01, 0x80}},
		{Code: CapFourOctetAS, Value: []byte{0x00, 0x00, 0xFD, 0xE9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOpen(65001, 90, netaddr.AddrFromV4(0x0A000001))
	o.OptParams = opt
	b, err := Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParseNeverPanicsOnCorruptedOpenCapabilities flips bytes inside an
// OPEN whose optional-parameter block carries capabilities. Both the
// message parser and ParseCapabilities must reject or accept — never
// panic — and anything accepted must survive a remarshal round trip.
func TestParseNeverPanicsOnCorruptedOpenCapabilities(t *testing.T) {
	r := rand.New(rand.NewSource(1704))
	seed := openWithCaps(t)
	for i := 0; i < 30000; i++ {
		buf := append([]byte(nil), seed...)
		for flips := 1 + r.Intn(4); flips > 0; flips-- {
			// Corrupt past the marker; bias toward the optional-parameter
			// region (byte 28 = opt param length, 29.. = capabilities).
			pos := 16 + r.Intn(len(buf)-16)
			if r.Intn(2) == 0 {
				pos = 28 + r.Intn(len(buf)-28)
			}
			buf[pos] ^= byte(1 << r.Intn(8))
		}
		m, err := Parse(buf)
		if err != nil {
			continue
		}
		o, ok := m.(Open)
		if !ok {
			continue // a flip rewrote the type byte
		}
		caps, err := ParseCapabilities(o.OptParams)
		if err == nil {
			for _, c := range caps {
				_ = c.String()
			}
		}
		out, err := Marshal(o)
		if err != nil {
			t.Fatalf("accepted OPEN failed to marshal: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("remarshaled OPEN not parseable: %v", err)
		}
	}
}

// TestParseCapabilitiesNeverPanicsOnRandomBytes drives the capability
// parser with arbitrary optional-parameter blocks.
func TestParseCapabilitiesNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(1705))
	for i := 0; i < 20000; i++ {
		b := make([]byte, r.Intn(64))
		r.Read(b)
		caps, err := ParseCapabilities(b)
		if err == nil {
			for _, c := range caps {
				_ = c.String()
				HasCapability(caps, c.Code)
			}
		}
	}
}

// TestParseNeverPanicsOnCorruptedNotifications corrupts NOTIFICATION
// frames, including ones with data payloads, and re-fixes the length
// field half of the time so the body parser is reached.
func TestParseNeverPanicsOnCorruptedNotifications(t *testing.T) {
	r := rand.New(rand.NewSource(1706))
	seeds := [][]byte{}
	for _, n := range []Notification{
		{Code: ErrCodeHoldTimer},
		{Code: ErrCodeOpen, Subcode: ErrSubBadOptParam},
		{Code: ErrCodeUpdate, Subcode: 3, Data: []byte{0x01, 0x02, 0x03, 0x04}},
		{Code: ErrCodeCease, Data: bytes.Repeat([]byte{0xAB}, 32)},
	} {
		b, err := Marshal(n)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, b)
	}
	for i := 0; i < 30000; i++ {
		seed := seeds[r.Intn(len(seeds))]
		buf := append([]byte(nil), seed...)
		for flips := 1 + r.Intn(3); flips > 0; flips-- {
			pos := 16 + r.Intn(len(buf)-16)
			buf[pos] ^= byte(1 << r.Intn(8))
		}
		if r.Intn(2) == 0 {
			buf[16] = byte(len(buf) >> 8)
			buf[17] = byte(len(buf))
		}
		m, err := Parse(buf)
		if err != nil {
			continue
		}
		if n, ok := m.(Notification); ok {
			if _, err := Marshal(n); err != nil {
				t.Fatalf("accepted NOTIFICATION failed to marshal: %v", err)
			}
		}
	}
}

// sinkConn is a minimal net.Conn that records everything written to it,
// used as the inner transport under a netem wrapper.
type sinkConn struct{ buf bytes.Buffer }

func (c *sinkConn) Write(p []byte) (int, error)      { return c.buf.Write(p) }
func (c *sinkConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (c *sinkConn) Close() error                     { return nil }
func (c *sinkConn) LocalAddr() net.Addr              { return nil }
func (c *sinkConn) RemoteAddr() net.Addr             { return nil }
func (c *sinkConn) SetDeadline(time.Time) error      { return nil }
func (c *sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (c *sinkConn) SetWriteDeadline(time.Time) error { return nil }

// netemCorruptedStreams pushes a realistic BGP session transcript (OPEN
// with capabilities, KEEPALIVE, UPDATE burst, NOTIFICATION) through
// netem corruption/reorder profiles on the virtual clock and returns the
// perturbed byte streams — the seed corpus the stream reader must survive.
func netemCorruptedStreams(t testing.TB) [][]byte {
	t.Helper()
	r := rand.New(rand.NewSource(1707))
	var transcript bytes.Buffer
	w := NewWriter(&transcript)
	var open Open
	{
		m, err := Parse(openWithCaps(t))
		if err != nil {
			t.Fatal(err)
		}
		open = m.(Open)
	}
	for _, m := range []Message{open, Keepalive{}} {
		if err := w.WriteMessage(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		u := Update{
			Attrs: NewPathAttrs(OriginIGP, NewASPath(65001, 100, 101), netaddr.AddrFromV4(0x0A000001)),
			NLRI:  randomPrefixes(r, 12),
		}
		if err := w.WriteMessage(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteMessage(Notification{Code: ErrCodeCease}); err != nil {
		t.Fatal(err)
	}
	clean := transcript.Bytes()

	var streams [][]byte
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		inj := netem.NewInjector(netem.Profile{
			Name:          "fuzz-corrupt",
			Seed:          seed,
			CorruptEvents: 4,
			ReorderEvents: 3,
			ReorderSeg:    64,
			MaxChunk:      97, // prime: chunk boundaries drift across frames
			MinOffset:     19, // first fault may land inside the OPEN
			Horizon:       int64(len(clean)),
		}, netem.NewVirtualClock())
		sink := &sinkConn{}
		nc := inj.Wrap(sink, "fuzz")
		// Mutation schedules end in a reset; if it lands inside the
		// transcript the write aborts there and the stream is truncated
		// mid-frame — exactly what a flapped session's reader sees.
		if _, err := nc.Write(append([]byte(nil), clean...)); err != nil && !netem.IsInjectedReset(err) {
			t.Fatalf("netem write: %v", err)
		}
		if bytes.Equal(sink.buf.Bytes(), clean) {
			t.Fatalf("seed %d: netem profile injected nothing", seed)
		}
		streams = append(streams, append([]byte(nil), sink.buf.Bytes()...))
	}
	return streams
}

// TestStreamReaderSurvivesNetemCorruptedFrames feeds netem-corrupted
// session transcripts to the framed stream reader: every message must
// decode, error cleanly, or end the stream — never panic or loop. This
// is exactly the byte stream a session's reader goroutine sees when the
// lossy-reorder profile fires mid-UPDATE.
func TestStreamReaderSurvivesNetemCorruptedFrames(t *testing.T) {
	for i, stream := range netemCorruptedStreams(t) {
		rd := NewReader(bytes.NewReader(stream))
		msgs, protoErrs := 0, 0
		for {
			m, err := rd.ReadMessage()
			if err != nil {
				var ne *NotifyError
				if errors.As(err, &ne) {
					// A protocol violation: resynchronization is the session
					// layer's job (it resets); keep scanning from here to
					// shake out more parser paths.
					protoErrs++
					continue
				}
				break // transport EOF (possibly mid-frame)
			}
			if m == nil {
				t.Fatalf("stream %d: nil message with nil error", i)
			}
			msgs++
			if msgs+protoErrs > 10000 {
				t.Fatalf("stream %d: reader did not terminate", i)
			}
		}
		if msgs == 0 && protoErrs == 0 {
			t.Fatalf("stream %d: corrupted transcript produced no reader activity", i)
		}
	}
}

// TestParseNeverPanicsOnNetemCorruptedFrames reframes the corrupted
// streams at true message boundaries of the clean transcript and throws
// each damaged frame at Parse — a corpus of "right length, wrong bytes"
// inputs that random flipping rarely reproduces.
func TestParseNeverPanicsOnNetemCorruptedFrames(t *testing.T) {
	for _, stream := range netemCorruptedStreams(t) {
		// Walk frames using the embedded length fields; corruption may have
		// rewritten them, so bound each slice by the remaining bytes.
		for off := 0; off+HeaderLen <= len(stream); {
			length := int(stream[off+16])<<8 | int(stream[off+17])
			if length < HeaderLen || off+length > len(stream) {
				off++ // lost framing: slide one byte, as a resync scan would
				continue
			}
			Parse(stream[off : off+length])
			off += length
		}
	}
}
