// Package wire implements marshalling and unmarshalling of BGP-4 messages
// as specified by RFC 4271. It covers the four message types (OPEN, UPDATE,
// NOTIFICATION, KEEPALIVE), the mandatory and common optional path
// attributes, and the NLRI prefix encoding. Parsing errors carry the
// NOTIFICATION error code and subcode the receiver must send, so the
// session layer can terminate sessions exactly as the RFC requires.
package wire

import "fmt"

// Version is the only BGP protocol version this package speaks.
const Version = 4

// Protocol size limits from RFC 4271 section 4.1.
const (
	HeaderLen  = 19   // marker (16) + length (2) + type (1)
	MaxMsgLen  = 4096 // maximum BGP message size, octets
	MinOpenLen = 29   // header + version + AS + holdtime + ID + optlen
)

// MsgType identifies a BGP message type (RFC 4271 section 4.1).
type MsgType uint8

// BGP message types.
const (
	MsgOpen         MsgType = 1
	MsgUpdate       MsgType = 2
	MsgNotification MsgType = 3
	MsgKeepalive    MsgType = 4
	MsgRouteRefresh MsgType = 5 // RFC 2918
)

// String names the message type for logs and test failures.
func (t MsgType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	case MsgRouteRefresh:
		return "ROUTE-REFRESH"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// AttrType identifies a path attribute type code (RFC 4271 section 5).
type AttrType uint8

// Path attribute type codes.
const (
	AttrOrigin          AttrType = 1
	AttrASPath          AttrType = 2
	AttrNextHop         AttrType = 3
	AttrMED             AttrType = 4
	AttrLocalPref       AttrType = 5
	AttrAtomicAggregate AttrType = 6
	AttrAggregator      AttrType = 7
	AttrCommunities     AttrType = 8  // RFC 1997
	AttrMPReachNLRI     AttrType = 14 // RFC 4760
	AttrMPUnreachNLRI   AttrType = 15 // RFC 4760
	AttrAS4Path         AttrType = 17 // RFC 6793
	AttrAS4Aggregator   AttrType = 18 // RFC 6793
)

// Address family identifiers and the unicast SAFI (RFC 4760).
const (
	AFIIPv4     uint16 = 1
	AFIIPv6     uint16 = 2
	SAFIUnicast uint8  = 1
)

// ASTrans is the reserved 2-octet AS number substituted for 4-octet ASNs
// when talking to a speaker that has not negotiated the 4-octet-AS
// capability (RFC 6793 section 9).
const ASTrans uint32 = 23456

// String names the attribute type.
func (t AttrType) String() string {
	switch t {
	case AttrOrigin:
		return "ORIGIN"
	case AttrASPath:
		return "AS_PATH"
	case AttrNextHop:
		return "NEXT_HOP"
	case AttrMED:
		return "MULTI_EXIT_DISC"
	case AttrLocalPref:
		return "LOCAL_PREF"
	case AttrAtomicAggregate:
		return "ATOMIC_AGGREGATE"
	case AttrAggregator:
		return "AGGREGATOR"
	case AttrCommunities:
		return "COMMUNITIES"
	case AttrMPReachNLRI:
		return "MP_REACH_NLRI"
	case AttrMPUnreachNLRI:
		return "MP_UNREACH_NLRI"
	case AttrAS4Path:
		return "AS4_PATH"
	case AttrAS4Aggregator:
		return "AS4_AGGREGATOR"
	}
	return fmt.Sprintf("AttrType(%d)", uint8(t))
}

// Path attribute flag bits (RFC 4271 section 4.3).
const (
	FlagOptional   = 0x80
	FlagTransitive = 0x40
	FlagPartial    = 0x20
	FlagExtLen     = 0x10
)

// Origin codes for the ORIGIN attribute.
type Origin uint8

// Origin attribute values; lower is more preferred in the decision process.
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

// String names the origin value.
func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "INCOMPLETE"
	}
	return fmt.Sprintf("Origin(%d)", uint8(o))
}

// AS path segment types (RFC 4271 section 4.3, AS_PATH).
const (
	SegASSet      = 1
	SegASSequence = 2
)

// NOTIFICATION error codes (RFC 4271 section 6.1).
const (
	ErrCodeHeader    = 1
	ErrCodeOpen      = 2
	ErrCodeUpdate    = 3
	ErrCodeHoldTimer = 4
	ErrCodeFSM       = 5
	ErrCodeCease     = 6
)

// Message header error subcodes.
const (
	ErrSubSyncLost   = 1
	ErrSubBadLength  = 2
	ErrSubBadMsgType = 3
)

// OPEN message error subcodes.
const (
	ErrSubBadVersion  = 1
	ErrSubBadPeerAS   = 2
	ErrSubBadBGPID    = 3
	ErrSubBadOptParam = 4
	ErrSubBadHoldTime = 6
)

// UPDATE message error subcodes.
const (
	ErrSubMalformedAttrList     = 1
	ErrSubUnrecognizedWellKnown = 2
	ErrSubMissingWellKnown      = 3
	ErrSubAttrFlags             = 4
	ErrSubAttrLength            = 5
	ErrSubInvalidOrigin         = 6
	ErrSubInvalidNextHop        = 8
	ErrSubOptAttr               = 9
	ErrSubInvalidNetwork        = 10
	ErrSubMalformedASPath       = 11
)

// NotifyError is a parse or validation failure that must be reported to the
// peer with the embedded NOTIFICATION code and subcode before the session
// is torn down.
type NotifyError struct {
	Code    uint8
	Subcode uint8
	Data    []byte
	Reason  string
}

// Error formats the failure with its protocol code/subcode.
func (e *NotifyError) Error() string {
	return fmt.Sprintf("wire: %s (code %d subcode %d)", e.Reason, e.Code, e.Subcode)
}

func notifyErrf(code, subcode uint8, data []byte, format string, args ...interface{}) error {
	return &NotifyError{Code: code, Subcode: subcode, Data: data, Reason: fmt.Sprintf(format, args...)}
}
