package wire

import (
	"bytes"
	"testing"

	"bgpbench/internal/netaddr"
)

// rawAttrs extracts the path-attribute block from a marshaled UPDATE.
func rawAttrs(t *testing.T, msg []byte) []byte {
	t.Helper()
	body := msg[HeaderLen:]
	wdrLen := int(body[0])<<8 | int(body[1])
	rest := body[2+wdrLen:]
	attrLen := int(rest[0])<<8 | int(rest[1])
	return rest[2 : 2+attrLen]
}

// attrValues walks a raw attribute block and returns the value bytes per
// attribute type (one occurrence each in canonical encodings).
func attrValues(t *testing.T, attrs []byte) map[AttrType][]byte {
	t.Helper()
	out := map[AttrType][]byte{}
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			t.Fatalf("truncated attribute header: % x", attrs)
		}
		flags, typ := attrs[0], AttrType(attrs[1])
		var vlen, off int
		if flags&FlagExtLen != 0 {
			vlen, off = int(attrs[2])<<8|int(attrs[3]), 4
		} else {
			vlen, off = int(attrs[2]), 3
		}
		if len(attrs) < off+vlen {
			t.Fatalf("attribute %v overruns block", typ)
		}
		out[typ] = attrs[off : off+vlen]
		attrs = attrs[off+vlen:]
	}
	return out
}

// TestAS4TransSubstitutionOnSend checks the RFC 6793 sender side: in
// canonical 2-octet mode a path with a 4-byte ASN goes on the wire as
// AS_PATH with AS_TRANS substituted, and the true path rides in the
// AS4_PATH shadow attribute.
func TestAS4TransSubstitutionOnSend(t *testing.T) {
	truth := NewASPath(70000, 65001, 100)
	u := Update{
		Attrs: NewPathAttrs(OriginIGP, truth, netaddr.AddrFrom4(10, 0, 0, 1)),
		NLRI:  []netaddr.Prefix{netaddr.MustParsePrefix("10.1.0.0/16")},
	}
	msg := mustMarshal(t, u)
	vals := attrValues(t, rawAttrs(t, msg))

	narrow, err := parseASPath(vals[AttrASPath], 2)
	if err != nil {
		t.Fatalf("parse 2-octet AS_PATH: %v", err)
	}
	if want := NewASPath(ASTrans, 65001, 100); !narrow.Equal(want) {
		t.Errorf("wire AS_PATH = %v, want %v", narrow, want)
	}

	shadow, ok := vals[AttrAS4Path]
	if !ok {
		t.Fatal("no AS4_PATH attribute on the wire")
	}
	wide, err := parseASPath(shadow, 4)
	if err != nil {
		t.Fatalf("parse AS4_PATH: %v", err)
	}
	if !wide.Equal(truth) {
		t.Errorf("AS4_PATH = %v, want %v", wide, truth)
	}
}

// TestAS4PathReconstructionOnReceive checks the receiver side: parsing
// the 2-octet encoding merges AS4_PATH back over the AS_TRANS
// substitutions, so the true path survives transit through an old
// speaker's session.
func TestAS4PathReconstructionOnReceive(t *testing.T) {
	truth := NewASPath(70000, 65001, 100)
	u := Update{
		Attrs: NewPathAttrs(OriginIGP, truth, netaddr.AddrFrom4(10, 0, 0, 1)),
		NLRI:  []netaddr.Prefix{netaddr.MustParsePrefix("10.1.0.0/16")},
	}
	msg := mustMarshal(t, u)
	m, err := ParseBodyMode(MsgUpdate, msg[HeaderLen:], false)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(Update)
	if !got.Attrs.ASPath.Equal(truth) {
		t.Errorf("reconstructed path = %v, want %v", got.Attrs.ASPath, truth)
	}
}

// TestAS4PathAbsentForCleanPath checks that a path expressible entirely
// in 2-octet ASNs never grows an AS4_PATH attribute: old encodings stay
// byte-identical to the pre-RFC 6793 form.
func TestAS4PathAbsentForCleanPath(t *testing.T) {
	clean := NewASPath(65001, 100)
	u := Update{
		Attrs: NewPathAttrs(OriginIGP, clean, netaddr.AddrFrom4(10, 0, 0, 1)),
		NLRI:  []netaddr.Prefix{netaddr.MustParsePrefix("10.1.0.0/16")},
	}
	vals := attrValues(t, rawAttrs(t, mustMarshal(t, u)))
	if _, ok := vals[AttrAS4Path]; ok {
		t.Fatal("AS4_PATH emitted for a 2-octet-clean path")
	}
	m, err := ParseBodyMode(MsgUpdate, mustMarshal(t, u)[HeaderLen:], false)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(Update).Attrs.ASPath; !got.Equal(clean) {
		t.Errorf("round trip = %v, want %v", got, clean)
	}
}

// TestAS4PathLongerThanASPathIgnored covers the RFC 6793 section 4.2.3
// guard: an AS4_PATH claiming more ASNs than AS_PATH is discarded and
// the substituted path is used as-is.
func TestAS4PathLongerThanASPathIgnored(t *testing.T) {
	attr := func(flags byte, typ AttrType, val []byte) []byte {
		return append([]byte{flags, byte(typ), byte(len(val))}, val...)
	}
	var attrs []byte
	attrs = append(attrs, attr(FlagTransitive, AttrOrigin, []byte{byte(OriginIGP)})...)
	// AS_PATH: one sequence of a single AS_TRANS.
	attrs = append(attrs, attr(FlagTransitive, AttrASPath,
		[]byte{SegASSequence, 1, 0x5B, 0xA0})...)
	attrs = append(attrs, attr(FlagTransitive, AttrNextHop, []byte{10, 0, 0, 1})...)
	// AS4_PATH: two 4-octet ASNs — more than AS_PATH carries.
	attrs = append(attrs, attr(FlagOptional|FlagTransitive, AttrAS4Path,
		[]byte{SegASSequence, 2, 0x00, 0x01, 0x11, 0x70, 0x00, 0x01, 0x38, 0x80})...)
	msg := frameUpdate(nil, attrs, []byte{16, 10, 1})

	m, err := ParseBodyMode(MsgUpdate, msg[HeaderLen:], false)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.(Update).Attrs.ASPath, NewASPath(ASTrans); !got.Equal(want) {
		t.Errorf("path = %v, want the unmerged %v", got, want)
	}
}

// TestMergeAS4PathLeadingASNs exercises the partial merge: when the old
// speakers in the middle of the path prepended their own (2-octet) ASNs,
// the merged path keeps those leading ASNs and takes the tail from
// AS4_PATH.
func TestMergeAS4PathLeadingASNs(t *testing.T) {
	path := NewASPath(65001, ASTrans, ASTrans)
	as4 := NewASPath(70000, 80000)
	want := ASPath{Segments: []ASSegment{
		{Type: SegASSequence, ASNs: []uint32{65001}},
		{Type: SegASSequence, ASNs: []uint32{70000, 80000}},
	}}
	if got := mergeAS4Path(path, as4); !got.Equal(want) {
		t.Errorf("merge = %v, want %v", got, want)
	}
	// An empty AS4_PATH leaves the path untouched.
	if got := mergeAS4Path(path, ASPath{}); !got.Equal(path) {
		t.Errorf("empty AS4_PATH: merge = %v, want %v", got, path)
	}
}

// TestAS4AggregatorMerge checks the AGGREGATOR/AS4_AGGREGATOR pair: a
// 4-byte aggregator AS goes out as AS_TRANS plus AS4_AGGREGATOR and
// comes back whole.
func TestAS4AggregatorMerge(t *testing.T) {
	a := NewPathAttrs(OriginIGP, NewASPath(65001), netaddr.AddrFrom4(10, 0, 0, 1))
	a.Aggregator = &Aggregator{AS: 70000, Addr: netaddr.AddrFrom4(10, 0, 0, 9)}
	u := Update{Attrs: a, NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("10.1.0.0/16")}}

	msg := mustMarshal(t, u)
	vals := attrValues(t, rawAttrs(t, msg))
	agg, ok := vals[AttrAggregator]
	if !ok || len(agg) != 6 {
		t.Fatalf("AGGREGATOR value = % x, want 6-byte 2-octet form", agg)
	}
	if as := uint32(agg[0])<<8 | uint32(agg[1]); as != ASTrans {
		t.Errorf("wire aggregator AS = %d, want AS_TRANS", as)
	}
	if _, ok := vals[AttrAS4Aggregator]; !ok {
		t.Fatal("no AS4_AGGREGATOR attribute on the wire")
	}

	m, err := ParseBodyMode(MsgUpdate, msg[HeaderLen:], false)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(Update).Attrs.Aggregator
	if got == nil || got.AS != 70000 {
		t.Fatalf("merged aggregator = %+v, want AS 70000", got)
	}
}

// TestAS4WideModeHasNoShadowAttrs checks the negotiated 4-octet mode:
// AS_PATH carries the wide ASNs directly and neither shadow attribute
// appears.
func TestAS4WideModeHasNoShadowAttrs(t *testing.T) {
	a := NewPathAttrs(OriginIGP, NewASPath(70000, 65001), netaddr.AddrFrom4(10, 0, 0, 1))
	a.Aggregator = &Aggregator{AS: 70000, Addr: netaddr.AddrFrom4(10, 0, 0, 9)}
	u := Update{Attrs: a, NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("10.1.0.0/16")}}
	msg, err := AppendMessageMode(nil, u, true)
	if err != nil {
		t.Fatal(err)
	}
	vals := attrValues(t, rawAttrs(t, msg))
	if _, ok := vals[AttrAS4Path]; ok {
		t.Error("AS4_PATH emitted on a 4-octet session")
	}
	if _, ok := vals[AttrAS4Aggregator]; ok {
		t.Error("AS4_AGGREGATOR emitted on a 4-octet session")
	}
	wide, err := parseASPath(vals[AttrASPath], 4)
	if err != nil {
		t.Fatal(err)
	}
	if !wide.Equal(a.ASPath) {
		t.Errorf("wide AS_PATH = %v, want %v", wide, a.ASPath)
	}
	if !bytes.Contains(vals[AttrASPath], []byte{0x00, 0x01, 0x11, 0x70}) {
		t.Error("wide AS_PATH does not carry the raw 4-octet 70000")
	}
}
