package wire

import (
	"bufio"
	"io"
)

// Reader decodes a stream of framed BGP messages from an io.Reader. It
// buffers internally; do not mix reads on the underlying stream.
type Reader struct {
	br  *bufio.Reader
	hdr [HeaderLen]byte
	buf []byte
	as4 bool
}

// NewReader wraps r for message-at-a-time decoding.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 2*MaxMsgLen)}
}

// SetFourOctetAS switches UPDATE decoding to 4-octet AS_PATH encoding
// (RFC 6793), set once both sides advertise the 4-octet-AS capability.
// Not safe for concurrent use with ReadMessage: the session's reader
// goroutine flips it upon parsing the peer's OPEN.
func (r *Reader) SetFourOctetAS(on bool) { r.as4 = on }

// ReadMessage blocks for one complete BGP message and decodes it. Protocol
// violations are returned as *NotifyError so the caller can answer with the
// corresponding NOTIFICATION; transport failures are returned verbatim.
func (r *Reader) ReadMessage() (Message, error) {
	if _, err := io.ReadFull(r.br, r.hdr[:]); err != nil {
		return nil, err
	}
	length, typ, err := ParseHeader(r.hdr[:])
	if err != nil {
		return nil, err
	}
	bodyLen := length - HeaderLen
	if cap(r.buf) < bodyLen {
		r.buf = make([]byte, bodyLen)
	}
	body := r.buf[:bodyLen]
	if _, err := io.ReadFull(r.br, body); err != nil {
		return nil, err
	}
	return ParseBodyMode(typ, body, r.as4)
}

// Writer encodes BGP messages onto an io.Writer with internal buffering.
// It reuses one marshal buffer across messages, so the steady-state send
// path allocates nothing per message. Not safe for concurrent use.
type Writer struct {
	bw  *bufio.Writer
	buf []byte // marshal scratch, reused across messages
	as4 bool
}

// NewWriter wraps w for message-at-a-time encoding.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 2*MaxMsgLen)}
}

// SetFourOctetAS switches UPDATE encoding to 4-octet AS_PATH encoding
// (RFC 6793), set once both sides advertise the 4-octet-AS capability.
// Not safe for concurrent use with the write methods.
func (w *Writer) SetFourOctetAS(on bool) { w.as4 = on }

// encode marshals m into the writer's reusable scratch buffer.
func (w *Writer) encode(m Message) ([]byte, error) {
	b, err := AppendMessageMode(w.buf[:0], m, w.as4)
	if err != nil {
		return nil, err
	}
	w.buf = b
	return b, nil
}

// WriteMessage marshals and writes one message, flushing it to the
// underlying stream.
func (w *Writer) WriteMessage(m Message) error {
	b, err := w.encode(m)
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(b); err != nil {
		return err
	}
	return w.bw.Flush()
}

// WriteMessageBuffered marshals and writes one message without flushing,
// letting callers batch several UPDATEs into one TCP segment. Call Flush
// when the batch is complete.
func (w *Writer) WriteMessageBuffered(m Message) error {
	b, err := w.encode(m)
	if err != nil {
		return err
	}
	_, err = w.bw.Write(b)
	return err
}

// WriteRaw writes pre-marshaled message bytes without flushing. The
// caller guarantees b holds whole, correctly framed BGP messages (the
// update-group fan-out path marshals once per group and replays the same
// bytes to every member). b is fully consumed before WriteRaw returns —
// bufio copies it — so the caller may recycle the buffer immediately.
func (w *Writer) WriteRaw(b []byte) error {
	_, err := w.bw.Write(b)
	return err
}

// Flush pushes buffered messages to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }
