package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestASPathLength(t *testing.T) {
	cases := []struct {
		name string
		p    ASPath
		want int
	}{
		{"empty", ASPath{}, 0},
		{"seq3", NewASPath(1, 2, 3), 3},
		{"set counts one", ASPath{Segments: []ASSegment{
			{Type: SegASSequence, ASNs: []uint32{1, 2}},
			{Type: SegASSet, ASNs: []uint32{3, 4, 5}},
		}}, 3},
		{"two sets", ASPath{Segments: []ASSegment{
			{Type: SegASSet, ASNs: []uint32{1, 2}},
			{Type: SegASSet, ASNs: []uint32{3}},
		}}, 2},
	}
	for _, c := range cases {
		if got := c.p.Length(); got != c.want {
			t.Errorf("%s: Length() = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestASPathContains(t *testing.T) {
	p := ASPath{Segments: []ASSegment{
		{Type: SegASSequence, ASNs: []uint32{100, 200}},
		{Type: SegASSet, ASNs: []uint32{300}},
	}}
	for _, asn := range []uint32{100, 200, 300} {
		if !p.Contains(asn) {
			t.Errorf("Contains(%d) = false, want true", asn)
		}
	}
	if p.Contains(400) {
		t.Error("Contains(400) = true, want false")
	}
}

func TestASPathFirstOrigin(t *testing.T) {
	p := NewASPath(10, 20, 30)
	if f, ok := p.First(); !ok || f != 10 {
		t.Errorf("First = %d,%v; want 10,true", f, ok)
	}
	if o, ok := p.Origin(); !ok || o != 30 {
		t.Errorf("Origin = %d,%v; want 30,true", o, ok)
	}
	var empty ASPath
	if _, ok := empty.First(); ok {
		t.Error("empty path First should report false")
	}
	if _, ok := empty.Origin(); ok {
		t.Error("empty path Origin should report false")
	}
}

func TestASPathPrepend(t *testing.T) {
	p := NewASPath(2, 3)
	q := p.Prepend(1)
	if q.String() != "1 2 3" {
		t.Errorf("Prepend onto sequence = %q, want %q", q.String(), "1 2 3")
	}
	if p.String() != "2 3" {
		t.Errorf("Prepend mutated receiver: %q", p.String())
	}

	var empty ASPath
	q = empty.Prepend(5)
	if q.String() != "5" || q.Length() != 1 {
		t.Errorf("Prepend onto empty = %q", q.String())
	}

	set := ASPath{Segments: []ASSegment{{Type: SegASSet, ASNs: []uint32{7, 8}}}}
	q = set.Prepend(6)
	if len(q.Segments) != 2 || q.Segments[0].Type != SegASSequence || q.Segments[0].ASNs[0] != 6 {
		t.Errorf("Prepend onto set produced %v", q)
	}
}

func TestASPathPrependIncrementsLength(t *testing.T) {
	f := func(asns []uint32, next uint32) bool {
		p := NewASPath(asns...)
		return p.Prepend(next).Length() == p.Length()+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randomASPath(r *rand.Rand) ASPath {
	var p ASPath
	for i, n := 0, r.Intn(4); i < n; i++ {
		seg := ASSegment{Type: SegASSequence}
		if r.Intn(3) == 0 {
			seg.Type = SegASSet
		}
		for j, m := 0, 1+r.Intn(6); j < m; j++ {
			seg.ASNs = append(seg.ASNs, uint32(r.Intn(65535)+1))
		}
		p.Segments = append(p.Segments, seg)
	}
	return p
}

func TestASPathWireRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		p := randomASPath(r)
		// 2-octet encoding: every generated ASN fits in 16 bits.
		buf := p.appendWire(nil, false)
		if len(buf) != p.wireLen(false) {
			t.Fatalf("wireLen %d != encoded %d for %v", p.wireLen(false), len(buf), p)
		}
		q, err := parseASPath(buf, 2)
		if err != nil {
			t.Fatalf("parseASPath(%v): %v", buf, err)
		}
		if !q.Equal(p) {
			t.Fatalf("round trip: got %v, want %v", q, p)
		}
		// 4-octet encoding round-trips too, including ASNs above 65535.
		wide := p.Prepend(uint32(70000 + i))
		buf = wide.appendWire(nil, true)
		if len(buf) != wide.wireLen(true) {
			t.Fatalf("as4 wireLen %d != encoded %d for %v", wide.wireLen(true), len(buf), wide)
		}
		q, err = parseASPath(buf, 4)
		if err != nil {
			t.Fatalf("parseASPath as4 (%v): %v", buf, err)
		}
		if !q.Equal(wide) {
			t.Fatalf("as4 round trip: got %v, want %v", q, wide)
		}
	}
}

func TestParseASPathErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"truncated header", []byte{2}},
		{"bad segment type", []byte{9, 1, 0, 1}},
		{"empty segment", []byte{2, 0}},
		{"truncated body", []byte{2, 3, 0, 1, 0, 2}},
	}
	for _, c := range cases {
		if _, err := parseASPath(c.in, 2); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestASPathString(t *testing.T) {
	p := ASPath{Segments: []ASSegment{
		{Type: SegASSequence, ASNs: []uint32{65001, 65002}},
		{Type: SegASSet, ASNs: []uint32{65003, 65004}},
	}}
	want := "65001 65002 {65003,65004}"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestASPathCloneIndependence(t *testing.T) {
	p := NewASPath(1, 2, 3)
	q := p.Clone()
	q.Segments[0].ASNs[0] = 99
	if p.Segments[0].ASNs[0] != 1 {
		t.Error("Clone shares backing storage")
	}
}
