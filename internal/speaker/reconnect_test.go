package speaker

import (
	"testing"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/netem"
)

// TestReconnectReplaysJournal: a speaker whose transport is reset
// mid-table must reconnect, replay its journal, and leave the router
// with exactly the state a clean run produces.
func TestReconnectReplaysJournal(t *testing.T) {
	r := startRouter(t)

	inj := netem.NewInjector(netem.Profile{
		Name: "flap", Seed: 21,
		ResetEvents: 1, MinOffset: 512, Horizon: 1536,
		FaultedAttempts: 2,
	}, netem.NewVirtualClock())

	sp := New(Config{
		AS: 65001, ID: netaddr.MustParseAddr("1.1.1.1"),
		Target:    r.ListenAddr(),
		Dial:      inj.Dial("speaker1"),
		Reconnect: true,
	})
	if err := sp.Connect(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp.Stop()

	routes := core.GenerateTable(core.TableGenConfig{N: 500, Seed: 3, FirstAS: 65001})
	if err := sp.Announce(routes, 100); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for r.FIB().Len() < len(routes) {
		if time.Now().After(deadline) {
			t.Fatalf("router learned %d/%d routes after flap (retries=%d, resets=%d)",
				r.FIB().Len(), len(routes), sp.Retries(), inj.Stats().Resets)
		}
		time.Sleep(time.Millisecond)
	}
	if got := inj.Stats().Resets; got == 0 {
		t.Fatal("no reset was injected; test exercised nothing")
	}
	if sp.Retries() == 0 {
		t.Fatal("speaker never reconnected")
	}
	if !sp.Established() {
		t.Fatal("speaker not established after recovery")
	}
}

// TestReconnectDisabledFailsHard: without Reconnect, an injected reset
// surfaces as a dead session and the router keeps only the partial
// table — the journal/replay machinery must not engage.
func TestReconnectDisabledFailsHard(t *testing.T) {
	r := startRouter(t)

	inj := netem.NewInjector(netem.Profile{
		Name: "flap", Seed: 21,
		ResetEvents: 1, MinOffset: 512, Horizon: 1536,
	}, netem.NewVirtualClock())

	sp := New(Config{
		AS: 65001, ID: netaddr.MustParseAddr("1.1.1.1"),
		Target: r.ListenAddr(),
		Dial:   inj.Dial("speaker1"),
	})
	if err := sp.Connect(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp.Stop()

	routes := core.GenerateTable(core.TableGenConfig{N: 500, Seed: 3, FirstAS: 65001})
	_ = sp.Announce(routes, 100) // transport may die mid-send

	deadline := time.Now().Add(10 * time.Second)
	for inj.Stats().Resets == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reset never fired")
		}
		time.Sleep(time.Millisecond)
	}
	// Give the router a moment to process the teardown, then verify no
	// reconnection happened.
	time.Sleep(200 * time.Millisecond)
	if sp.Retries() != 0 {
		t.Fatalf("Retries = %d with Reconnect disabled", sp.Retries())
	}
	if sp.Established() {
		t.Fatal("session still established after an injected reset")
	}
}
