package speaker

import (
	"testing"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/netaddr"
)

// TestRouteRefreshResendsTable: after the initial transfer, a
// ROUTE-REFRESH must make the router re-send its whole Adj-RIB-Out.
func TestRouteRefreshResendsTable(t *testing.T) {
	r := startRouter(t)

	sp1 := New(Config{AS: 65001, ID: netaddr.MustParseAddr("1.1.1.1"), Target: r.ListenAddr()})
	if err := sp1.Connect(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp1.Stop()
	routes := core.GenerateTable(core.TableGenConfig{N: 250, Seed: 6, FirstAS: 65001})
	if err := sp1.Announce(routes, 50); err != nil {
		t.Fatal(err)
	}

	sp2 := New(Config{AS: 65002, ID: netaddr.MustParseAddr("2.2.2.2"), Target: r.ListenAddr()})
	if err := sp2.Connect(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp2.Stop()
	if err := sp2.WaitForPrefixes(250, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Refresh: the full table arrives again.
	if err := sp2.RequestRefresh(); err != nil {
		t.Fatal(err)
	}
	if err := sp2.WaitForPrefixes(500, 10*time.Second); err != nil {
		t.Fatalf("refresh did not re-send the table: %v", err)
	}

	// A second refresh works too (the Adj-RIB-Out reset is repeatable).
	if err := sp2.RequestRefresh(); err != nil {
		t.Fatal(err)
	}
	if err := sp2.WaitForPrefixes(750, 10*time.Second); err != nil {
		t.Fatalf("second refresh failed: %v", err)
	}
}
