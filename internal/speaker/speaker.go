// Package speaker implements the benchmark's BGP speakers (Figure 1 of
// the paper): Speaker 1 injects routing tables and incremental updates
// into the router under test; Speaker 2 receives the router's
// advertisements and detects convergence. Speakers are full BGP sessions
// built on internal/session; they talk to any RFC 4271 router, not only
// the one in this repository.
package speaker

import (
	"fmt"
	"sync/atomic"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/session"
	"bgpbench/internal/wire"
)

// Config parameterizes a speaker.
type Config struct {
	AS       uint16
	ID       netaddr.Addr
	NextHop  netaddr.Addr // NEXT_HOP advertised with generated routes; defaults to ID
	Target   string       // router under test, "host:port"
	HoldTime uint16       // default 90
	Name     string
}

// Speaker is one benchmark BGP speaker.
type Speaker struct {
	cfg  Config
	sess *session.Session

	established chan struct{}
	down        chan error

	prefixesIn  atomic.Uint64
	withdrawsIn atomic.Uint64
	updatesIn   atomic.Uint64
	lastRecv    atomic.Int64 // unix nanos of last received update
}

// New builds a speaker; Connect starts it.
func New(cfg Config) *Speaker {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 90
	}
	if cfg.NextHop == 0 {
		cfg.NextHop = cfg.ID
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("speaker-as%d", cfg.AS)
	}
	s := &Speaker{
		cfg:         cfg,
		established: make(chan struct{}, 1),
		down:        make(chan error, 1),
	}
	s.sess = session.New(session.Config{
		FSM: fsm.Config{
			LocalAS:  cfg.AS,
			LocalID:  cfg.ID,
			HoldTime: cfg.HoldTime,
		},
		DialTarget: cfg.Target,
		Handler:    (*speakerHandler)(s),
		Name:       cfg.Name,
	})
	return s
}

// speakerHandler keeps Handler methods off the Speaker's public API.
type speakerHandler Speaker

// Established implements session.Handler.
func (h *speakerHandler) Established(*session.Session) {
	select {
	case h.established <- struct{}{}:
	default:
	}
}

// Update implements session.Handler.
func (h *speakerHandler) Update(_ *session.Session, u wire.Update) {
	s := (*Speaker)(h)
	s.updatesIn.Add(1)
	s.prefixesIn.Add(uint64(len(u.NLRI)))
	s.withdrawsIn.Add(uint64(len(u.Withdrawn)))
	s.lastRecv.Store(time.Now().UnixNano())
}

// Down implements session.Handler.
func (h *speakerHandler) Down(_ *session.Session, err error) {
	select {
	case h.down <- err:
	default:
	}
}

// Connect starts the session and blocks until it establishes or the
// timeout elapses.
func (s *Speaker) Connect(timeout time.Duration) error {
	s.sess.Start()
	select {
	case <-s.established:
		return nil
	case err := <-s.down:
		return fmt.Errorf("speaker %s: session down during connect: %w", s.cfg.Name, err)
	case <-time.After(timeout):
		return fmt.Errorf("speaker %s: no session after %v", s.cfg.Name, timeout)
	}
}

// Stop tears the session down.
func (s *Speaker) Stop() { s.sess.Stop() }

// Announce sends the routes as announcements packed prefixesPerMsg per
// UPDATE (1 = the paper's small packets, 500 = large packets).
func (s *Speaker) Announce(routes []core.Route, prefixesPerMsg int) error {
	for _, u := range core.Updates(routes, s.cfg.NextHop, prefixesPerMsg) {
		if err := s.sess.Send(u); err != nil {
			return err
		}
	}
	return nil
}

// Withdraw sends withdrawals for the routes, packed prefixesPerMsg per
// UPDATE.
func (s *Speaker) Withdraw(routes []core.Route, prefixesPerMsg int) error {
	for _, u := range core.Withdrawals(routes, prefixesPerMsg) {
		if err := s.sess.Send(u); err != nil {
			return err
		}
	}
	return nil
}

// RequestRefresh asks the router to re-send its full Adj-RIB-Out
// (RFC 2918 ROUTE-REFRESH).
func (s *Speaker) RequestRefresh() error {
	return s.sess.Send(wire.IPv4UnicastRefresh())
}

// PrefixesReceived returns the number of announced prefixes received.
func (s *Speaker) PrefixesReceived() uint64 { return s.prefixesIn.Load() }

// WithdrawalsReceived returns the number of withdrawn prefixes received.
func (s *Speaker) WithdrawalsReceived() uint64 { return s.withdrawsIn.Load() }

// UpdatesReceived returns the number of UPDATE messages received.
func (s *Speaker) UpdatesReceived() uint64 { return s.updatesIn.Load() }

// WaitForPrefixes blocks until at least n announced prefixes have arrived.
// It is the Phase 2 convergence detector: "the router transfers its route
// information to Speaker 2".
func (s *Speaker) WaitForPrefixes(n uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for s.prefixesIn.Load() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("speaker %s: %d/%d prefixes after %v",
				s.cfg.Name, s.prefixesIn.Load(), n, timeout)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// WaitForWithdrawals blocks until at least n withdrawn prefixes arrived.
func (s *Speaker) WaitForWithdrawals(n uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for s.withdrawsIn.Load() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("speaker %s: %d/%d withdrawals after %v",
				s.cfg.Name, s.withdrawsIn.Load(), n, timeout)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// WaitQuiescent blocks until no update has arrived for the given idle
// window (or the timeout elapses), returning whether quiescence was
// reached. Used when the expected message count is not known exactly.
func (s *Speaker) WaitQuiescent(idle, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		last := s.lastRecv.Load()
		if last != 0 && time.Since(time.Unix(0, last)) >= idle {
			return true
		}
		time.Sleep(idle / 4)
	}
	return false
}
