// Package speaker implements the benchmark's BGP speakers (Figure 1 of
// the paper): Speaker 1 injects routing tables and incremental updates
// into the router under test; Speaker 2 receives the router's
// advertisements and detects convergence. Speakers are full BGP sessions
// built on internal/session; they talk to any RFC 4271 router, not only
// the one in this repository.
package speaker

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/session"
	"bgpbench/internal/wire"
)

// Config parameterizes a speaker.
type Config struct {
	AS      uint32
	ID      netaddr.Addr
	NextHop netaddr.Addr // NEXT_HOP advertised with IPv4 routes; defaults to ID
	// NextHop6 is the next hop advertised with IPv6 routes (it travels
	// inside MP_REACH_NLRI); defaults to the IPv4-mapped form of NextHop.
	NextHop6 netaddr.Addr
	Target   string // router under test, "host:port"
	HoldTime uint16 // default 90
	Name     string
	// Dial, when non-nil, replaces net.DialTimeout for connection
	// attempts; the netem fault injector hooks in here.
	Dial func(network, address string, timeout time.Duration) (net.Conn, error)
	// Reconnect makes the speaker survive session flaps: every sent
	// UPDATE is journaled, and when the session goes down a fresh one is
	// dialed and the whole journal replayed. Replay is idempotent — the
	// router's final state per prefix depends only on the last message —
	// so a speaker that flaps mid-table still converges to the state a
	// clean run reaches.
	Reconnect bool
	// MaxReconnects bounds reconnection attempts (default 8).
	MaxReconnects int
}

// Speaker is one benchmark BGP speaker.
type Speaker struct {
	cfg Config

	// mu guards sess/journal/closed and serializes sends with journal
	// replay, so replayed and fresh UPDATEs never interleave per prefix.
	mu      sync.Mutex
	sess    *session.Session
	journal []wire.Update
	closed  bool

	stopCh      chan struct{}
	established chan struct{}
	down        chan error
	retries     atomic.Uint64

	prefixesIn  atomic.Uint64
	withdrawsIn atomic.Uint64
	updatesIn   atomic.Uint64
	lastRecv    atomic.Int64 // unix nanos of last received update
}

// New builds a speaker; Connect starts it.
func New(cfg Config) *Speaker {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 90
	}
	if cfg.NextHop.IsZero() {
		cfg.NextHop = cfg.ID
	}
	if cfg.NextHop6.IsZero() {
		//bgplint:allow(afifamily) reason=mapping a v4 next hop into ::ffff:0:0/96 is the point
		cfg.NextHop6 = netaddr.AddrFrom128(0, uint64(0xffff)<<32|uint64(cfg.NextHop.V4()))
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("speaker-as%d", cfg.AS)
	}
	if cfg.MaxReconnects == 0 {
		cfg.MaxReconnects = 8
	}
	s := &Speaker{
		cfg:         cfg,
		stopCh:      make(chan struct{}),
		established: make(chan struct{}, 1),
		down:        make(chan error, 1),
	}
	s.sess = s.newSession()
	return s
}

// newSession builds a fresh session from the speaker's configuration.
func (s *Speaker) newSession() *session.Session {
	return session.New(session.Config{
		FSM: fsm.Config{
			LocalAS:  s.cfg.AS,
			LocalID:  s.cfg.ID,
			HoldTime: s.cfg.HoldTime,
		},
		DialTarget: s.cfg.Target,
		Dial:       s.cfg.Dial,
		Handler:    (*speakerHandler)(s),
		Name:       s.cfg.Name,
	})
}

// speakerHandler keeps Handler methods off the Speaker's public API.
type speakerHandler Speaker

// Established implements session.Handler.
func (h *speakerHandler) Established(*session.Session) {
	select {
	case h.established <- struct{}{}:
	default:
	}
}

// Update implements session.Handler.
func (h *speakerHandler) Update(_ *session.Session, u wire.Update) {
	s := (*Speaker)(h)
	s.updatesIn.Add(1)
	s.prefixesIn.Add(uint64(len(u.NLRI)))
	s.withdrawsIn.Add(uint64(len(u.Withdrawn)))
	s.lastRecv.Store(time.Now().UnixNano())
}

// Down implements session.Handler. It runs on the session's event-loop
// goroutine and must not take s.mu: a journal replay can hold the lock
// while blocked in Send, waiting for this very event loop to finish
// tearing the session down.
func (h *speakerHandler) Down(sess *session.Session, err error) {
	select {
	case h.down <- err:
	default:
	}
	s := (*Speaker)(h)
	if s.cfg.Reconnect {
		go s.reconnect(sess)
	}
}

// reconnect replaces the dead session and replays the journal. The
// session layer itself retries TCP connects, so one fresh session per
// flap suffices; if the replacement flaps too, its Down handler calls
// back in here until MaxReconnects is exhausted.
func (s *Speaker) reconnect(dead *session.Session) {
	s.mu.Lock()
	current := s.sess == dead && !s.closed
	s.mu.Unlock()
	if !current {
		return
	}
	if int(s.retries.Add(1)) > s.cfg.MaxReconnects {
		return
	}
	select {
	case <-s.stopCh:
		return
	default:
	}
	// Drain stale signals from the dead session before starting a new
	// one, so the waits below see only the replacement's.
	for {
		select {
		case <-s.established:
			continue
		case <-s.down:
			continue
		default:
		}
		break
	}
	ns := s.newSession()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.sess = ns
	s.mu.Unlock()
	ns.Start()
	select {
	case <-s.established:
	case <-s.stopCh:
		ns.Stop()
		return
	case <-time.After(30 * time.Second):
		ns.Stop()
		return
	}
	// Replay the full journal under the send lock: fresh Announce or
	// Withdraw calls queue behind the replay, preserving per-prefix
	// message order.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess != ns || s.closed {
		return
	}
	for _, u := range s.journal {
		if err := ns.Send(u); err != nil {
			// The replacement died mid-replay; its Down handler owns the
			// next attempt.
			return
		}
	}
}

// Connect starts the session and blocks until it establishes or the
// timeout elapses.
func (s *Speaker) Connect(timeout time.Duration) error {
	s.mu.Lock()
	sess := s.sess
	s.mu.Unlock()
	sess.Start()
	select {
	case <-s.established:
		return nil
	case err := <-s.down:
		return fmt.Errorf("speaker %s: session down during connect: %w", s.cfg.Name, err)
	case <-time.After(timeout):
		return fmt.Errorf("speaker %s: no session after %v", s.cfg.Name, timeout)
	}
}

// Stop tears the session down and disables reconnection.
func (s *Speaker) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stopCh)
	sess := s.sess
	s.mu.Unlock()
	sess.Stop()
}

// Established reports whether the current session is established.
func (s *Speaker) Established() bool {
	s.mu.Lock()
	sess := s.sess
	s.mu.Unlock()
	return sess.Established()
}

// Retries returns how many reconnection attempts the speaker has made.
func (s *Speaker) Retries() uint64 { return s.retries.Load() }

// sendAll journals (when reconnecting) and transmits a batch of UPDATEs
// under the send lock. With Reconnect enabled, transport errors are
// swallowed: the messages are in the journal and the replacement session
// replays them.
func (s *Speaker) sendAll(msgs []wire.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Reconnect {
		s.journal = append(s.journal, msgs...)
	}
	for _, u := range msgs {
		if err := s.sess.Send(u); err != nil {
			if s.cfg.Reconnect {
				return nil
			}
			return err
		}
	}
	return nil
}

// Announce sends the routes as announcements packed prefixesPerMsg per
// UPDATE (1 = the paper's small packets, 500 = large packets). Mixed
// tables are split by address family so each family travels with its own
// next hop: NextHop for IPv4 NLRI, NextHop6 inside MP_REACH_NLRI.
func (s *Speaker) Announce(routes []core.Route, prefixesPerMsg int) error {
	var v4, v6 []core.Route
	for _, r := range routes {
		if r.Prefix.Addr().Is6() {
			v6 = append(v6, r)
		} else {
			v4 = append(v4, r)
		}
	}
	var msgs []wire.Update
	if len(v4) > 0 {
		msgs = append(msgs, core.Updates(v4, s.cfg.NextHop, prefixesPerMsg)...)
	}
	if len(v6) > 0 {
		msgs = append(msgs, core.Updates(v6, s.cfg.NextHop6, prefixesPerMsg)...)
	}
	return s.sendAll(msgs)
}

// Withdraw sends withdrawals for the routes, packed prefixesPerMsg per
// UPDATE.
func (s *Speaker) Withdraw(routes []core.Route, prefixesPerMsg int) error {
	return s.sendAll(core.Withdrawals(routes, prefixesPerMsg))
}

// RequestRefresh asks the router to re-send its full Adj-RIB-Out
// (RFC 2918 ROUTE-REFRESH).
func (s *Speaker) RequestRefresh() error {
	s.mu.Lock()
	sess := s.sess
	s.mu.Unlock()
	return sess.Send(wire.IPv4UnicastRefresh())
}

// PrefixesReceived returns the number of announced prefixes received.
func (s *Speaker) PrefixesReceived() uint64 { return s.prefixesIn.Load() }

// WithdrawalsReceived returns the number of withdrawn prefixes received.
func (s *Speaker) WithdrawalsReceived() uint64 { return s.withdrawsIn.Load() }

// UpdatesReceived returns the number of UPDATE messages received.
func (s *Speaker) UpdatesReceived() uint64 { return s.updatesIn.Load() }

// WaitForPrefixes blocks until at least n announced prefixes have arrived.
// It is the Phase 2 convergence detector: "the router transfers its route
// information to Speaker 2".
func (s *Speaker) WaitForPrefixes(n uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for s.prefixesIn.Load() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("speaker %s: %d/%d prefixes after %v",
				s.cfg.Name, s.prefixesIn.Load(), n, timeout)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// WaitForWithdrawals blocks until at least n withdrawn prefixes arrived.
func (s *Speaker) WaitForWithdrawals(n uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for s.withdrawsIn.Load() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("speaker %s: %d/%d withdrawals after %v",
				s.cfg.Name, s.withdrawsIn.Load(), n, timeout)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// WaitQuiescent blocks until no update has arrived for the given idle
// window (or the timeout elapses), returning whether quiescence was
// reached. Used when the expected message count is not known exactly.
func (s *Speaker) WaitQuiescent(idle, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		last := s.lastRecv.Load()
		if last != 0 && time.Since(time.Unix(0, last)) >= idle {
			return true
		}
		time.Sleep(idle / 4)
	}
	return false
}
