package speaker

import (
	"testing"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/netaddr"
)

func startRouter(t *testing.T) *core.Router {
	t.Helper()
	r, err := core.NewRouter(core.Config{
		AS:         65000,
		ID:         netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr: "127.0.0.1:0",
		Neighbors: []core.NeighborConfig{
			{AS: 65001},
			{AS: 65002},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

func TestConnectAndAnnounce(t *testing.T) {
	r := startRouter(t)
	sp := New(Config{AS: 65001, ID: netaddr.MustParseAddr("1.1.1.1"), Target: r.ListenAddr()})
	if err := sp.Connect(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp.Stop()

	routes := core.GenerateTable(core.TableGenConfig{N: 500, Seed: 3, FirstAS: 65001})
	if err := sp.Announce(routes, 100); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.FIB().Len() < 500 {
		if time.Now().After(deadline) {
			t.Fatalf("router learned %d/500 routes", r.FIB().Len())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConnectTimeout(t *testing.T) {
	// Dial a black-hole target: connection refused quickly, so Connect
	// must fail rather than hang.
	sp := New(Config{AS: 65001, ID: netaddr.MustParseAddr("1.1.1.1"), Target: "127.0.0.1:1"})
	err := sp.Connect(500 * time.Millisecond)
	if err == nil {
		sp.Stop()
		t.Fatal("Connect to dead target succeeded")
	}
}

func TestWaitForPrefixesPhase2(t *testing.T) {
	r := startRouter(t)
	sp1 := New(Config{AS: 65001, ID: netaddr.MustParseAddr("1.1.1.1"), Target: r.ListenAddr()})
	if err := sp1.Connect(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp1.Stop()
	routes := core.GenerateTable(core.TableGenConfig{N: 300, Seed: 4, FirstAS: 65001})
	if err := sp1.Announce(routes, 100); err != nil {
		t.Fatal(err)
	}

	sp2 := New(Config{AS: 65002, ID: netaddr.MustParseAddr("2.2.2.2"), Target: r.ListenAddr()})
	if err := sp2.Connect(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp2.Stop()
	if err := sp2.WaitForPrefixes(300, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if sp2.UpdatesReceived() == 0 {
		t.Fatal("no update messages counted")
	}
	if !sp2.WaitQuiescent(50*time.Millisecond, 5*time.Second) {
		t.Fatal("never quiescent")
	}
}

func TestWithdrawAndWaitForWithdrawals(t *testing.T) {
	r := startRouter(t)
	sp1 := New(Config{AS: 65001, ID: netaddr.MustParseAddr("1.1.1.1"), Target: r.ListenAddr()})
	if err := sp1.Connect(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp1.Stop()
	sp2 := New(Config{AS: 65002, ID: netaddr.MustParseAddr("2.2.2.2"), Target: r.ListenAddr()})
	if err := sp2.Connect(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp2.Stop()

	routes := core.GenerateTable(core.TableGenConfig{N: 200, Seed: 5, FirstAS: 65001})
	if err := sp1.Announce(routes, 50); err != nil {
		t.Fatal(err)
	}
	if err := sp2.WaitForPrefixes(200, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sp1.Withdraw(routes, 50); err != nil {
		t.Fatal(err)
	}
	if err := sp2.WaitForWithdrawals(200, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestWaitForPrefixesTimesOut(t *testing.T) {
	r := startRouter(t)
	sp := New(Config{AS: 65001, ID: netaddr.MustParseAddr("1.1.1.1"), Target: r.ListenAddr()})
	if err := sp.Connect(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp.Stop()
	if err := sp.WaitForPrefixes(1, 50*time.Millisecond); err == nil {
		t.Fatal("WaitForPrefixes should time out with no traffic")
	}
	if err := sp.WaitForWithdrawals(1, 50*time.Millisecond); err == nil {
		t.Fatal("WaitForWithdrawals should time out with no traffic")
	}
}

func TestConfigDefaults(t *testing.T) {
	sp := New(Config{AS: 65001, ID: netaddr.MustParseAddr("9.9.9.9"), Target: "127.0.0.1:1"})
	if sp.cfg.HoldTime != 90 {
		t.Errorf("default hold time = %d", sp.cfg.HoldTime)
	}
	if sp.cfg.NextHop != sp.cfg.ID {
		t.Errorf("default next hop = %v", sp.cfg.NextHop)
	}
	if sp.cfg.Name == "" {
		t.Error("default name empty")
	}
}
