// Package status exposes a router's operational state over HTTP for
// inspection while benchmarks run: a JSON summary, a plain-text FIB dump,
// and Prometheus-style counters. It is read-only and adds no processing
// on the router's hot paths beyond the atomic counter reads.
package status

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"bgpbench/internal/core"
	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/netem"
)

// Summary is the JSON document served at /status.
type Summary struct {
	AS              uint32 `json:"as"`
	FIBEntries      int    `json:"fib_entries"`
	FIBChanges      uint64 `json:"fib_changes"`
	Transactions    uint64 `json:"transactions"`
	FIBLookups      uint64 `json:"fib_lookups"`
	Flaps           uint64 `json:"flaps,omitempty"`
	Shards          int    `json:"shards"`
	InternSize      int    `json:"intern_size"`
	FIBBatches      uint64 `json:"fib_batches"`
	DispatchBatches uint64 `json:"dispatch_batches"`
	DispatchUpdates uint64 `json:"dispatch_updates"`

	// Update-group fields, present when the router runs grouped emission.
	UpdateGroups     bool    `json:"update_groups,omitempty"`
	Groups           int     `json:"update_group_count,omitempty"`
	GroupFanoutRatio float64 `json:"update_group_fanout_ratio,omitempty"`
	GroupBytesSaved  uint64  `json:"update_group_bytes_saved,omitempty"`
	// Marshal-cache and incremental-rebuild counters.
	GroupBytesMarshaled uint64 `json:"update_group_bytes_marshaled,omitempty"`
	GroupCacheHits      uint64 `json:"update_group_marshal_cache_hits,omitempty"`
	GroupCacheMisses    uint64 `json:"update_group_marshal_cache_misses,omitempty"`
	GroupRebuilds       uint64 `json:"update_group_rebuilds,omitempty"`
	GroupRebuildChunks  uint64 `json:"update_group_rebuild_chunks,omitempty"`
}

// Handler builds the HTTP mux for a router.
//
//	GET /status   JSON summary
//	GET /fib      plain-text FIB dump (prefix, next hop, port)
//	GET /metrics  Prometheus-style counters
func Handler(r *core.Router, as uint32) http.Handler {
	return handler(r, as, nil)
}

// HandlerWithFaults is Handler plus netem fault-injection counters on
// /metrics, for routers running under a chaos profile.
func HandlerWithFaults(r *core.Router, as uint32, inj *netem.Injector) http.Handler {
	return handler(r, as, inj)
}

func handler(r *core.Router, as uint32, inj *netem.Injector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		s := Summary{
			AS:           as,
			FIBEntries:   r.FIB().Len(),
			FIBChanges:   r.FIBChanges(),
			Transactions: r.Transactions(),
			FIBLookups:   r.FIB().Lookups(),
		}
		if d := r.Damper(); d != nil {
			s.Flaps = d.Flaps()
		}
		s.Shards = r.Shards()
		s.InternSize = r.InternStats().Size
		s.FIBBatches, _ = r.FIBBatchStats()
		s.DispatchBatches, s.DispatchUpdates = r.DispatchStats()
		if gs := r.GroupStats(); gs.Enabled {
			s.UpdateGroups = true
			s.Groups = gs.Groups
			s.GroupFanoutRatio = gs.FanoutRatio()
			s.GroupBytesSaved = gs.BytesSaved
			s.GroupBytesMarshaled = gs.BytesMarshaled
			s.GroupCacheHits = gs.CacheHits
			s.GroupCacheMisses = gs.CacheMisses
			s.GroupRebuilds = gs.Rebuilds
			s.GroupRebuildChunks = gs.RebuildChunks
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s)
	})
	mux.HandleFunc("/fib", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		count := 0
		r.FIB().Walk(func(p netaddr.Prefix, e fib.Entry) bool {
			fmt.Fprintf(w, "%-20s via %-15s port %d\n", p, e.NextHop, e.Port)
			count++
			return true
		})
		fmt.Fprintf(w, "# %d entries\n", count)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "bgp_transactions_total %d\n", r.Transactions())
		fmt.Fprintf(w, "bgp_fib_entries %d\n", r.FIB().Len())
		fmt.Fprintf(w, "bgp_fib_changes_total %d\n", r.FIBChanges())
		fmt.Fprintf(w, "bgp_fib_lookups_total %d\n", r.FIB().Lookups())
		if d := r.Damper(); d != nil {
			fmt.Fprintf(w, "bgp_flaps_total %d\n", d.Flaps())
		}
		fmt.Fprintf(w, "bgp_shards %d\n", r.Shards())
		for i, st := range r.ShardStats() {
			fmt.Fprintf(w, "bgp_shard_queue_depth{shard=\"%d\"} %d\n", i, st.QueueDepth)
			fmt.Fprintf(w, "bgp_shard_transactions_total{shard=\"%d\"} %d\n", i, st.Transactions)
			fmt.Fprintf(w, "bgp_shard_batches_total{shard=\"%d\"} %d\n", i, st.Batches)
		}
		db, du := r.DispatchStats()
		fmt.Fprintf(w, "bgp_dispatch_batches_total %d\n", db)
		fmt.Fprintf(w, "bgp_dispatch_updates_total %d\n", du)
		is := r.InternStats()
		fmt.Fprintf(w, "bgp_attr_intern_size %d\n", is.Size)
		fmt.Fprintf(w, "bgp_attr_intern_hits_total %d\n", is.Hits)
		fmt.Fprintf(w, "bgp_attr_intern_misses_total %d\n", is.Misses)
		batches, ops := r.FIBBatchStats()
		fmt.Fprintf(w, "bgp_fib_batches_total %d\n", batches)
		fmt.Fprintf(w, "bgp_fib_batch_ops_total %d\n", ops)
		if gs := r.GroupStats(); gs.Enabled {
			fmt.Fprintf(w, "bgp_update_groups %d\n", gs.Groups)
			fmt.Fprintf(w, "bgp_update_group_runs_total %d\n", gs.Runs)
			fmt.Fprintf(w, "bgp_update_group_sends_total %d\n", gs.Sends)
			fmt.Fprintf(w, "bgp_update_group_fanout_ratio %g\n", gs.FanoutRatio())
			fmt.Fprintf(w, "bgp_update_group_bytes_built_total %d\n", gs.BytesBuilt)
			fmt.Fprintf(w, "bgp_update_group_bytes_saved_total %d\n", gs.BytesSaved)
			fmt.Fprintf(w, "bgp_update_group_suppressed_total %d\n", gs.Suppressed)
			fmt.Fprintf(w, "bgp_update_group_bytes_marshaled_total %d\n", gs.BytesMarshaled)
			fmt.Fprintf(w, "bgp_update_group_marshal_cache_hits_total %d\n", gs.CacheHits)
			fmt.Fprintf(w, "bgp_update_group_marshal_cache_misses_total %d\n", gs.CacheMisses)
			fmt.Fprintf(w, "bgp_update_group_rebuilds_total %d\n", gs.Rebuilds)
			fmt.Fprintf(w, "bgp_update_group_rebuild_chunks_total %d\n", gs.RebuildChunks)
			// Rebuild-latency histogram in Prometheus cumulative-bucket
			// form: one whole-group rebuild or member replay = one
			// observation, measured schedule-to-last-chunk.
			h := r.RebuildLatency()
			cum := uint64(0)
			for i, b := range h.Bounds {
				cum += h.Counts[i]
				fmt.Fprintf(w, "bgp_update_group_rebuild_seconds_bucket{le=\"%g\"} %d\n", b, cum)
			}
			fmt.Fprintf(w, "bgp_update_group_rebuild_seconds_bucket{le=\"+Inf\"} %d\n", h.Count)
			fmt.Fprintf(w, "bgp_update_group_rebuild_seconds_sum %g\n", h.Sum)
			fmt.Fprintf(w, "bgp_update_group_rebuild_seconds_count %d\n", h.Count)
		}
		if inj != nil {
			st := inj.Stats()
			fmt.Fprintf(w, "netem_conns_total %d\n", st.Conns)
			fmt.Fprintf(w, "netem_accepts_total %d\n", st.Accepts)
			fmt.Fprintf(w, "netem_corrupts_total %d\n", st.Corrupts)
			fmt.Fprintf(w, "netem_reorders_total %d\n", st.Reorders)
			fmt.Fprintf(w, "netem_stalls_total %d\n", st.Stalls)
			fmt.Fprintf(w, "netem_read_stalls_total %d\n", st.ReadStalls)
			fmt.Fprintf(w, "netem_resets_total %d\n", st.Resets)
			fmt.Fprintf(w, "netem_bytes_out_total %d\n", st.BytesOut)
			fmt.Fprintf(w, "netem_bytes_in_total %d\n", st.BytesIn)
		}
	})
	// Profiling endpoints for the hot paths (CPU, heap, contention). A
	// custom mux does not inherit net/http/pprof's DefaultServeMux
	// registrations, so wire them explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
