package status

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"bgpbench/internal/core"
	"bgpbench/internal/damping"
	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/netem"
)

func testRouter(t *testing.T) *core.Router {
	t.Helper()
	r, err := core.NewRouter(core.Config{
		AS:      65000,
		ID:      netaddr.MustParseAddr("10.255.0.1"),
		Damping: &damping.Config{},
		Neighbors: []core.NeighborConfig{
			{AS: 65001},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Populate the FIB directly (no sessions needed for handler tests).
	r.FIB().Insert(netaddr.MustParsePrefix("10.0.0.0/8"), fib.Entry{NextHop: netaddr.MustParseAddr("1.1.1.1"), Port: 3})
	r.FIB().Insert(netaddr.MustParsePrefix("192.0.2.0/24"), fib.Entry{NextHop: netaddr.MustParseAddr("2.2.2.2"), Port: 5})
	return r
}

func get(t *testing.T, r *core.Router, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(Handler(r, 65000))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestStatusJSON(t *testing.T) {
	r := testRouter(t)
	code, body := get(t, r, "/status")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	var s Summary
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if s.AS != 65000 || s.FIBEntries != 2 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestFIBDump(t *testing.T) {
	r := testRouter(t)
	code, body := get(t, r, "/fib")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	for _, want := range []string{"10.0.0.0/8", "192.0.2.0/24", "via 1.1.1.1", "# 2 entries"} {
		if !strings.Contains(body, want) {
			t.Errorf("fib dump missing %q:\n%s", want, body)
		}
	}
}

func TestMetrics(t *testing.T) {
	r := testRouter(t)
	r.FIB().Lookup(netaddr.MustParseAddr("10.1.1.1"))
	code, body := get(t, r, "/metrics")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	for _, want := range []string{
		"bgp_fib_entries 2",
		"bgp_fib_lookups_total 1",
		"bgp_transactions_total 0",
		"bgp_flaps_total 0",
		"bgp_shards ",
		"bgp_shard_queue_depth{shard=\"0\"} 0",
		"bgp_shard_transactions_total{shard=\"0\"} 0",
		"bgp_attr_intern_size 0",
		"bgp_attr_intern_hits_total 0",
		"bgp_attr_intern_misses_total 0",
		"bgp_fib_batches_total 0",
		"bgp_fib_batch_ops_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsUpdateGroups covers the grouped-emission metric block: the
// marshal-cache counters and the rebuild-latency histogram must render
// in Prometheus form (cumulative le buckets plus sum/count) even before
// any rebuild has been observed.
func TestMetricsUpdateGroups(t *testing.T) {
	r, err := core.NewRouter(core.Config{
		AS:           65000,
		ID:           netaddr.MustParseAddr("10.255.0.1"),
		UpdateGroups: true,
		Neighbors:    []core.NeighborConfig{{AS: 65001}},
	})
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, r, "/metrics")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	for _, want := range []string{
		"bgp_update_groups 0",
		"bgp_update_group_bytes_marshaled_total 0",
		"bgp_update_group_marshal_cache_hits_total 0",
		"bgp_update_group_marshal_cache_misses_total 0",
		"bgp_update_group_rebuilds_total 0",
		"bgp_update_group_rebuild_chunks_total 0",
		"bgp_update_group_rebuild_seconds_bucket{le=\"0.001\"} 0",
		"bgp_update_group_rebuild_seconds_bucket{le=\"10\"} 0",
		"bgp_update_group_rebuild_seconds_bucket{le=\"+Inf\"} 0",
		"bgp_update_group_rebuild_seconds_sum 0",
		"bgp_update_group_rebuild_seconds_count 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	code, body = get(t, r, "/status")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	var s Summary
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if !s.UpdateGroups {
		t.Errorf("summary update_groups = false, want true: %+v", s)
	}
}

func TestUnknownPath(t *testing.T) {
	r := testRouter(t)
	code, _ := get(t, r, "/nope")
	if code != 404 {
		t.Fatalf("status code %d, want 404", code)
	}
}

// failingWriter is a ResponseWriter whose body rejects writes after a
// byte budget, modeling a client that disconnects mid-response. The
// handlers must tolerate it without panicking: metrics scrapes race
// against benchmark shutdown constantly.
type failingWriter struct {
	*httptest.ResponseRecorder
	budget int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errors.New("client went away")
	}
	n := len(p)
	if n > f.budget {
		n = f.budget
	}
	f.budget -= n
	n, err := f.ResponseRecorder.Write(p[:n])
	if err != nil {
		return n, err
	}
	if f.budget == 0 {
		return n, errors.New("client went away")
	}
	return n, nil
}

func serveFailing(t *testing.T, r *core.Router, path string, budget int) *failingWriter {
	t.Helper()
	w := &failingWriter{ResponseRecorder: httptest.NewRecorder(), budget: budget}
	req := httptest.NewRequest("GET", path, nil)
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("GET %s with failing writer panicked: %v", path, p)
		}
	}()
	Handler(r, 65000).ServeHTTP(w, req)
	return w
}

func TestMetricsClientGone(t *testing.T) {
	r := testRouter(t)
	// Fail immediately and mid-stream: every Fprintf after the failure
	// point must be a clean no-op.
	for _, budget := range []int{0, 25} {
		w := serveFailing(t, r, "/metrics", budget)
		if got := w.Body.Len(); got > budget {
			t.Errorf("budget %d: handler wrote %d bytes past a dead client", budget, got)
		}
		if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("budget %d: Content-Type = %q, want text/plain (set before the body)", budget, ct)
		}
	}
}

func TestStatusClientGone(t *testing.T) {
	r := testRouter(t)
	w := serveFailing(t, r, "/status", 0)
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json even when the body write fails", ct)
	}
}

func TestFIBDumpClientGone(t *testing.T) {
	r := testRouter(t)
	serveFailing(t, r, "/fib", 10)
}

func TestMetricsWithFaults(t *testing.T) {
	r := testRouter(t)
	inj := netem.NewInjector(netem.Profile{}, nil)
	srv := httptest.NewServer(HandlerWithFaults(r, 65000, inj))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"netem_conns_total 0",
		"netem_corrupts_total 0",
		"netem_bytes_out_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing fault counter %q:\n%s", want, body)
		}
	}
}
