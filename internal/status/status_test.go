package status

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"bgpbench/internal/core"
	"bgpbench/internal/damping"
	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
)

func testRouter(t *testing.T) *core.Router {
	t.Helper()
	r, err := core.NewRouter(core.Config{
		AS:      65000,
		ID:      netaddr.MustParseAddr("10.255.0.1"),
		Damping: &damping.Config{},
		Neighbors: []core.NeighborConfig{
			{AS: 65001},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Populate the FIB directly (no sessions needed for handler tests).
	r.FIB().Insert(netaddr.MustParsePrefix("10.0.0.0/8"), fib.Entry{NextHop: netaddr.MustParseAddr("1.1.1.1"), Port: 3})
	r.FIB().Insert(netaddr.MustParsePrefix("192.0.2.0/24"), fib.Entry{NextHop: netaddr.MustParseAddr("2.2.2.2"), Port: 5})
	return r
}

func get(t *testing.T, r *core.Router, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(Handler(r, 65000))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestStatusJSON(t *testing.T) {
	r := testRouter(t)
	code, body := get(t, r, "/status")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	var s Summary
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if s.AS != 65000 || s.FIBEntries != 2 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestFIBDump(t *testing.T) {
	r := testRouter(t)
	code, body := get(t, r, "/fib")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	for _, want := range []string{"10.0.0.0/8", "192.0.2.0/24", "via 1.1.1.1", "# 2 entries"} {
		if !strings.Contains(body, want) {
			t.Errorf("fib dump missing %q:\n%s", want, body)
		}
	}
}

func TestMetrics(t *testing.T) {
	r := testRouter(t)
	r.FIB().Lookup(netaddr.MustParseAddr("10.1.1.1"))
	code, body := get(t, r, "/metrics")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	for _, want := range []string{
		"bgp_fib_entries 2",
		"bgp_fib_lookups_total 1",
		"bgp_transactions_total 0",
		"bgp_flaps_total 0",
		"bgp_shards ",
		"bgp_shard_queue_depth{shard=\"0\"} 0",
		"bgp_shard_transactions_total{shard=\"0\"} 0",
		"bgp_attr_intern_size 0",
		"bgp_attr_intern_hits_total 0",
		"bgp_attr_intern_misses_total 0",
		"bgp_fib_batches_total 0",
		"bgp_fib_batch_ops_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestUnknownPath(t *testing.T) {
	r := testRouter(t)
	code, _ := get(t, r, "/nope")
	if code != 404 {
		t.Fatalf("status code %d, want 404", code)
	}
}
