// Package session drives one live BGP peering over TCP: it owns the
// socket, the hold/keepalive/connect-retry timers, and a single event-loop
// goroutine that feeds the pure FSM (internal/fsm) and executes the
// actions it returns. Both the benchmark speakers and the router under
// test are built from Sessions.
package session

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// Handler receives session lifecycle callbacks. Callbacks run on the
// session's event-loop goroutine: they must not block for long and must
// not call back into the session synchronously except via Send/Stop.
type Handler interface {
	// Established fires when the session reaches the Established state.
	Established(s *Session)
	// Update delivers one received UPDATE message.
	Update(s *Session, u wire.Update)
	// Down fires when an established session terminates; err explains why.
	Down(s *Session, err error)
}

// RefreshHandler is optionally implemented by Handlers that want
// ROUTE-REFRESH (RFC 2918) delivery; sessions whose handler does not
// implement it silently ignore refresh requests.
type RefreshHandler interface {
	Refresh(s *Session, r wire.RouteRefresh)
}

// BatchHandler is optionally implemented by Handlers that want coalesced
// UPDATE delivery: when the session's Config enables batching
// (BatchMaxUpdates > 0), consecutive received UPDATEs are accumulated and
// delivered as one UpdateBatch call instead of per-message Update calls.
//
// Ordering guarantees: updates appear in the batch in arrival order, and
// any pending batch is flushed before the Established, Refresh, or Down
// callbacks fire, so a handler observes exactly the per-session event
// order it would without batching. The batch slice is only valid until
// the callback returns (the session reuses it); the updates' payload
// slices (NLRI, Withdrawn, attribute contents) may be retained.
type BatchHandler interface {
	UpdateBatch(s *Session, us []wire.Update)
}

// NopHandler ignores all callbacks; embed it to implement a subset.
type NopHandler struct{}

// Established implements Handler.
func (NopHandler) Established(*Session) {}

// Update implements Handler.
func (NopHandler) Update(*Session, wire.Update) {}

// Down implements Handler.
func (NopHandler) Down(*Session, error) {}

// Config parameterizes a session.
type Config struct {
	FSM fsm.Config
	// DialTarget is the peer's "host:port"; required unless the session is
	// passive (conn supplied via Attach).
	DialTarget string
	// ConnectRetry is the interval between outbound connection attempts.
	// Zero defaults to 2 seconds (short: benchmarks restart often).
	ConnectRetry time.Duration
	// DialTimeout bounds one connection attempt. Zero defaults to 5s.
	DialTimeout time.Duration
	// Dial, when non-nil, replaces net.DialTimeout for outbound
	// connection attempts. Fault-injection layers (internal/netem) hook
	// in here to wrap the transport.
	Dial    func(network, address string, timeout time.Duration) (net.Conn, error)
	Handler Handler
	// BatchMaxUpdates, when positive and Handler implements BatchHandler,
	// coalesces consecutive received UPDATEs into UpdateBatch deliveries
	// of at most this many messages. Zero or negative disables batching.
	BatchMaxUpdates int
	// BatchMaxDelay bounds how long a received UPDATE may be held while a
	// batch accumulates. Zero flushes as soon as the event queue idles, so
	// batches only form under backlog.
	BatchMaxDelay time.Duration
	// Name labels the session in errors and stats.
	Name string
}

// DefaultCapabilities is the capability set a session advertises when
// Config.FSM.Capabilities is nil: multiprotocol IPv4 and IPv6 unicast
// (RFC 4760) plus the 4-octet-AS capability carrying the local AS
// (RFC 6793). Pass an explicit empty slice to advertise nothing.
func DefaultCapabilities(localAS uint32) []wire.Capability {
	return []wire.Capability{
		wire.MultiprotocolIPv4Unicast(),
		wire.MultiprotocolIPv6Unicast(),
		wire.FourOctetASCapability(localAS),
	}
}

// batchMaxPrefixes caps the prefixes accumulated across one batch (the
// byte bound): a run of large UPDATEs flushes early so the decision
// workers see bounded work items.
const batchMaxPrefixes = 8192

// Counters aggregates per-session message statistics. All fields are
// atomics so they can be read while the session runs.
type Counters struct {
	MsgsIn      atomic.Uint64
	MsgsOut     atomic.Uint64
	UpdatesIn   atomic.Uint64
	UpdatesOut  atomic.Uint64
	PrefixesIn  atomic.Uint64 // announced NLRI received
	WithdrawsIn atomic.Uint64 // withdrawn prefixes received
}

// event is the internal event-loop message: an FSM event plus optional
// transport payload.
type event struct {
	fsm  fsm.Event
	conn net.Conn // with EvTCPConnEstablished
	err  error    // with EvTCPConnFails / EvMsgError
}

// outboxItem is one queued transmission: either a message to marshal or
// a pre-marshaled shared payload (update-group fan-out).
type outboxItem struct {
	msg    wire.Message
	shared *SharedPayload
}

// release drops the item's payload reference, if it carries one. Called
// on every path where the item is dropped instead of written.
func (it outboxItem) release() {
	if it.shared != nil {
		it.shared.Release()
	}
}

// Session is one BGP peering endpoint.
type Session struct {
	cfg    Config
	fsm    *fsm.FSM
	events chan event
	outbox chan outboxItem
	done   chan struct{}
	wg     sync.WaitGroup

	// Owned by the event loop.
	conn         net.Conn
	writer       *wire.Writer
	holdTimer    *time.Timer
	kaTimer      *time.Timer
	retryTimer   *time.Timer
	readerCancel chan struct{}

	// Update batching (event-loop owned). bh is non-nil iff batching is
	// enabled; batch accumulates deliverable UPDATEs between flushes.
	bh            BatchHandler
	batch         []wire.Update
	batchPrefixes int
	flushTimer    *time.Timer
	flushC        <-chan time.Time

	Stats Counters

	stateMirror atomic.Int32 // fsm.State mirror maintained by the loop

	// Local capability summary, computed once in New.
	local4    bool
	localAFIs map[uint16]bool

	mu          sync.Mutex
	established bool
	lastErr     error
	negAS4      bool    // both sides advertised the 4-octet-AS capability
	negAFIs     [2]bool // families both sides advertised, by netaddr.Family
}

// New builds a session; call Start (or Attach for inbound connections) to
// run it.
func New(cfg Config) *Session {
	if cfg.Handler == nil {
		cfg.Handler = NopHandler{}
	}
	if cfg.ConnectRetry == 0 {
		cfg.ConnectRetry = 2 * time.Second
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.FSM.Capabilities == nil {
		cfg.FSM.Capabilities = DefaultCapabilities(cfg.FSM.LocalAS)
	}
	s := &Session{
		cfg:    cfg,
		fsm:    fsm.New(cfg.FSM),
		events: make(chan event, 64),
		outbox: make(chan outboxItem, 1024),
		done:   make(chan struct{}),
	}
	if cfg.BatchMaxUpdates > 0 {
		s.bh, _ = cfg.Handler.(BatchHandler)
	}
	s.localAFIs = wire.MultiprotocolAFIs(cfg.FSM.Capabilities)
	for _, c := range cfg.FSM.Capabilities {
		if c.Code == wire.CapFourOctetAS {
			s.local4 = true
		}
	}
	return s
}

// Start launches the event loop and (for active sessions) the first
// connection attempt.
func (s *Session) Start() {
	s.wg.Add(1)
	go s.loop()
	s.events <- event{fsm: fsm.Event{Type: fsm.EvManualStart}}
}

// Attach hands an accepted inbound connection to a passive session. Call
// after Start.
func (s *Session) Attach(conn net.Conn) {
	s.events <- event{fsm: fsm.Event{Type: fsm.EvTCPConnEstablished}, conn: conn}
}

// Stop terminates the session gracefully (CEASE notification when
// established) and waits for its goroutines.
func (s *Session) Stop() {
	select {
	case s.events <- event{fsm: fsm.Event{Type: fsm.EvManualStop}}:
	case <-s.done:
	}
	// Give the loop a moment to process the stop, then force shutdown.
	select {
	case <-s.done:
	case <-time.After(2 * time.Second):
		s.closeDone()
	}
	s.wg.Wait()
}

func (s *Session) closeDone() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
	default:
		close(s.done)
	}
}

// Send queues a message for transmission on the established session. It
// blocks when the outbox is full (back-pressure) and returns an error once
// the session has terminated.
func (s *Session) Send(m wire.Message) error {
	select {
	case s.outbox <- outboxItem{msg: m}:
		return nil
	case <-s.done:
		return fmt.Errorf("session %s: closed", s.cfg.Name)
	}
}

// SendShared queues a pre-marshaled shared payload for transmission. The
// caller transfers one payload reference per call: the session releases
// it after writing the bytes, after dropping the item on a dead or
// not-yet-established connection, or — on the error path here — before
// returning, so the caller never needs to compensate.
func (s *Session) SendShared(p *SharedPayload) error {
	select {
	case s.outbox <- outboxItem{shared: p}:
		return nil
	case <-s.done:
		p.Release()
		return fmt.Errorf("session %s: closed", s.cfg.Name)
	}
}

// Established reports whether the session is currently established.
func (s *Session) Established() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.established
}

// Err returns the last terminal error.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// State returns the FSM state as last published by the event loop. Safe
// for concurrent use; intended for diagnostics.
func (s *Session) State() fsm.State { return fsm.State(s.stateMirror.Load()) }

// Name returns the configured session name.
func (s *Session) Name() string { return s.cfg.Name }

// PeerOpen returns the peer's OPEN message, valid once the session has
// established. Intended for use inside Handler callbacks, which run on the
// event-loop goroutine that owns the FSM.
func (s *Session) PeerOpen() wire.Open { return s.fsm.PeerOpen() }

// FourOctetAS reports whether both sides advertised the 4-octet-AS
// capability, i.e. the session encodes AS_PATH with 4-octet ASNs
// (RFC 6793). Valid once the peer's OPEN has been processed.
func (s *Session) FourOctetAS() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.negAS4
}

// NegotiatedFamilies reports, per netaddr.Family, whether both sides
// advertised the matching multiprotocol unicast capability. Valid once
// the peer's OPEN has been processed.
func (s *Session) NegotiatedFamilies() [2]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.negAFIs
}

// negotiate folds the peer's OPEN capabilities against ours: the
// intersection decides the session's wire mode (4-octet AS_PATH) and
// which address families may be exchanged. Runs on the event loop (which
// owns the writer) before any UPDATE is written.
func (s *Session) negotiate(o wire.Open) {
	_, peer4 := o.FourOctetAS()
	as4 := s.local4 && peer4
	peerAFIs := wire.MultiprotocolAFIs(o.Caps())
	var afis [2]bool
	for afi := range s.localAFIs {
		if !peerAFIs[afi] {
			continue
		}
		if f, ok := netaddr.FamilyFromAFI(afi); ok {
			afis[f] = true
		}
	}
	if s.writer != nil {
		s.writer.SetFourOctetAS(as4)
	}
	s.mu.Lock()
	s.negAS4, s.negAFIs = as4, afis
	s.mu.Unlock()
}

// loop is the event-loop goroutine: the only goroutine touching the FSM,
// the writer, and the timers.
func (s *Session) loop() {
	defer s.wg.Done()
	defer s.cleanup()
	for {
		select {
		case <-s.done:
			return
		case ev := <-s.events:
			if s.handle(ev) {
				return
			}
			// With no delay budget, flush as soon as the event queue
			// idles: batches then only form under backlog.
			if s.cfg.BatchMaxDelay <= 0 && len(s.batch) > 0 && len(s.events) == 0 {
				s.flushBatch()
			}
		case it := <-s.outbox:
			if !s.writeOut(it) {
				continue
			}
		case <-s.flushC:
			s.flushC = nil
			s.flushBatch()
		}
	}
}

// deliverUpdate hands one received UPDATE to the handler: directly, or
// into the coalescing batch when batching is enabled. The batch flushes
// when it reaches BatchMaxUpdates messages or batchMaxPrefixes prefixes;
// otherwise the flush timer (armed at first accumulation) bounds how
// long the update is held to BatchMaxDelay.
func (s *Session) deliverUpdate(u wire.Update) {
	if s.bh == nil {
		s.cfg.Handler.Update(s, u)
		return
	}
	s.batch = append(s.batch, u)
	s.batchPrefixes += len(u.NLRI) + len(u.Withdrawn)
	if len(s.batch) >= s.cfg.BatchMaxUpdates || s.batchPrefixes >= batchMaxPrefixes {
		s.flushBatch()
		return
	}
	if s.flushC == nil && s.cfg.BatchMaxDelay > 0 {
		if s.flushTimer == nil {
			s.flushTimer = time.NewTimer(s.cfg.BatchMaxDelay)
		} else {
			s.flushTimer.Reset(s.cfg.BatchMaxDelay)
		}
		s.flushC = s.flushTimer.C
	}
}

// flushBatch delivers the pending update batch, if any. A stale timer
// fire after a size-triggered flush is harmless: it finds an empty batch
// (or flushes a younger one early), never delays or reorders delivery.
func (s *Session) flushBatch() {
	if s.flushTimer != nil {
		s.flushTimer.Stop()
	}
	s.flushC = nil
	if len(s.batch) == 0 {
		return
	}
	b := s.batch
	s.batch = s.batch[:0]
	s.batchPrefixes = 0
	s.bh.UpdateBatch(s, b)
}

// writeOut sends one queued item plus any immediately available batch.
func (s *Session) writeOut(first outboxItem) bool {
	if s.writer == nil || s.fsm.State() != fsm.Established {
		// Not established: drop silently (releasing any shared payload).
		// Benchmark speakers only send after Established fires, so this is
		// a shutdown race, not a bug.
		first.release()
		return false
	}
	write := func(it outboxItem) bool {
		if it.shared != nil {
			// Shared fan-out payload: the bytes are already framed, and
			// bufio copies them before WriteRaw returns, so the reference
			// can be released immediately — even on error.
			err := s.writer.WriteRaw(it.shared.Bytes())
			if err == nil {
				s.Stats.MsgsOut.Add(uint64(it.shared.Msgs()))
				s.Stats.UpdatesOut.Add(uint64(it.shared.Updates()))
			}
			it.release()
			if err != nil {
				s.transportError(err)
				return false
			}
			return true
		}
		if err := s.writer.WriteMessageBuffered(it.msg); err != nil {
			s.transportError(err)
			return false
		}
		s.Stats.MsgsOut.Add(1)
		if it.msg.Type() == wire.MsgUpdate {
			s.Stats.UpdatesOut.Add(1)
		}
		return true
	}
	if !write(first) {
		return false
	}
	// Opportunistically batch queued messages into one flush.
batch:
	for i := 0; i < 256; i++ {
		select {
		case it := <-s.outbox:
			if !write(it) {
				return false
			}
		default:
			break batch
		}
	}
	if err := s.writer.Flush(); err != nil {
		s.transportError(err)
		return false
	}
	return true
}

func (s *Session) transportError(err error) {
	select {
	case s.events <- event{fsm: fsm.Event{Type: fsm.EvTCPConnFails}, err: err}:
	default:
	}
}

// handle feeds one event through the FSM and executes the actions.
// It returns true when the session is finished.
func (s *Session) handle(ev event) bool {
	if ev.conn != nil {
		if s.conn != nil {
			// Connection collision: keep the first transport, ignore the
			// duplicate entirely (a full implementation would compare BGP
			// identifiers per RFC 4271 section 6.8).
			ev.conn.Close() //bgplint:allow(errdrop) reason=best-effort close of a rejected duplicate transport
			return false
		}
		// Adopt the transport before the FSM acts on it.
		s.adoptConn(ev.conn)
	}
	if ev.fsm.Type == fsm.EvHoldTimerExpires {
		// Record why the session is about to die: ActStopped reports the
		// first recorded error to Handler.Down, and "the peer went silent"
		// is the one teardown cause no transport error ever captures.
		s.recordErr(&wire.NotifyError{Code: wire.ErrCodeHoldTimer, Reason: "hold timer expired"})
	}
	if ev.fsm.Type == fsm.EvTCPConnFails {
		if ev.err != nil {
			s.recordErr(ev.err)
		}
		// The failed transport is unusable: release it now (the FSM's
		// Connect/Active transitions do not emit ActCloseConn) so a later
		// reconnect is not mistaken for a connection collision and the
		// reader goroutine is cancelled instead of leaked.
		s.dropConn()
	}
	if ev.fsm.Type == fsm.EvMsgOpen && ev.fsm.Open != nil {
		s.negotiate(*ev.fsm.Open)
	}
	acts := s.fsm.Handle(ev.fsm)
	s.stateMirror.Store(int32(s.fsm.State()))
	finished := false
	for _, a := range acts {
		if s.execute(a, ev) {
			finished = true
		}
	}
	if ev.fsm.Type == fsm.EvManualStop {
		s.closeDone()
		finished = true
	}
	return finished
}

func (s *Session) execute(a fsm.Action, ev event) bool {
	switch a.Type {
	case fsm.ActConnect:
		s.dial()
	case fsm.ActSendOpen:
		open := wire.NewOpen(s.cfg.FSM.LocalAS, s.cfg.FSM.HoldTime, s.cfg.FSM.LocalID)
		if caps, err := wire.MarshalCapabilities(s.cfg.FSM.Capabilities); err == nil {
			open.OptParams = caps
		}
		s.sendNow(open)
	case fsm.ActSendKeepalive:
		s.sendNow(wire.Keepalive{})
	case fsm.ActSendNotify:
		if a.Notif != nil {
			s.sendNow(*a.Notif)
		}
	case fsm.ActCloseConn:
		s.dropConn()
		if s.fsm.State() == fsm.Idle {
			// Terminal for this session object: benchmark sessions do not
			// auto-restart once torn down.
			s.closeDone()
			return true
		}
	case fsm.ActStartHold:
		s.startHold()
	case fsm.ActStopHold:
		s.stopTimer(&s.holdTimer)
	case fsm.ActStartKeepalive:
		s.startKeepalive()
	case fsm.ActStopKeepalive:
		s.stopTimer(&s.kaTimer)
	case fsm.ActStartConnectRetry:
		s.startRetry()
	case fsm.ActStopConnectRetry:
		s.stopTimer(&s.retryTimer)
	case fsm.ActEstablished:
		s.flushBatch()
		s.mu.Lock()
		s.established = true
		s.mu.Unlock()
		s.cfg.Handler.Established(s)
	case fsm.ActStopped:
		// Deliver updates received before the teardown so the handler sees
		// them ahead of Down, exactly as without batching.
		s.flushBatch()
		s.mu.Lock()
		s.established = false
		err := s.lastErr
		s.mu.Unlock()
		if err == nil {
			err = errors.New("session stopped")
		}
		s.cfg.Handler.Down(s, err)
	case fsm.ActDeliverRefresh:
		if a.Refresh != nil {
			if rh, ok := s.cfg.Handler.(RefreshHandler); ok {
				s.flushBatch()
				rh.Refresh(s, *a.Refresh)
			}
		}
	case fsm.ActDeliverUpdate:
		if a.Update != nil {
			s.Stats.UpdatesIn.Add(1)
			s.Stats.PrefixesIn.Add(uint64(len(a.Update.NLRI)))
			s.Stats.WithdrawsIn.Add(uint64(len(a.Update.Withdrawn)))
			s.deliverUpdate(*a.Update)
		}
	}
	return false
}

func (s *Session) recordErr(err error) {
	s.mu.Lock()
	if s.lastErr == nil {
		s.lastErr = err
	}
	s.mu.Unlock()
}

// sendNow writes a control message immediately (bypassing the outbox so
// OPEN/KEEPALIVE/NOTIFICATION are not queued behind bulk updates).
func (s *Session) sendNow(m wire.Message) {
	if s.writer == nil {
		return
	}
	if err := s.writer.WriteMessage(m); err != nil {
		s.transportError(err)
		return
	}
	s.Stats.MsgsOut.Add(1)
}

// dial starts an asynchronous connection attempt.
func (s *Session) dial() {
	target := s.cfg.DialTarget
	dialFn := s.cfg.Dial
	if dialFn == nil {
		dialFn = net.DialTimeout
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		conn, err := dialFn("tcp", target, s.cfg.DialTimeout)
		ev := event{}
		if err != nil {
			ev.fsm = fsm.Event{Type: fsm.EvTCPConnFails}
			ev.err = err
		} else {
			ev.fsm = fsm.Event{Type: fsm.EvTCPConnEstablished}
			ev.conn = conn
		}
		select {
		case s.events <- ev:
		case <-s.done:
			if conn != nil {
				conn.Close() //bgplint:allow(errdrop) reason=session already stopped; nothing can act on a close error
			}
		}
	}()
}

// adoptConn installs a transport and spawns its reader.
func (s *Session) adoptConn(conn net.Conn) {
	if s.conn != nil {
		// Connection collision: keep the first transport, drop the new one.
		conn.Close() //bgplint:allow(errdrop) reason=best-effort close of a rejected duplicate transport
		return
	}
	s.conn = conn
	s.writer = wire.NewWriter(conn)
	cancel := make(chan struct{})
	s.readerCancel = cancel
	s.wg.Add(1)
	go s.readLoop(conn, cancel)
}

// readLoop converts inbound messages to FSM events.
func (s *Session) readLoop(conn net.Conn, cancel chan struct{}) {
	defer s.wg.Done()
	r := wire.NewReader(conn)
	for {
		m, err := r.ReadMessage()
		var ev event
		switch {
		case err == nil:
			s.Stats.MsgsIn.Add(1)
			if o, ok := m.(wire.Open); ok && s.local4 {
				// The reader owns its parse mode: switch to 4-octet
				// AS_PATH decoding the moment the peer's OPEN commits
				// both sides to it, before any UPDATE bytes follow.
				if _, peer4 := o.FourOctetAS(); peer4 {
					r.SetFourOctetAS(true)
				}
			}
			ev.fsm = messageEvent(m)
		default:
			var ne *wire.NotifyError
			if errors.As(err, &ne) {
				ev.fsm = fsm.Event{Type: fsm.EvMsgError, Err: ne}
			} else {
				ev.fsm = fsm.Event{Type: fsm.EvTCPConnFails}
				ev.err = err
			}
		}
		select {
		case s.events <- ev:
		case <-cancel:
			return
		case <-s.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// messageEvent maps a parsed message onto its FSM event.
func messageEvent(m wire.Message) fsm.Event {
	switch v := m.(type) {
	case wire.Open:
		return fsm.Event{Type: fsm.EvMsgOpen, Open: &v}
	case wire.Update:
		return fsm.Event{Type: fsm.EvMsgUpdate, Update: &v}
	case wire.Notification:
		return fsm.Event{Type: fsm.EvMsgNotification, Notif: &v}
	case wire.Keepalive:
		return fsm.Event{Type: fsm.EvMsgKeepalive}
	case wire.RouteRefresh:
		return fsm.Event{Type: fsm.EvMsgRouteRefresh, Refresh: &v}
	}
	return fsm.Event{Type: fsm.EvMsgError, Err: fmt.Errorf("unknown message %T", m)}
}

func (s *Session) dropConn() {
	if s.readerCancel != nil {
		close(s.readerCancel)
		s.readerCancel = nil
	}
	if s.conn != nil {
		s.conn.Close() //bgplint:allow(errdrop) reason=teardown of an already-failed transport; the session event is the signal
		s.conn = nil
	}
	s.writer = nil
}

func (s *Session) startHold() {
	d := time.Duration(s.holdSeconds()) * time.Second
	if d == 0 {
		return
	}
	s.stopTimer(&s.holdTimer)
	s.holdTimer = time.AfterFunc(d, func() {
		select {
		case s.events <- event{fsm: fsm.Event{Type: fsm.EvHoldTimerExpires}}:
		case <-s.done:
		}
	})
}

func (s *Session) holdSeconds() uint16 {
	if s.fsm.State() == fsm.OpenSent || s.fsm.State() == fsm.Connect || s.fsm.State() == fsm.Active {
		// Pre-negotiation: use a generous 4-minute bound (RFC suggestion).
		return 240
	}
	return s.fsm.HoldTime()
}

func (s *Session) startKeepalive() {
	hold := s.fsm.HoldTime()
	if hold == 0 {
		return
	}
	d := time.Duration(hold) * time.Second / 3
	if d < time.Second {
		d = time.Second
	}
	s.stopTimer(&s.kaTimer)
	s.kaTimer = time.AfterFunc(d, func() {
		select {
		case s.events <- event{fsm: fsm.Event{Type: fsm.EvKeepaliveTimerExpires}}:
		case <-s.done:
		}
	})
}

func (s *Session) startRetry() {
	s.stopTimer(&s.retryTimer)
	s.retryTimer = time.AfterFunc(s.cfg.ConnectRetry, func() {
		select {
		case s.events <- event{fsm: fsm.Event{Type: fsm.EvConnectRetryExpires}}:
		case <-s.done:
		}
	})
}

func (s *Session) stopTimer(t **time.Timer) {
	if *t != nil {
		(*t).Stop()
		*t = nil
	}
}

func (s *Session) cleanup() {
	s.stopTimer(&s.holdTimer)
	s.stopTimer(&s.kaTimer)
	s.stopTimer(&s.retryTimer)
	s.stopTimer(&s.flushTimer)
	s.dropConn()
	s.closeDone()
	// Best-effort drain: release shared payload references stranded in the
	// outbox so their buffers return to the pool. A Send racing with
	// shutdown may still slip an item in afterwards; that reference leaks
	// to the garbage collector, which is safe (never aliasing).
	for {
		select {
		case it := <-s.outbox:
			it.release()
		default:
			return
		}
	}
}
