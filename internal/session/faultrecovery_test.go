package session

import (
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/netem"
	"bgpbench/internal/wire"
)

// waitGoroutines polls until the goroutine count drops to at most max.
func waitGoroutines(t *testing.T, max int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= max {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%d goroutines alive, want <= %d:\n%s", n, max, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMidOpenConnFailureRecovers: a transport that dies mid-OPEN (peer
// closes after accepting, before replying) must not wedge the session.
// Regression: the stale conn used to survive EvTCPConnFails, so the
// retry's fresh transport was closed as a "connection collision" and the
// session never established.
func TestMidOpenConnFailureRecovers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	pc := newCollector()
	passive := New(Config{
		FSM: fsm.Config{
			LocalAS: 65002, LocalID: netaddr.MustParseAddr("2.2.2.2"),
			HoldTime: 90, Passive: true,
		},
		Handler: pc, Name: "passive",
	})
	passive.Start()
	defer passive.Stop()

	go func() {
		// First connection: slam the door mid-handshake.
		if conn, err := ln.Accept(); err == nil {
			conn.Close()
		}
		// Second connection: a real peer.
		if conn, err := ln.Accept(); err == nil {
			passive.Attach(conn)
		}
	}()

	ac := newCollector()
	active := New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"), HoldTime: 90,
		},
		DialTarget:   ln.Addr().String(),
		ConnectRetry: 200 * time.Millisecond,
		Handler:      ac, Name: "active",
	})
	active.Start()
	defer active.Stop()

	waitEstablished(t, ac, "active")
	if active.Err() == nil {
		t.Error("the mid-OPEN failure should have been recorded")
	}
}

// TestMidOpenConnFailureNoLeak: repeated mid-OPEN transport failures must
// not leak reader goroutines or wedge the event loop.
func TestMidOpenConnFailureNoLeak(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var accepted atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			conn.Close()
		}
	}()

	base := runtime.NumGoroutine()
	active := New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"), HoldTime: 90,
		},
		DialTarget:   ln.Addr().String(),
		ConnectRetry: 50 * time.Millisecond,
		Name:         "active",
	})
	active.Start()

	deadline := time.Now().Add(5 * time.Second)
	for accepted.Load() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d retry attempts observed", accepted.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	active.Stop()
	// The accept goroutine above stays parked in Accept; allow it plus
	// scheduling noise.
	waitGoroutines(t, base+2, 5*time.Second)
}

// TestDialHookUsed: Config.Dial replaces net.DialTimeout for outbound
// attempts (this is the seam the netem fault injector plugs into).
func TestDialHookUsed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	pc := newCollector()
	passive := New(Config{
		FSM: fsm.Config{
			LocalAS: 65002, LocalID: netaddr.MustParseAddr("2.2.2.2"),
			HoldTime: 90, Passive: true,
		},
		Handler: pc, Name: "passive",
	})
	passive.Start()
	defer passive.Stop()
	go func() {
		if conn, err := ln.Accept(); err == nil {
			passive.Attach(conn)
		}
	}()

	var dials atomic.Int32
	ac := newCollector()
	active := New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"), HoldTime: 90,
		},
		DialTarget: ln.Addr().String(),
		Dial: func(network, address string, timeout time.Duration) (net.Conn, error) {
			dials.Add(1)
			return net.DialTimeout(network, address, timeout)
		},
		Handler: ac, Name: "active",
	})
	active.Start()
	defer active.Stop()

	waitEstablished(t, ac, "active")
	if dials.Load() == 0 {
		t.Fatal("custom Dial hook never invoked")
	}
}

// TestNetemResetTearsDownCleanly: an established session whose transport
// is reset mid-stream by the fault injector reports Down with the
// injected error and terminates without leaking goroutines.
func TestNetemResetTearsDownCleanly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	base := runtime.NumGoroutine()

	pc := newCollector()
	passive := New(Config{
		FSM: fsm.Config{
			LocalAS: 65002, LocalID: netaddr.MustParseAddr("2.2.2.2"),
			HoldTime: 90, Passive: true,
		},
		Handler: pc, Name: "passive",
	})
	passive.Start()
	go func() {
		if conn, err := ln.Accept(); err == nil {
			passive.Attach(conn)
		}
	}()

	inj := netem.NewInjector(netem.Profile{
		Name: "reset", Seed: 11,
		ResetEvents: 1, MinOffset: 64, Horizon: 256,
	}, netem.NewVirtualClock())

	ac := newCollector()
	active := New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"), HoldTime: 90,
		},
		DialTarget: ln.Addr().String(),
		Dial:       inj.Dial("active"),
		Handler:    ac, Name: "active",
	})
	active.Start()

	waitEstablished(t, ac, "active")
	waitEstablished(t, pc, "passive")

	// Pump updates until the scheduled reset fires.
	attrs := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001), netaddr.MustParseAddr("10.0.0.1"))
	u := wire.Update{Attrs: attrs, NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("192.0.2.0/24")}}
	deadline := time.Now().Add(5 * time.Second)
loop:
	for {
		select {
		case <-ac.downs:
			break loop
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("session never went down despite the scheduled reset")
		}
		_ = active.Send(u)
		time.Sleep(time.Millisecond)
	}

	if inj.Stats().Resets != 1 {
		t.Fatalf("Resets = %d, want 1", inj.Stats().Resets)
	}
	active.Stop()
	passive.Stop()
	waitGoroutines(t, base+1, 5*time.Second)
}
