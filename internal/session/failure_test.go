package session

import (
	"net"
	"testing"
	"time"

	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// TestCapabilitiesExchangedEndToEnd: capabilities configured on one side
// arrive in the other side's PeerOpen.
func TestCapabilitiesExchangedEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	pc := newCollector()
	passive := New(Config{
		FSM: fsm.Config{
			LocalAS: 65002, LocalID: netaddr.MustParseAddr("2.2.2.2"),
			HoldTime: 90, Passive: true,
		},
		Handler: pc, Name: "passive",
	})
	passive.Start()
	defer passive.Stop()
	go func() {
		if conn, err := ln.Accept(); err == nil {
			passive.Attach(conn)
		}
	}()

	ac := newCollector()
	active := New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"), HoldTime: 90,
			Capabilities: []wire.Capability{wire.MultiprotocolIPv4Unicast(), wire.RouteRefreshCapability()},
		},
		DialTarget: ln.Addr().String(),
		Handler:    ac, Name: "active",
	})
	active.Start()
	defer active.Stop()

	waitEstablished(t, ac, "active")
	waitEstablished(t, pc, "passive")

	caps, err := wire.ParseCapabilities(passive.PeerOpen().OptParams)
	if err != nil {
		t.Fatal(err)
	}
	if !wire.HasCapability(caps, wire.CapMultiprotocol) || !wire.HasCapability(caps, wire.CapRouteRefresh) {
		t.Fatalf("capabilities not received: %v", caps)
	}
}

// rawDial opens a plain TCP connection to the listener and hands it to
// the passive session, returning the raw conn for hostile writes.
func rawPassive(t *testing.T) (*Session, *collector, net.Conn, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pc := newCollector()
	passive := New(Config{
		FSM: fsm.Config{
			LocalAS: 65002, LocalID: netaddr.MustParseAddr("2.2.2.2"),
			HoldTime: 90, Passive: true,
		},
		Handler: pc, Name: "victim",
	})
	passive.Start()
	accepted := make(chan struct{})
	go func() {
		if conn, err := ln.Accept(); err == nil {
			passive.Attach(conn)
		}
		close(accepted)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	return passive, pc, conn, func() {
		conn.Close()
		passive.Stop()
		ln.Close()
	}
}

// TestGarbageBytesTriggerNotification: a peer that writes garbage gets a
// NOTIFICATION (connection-not-synchronized) and a close, and the session
// survives as a process (no panic, clean teardown).
func TestGarbageBytesTriggerNotification(t *testing.T) {
	passive, _, conn, cleanup := rawPassive(t)
	defer cleanup()

	garbage := make([]byte, 64)
	for i := range garbage {
		garbage[i] = byte(i * 7)
	}
	if _, err := conn.Write(garbage); err != nil {
		t.Fatal(err)
	}
	// Expect a NOTIFICATION back before the close (the victim's own OPEN
	// precedes it).
	n := expectNotification(t, conn)
	if n.Code != wire.ErrCodeHeader {
		t.Fatalf("got %+v, want header-error NOTIFICATION", n)
	}
	// The victim session ends in Idle.
	deadline := time.Now().Add(5 * time.Second)
	for passive.State() != fsm.Idle {
		if time.Now().After(deadline) {
			t.Fatalf("victim stuck in %v", passive.State())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOversizedLengthRejected: a header advertising a length beyond 4096
// must be rejected with a bad-length NOTIFICATION.
func TestOversizedLengthRejected(t *testing.T) {
	_, _, conn, cleanup := rawPassive(t)
	defer cleanup()

	hdr := make([]byte, wire.HeaderLen)
	for i := 0; i < 16; i++ {
		hdr[i] = 0xFF
	}
	hdr[16], hdr[17] = 0xFF, 0xFF // length 65535
	hdr[18] = byte(wire.MsgUpdate)
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	n := expectNotification(t, conn)
	if n.Code != wire.ErrCodeHeader || n.Subcode != wire.ErrSubBadLength {
		t.Fatalf("got %+v, want header/bad-length", n)
	}
}

// expectNotification reads messages until a NOTIFICATION arrives (the
// victim's own OPEN/KEEPALIVE may precede it).
func expectNotification(t *testing.T, conn net.Conn) wire.Notification {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := wire.NewReader(conn)
	for {
		m, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("connection ended without NOTIFICATION: %v", err)
		}
		if n, ok := m.(wire.Notification); ok {
			return n
		}
	}
}

// TestAbruptDisconnectBeforeOpen: closing the transport mid-handshake
// must not wedge the session.
func TestAbruptDisconnectBeforeOpen(t *testing.T) {
	passive, _, conn, cleanup := rawPassive(t)
	defer cleanup()
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for passive.State() != fsm.Idle && passive.State() != fsm.Active {
		if time.Now().After(deadline) {
			t.Fatalf("victim stuck in %v after disconnect", passive.State())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMalformedUpdateAfterEstablishmentTearsDownCleanly drives a full
// handshake by hand, then sends a structurally broken UPDATE.
func TestMalformedUpdateAfterEstablishment(t *testing.T) {
	passive, pc, conn, cleanup := rawPassive(t)
	defer cleanup()

	w := wire.NewWriter(conn)
	r := wire.NewReader(conn)
	if err := w.WriteMessage(wire.NewOpen(65001, 90, netaddr.MustParseAddr("1.1.1.1"))); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMessage(wire.Keepalive{}); err != nil {
		t.Fatal(err)
	}
	waitEstablished(t, pc, "victim")

	// UPDATE whose attribute block overruns: withdrawn len 0, attr len 200,
	// but only 2 bytes of body follow.
	body := []byte{0, 0, 0, 200, 0x40, 1}
	msg := make([]byte, wire.HeaderLen+len(body))
	for i := 0; i < 16; i++ {
		msg[i] = 0xFF
	}
	msg[16] = byte(len(msg) >> 8)
	msg[17] = byte(len(msg))
	msg[18] = byte(wire.MsgUpdate)
	copy(msg[wire.HeaderLen:], body)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}

	// Expect an UPDATE-error NOTIFICATION (possibly after the initial
	// KEEPALIVE/OPEN exchange messages already queued).
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		m, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("connection died without NOTIFICATION: %v", err)
		}
		if n, ok := m.(wire.Notification); ok {
			if n.Code != wire.ErrCodeUpdate {
				t.Fatalf("NOTIFICATION code %d, want UPDATE error", n.Code)
			}
			break
		}
	}
	select {
	case <-pc.downs:
	case <-time.After(5 * time.Second):
		t.Fatal("victim session never reported down")
	}
	_ = passive
}
