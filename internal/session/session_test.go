package session

import (
	"net"
	"sync"
	"testing"
	"time"

	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// collector records handler callbacks for assertions.
type collector struct {
	mu          sync.Mutex
	established chan struct{}
	downs       chan error
	updates     chan wire.Update
}

func newCollector() *collector {
	return &collector{
		established: make(chan struct{}, 4),
		downs:       make(chan error, 4),
		updates:     make(chan wire.Update, 4096),
	}
}

func (c *collector) Established(*Session)             { c.established <- struct{}{} }
func (c *collector) Down(_ *Session, err error)       { c.downs <- err }
func (c *collector) Update(_ *Session, u wire.Update) { c.updates <- u }

// startPair wires an active session to a passive one over loopback and
// waits for both to establish.
func startPair(t *testing.T, activeHold, passiveHold uint16) (active, passive *Session, ac, pc *collector, cleanup func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ac, pc = newCollector(), newCollector()
	passive = New(Config{
		FSM: fsm.Config{
			LocalAS: 65002, LocalID: netaddr.MustParseAddr("2.2.2.2"),
			HoldTime: passiveHold, Passive: true,
		},
		Handler: pc,
		Name:    "passive",
	})
	passive.Start()

	acceptErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		passive.Attach(conn)
		acceptErr <- nil
	}()

	active = New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"),
			HoldTime: activeHold,
		},
		DialTarget: ln.Addr().String(),
		Handler:    ac,
		Name:       "active",
	})
	active.Start()

	waitEstablished(t, ac, "active")
	waitEstablished(t, pc, "passive")
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}

	cleanup = func() {
		active.Stop()
		passive.Stop()
		ln.Close()
	}
	return active, passive, ac, pc, cleanup
}

func waitEstablished(t *testing.T, c *collector, name string) {
	t.Helper()
	select {
	case <-c.established:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s session did not establish", name)
	}
}

func TestSessionEstablishment(t *testing.T) {
	active, passive, _, _, cleanup := startPair(t, 90, 90)
	defer cleanup()
	if !active.Established() || !passive.Established() {
		t.Fatal("sessions should report established")
	}
	if active.State() != fsm.Established {
		t.Fatalf("active state = %v", active.State())
	}
}

func TestUpdateExchange(t *testing.T) {
	active, _, _, pc, cleanup := startPair(t, 90, 90)
	defer cleanup()

	const n = 500
	attrs := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001), netaddr.MustParseAddr("10.0.0.1"))
	for i := 0; i < n; i++ {
		u := wire.Update{
			Attrs: attrs,
			NLRI:  []netaddr.Prefix{netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i)<<10), 22)},
		}
		if err := active.Send(u); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	deadline := time.After(10 * time.Second)
	for got < n {
		select {
		case <-pc.updates:
			got++
		case <-deadline:
			t.Fatalf("received %d/%d updates", got, n)
		}
	}
	if active.Stats.UpdatesOut.Load() != n {
		t.Errorf("UpdatesOut = %d", active.Stats.UpdatesOut.Load())
	}
}

func TestBidirectionalUpdates(t *testing.T) {
	active, passive, ac, pc, cleanup := startPair(t, 90, 90)
	defer cleanup()

	attrs := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65002), netaddr.MustParseAddr("10.0.0.2"))
	u := wire.Update{Attrs: attrs, NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("192.0.2.0/24")}}
	if err := passive.Send(u); err != nil {
		t.Fatal(err)
	}
	if err := active.Send(u); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]chan wire.Update{"active": ac.updates, "passive": pc.updates} {
		select {
		case got := <-ch:
			if len(got.NLRI) != 1 || got.NLRI[0] != netaddr.MustParsePrefix("192.0.2.0/24") {
				t.Fatalf("%s: wrong update %+v", name, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: no update", name)
		}
	}
}

func TestGracefulStopSendsCease(t *testing.T) {
	active, _, _, pc, cleanup := startPair(t, 90, 90)
	defer cleanup()

	active.Stop()
	select {
	case err := <-pc.downs:
		if err == nil {
			t.Fatal("expected a down reason")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("passive side never saw the teardown")
	}
}

func TestPeerASMismatchResets(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	pc := newCollector()
	passive := New(Config{
		FSM: fsm.Config{
			LocalAS: 65002, LocalID: netaddr.MustParseAddr("2.2.2.2"),
			HoldTime: 90, Passive: true,
			PeerAS: 64999, // will not match
		},
		Handler: pc, Name: "passive",
	})
	passive.Start()
	defer passive.Stop()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			passive.Attach(conn)
		}
	}()

	ac := newCollector()
	active := New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"), HoldTime: 90,
		},
		DialTarget: ln.Addr().String(),
		Handler:    ac, Name: "active",
	})
	active.Start()
	defer active.Stop()

	// Neither side should establish; give the handshake a moment.
	select {
	case <-pc.established:
		t.Fatal("passive established despite AS mismatch")
	case <-ac.established:
		t.Fatal("active established despite AS mismatch")
	case <-time.After(1 * time.Second):
	}
}

func TestSendAfterStopErrors(t *testing.T) {
	active, _, _, _, cleanup := startPair(t, 90, 90)
	cleanup()
	// After Stop, Send must not block forever.
	err := active.Send(wire.Keepalive{})
	if err == nil {
		// The outbox may still accept a buffered message; drain the done
		// path by trying repeatedly.
		deadline := time.Now().Add(3 * time.Second)
		for err == nil && time.Now().Before(deadline) {
			err = active.Send(wire.Keepalive{})
		}
		if err == nil {
			t.Fatal("Send never failed after Stop")
		}
	}
}

func TestHoldTimerTeardown(t *testing.T) {
	if testing.Short() {
		t.Skip("hold-timer test sleeps for seconds")
	}
	// Hold time 3s (minimum legal): kill the passive side's event loop by
	// force-closing its transport and verify the active side tears down.
	active, passive, ac, _, cleanup := startPair(t, 3, 3)
	defer cleanup()

	// Silence the passive side without a clean close: stop its loop.
	passive.mu.Lock()
	conn := passive.conn
	passive.mu.Unlock()
	_ = conn
	passive.Stop() // sends CEASE; active sees NOTIFICATION and goes down

	select {
	case <-ac.downs:
	case <-time.After(10 * time.Second):
		t.Fatal("active session did not tear down")
	}
	if active.Established() {
		t.Fatal("active still established")
	}
}

func TestCountersTrackPrefixes(t *testing.T) {
	active, passive, _, pc, cleanup := startPair(t, 90, 90)
	defer cleanup()

	attrs := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001), netaddr.MustParseAddr("10.0.0.1"))
	u := wire.Update{
		Attrs: attrs,
		NLRI: []netaddr.Prefix{
			netaddr.MustParsePrefix("10.0.0.0/8"),
			netaddr.MustParsePrefix("10.1.0.0/16"),
		},
		Withdrawn: []netaddr.Prefix{netaddr.MustParsePrefix("172.16.0.0/12")},
	}
	if err := active.Send(u); err != nil {
		t.Fatal(err)
	}
	select {
	case <-pc.updates:
	case <-time.After(5 * time.Second):
		t.Fatal("no update")
	}
	if got := passive.Stats.PrefixesIn.Load(); got != 2 {
		t.Errorf("PrefixesIn = %d, want 2", got)
	}
	if got := passive.Stats.WithdrawsIn.Load(); got != 1 {
		t.Errorf("WithdrawsIn = %d, want 1", got)
	}
}
