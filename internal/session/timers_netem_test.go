package session

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/netem"
	"bgpbench/internal/wire"
)

// passiveFarm accepts every inbound connection on ln and runs each one as
// a fresh passive session, the way the router's accept loop does. It lets
// an active session flap and redial as many times as its fault profile
// demands.
type passiveFarm struct {
	ln       net.Listener
	sessions chan *Session
	done     chan struct{}
}

func startPassiveFarm(t *testing.T, hold uint16) *passiveFarm {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &passiveFarm{ln: ln, sessions: make(chan *Session, 16), done: make(chan struct{})}
	go func() {
		defer close(f.done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s := New(Config{
				FSM: fsm.Config{
					LocalAS: 65002, LocalID: netaddr.MustParseAddr("2.2.2.2"),
					HoldTime: hold, Passive: true,
				},
				Name: "farm-passive",
			})
			s.Start()
			s.Attach(conn)
			select {
			case f.sessions <- s:
			default:
				s.Stop()
			}
		}
	}()
	return f
}

func (f *passiveFarm) stop() {
	f.ln.Close()
	<-f.done
	for {
		select {
		case s := <-f.sessions:
			s.Stop()
		default:
			return
		}
	}
}

// TestHoldTimerExpiryUnderReadStall: a netem read stall longer than the
// negotiated hold time starves the active side of keepalives even though
// the peer keeps sending them. The hold timer must fire, send the
// hold-timer NOTIFICATION, and take the session down — the stall-profile
// analogue of a peer wedged behind a congested link.
func TestHoldTimerExpiryUnderReadStall(t *testing.T) {
	if testing.Short() {
		t.Skip("hold-timer expiry waits out a 3s hold time")
	}
	farm := startPassiveFarm(t, 3)
	defer farm.stop()

	// The handshake reads 68 bytes (peer OPEN 49 — 29 base plus the
	// MP-v4/MP-v6/4-octet-AS capability block — + KEEPALIVE 19); a stall
	// window of [69, 87) lands inside the first post-handshake keepalive,
	// delaying its delivery past the 3s hold deadline. Real clock: the
	// stall must cost wall time for the hold timer to lose the race.
	inj := netem.NewInjector(netem.Profile{
		Name:            "read-stall",
		Seed:            7,
		ReadStallEvents: 1,
		ReadStallFor:    4 * time.Second,
		MinOffset:       69,
		Horizon:         87,
	}, netem.NewRealClock())

	ac := newCollector()
	active := New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"),
			HoldTime: 3,
		},
		DialTarget: farm.ln.Addr().String(),
		Dial:       inj.Dial("active"),
		Handler:    ac,
		Name:       "active",
	})
	active.Start()
	defer active.Stop()
	waitEstablished(t, ac, "active")

	var downErr error
	select {
	case downErr = <-ac.downs:
	case <-time.After(10 * time.Second):
		t.Fatalf("hold timer never fired (stats %+v)", inj.Stats())
	}
	if active.Established() {
		t.Fatal("active still established after hold expiry")
	}
	var ne *wire.NotifyError
	if !errors.As(downErr, &ne) || ne.Code != wire.ErrCodeHoldTimer {
		t.Fatalf("down error = %v, want hold-timer NotifyError", downErr)
	}
	if st := inj.Stats(); st.ReadStalls != 1 {
		t.Fatalf("read stalls = %d, want 1 (stats %+v)", st.ReadStalls, st)
	}
}

// TestConnectRetryBackoffUnderResets: a flap-reset-style profile kills the
// first three connection attempts inside the OPEN write. Each failure must
// land the session back in Active with the retry timer armed, and the
// fourth (clean) attempt must establish — counting exactly one dial per
// ConnectRetry cycle.
func TestConnectRetryBackoffUnderResets(t *testing.T) {
	farm := startPassiveFarm(t, 30)
	defer farm.stop()

	// OPEN is 49 bytes; a reset in [19, 29) fires inside that first write,
	// so the failure is seen from OpenSent (retry path), never from
	// OpenConfirm (terminal path).
	inj := netem.NewInjector(netem.Profile{
		Name:            "open-reset",
		Seed:            5,
		ResetEvents:     1,
		MinOffset:       19,
		Horizon:         29,
		FaultedAttempts: 3,
	}, netem.NewRealClock())

	const retry = 150 * time.Millisecond
	ac := newCollector()
	start := time.Now()
	active := New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"),
			HoldTime: 30,
		},
		DialTarget:   farm.ln.Addr().String(),
		ConnectRetry: retry,
		Dial:         inj.Dial("active"),
		Handler:      ac,
		Name:         "active",
	})
	active.Start()
	defer active.Stop()
	waitEstablished(t, ac, "active")
	elapsed := time.Since(start)

	st := inj.Stats()
	if st.Resets != 3 {
		t.Fatalf("resets = %d, want 3 (stats %+v)", st.Resets, st)
	}
	if st.Dials < 4 {
		t.Fatalf("dials = %d, want >= 4 (three faulted + one clean)", st.Dials)
	}
	// Three failed attempts each wait out a full ConnectRetry interval.
	if elapsed < 3*retry {
		t.Fatalf("established after %v, faster than 3 ConnectRetry intervals (%v)", elapsed, 3*retry)
	}
	if err := active.Err(); err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("recorded error = %v, want injected reset", err)
	}
}
