package session

import (
	"bytes"
	"net"
	"testing"
	"time"

	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// startPairCaps is startPair with explicit capability sets per side, so
// tests can model an old (2-octet-AS, pre-MP) speaker with an empty
// non-nil slice. nil means the default capability set.
func startPairCaps(t *testing.T, activeCaps, passiveCaps []wire.Capability) (active, passive *Session, ac, pc *collector, cleanup func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ac, pc = newCollector(), newCollector()
	passive = New(Config{
		FSM: fsm.Config{
			LocalAS: 65002, LocalID: netaddr.MustParseAddr("2.2.2.2"),
			HoldTime: 90, Passive: true,
			Capabilities: passiveCaps,
		},
		Handler: pc,
		Name:    "passive",
	})
	passive.Start()

	acceptErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		passive.Attach(conn)
		acceptErr <- nil
	}()

	active = New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"),
			HoldTime:     90,
			Capabilities: activeCaps,
		},
		DialTarget: ln.Addr().String(),
		Handler:    ac,
		Name:       "active",
	})
	active.Start()

	waitEstablished(t, ac, "active")
	waitEstablished(t, pc, "passive")
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}

	cleanup = func() {
		active.Stop()
		passive.Stop()
		ln.Close()
	}
	return active, passive, ac, pc, cleanup
}

// as4TestRoutes is the workload shared by the old-speaker tests: paths
// with 4-byte ASNs (forcing AS_TRANS + AS4_PATH on a 2-octet session)
// and one 2-octet-clean path.
func as4TestRoutes() []wire.Update {
	nh := netaddr.MustParseAddr("10.0.0.1")
	return []wire.Update{
		{
			Attrs: wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(70000, 65001, 100), nh),
			NLRI:  []netaddr.Prefix{netaddr.MustParsePrefix("10.1.0.0/16")},
		},
		{
			Attrs: wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(4200000000, 70000), nh),
			NLRI:  []netaddr.Prefix{netaddr.MustParsePrefix("10.2.0.0/16")},
		},
		{
			Attrs: wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001, 100), nh),
			NLRI:  []netaddr.Prefix{netaddr.MustParsePrefix("10.3.0.0/16")},
		},
	}
}

// collectUpdates receives n updates from the collector or fails.
func collectUpdates(t *testing.T, c *collector, n int) []wire.Update {
	t.Helper()
	out := make([]wire.Update, 0, n)
	deadline := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case u := <-c.updates:
			out = append(out, u)
		case <-deadline:
			t.Fatalf("received %d/%d updates", len(out), n)
		}
	}
	return out
}

// TestOldSpeakerSessionNegotiatesTwoOctet checks that a peer advertising
// no capabilities at all (an RFC 4271-era speaker) negotiates a 2-octet
// IPv4-only session on both ends.
func TestOldSpeakerSessionNegotiatesTwoOctet(t *testing.T) {
	active, passive, _, _, cleanup := startPairCaps(t, nil, []wire.Capability{})
	defer cleanup()

	if active.FourOctetAS() || passive.FourOctetAS() {
		t.Error("session negotiated 4-octet ASNs against a capability-less peer")
	}
	if afis := active.NegotiatedFamilies(); afis != [2]bool{true, false} {
		t.Errorf("active negotiated families = %v, want IPv4 only", afis)
	}
}

// TestAS4PathSurvivesOldSpeakerSession sends paths with 4-byte ASNs over
// a session where the passive side is an old 2-octet speaker: the wire
// carries AS_TRANS + AS4_PATH, and the receiver reconstructs the true
// paths (RFC 6793 section 4.2.3).
func TestAS4PathSurvivesOldSpeakerSession(t *testing.T) {
	active, passive, _, pc, cleanup := startPairCaps(t, nil, []wire.Capability{})
	defer cleanup()
	if active.FourOctetAS() || passive.FourOctetAS() {
		t.Fatal("expected a 2-octet session")
	}

	sent := as4TestRoutes()
	for _, u := range sent {
		if err := active.Send(u); err != nil {
			t.Fatal(err)
		}
	}
	got := collectUpdates(t, pc, len(sent))
	byPrefix := map[netaddr.Prefix]wire.Update{}
	for _, u := range got {
		byPrefix[u.NLRI[0]] = u
	}
	for _, want := range sent {
		u, ok := byPrefix[want.NLRI[0]]
		if !ok {
			t.Fatalf("prefix %v never arrived", want.NLRI[0])
		}
		if !u.Attrs.ASPath.Equal(want.Attrs.ASPath) {
			t.Errorf("%v: path = %v, want %v (AS4_PATH merge lost the 4-byte ASNs)",
				want.NLRI[0], u.Attrs.ASPath, want.Attrs.ASPath)
		}
	}
}

// TestAS4DigestMatchesAcrossSessionModes sends the same routes over a
// 4-octet session and over a 2-octet (old speaker) session and compares
// the canonical re-encoding of what each receiver saw. The AS_TRANS
// substitution and AS4_PATH merge must be lossless: both receivers end
// up with byte-identical attribute state.
func TestAS4DigestMatchesAcrossSessionModes(t *testing.T) {
	digest := func(caps []wire.Capability) map[netaddr.Prefix][]byte {
		active, _, _, pc, cleanup := startPairCaps(t, nil, caps)
		defer cleanup()
		sent := as4TestRoutes()
		for _, u := range sent {
			if err := active.Send(u); err != nil {
				t.Fatal(err)
			}
		}
		out := map[netaddr.Prefix][]byte{}
		for _, u := range collectUpdates(t, pc, len(sent)) {
			out[u.NLRI[0]] = wire.MarshalAttrs(u.Attrs)
		}
		return out
	}

	wide := digest(nil)                   // default caps: 4-octet session
	narrow := digest([]wire.Capability{}) // old speaker: 2-octet session
	if len(wide) != len(narrow) {
		t.Fatalf("route counts differ: %d vs %d", len(wide), len(narrow))
	}
	for p, w := range wide {
		n, ok := narrow[p]
		if !ok {
			t.Errorf("prefix %v missing from the 2-octet session", p)
			continue
		}
		if !bytes.Equal(w, n) {
			t.Errorf("%v: canonical attrs diverge across session modes:\n  4-octet: %x\n  2-octet: %x", p, w, n)
		}
	}
}
