package session

import "sync/atomic"

// SharedPayload is a reference-counted block of pre-marshaled BGP
// messages fanned out to several sessions at once: the update-group
// emission path marshals an emission run once and hands the same bytes
// to every member session. Each recipient writes the bytes to its
// transport and calls Release; when the last reference drops, the buffer
// is handed back to its pool via the free callback.
//
// Ownership discipline: the creator sets refs to the number of sessions
// that will receive the payload, then transfers one reference per
// SendShared call — including on failure, where SendShared releases on
// the caller's behalf. The buffer must never be read after the owning
// reference is released. A missed Release degrades to garbage collection
// (the pool simply never sees the buffer again); a double Release is a
// bug and panics.
type SharedPayload struct {
	buf     []byte
	msgs    int
	updates int
	refs    atomic.Int32
	free    func([]byte)
}

// NewSharedPayload wraps buf, which holds msgs whole framed BGP messages
// (updates of them UPDATEs), for fan-out to refs sessions. free, when
// non-nil, is called exactly once with buf after the last Release.
func NewSharedPayload(buf []byte, msgs, updates, refs int, free func([]byte)) *SharedPayload {
	p := &SharedPayload{buf: buf, msgs: msgs, updates: updates, free: free}
	p.refs.Store(int32(refs))
	return p
}

// Bytes returns the framed message bytes. Valid only while the caller
// holds an unreleased reference.
func (p *SharedPayload) Bytes() []byte { return p.buf }

// Msgs returns the number of framed messages in the payload.
func (p *SharedPayload) Msgs() int { return p.msgs }

// Updates returns the number of UPDATE messages in the payload.
func (p *SharedPayload) Updates() int { return p.updates }

// AddRefs grants n additional references to the payload. The caller must
// itself hold an unreleased reference (otherwise the payload may already
// have been freed and recycled): the update-group marshal cache holds one
// cache reference per entry and calls AddRefs under it each time a cached
// payload is fanned out to another set of recipients.
func (p *SharedPayload) AddRefs(n int) {
	if p.refs.Add(int32(n)) <= int32(n) {
		panic("session: SharedPayload AddRefs without a live reference")
	}
}

// Release drops one reference; the last one returns the buffer to its
// pool. Safe for concurrent use by the member sessions.
func (p *SharedPayload) Release() {
	n := p.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("session: SharedPayload over-released")
	}
	if p.free != nil {
		buf := p.buf
		p.buf = nil
		p.free(buf)
	}
}
