package session

import (
	"net"
	"testing"
	"time"

	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// batchCollector is a collector that also implements BatchHandler,
// recording each delivered batch.
type batchCollector struct {
	*collector
	batches chan []wire.Update
}

func newBatchCollector() *batchCollector {
	return &batchCollector{collector: newCollector(), batches: make(chan []wire.Update, 4096)}
}

func (c *batchCollector) UpdateBatch(_ *Session, us []wire.Update) {
	// The batch slice is only valid during the callback; copy it out.
	c.batches <- append([]wire.Update(nil), us...)
}

// startBatchPair wires an active (unbatched) session to a passive one
// configured for batched delivery.
func startBatchPair(t *testing.T, maxUpdates int, maxDelay time.Duration) (active *Session, bc *batchCollector, cleanup func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ac := newCollector()
	bc = newBatchCollector()
	passive := New(Config{
		FSM: fsm.Config{
			LocalAS: 65002, LocalID: netaddr.MustParseAddr("2.2.2.2"),
			HoldTime: 90, Passive: true,
		},
		Handler:         bc,
		Name:            "passive-batch",
		BatchMaxUpdates: maxUpdates,
		BatchMaxDelay:   maxDelay,
	})
	passive.Start()

	acceptErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		passive.Attach(conn)
		acceptErr <- nil
	}()

	active = New(Config{
		FSM: fsm.Config{
			LocalAS: 65001, LocalID: netaddr.MustParseAddr("1.1.1.1"),
			HoldTime: 90,
		},
		DialTarget: ln.Addr().String(),
		Handler:    ac,
		Name:       "active",
	})
	active.Start()

	waitEstablished(t, ac, "active")
	waitEstablished(t, bc.collector, "passive")
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}

	cleanup = func() {
		active.Stop()
		passive.Stop()
		ln.Close()
	}
	return active, bc, cleanup
}

func testPrefix(i int) netaddr.Prefix {
	return netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i)<<10), 22)
}

// TestBatchedDelivery: a BatchHandler must receive every UPDATE exactly
// once, in arrival order, with no batch exceeding BatchMaxUpdates, and
// none of them via the plain Update callback.
func TestBatchedDelivery(t *testing.T) {
	const maxBatch = 8
	active, bc, cleanup := startBatchPair(t, maxBatch, time.Millisecond)
	defer cleanup()

	const n = 500
	attrs := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001), netaddr.MustParseAddr("10.0.0.1"))
	for i := 0; i < n; i++ {
		u := wire.Update{Attrs: attrs, NLRI: []netaddr.Prefix{testPrefix(i)}}
		if err := active.Send(u); err != nil {
			t.Fatal(err)
		}
	}

	got := 0
	deadline := time.After(10 * time.Second)
	for got < n {
		select {
		case batch := <-bc.batches:
			if len(batch) == 0 || len(batch) > maxBatch {
				t.Fatalf("batch size %d, want 1..%d", len(batch), maxBatch)
			}
			for _, u := range batch {
				if len(u.NLRI) != 1 || u.NLRI[0] != testPrefix(got) {
					t.Fatalf("update %d out of order: got %v, want %v", got, u.NLRI, testPrefix(got))
				}
				got++
			}
		case u := <-bc.updates:
			t.Fatalf("plain Update callback fired (%v) despite BatchHandler", u.NLRI)
		case <-deadline:
			t.Fatalf("received %d/%d updates", got, n)
		}
	}
}

// TestBatchLoneUpdateLatency: with a batch bound far above one message,
// a lone UPDATE must still be delivered within BatchMaxDelay (plus
// scheduling slack) — the latency bound, not the count bound, flushes it.
func TestBatchLoneUpdateLatency(t *testing.T) {
	const delay = 100 * time.Millisecond
	active, bc, cleanup := startBatchPair(t, 100000, delay)
	defer cleanup()

	attrs := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001), netaddr.MustParseAddr("10.0.0.1"))
	start := time.Now()
	if err := active.Send(wire.Update{Attrs: attrs, NLRI: []netaddr.Prefix{testPrefix(1)}}); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-bc.batches:
		if len(batch) != 1 {
			t.Fatalf("batch size %d, want 1", len(batch))
		}
		if elapsed := time.Since(start); elapsed > delay+2*time.Second {
			t.Fatalf("lone update held %v, want <= %v plus slack", elapsed, delay)
		}
	case <-time.After(delay + 5*time.Second):
		t.Fatal("lone update never delivered")
	}
}

// TestBatchFlushBeforeDown: a pending batch must be delivered before the
// Down callback when the peer closes the session.
func TestBatchFlushBeforeDown(t *testing.T) {
	active, bc, cleanup := startBatchPair(t, 100000, time.Hour)
	defer cleanup()

	const n = 5
	attrs := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001), netaddr.MustParseAddr("10.0.0.1"))
	for i := 0; i < n; i++ {
		if err := active.Send(wire.Update{Attrs: attrs, NLRI: []netaddr.Prefix{testPrefix(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Give the passive loop time to enqueue all n into the forming batch,
	// then tear the session down; the hour-long delay means only the
	// flush-before-Down path can deliver them.
	time.Sleep(200 * time.Millisecond)
	active.Stop()

	got := 0
	deadline := time.After(10 * time.Second)
	for {
		select {
		case batch := <-bc.batches:
			got += len(batch)
		case <-bc.downs:
			// Down must arrive after every queued update.
			if got != n {
				t.Fatalf("Down before flush: %d/%d updates delivered", got, n)
			}
			return
		case <-deadline:
			t.Fatalf("no Down callback; %d/%d updates", got, n)
		}
	}
}
