package aggregate_test

import (
	"fmt"

	"bgpbench/internal/aggregate"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// ExampleAggregate merges four sibling /24s from the same next hop into
// one /22, combining the differing tails of their AS paths into an
// AS_SET and marking the information loss with ATOMIC_AGGREGATE.
func ExampleAggregate() {
	mk := func(p string, tail uint32) aggregate.Route {
		return aggregate.Route{
			Prefix: netaddr.MustParsePrefix(p),
			Attrs:  wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(64500, tail), netaddr.MustParseAddr("192.0.2.1")),
		}
	}
	in := []aggregate.Route{
		mk("198.18.0.0/24", 100),
		mk("198.18.1.0/24", 101),
		mk("198.18.2.0/24", 102),
		mk("198.18.3.0/24", 103),
	}
	out := aggregate.Aggregate(in, aggregate.NewConfig(65000, netaddr.MustParseAddr("10.0.0.1")))
	for _, r := range out {
		fmt.Printf("%s path=[%s] atomic=%v\n", r.Prefix, r.Attrs.ASPath, r.Attrs.AtomicAggregate)
	}
	// Output:
	// 198.18.0.0/22 path=[64500 {100,101,102,103}] atomic=true
}
