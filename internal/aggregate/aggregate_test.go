package aggregate

import (
	"math/rand"
	"testing"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

func route(p string, nextHop string, asns ...uint32) Route {
	return Route{
		Prefix: netaddr.MustParsePrefix(p),
		Attrs:  wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(asns...), netaddr.MustParseAddr(nextHop)),
	}
}

func cfg() Config {
	return NewConfig(65000, netaddr.MustParseAddr("10.0.0.1"))
}

func TestMergeSiblings(t *testing.T) {
	in := []Route{
		route("10.0.0.0/24", "192.0.2.1", 100, 200),
		route("10.0.1.0/24", "192.0.2.1", 100, 200),
	}
	out := Aggregate(in, cfg())
	if len(out) != 1 {
		t.Fatalf("got %d routes, want 1: %v", len(out), out)
	}
	if out[0].Prefix != netaddr.MustParsePrefix("10.0.0.0/23") {
		t.Fatalf("aggregate = %v", out[0].Prefix)
	}
	// Identical paths: no information loss.
	if out[0].Attrs.AtomicAggregate {
		t.Error("ATOMIC_AGGREGATE set despite identical paths")
	}
	if out[0].Attrs.Aggregator == nil || out[0].Attrs.Aggregator.AS != 65000 {
		t.Errorf("AGGREGATOR = %+v", out[0].Attrs.Aggregator)
	}
}

func TestCascadingMerge(t *testing.T) {
	// Four adjacent /24s collapse all the way to one /22.
	in := []Route{
		route("10.0.0.0/24", "192.0.2.1", 100),
		route("10.0.1.0/24", "192.0.2.1", 100),
		route("10.0.2.0/24", "192.0.2.1", 100),
		route("10.0.3.0/24", "192.0.2.1", 100),
	}
	out := Aggregate(in, cfg())
	if len(out) != 1 || out[0].Prefix != netaddr.MustParsePrefix("10.0.0.0/22") {
		t.Fatalf("out = %v", out)
	}
}

func TestNonSiblingsNotMerged(t *testing.T) {
	// 10.0.1.0/24 and 10.0.2.0/24 are adjacent but not siblings (their
	// union is not a valid /23).
	in := []Route{
		route("10.0.1.0/24", "192.0.2.1", 100),
		route("10.0.2.0/24", "192.0.2.1", 100),
	}
	out := Aggregate(in, cfg())
	if len(out) != 2 {
		t.Fatalf("non-siblings merged: %v", out)
	}
}

func TestDifferentNextHopsNotMerged(t *testing.T) {
	in := []Route{
		route("10.0.0.0/24", "192.0.2.1", 100),
		route("10.0.1.0/24", "192.0.2.2", 100),
	}
	out := Aggregate(in, cfg())
	if len(out) != 2 {
		t.Fatalf("routes with different next hops merged: %v", out)
	}
	// Unless the configuration allows it.
	c := cfg()
	c.RequireSameNextHop = false
	out = Aggregate(in, c)
	if len(out) != 1 {
		t.Fatalf("free merge failed: %v", out)
	}
}

func TestPathMergeBuildsASSet(t *testing.T) {
	in := []Route{
		route("10.0.0.0/24", "192.0.2.1", 100, 200, 300),
		route("10.0.1.0/24", "192.0.2.1", 100, 250, 350),
	}
	out := Aggregate(in, cfg())
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	a := out[0].Attrs
	if !a.AtomicAggregate {
		t.Error("ATOMIC_AGGREGATE not set for differing paths")
	}
	path := a.ASPath
	if len(path.Segments) != 2 {
		t.Fatalf("segments = %v", path.Segments)
	}
	if path.Segments[0].Type != wire.SegASSequence || len(path.Segments[0].ASNs) != 1 || path.Segments[0].ASNs[0] != 100 {
		t.Fatalf("common sequence = %v", path.Segments[0])
	}
	if path.Segments[1].Type != wire.SegASSet || len(path.Segments[1].ASNs) != 4 {
		t.Fatalf("AS_SET = %v", path.Segments[1])
	}
	for _, want := range []uint32{200, 250, 300, 350} {
		if !path.Contains(want) {
			t.Errorf("AS_SET missing %d", want)
		}
	}
}

func TestOriginAndMEDMerge(t *testing.T) {
	a := route("10.0.0.0/24", "192.0.2.1", 100)
	a.Attrs.Origin = wire.OriginIGP
	a.Attrs.HasMED, a.Attrs.MED = true, 5
	b := route("10.0.1.0/24", "192.0.2.1", 100)
	b.Attrs.Origin = wire.OriginIncomplete
	b.Attrs.HasMED, b.Attrs.MED = true, 9
	out := Aggregate([]Route{a, b}, cfg())
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Attrs.Origin != wire.OriginIncomplete {
		t.Errorf("origin = %v, want INCOMPLETE (least specific)", out[0].Attrs.Origin)
	}
	if out[0].Attrs.HasMED {
		t.Error("differing MEDs must be dropped")
	}
}

func TestExistingCoveringRouteBlocksMerge(t *testing.T) {
	in := []Route{
		route("10.0.0.0/23", "192.0.2.9", 500),
		route("10.0.0.0/24", "192.0.2.1", 100),
		route("10.0.1.0/24", "192.0.2.1", 100),
	}
	out := Aggregate(in, cfg())
	if len(out) != 3 {
		t.Fatalf("merge overwrote an existing covering route: %v", out)
	}
}

func TestMinLenStopsAggregation(t *testing.T) {
	c := cfg()
	c.MinLen = 23
	in := []Route{
		route("10.0.0.0/24", "192.0.2.1", 100),
		route("10.0.1.0/24", "192.0.2.1", 100),
		route("10.0.2.0/24", "192.0.2.1", 100),
		route("10.0.3.0/24", "192.0.2.1", 100),
	}
	out := Aggregate(in, c)
	// /24 pairs merge to /23s, but /23 -> /22 is blocked.
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	for _, r := range out {
		if r.Prefix.Len() != 23 {
			t.Fatalf("prefix %v shorter than MinLen", r.Prefix)
		}
	}
}

// TestAggregateCoversInput: every input address remains covered by some
// output prefix with the same next hop — the forwarding-equivalence
// property.
func TestAggregateCoversInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var in []Route
	nextHops := []string{"192.0.2.1", "192.0.2.2"}
	seen := map[netaddr.Prefix]bool{}
	for len(in) < 400 {
		a := netaddr.AddrFromV4(0x0A000000 | uint32(rng.Intn(1<<16))<<8)
		p := netaddr.PrefixFrom(a, 24)
		if seen[p] {
			continue
		}
		seen[p] = true
		in = append(in, route(
			p.String(),
			nextHops[rng.Intn(2)],
			uint32(100+rng.Intn(3)),
		))
	}
	out := Aggregate(in, cfg())
	if len(out) > len(in) {
		t.Fatalf("aggregation grew the table: %d -> %d", len(in), len(out))
	}
	for _, r := range in {
		covered := false
		for _, o := range out {
			if o.Prefix.Len() <= r.Prefix.Len() && o.Prefix.Contains(r.Prefix.Addr()) &&
				o.Attrs.NextHop == r.Attrs.NextHop {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("input %v (via %v) not covered by any aggregate", r.Prefix, r.Attrs.NextHop)
		}
	}
}

func TestDuplicateInputsKeepFirst(t *testing.T) {
	a := route("10.0.0.0/24", "192.0.2.1", 100)
	b := route("10.0.0.0/24", "192.0.2.2", 999)
	out := Aggregate([]Route{a, b}, cfg())
	if len(out) != 1 || out[0].Attrs.NextHop != netaddr.MustParseAddr("192.0.2.1") {
		t.Fatalf("out = %v", out)
	}
}
