// Package aggregate implements CIDR route aggregation (RFC 1519, and the
// route-aggregation rules of RFC 4271 section 9.2.2.2): adjacent prefixes
// with compatible forwarding are merged into shorter covering prefixes,
// combining their AS paths into AS_SETs and marking information loss with
// ATOMIC_AGGREGATE. Aggregation is the address-management mechanism that
// keeps the global table (the paper's 180,000+ prefixes) tractable; the
// router can apply it on export, and the lookupalgos example uses it to
// study FIB size sensitivity.
package aggregate

import (
	"sort"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// Route pairs a prefix with the attributes it is advertised with.
type Route struct {
	Prefix netaddr.Prefix
	Attrs  wire.PathAttrs
}

// Config controls aggregation.
type Config struct {
	// LocalAS/LocalID stamp the AGGREGATOR attribute on merged routes.
	LocalAS uint32
	LocalID netaddr.Addr
	// MinLen stops aggregation from producing prefixes shorter than this
	// (default 8: never synthesize super-/8 aggregates).
	MinLen int
	// RequireSameNextHop only merges siblings sharing a NEXT_HOP, keeping
	// the aggregate forwarding-equivalent to its parts (default true via
	// NewConfig; the zero value of this struct merges freely).
	RequireSameNextHop bool
}

// NewConfig returns the conventional safe configuration.
func NewConfig(localAS uint32, localID netaddr.Addr) Config {
	return Config{LocalAS: localAS, LocalID: localID, MinLen: 8, RequireSameNextHop: true}
}

// Aggregate merges sibling prefixes bottom-up until no further merge is
// possible and returns the reduced route set in prefix order. Input order
// is irrelevant; duplicate prefixes keep the first occurrence.
func Aggregate(routes []Route, cfg Config) []Route {
	if cfg.MinLen <= 0 {
		cfg.MinLen = 8
	}
	byPrefix := make(map[netaddr.Prefix]Route, len(routes))
	for _, r := range routes {
		if _, ok := byPrefix[r.Prefix]; !ok {
			byPrefix[r.Prefix] = r
		}
	}
	// Work longest-prefix-first so merges cascade upward (128 covers both
	// families; v4 lengths simply stop at 32).
	for length := 128; length > cfg.MinLen; length-- {
		var candidates []netaddr.Prefix
		for p := range byPrefix {
			if p.Len() == length {
				candidates = append(candidates, p)
			}
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].Compare(candidates[j]) < 0 })
		for _, p := range candidates {
			r, ok := byPrefix[p]
			if !ok {
				continue // already consumed by a sibling merge
			}
			sib := sibling(p)
			sr, ok := byPrefix[sib]
			if !ok {
				continue
			}
			if cfg.RequireSameNextHop && r.Attrs.NextHop != sr.Attrs.NextHop {
				continue
			}
			parent := netaddr.PrefixFrom(p.Addr(), length-1)
			if _, exists := byPrefix[parent]; exists {
				// A covering route already exists; the more-specifics stay.
				continue
			}
			merged := mergeAttrs(r.Attrs, sr.Attrs, cfg)
			delete(byPrefix, p)
			delete(byPrefix, sib)
			byPrefix[parent] = Route{Prefix: parent, Attrs: merged}
		}
	}
	out := make([]Route, 0, len(byPrefix))
	for _, r := range byPrefix {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// sibling returns the prefix differing only in the last bit.
func sibling(p netaddr.Prefix) netaddr.Prefix { return p.Sibling() }

// mergeAttrs combines two attribute sets per RFC 4271 section 9.2.2.2
// (simplified to the AS_SEQUENCE+AS_SET form): the shared leading
// AS_SEQUENCE is kept, the remaining ASNs collapse into one AS_SET, the
// less specific ORIGIN wins, MED survives only when equal, and
// ATOMIC_AGGREGATE records any path-information loss.
func mergeAttrs(a, b wire.PathAttrs, cfg Config) wire.PathAttrs {
	out := a.Clone()
	if !a.ASPath.Equal(b.ASPath) {
		out.ASPath = mergePaths(a.ASPath, b.ASPath)
		out.AtomicAggregate = true
	}
	if a.Origin != b.Origin {
		if b.Origin > out.Origin {
			out.Origin = b.Origin
		}
	}
	if a.HasMED != b.HasMED || a.MED != b.MED {
		out.HasMED, out.MED = false, 0
	}
	// Communities: union, preserving stable order.
	for _, c := range b.Communities {
		if !out.HasCommunity(c) {
			out.Communities = append(out.Communities, c)
		}
	}
	if cfg.LocalAS != 0 {
		out.Aggregator = &wire.Aggregator{AS: cfg.LocalAS, Addr: cfg.LocalID}
	}
	return out
}

// mergePaths keeps the longest common leading sequence and collapses the
// remainder of both paths into a single sorted AS_SET.
func mergePaths(a, b wire.ASPath) wire.ASPath {
	fa, fb := flatten(a), flatten(b)
	common := 0
	for common < len(fa) && common < len(fb) && fa[common] == fb[common] {
		common++
	}
	setMembers := map[uint32]bool{}
	for _, x := range fa[common:] {
		setMembers[x] = true
	}
	for _, x := range fb[common:] {
		setMembers[x] = true
	}
	var out wire.ASPath
	if common > 0 {
		out.Segments = append(out.Segments, wire.ASSegment{
			Type: wire.SegASSequence,
			ASNs: append([]uint32(nil), fa[:common]...),
		})
	}
	if len(setMembers) > 0 {
		set := make([]uint32, 0, len(setMembers))
		for x := range setMembers {
			set = append(set, x)
		}
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		out.Segments = append(out.Segments, wire.ASSegment{Type: wire.SegASSet, ASNs: set})
	}
	return out
}

func flatten(p wire.ASPath) []uint32 {
	var out []uint32
	for _, s := range p.Segments {
		out = append(out, s.ASNs...)
	}
	return out
}
