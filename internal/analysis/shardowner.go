package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShardOwner enforces single-goroutine ownership for the hot-path state
// the update-group machinery keeps per shard worker: group state, the
// marshal cache, dispatch buffers. These types are mutated without
// synchronization by design — the shard worker is their only toucher —
// so any route by which a value could reach another goroutine is a
// data race waiting for load to expose it.
//
// Ownership is declared in the source, not the config: a type whose doc
// comment contains a line
//
//	//bgplint:owned-by <owner>
//
// is worker-owned. The annotation is exported as a cross-package fact,
// so an owned type declared in internal/core is protected in every
// importing package too. The analyzer flags the three escape routes
// that hand a value to foreign code:
//
//   - capture by a goroutine closure (or any function literal that is
//     not invoked on the spot);
//   - a channel send of the value;
//   - storing or passing the value as an interface, after which
//     arbitrary code can retain it.
//
// Methods on the owned type itself are exempt: the receiver is how the
// worker touches its own state.
var ShardOwner = &Analyzer{
	Name: "shardowner",
	Doc:  "worker-owned types (//bgplint:owned-by) must not escape their shard worker goroutine",
	Run:  runShardOwner,
}

const (
	ownedByMarker  = "bgplint:owned-by"
	ownerFactOwned = "ownedBy" // on *types.TypeName: the owner string
)

func runShardOwner(pass *Pass) error {
	collectOwnedTypes(pass)
	for _, f := range pass.Pkg.Files {
		checkOwnedEscapes(pass, f)
	}
	return nil
}

// collectOwnedTypes scans type declarations for the owned-by marker and
// exports the ownership as a fact keyed by the *types.TypeName.
func collectOwnedTypes(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				owner := ""
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
						if rest, ok := strings.CutPrefix(text, ownedByMarker); ok {
							owner = strings.TrimSpace(rest)
						}
					}
				}
				if owner == "" {
					continue
				}
				if tn, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					pass.ExportObjectFact(tn, ownerFactOwned, owner)
				}
			}
		}
	}
}

// ownedTypeOf returns the owner annotation for t (dereferencing one
// level of pointer), or "" if t is not an owned type.
func ownedTypeOf(pass *Pass, t types.Type) (string, string) {
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	if v, ok := pass.ObjectFact(n.Obj(), ownerFactOwned); ok {
		return n.Obj().Name(), v.(string)
	}
	return "", ""
}

// exprOwned reports the owned type behind expression e, if any.
func exprOwned(pass *Pass, e ast.Expr) (string, string) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return "", ""
	}
	return ownedTypeOf(pass, tv.Type)
}

// checkOwnedEscapes walks one file flagging the escape routes.
func checkOwnedEscapes(pass *Pass, f *ast.File) {
	// Parent tracking: function literals need to know whether they are
	// invoked immediately (same goroutine, no escape) and whether they
	// sit under a go statement.
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.SendStmt:
			if name, owner := exprOwned(pass, x.Value); name != "" {
				pass.Reportf(x.Value.Pos(), "%s is owned by the %s goroutine; sending it on a channel hands it to another goroutine", name, owner)
			}
		case *ast.FuncLit:
			checkClosureCaptures(pass, x, stack)
		case *ast.CallExpr:
			checkInterfaceArgs(pass, x)
		case *ast.AssignStmt:
			checkInterfaceAssign(pass, x)
		}
		return true
	})
}

// checkClosureCaptures flags owned values captured by a function
// literal that can run on another goroutine: the closure is the subject
// of a go statement, or it escapes the expression that created it
// (stored, passed, returned) instead of being called in place.
func checkClosureCaptures(pass *Pass, fl *ast.FuncLit, stack []ast.Node) {
	inGo := false
	calledInPlace := false
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.GoStmt:
			inGo = true
		case *ast.CallExpr:
			if p.Fun == fl {
				calledInPlace = true
			}
		}
	}
	if calledInPlace && !inGo {
		return
	}
	// Free variables: identifiers used in the body whose declaration
	// lies outside the literal.
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if fl.Pos() <= obj.Pos() && obj.Pos() <= fl.End() {
			return true // declared inside the literal
		}
		if name, owner := ownedTypeOf(pass, obj.Type()); name != "" {
			seen[obj] = true
			how := "a closure that escapes"
			if inGo {
				how = "a goroutine closure"
			}
			// Anchor at the literal, not the captured use: the closure
			// is the escape route, and that is where a suppression
			// belongs.
			pass.Reportf(fl.Pos(), "%s value %s is owned by the %s goroutine; captured by %s", name, id.Name, owner, how)
		}
		return true
	})
}

// checkInterfaceArgs flags owned values passed where the parameter type
// is an interface: the callee may retain the value beyond the worker's
// control.
func checkInterfaceArgs(pass *Pass, call *ast.CallExpr) {
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		name, owner := exprOwned(pass, arg)
		if name == "" {
			continue
		}
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); ok {
			pass.Reportf(arg.Pos(), "%s is owned by the %s goroutine; passing it as %s lets the callee retain it", name, owner, pt.String())
		}
	}
}

// callSignature resolves the signature of the called function, for both
// static and dynamic calls. Conversion expressions return nil.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt returns the static type of parameter i, accounting for
// variadics.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// checkInterfaceAssign flags owned values assigned into
// interface-typed destinations.
func checkInterfaceAssign(pass *Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if len(as.Lhs) != len(as.Rhs) {
			break
		}
		name, owner := exprOwned(pass, rhs)
		if name == "" {
			continue
		}
		var lhsType types.Type
		if lt, ok := pass.Pkg.Info.Types[as.Lhs[i]]; ok {
			lhsType = lt.Type
		} else if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
			// Plain idents on an assignment LHS are not always in
			// Info.Types; fall back to the object. A := definition
			// takes the RHS type and is never an interface widening.
			if obj := pass.Pkg.Info.Uses[id]; obj != nil && as.Tok.String() == "=" {
				lhsType = obj.Type()
			}
		}
		if lhsType == nil {
			continue
		}
		if _, isIface := lhsType.Underlying().(*types.Interface); isIface {
			pass.Reportf(rhs.Pos(), "%s is owned by the %s goroutine; storing it as %s lets arbitrary code retain it", name, owner, lhsType.String())
		}
	}
}
