package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// InternedAttr protects the path-attribute interning contract: once a
// PathAttrs block has been interned, the canonical pointer is shared by
// every RIB, Adj-RIB-Out, and export cache in the process. Two interned
// blocks are semantically equal iff their pointers are equal, so a
// reflect.DeepEqual (or a field-wise compare of dereferenced values)
// both wastes the hot path the interner exists to optimise and signals
// a misunderstanding of the contract; and a single mutation through an
// interned pointer corrupts every table that shares the block.
var InternedAttr = &Analyzer{
	Name: "internedattr",
	Doc:  "interned attrs compare by pointer and are immutable after interning",
	Run:  func(p *Pass) error { runInternedAttr(p); return nil },
}

func runInternedAttr(pass *Pass) {
	interned := stringSet(pass.Config.Interned.Types)
	if len(interned) == 0 {
		return
	}
	info := pass.Pkg.Info

	isInternedValue := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if _, ok := types.Unalias(t).(*types.Pointer); ok {
			return false
		}
		return interned[namedTypeName(t)]
	}
	isInternedPointer := func(t types.Type) bool {
		if t == nil {
			return false
		}
		p, ok := types.Unalias(t).(*types.Pointer)
		return ok && interned[namedTypeName(p.Elem())]
	}
	typeOf := func(e ast.Expr) types.Type {
		if tv, ok := info.Types[e]; ok {
			return tv.Type
		}
		return nil
	}

	// checkMutationTarget flags writes through an interned pointer:
	// p.Field = v, *p = v, p.Field++ and friends.
	checkMutationTarget := func(e ast.Expr, pos token.Pos) {
		switch lhs := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
				if isInternedPointer(typeOf(lhs.X)) {
					pass.Reportf(pos, "mutation of interned %s through shared pointer (interned attrs are immutable; Clone before changing)", namedTypeName(typeOf(lhs.X)))
				}
			}
		case *ast.StarExpr:
			if isInternedPointer(typeOf(lhs.X)) {
				pass.Reportf(pos, "assignment through interned %s pointer (interned attrs are immutable; Clone before changing)", namedTypeName(typeOf(lhs.X)))
			}
		}
	}

	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, node)
			if fn != nil && fn.FullName() == "reflect.DeepEqual" {
				for _, arg := range node.Args {
					t := typeOf(arg)
					if isInternedValue(t) || isInternedPointer(t) {
						pass.Reportf(node.Pos(), "reflect.DeepEqual on interned %s (interned attrs compare by pointer equality)", namedTypeName(t))
						break
					}
				}
			}
		case *ast.BinaryExpr:
			if node.Op != token.EQL && node.Op != token.NEQ {
				return true
			}
			// Pointer comparison is the sanctioned idiom; flag only
			// dereferenced (value) comparisons of the interned type.
			if isInternedValue(typeOf(node.X)) && isInternedValue(typeOf(node.Y)) {
				pass.Reportf(node.Pos(), "field-wise %s comparison of interned %s values (compare the canonical pointers instead)", node.Op, namedTypeName(typeOf(node.X)))
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				checkMutationTarget(lhs, node.Pos())
			}
		case *ast.IncDecStmt:
			checkMutationTarget(node.X, node.Pos())
		case *ast.UnaryExpr:
			// &p.Field on an interned pointer hands out a writable
			// window into the shared block.
			if node.Op != token.AND {
				return true
			}
			if sel, ok := ast.Unparen(node.X).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal && isInternedPointer(typeOf(sel.X)) {
					pass.Reportf(node.Pos(), "address of field of interned %s escapes (interned attrs are immutable)", namedTypeName(typeOf(sel.X)))
				}
			}
		}
		return true
	})
}
