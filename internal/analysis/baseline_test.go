package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadBaselineValidation pins the loud-failure contract for the
// ledger itself: a damaged baseline must refuse to load, never silently
// suppress everything.
func TestLoadBaselineValidation(t *testing.T) {
	cases := []struct {
		name, content, errSubstr string
	}{
		{"not json", "{", "baseline"},
		{"wrong version", `{"version": 99, "findings": []}`, "unsupported version 99"},
		{"missing analyzer", `{"version": 1, "findings": [{"file": "a.go", "message": "m", "count": 1}]}`, "incomplete"},
		{"zero count", `{"version": 1, "findings": [{"analyzer": "refbalance", "file": "a.go", "message": "m", "count": 0}]}`, "incomplete"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := LoadBaseline(writeTempBaseline(t, c.content))
			if err == nil {
				t.Fatalf("LoadBaseline accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.errSubstr) {
				t.Errorf("error %q, want substring %q", err, c.errSubstr)
			}
		})
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadBaseline accepted a nonexistent file")
	}
	b, err := LoadBaseline(writeTempBaseline(t, `{"version": 1, "findings": [{"analyzer": "refbalance", "file": "a.go", "message": "m", "count": 2, "reason": "audited"}]}`))
	if err != nil {
		t.Fatalf("LoadBaseline rejected a valid ledger: %v", err)
	}
	if len(b.Findings) != 1 || b.Findings[0].Reason != "audited" {
		t.Errorf("valid ledger decoded wrong: %+v", b)
	}
}

func diagAt(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Position: token.Position{Filename: file, Line: line},
		Message:  msg,
	}
}

// TestDiffBaseline pins the three-way partition: matched findings come
// back flagged Baselined, extra occurrences beyond the audited count are
// new, and unmatched ledger entries are stale with their residual count.
func TestDiffBaseline(t *testing.T) {
	base := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Analyzer: "refbalance", File: "core/a.go", Message: "leak", Count: 2, Reason: "audited fan-out"},
		{Analyzer: "shardowner", File: "core/b.go", Message: "escape", Count: 1},
	}}
	rel := func(s string) string { return strings.TrimPrefix(s, "/repo/") }
	diags := []Diagnostic{
		diagAt("refbalance", "/repo/core/a.go", 10, "leak"),
		diagAt("refbalance", "/repo/core/a.go", 20, "leak"),
		diagAt("refbalance", "/repo/core/a.go", 30, "leak"), // third occurrence: over budget
		diagAt("readpurity", "/repo/fib/c.go", 5, "locks"),  // not in ledger at all
	}

	newDiags, matched, stale := DiffBaseline(base, diags, rel)

	if len(matched) != 2 {
		t.Fatalf("matched %d findings, want 2", len(matched))
	}
	for _, d := range matched {
		if !d.Baselined {
			t.Errorf("matched finding at line %d not flagged Baselined", d.Position.Line)
		}
	}
	if len(newDiags) != 2 {
		t.Fatalf("new %d findings, want 2 (over-budget leak + unlisted readpurity)", len(newDiags))
	}
	for _, d := range newDiags {
		if d.Baselined {
			t.Errorf("new finding %s wrongly flagged Baselined", d)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("stale %d entries, want 1", len(stale))
	}
	if s := stale[0]; s.Analyzer != "shardowner" || s.Count != 1 {
		t.Errorf("stale entry = %+v, want the unmatched shardowner x1", s)
	}
}

// TestBuildBaselineCarriesReasons pins the rewrite path: counts are
// re-aggregated from live findings, entries come out position-sorted,
// and audit reasons survive as long as their key still matches.
func TestBuildBaselineCarriesReasons(t *testing.T) {
	prev := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Analyzer: "refbalance", File: "core/a.go", Message: "leak", Count: 1, Reason: "audited fan-out"},
		{Analyzer: "errdrop", File: "gone.go", Message: "dropped", Count: 1, Reason: "obsolete"},
	}}
	rel := func(s string) string { return s }
	diags := []Diagnostic{
		diagAt("refbalance", "core/a.go", 10, "leak"),
		diagAt("refbalance", "core/a.go", 99, "leak"),
		diagAt("shardowner", "core/b.go", 5, "escape"),
	}
	b := BuildBaseline(diags, prev, rel)
	if len(b.Findings) != 2 {
		t.Fatalf("built %d entries, want 2", len(b.Findings))
	}
	leak := b.Findings[0]
	if leak.File != "core/a.go" || leak.Count != 2 {
		t.Errorf("leak entry = %+v, want core/a.go x2", leak)
	}
	if leak.Reason != "audited fan-out" {
		t.Errorf("reason not carried forward: %q", leak.Reason)
	}
	if b.Findings[1].Reason != "" {
		t.Errorf("fresh entry inherited a reason: %+v", b.Findings[1])
	}

	// Round-trip through disk.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Findings) != 2 || back.Findings[0].Reason != "audited fan-out" {
		t.Errorf("round-trip lost data: %+v", back.Findings)
	}
}
