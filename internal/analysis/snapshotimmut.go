package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotImmut protects the FIB snapshot contract: once a snapshot has
// been published through the atomic pointer, every structure reachable
// from it (directory pages, compiled chunks, the expanded short-route
// view) is shared with lock-free readers and must never be written
// again. The writer's copy-on-write discipline funnels every mutation
// through a small set of builder functions that only ever touch fresh,
// unpublished values; those are allow-listed in the config, one
// justification per entry, and any write outside them is a finding.
var SnapshotImmut = &Analyzer{
	Name: "snapshotimmut",
	Doc:  "published FIB snapshots are immutable; mutations only in allow-listed builders",
	Run:  func(p *Pass) error { runSnapshotImmut(p); return nil },
}

func runSnapshotImmut(pass *Pass) {
	snapTypes := stringSet(pass.Config.Snapshot.Types)
	if len(snapTypes) == 0 {
		return
	}
	builders := stringSet(pass.Config.Snapshot.Builders)
	info := pass.Pkg.Info

	typeOf := func(e ast.Expr) types.Type {
		if tv, ok := info.Types[e]; ok {
			return tv.Type
		}
		return nil
	}
	// snapName returns the configured type name if t is (a pointer to) a
	// snapshot type.
	snapName := func(t types.Type) string {
		if t == nil {
			return ""
		}
		if name := namedTypeName(t); snapTypes[name] {
			return name
		}
		return ""
	}

	// rootName walks an lvalue chain (selectors, indexing, dereference)
	// and reports the snapshot type it is rooted in, if any: p.Field,
	// p.Slice[i], page[i], *p, and nested combinations all count — each
	// is a write into memory a published snapshot may share.
	var rootName func(e ast.Expr) string
	rootName = func(e ast.Expr) string {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if name := snapName(typeOf(x.X)); name != "" {
					return name
				}
				return rootName(x.X)
			}
		case *ast.IndexExpr:
			if name := snapName(typeOf(x.X)); name != "" {
				return name
			}
			return rootName(x.X)
		case *ast.StarExpr:
			if name := snapName(typeOf(x.X)); name != "" {
				return name
			}
			return rootName(x.X)
		}
		return ""
	}

	checkWrite := func(e ast.Expr, pos token.Pos) {
		if name := rootName(e); name != "" {
			pass.Reportf(pos, "mutation of snapshot type %s outside its builders (published snapshots are immutable; copy before writing)", name)
		}
	}

	for fn, fd := range funcDecls(pass.Pkg) {
		if fd.Body == nil || builders[fn.FullName()] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					checkWrite(lhs, node.Pos())
				}
			case *ast.IncDecStmt:
				checkWrite(node.X, node.Pos())
			case *ast.UnaryExpr:
				// &p.Field (or &p.Slice[i]) hands out a writable window
				// into shared snapshot memory.
				if node.Op != token.AND {
					return true
				}
				switch ast.Unparen(node.X).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					if name := rootName(node.X); name != "" {
						pass.Reportf(node.Pos(), "address of %s interior escapes (published snapshots are immutable)", name)
					}
				}
			}
			return true
		})
	}
}
