package analysis

import (
	"go/ast"
	"go/types"
)

// LockDiscipline walks functions that acquire the router mutex and
// flags blocking I/O performed while it is held. The router mutex
// guards the peer table on the shard workers' per-batch snapshot path:
// a single send to a slow peer's socket (or a wait on another
// goroutine) while holding it stalls every shard's decision pipeline at
// once, which is precisely the head-of-line blocking the sharded design
// exists to avoid. The walk is a static over-approximation: it follows
// same-package calls a few levels deep and treats a deferred Unlock as
// holding the lock to the end of the function. Audited exceptions go in
// the config allowlist, one justification per entry.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no blocking I/O while holding the router mutex",
	Run:  func(p *Pass) error { runLockDiscipline(p); return nil },
}

const lockWalkDepth = 4

func runLockDiscipline(pass *Pass) {
	mutexes := stringSet(pass.Config.Lock.Mutexes)
	if len(mutexes) == 0 {
		return
	}
	blocking := stringSet(pass.Config.Lock.Blocking)
	allow := stringSet(pass.Config.Lock.Allow)
	decls := funcDecls(pass.Pkg)
	w := &lockWalker{
		pass:     pass,
		mutexes:  mutexes,
		blocking: blocking,
		allow:    allow,
		decls:    decls,
	}
	for fn, fd := range decls {
		if fd.Body == nil || allow[fn.FullName()] {
			continue
		}
		held := false
		w.walkStmts(fd.Body.List, &held)
	}
}

type lockWalker struct {
	pass     *Pass
	mutexes  map[string]bool
	blocking map[string]bool
	allow    map[string]bool
	decls    map[*types.Func]*ast.FuncDecl
}

// mutexOp classifies a call as Lock/Unlock on a configured mutex field.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", false
	}
	name = sel.Sel.Name
	if name != "Lock" && name != "Unlock" {
		return "", false
	}
	fieldSel, okField := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !okField {
		return "", false
	}
	owner := qualifiedFieldOwner(w.pass.Pkg.Info, fieldSel)
	if owner == "" || !w.mutexes[owner] {
		return "", false
	}
	return name, true
}

// walkStmts threads the held state through a statement list in source
// order, descending into nested control flow.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held *bool) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held *bool) {
	switch stmt := s.(type) {
	case *ast.ExprStmt:
		if call, ok := stmt.X.(*ast.CallExpr); ok {
			if op, ok := w.mutexOp(call); ok {
				*held = op == "Lock"
				return
			}
		}
		w.checkStmt(stmt, held)
	case *ast.DeferStmt:
		if op, ok := w.mutexOp(stmt.Call); ok && op == "Unlock" {
			// defer mu.Unlock(): held until the function returns.
			return
		}
		// The deferred call itself runs after the region; skip it.
	case *ast.BlockStmt:
		w.walkStmts(stmt.List, held)
	case *ast.IfStmt:
		if stmt.Init != nil {
			w.walkStmt(stmt.Init, held)
		}
		w.checkExprStmtless(stmt.Cond, held)
		w.walkStmt(stmt.Body, held)
		if stmt.Else != nil {
			w.walkStmt(stmt.Else, held)
		}
	case *ast.ForStmt:
		if stmt.Init != nil {
			w.walkStmt(stmt.Init, held)
		}
		w.walkStmt(stmt.Body, held)
	case *ast.RangeStmt:
		w.walkStmt(stmt.Body, held)
	case *ast.SwitchStmt:
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		// A select blocks unless it has a default clause; its comm
		// clauses are channel operations.
		if *held && !selectHasDefault(stmt) {
			w.pass.Reportf(stmt.Pos(), "blocking select while holding the router mutex")
		}
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine does not run under the caller's lock.
	default:
		w.checkStmt(s, held)
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// checkExprStmtless checks a bare expression (e.g. an if condition) for
// blocking calls while held.
func (w *lockWalker) checkExprStmtless(e ast.Expr, held *bool) {
	if e == nil || !*held {
		return
	}
	w.inspectForBlocking(e, nil)
}

// checkStmt scans one statement for blocking operations while the lock
// is held.
func (w *lockWalker) checkStmt(s ast.Stmt, held *bool) {
	if !*held {
		return
	}
	w.inspectForBlocking(s, s)
}

// inspectForBlocking reports direct blocking calls and channel sends in
// the subtree, and follows same-package callees a few levels deep.
func (w *lockWalker) inspectForBlocking(root ast.Node, _ ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // runs on another goroutine or later
		case *ast.SendStmt:
			w.pass.Reportf(node.Pos(), "channel send while holding the router mutex (the receiver may not be draining)")
			return true
		case *ast.CallExpr:
			fn := calleeFunc(w.pass.Pkg.Info, node)
			if fn == nil {
				return true
			}
			if w.blocking[fn.FullName()] {
				w.pass.Reportf(node.Pos(), "blocking call %s while holding the router mutex", fn.FullName())
				return true
			}
			if chain := w.calleeBlocks(fn, lockWalkDepth, map[*types.Func]bool{}); chain != "" {
				w.pass.Reportf(node.Pos(), "call %s reaches blocking operation (%s) while holding the router mutex", fn.Name(), chain)
			}
		}
		return true
	})
}

// calleeBlocks walks a same-package callee's body looking for blocking
// operations, returning a human-readable chain when one is found.
func (w *lockWalker) calleeBlocks(fn *types.Func, depth int, seen map[*types.Func]bool) string {
	if depth == 0 || seen[fn] || w.allow[fn.FullName()] {
		return ""
	}
	seen[fn] = true
	fd, ok := w.decls[fn]
	if !ok || fd.Body == nil {
		return ""
	}
	var chain string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if chain != "" {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			chain = fn.Name() + " sends on a channel"
			return false
		case *ast.SelectStmt:
			// A select with a default never blocks; skip its guarded
			// channel operations but keep scanning the clause bodies.
			if selectHasDefault(node) {
				for _, c := range node.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							ast.Inspect(s, func(m ast.Node) bool { return chainScan(w, fn, m, &chain, depth, seen) })
						}
					}
				}
				return false
			}
			chain = fn.Name() + " blocks in select"
			return false
		case *ast.CallExpr:
			callee := calleeFunc(w.pass.Pkg.Info, node)
			if callee == nil {
				return true
			}
			if w.blocking[callee.FullName()] {
				chain = fn.Name() + " calls " + callee.FullName()
				return false
			}
			if sub := w.calleeBlocks(callee, depth-1, seen); sub != "" {
				chain = fn.Name() + " -> " + sub
				return false
			}
		}
		return true
	})
	return chain
}

// chainScan mirrors the CallExpr/SendStmt handling of calleeBlocks for
// statements nested under a non-blocking select.
func chainScan(w *lockWalker, fn *types.Func, n ast.Node, chain *string, depth int, seen map[*types.Func]bool) bool {
	if *chain != "" {
		return false
	}
	switch node := n.(type) {
	case *ast.FuncLit, *ast.GoStmt:
		return false
	case *ast.SendStmt:
		*chain = fn.Name() + " sends on a channel"
		return false
	case *ast.CallExpr:
		callee := calleeFunc(w.pass.Pkg.Info, node)
		if callee == nil {
			return true
		}
		if w.blocking[callee.FullName()] {
			*chain = fn.Name() + " calls " + callee.FullName()
			return false
		}
		if sub := w.calleeBlocks(callee, depth-1, seen); sub != "" {
			*chain = fn.Name() + " -> " + sub
			return false
		}
	}
	return true
}
