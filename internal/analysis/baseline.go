package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The baseline is the audited-findings ledger: a committed JSON file
// recording findings that were reviewed and accepted (with the review
// rationale living in the PR that added them). With -baseline, bgplint
// partitions its findings into
//
//   - baselined: present in the file — printed (audited debt stays
//     visible on every run) but not failing;
//   - new: absent from the file — fail the gate;
//   - stale: baseline entries matching nothing — fail the gate too,
//     so a fixed finding forces the ledger entry to be deleted instead
//     of lingering as dead audit weight.
//
// Entries are keyed by (analyzer, repo-relative file, message) with an
// occurrence count rather than line numbers, so unrelated edits that
// shift a file do not churn the ledger, while a genuinely new finding
// of the same kind in the same file still trips the count.

// BaselineEntry is one audited finding class in one file.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
	// Reason is the audit justification recorded when the entry was
	// accepted; informational, carried through rewrites.
	Reason string `json:"reason,omitempty"`
}

// Baseline is the committed ledger.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

const baselineVersion = 1

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: unsupported version %d (want %d)", path, b.Version, baselineVersion)
	}
	for i, e := range b.Findings {
		if e.Analyzer == "" || e.File == "" || e.Message == "" || e.Count < 1 {
			return nil, fmt.Errorf("baseline %s: entry %d is incomplete (analyzer, file, message, count>=1 required)", path, i)
		}
	}
	return &b, nil
}

// baselineKey identifies one finding class.
type baselineKey struct {
	analyzer, file, message string
}

// DiffBaseline partitions diags against the baseline. rel maps
// absolute diagnostic filenames onto the baseline's repo-relative form.
// Matched diagnostics come back with Baselined set; stale lists the
// entries (with their unmatched residual count) that matched fewer
// findings than they claim.
func DiffBaseline(base *Baseline, diags []Diagnostic, rel func(string) string) (newDiags, matched []Diagnostic, stale []BaselineEntry) {
	budget := map[baselineKey]int{}
	reasons := map[baselineKey]string{}
	for _, e := range base.Findings {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		budget[k] += e.Count
		if e.Reason != "" {
			reasons[k] = e.Reason
		}
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, rel(d.Position.Filename), d.Message}
		if budget[k] > 0 {
			budget[k]--
			d.Baselined = true
			matched = append(matched, d)
		} else {
			newDiags = append(newDiags, d)
		}
	}
	var keys []baselineKey
	for k, n := range budget {
		if n > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})
	for _, k := range keys {
		stale = append(stale, BaselineEntry{
			Analyzer: k.analyzer, File: k.file, Message: k.message,
			Count: budget[k], Reason: reasons[k],
		})
	}
	return newDiags, matched, stale
}

// BuildBaseline folds the current findings into a fresh ledger,
// carrying forward the reasons of a previous baseline where the keys
// still match.
func BuildBaseline(diags []Diagnostic, prev *Baseline, rel func(string) string) *Baseline {
	reasons := map[baselineKey]string{}
	if prev != nil {
		for _, e := range prev.Findings {
			if e.Reason != "" {
				reasons[baselineKey{e.Analyzer, e.File, e.Message}] = e.Reason
			}
		}
	}
	counts := map[baselineKey]int{}
	var order []baselineKey
	for _, d := range diags {
		k := baselineKey{d.Analyzer, rel(d.Position.Filename), d.Message}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})
	out := &Baseline{Version: baselineVersion}
	for _, k := range order {
		out.Findings = append(out.Findings, BaselineEntry{
			Analyzer: k.analyzer, File: k.file, Message: k.message,
			Count: counts[k], Reason: reasons[k],
		})
	}
	return out
}

// WriteBaseline writes the ledger with stable formatting.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
