// Package detclock is a fixture for the detclock analyzer: a miniature
// "deterministic" package that breaks the no-wall-clock contract in the
// ways the analyzer must catch, and keeps to it in the ways it must not
// flag. Expected findings are marked with `// want` comments consumed
// by the regression test.
package detclock

import (
	"math/rand"
	"time"
)

// Clock is the pluggable time source, mirroring netem.Clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

// NewRealClock is on the analyzer's allow list: the one sanctioned
// wall-time boundary.
func NewRealClock() Clock {
	_ = time.Now() // allowed: inside an AllowFuncs function
	return realClock{}
}

func (realClock) Now() time.Time        { return time.Unix(0, 0) }
func (realClock) Sleep(d time.Duration) {}

// BadWallClock reads wall time directly.
func BadWallClock() time.Time {
	return time.Now() // want detclock "wall-clock call time.Now"
}

// BadSleep blocks on real time.
func BadSleep() {
	time.Sleep(time.Millisecond) // want detclock "wall-clock call time.Sleep"
}

// BadTimer arms a wall-clock timer.
func BadTimer() *time.Timer {
	return time.NewTimer(time.Second) // want detclock "wall-clock call time.NewTimer"
}

// BadGlobalRand draws from the process-global source.
func BadGlobalRand() int {
	return rand.Intn(10) // want detclock "global math/rand state via rand.Intn"
}

// GoodSeededRand draws from an explicit source: a pure function of the
// seed, so not a finding — including the method calls on the generator.
func GoodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// GoodClockUse routes time through the injected clock.
func GoodClockUse(c Clock) time.Time {
	return c.Now()
}

// GoodDerivedTime manipulates time values without reading the clock.
func GoodDerivedTime(t time.Time) time.Time {
	return t.Add(time.Second)
}

// AnnotatedWallClock carries a justified allow comment; the finding is
// suppressed and must not surface.
func AnnotatedWallClock() time.Time {
	//bgplint:allow(detclock) reason=fixture: exercising the suppression path
	return time.Now()
}
