// Package readpurity is the seeded fixture set for the readpurity
// analyzer: a miniature of the FIB snapshot's wait-free read surface.
// Lookup is the configured entrypoint; everything it transitively
// calls must stay lock-, pool-, and channel-free.
package readpurity

import (
	"sync"
	"sync/atomic"
)

// table models the published snapshot head.
type table struct {
	mu      sync.Mutex
	pool    sync.Pool
	lookups atomic.Uint64
	entries map[uint32]int
	notify  chan struct{}
}

// Lookup is the wait-free entrypoint under test.
func Lookup(t *table, key uint32) (int, bool) {
	t.mu.Lock()         // want readpurity "sync.Mutex.Lock"
	defer t.mu.Unlock() // want readpurity "sync.Mutex.Unlock"
	t.lookups.Add(1)
	t.notify <- struct{}{} // want readpurity "channel send"
	scratch(t)
	countShared(t)
	v, ok := t.entries[key]
	return v, ok
}

// scratch drags pool traffic onto the read path, two calls deep: the
// entrypoint report points at the offending operation inside the
// helper.
func scratch(t *table) {
	b := t.pool.Get() // want readpurity "sync.Pool.Get"
	t.pool.Put(b)     // want readpurity "sync.Pool.Put"
}

// countShared writes shared state from the read path.
func countShared(t *table) {
	t.lookups.Add(1) // atomics are fine
	n := 0
	n++ // locals are fine
	_ = n
	t.entries[0] = n // want readpurity "write to shared state"
}

// CleanLookup is the pure shape, configured as an entrypoint of its
// own: atomics, locals, and a caller-supplied yield function (Walk's
// pattern) are all allowed, so it must stay silent.
func CleanLookup(t *table, key uint32, yield func(int) bool) (int, bool) {
	t.lookups.Add(1)
	local := make([]int, 0, 4)
	local = append(local, int(key))
	v, ok := t.entries[key]
	if ok && !yield(v) {
		return 0, false
	}
	return v, ok
}
