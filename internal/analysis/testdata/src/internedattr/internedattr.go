// Package internedattr is a fixture for the internedattr analyzer: the
// interning contract says canonical *PathAttrs pointers are compared by
// identity and never written through after interning.
package internedattr

import "reflect"

// PathAttrs mirrors wire.PathAttrs; the analyzer is configured to treat
// this fixture type as interned.
type PathAttrs struct {
	LocalPref uint32
	MED       uint32
}

// Intern stands in for the real interner.
func Intern(a PathAttrs) *PathAttrs { return &a }

// BadDeepEqual compares interned blocks structurally.
func BadDeepEqual(a, b *PathAttrs) bool {
	return reflect.DeepEqual(a, b) // want internedattr "reflect.DeepEqual on interned"
}

// BadValueCompare dereferences and compares field-wise.
func BadValueCompare(a, b *PathAttrs) bool {
	return *a == *b // want internedattr "comparison of interned"
}

// BadFieldMutation writes through the shared pointer.
func BadFieldMutation(a *PathAttrs) {
	a.LocalPref = 200 // want internedattr "mutation of interned"
}

// BadStarAssign replaces the shared block wholesale.
func BadStarAssign(a *PathAttrs, v PathAttrs) {
	*a = v // want internedattr "assignment through interned"
}

// BadFieldIncrement mutates through the pointer with ++.
func BadFieldIncrement(a *PathAttrs) {
	a.MED++ // want internedattr "mutation of interned"
}

// BadFieldAddress hands out a writable window into the shared block.
func BadFieldAddress(a *PathAttrs) *uint32 {
	return &a.LocalPref // want internedattr "address of field of interned"
}

// GoodPointerCompare is the sanctioned idiom.
func GoodPointerCompare(a, b *PathAttrs) bool {
	return a == b
}

// GoodCloneThenMutate copies the value before changing it.
func GoodCloneThenMutate(a *PathAttrs) *PathAttrs {
	clone := *a
	clone.LocalPref = 200
	return Intern(clone)
}

// GoodFieldRead reads through the pointer without writing.
func GoodFieldRead(a *PathAttrs) uint32 {
	return a.LocalPref
}
