// Package lockdiscipline is a fixture for the lockdiscipline analyzer:
// blocking operations while holding the configured router mutex, both
// direct and through a same-package call chain, next to disciplined
// critical sections that must stay clean.
package lockdiscipline

import (
	"net"
	"sync"
	"time"
)

// Router mirrors core.Router: mu is the configured mutex.
type Router struct {
	mu    sync.Mutex
	peers map[string]int
	ch    chan int
}

// BadSleepWhileLocked blocks on real time inside the critical section.
func (r *Router) BadSleepWhileLocked() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want lockdiscipline "blocking call time.Sleep"
	r.mu.Unlock()
}

// BadConnWriteWhileLocked pushes onto a socket with the lock held via a
// deferred Unlock.
func (r *Router) BadConnWriteWhileLocked(conn net.Conn, p []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	conn.Write(p) // want lockdiscipline "blocking call"
}

// BadSendWhileLocked performs a naked channel send under the lock; the
// receiver may not be draining.
func (r *Router) BadSendWhileLocked(v int) {
	r.mu.Lock()
	r.ch <- v // want lockdiscipline "channel send while holding"
	r.mu.Unlock()
}

// BadSelectWhileLocked parks in a select with no default under the lock.
func (r *Router) BadSelectWhileLocked() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want lockdiscipline "blocking select"
	case v := <-r.ch:
		return v
	}
}

// flushSlow is the indirection the call-graph walk must see through.
func (r *Router) flushSlow(conn net.Conn, p []byte) {
	conn.Write(p)
}

// BadTransitive reaches blocking I/O through a same-package callee.
func (r *Router) BadTransitive(conn net.Conn, p []byte) {
	r.mu.Lock()
	r.flushSlow(conn, p) // want lockdiscipline "reaches blocking operation"
	r.mu.Unlock()
}

// GoodLocked is a disciplined critical section: pure in-memory work.
func (r *Router) GoodLocked(k string, v int) {
	r.mu.Lock()
	r.peers[k] = v
	r.mu.Unlock()
}

// GoodUnlockedSend releases the lock before the channel send.
func (r *Router) GoodUnlockedSend(v int) {
	r.mu.Lock()
	n := len(r.peers)
	r.mu.Unlock()
	r.ch <- n + v
}

// GoodNonBlockingSelect cannot park: the default arm always runs.
func (r *Router) GoodNonBlockingSelect(v int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.ch <- v:
		return true
	default:
		return false
	}
}

// auditedHandoff is on the analyzer's allow list: a hand-audited
// exception whose justification lives next to the config entry.
func auditedHandoff(r *Router, v int) {
	r.mu.Lock()
	r.ch <- v
	r.mu.Unlock()
}
