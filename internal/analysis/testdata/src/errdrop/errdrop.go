// Package errdrop is a fixture for the errdrop analyzer: every way of
// silently discarding an error result that the analyzer must flag, next
// to the consuming patterns it must not.
package errdrop

import (
	"errors"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, errors.New("boom") }

type closer struct{}

func (closer) Close() error { return nil }

// BadExprDrop calls an error-returning function as a bare statement.
func BadExprDrop() {
	mayFail() // want errdrop "error result of mayFail is discarded"
}

// BadMethodDrop drops a method's error result.
func BadMethodDrop(c closer) {
	c.Close() // want errdrop "error result of c.Close is discarded"
}

// BadBlankAssign throws the error away explicitly.
func BadBlankAssign() {
	_ = mayFail() // want errdrop "error value assigned to the blank identifier"
}

// BadBlankTuple discards the error position of a multi-value call.
func BadBlankTuple() int {
	n, _ := twoResults() // want errdrop "error result of twoResults assigned to the blank identifier"
	return n
}

// BadDeferDrop discards the deferred call's error.
func BadDeferDrop(c closer) {
	defer c.Close() // want errdrop "error result of defer c.Close is discarded"
}

// GoodHandled consumes the error.
func GoodHandled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// GoodBuilderWrite uses a writer documented to never fail; exempted via
// the AllowCallees list.
func GoodBuilderWrite() string {
	var b strings.Builder
	b.WriteString("ok")
	b.WriteByte('!')
	return b.String()
}

// AnnotatedDrop carries a justified allow comment.
func AnnotatedDrop(c closer) {
	c.Close() //bgplint:allow(errdrop) reason=fixture: exercising the suppression path
}
