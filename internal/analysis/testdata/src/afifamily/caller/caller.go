// Package caller is the out-of-package half of the afifamily fixture:
// truncating accessor calls from outside the defining package.
package caller

import afifamily "bgpbench/internal/analysis/testdata/src/afifamily"

// BadTruncate collapses a possibly-IPv6 address outside its package.
func BadTruncate(a afifamily.Addr) uint32 {
	return a.V4() // want afifamily "IPv4-truncating accessor"
}

// GoodAllowedTruncate carries the audited justification.
func GoodAllowedTruncate(a afifamily.Addr) uint32 {
	//bgplint:allow(afifamily) reason=fixture: the address is IPv4 by construction here
	return a.V4()
}

// GoodFamilyRead only inspects the family tag.
func GoodFamilyRead(a afifamily.Addr) afifamily.Family { return a.Family() }
