// Package afifamily is a fixture for the afifamily analyzer: switches
// over the address-family enum must cover every family or carry a
// default, and the IPv4-truncating accessor stays inside its package
// unless the call site carries an audited allow comment.
package afifamily

// Family mirrors netaddr.Family.
type Family uint8

// The two address families.
const (
	FamilyV4 Family = iota
	FamilyV6
)

// Addr mirrors the family-tagged address.
type Addr struct {
	hi, lo uint64
	fam    Family
}

// Family returns the address family.
func (a Addr) Family() Family { return a.fam }

// V4 is the truncating accessor: it collapses the address to its IPv4
// bits. Calls are fine here, in the defining package.
func (a Addr) V4() uint32 { return uint32(a.hi >> 32) }

// GoodExhaustive covers every family.
func GoodExhaustive(f Family) int {
	switch f {
	case FamilyV4:
		return 4
	case FamilyV6:
		return 6
	}
	return 0
}

// GoodDefault opts out of exhaustiveness with a default clause.
func GoodDefault(f Family) int {
	switch f {
	case FamilyV4:
		return 4
	default:
		return 0
	}
}

// GoodOtherSwitch switches over an unrelated type; not in scope.
func GoodOtherSwitch(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

// BadMissingV6 drops IPv6 on the floor.
func BadMissingV6(f Family) int {
	switch f { // want afifamily "misses FamilyV6"
	case FamilyV4:
		return 4
	}
	return 0
}

// BadEmptySwitch covers nothing at all.
func BadEmptySwitch(f Family) {
	switch f { // want afifamily "misses FamilyV4, FamilyV6"
	}
}

// InPackageTruncate may call V4: same package as the accessor.
func InPackageTruncate(a Addr) uint32 { return a.V4() }
