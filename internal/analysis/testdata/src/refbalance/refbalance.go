// Package refbalance is the seeded fixture set for the refbalance
// analyzer: a miniature of the repo's SharedPayload/slab discipline.
// Bad shapes carry `// want` expectations; good shapes must stay
// silent.
package refbalance

import "errors"

// Payload models a refcounted resource (session.SharedPayload).
type Payload struct{ refs int }

// Release drops one reference.
func (p *Payload) Release() { p.refs-- }

// acquire returns a fresh counted reference the caller owns.
func acquire() *Payload { return &Payload{refs: 1} }

// acquireErr is the fallible acquire: a nil payload alongside a non-nil
// error, so the error path carries no obligation.
func acquireErr(fail bool) (*Payload, error) {
	if fail {
		return nil, errors.New("acquire failed")
	}
	return &Payload{refs: 1}, nil
}

// send consumes one reference on every path (a configured transfer,
// like Session.SendShared).
func send(p *Payload) { p.refs-- }

var errBoom = errors.New("boom")

// --- bad shapes ---

// LeakSimple never discharges the reference at all.
func LeakSimple() int {
	p := acquire() // want refbalance "can reach return without Release"
	return p.refs
}

// LeakOnBranch releases only on one arm: the other falls through to the
// return still holding the reference.
func LeakOnBranch(cond bool) int {
	p := acquire() // want refbalance "can reach return without Release"
	if cond {
		p.Release()
		return 1
	}
	return 0
}

// LeakMidwayError is the classic early-error leak: the acquire
// succeeded, a later failure returns without releasing.
func LeakMidwayError(fail bool) error {
	p, err := acquireErr(false) // want refbalance "can reach return without Release"
	if err != nil {
		return err
	}
	if fail {
		return errBoom
	}
	p.Release()
	return nil
}

// DoubleRelease drops the same reference twice.
func DoubleRelease() {
	p := acquire()
	p.Release()
	p.Release() // want refbalance "double release"
}

// DeferredDoubleRelease pairs a deferred release with an explicit one:
// the defer fires at return, on top of the explicit drop.
func DeferredDoubleRelease() {
	p := acquire()
	defer p.Release()
	p.Release() // want refbalance "double release"
}

// UseAfterRelease touches the payload after dropping the reference.
func UseAfterRelease() int {
	p := acquire()
	p.Release()
	return p.refs // want refbalance "use of p after its release"
}

// LeakViaWrapper leaks a reference obtained through wrap, which is not
// in the configuration: the analyzer infers wrap's acquire contract
// from its body.
func LeakViaWrapper() int {
	p := wrap() // want refbalance "can reach return without Release"
	return p.refs
}

// --- good shapes ---

// wrap forwards a fresh reference to its caller (inferred acquirer; no
// finding here — the obligation moves to the caller).
func wrap() *Payload {
	p := acquire()
	return p
}

// consume releases its parameter on every path (inferred consumer).
func consume(p *Payload) {
	p.refs++
	p.Release()
}

// BalancedBranches releases on both arms.
func BalancedBranches(cond bool) int {
	p := acquire()
	if cond {
		p.Release()
		return 1
	}
	p.Release()
	return 0
}

// BalancedDefer covers every path, error returns included, with one
// deferred release.
func BalancedDefer(fail bool) error {
	p, err := acquireErr(fail)
	if err != nil {
		return err
	}
	defer p.Release()
	if p.refs == 0 {
		return errBoom
	}
	return nil
}

// BalancedErrPath releases only on the success arm: the error arm holds
// no reference (nil-payload convention), so nothing is owed there.
func BalancedErrPath(fail bool) error {
	p, err := acquireErr(fail)
	if err != nil {
		return err
	}
	p.Release()
	return nil
}

// TransferredFanOut hands one reference per recipient to the configured
// transfer, then drops its own.
func TransferredFanOut(recipients int) {
	p := acquire()
	for i := 0; i < recipients; i++ {
		send(p)
	}
	p.Release()
}

// TransferredViaHelper discharges through consume, whose contract is
// inferred, not configured.
func TransferredViaHelper() {
	p := acquire()
	consume(p)
}

// BalancedFromWrapper owns the reference wrap forwarded and releases
// it.
func BalancedFromWrapper() int {
	p := wrap()
	n := p.refs
	p.Release()
	return n
}
