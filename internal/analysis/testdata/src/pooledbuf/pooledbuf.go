// Package pooledbuf is a fixture for the pooledbuf analyzer: pooled
// values escaping their owner, Gets without Puts, and use-after-Put,
// next to the disciplined patterns that must stay clean.
package pooledbuf

import "sync"

type batch struct {
	data []byte
}

var pool = sync.Pool{New: func() any { return new(batch) }}

// getBatch is recognised as a get-wrapper: its Get needs no local Put.
func getBatch() *batch {
	return pool.Get().(*batch)
}

// putBatch is recognised as a put-wrapper.
func putBatch(b *batch) {
	b.data = b.data[:0]
	pool.Put(b)
}

type holder struct {
	stash *batch
	ch    chan *batch
}

// BadFieldEscape parks a pooled value in a struct field.
func BadFieldEscape(h *holder) {
	b := getBatch()
	h.stash = b // want pooledbuf "pooled value stored in struct field"
	putBatch(b)
}

// BadChannelEscape sends a pooled value to another goroutine.
func BadChannelEscape(ch chan *batch) {
	b := getBatch()
	ch <- b // want pooledbuf "pooled value sent on channel"
	putBatch(b)
}

// BadClosureEscape captures a pooled value in a closure that may run
// after the Put.
func BadClosureEscape() func() int {
	b := getBatch()
	f := func() int { return len(b.data) } // want pooledbuf "pooled value captured by closure"
	putBatch(b)
	return f
}

// BadReturnEscape hands the pooled value to a caller with no Put
// obligation.
func BadReturnEscape() *batch {
	b := getBatch()
	b.data = append(b.data, 1)
	putBatch(b)
	return b // want pooledbuf "pooled value escapes via return" pooledbuf "used after Put"
}

// BadCompositeEscape embeds the pooled value in a literal that outlives
// the frame.
func BadCompositeEscape(h *holder) {
	b := getBatch()
	*h = holder{stash: b} // want pooledbuf "pooled value placed in composite literal"
	putBatch(b)
}

// BadNoPut leaks pool throughput: no Put on any path.
func BadNoPut() int {
	b := getBatch() // want pooledbuf "no Put on any path"
	return len(b.data)
}

// BadUseAfterPut touches the value after the pool reclaimed it.
func BadUseAfterPut() int {
	b := getBatch()
	putBatch(b)
	return len(b.data) // want pooledbuf "used after Put"
}

// GoodScoped is the disciplined shape: Get, use, Put, no escape.
func GoodScoped(p []byte) int {
	b := getBatch()
	b.data = append(b.data, p...)
	n := len(b.data)
	putBatch(b)
	return n
}

// AnnotatedHandoff is an audited ownership transfer: both the missing
// local Put and the channel escape carry justifications.
func AnnotatedHandoff(h *holder) {
	b := getBatch() //bgplint:allow(pooledbuf) reason=fixture: ownership transfers to the receiver, which Puts
	//bgplint:allow(pooledbuf) reason=fixture: audited ownership transfer, receiver Puts
	h.ch <- b
}

// BadSharedGetter is the shared-payload buffer getter without its audit
// notes: the Put lives behind a refcounted payload's free callback, so
// the analyzer sees neither a local Put nor a safe return.
func BadSharedGetter() []byte {
	b := pool.Get().(*batch) // want pooledbuf "no Put on any path"
	return b.data[:0]        // want pooledbuf "pooled value escapes via return"
}

// GoodSharedGetter is the audited shared-payload shape (the fan-out
// send path): the pooled buffer's ownership rides inside a refcounted
// payload and returns to the pool via the free callback when the last
// reference drains.
func GoodSharedGetter() []byte {
	//bgplint:allow(pooledbuf) reason=fixture: ownership transfers to a refcounted payload; its free callback Puts
	b := pool.Get().(*batch)
	//bgplint:allow(pooledbuf) reason=fixture: audited ownership transfer, the payload free callback Puts
	return b.data[:0]
}

// slab models the marshal-cache payload arena: a pooled carve buffer
// whose Put hides behind a reference count decremented by payload free
// callbacks, not behind any call the analyzer can pair with the Get.
type slab struct {
	data []byte
	refs int
}

var slabPool = sync.Pool{New: func() any { return new(slab) }}

type arena struct {
	open *slab
}

// BadSlabRotate parks a pooled slab in the arena with no audit notes:
// the analyzer sees a struct-field escape and no Put on any path.
func BadSlabRotate(a *arena) {
	s := slabPool.Get().(*slab) // want pooledbuf "no Put on any path"
	s.refs = 1
	a.open = s // want pooledbuf "pooled value stored in struct field"
}

// GoodSlabRotate is the audited refcounted-slab-getter shape (the
// grouped emission path's payload arena): the open slab parks in the
// owning cache, every payload carved from it holds a counted reference,
// and the last release returns the slab to the pool.
func GoodSlabRotate(a *arena) {
	//bgplint:allow(pooledbuf) reason=fixture: ownership transfers to the arena; carved payloads hold counted references and the last release Puts
	s := slabPool.Get().(*slab)
	s.refs = 1
	//bgplint:allow(pooledbuf) reason=fixture: audited refcount handoff, the release path Puts when the carved payloads drain
	a.open = s
}
