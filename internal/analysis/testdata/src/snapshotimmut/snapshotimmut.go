// Package snapshotimmut is a fixture for the snapshotimmut analyzer:
// structures reachable from a published FIB snapshot are shared with
// lock-free readers and must only be written by the allow-listed
// builders (which operate on fresh, unpublished values).
package snapshotimmut

// snapPage mirrors the poptrie's copy-on-write directory page.
type snapPage [4]*int

// Snapshot mirrors the published snapshot head: a directory of pages
// plus an expanded result table.
type Snapshot struct {
	pages    [2]*snapPage
	expanded []uint32
	n        int
}

// buildPage is the sanctioned builder: it only ever fills a page the
// caller just allocated or copied.
func buildPage(p *snapPage, v *int) {
	p[0] = v
}

// BadFieldAssign writes a field of a published snapshot.
func BadFieldAssign(s *Snapshot) {
	s.n = 7 // want snapshotimmut "mutation of snapshot type"
}

// BadSliceElemAssign writes through a slice field of the snapshot.
func BadSliceElemAssign(s *Snapshot) {
	s.expanded[3] = 1 // want snapshotimmut "mutation of snapshot type"
}

// BadSliceHeaderAssign regrows a shared slice in place.
func BadSliceHeaderAssign(s *Snapshot) {
	s.expanded = append(s.expanded, 9) // want snapshotimmut "mutation of snapshot type"
}

// BadPageElemAssign writes into a shared directory page.
func BadPageElemAssign(p *snapPage, v *int) {
	p[1] = v // want snapshotimmut "mutation of snapshot type"
}

// BadNestedAssign reaches a page through the snapshot.
func BadNestedAssign(s *Snapshot, v *int) {
	s.pages[0][2] = v // want snapshotimmut "mutation of snapshot type"
}

// BadStarAssign replaces a shared page wholesale.
func BadStarAssign(p *snapPage, v snapPage) {
	*p = v // want snapshotimmut "mutation of snapshot type"
}

// BadIncrement bumps a counter readers are concurrently loading.
func BadIncrement(s *Snapshot) {
	s.n++ // want snapshotimmut "mutation of snapshot type"
}

// BadInteriorAddress hands out a writable window into shared memory.
func BadInteriorAddress(s *Snapshot) *uint32 {
	return &s.expanded[0] // want snapshotimmut "interior escapes"
}

// GoodFreshCopy mutates a local value copy, never the shared page.
func GoodFreshCopy(p *snapPage, v *int) *snapPage {
	cp := *p
	fresh := &cp
	buildPage(fresh, v)
	return fresh
}

// GoodRead only loads from the snapshot.
func GoodRead(s *Snapshot) uint32 {
	if s.pages[0] != nil {
		return s.expanded[0] + uint32(s.n)
	}
	return 0
}
