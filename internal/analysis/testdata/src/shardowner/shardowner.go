// Package shardowner is the seeded fixture set for the shardowner
// analyzer: a miniature of the repo's worker-owned update-group state.
package shardowner

// cache models per-shard marshal state, mutated without locks.
//
//bgplint:owned-by shard-worker
type cache struct {
	hits int
}

// bump is how the worker touches its own state: receiver use is not an
// escape.
func (c *cache) bump() { c.hits++ }

// shard owns a cache by value inside its worker.
type shard struct {
	c  *cache
	ch chan *cache
}

// retain models a sink that can keep its argument alive arbitrarily.
func retain(v any) { _ = v }

// useConcrete takes the owned type by its concrete type: the callee is
// visible to the analyzer and plays by the same rules.
func useConcrete(c *cache) { c.bump() }

// --- bad shapes ---

// GoCapture hands the worker's cache to a new goroutine.
func GoCapture(s *shard) {
	c := s.c
	go func() { // want shardowner "captured by a goroutine closure"
		c.bump()
	}()
}

// ChannelSend ships the cache to whoever drains the channel.
func ChannelSend(s *shard) {
	s.ch <- s.c // want shardowner "sending it on a channel"
}

// InterfacePass lets an opaque callee retain the cache.
func InterfacePass(s *shard) {
	retain(s.c) // want shardowner "passing it as"
}

// InterfaceStore parks the cache where arbitrary code can reach it.
func InterfaceStore(s *shard) {
	var v any
	v = s.c // want shardowner "storing it as"
	_ = v
}

// EscapingClosure stores a closure over the cache: wherever the closure
// runs later, the cache goes with it.
func EscapingClosure(s *shard) func() {
	c := s.c
	fn := func() { // want shardowner "captured by a closure that escapes"
		c.bump()
	}
	return fn
}

// --- good shapes ---

// WorkerLoop is the owner touching its own state, concrete types all
// the way down.
func WorkerLoop(s *shard) {
	s.c.bump()
	useConcrete(s.c)
}

// InPlaceClosure runs on the worker's own goroutine: an immediately
// invoked literal is not an escape.
func InPlaceClosure(s *shard) {
	c := s.c
	func() {
		c.bump()
	}()
}
