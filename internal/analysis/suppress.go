package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// Suppression syntax v2. A finding at a site that is correct by design
// is silenced with a reasoned annotation on the offending line or the
// line directly above it:
//
//	//bgplint:allow(analyzer1,analyzer2) reason=why this site is correct
//
// Unlike the v1 //lint:allow form, the reason is enforced, not
// conventional: a directive with no reason= clause, an empty reason, an
// unknown analyzer name, or the legacy syntax is itself a finding
// (analyzer "bgplint"), so a malformed suppression fails the gate
// loudly instead of silently suppressing nothing. A directive whose
// analyzers produce no finding on its lines is stale and is reported
// too — audited allows must keep pointing at live findings.

const (
	allowPrefix       = "bgplint:allow"
	legacyAllowPrefix = "lint:allow"
	// driverName is the pseudo-analyzer findings about the suppression
	// directives themselves are reported under.
	driverName = "bgplint"
)

// allowDirective is one parsed //bgplint:allow comment.
type allowDirective struct {
	pos       token.Position
	analyzers []string
	reason    string
	used      bool
}

// allowSet indexes valid directives by (analyzer, file, line): a
// directive suppresses findings on its own line and the line below.
type allowSet struct {
	byKey map[allowKey]*allowDirective
	all   []*allowDirective
}

// allowKey identifies one suppressed (file, line) for one analyzer.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

// suppress consumes one matching directive, reporting whether the
// finding was suppressed.
func (s *allowSet) suppress(analyzer, file string, line int) bool {
	d, ok := s.byKey[allowKey{analyzer, file, line}]
	if !ok {
		return false
	}
	d.used = true
	return true
}

// collectAllows parses every //bgplint:allow directive in the package.
// Malformed or legacy directives are reported as bgplint findings
// through report; validation against known analyzer names uses known.
func collectAllows(pkg *Package, known map[string]bool, report func(pos token.Position, format string, args ...any)) *allowSet {
	set := &allowSet{byKey: map[allowKey]*allowDirective{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				pos := pkg.Fset.Position(c.Pos())
				if strings.HasPrefix(text, legacyAllowPrefix) {
					report(pos, "legacy //lint:allow directive; use //bgplint:allow(<analyzer>) reason=<justification>")
					continue
				}
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				d, errMsg := parseAllow(text)
				if errMsg != "" {
					report(pos, "%s", errMsg)
					continue
				}
				for _, name := range d.analyzers {
					if !known[name] {
						report(pos, "//bgplint:allow names unknown analyzer %q (run bgplint -list for the inventory)", name)
						d = nil
						break
					}
				}
				if d == nil {
					continue
				}
				d.pos = pos
				set.all = append(set.all, d)
				for _, name := range d.analyzers {
					set.byKey[allowKey{name, pos.Filename, pos.Line}] = d
					set.byKey[allowKey{name, pos.Filename, pos.Line + 1}] = d
				}
			}
		}
	}
	return set
}

// parseAllow parses the text after "//": "bgplint:allow(a,b) reason=...".
// It returns a directive or a human-readable error message.
func parseAllow(text string) (*allowDirective, string) {
	rest := text[len(allowPrefix):]
	if !strings.HasPrefix(rest, "(") {
		return nil, "malformed //bgplint:allow: expected (<analyzer>[,<analyzer>...]) after bgplint:allow"
	}
	close := strings.Index(rest, ")")
	if close < 0 {
		return nil, "malformed //bgplint:allow: missing closing parenthesis"
	}
	var names []string
	for _, n := range strings.Split(rest[1:close], ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, "malformed //bgplint:allow: empty analyzer list"
	}
	tail := strings.TrimSpace(rest[close+1:])
	if !strings.HasPrefix(tail, "reason=") {
		return nil, "//bgplint:allow requires a reason: append reason=<why this site is correct>"
	}
	reason := strings.TrimSpace(strings.TrimPrefix(tail, "reason="))
	if reason == "" {
		return nil, "//bgplint:allow has an empty reason; justify the suppression"
	}
	return &allowDirective{analyzers: names, reason: reason}, ""
}

// staleAllows returns a diagnostic for every directive that suppressed
// nothing: the finding it audited is gone, so the annotation must go
// too (or the analyzer regressed, which this surfaces just as loudly).
func staleAllows(set *allowSet) []Diagnostic {
	var out []Diagnostic
	for _, d := range set.all {
		if !d.used {
			out = append(out, Diagnostic{
				Analyzer: driverName,
				Position: d.pos,
				Message: "stale //bgplint:allow(" + strings.Join(d.analyzers, ",") +
					"): no finding suppressed on this or the next line (remove the annotation)",
			})
		}
	}
	return out
}

// AllowEntry is one audited suppression for the generated inventory.
type AllowEntry struct {
	File      string
	Line      int
	Analyzers []string
	Reason    string
}

// CollectAllowInventory parses every allow directive in the given
// packages (valid ones only) for the documentation inventory, sorted by
// position. rel maps absolute filenames to repo-relative display paths.
func CollectAllowInventory(pkgs []*Package, rel func(string) string) []AllowEntry {
	var out []AllowEntry
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		if seen[pkg.ImportPath] {
			continue
		}
		seen[pkg.ImportPath] = true
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, allowPrefix) {
						continue
					}
					d, errMsg := parseAllow(text)
					if errMsg != "" {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					out = append(out, AllowEntry{
						File:      rel(pos.Filename),
						Line:      pos.Line,
						Analyzers: d.analyzers,
						Reason:    d.reason,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
