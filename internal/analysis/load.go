package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"bgpbench/internal/analysis/cfg"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// DepOnly marks packages pulled in only as dependencies of the
	// requested patterns; they are still analyzed (their facts feed the
	// cross-package store) but their diagnostics are dropped.
	DepOnly bool

	// cfgs caches per-function control-flow graphs, shared by every
	// analyzer visiting the package (see Pass.CFG).
	cfgs map[*ast.BlockStmt]*cfg.CFG
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct {
		Err string
	}
}

// goList runs `go list -json -deps` over the patterns in dir (empty =
// current directory) and decodes the JSON stream. -deps guarantees the
// output is in dependency order: every package appears after all of its
// imports, so the loader can type-check in stream order.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load discovers packages matching the go-list patterns (relative to
// dir; "" means the current directory), parses their sources, and
// type-checks them. Standard-library imports are resolved through the
// compiler's export data; module packages are checked from source in
// dependency order. The returned slice contains only module packages,
// dependencies included (marked DepOnly).
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std := importer.Default()
	checked := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return std.Import(path)
	})

	var out []*Package
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", path, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, typeErrs[0])
		}
		checked[lp.ImportPath] = tpkg
		out = append(out, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
			DepOnly:    lp.DepOnly,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}
	return out, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// SourceDigest fingerprints everything a bgplint run depends on: the
// resolved file set of every module package the patterns pull in (deps
// included — cross-package facts make dependency sources part of the
// result) and their contents. Because `./...` includes
// internal/analysis itself, editing an analyzer or the config
// invalidates the digest too. The digest is the key of the build-cache-
// aware incremental mode: an unchanged digest means an identical run,
// so the cached findings can be replayed without re-type-checking the
// module. Only `go list` and file reads run here — no parsing.
func SourceDigest(dir string, patterns []string) (string, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return "", err
	}
	var files []string
	for _, lp := range listed {
		if lp.Standard || lp.Name == "" {
			continue
		}
		for _, name := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, name))
		}
	}
	sort.Strings(files)
	h := sha256.New()
	fmt.Fprintf(h, "bgplint-cache-v1\npatterns=%s\n", strings.Join(patterns, " "))
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return "", fmt.Errorf("hashing %s: %v", path, err)
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "%s %s\n", path, hex.EncodeToString(sum[:]))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
