package analysis

import (
	"encoding/json"
	"io"
)

// Minimal SARIF 2.1.0 output: one run, one rule per analyzer, one
// result per finding. Baselined findings carry
// baselineState=unchanged so SARIF viewers (and CI annotators) can
// distinguish audited debt from regressions; everything else is new.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID        string          `json:"ruleId"`
	Level         string          `json:"level"`
	Message       sarifMessage    `json:"message"`
	Locations     []sarifLocation `json:"locations"`
	BaselineState string          `json:"baselineState,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the findings; rel maps absolute filenames onto
// repo-relative artifact URIs.
func writeSARIF(w io.Writer, diags []Diagnostic, rel func(string) string) error {
	driver := sarifDriver{Name: driverName}
	for _, a := range Analyzers() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// The driver's own directive findings are a rule too.
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               driverName,
		ShortDescription: sarifMessage{Text: "suppression-directive and baseline hygiene"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		state := "new"
		if d.Baselined {
			state = "unchanged"
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: rel(d.Position.Filename)},
					Region: sarifRegion{
						StartLine:   d.Position.Line,
						StartColumn: d.Position.Column,
					},
				},
			}},
			BaselineState: state,
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
