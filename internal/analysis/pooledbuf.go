package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PooledBuf audits sync.Pool usage (the dispatchBatch buffers on the
// router's batched hot path). A pooled value that escapes the function
// that obtained it — into a struct field, a channel, a composite
// literal, a closure, or a return value — may still be referenced after
// Put returns it to the pool, at which point another goroutine's Get
// hands out the same memory and the two users silently share state.
// Escapes that are deliberate ownership transfers (the handler-to-shard
// handoff) must carry a justified //bgplint:allow(pooledbuf) annotation so
// every transfer is audited. A Get with no Put anywhere in the same
// function and no annotated transfer is a leak of pool throughput.
//
// Functions whose entire body is `return pool.Get().(T)` are recognised
// as accessor wrappers (getBatch); functions containing pool.Put are
// release wrappers (putBatch). Wrapper calls count as Get/Put for their
// callers.
var PooledBuf = &Analyzer{
	Name: "pooledbuf",
	Doc:  "sync.Pool values must not escape their owner and every Get needs a Put",
	Run:  func(p *Pass) error { runPooledBuf(p); return nil },
}

func runPooledBuf(pass *Pass) {
	decls := funcDecls(pass.Pkg)
	getWrappers, putWrappers := poolWrappers(pass, decls)
	for fn, fd := range decls {
		if fd.Body != nil {
			analyzePoolFunc(pass, fn, fd, getWrappers, putWrappers)
		}
	}
}

func isPoolMethodCall(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.FullName() == "(*sync.Pool)."+name
}

// poolWrappers classifies the package's pool accessors: functions that
// return a fresh pool.Get result, and functions that hand a value back
// via pool.Put.
func poolWrappers(pass *Pass, decls map[*types.Func]*ast.FuncDecl) (get, put map[*types.Func]bool) {
	info := pass.Pkg.Info
	get = map[*types.Func]bool{}
	put = map[*types.Func]bool{}
	for fn, fd := range decls {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range node.Results {
					if e, ok := ast.Unparen(res).(*ast.TypeAssertExpr); ok {
						res = e.X
					}
					if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isPoolMethodCall(info, call, "Get") {
						get[fn] = true
					}
				}
			case *ast.CallExpr:
				if isPoolMethodCall(info, node, "Put") {
					put[fn] = true
				}
			}
			return true
		})
	}
	return get, put
}

func analyzePoolFunc(pass *Pass, fn *types.Func, fd *ast.FuncDecl, getWrappers, putWrappers map[*types.Func]bool) {
	info := pass.Pkg.Info

	// isAcquire reports whether e produces a fresh pooled value: a
	// direct pool.Get (possibly type-asserted) or a get-wrapper call.
	isAcquire := func(e ast.Expr) bool {
		if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
			e = ta.X
		}
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		if isPoolMethodCall(info, call, "Get") {
			return true
		}
		callee := calleeFunc(info, call)
		return callee != nil && getWrappers[callee]
	}
	isRelease := func(call *ast.CallExpr) bool {
		if isPoolMethodCall(info, call, "Put") {
			return true
		}
		callee := calleeFunc(info, call)
		return callee != nil && putWrappers[callee]
	}

	// Pass A: collect acquired variables, field-backed local aliases,
	// and whether the function acquires or releases at all.
	acquired := map[*types.Var]bool{}
	fieldAliases := map[*types.Var]bool{}
	var firstAcquire token.Pos
	hasGet, hasPut := false, false
	for round := 0; round < 2; round++ { // twice: pick up aliases of acquired vars
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range node.Lhs {
					if i >= len(node.Rhs) {
						break
					}
					v := identObj(info, lhs)
					if v == nil {
						continue
					}
					rhs := node.Rhs[i]
					if isAcquire(rhs) {
						acquired[v] = true
					}
					if rv := identObj(info, rhs); rv != nil && acquired[rv] {
						acquired[v] = true
					}
					if sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr); ok {
						if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
							fieldAliases[v] = true
						}
					}
				}
			case *ast.CallExpr:
				if isAcquire(node) {
					hasGet = true
					if firstAcquire == token.NoPos {
						firstAcquire = node.Pos()
					}
				}
				if isRelease(node) {
					hasPut = true
				}
			}
			return true
		})
	}

	// isFieldBacked reports whether an index/selector target ultimately
	// stores into a struct field (directly, or through a local alias of
	// one).
	var isFieldBacked func(e ast.Expr) bool
	isFieldBacked = func(e ast.Expr) bool {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if s, ok := info.Selections[t]; ok && s.Kind() == types.FieldVal {
				return true
			}
			return isFieldBacked(t.X)
		case *ast.IndexExpr:
			return isFieldBacked(t.X)
		case *ast.Ident:
			v := identObj(info, t)
			return v != nil && fieldAliases[v]
		}
		return false
	}

	// carriesRef reports whether an expression's type can smuggle the
	// pooled pointer out (pointer, slice, interface, ...): `return b` or
	// `return b.data` escapes, `return len(b.data)` does not.
	carriesRef := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return true // be conservative when the type is unknown
		}
		_, basic := tv.Type.Underlying().(*types.Basic)
		return !basic
	}

	// Pass B: escapes, releases, and use-after-Put.
	released := map[*types.Var]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				if i >= len(node.Rhs) {
					break
				}
				rhs := node.Rhs[i]
				carries := isAcquire(rhs) || usesVar(info, rhs, acquired)
				if !carries {
					continue
				}
				switch target := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if s, ok := info.Selections[target]; ok && s.Kind() == types.FieldVal && !usesVar(info, target.X, acquired) {
						pass.Reportf(node.Pos(), "pooled value stored in struct field %s (may outlive Put; annotate audited ownership transfers)", target.Sel.Name)
					}
				case *ast.IndexExpr:
					if isFieldBacked(target) {
						pass.Reportf(node.Pos(), "pooled value stored in struct-field-backed container (may outlive Put; annotate audited ownership transfers)")
					}
				}
			}
		case *ast.SendStmt:
			if usesVar(info, node.Value, acquired) && carriesRef(node.Value) {
				pass.Reportf(node.Pos(), "pooled value sent on channel (receiver may outlive Put; annotate audited ownership transfers)")
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if v := identObj(info, val); v != nil && acquired[v] {
					pass.Reportf(elt.Pos(), "pooled value placed in composite literal (may outlive Put; annotate audited ownership transfers)")
				}
			}
		case *ast.FuncLit:
			if usesVar(info, node.Body, acquired) {
				pass.Reportf(node.Pos(), "pooled value captured by closure (may outlive Put)")
			}
			return false
		case *ast.ReturnStmt:
			if getWrappers[fn] {
				return true
			}
			for _, res := range node.Results {
				if usesVar(info, res, acquired) && carriesRef(res) {
					pass.Reportf(node.Pos(), "pooled value escapes via return (caller cannot know it must Put)")
				}
			}
		case *ast.CallExpr:
			if isRelease(node) && len(node.Args) >= 1 {
				if v := identObj(info, node.Args[len(node.Args)-1]); v != nil && acquired[v] {
					if _, done := released[v]; !done {
						released[v] = node.End()
					}
				}
			}
		}
		return true
	})

	// Use-after-Put: any mention of a released variable at a source
	// position after its Put (positional order approximates control
	// flow well enough for a lint).
	if len(released) > 0 {
		reported := map[*types.Var]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := info.Uses[id].(*types.Var)
			if v == nil || reported[v] {
				return true
			}
			if end, ok := released[v]; ok && id.Pos() > end {
				reported[v] = true
				pass.Reportf(id.Pos(), "pooled value %s used after Put returned it to the pool", id.Name)
			}
			return true
		})
	}

	if hasGet && !hasPut && !getWrappers[fn] {
		pass.Reportf(firstAcquire, "value obtained from sync.Pool but no Put on any path in this function (leaks pool throughput; Put on every return path or transfer ownership with an annotated handoff)")
	}
}
