package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestMainExitCodes pins the bgplint process contract: non-zero on every
// fixture package (each contains known violations), distinct code for
// load failures, and zero only on clean input.
func TestMainExitCodes(t *testing.T) {
	for _, pkg := range fixturePackages {
		var out, errb strings.Builder
		code := Main([]string{pkg}, &out, &errb)
		if code != ExitFindings {
			t.Errorf("Main(%s) = %d, want %d (findings)\nstdout:\n%s\nstderr:\n%s",
				pkg, code, ExitFindings, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), strings.TrimPrefix(pkg, fixturePrefix)) {
			t.Errorf("Main(%s): findings do not mention the fixture package:\n%s", pkg, out.String())
		}
	}

	var out, errb strings.Builder
	if code := Main([]string{"bgpbench/internal/does-not-exist"}, &out, &errb); code != ExitError {
		t.Errorf("Main on unknown package = %d, want %d (load error)", code, ExitError)
	}

	out.Reset()
	errb.Reset()
	// The analysis package itself is clean (and cheap to load).
	if code := Main([]string{"bgpbench/internal/analysis"}, &out, &errb); code != ExitClean {
		t.Errorf("Main on clean package = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitClean, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

// TestMainJSON pins the -json output shape consumed by tooling.
func TestMainJSON(t *testing.T) {
	var out, errb strings.Builder
	code := Main([]string{"-json", fixturePrefix + "detclock"}, &out, &errb)
	if code != ExitFindings {
		t.Fatalf("Main -json = %d, want %d\nstderr:\n%s", code, ExitFindings, errb.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty findings array for a flagged fixture")
	}
	for _, d := range diags {
		if d.Analyzer != "detclock" {
			t.Errorf("unexpected analyzer %q in detclock fixture findings", d.Analyzer)
		}
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

// TestMainList pins the -list inventory: one line per analyzer.
func TestMainList(t *testing.T) {
	var out, errb strings.Builder
	if code := Main([]string{"-list"}, &out, &errb); code != ExitClean {
		t.Fatalf("Main -list = %d, want 0", code)
	}
	for _, a := range Analyzers() {
		if !strings.Contains(out.String(), a.Name+": ") {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
}
