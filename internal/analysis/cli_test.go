package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMainExitCodes pins the bgplint process contract: non-zero on every
// fixture package (each contains known violations), distinct code for
// load failures, and zero only on clean input.
func TestMainExitCodes(t *testing.T) {
	for _, pkg := range fixturePackages {
		var out, errb strings.Builder
		code := Main([]string{pkg}, &out, &errb)
		if code != ExitFindings {
			t.Errorf("Main(%s) = %d, want %d (findings)\nstdout:\n%s\nstderr:\n%s",
				pkg, code, ExitFindings, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), strings.TrimPrefix(pkg, fixturePrefix)) {
			t.Errorf("Main(%s): findings do not mention the fixture package:\n%s", pkg, out.String())
		}
	}

	var out, errb strings.Builder
	if code := Main([]string{"bgpbench/internal/does-not-exist"}, &out, &errb); code != ExitError {
		t.Errorf("Main on unknown package = %d, want %d (load error)", code, ExitError)
	}

	out.Reset()
	errb.Reset()
	// The analysis package itself is clean (and cheap to load).
	if code := Main([]string{"bgpbench/internal/analysis"}, &out, &errb); code != ExitClean {
		t.Errorf("Main on clean package = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitClean, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

// TestMainJSON pins the -json output shape consumed by tooling.
func TestMainJSON(t *testing.T) {
	var out, errb strings.Builder
	code := Main([]string{"-json", fixturePrefix + "detclock"}, &out, &errb)
	if code != ExitFindings {
		t.Fatalf("Main -json = %d, want %d\nstderr:\n%s", code, ExitFindings, errb.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty findings array for a flagged fixture")
	}
	for _, d := range diags {
		if d.Analyzer != "detclock" {
			t.Errorf("unexpected analyzer %q in detclock fixture findings", d.Analyzer)
		}
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

// TestMainSARIF pins the -sarif shape: valid SARIF 2.1.0 with one rule
// per analyzer (plus the driver's own rule) and one result per finding,
// carrying baselineState.
func TestMainSARIF(t *testing.T) {
	var out, errb strings.Builder
	code := Main([]string{"-sarif", fixturePrefix + "detclock"}, &out, &errb)
	if code != ExitFindings {
		t.Fatalf("Main -sarif = %d, want %d\nstderr:\n%s", code, ExitFindings, errb.String())
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("SARIF version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("SARIF runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if got, want := len(run.Tool.Driver.Rules), len(Analyzers())+1; got != want {
		t.Errorf("SARIF rules = %d, want %d (analyzers + driver)", got, want)
	}
	if len(run.Results) == 0 {
		t.Fatal("SARIF results empty for a flagged fixture")
	}
	for _, r := range run.Results {
		if r.RuleID != "detclock" {
			t.Errorf("unexpected ruleId %q in detclock fixture results", r.RuleID)
		}
		if r.BaselineState != "new" {
			t.Errorf("un-baselined finding has baselineState %q, want new", r.BaselineState)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine == 0 {
			t.Errorf("SARIF result missing location: %+v", r)
		}
	}
}

// TestMainBaselineLifecycle drives the whole audited-findings loop
// in-process: write the ledger from a flagged fixture, re-run against
// it (clean, findings still visible), then break it both ways — a
// padded count must surface as stale, a truncated ledger as new
// findings.
func TestMainBaselineLifecycle(t *testing.T) {
	pkg := fixturePrefix + "detclock"
	base := filepath.Join(t.TempDir(), "baseline.json")

	var out, errb strings.Builder
	if code := Main([]string{"-baseline", base, "-write-baseline", pkg}, &out, &errb); code != ExitClean {
		t.Fatalf("-write-baseline = %d, want clean\nstderr:\n%s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := Main([]string{"-baseline", base, pkg}, &out, &errb); code != ExitClean {
		t.Fatalf("run against fresh baseline = %d, want clean\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[baselined]") {
		t.Errorf("audited findings not printed with [baselined] marker:\n%s", out.String())
	}

	// Pad one entry's count: the extra occurrence matches nothing, so the
	// ledger is stale and the gate must fail.
	b, err := LoadBaseline(base)
	if err != nil {
		t.Fatal(err)
	}
	b.Findings[0].Count++
	if err := WriteBaseline(base, b); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := Main([]string{"-baseline", base, pkg}, &out, &errb); code != ExitFindings {
		t.Fatalf("run against padded baseline = %d, want findings (stale entry)", code)
	}
	if !strings.Contains(errb.String(), "stale baseline entry") {
		t.Errorf("stale entry not reported:\n%s", errb.String())
	}

	// Drop an entry: its finding is now new and the gate must fail.
	b.Findings[0].Count--
	dropped := b.Findings[0]
	b.Findings = b.Findings[1:]
	if err := WriteBaseline(base, b); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := Main([]string{"-baseline", base, pkg}, &out, &errb); code != ExitFindings {
		t.Fatalf("run against truncated baseline = %d, want findings (new finding)", code)
	}
	if !strings.Contains(out.String(), dropped.Message) {
		t.Errorf("un-audited finding %q not printed:\n%s", dropped.Message, out.String())
	}

	// A corrupt ledger must refuse to run at all.
	if err := os.WriteFile(base, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := Main([]string{"-baseline", base, pkg}, &out, &errb); code != ExitError {
		t.Fatalf("run against corrupt baseline = %d, want %d", code, ExitError)
	}
}

// TestMainAllowInventory pins the -allows markdown table: one row per
// valid directive, written to a file or stdout.
func TestMainAllowInventory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allows.md")
	var out, errb strings.Builder
	// The pooledbuf fixture carries reasoned allows on its good shapes.
	code := Main([]string{"-allows", path, fixturePrefix + "pooledbuf"}, &out, &errb)
	if code != ExitFindings {
		t.Fatalf("Main -allows = %d, want %d (fixture has findings)\nstderr:\n%s", code, ExitFindings, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("-allows wrote no file: %v", err)
	}
	table := string(data)
	if !strings.Contains(table, "| Location | Analyzers | Reason |") {
		t.Errorf("inventory missing header:\n%s", table)
	}
	if !strings.Contains(table, "pooledbuf") || strings.Count(table, "\n") < 3 {
		t.Errorf("inventory missing fixture allows:\n%s", table)
	}
}

// TestMainCacheAndBudget drives the incremental path: with an
// unchanged tree the second run replays the cached findings, which is
// also the observable that the -budget clock only charges real
// analysis — an impossible 1ns budget fails the cold run and passes
// the cached one.
func TestMainCacheAndBudget(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	pkg := "bgpbench/internal/analysis/cfg" // small and lint-clean
	args := []string{"-cache", cacheDir, "-budget", "1ns", pkg}

	var out, errb strings.Builder
	if code := Main(args, &out, &errb); code != ExitFindings {
		t.Fatalf("cold run with 1ns budget = %d, want %d (budget exceeded)\nstderr:\n%s",
			code, ExitFindings, errb.String())
	}
	if !strings.Contains(errb.String(), "over the 1ns budget") {
		t.Errorf("budget violation not reported:\n%s", errb.String())
	}
	if _, err := os.Stat(filepath.Join(cacheDir, "bgplint.json")); err != nil {
		t.Fatalf("cold run left no cache file: %v", err)
	}

	out.Reset()
	errb.Reset()
	if code := Main(args, &out, &errb); code != ExitClean {
		t.Fatalf("warm run = %d, want clean (replay skips the budget)\nstderr:\n%s",
			code, errb.String())
	}
}

// TestMainList pins the -list inventory: one line per analyzer.
func TestMainList(t *testing.T) {
	var out, errb strings.Builder
	if code := Main([]string{"-list"}, &out, &errb); code != ExitClean {
		t.Fatalf("Main -list = %d, want 0", code)
	}
	for _, a := range Analyzers() {
		if !strings.Contains(out.String(), a.Name+": ") {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
}
