// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies. It is the flow-sensitive core of bgplint v2: the
// refbalance, shardowner, and readpurity analyzers walk these graphs to
// prove path properties ("every acquire reaches a release on all
// paths") that the syntax-local v1 analyzers could not express. Like
// the rest of internal/analysis it is standard library only — no
// golang.org/x/tools dependency.
//
// The graph is statement-granular. Each basic block holds a list of
// ast.Node values in evaluation order: plain statements verbatim,
// branch conditions and switch tags as bare expressions, and range
// statements as themselves (consumers inspect only X/Key/Value — the
// loop body has its own blocks). Control statements never appear whole
// inside a block's node list, so a consumer can ast.Inspect every node
// without double-visiting nested bodies, as long as it skips *ast.
// FuncLit (closures run elsewhere) and treats *ast.RangeStmt specially.
//
// Panics get their own sink block (Panic) distinct from the normal
// return sink (Exit): a deferred release covers both, but an analyzer
// deciding whether a reference leaks can choose to require consumption
// only on paths that return normally.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: nodes executed in order, then a jump to one
// of Succs.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// Cond is set when the block ends in a two-way conditional branch:
	// Succs[0] is the true edge and Succs[1] the false edge. It is nil
	// for unconditional jumps and for multi-way branches (switch,
	// select, range), whose successor order carries no truth value.
	Cond ast.Expr
}

// CFG is one function body's control-flow graph.
type CFG struct {
	Entry  *Block
	Exit   *Block // normal-return sink (explicit returns and fallthrough off the end)
	Panic  *Block // panic sink (explicit panic calls)
	Blocks []*Block
}

// String renders the graph for tests and debugging.
func (c *CFG) String() string {
	var b strings.Builder
	for _, blk := range c.Blocks {
		tag := ""
		switch blk {
		case c.Entry:
			tag = " (entry)"
		case c.Exit:
			tag = " (exit)"
		case c.Panic:
			tag = " (panic)"
		}
		fmt.Fprintf(&b, "b%d%s:", blk.Index, tag)
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, " ->b%d", s.Index)
		}
		fmt.Fprintf(&b, " [%d nodes]\n", len(blk.Nodes))
	}
	return b.String()
}

// New builds the CFG for a function body. A nil body yields a trivial
// entry->exit graph.
func New(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &builder{c: c}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	c.Panic = b.newBlock()
	cur := c.Entry
	if body != nil {
		cur = b.stmtList(cur, body.List)
	}
	b.jump(cur, c.Exit)
	return c
}

// frame is one enclosing breakable construct: loops carry a continue
// target, switches and selects only a break target.
type frame struct {
	brk   *Block
	cont  *Block // nil for switch/select
	label string
}

type builder struct {
	c      *CFG
	frames []frame
	// label pending for the next loop/switch statement (set by
	// LabeledStmt).
	pendingLabel string
	// fallTarget is the next case body during switch construction, for
	// fallthrough statements.
	fallTarget *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.c.Blocks)}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

// jump adds an edge from from to to; a nil from (unreachable) is a
// no-op.
func (b *builder) jump(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmtList threads cur through a statement list; the result is nil when
// the list ends in a terminating statement.
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt appends one statement to the graph starting at cur and returns
// the block where control continues (nil after return/branch/panic).
// Statements following a terminator are attached to a fresh unreachable
// block so the rest of the function still builds.
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	if cur == nil {
		cur = b.newBlock() // unreachable continuation
	}
	switch stmt := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, stmt.List)

	case *ast.LabeledStmt:
		switch stmt.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = stmt.Label.Name
		}
		return b.stmt(cur, stmt.Stmt)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, stmt)
		b.jump(cur, b.c.Exit)
		return nil

	case *ast.BranchStmt:
		return b.branch(cur, stmt)

	case *ast.IfStmt:
		if stmt.Init != nil {
			cur = b.stmt(cur, stmt.Init)
			if cur == nil {
				cur = b.newBlock()
			}
		}
		cur.Nodes = append(cur.Nodes, stmt.Cond)
		cur.Cond = stmt.Cond
		then := b.newBlock()
		join := b.newBlock()
		b.jump(cur, then)
		thenOut := b.stmtList(then, stmt.Body.List)
		b.jump(thenOut, join)
		if stmt.Else != nil {
			els := b.newBlock()
			b.jump(cur, els)
			elsOut := b.stmt(els, stmt.Else)
			b.jump(elsOut, join)
		} else {
			b.jump(cur, join)
		}
		return join

	case *ast.ForStmt:
		label := b.takeLabel()
		if stmt.Init != nil {
			cur = b.stmt(cur, stmt.Init)
			if cur == nil {
				cur = b.newBlock()
			}
		}
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		b.jump(cur, head)
		contTarget := head
		var post *Block
		if stmt.Post != nil {
			post = b.newBlock()
			contTarget = post
		}
		if stmt.Cond != nil {
			head.Nodes = append(head.Nodes, stmt.Cond)
			head.Cond = stmt.Cond
			b.jump(head, body)
			b.jump(head, join)
		} else {
			b.jump(head, body)
		}
		b.frames = append(b.frames, frame{brk: join, cont: contTarget, label: label})
		bodyOut := b.stmtList(body, stmt.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(bodyOut, contTarget)
		if post != nil {
			post.Nodes = append(post.Nodes, stmt.Post)
			b.jump(post, head)
		}
		return join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		b.jump(cur, head)
		// The RangeStmt node itself carries X and the Key/Value
		// definitions; consumers must not descend into Body.
		head.Nodes = append(head.Nodes, stmt)
		b.jump(head, body)
		b.jump(head, join)
		b.frames = append(b.frames, frame{brk: join, cont: head, label: label})
		bodyOut := b.stmtList(body, stmt.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(bodyOut, head)
		return join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if stmt.Init != nil {
			cur = b.stmt(cur, stmt.Init)
			if cur == nil {
				cur = b.newBlock()
			}
		}
		if stmt.Tag != nil {
			cur.Nodes = append(cur.Nodes, stmt.Tag)
		}
		return b.switchBody(cur, stmt.Body, label, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if stmt.Init != nil {
			cur = b.stmt(cur, stmt.Init)
			if cur == nil {
				cur = b.newBlock()
			}
		}
		return b.switchBody(cur, stmt.Body, label, stmt.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		join := b.newBlock()
		b.frames = append(b.frames, frame{brk: join, label: label})
		for _, cc := range stmt.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.jump(cur, blk)
			if clause.Comm != nil {
				blk.Nodes = append(blk.Nodes, clause.Comm)
			}
			out := b.stmtList(blk, clause.Body)
			b.jump(out, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(stmt.Body.List) == 0 {
			b.jump(cur, join)
		}
		return join

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, stmt)
		if isPanicCall(stmt.X) {
			b.jump(cur, b.c.Panic)
			return nil
		}
		return cur

	default:
		// AssignStmt, DeclStmt, SendStmt, IncDecStmt, DeferStmt, GoStmt,
		// EmptyStmt, ...: straight-line.
		cur.Nodes = append(cur.Nodes, stmt)
		return cur
	}
}

// switchBody builds the case blocks of a switch or type switch. assign
// is the type switch's assign/expr statement, evaluated in cur.
func (b *builder) switchBody(cur *Block, body *ast.BlockStmt, label string, assign ast.Stmt) *Block {
	if assign != nil {
		cur.Nodes = append(cur.Nodes, assign)
	}
	join := b.newBlock()
	b.frames = append(b.frames, frame{brk: join, label: label})
	var clauses []*ast.CaseClause
	for _, cc := range body.List {
		if clause, ok := cc.(*ast.CaseClause); ok {
			clauses = append(clauses, clause)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		blocks[i] = b.newBlock()
		b.jump(cur, blocks[i])
		for _, e := range clause.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		if clause.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.jump(cur, join)
	}
	for i, clause := range clauses {
		if i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = join
		}
		out := b.stmtList(blocks[i], clause.Body)
		b.jump(out, join)
	}
	b.fallTarget = nil
	b.frames = b.frames[:len(b.frames)-1]
	return join
}

// branch resolves break/continue/goto/fallthrough. goto is handled
// conservatively with an edge to the exit sink (the repo's analyzed
// packages do not use goto; a conservative edge only weakens "on all
// paths" claims, never fabricates a safe path).
func (b *builder) branch(cur *Block, stmt *ast.BranchStmt) *Block {
	label := ""
	if stmt.Label != nil {
		label = stmt.Label.Name
	}
	switch stmt.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.jump(cur, f.brk)
				return nil
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont != nil && (label == "" || f.label == label) {
				b.jump(cur, f.cont)
				return nil
			}
		}
	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			b.jump(cur, b.fallTarget)
			return nil
		}
	case token.GOTO:
		b.jump(cur, b.c.Exit)
		return nil
	}
	b.jump(cur, b.c.Exit)
	return nil
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// isPanicCall reports whether e is a direct call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
