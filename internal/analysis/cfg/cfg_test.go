package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFor parses src as a file, finds the function named name, and
// builds its CFG.
func buildFor(t *testing.T, src, name string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body)
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// reaches reports whether to is reachable from from along successor
// edges.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var dfs func(b *Block) bool
	dfs = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func TestStraightLine(t *testing.T) {
	c := buildFor(t, `package p
func f() { x := 1; _ = x }`, "f")
	if !reaches(c.Entry, c.Exit) {
		t.Fatalf("exit unreachable:\n%s", c)
	}
	if reaches(c.Entry, c.Panic) {
		t.Fatalf("panic sink reachable without a panic:\n%s", c)
	}
}

func TestIfBothArms(t *testing.T) {
	c := buildFor(t, `package p
func f(b bool) int {
	if b {
		return 1
	}
	return 2
}`, "f")
	// Entry must reach exit via two distinct return-bearing blocks.
	returns := 0
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
				if !reaches(c.Entry, blk) {
					t.Errorf("return block b%d unreachable from entry", blk.Index)
				}
			}
		}
	}
	if returns != 2 {
		t.Fatalf("found %d return nodes, want 2\n%s", returns, c)
	}
}

func TestIfCondBranchOrder(t *testing.T) {
	c := buildFor(t, `package p
func f(err error) {
	if err != nil {
		println("e")
	} else {
		println("ok")
	}
}`, "f")
	var cond *Block
	for _, blk := range c.Blocks {
		if blk.Cond != nil {
			cond = blk
		}
	}
	if cond == nil {
		t.Fatalf("no conditional block:\n%s", c)
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("conditional block has %d successors, want 2", len(cond.Succs))
	}
}

func TestLoopBackEdgeAndBreak(t *testing.T) {
	c := buildFor(t, `package p
func f(xs []int) {
	for i := 0; i < len(xs); i++ {
		if xs[i] == 0 {
			break
		}
		println(i)
	}
	println("done")
}`, "f")
	// The loop head must be on a cycle (back edge) and the exit must be
	// reachable both via the loop condition and via break.
	var head *Block
	for _, blk := range c.Blocks {
		if blk.Cond != nil && reaches(blk.Succs[0], blk) {
			head = blk
		}
	}
	if head == nil {
		t.Fatalf("no loop head with a back edge:\n%s", c)
	}
	if !reaches(c.Entry, c.Exit) {
		t.Fatalf("exit unreachable:\n%s", c)
	}
}

func TestRangeZeroIterationPath(t *testing.T) {
	c := buildFor(t, `package p
func f(xs []int) {
	for _, x := range xs {
		println(x)
	}
}`, "f")
	// A range loop must have a path from entry to exit that skips the
	// body (zero iterations).
	var rangeBlk, body *Block
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				rangeBlk = blk
			}
		}
	}
	if rangeBlk == nil {
		t.Fatalf("range head not found:\n%s", c)
	}
	if len(rangeBlk.Succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (body, join)", len(rangeBlk.Succs))
	}
	body = rangeBlk.Succs[0]
	if !reaches(body, rangeBlk) {
		t.Errorf("no back edge from range body to head:\n%s", c)
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	c := buildFor(t, `package p
func f(x int) {
	switch x {
	case 1:
		println(1)
		fallthrough
	case 2:
		println(2)
	}
	println("after")
}`, "f")
	if !reaches(c.Entry, c.Exit) {
		t.Fatalf("exit unreachable:\n%s", c)
	}
	// Without a default clause the dispatch block must have an edge
	// skipping every case.
	c2 := buildFor(t, `package p
func f(x int) int {
	switch x {
	case 1:
		return 1
	default:
		return 0
	}
}`, "f")
	if !reaches(c2.Entry, c2.Exit) {
		t.Fatalf("exit unreachable with default:\n%s", c2)
	}
}

func TestPanicSink(t *testing.T) {
	c := buildFor(t, `package p
func f(b bool) {
	if b {
		panic("boom")
	}
	println("ok")
}`, "f")
	if !reaches(c.Entry, c.Panic) {
		t.Fatalf("panic sink unreachable:\n%s", c)
	}
	if !reaches(c.Entry, c.Exit) {
		t.Fatalf("exit unreachable:\n%s", c)
	}
	// The panic block must not flow into the normal exit.
	if reaches(c.Panic, c.Exit) {
		t.Fatalf("panic sink flows into exit:\n%s", c)
	}
}

func TestSelectClauses(t *testing.T) {
	c := buildFor(t, `package p
func f(ch chan int, done chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}`, "f")
	if !reaches(c.Entry, c.Exit) {
		t.Fatalf("exit unreachable:\n%s", c)
	}
}

func TestLabeledBreak(t *testing.T) {
	c := buildFor(t, `package p
func f(xs [][]int) {
outer:
	for _, row := range xs {
		for _, v := range row {
			if v == 0 {
				break outer
			}
			println(v)
		}
	}
	println("done")
}`, "f")
	if !reaches(c.Entry, c.Exit) {
		t.Fatalf("exit unreachable with labeled break:\n%s", c)
	}
}

func TestNilBody(t *testing.T) {
	c := New(nil)
	if !reaches(c.Entry, c.Exit) {
		t.Fatal("nil body: exit unreachable")
	}
}
