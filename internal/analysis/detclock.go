package analysis

import (
	"go/ast"
	"go/types"
)

// DetClock enforces the determinism contract of the modeled substrates:
// packages whose behaviour must be a pure function of their seeds may
// not consult the wall clock or the global math/rand state. Wall time
// enters only through the pluggable Clock implementations named in the
// config, and randomness only through rand.New(rand.NewSource(seed)).
var DetClock = &Analyzer{
	Name: "detclock",
	Doc:  "no wall-clock or unseeded randomness in deterministic packages",
	Run:  func(p *Pass) error { runDetClock(p); return nil },
}

// bannedTimeFuncs are the wall-clock entry points of package time.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// allowedRandFuncs construct explicitly seeded generators; everything
// else in math/rand draws from (or reseeds) the global source.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDetClock(pass *Pass) {
	files, scoped := pass.Config.Detclock.Packages[pass.Pkg.ImportPath]
	if !scoped {
		return
	}
	allowFuncs := stringSet(pass.Config.Detclock.AllowFuncs)
	info := pass.Pkg.Info

	for _, f := range pass.Pkg.Files {
		filename := pass.Pkg.Fset.Position(f.Pos()).Filename
		if !fileInScope(files, filename) {
			continue
		}
		for _, decl := range f.Decls {
			// Allow-listed clock implementations may touch wall time.
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok && allowFuncs[fn.FullName()] {
					continue
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := info.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				// Methods (e.g. (*rand.Rand).Int63n on an explicitly
				// seeded source, time.Time.Add) operate on explicit
				// state; only package-level functions reach the wall
				// clock or the global rand source.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if bannedTimeFuncs[fn.Name()] {
						pass.Reportf(id.Pos(),
							"wall-clock call time.%s in deterministic package %s (route time through the pluggable Clock)",
							fn.Name(), pass.Pkg.Types.Name())
					}
				case "math/rand", "math/rand/v2":
					if !allowedRandFuncs[fn.Name()] {
						pass.Reportf(id.Pos(),
							"global math/rand state via rand.%s in deterministic package %s (use rand.New(rand.NewSource(seed)))",
							fn.Name(), pass.Pkg.Types.Name())
					}
				}
				return true
			})
		}
	}
}
