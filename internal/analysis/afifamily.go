package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AFIFamily enforces the dual-stack hygiene invariants that keep IPv6
// support honest now that every address in the core is family-tagged:
//
//   - A switch over the address-family enum must cover every family or
//     carry a default clause. A missing case is how an AFI silently
//     falls out of a dispatch path when the next family is added.
//   - The IPv4-truncating address accessors (Addr.V4 collapses a
//     128-bit address to its top 32 bits) must not be called outside
//     the package that defines them. Each audited exception carries a
//     //bgplint:allow(afifamily) justification at the call site.
var AFIFamily = &Analyzer{
	Name: "afifamily",
	Doc:  "address-family switches are exhaustive; IPv4-truncating accessors stay confined to audited call sites",
	Run:  func(p *Pass) error { runAFIFamily(p); return nil },
}

func runAFIFamily(pass *Pass) {
	cfg := pass.Config.AFI
	if len(cfg.Families) == 0 && len(cfg.Truncating) == 0 {
		return
	}
	info := pass.Pkg.Info
	truncating := stringSet(cfg.Truncating)

	// constFullName resolves a case expression to the qualified name of
	// the constant it references ("" for literals and non-constants).
	constFullName := func(e ast.Expr) string {
		var obj types.Object
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj = info.Uses[x]
		case *ast.SelectorExpr:
			obj = info.Uses[x.Sel]
		}
		c, ok := obj.(*types.Const)
		if !ok || c.Pkg() == nil {
			return ""
		}
		return c.Pkg().Path() + "." + c.Name()
	}

	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SwitchStmt:
			if x.Tag == nil {
				return true
			}
			tv, ok := info.Types[x.Tag]
			if !ok {
				return true
			}
			want, scoped := cfg.Families[namedTypeName(tv.Type)]
			if !scoped {
				return true
			}
			seen := map[string]bool{}
			for _, stmt := range x.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // default clause: non-exhaustive by design
				}
				for _, e := range cc.List {
					if name := constFullName(e); name != "" {
						seen[name] = true
					}
				}
			}
			var missing []string
			for _, v := range want {
				if !seen[v] {
					missing = append(missing, v[strings.LastIndex(v, ".")+1:])
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(x.Pos(), "switch over %s misses %s (add the case or a default clause)",
					namedTypeName(tv.Type), strings.Join(missing, ", "))
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, x)
			if fn == nil || !truncating[fn.FullName()] {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == pass.Pkg.ImportPath {
				return true // the defining package may truncate
			}
			pass.Reportf(x.Pos(), "IPv4-truncating accessor %s outside its package; guard with Is4 and justify with //bgplint:allow(afifamily)",
				fn.FullName())
		}
		return true
	})
}
