package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bgpbench/internal/analysis/cfg"
)

// RefBalance is the path-sensitive acquire/release pairing check for
// the repo's refcounted resources: session.SharedPayload fan-out
// references and the marshal cache's pooled payloadSlab arenas.
//
// Every reference obtained from a configured acquire function must, on
// every path from the acquire to the function's return — error returns
// included — reach exactly one of: a configured release, a configured
// ownership transfer, a deferred release, a return of the reference to
// the caller, or an escape into longer-lived state (a store, a channel
// send, a closure capture). A path that reaches the return with the
// obligation unmet is a leaked reference; a second release without an
// intervening reassignment is a double release; touching the reference
// after its release is a use-after-release.
//
// The analyzer is cross-package: a helper that releases or transfers
// its parameter on every path earns a "consumes" fact, and a wrapper
// that returns an acquired reference earns an "acquires" fact, so
// callers in importing packages are checked against the helper's real
// contract without listing every wrapper in the configuration.
//
// Known soundness trade-offs, chosen to keep the repo gate quiet
// without hiding the bugs this analyzer exists for: assigning the
// reference to another variable ends tracking (alias analysis is out of
// scope), and paths that panic are not charged with the obligation
// (a deferred release still anchors the double-release check).
var RefBalance = &Analyzer{
	Name: "refbalance",
	Doc:  "acquired refcounted resources must be released or transferred on every path, exactly once",
	Run:  runRefBalance,
}

// refScope is the per-package view the queries run against.
type refScope struct {
	pass     *Pass
	types    map[string]bool // tracked qualified type names
	acquire  map[string]bool
	release  map[string]bool
	transfer map[string]bool
}

const (
	refFactConsumes = "consumes" // on *types.Func: consumes its tracked pointer params
	refFactAcquires = "acquires" // on *types.Func: returns a reference the caller owns
)

func runRefBalance(pass *Pass) error {
	sc := &refScope{
		pass:     pass,
		types:    map[string]bool{},
		acquire:  map[string]bool{},
		release:  map[string]bool{},
		transfer: map[string]bool{},
	}
	for _, t := range pass.Config.Ref.Types {
		sc.types[t] = true
	}
	for _, f := range pass.Config.Ref.Acquires {
		sc.acquire[f] = true
	}
	for _, f := range pass.Config.Ref.Releases {
		sc.release[f] = true
	}
	for _, f := range pass.Config.Ref.Transfers {
		sc.transfer[f] = true
	}

	fns := collectFuncs(pass.Pkg)

	// Phase A: infer facts to a fixpoint. A function consumes its
	// tracked parameter if every path discharges the obligation; a
	// function acquires if it returns a reference it obtained from an
	// acquire. Each round can unlock the next (a wrapper calling a
	// wrapper), so iterate until stable; the call-chain depth bounds the
	// rounds needed and four covers everything in this module.
	for i := 0; i < 4; i++ {
		changed := false
		for _, fn := range fns {
			if sc.inferFacts(fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Phase B: report.
	for _, fn := range fns {
		sc.checkFunc(fn)
	}
	return nil
}

// funcInfo pairs a function-shaped body with its type object (nil for
// function literals).
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	body *ast.BlockStmt
}

// collectFuncs gathers every declared function and method with a body,
// plus every function literal (checked as an independent function).
func collectFuncs(pkg *Package) []funcInfo {
	var out []funcInfo
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			out = append(out, funcInfo{obj: obj, decl: fd, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcInfo{body: fl.Body})
				}
				return true
			})
		}
	}
	return out
}

// isTracked reports whether t is (a pointer to) one of the configured
// refcounted types.
func (sc *refScope) isTracked(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return sc.types[obj.Pkg().Path()+"."+obj.Name()]
}

// calleeOf resolves a call expression to its static *types.Func, or nil
// for dynamic calls (function values, interface methods).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// callKind classifies a call with respect to the tracked variable v:
// which role (if any) the call plays for v's obligation.
type callKind int

const (
	callNone callKind = iota
	callRelease
	callTransfer
)

// classifyCall reports the call's role for v: a release if v is the
// receiver (or sole argument) of a configured release, a transfer if v
// is an argument of a configured transfer or of a callee carrying the
// consumes fact.
func (sc *refScope) classifyCall(call *ast.CallExpr, v types.Object) callKind {
	fn := calleeOf(sc.pass.Pkg.Info, call)
	if fn == nil {
		return callNone
	}
	name := fn.FullName()
	if sc.release[name] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isIdentFor(sc.pass, sel.X, v) {
			return callRelease
		}
		for _, a := range call.Args {
			if isIdentFor(sc.pass, a, v) {
				return callRelease
			}
		}
		return callNone
	}
	argIsV := func() bool {
		for _, a := range call.Args {
			if isIdentFor(sc.pass, a, v) {
				return true
			}
		}
		return false
	}
	if sc.transfer[name] && argIsV() {
		return callTransfer
	}
	if _, ok := sc.pass.ObjectFact(fn, refFactConsumes); ok && argIsV() {
		return callTransfer
	}
	return callNone
}

// isIdentFor reports whether e is (parenthesised) use of exactly the
// object v.
func isIdentFor(pass *Pass, e ast.Expr, v types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.Pkg.Info.Uses[id] == v || pass.Pkg.Info.Defs[id] == v
}

// eventKind is one path-relevant occurrence of the tracked variable
// inside a statement.
type eventKind int

const (
	evRelease      eventKind = iota // explicit release call
	evDeferRelease                  // release registered via defer
	evTransfer                      // ownership moved to a consuming callee
	evEscape                        // stored, returned, sent, captured, or aliased
	evUse                           // any other read of the variable
	evKill                          // the variable is reassigned: tracking ends
)

type refEvent struct {
	kind eventKind
	pos  token.Pos
}

// eventsIn lists the occurrences of v inside one CFG node, in source
// order. Function-literal bodies are not descended into (a capture is a
// single escape event); range statements contribute only their header
// expressions (the body lives in successor blocks).
func (sc *refScope) eventsIn(node ast.Node, v types.Object) []refEvent {
	var evs []refEvent
	add := func(kind eventKind, pos token.Pos) {
		evs = append(evs, refEvent{kind, pos})
	}
	var killPos token.Pos

	// Statement-shaped special cases first: they decide how the
	// contained expressions are interpreted.
	switch n := node.(type) {
	case *ast.DeferStmt:
		if sc.classifyCall(n.Call, v) == callRelease {
			add(evDeferRelease, n.Call.Pos())
			return evs
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if isIdentFor(sc.pass, r, v) {
				add(evEscape, r.Pos())
				return evs
			}
		}
	case *ast.SendStmt:
		if isIdentFor(sc.pass, n.Value, v) {
			add(evEscape, n.Value.Pos())
			return evs
		}
	case *ast.RangeStmt:
		// Only the header is part of this CFG node.
		node = n.X
		if node == nil {
			return evs
		}
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if capturesObject(sc.pass, x, v) {
				add(evEscape, x.Pos())
			}
			return false
		case *ast.CallExpr:
			switch sc.classifyCall(x, v) {
			case callRelease:
				add(evRelease, x.Pos())
				return false
			case callTransfer:
				add(evTransfer, x.Pos())
				return false
			}
		case *ast.AssignStmt:
			// The reference itself on the RHS escapes (an alias or a
			// longer-lived home); an expression merely derived from it
			// (a field read, a call result) is only a use, so descend.
			for _, rhs := range x.Rhs {
				if isIdentFor(sc.pass, rhs, v) {
					add(evEscape, rhs.Pos())
				} else {
					ast.Inspect(rhs, visit)
				}
			}
			for _, lhs := range x.Lhs {
				if isIdentFor(sc.pass, lhs, v) {
					// Reassignment (or re-definition in a loop): the
					// old reference is gone after this statement.
					killPos = x.TokPos
					continue
				}
				ast.Inspect(lhs, visit)
			}
			return false
		case *ast.CompositeLit:
			if exprMentions(sc.pass, x, v) {
				add(evEscape, x.Pos())
			}
			return false
		case *ast.Ident:
			if isIdentFor(sc.pass, x, v) {
				add(evUse, x.Pos())
			}
		}
		return true
	}
	ast.Inspect(node, visit)
	if killPos.IsValid() {
		add(evKill, killPos)
	}
	return evs
}

// exprMentions reports whether v appears anywhere inside e (function
// literals included: a capture is a mention).
func exprMentions(pass *Pass, e ast.Node, v types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && isIdentFor(pass, id, v) {
			found = true
		}
		return !found
	})
	return found
}

// capturesObject reports whether the function literal's body uses v,
// which is declared outside it.
func capturesObject(pass *Pass, fl *ast.FuncLit, v types.Object) bool {
	return exprMentions(pass, fl.Body, v)
}

// acquireSite is one tracked reference: the variable it is bound to,
// the position of the acquire, and the error variable bound alongside
// it (nil-payload convention: no obligation on the error path).
type acquireSite struct {
	v      types.Object
	errVar types.Object
	pos    token.Pos
	callee string
	block  *cfg.Block
	node   int // index of the acquiring statement in block.Nodes
}

// isAcquireCall reports whether the call obtains a fresh counted
// reference: a configured acquire, or a callee carrying the acquires
// fact.
func (sc *refScope) isAcquireCall(call *ast.CallExpr) (string, bool) {
	fn := calleeOf(sc.pass.Pkg.Info, call)
	if fn == nil {
		return "", false
	}
	name := fn.FullName()
	if sc.acquire[name] {
		return name, true
	}
	if _, ok := sc.pass.ObjectFact(fn, refFactAcquires); ok {
		return shortFuncName(name), true
	}
	return "", false
}

// shortFuncName trims the package path qualifier for report messages:
// "(*a/b/core.marshalCache).payloadFor" -> "(*core.marshalCache).payloadFor".
func shortFuncName(full string) string {
	i := strings.LastIndex(full, "/")
	if i < 0 {
		return full
	}
	tail := full[i+1:]
	switch {
	case strings.HasPrefix(full, "(*"):
		return "(*" + tail
	case strings.HasPrefix(full, "("):
		return "(" + tail
	default:
		return tail
	}
}

// findAcquires scans the CFG for statements binding a tracked acquire
// result to a local variable.
func (sc *refScope) findAcquires(g *cfg.CFG) []acquireSite {
	var out []acquireSite
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			as, ok := node.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee, ok := sc.isAcquireCall(call)
			if !ok {
				continue
			}
			site := acquireSite{pos: as.Pos(), callee: shortFuncName(callee), block: b, node: i}
			for j, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := sc.pass.Pkg.Info.Defs[id]
				if obj == nil {
					obj = sc.pass.Pkg.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if j == 0 && sc.isTracked(obj.Type()) {
					site.v = obj
				} else if _, isErr := obj.Type().Underlying().(*types.Interface); isErr && obj.Type().String() == "error" {
					site.errVar = obj
				}
			}
			if site.v != nil {
				out = append(out, site)
			}
		}
	}
	return out
}

// prunedEdge reports whether following the i-th successor of b is
// meaningless for the obligation: the branch where the reference is nil
// (acquire failed) carries nothing to release. It recognises the
// standard `if err != nil` / `if v == nil` guards over the acquire's
// own result variables.
func prunedEdge(pass *Pass, b *cfg.Block, i int, site acquireSite) bool {
	if b.Cond == nil {
		return false
	}
	bin, ok := ast.Unparen(b.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return false
	}
	var id ast.Expr
	switch {
	case isNilExpr(bin.Y):
		id = bin.X
	case isNilExpr(bin.X):
		id = bin.Y
	default:
		return false
	}
	isErr := site.errVar != nil && isIdentFor(pass, id, site.errVar)
	isV := isIdentFor(pass, id, site.v)
	if !isErr && !isV {
		return false
	}
	// For `x != nil` the true edge (Succs[0]) is the failure/nil-guard
	// path when x is the error; for `x == nil` it is the true edge when
	// x is the reference. The pruned side is where the reference is
	// invalid: err != nil, or v == nil.
	trueEdgeInvalid := (isErr && bin.Op == token.NEQ) || (isV && bin.Op == token.EQL)
	if trueEdgeInvalid {
		return i == 0
	}
	return i == 1
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// leakPath performs the central query: starting just after the acquire,
// can execution reach the function's normal exit without discharging
// the obligation? It returns the position of the offending return edge
// (the block that flowed into Exit), or token.NoPos if every path is
// covered.
func (sc *refScope) leakPath(g *cfg.CFG, site acquireSite) (token.Pos, bool) {
	type state struct {
		b    *cfg.Block
		from int // first node index to scan
	}
	visited := map[*cfg.Block]bool{}
	var dfs func(s state) (token.Pos, bool)
	dfs = func(s state) (token.Pos, bool) {
		if s.b == g.Exit {
			return site.pos, true
		}
		if s.b == g.Panic {
			// Panic unwinds; deferred releases (or process death) cover
			// it. Not charged with the obligation.
			return token.NoPos, false
		}
		for i := s.from; i < len(s.b.Nodes); i++ {
			for _, ev := range sc.eventsIn(s.b.Nodes[i], site.v) {
				switch ev.kind {
				case evRelease, evDeferRelease, evTransfer, evEscape:
					return token.NoPos, false // obligation met on this path
				case evKill:
					// Reassigned while still owed: the old reference can
					// never be released now. Report at the kill site.
					return ev.pos, true
				}
			}
		}
		for i, succ := range s.b.Succs {
			if prunedEdge(sc.pass, s.b, i, site) {
				continue
			}
			if visited[succ] {
				continue
			}
			visited[succ] = true
			if pos, leak := dfs(state{b: succ, from: 0}); leak {
				return pos, true
			}
		}
		return token.NoPos, false
	}
	return dfs(state{b: site.block, from: site.node + 1})
}

// afterRelease performs the double-release and use-after-release
// queries: from each release of the reference, scan forward for a
// second release (double release) or any other touch of the variable
// (use after release). A reassignment ends the scan: the name now holds
// a different reference.
func (sc *refScope) afterRelease(g *cfg.CFG, site acquireSite) {
	type relSite struct {
		b        *cfg.Block
		node     int
		pos      token.Pos
		deferred bool
	}
	var rels []relSite
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			for _, ev := range sc.eventsIn(node, site.v) {
				if ev.kind == evRelease || ev.kind == evDeferRelease {
					rels = append(rels, relSite{b: b, node: i, pos: ev.pos, deferred: ev.kind == evDeferRelease})
				}
			}
		}
	}
	for _, rel := range rels {
		visited := map[*cfg.Block]bool{}
		var dfs func(b *cfg.Block, from int, skipPos token.Pos) bool
		dfs = func(b *cfg.Block, from int, skipPos token.Pos) bool {
			for i := from; i < len(b.Nodes); i++ {
				for _, ev := range sc.eventsIn(b.Nodes[i], site.v) {
					if ev.pos == skipPos {
						continue
					}
					switch ev.kind {
					case evKill:
						return true // fresh reference from here on
					case evRelease, evDeferRelease:
						sc.pass.Reportf(ev.pos, "double release of %s acquired from %s (already released at %s)",
							site.v.Name(), site.callee, sc.pass.Pkg.Fset.Position(rel.pos))
						return true
					case evUse, evTransfer, evEscape:
						if rel.deferred {
							// The deferred release fires at exit, after
							// this use: ordering is fine.
							continue
						}
						sc.pass.Reportf(ev.pos, "use of %s after its release at %s",
							site.v.Name(), sc.pass.Pkg.Fset.Position(rel.pos))
						return true
					}
				}
			}
			for _, succ := range b.Succs {
				if succ == g.Exit || succ == g.Panic || visited[succ] {
					continue
				}
				visited[succ] = true
				if dfs(succ, 0, token.NoPos) {
					return true
				}
			}
			return false
		}
		// Scan the release's own statement first for trailing events,
		// then the rest of the block and beyond. Stop at the first
		// report per release site to keep output proportionate.
		dfs(rel.b, rel.node, rel.pos)
	}
}

// checkFunc runs the three queries over every acquire site in fn.
func (sc *refScope) checkFunc(fn funcInfo) {
	g := sc.pass.CFG(fn.body)
	for _, site := range sc.findAcquires(g) {
		if pos, leak := sc.leakPath(g, site); leak {
			sc.pass.Reportf(pos, "reference %s acquired from %s can reach return without Release or ownership transfer on some path",
				site.v.Name(), site.callee)
		}
		sc.afterRelease(g, site)
	}
}

// inferFacts computes the cross-package contracts of fn: whether it
// consumes tracked pointer parameters and whether it returns an
// acquired reference. Returns true if a new fact was exported.
func (sc *refScope) inferFacts(fn funcInfo) bool {
	if fn.obj == nil || fn.decl == nil {
		return false
	}
	changed := false
	sig := fn.obj.Type().(*types.Signature)
	g := sc.pass.CFG(fn.body)

	// consumes: a tracked pointer parameter discharged on every path.
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if !sc.isTracked(p.Type()) {
			continue
		}
		if _, ok := sc.pass.ObjectFact(fn.obj, refFactConsumes); ok {
			continue
		}
		site := acquireSite{v: p, pos: fn.decl.Pos(), block: g.Entry, node: -1}
		if _, leak := sc.leakPath(g, site); !leak && hasDischarge(sc, g, p) {
			sc.pass.ExportObjectFact(fn.obj, refFactConsumes, i)
			changed = true
		}
	}

	// acquires: the function returns a reference it obtained itself.
	if sig.Results().Len() > 0 && sc.isTracked(sig.Results().At(0).Type()) {
		if _, ok := sc.pass.ObjectFact(fn.obj, refFactAcquires); !ok {
			for _, site := range sc.findAcquires(g) {
				if returnsVar(sc.pass, fn.body, site.v) {
					sc.pass.ExportObjectFact(fn.obj, refFactAcquires, true)
					changed = true
					break
				}
			}
		}
	}
	return changed
}

// hasDischarge reports whether the body contains at least one genuine
// release or transfer of v — distinguishing a consumer from a function
// that merely stores or ignores its parameter.
func hasDischarge(sc *refScope, g *cfg.CFG, v types.Object) bool {
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			for _, ev := range sc.eventsIn(node, v) {
				if ev.kind == evRelease || ev.kind == evDeferRelease || ev.kind == evTransfer {
					return true
				}
			}
		}
	}
	return false
}

// returnsVar reports whether any return statement in body (outside
// nested function literals) returns v.
func returnsVar(pass *Pass, body *ast.BlockStmt, v types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if isIdentFor(pass, r, v) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
