package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePackages are the testdata packages exercised with the exact
// production configuration (DefaultConfig scopes them explicitly, since
// `...` wildcards never descend into testdata).
var fixturePackages = []string{
	fixturePrefix + "detclock",
	fixturePrefix + "pooledbuf",
	fixturePrefix + "internedattr",
	fixturePrefix + "lockdiscipline",
	fixturePrefix + "errdrop",
	fixturePrefix + "snapshotimmut",
	fixturePrefix + "afifamily",
	fixturePrefix + "afifamily/caller",
	fixturePrefix + "refbalance",
	fixturePrefix + "shardowner",
	fixturePrefix + "readpurity",
}

// want is one expectation parsed from a `// want analyzer "substring"`
// comment in a fixture source file.
type want struct {
	file     string // basename
	line     int
	analyzer string
	substr   string
	matched  bool
}

var wantSpecRe = regexp.MustCompile(`(\w+)\s+"([^"]*)"`)

// parseWants scans every fixture .go file for want comments. Several
// expectations may share one line: `// want a "x" b "y"`.
func parseWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for n := 1; sc.Scan(); n++ {
			line := sc.Text()
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			for _, m := range wantSpecRe.FindAllStringSubmatch(line[idx+len("// want "):], -1) {
				wants = append(wants, &want{
					file:     filepath.Base(path),
					line:     n,
					analyzer: m[1],
					substr:   m[2],
				})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	if len(wants) == 0 {
		t.Fatal("no want comments found under testdata; fixture set is broken")
	}
	return wants
}

// TestFixtures runs the full production analyzer suite over every
// fixture package and requires an exact match between the diagnostics
// produced and the want comments in the fixture sources: every want
// must be hit, and every finding must be expected.
func TestFixtures(t *testing.T) {
	pkgs, err := Load("", fixturePackages)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := RunAnalyzers(pkgs, DefaultConfig(), Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	wants := parseWants(t, "testdata")

	perAnalyzer := map[string]int{}
	for i := range diags {
		d := diags[i]
		perAnalyzer[d.Analyzer]++
		matched := false
		for _, w := range wants {
			if w.file == filepath.Base(d.Position.Filename) &&
				w.line == d.Position.Line &&
				w.analyzer == d.Analyzer &&
				strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected %s finding matching %q, got none",
				w.file, w.line, w.analyzer, w.substr)
		}
	}

	// Every analyzer in the suite must prove itself against at least one
	// flagged fixture; a silent analyzer is indistinguishable from a
	// broken one.
	for _, a := range Analyzers() {
		if perAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %s produced no findings on its fixtures", a.Name)
		}
	}
}

// TestRepoClean is the gate invariant: modulo the committed baseline,
// the production configuration must report zero findings on the
// repository itself (everything is fixed, carries a justified allow
// comment, or is audited in lint/baseline.json — and every baseline
// entry still matches a live finding).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := RunAnalyzers(pkgs, DefaultConfig(), Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	base, err := LoadBaseline("../../lint/baseline.json")
	if err != nil {
		t.Fatalf("loading baseline: %v", err)
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	rel := func(file string) string {
		if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(file)
	}
	newDiags, _, stale := DiffBaseline(base, diags, rel)
	for _, d := range newDiags {
		t.Errorf("repo not lint-clean: %s", d)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (finding is gone; remove it): %s: %s: %s (x%d)",
			e.File, e.Analyzer, e.Message, e.Count)
	}
}
