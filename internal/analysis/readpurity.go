package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ReadPurity proves the wait-free contract of the FIB read surface. The
// configured entrypoints — SnapshotTable lookups, metrics, and Walk,
// plus the poptrie snapshot methods behind them — run on every worker
// at full lookup rate; DESIGN §4 promises they never block a writer or
// each other. The analyzer enforces what that promise needs: no lock
// acquisition, no sync.Pool traffic, no channel operation, no goroutine
// spawn, and no write to shared state anywhere in the transitive call
// tree of an entrypoint.
//
// Purity is computed per function and exported as a cross-package fact,
// so an entrypoint in internal/fib calling a helper in
// internal/netaddr is checked against the helper's real body, analyzed
// when its package was visited earlier in dependency order.
//
// Deliberately allowed, because they cannot block: sync/atomic calls
// (the metrics counters), writes to function-local state, calls through
// function-typed values (Walk's yield callback — the caller's own
// code), and dynamic interface dispatch (opaque by construction; the
// concrete read-path implementations are all listed as entrypoints and
// checked directly).
var ReadPurity = &Analyzer{
	Name: "readpurity",
	Doc:  "the wait-free FIB read path must not lock, touch pools, use channels, or write shared state",
	Run:  runReadPurity,
}

// purityFactImpure marks a module function whose body (or transitive
// callee) performs a banned operation; the fact value is the
// impureReason of the first offense.
const purityFactImpure = "impure"

// impureReason describes one banned operation for reporting.
type impureReason struct {
	Pos  token.Pos
	What string
	// Via is the call chain suffix ("x calls y") when the offense lives
	// in a callee rather than the reported function itself.
	Via string
}

// puritySummary is the per-function analysis result.
type puritySummary struct {
	fn      *types.Func
	body    *ast.BlockStmt
	reasons []impureReason // banned operations in this body
	callees []calleeRef    // statically resolved calls
}

type calleeRef struct {
	fn  *types.Func
	pos token.Pos
}

func runReadPurity(pass *Pass) error {
	allow := map[string]bool{}
	for _, f := range pass.Config.Purity.AllowCallees {
		allow[f] = true
	}
	entry := map[string]bool{}
	for _, f := range pass.Config.Purity.Entrypoints {
		entry[f] = true
	}

	// Summarize every function in the package.
	summaries := map[*types.Func]*puritySummary{}
	for _, fn := range collectFuncs(pass.Pkg) {
		if fn.obj == nil {
			continue // literals are analyzed inline via their parents below
		}
		summaries[fn.obj] = summarizePurity(pass, fn.obj, fn.body, allow)
	}

	// Propagate impurity through the package-local call graph to a
	// fixpoint, then export facts so importing packages see the result.
	for changed := true; changed; {
		changed = false
		for _, s := range summaries {
			if _, done := pass.ObjectFact(s.fn, purityFactImpure); done {
				continue
			}
			r, impure := firstImpurity(pass, s, summaries)
			if impure {
				pass.ExportObjectFact(s.fn, purityFactImpure, r)
				changed = true
			}
		}
	}

	// Report at the entrypoints declared in this package.
	for _, s := range summaries {
		if !entry[s.fn.FullName()] {
			continue
		}
		reportImpurities(pass, s, summaries, map[*types.Func]bool{})
	}
	return nil
}

// firstImpurity returns the first banned operation reachable from s:
// its own reasons, or an impure callee (package-local summary or
// cross-package fact).
func firstImpurity(pass *Pass, s *puritySummary, summaries map[*types.Func]*puritySummary) (impureReason, bool) {
	if len(s.reasons) > 0 {
		return s.reasons[0], true
	}
	for _, c := range s.callees {
		if v, ok := pass.ObjectFact(c.fn, purityFactImpure); ok {
			inner := v.(impureReason)
			via := shortFuncName(c.fn.FullName())
			if inner.Via != "" {
				via += " -> " + inner.Via
			}
			return impureReason{Pos: c.pos, What: inner.What, Via: via}, true
		}
		if sub, ok := summaries[c.fn]; ok && len(sub.reasons) > 0 {
			return impureReason{Pos: c.pos, What: sub.reasons[0].What, Via: shortFuncName(c.fn.FullName())}, true
		}
	}
	return impureReason{}, false
}

// reportImpurities walks the call tree under an entrypoint and reports
// every banned operation once, at its own position for package-local
// code and at the call site for cross-package callees.
func reportImpurities(pass *Pass, s *puritySummary, summaries map[*types.Func]*puritySummary, seen map[*types.Func]bool) {
	if seen[s.fn] {
		return
	}
	seen[s.fn] = true
	for _, r := range s.reasons {
		pass.Reportf(r.Pos, "%s on the wait-free read path (in %s)", r.What, shortFuncName(s.fn.FullName()))
	}
	for _, c := range s.callees {
		if sub, ok := summaries[c.fn]; ok {
			reportImpurities(pass, sub, summaries, seen)
			continue
		}
		if v, ok := pass.ObjectFact(c.fn, purityFactImpure); ok {
			r := v.(impureReason)
			via := shortFuncName(c.fn.FullName())
			if r.Via != "" {
				via += " -> " + r.Via
			}
			pass.Reportf(c.pos, "%s on the wait-free read path (via %s)", r.What, via)
		}
	}
}

// summarizePurity records banned operations and static callees of one
// function body.
func summarizePurity(pass *Pass, fn *types.Func, body *ast.BlockStmt, allow map[string]bool) *puritySummary {
	s := &puritySummary{fn: fn, body: body}
	info := pass.Pkg.Info
	ban := func(pos token.Pos, what string) {
		s.reasons = append(s.reasons, impureReason{Pos: pos, What: what})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A literal called on the read path is summarized through
			// its enclosing function: its body is part of this walk.
			return true
		case *ast.GoStmt:
			ban(x.Pos(), "goroutine spawn")
			return true
		case *ast.SendStmt:
			ban(x.Pos(), "channel send")
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ban(x.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			ban(x.Pos(), "select over channels")
			return true
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if pos, shared := sharedWrite(pass, lhs); shared {
					ban(pos, "write to shared state")
				}
			}
		case *ast.IncDecStmt:
			if pos, shared := sharedWrite(pass, x.X); shared {
				ban(pos, "write to shared state")
			}
		case *ast.CallExpr:
			classifyPurityCall(pass, s, x, allow)
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ban(x.Pos(), "range over channel")
				}
			}
		}
		return true
	})
	return s
}

// classifyPurityCall buckets one call: banned primitive (lock, pool,
// close), allowed (atomics, builtins, function-typed values, interface
// dispatch, audited allowlist), or a static callee to check
// transitively.
func classifyPurityCall(pass *Pass, s *puritySummary, call *ast.CallExpr, allow map[string]bool) {
	info := pass.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "close" {
				s.reasons = append(s.reasons, impureReason{Pos: call.Pos(), What: "channel close"})
			}
			return
		}
	}
	fn := calleeOf(info, call)
	if fn == nil {
		// Dynamic: a function value (Walk's yield — the caller's own
		// code) or interface dispatch (opaque). Allowed by design.
		return
	}
	name := fn.FullName()
	if allow[name] {
		return
	}
	pkg := fn.Pkg()
	if pkg != nil {
		switch pkg.Path() {
		case "sync":
			switch fn.Name() {
			case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock", "Wait", "Do":
				s.reasons = append(s.reasons, impureReason{Pos: call.Pos(), What: "sync." + recvTypeName(fn) + "." + fn.Name() + " (blocking primitive)"})
				return
			case "Get", "Put":
				if recvTypeName(fn) == "Pool" {
					s.reasons = append(s.reasons, impureReason{Pos: call.Pos(), What: "sync.Pool." + fn.Name() + " (pool traffic)"})
					return
				}
			}
			return
		case "sync/atomic":
			return // wait-free by definition
		}
	}
	// Module-internal static call: record for transitive checking. Code
	// outside the module (stdlib) has no facts; the direct bans above
	// cover the blocking primitives it could reach.
	if pkg != nil && strings.HasPrefix(pkg.Path(), modulePathOf(pass)) {
		s.callees = append(s.callees, calleeRef{fn: fn, pos: call.Pos()})
	}
}

// recvTypeName names the receiver type of a method, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// modulePathOf returns the module prefix facts exist under: the first
// path segment of the package being analyzed ("bgpbench" for the real
// module, and the same for the fixture packages, which live under
// bgpbench/internal/analysis/testdata).
func modulePathOf(pass *Pass) string {
	p := pass.Pkg.ImportPath
	if i := strings.Index(p, "/"); i >= 0 {
		return p[:i]
	}
	return p
}

// sharedWrite decides whether an assignment destination is shared
// state. Local variables (and blank) are private; anything reached
// through a selector, index, or dereference whose base is not a
// function-local value — receiver fields, globals, pointees handed in
// from outside — is shared.
func sharedWrite(pass *Pass, lhs ast.Expr) (token.Pos, bool) {
	info := pass.Pkg.Info
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return token.NoPos, false
			}
			obj := info.Defs[x]
			if obj == nil {
				obj = info.Uses[x]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return token.NoPos, false
			}
			if v.IsField() {
				return x.Pos(), true
			}
			// Package-level variable: shared. Local or parameter:
			// private — but writing *through* a pointer-typed base was
			// already unwrapped below and reported there.
			if v.Parent() == v.Pkg().Scope() {
				return x.Pos(), true
			}
			return token.NoPos, false
		case *ast.SelectorExpr:
			// Writing a field: shared when the base is a pointer (the
			// pointee outlives the function) or itself shared.
			if tv, ok := info.Types[x.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					return x.Sel.Pos(), true
				}
			}
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			// Writing an element: slices and maps alias shared backing
			// stores unless provably local; stay conservative only for
			// bases that are not plain locals.
			if base, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if v, ok := info.Uses[base].(*types.Var); ok && !v.IsField() && v.Parent() != v.Pkg().Scope() && !isParam(pass, v) {
					return token.NoPos, false // element of a local slice/map
				}
			}
			return x.Pos(), true
		case *ast.StarExpr:
			return x.Pos(), true // write through a pointer
		default:
			return token.NoPos, false
		}
	}
}

// isParam reports whether v is a parameter (or receiver) of any
// function in the package: parameters alias caller-owned state, so
// writes through them are shared.
func isParam(pass *Pass, v *types.Var) bool {
	// A parameter's Parent is the function scope, same as a local; the
	// distinction that matters here is pointer-ness, which the selector
	// and star cases already catch. Treat slice/map params as shared.
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if pass.Pkg.Info.Defs[name] == v {
						return true
					}
				}
			}
			if fd.Recv != nil {
				for _, field := range fd.Recv.List {
					for _, name := range field.Names {
						if pass.Pkg.Info.Defs[name] == v {
							return true
						}
					}
				}
			}
		}
	}
	return false
}
