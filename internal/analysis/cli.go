package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Exit codes for Main, mirroring the convention of go vet: clean, has
// findings, failed to even load.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// jsonDiagnostic is the stable machine-readable form emitted by -json.
type jsonDiagnostic struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

// Main implements the bgplint command: load the requested packages,
// run every analyzer, print findings, and return a process exit code.
// It is a plain function over writers so the regression tests can call
// it in-process and assert on exit codes and output.
func Main(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("bgplint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	sarifOut := flags.Bool("sarif", false, "emit findings as SARIF 2.1.0 instead of file:line text")
	list := flags.Bool("list", false, "list available analyzers and exit")
	dir := flags.String("C", ".", "directory to resolve packages from")
	baselinePath := flags.String("baseline", "", "committed baseline file: listed findings stay visible but do not fail; new or stale entries do")
	writeBaseline := flags.Bool("write-baseline", false, "rewrite the -baseline file from the current findings and exit clean")
	allowsOut := flags.String("allows", "", "write the //bgplint:allow inventory as a markdown table to this file ('-' for stdout)")
	cacheDir := flags.String("cache", "", "directory for incremental runs: replay cached findings when no input file changed")
	budget := flags.Duration("budget", 0, "fail if the uncached analysis takes longer than this wall-clock duration")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: bgplint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress a finding with `//bgplint:allow(<analyzer>) reason=<justification>`\non the offending line or the line above it. The reason is mandatory.\n")
		fmt.Fprintf(stderr, "\nFlags:\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	absDir, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "bgplint: %v\n", err)
		return ExitError
	}
	rel := func(file string) string {
		if r, err := filepath.Rel(absDir, file); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(file)
	}

	diags, inventory, cached, elapsed, code := runOrReplay(*dir, patterns, *cacheDir, stderr)
	if code != ExitClean {
		return code
	}

	if *allowsOut != "" {
		for i := range inventory {
			inventory[i].File = rel(inventory[i].File)
		}
		if err := writeAllowInventory(*allowsOut, inventory, stdout); err != nil {
			fmt.Fprintf(stderr, "bgplint: %v\n", err)
			return ExitError
		}
	}

	// Baseline partitioning: matched findings stay visible (marked),
	// new findings and stale ledger entries fail.
	var stale []BaselineEntry
	failing := diags
	if *baselinePath != "" && !*writeBaseline {
		base, err := LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "bgplint: %v\n", err)
			return ExitError
		}
		var matched []Diagnostic
		failing, matched, stale = DiffBaseline(base, diags, rel)
		diags = append(failing, matched...)
		sortDiagnostics(diags)
	}
	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintf(stderr, "bgplint: -write-baseline requires -baseline <file>\n")
			return ExitError
		}
		var prev *Baseline
		if b, err := LoadBaseline(*baselinePath); err == nil {
			prev = b
		}
		if err := WriteBaseline(*baselinePath, BuildBaseline(diags, prev, rel)); err != nil {
			fmt.Fprintf(stderr, "bgplint: %v\n", err)
			return ExitError
		}
		fmt.Fprintf(stderr, "bgplint: wrote %s (%d finding(s) audited)\n", *baselinePath, len(diags))
		return ExitClean
	}

	switch {
	case *sarifOut:
		if err := writeSARIF(stdout, diags, rel); err != nil {
			fmt.Fprintf(stderr, "bgplint: %v\n", err)
			return ExitError
		}
	case *jsonOut:
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:      d.Position.Filename,
				Line:      d.Position.Line,
				Column:    d.Position.Column,
				Analyzer:  d.Analyzer,
				Message:   d.Message,
				Baselined: d.Baselined,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "bgplint: %v\n", err)
			return ExitError
		}
	default:
		for _, d := range diags {
			if d.Baselined {
				fmt.Fprintf(stdout, "%s [baselined]\n", d.String())
			} else {
				fmt.Fprintln(stdout, d.String())
			}
		}
	}

	exit := ExitClean
	if len(failing) > 0 {
		fmt.Fprintf(stderr, "bgplint: %d new finding(s)\n", len(failing))
		exit = ExitFindings
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "bgplint: stale baseline entry: %s: %s: %s (x%d) — finding is gone, remove it from the baseline\n",
			e.File, e.Analyzer, e.Message, e.Count)
		exit = ExitFindings
	}
	if *budget > 0 && !cached && elapsed > *budget {
		fmt.Fprintf(stderr, "bgplint: analysis took %s, over the %s budget\n", elapsed.Round(time.Millisecond), *budget)
		if exit == ExitClean {
			exit = ExitFindings
		}
	}
	return exit
}

// cachedRun is the replayable result of one full analysis, keyed by the
// source digest.
type cachedRun struct {
	Digest    string           `json:"digest"`
	Diags     []jsonDiagnostic `json:"diags"`
	Inventory []AllowEntry     `json:"inventory"`
}

// runOrReplay performs the load+analyze step, or replays a cached
// result when cacheDir is set and the source digest matches. The
// returned elapsed duration covers only real (uncached) analysis.
func runOrReplay(dir string, patterns []string, cacheDir string, stderr io.Writer) (diags []Diagnostic, inventory []AllowEntry, cached bool, elapsed time.Duration, code int) {
	var digest, cachePath string
	if cacheDir != "" {
		var err error
		digest, err = SourceDigest(dir, patterns)
		if err != nil {
			fmt.Fprintf(stderr, "bgplint: %v\n", err)
			return nil, nil, false, 0, ExitError
		}
		cachePath = filepath.Join(cacheDir, "bgplint.json")
		if data, err := os.ReadFile(cachePath); err == nil {
			var run cachedRun
			if json.Unmarshal(data, &run) == nil && run.Digest == digest {
				for _, d := range run.Diags {
					diags = append(diags, d.toDiagnostic())
				}
				return diags, run.Inventory, true, 0, ExitClean
			}
		}
	}

	start := time.Now()
	pkgs, err := Load(dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "bgplint: %v\n", err)
		return nil, nil, false, 0, ExitError
	}
	diags, err = RunAnalyzers(pkgs, DefaultConfig(), Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "bgplint: %v\n", err)
		return nil, nil, false, 0, ExitError
	}
	inventory = CollectAllowInventory(pkgs, func(s string) string { return s })
	elapsed = time.Since(start)

	if cachePath != "" {
		run := cachedRun{Digest: digest, Inventory: inventory}
		for _, d := range diags {
			run.Diags = append(run.Diags, jsonDiagnostic{
				File: d.Position.Filename, Line: d.Position.Line, Column: d.Position.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		if data, err := json.Marshal(run); err == nil {
			if err := os.MkdirAll(cacheDir, 0o755); err == nil {
				_ = os.WriteFile(cachePath, data, 0o644)
			}
		}
	}
	return diags, inventory, false, elapsed, ExitClean
}

// toDiagnostic rebuilds a Diagnostic from its cached form.
func (j jsonDiagnostic) toDiagnostic() Diagnostic {
	d := Diagnostic{Analyzer: j.Analyzer, Message: j.Message}
	d.Position.Filename = j.File
	d.Position.Line = j.Line
	d.Position.Column = j.Column
	return d
}

// writeAllowInventory renders the suppression inventory as the markdown
// table embedded in the docs.
func writeAllowInventory(path string, entries []AllowEntry, stdout io.Writer) error {
	var b strings.Builder
	b.WriteString("# bgplint suppression inventory\n\n")
	b.WriteString("Every `//bgplint:allow` directive in the tree, with its mandatory\n")
	b.WriteString("audit reason. Generated by `make lint-allows`; do not edit by hand.\n\n")
	b.WriteString("| Location | Analyzers | Reason |\n")
	b.WriteString("| --- | --- | --- |\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "| `%s:%d` | %s | %s |\n", e.File, e.Line, strings.Join(e.Analyzers, ", "), e.Reason)
	}
	if path == "-" {
		_, err := io.WriteString(stdout, b.String())
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
