package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
)

// Exit codes for Main, mirroring the convention of go vet: clean, has
// findings, failed to even load.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// jsonDiagnostic is the stable machine-readable form emitted by -json.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Main implements the bgplint command: load the requested packages,
// run every analyzer, print findings, and return a process exit code.
// It is a plain function over writers so the regression tests can call
// it in-process and assert on exit codes and output.
func Main(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("bgplint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	list := flags.Bool("list", false, "list available analyzers and exit")
	dir := flags.String("C", ".", "directory to resolve packages from")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: bgplint [-json] [-C dir] [packages]\n\nAnalyzers:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress a finding with `//lint:allow <analyzer> <justification>`\non the offending line or the line above it.\n")
	}
	if err := flags.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "bgplint: %v\n", err)
		return ExitError
	}
	diags := RunAnalyzers(pkgs, DefaultConfig(), Analyzers())

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Column:   d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "bgplint: %v\n", err)
			return ExitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}

	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "bgplint: %d finding(s)\n", len(diags))
		}
		return ExitFindings
	}
	return ExitClean
}
