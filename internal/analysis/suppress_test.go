package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestParseAllow pins the directive grammar: every malformed shape must
// come back with a human-readable error, never a silently-broken
// directive.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text      string
		analyzers []string
		reason    string
		errSubstr string // "" = must parse
	}{
		{text: "bgplint:allow(detclock) reason=fixture clock", analyzers: []string{"detclock"}, reason: "fixture clock"},
		{text: "bgplint:allow(detclock,errdrop) reason=two at once", analyzers: []string{"detclock", "errdrop"}, reason: "two at once"},
		{text: "bgplint:allow( detclock , errdrop ) reason=spaces ok", analyzers: []string{"detclock", "errdrop"}, reason: "spaces ok"},
		{text: "bgplint:allow detclock reason=x", errSubstr: "expected (<analyzer>"},
		{text: "bgplint:allow(detclock reason=x", errSubstr: "missing closing parenthesis"},
		{text: "bgplint:allow() reason=x", errSubstr: "empty analyzer list"},
		{text: "bgplint:allow(detclock)", errSubstr: "requires a reason"},
		{text: "bgplint:allow(detclock) because it is fine", errSubstr: "requires a reason"},
		{text: "bgplint:allow(detclock) reason=", errSubstr: "empty reason"},
		{text: "bgplint:allow(detclock) reason=   ", errSubstr: "empty reason"},
	}
	for _, c := range cases {
		d, errMsg := parseAllow(c.text)
		if c.errSubstr != "" {
			if errMsg == "" {
				t.Errorf("parseAllow(%q) parsed; want error containing %q", c.text, c.errSubstr)
			} else if !strings.Contains(errMsg, c.errSubstr) {
				t.Errorf("parseAllow(%q) error %q, want substring %q", c.text, errMsg, c.errSubstr)
			}
			continue
		}
		if errMsg != "" {
			t.Errorf("parseAllow(%q) failed: %s", c.text, errMsg)
			continue
		}
		if got := strings.Join(d.analyzers, ","); got != strings.Join(c.analyzers, ",") {
			t.Errorf("parseAllow(%q) analyzers = %s, want %s", c.text, got, strings.Join(c.analyzers, ","))
		}
		if d.reason != c.reason {
			t.Errorf("parseAllow(%q) reason = %q, want %q", c.text, d.reason, c.reason)
		}
	}
}

// parsePackage builds the minimal Package collectAllows needs from one
// source string.
func parsePackage(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow_test_input.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	return &Package{ImportPath: "test/suppress", Fset: fset, Files: []*ast.File{f}}
}

// TestCollectAllowsRejects pins the loud-failure contract: legacy
// syntax, unknown analyzers, and missing reasons each produce a driver
// finding and register no suppression.
func TestCollectAllowsRejects(t *testing.T) {
	src := `package p

func f() {
	//lint:allow detclock old style
	_ = 1
	//bgplint:allow(nosuchanalyzer) reason=typo in the name
	_ = 2
	//bgplint:allow(detclock)
	_ = 3
	//bgplint:allow(detclock) reason=the one valid directive
	_ = 4
}
`
	pkg := parsePackage(t, src)
	known := map[string]bool{"detclock": true}
	var reports []string
	set := collectAllows(pkg, known, func(pos token.Position, format string, args ...any) {
		reports = append(reports, fmt.Sprintf("%d: ", pos.Line)+fmt.Sprintf(format, args...))
	})

	wantReports := []string{
		"legacy //lint:allow directive",
		`unknown analyzer "nosuchanalyzer"`,
		"requires a reason",
	}
	if len(reports) != len(wantReports) {
		t.Fatalf("got %d reports, want %d:\n%s", len(reports), len(wantReports), strings.Join(reports, "\n"))
	}
	for i, substr := range wantReports {
		if !strings.Contains(reports[i], substr) {
			t.Errorf("report %d = %q, want substring %q", i, reports[i], substr)
		}
	}

	// Only the valid directive made it in, covering its line and the next.
	if len(set.all) != 1 {
		t.Fatalf("registered %d directives, want 1", len(set.all))
	}
	line := set.all[0].pos.Line
	if !set.suppress("detclock", "allow_test_input.go", line+1) {
		t.Error("valid directive does not suppress on the following line")
	}
	if set.suppress("detclock", "allow_test_input.go", line+2) {
		t.Error("directive suppresses two lines below; coverage must stop at line+1")
	}
	if set.suppress("errdrop", "allow_test_input.go", line+1) {
		t.Error("directive suppresses an analyzer it does not name")
	}
}

// TestStaleAllows pins the stale contract: a directive that suppressed
// nothing is itself a finding; a used one is not.
func TestStaleAllows(t *testing.T) {
	src := `package p

func f() {
	//bgplint:allow(detclock) reason=will be used
	_ = 1
	//bgplint:allow(errdrop) reason=will be stale
	_ = 2
}
`
	pkg := parsePackage(t, src)
	known := map[string]bool{"detclock": true, "errdrop": true}
	set := collectAllows(pkg, known, func(token.Position, string, ...any) {
		t.Error("unexpected report on valid directives")
	})
	usedLine := set.all[0].pos.Line
	if !set.suppress("detclock", "allow_test_input.go", usedLine) {
		t.Fatal("directive failed to suppress on its own line")
	}

	stale := staleAllows(set)
	if len(stale) != 1 {
		t.Fatalf("got %d stale diagnostics, want 1", len(stale))
	}
	d := stale[0]
	if d.Analyzer != driverName {
		t.Errorf("stale diagnostic analyzer = %s, want %s", d.Analyzer, driverName)
	}
	if !strings.Contains(d.Message, "stale //bgplint:allow(errdrop)") {
		t.Errorf("stale diagnostic does not name the directive: %s", d.Message)
	}
}

// TestCollectAllowInventory pins the docs-inventory shape: valid
// directives only, position-sorted, with file paths mapped through rel.
func TestCollectAllowInventory(t *testing.T) {
	src := `package p

func f() {
	//bgplint:allow(errdrop) reason=second by line
	_ = 1
}

func g() {
	//bgplint:allow(detclock,errdrop) reason=first declared, later line
	_ = 2
	//bgplint:allow(broken
	_ = 3
}
`
	pkg := parsePackage(t, src)
	entries := CollectAllowInventory([]*Package{pkg}, func(s string) string { return "rel/" + s })
	if len(entries) != 2 {
		t.Fatalf("got %d inventory entries, want 2 (malformed directives excluded)", len(entries))
	}
	if entries[0].Line >= entries[1].Line {
		t.Errorf("inventory not sorted by line: %d then %d", entries[0].Line, entries[1].Line)
	}
	if entries[0].File != "rel/allow_test_input.go" {
		t.Errorf("rel mapping not applied: %s", entries[0].File)
	}
	if entries[0].Reason != "second by line" {
		t.Errorf("entry 0 reason = %q", entries[0].Reason)
	}
	if got := strings.Join(entries[1].Analyzers, ","); got != "detclock,errdrop" {
		t.Errorf("entry 1 analyzers = %s", got)
	}
}
