package analysis

import "go/types"

// FactStore carries analyzer facts across packages within one
// RunAnalyzers invocation. Packages are analyzed in dependency order
// (Load returns them that way), so an analyzer visiting
// internal/core can read facts an earlier pass exported while visiting
// internal/session — this is how refbalance knows that
// session.SendShared consumes its payload argument, and how readpurity
// knows that a netaddr helper is pure, without re-walking the other
// package's bodies.
//
// Facts are keyed by (analyzer, types.Object, key). Object identity is
// stable across packages because the whole load shares one type-checker
// universe: the *types.Func an importing package resolves is the same
// object the defining package exported the fact under.
type FactStore struct {
	m map[factKey]any
}

type factKey struct {
	analyzer string
	obj      types.Object
	key      string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]any{}}
}

// ExportObjectFact records a fact about obj under the calling
// analyzer's namespace. Later passes (same analyzer, any package)
// read it back with ObjectFact.
func (p *Pass) ExportObjectFact(obj types.Object, key string, val any) {
	if obj == nil || p.Facts == nil {
		return
	}
	p.Facts.m[factKey{p.Analyzer.Name, obj, key}] = val
}

// ObjectFact reads a fact exported for obj by this analyzer in this or
// an earlier (dependency) package pass.
func (p *Pass) ObjectFact(obj types.Object, key string) (any, bool) {
	if obj == nil || p.Facts == nil {
		return nil, false
	}
	v, ok := p.Facts.m[factKey{p.Analyzer.Name, obj, key}]
	return v, ok
}
