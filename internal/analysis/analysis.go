// Package analysis is bgpbench's project-invariant static analyzer
// suite. It is built on the standard library only (go/parser, go/ast,
// go/types, go/importer, with package discovery driven by `go list
// -json`): no golang.org/x/tools dependency, so the lint gate needs
// nothing beyond the Go toolchain already required to build the repo.
//
// The generic vet checks catch generic bugs; the analyzers here encode
// invariants specific to this codebase that vet cannot know about:
//
//   - detclock: deterministic packages (netem, platform, damping, the
//     bench conformance path) must not read the wall clock or use global
//     math/rand state outside the pluggable Clock implementations.
//   - pooledbuf: values obtained from a sync.Pool must not escape the
//     function that obtained them except through an audited ownership
//     transfer, and every Get needs a matching Put.
//   - internedattr: interned *wire.PathAttrs are compared by pointer and
//     never mutated after interning.
//   - lockdiscipline: no blocking I/O while holding the router mutex.
//   - errdrop: no silently discarded error results in the protocol
//     packages (wire, session, fsm), stricter than vet's unusedresult.
//   - snapshotimmut: published FIB snapshots are immutable; only the
//     audited builder functions may write to snapshot internals.
//   - afifamily: switches over the address-family enum cover every
//     family (or carry a default), and the IPv4-truncating Addr.V4
//     accessor does not leak outside its package unaudited.
//
// Findings can be suppressed line-by-line with a justified allow
// comment:
//
//	//lint:allow <analyzer> <justification>
//
// placed on the offending line or the line directly above it. The
// justification text is mandatory by convention (reviewed, not
// enforced); an allow comment without one should not survive review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer name, a position, and a
// message.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Config   *Config

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in presentation order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetClock,
		PooledBuf,
		InternedAttr,
		LockDiscipline,
		ErrDrop,
		SnapshotImmut,
		AFIFamily,
	}
}

// AnalyzerByName finds one analyzer by name.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// RunAnalyzers applies the analyzers to every non-dependency package and
// returns the surviving findings (allow-comment suppressed ones removed)
// sorted by position.
func RunAnalyzers(pkgs []*Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		allows := collectAllows(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Config: cfg}
			a.Run(pass)
			for _, d := range pass.diags {
				if allows.allowed(a.Name, d.Position.Filename, d.Position.Line) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowKey identifies one suppressed (file, line) for one analyzer.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

type allowSet map[allowKey]bool

func (s allowSet) allowed(analyzer, file string, line int) bool {
	return s[allowKey{analyzer, file, line}]
}

// collectAllows scans a package's comments for //lint:allow directives.
// A directive suppresses findings on its own line and on the line
// directly below it (the "comment above the statement" form). Several
// analyzers may be named, comma-separated; everything after the names is
// the human justification.
func collectAllows(pkg *Package) allowSet {
	allows := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					allows[allowKey{name, pos.Filename, pos.Line}] = true
					allows[allowKey{name, pos.Filename, pos.Line + 1}] = true
				}
			}
		}
	}
	return allows
}

// inspectFiles runs fn over every node of every file in the package.
func inspectFiles(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
