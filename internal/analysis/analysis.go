// Package analysis is bgpbench's project-invariant static analyzer
// suite (bgplint). It is built on the standard library only (go/parser,
// go/ast, go/types, go/importer, with package discovery driven by `go
// list -json`): no golang.org/x/tools dependency, so the lint gate
// needs nothing beyond the Go toolchain already required to build the
// repo.
//
// v2 is flow-sensitive: the driver builds intraprocedural control-flow
// graphs (internal/analysis/cfg) on demand and propagates analyzer
// facts across packages in dependency order, so an analyzer can follow
// a refcounted payload from internal/session into internal/core, or a
// purity obligation from internal/fib into its dependencies.
//
// The generic vet checks catch generic bugs; the analyzers here encode
// invariants specific to this codebase that vet cannot know about:
//
//   - detclock: deterministic packages (netem, platform, damping, the
//     bench conformance path) must not read the wall clock or use global
//     math/rand state outside the pluggable Clock implementations.
//   - pooledbuf: values obtained from a sync.Pool must not escape the
//     function that obtained them except through an audited ownership
//     transfer, and every Get needs a matching Put.
//   - internedattr: interned *wire.PathAttrs are compared by pointer and
//     never mutated after interning.
//   - lockdiscipline: no blocking I/O while holding the router mutex.
//   - errdrop: no silently discarded error results in the protocol
//     packages (wire, session, fsm), stricter than vet's unusedresult.
//   - snapshotimmut: published FIB snapshots are immutable; only the
//     audited builder functions may write to snapshot internals.
//   - afifamily: switches over the address-family enum cover every
//     family (or carry a default), and the IPv4-truncating Addr.V4
//     accessor does not leak outside its package unaudited.
//   - refbalance: path-sensitive acquire/release pairing for refcounted
//     resources (session.SharedPayload fan-out references, the marshal
//     cache's pooled slab arenas): every acquire must reach a release
//     or an ownership transfer on all normal paths, no double release,
//     no use after the final release.
//   - shardowner: values of worker-owned types (annotated
//     //bgplint:owned-by in the type's doc comment) must stay on their
//     shard worker: escaping into a goroutine closure, a channel send,
//     or an interface is a finding.
//   - readpurity: the configured wait-free read entrypoints (the FIB
//     snapshot lookup/metrics/walk path) must not acquire locks,
//     allocate from pools, write shared state, or touch channels —
//     checked transitively through callees via cross-package facts.
//
// Findings can be suppressed line-by-line with a reasoned allow
// directive (see suppress.go):
//
//	//bgplint:allow(<analyzer>[,<analyzer>...]) reason=<justification>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory and enforced; a directive that suppresses nothing
// is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"bgpbench/internal/analysis/cfg"
)

// Diagnostic is one finding: an analyzer name, a position, and a
// message.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
	// Baselined marks a finding matched by the committed baseline:
	// audited, visible, not failing.
	Baselined bool
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the pass; a non-nil error aborts
// the whole run (an analyzer bug, not a finding).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one package, plus the shared
// cross-package fact store and the CFG cache.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Config   *Config
	Facts    *FactStore

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// CFG returns the control-flow graph for a function body, built once
// per package and shared by every analyzer in the run.
func (p *Pass) CFG(body *ast.BlockStmt) *cfg.CFG {
	if p.Pkg.cfgs == nil {
		p.Pkg.cfgs = map[*ast.BlockStmt]*cfg.CFG{}
	}
	if g, ok := p.Pkg.cfgs[body]; ok {
		return g
	}
	g := cfg.New(body)
	p.Pkg.cfgs[body] = g
	return g
}

// Analyzers returns the full suite in presentation order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetClock,
		PooledBuf,
		InternedAttr,
		LockDiscipline,
		ErrDrop,
		SnapshotImmut,
		AFIFamily,
		RefBalance,
		ShardOwner,
		ReadPurity,
	}
}

// AnalyzerByName finds one analyzer by name.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// analyzerNames returns the known-name set used to validate allow
// directives (the driver's own pseudo-analyzer included: baseline
// entries may audit directive findings too).
func analyzerNames(analyzers []*Analyzer) map[string]bool {
	m := map[string]bool{driverName: true}
	for _, a := range analyzers {
		m[a.Name] = true
	}
	return m
}

// RunAnalyzers applies the analyzers to the loaded packages in
// dependency order and returns the surviving findings (allow-directive
// suppressed ones removed) sorted by position. Dependency-only packages
// are analyzed too — that is what primes the cross-package fact store —
// but their diagnostics are dropped: only the requested packages gate.
func RunAnalyzers(pkgs []*Package, cfg *Config, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFactStore()
	known := analyzerNames(analyzers)
	var out []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		allows := collectAllows(pkg, known, func(pos token.Position, format string, args ...any) {
			pkgDiags = append(pkgDiags, Diagnostic{
				Analyzer: driverName,
				Position: pos,
				Message:  fmt.Sprintf(format, args...),
			})
		})
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Config: cfg, Facts: facts}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				if allows.suppress(a.Name, d.Position.Filename, d.Position.Line) {
					continue
				}
				pkgDiags = append(pkgDiags, d)
			}
		}
		pkgDiags = append(pkgDiags, staleAllows(allows)...)
		if !pkg.DepOnly {
			out = append(out, pkgDiags...)
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// inspectFiles runs fn over every node of every file in the package.
func inspectFiles(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
