package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags silently discarded error results in the protocol
// packages. It is stricter than vet's unusedresult: every call whose
// (last) result is an error must consume it, and explicit `_ =` drops
// are findings too unless annotated with //bgplint:allow(errdrop) and a
// justification. Malformed-message and transport errors in wire,
// session, and fsm are exactly the faults the netem harness injects;
// dropping one on the floor turns an injected fault into silent state
// divergence instead of a visible session event.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "no discarded error results in the protocol packages",
	Run:  func(p *Pass) error { runErrDrop(p); return nil },
}

func runErrDrop(pass *Pass) {
	inScope := false
	for _, p := range pass.Config.ErrDrop.Packages {
		if p == pass.Pkg.ImportPath {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	info := pass.Pkg.Info
	allowed := stringSet(pass.Config.ErrDrop.AllowCallees)
	// dropped reports whether the call discards a meaningful error: its
	// last result is an error and the callee is not on the never-fails
	// exemption list (strings.Builder and friends).
	dropped := func(call *ast.CallExpr) bool {
		if !lastResultIsError(info, call) {
			return false
		}
		if fn := calleeFunc(info, call); fn != nil && allowed[fn.FullName()] {
			return false
		}
		return true
	}

	inspectFiles(pass.Pkg, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && dropped(call) {
				pass.Reportf(call.Pos(), "error result of %s is discarded", callName(call))
			}
		case *ast.GoStmt:
			if dropped(stmt.Call) {
				pass.Reportf(stmt.Pos(), "error result of go %s is discarded", callName(stmt.Call))
			}
		case *ast.DeferStmt:
			if dropped(stmt.Call) {
				pass.Reportf(stmt.Pos(), "error result of defer %s is discarded", callName(stmt.Call))
			}
		case *ast.AssignStmt:
			reportBlankErrAssign(pass, stmt, allowed)
		}
		return true
	})
}

// reportBlankErrAssign flags assignments of an error value to the blank
// identifier, both the `_ = f()` and the `v, _ := g()` forms.
func reportBlankErrAssign(pass *Pass, stmt *ast.AssignStmt, allowed map[string]bool) {
	info := pass.Pkg.Info
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	allowedCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(info, call)
		return fn != nil && allowed[fn.FullName()]
	}

	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		// Multi-value form: x, _ = f(). Map blank positions onto the
		// call's result tuple.
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		if fn := calleeFunc(info, call); fn != nil && allowed[fn.FullName()] {
			return
		}
		tv, ok := info.Types[call]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range stmt.Lhs {
			if i >= tuple.Len() {
				break
			}
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s assigned to the blank identifier", callName(call))
			}
		}
		return
	}

	// One-to-one form: _ = expr (including parallel assignment).
	for i, lhs := range stmt.Lhs {
		if !isBlank(lhs) || i >= len(stmt.Rhs) {
			continue
		}
		if tv, ok := info.Types[stmt.Rhs[i]]; ok && isErrorType(tv.Type) && !allowedCall(stmt.Rhs[i]) {
			pass.Reportf(lhs.Pos(), "error value assigned to the blank identifier")
		}
	}
}
