package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function values, built-ins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// namedTypeName returns the qualified "pkgpath.Name" of t after
// stripping one level of pointer and any alias, or "" for unnamed types.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// isPointerTo reports whether t is a pointer whose element's qualified
// name is name.
func isPointerTo(t types.Type, name string) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	return namedTypeName(p.Elem()) == name
}

// lastResultIsError reports whether the call's result (or last tuple
// element) has type error.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		return isErrorType(t.At(t.Len() - 1).Type())
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// callName renders the called expression for diagnostics ("conn.Close",
// "fmt.Fprintf").
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// enclosedBy reports whether the package config scopes the given file:
// an empty file list means the whole package.
func fileInScope(files []string, filename string) bool {
	if len(files) == 0 {
		return true
	}
	base := filepath.Base(filename)
	for _, f := range files {
		if f == base {
			return true
		}
	}
	return false
}

// stringSet builds a membership set.
func stringSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

// funcDecls maps each declared function object of the package to its
// declaration.
func funcDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd
			}
		}
	}
	return m
}

// identObj resolves an expression to the variable it names, unwrapping
// parentheses; nil when the expression is not a plain identifier.
func identObj(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}

// usesVar reports whether the subtree mentions any variable in vars.
func usesVar(info *types.Info, root ast.Node, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// qualifiedFieldOwner returns "pkgpath.TypeName.fieldName" for the field
// selected by sel, resolving through the selection's receiver type; ""
// when sel does not select a struct field.
func qualifiedFieldOwner(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	recv := namedTypeName(s.Recv())
	if recv == "" {
		return ""
	}
	return recv + "." + s.Obj().Name()
}

// hasSuffixPath reports whether path equals pattern or ends with
// "/"+pattern (convenience for matching import paths regardless of the
// module name).
func hasSuffixPath(path, pattern string) bool {
	return path == pattern || strings.HasSuffix(path, "/"+pattern)
}
