package analysis

// Config scopes the analyzers to the repo's invariants. Everything is
// data so the fixture tests can point the same analyzers at small
// synthetic packages; DefaultConfig returns the scopes enforced by the
// `make lint` gate.
type Config struct {
	Detclock DetclockConfig
	Interned InternedConfig
	Lock     LockConfig
	ErrDrop  ErrDropConfig
	Snapshot SnapshotConfig
	AFI      AFIConfig
	Ref      RefConfig
	Purity   PurityConfig
}

// RefConfig scopes the path-sensitive acquire/release pairing check
// (refbalance). All entries are fully-qualified functions in
// types.Func.FullName form.
type RefConfig struct {
	// Types are the qualified "pkgpath.TypeName" refcounted resource
	// types whose references the analyzer tracks (values are pointers to
	// these types).
	Types []string
	// Acquires return a counted reference the caller owns and must
	// balance on every path. Functions that forward an acquired
	// reference to their own caller are inferred automatically and do
	// not need listing.
	Acquires []string
	// Releases drop one reference of their receiver or argument.
	Releases []string
	// Transfers consume one reference of a tracked argument: ownership
	// moves to the callee on every path, including its failure paths.
	// Functions that release or transfer their parameter on all paths
	// are inferred automatically and do not need listing.
	Transfers []string
}

// PurityConfig scopes the wait-free read-path purity check
// (readpurity).
type PurityConfig struct {
	// Entrypoints are the fully-qualified functions
	// (types.Func.FullName form) forming the wait-free read surface.
	// They, and every module function they transitively call, must not
	// acquire locks, touch sync.Pool, use channels, spawn goroutines,
	// or write non-local state.
	Entrypoints []string
	// AllowCallees are fully-qualified functions audited as safe on the
	// read path even though the walker cannot prove it.
	AllowCallees []string
}

// DetclockConfig scopes the deterministic-clock check.
type DetclockConfig struct {
	// Packages maps an import path onto the file basenames to check; a
	// nil or empty list means every file in the package.
	Packages map[string][]string
	// AllowFuncs are fully-qualified functions (types.Func.FullName form)
	// allowed to touch the wall clock: the pluggable-clock
	// implementations themselves.
	AllowFuncs []string
}

// InternedConfig names the interned attribute types (qualified
// "pkgpath.TypeName") whose values must be compared by pointer and never
// mutated after interning.
type InternedConfig struct {
	Types []string
}

// LockConfig describes the router mutex and the calls considered
// blocking while it is held.
type LockConfig struct {
	// Mutexes are "pkgpath.TypeName.fieldName" descriptors of the
	// guarded mutex fields.
	Mutexes []string
	// Blocking are fully-qualified functions (types.Func.FullName form)
	// that may block on I/O or another goroutine's progress.
	Blocking []string
	// Allow are fully-qualified functions exempt from the walk (audited
	// by hand; the justification lives next to the config entry).
	Allow []string
}

// ErrDropConfig lists the import paths where discarding an error result
// is a finding.
type ErrDropConfig struct {
	Packages []string
	// AllowCallees are fully-qualified functions (types.Func.FullName
	// form) whose error result is documented to always be nil; dropping
	// it is not a finding.
	AllowCallees []string
}

// SnapshotConfig names the FIB snapshot types that are immutable once
// reachable from a published snapshot, and the builder functions allowed
// to write them (they only ever touch fresh, unpublished values).
type SnapshotConfig struct {
	// Types are qualified "pkgpath.TypeName" snapshot types.
	Types []string
	// Builders are fully-qualified functions (types.Func.FullName form)
	// exempt from the write check; each entry carries its justification.
	Builders []string
}

// AFIConfig scopes the address-family hygiene check (afifamily).
type AFIConfig struct {
	// Families maps the qualified "pkgpath.TypeName" of an
	// address-family enum onto the qualified names of its constants. A
	// switch over the type must cover every constant or carry a default
	// clause.
	Families map[string][]string
	// Truncating lists fully-qualified functions (types.Func.FullName
	// form) that collapse an address to its IPv4 bits. Calling one
	// outside the package that defines it is a finding unless the call
	// site carries an audited //bgplint:allow(afifamily) justification.
	Truncating []string
}

// fixturePrefix scopes the analyzers onto their own testdata packages:
// `go list ./...` never descends into testdata, so these entries are
// inert for the repo gate while letting the regression tests run the
// exact production configuration against the fixtures.
const fixturePrefix = "bgpbench/internal/analysis/testdata/src/"

// DefaultConfig returns the scopes the repo gate enforces.
func DefaultConfig() *Config {
	return &Config{
		Detclock: DetclockConfig{
			Packages: map[string][]string{
				// The fault-injection substrate: schedules are pure
				// functions of (profile, seed, name, attempt); wall time
				// may only enter through the Clock interface.
				"bgpbench/internal/netem": nil,
				// The modeled platform: replays are exactly reproducible.
				"bgpbench/internal/platform": nil,
				// Flap damping: penalty decay is driven by the pluggable
				// clock so tests can replay decision sequences.
				"bgpbench/internal/damping": nil,
				// Only the conformance path of bench is deterministic;
				// live.go measures wall-clock throughput by design.
				"bgpbench/internal/bench": {"conformance.go"},

				fixturePrefix + "detclock": nil,
			},
			AllowFuncs: []string{
				// The real-clock implementations behind the Clock
				// interface are the one sanctioned wall-time boundary.
				"bgpbench/internal/netem.NewRealClock",
				"(*bgpbench/internal/netem.realClock).Now",
				"(*bgpbench/internal/netem.realClock).Sleep",
				// damping.New defaults a nil clock to time.Now.
				"bgpbench/internal/damping.New",

				fixturePrefix + "detclock.NewRealClock",
			},
		},
		Interned: InternedConfig{
			Types: []string{
				"bgpbench/internal/wire.PathAttrs",

				fixturePrefix + "internedattr.PathAttrs",
			},
		},
		Lock: LockConfig{
			Mutexes: []string{
				"bgpbench/internal/core.Router.mu",

				fixturePrefix + "lockdiscipline.Router.mu",
			},
			Blocking: []string{
				"(net.Conn).Read",
				"(net.Conn).Write",
				"(*net.TCPConn).Read",
				"(*net.TCPConn).Write",
				"(*sync.WaitGroup).Wait",
				"(*sync.Cond).Wait",
				"time.Sleep",
				// Send blocks on outbox back-pressure; Stop waits up to
				// two seconds for the event loop.
				"(*bgpbench/internal/session.Session).Send",
				"(*bgpbench/internal/session.Session).Stop",
				// The wire writer pushes onto the TCP socket.
				"(*bgpbench/internal/wire.Writer).WriteMessage",
				"(*bgpbench/internal/wire.Writer).WriteMessageBuffered",
				"(*bgpbench/internal/wire.Writer).Flush",

				"(net.Conn).SetDeadline",
			},
			Allow: []string{
				fixturePrefix + "lockdiscipline.auditedHandoff",
			},
		},
		ErrDrop: ErrDropConfig{
			Packages: []string{
				"bgpbench/internal/wire",
				"bgpbench/internal/session",
				"bgpbench/internal/fsm",

				fixturePrefix + "errdrop",
			},
			AllowCallees: []string{
				// In-memory writers documented to always return a nil
				// error; their error results exist only to satisfy
				// io.Writer-shaped interfaces.
				"(*strings.Builder).Write",
				"(*strings.Builder).WriteByte",
				"(*strings.Builder).WriteRune",
				"(*strings.Builder).WriteString",
				"(*bytes.Buffer).Write",
				"(*bytes.Buffer).WriteByte",
				"(*bytes.Buffer).WriteRune",
				"(*bytes.Buffer).WriteString",
				"(hash.Hash).Write",
			},
		},
		Snapshot: SnapshotConfig{
			Types: []string{
				// The poptrie's share-on-snapshot structures: directory
				// pages, compiled chunks, the expanded short-route view,
				// and the published snapshot head itself.
				"bgpbench/internal/fib.rootPage",
				"bgpbench/internal/fib.popChunk",
				"bgpbench/internal/fib.shortView",
				"bgpbench/internal/fib.poptrieSnapshot",

				fixturePrefix + "snapshotimmut.Snapshot",
				fixturePrefix + "snapshotimmut.snapPage",
			},
			Builders: []string{
				// Snapshot fills the per-family slots of the snapshot it
				// just allocated, before publication.
				"(*bgpbench/internal/fib.Poptrie).Snapshot",
				// Chunk compilation only ever fills the freshly allocated
				// chunk it is building; published chunks are never passed
				// back in.
				"bgpbench/internal/fib.buildChunk",
				"(*bgpbench/internal/fib.popChunk).buildInto",
				// setChunk installs into a page it just allocated or
				// copied (the pageShared seal is cleared on copy).
				"(*bgpbench/internal/fib.rootPage).set",
				// The shortView write funnel: every caller goes through
				// ownShort first, which clones the view if a snapshot
				// still references it.
				"(*bgpbench/internal/fib.shortView).stamp",
				"(*bgpbench/internal/fib.shortView).rebuild",
				"(*bgpbench/internal/fib.shortView).setRoute",
				"(*bgpbench/internal/fib.shortView).appendRoute",
				"(*bgpbench/internal/fib.shortView).truncRoutes",
				"(*bgpbench/internal/fib.shortView).setExpanded",
				"(*bgpbench/internal/fib.shortView).appendRes",

				fixturePrefix + "snapshotimmut.buildPage",
			},
		},
		AFI: AFIConfig{
			Families: map[string][]string{
				"bgpbench/internal/netaddr.Family": {
					"bgpbench/internal/netaddr.FamilyV4",
					"bgpbench/internal/netaddr.FamilyV6",
				},
				fixturePrefix + "afifamily.Family": {
					fixturePrefix + "afifamily.FamilyV4",
					fixturePrefix + "afifamily.FamilyV6",
				},
			},
			Truncating: []string{
				"(bgpbench/internal/netaddr.Addr).V4",
				"(" + fixturePrefix + "afifamily.Addr).V4",
			},
		},
		Ref: RefConfig{
			Types: []string{
				// The fan-out payload: the creator sets refs to the
				// recipient count; every recipient path must consume
				// exactly one reference.
				"bgpbench/internal/session.SharedPayload",
				// The marshal cache's pooled 128 KiB arena: refs = carved
				// payloads + the cache's own open reference.
				"bgpbench/internal/core.payloadSlab",

				fixturePrefix + "refbalance.Payload",
			},
			Acquires: []string{
				"bgpbench/internal/session.NewSharedPayload",
				"(*bgpbench/internal/core.Router).getSlab",
				// payloadFor returns a payload carrying one extra caller
				// reference on top of the per-recipient ones.
				"(*bgpbench/internal/core.marshalCache).payloadFor",

				fixturePrefix + "refbalance.acquire",
				fixturePrefix + "refbalance.acquireErr",
			},
			Releases: []string{
				"(*bgpbench/internal/session.SharedPayload).Release",
				"(*bgpbench/internal/core.payloadSlab).releaseRef",

				"(*" + fixturePrefix + "refbalance.Payload).Release",
			},
			Transfers: []string{
				// Each of these consumes one reference even when it fails:
				// pushShared releases on overflow-drop, SendShared releases
				// on a closed session, insert hands the reference to the
				// cache eviction path.
				"(*bgpbench/internal/core.outQueue).pushShared",
				"(*bgpbench/internal/session.Session).SendShared",
				"(*bgpbench/internal/core.marshalCache).insert",

				fixturePrefix + "refbalance.send",
			},
		},
		Purity: PurityConfig{
			Entrypoints: []string{
				// The epoch-published FIB read surface: wait-free by
				// contract (DESIGN §4), safe to call from every worker at
				// full lookup rate.
				"(*bgpbench/internal/fib.SnapshotTable).Lookup",
				"(*bgpbench/internal/fib.SnapshotTable).LookupExact",
				"(*bgpbench/internal/fib.SnapshotTable).Len",
				"(*bgpbench/internal/fib.SnapshotTable).Walk",
				"(*bgpbench/internal/fib.SnapshotTable).Updates",
				"(*bgpbench/internal/fib.SnapshotTable).Lookups",
				"(*bgpbench/internal/fib.SnapshotTable).BatchStats",
				"(*bgpbench/internal/fib.poptrieSnapshot).Lookup",
				"(*bgpbench/internal/fib.poptrieSnapshot).LookupExact",
				"(*bgpbench/internal/fib.poptrieSnapshot).Len",
				"(*bgpbench/internal/fib.poptrieSnapshot).Walk",

				fixturePrefix + "readpurity.Lookup",
				fixturePrefix + "readpurity.CleanLookup",
			},
			AllowCallees: nil,
		},
	}
}
