package dataplane

import (
	"sync"
	"sync/atomic"
	"time"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/packet"
)

// Source generates synthetic IPv4 cross-traffic at a target packet rate
// and injects it into a Plane — the live analogue of the paper's
// cross-traffic generator. Rate control uses a 1 ms token loop, so rates
// below ~1000 pps quantize; the benchmark's interesting rates are far
// above that.
type Source struct {
	plane    *Plane
	pps      float64
	pktBytes int

	stop      chan struct{}
	wg        sync.WaitGroup
	generated atomic.Uint64
	accepted  atomic.Uint64
}

// NewSource builds a source targeting pps packets/second of pktBytes-byte
// packets (default 64 payload bytes when <= packet.MinHeaderLen).
func NewSource(p *Plane, pps float64, pktBytes int) *Source {
	if pktBytes <= packet.MinHeaderLen {
		pktBytes = packet.MinHeaderLen + 64
	}
	return &Source{
		plane:    p,
		pps:      pps,
		pktBytes: pktBytes,
		stop:     make(chan struct{}),
	}
}

// Start launches the generator goroutine.
func (s *Source) Start() {
	s.wg.Add(1)
	go s.run()
}

// Stop halts generation and waits for the goroutine.
func (s *Source) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
}

// Generated returns the number of packets offered to the plane.
func (s *Source) Generated() uint64 { return s.generated.Load() }

// Accepted returns the number the plane's ingress accepted.
func (s *Source) Accepted() uint64 { return s.accepted.Load() }

func (s *Source) run() {
	defer s.wg.Done()
	const tick = time.Millisecond
	perTick := s.pps * tick.Seconds()
	payload := make([]byte, s.pktBytes-packet.MinHeaderLen)
	credit := 0.0
	x := uint32(0x9E3779B9)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		credit += perTick
		for credit >= 1 {
			credit--
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			pkt := packet.Marshal(packet.Header{
				TTL:      16,
				Protocol: 17,
				Src:      netaddr.AddrFrom4(172, 16, byte(x>>8), byte(x)),
				Dst:      netaddr.AddrFromV4(x),
			}, payload)
			s.generated.Add(1)
			if s.plane.Inject(pkt) {
				s.accepted.Add(1)
			}
		}
	}
}
