// Package dataplane implements a parallel multi-queue forwarding plane:
// a pool of worker goroutines — the analogue of the IXP2400's packet
// processors — each draining a bounded ingress queue and running the
// RFC 1812 forwarding path over a shared FIB. Packets hash to workers by
// destination (flow affinity), and queue overflow drops packets exactly
// as a saturated line card would. The crosstraffic example and the live
// benchmark's forwarding-load generator are built on it.
package dataplane

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bgpbench/internal/fib"
	"bgpbench/internal/forward"
	"bgpbench/internal/packet"
)

// Config parameterizes the plane.
type Config struct {
	// Workers is the number of packet processors (default 4).
	Workers int
	// QueueDepth bounds each worker's ingress queue (default 1024).
	QueueDepth int
	// FIB is the shared forwarding table (required).
	FIB fib.Shared
	// Egress receives forwarded packets; nil discards.
	Egress forward.Egress
}

// Stats aggregates data-plane counters.
type Stats struct {
	Injected     uint64
	IngressDrops uint64 // dropped at a full ingress queue
	forward.Snapshot
}

// Plane is a running forwarding plane.
type Plane struct {
	cfg     Config
	eng     *forward.Engine
	queues  []chan []byte
	wg      sync.WaitGroup
	stopped atomic.Bool

	injected     atomic.Uint64
	ingressDrops atomic.Uint64
}

// New validates the configuration and builds a stopped plane.
func New(cfg Config) (*Plane, error) {
	if cfg.FIB == nil {
		return nil, fmt.Errorf("dataplane: FIB is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	p := &Plane{
		cfg:    cfg,
		eng:    forward.New(cfg.FIB, cfg.Egress),
		queues: make([]chan []byte, cfg.Workers),
	}
	for i := range p.queues {
		p.queues[i] = make(chan []byte, cfg.QueueDepth)
	}
	return p, nil
}

// Engine exposes the underlying forwarding engine (e.g. to register local
// addresses before Start).
func (p *Plane) Engine() *forward.Engine { return p.eng }

// Start launches the workers.
func (p *Plane) Start() {
	for i := range p.queues {
		p.wg.Add(1)
		go p.worker(p.queues[i])
	}
}

func (p *Plane) worker(q chan []byte) {
	defer p.wg.Done()
	for pkt := range q {
		p.eng.Process(pkt)
	}
}

// Stop drains and terminates the workers. Inject after Stop returns false.
func (p *Plane) Stop() {
	if !p.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, q := range p.queues {
		close(q)
	}
	p.wg.Wait()
}

// Inject offers one packet to the plane. It hashes the destination to a
// worker (flow affinity keeps a flow in order) and reports false when the
// packet was dropped at ingress (queue full or plane stopped). The buffer
// is owned by the plane after a true return.
func (p *Plane) Inject(pkt []byte) bool {
	if p.stopped.Load() || len(pkt) < packet.MinHeaderLen {
		p.ingressDrops.Add(1)
		return false
	}
	p.injected.Add(1)
	dst := uint32(packet.Dst(pkt).Hi() >> 32)
	// Fibonacci hashing spreads sequential destinations.
	idx := int((dst * 2654435761) % uint32(len(p.queues)))
	select {
	case p.queues[idx] <- pkt:
		return true
	default:
		p.ingressDrops.Add(1)
		return false
	}
}

// Stats snapshots all counters.
func (p *Plane) Stats() Stats {
	return Stats{
		Injected:     p.injected.Load(),
		IngressDrops: p.ingressDrops.Load(),
		Snapshot:     p.eng.Stats.Snapshot(),
	}
}
