package dataplane

import (
	"sync"
	"testing"
	"time"

	"bgpbench/internal/fib"
	"bgpbench/internal/forward"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/packet"
)

func testFIB() *fib.Table {
	t := fib.NewTable(fib.NewPatricia())
	t.Insert(netaddr.MustParsePrefix("10.0.0.0/8"), fib.Entry{Port: 1, NextHop: netaddr.MustParseAddr("192.0.2.1")})
	t.Insert(netaddr.MustParsePrefix("172.16.0.0/12"), fib.Entry{Port: 2, NextHop: netaddr.MustParseAddr("192.0.2.2")})
	return t
}

func mkPkt(dst string, ttl uint8) []byte {
	return packet.Marshal(packet.Header{
		TTL: ttl, Protocol: 17,
		Src: netaddr.MustParseAddr("198.51.100.1"),
		Dst: netaddr.MustParseAddr(dst),
	}, []byte("data"))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil FIB accepted")
	}
	p, err := New(Config{FIB: testFIB()})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.queues) != 4 || cap(p.queues[0]) != 1024 {
		t.Fatal("defaults not applied")
	}
}

func TestParallelForwardingAccountsAllPackets(t *testing.T) {
	var mu sync.Mutex
	ports := map[int]int{}
	p, err := New(Config{
		Workers: 4, QueueDepth: 4096, FIB: testFIB(),
		Egress: forward.EgressFunc(func(port int, _ netaddr.Addr, _ []byte) {
			mu.Lock()
			ports[port]++
			mu.Unlock()
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()

	const n = 10000
	accepted := 0
	for i := 0; i < n; i++ {
		var pkt []byte
		switch i % 3 {
		case 0:
			pkt = mkPkt("10.1.2.3", 64)
		case 1:
			pkt = mkPkt("172.16.5.5", 64)
		default:
			pkt = mkPkt("203.0.113.1", 64) // no route
		}
		if p.Inject(pkt) {
			accepted++
		}
	}
	p.Stop()

	st := p.Stats()
	if st.Injected != n {
		t.Fatalf("Injected = %d", st.Injected)
	}
	processed := st.Forwarded + st.DropNoRoute + st.DropTTL + st.DropBad + st.Local
	if processed != uint64(accepted) {
		t.Fatalf("processed %d != accepted %d (packets lost silently)", processed, accepted)
	}
	if st.Forwarded == 0 || st.DropNoRoute == 0 {
		t.Fatalf("stats implausible: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if ports[1] == 0 || ports[2] == 0 {
		t.Fatalf("egress ports unused: %v", ports)
	}
}

func TestIngressOverflowDrops(t *testing.T) {
	block := make(chan struct{})
	p, err := New(Config{
		Workers: 1, QueueDepth: 8, FIB: testFIB(),
		Egress: forward.EgressFunc(func(int, netaddr.Addr, []byte) {
			<-block // wedge the worker
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	dropped := 0
	for i := 0; i < 64; i++ {
		if !p.Inject(mkPkt("10.0.0.1", 64)) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no ingress drops despite wedged worker")
	}
	close(block)
	p.Stop()
	if got := p.Stats().IngressDrops; got != uint64(dropped) {
		t.Fatalf("IngressDrops = %d, want %d", got, dropped)
	}
}

func TestInjectAfterStop(t *testing.T) {
	p, err := New(Config{FIB: testFIB()})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Stop()
	if p.Inject(mkPkt("10.0.0.1", 64)) {
		t.Fatal("Inject accepted after Stop")
	}
	p.Stop() // double stop is a no-op
}

func TestRuntTooShortDropped(t *testing.T) {
	p, err := New(Config{FIB: testFIB()})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	if p.Inject([]byte{1, 2, 3}) {
		t.Fatal("runt packet accepted")
	}
}

func TestFlowAffinityKeepsOrder(t *testing.T) {
	// All packets of one flow must be processed in order: record egress
	// sequence numbers for a single destination.
	var mu sync.Mutex
	var seq []byte
	p, err := New(Config{
		Workers: 4, QueueDepth: 1024, FIB: testFIB(),
		Egress: forward.EgressFunc(func(_ int, _ netaddr.Addr, pkt []byte) {
			mu.Lock()
			seq = append(seq, pkt[len(pkt)-1])
			mu.Unlock()
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	for i := 0; i < 200; i++ {
		pkt := packet.Marshal(packet.Header{
			TTL: 64, Protocol: 17,
			Src: netaddr.MustParseAddr("198.51.100.1"),
			Dst: netaddr.MustParseAddr("10.9.9.9"),
		}, []byte{byte(i)})
		for !p.Inject(pkt) {
			time.Sleep(time.Microsecond)
		}
	}
	p.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(seq) != 200 {
		t.Fatalf("forwarded %d/200", len(seq))
	}
	for i := range seq {
		if seq[i] != byte(i) {
			t.Fatalf("flow reordered at %d: %d", i, seq[i])
		}
	}
}

func TestLocalAddressDelivery(t *testing.T) {
	p, err := New(Config{FIB: testFIB()})
	if err != nil {
		t.Fatal(err)
	}
	p.Engine().AddLocalAddr(netaddr.MustParseAddr("10.255.255.1"))
	p.Start()
	p.Inject(mkPkt("10.255.255.1", 64))
	p.Stop()
	if p.Stats().Local != 1 {
		t.Fatalf("Local = %d", p.Stats().Local)
	}
}

func TestSourceApproximatesTargetRate(t *testing.T) {
	p, err := New(Config{Workers: 2, QueueDepth: 8192, FIB: testFIB()})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	src := NewSource(p, 50000, 200)
	src.Start()
	time.Sleep(300 * time.Millisecond)
	src.Stop()
	p.Stop()
	got := float64(src.Generated()) / 0.3
	if got < 25000 || got > 100000 {
		t.Fatalf("generated rate %.0f pps, want ~50000 (loose bounds for CI jitter)", got)
	}
	if src.Accepted() == 0 {
		t.Fatal("nothing accepted")
	}
}

func TestSourceStopIdempotent(t *testing.T) {
	p, err := New(Config{FIB: testFIB()})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	src := NewSource(p, 1000, 0)
	src.Start()
	src.Stop()
	src.Stop()
	p.Stop()
}
