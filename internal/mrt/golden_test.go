package mrt

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bgpbench/internal/core"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

var update = flag.Bool("update", false, "rewrite the MRT golden fixtures under testdata/")

// goldenCases enumerate the conformance fixtures: each builds its table
// deterministically, so the encoder must reproduce the committed bytes
// exactly. Regenerate with:
//
//	go test ./internal/mrt -run TestGolden -update
var goldenCases = []struct {
	name  string
	stamp uint32
	table func() *Table
}{
	{"sample", 1190000000, sampleTable},
	{"single-peer-generated", 1190000500, func() *Table {
		routes := core.GenerateTable(core.TableGenConfig{N: 250, Seed: 42, FirstAS: 65001})
		tbl := &Table{
			CollectorID: netaddr.MustParseAddr("10.255.0.1"),
			ViewName:    "golden-gen",
			Peers:       []Peer{{ID: netaddr.MustParseAddr("1.1.1.1"), Addr: netaddr.MustParseAddr("10.0.0.1"), AS: 65001}},
		}
		for _, r := range routes {
			tbl.Prefixes = append(tbl.Prefixes, Prefix{
				Prefix: r.Prefix,
				Entries: []RIBEntry{{
					Attrs: wire.NewPathAttrs(wire.OriginIGP, r.Path, netaddr.MustParseAddr("10.0.0.1")),
				}},
			})
		}
		return tbl
	}},
	{"multi-entry-best-path", 1190001000, func() *Table {
		// Two peers advertising the same prefixes with different path
		// lengths: the shape the conformance harness's Loc-RIB digests
		// exercise (selection between peers).
		tbl := &Table{
			CollectorID: netaddr.MustParseAddr("10.255.0.1"),
			ViewName:    "golden-multi",
			Peers: []Peer{
				{ID: netaddr.MustParseAddr("1.1.1.1"), Addr: netaddr.MustParseAddr("10.0.0.1"), AS: 65001},
				{ID: netaddr.MustParseAddr("2.2.2.2"), Addr: netaddr.MustParseAddr("10.0.0.2"), AS: 65002},
			},
		}
		for i := 0; i < 40; i++ {
			p := netaddr.MustParsePrefix(fmt.Sprintf("203.0.%d.0/24", i))
			tbl.Prefixes = append(tbl.Prefixes, Prefix{
				Prefix: p,
				Entries: []RIBEntry{
					{PeerIndex: 0, OriginatedAt: 1190000000 + uint32(i),
						Attrs: wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001, 100, 101, 102), netaddr.MustParseAddr("10.0.0.1"))},
					{PeerIndex: 1, OriginatedAt: 1190000000 + uint32(i),
						Attrs: wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65002, 100), netaddr.MustParseAddr("10.0.0.2"))},
				},
			})
		}
		return tbl
	}},
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".mrt")
}

// TestGoldenFixtures pins the MRT wire encoding: the encoder's output for
// each deterministic table must be byte-identical to the committed
// fixture, and the decoder must read the fixture back into a table that
// re-encodes to the same bytes (a full round trip through disk).
func TestGoldenFixtures(t *testing.T) {
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Write(&buf, c.table(), c.stamp); err != nil {
				t.Fatal(err)
			}
			got := buf.Bytes()

			path := goldenPath(c.name)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes, sha256 %.16s)", path, len(got), sha256hex(got))
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: encoding drifted from golden fixture:\n  got  %d bytes sha256 %.16s\n  want %d bytes sha256 %.16s\nre-run with -update if the change is intentional",
					path, len(got), sha256hex(got), len(want), sha256hex(want))
			}

			// Decode the on-disk fixture and re-encode: the round trip must
			// reproduce the fixture exactly (idempotent canonical form).
			decoded, err := Read(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("golden fixture unreadable: %v", err)
			}
			var buf2 bytes.Buffer
			if err := Write(&buf2, decoded, c.stamp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf2.Bytes(), want) {
				t.Fatalf("%s: decode->encode round trip not byte-identical", path)
			}
		})
	}
}

func sha256hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
