package mrt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"bgpbench/internal/core"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

func sampleTable() *Table {
	return &Table{
		CollectorID: netaddr.MustParseAddr("10.255.0.1"),
		ViewName:    "bench-view",
		Peers: []Peer{
			{ID: netaddr.MustParseAddr("1.1.1.1"), Addr: netaddr.MustParseAddr("10.0.0.1"), AS: 65001},
			{ID: netaddr.MustParseAddr("2.2.2.2"), Addr: netaddr.MustParseAddr("10.0.0.2"), AS: 65002},
		},
		Prefixes: []Prefix{
			{
				Prefix: netaddr.MustParsePrefix("192.0.2.0/24"),
				Entries: []RIBEntry{
					{PeerIndex: 0, OriginatedAt: 1190000000,
						Attrs: wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001, 7), netaddr.MustParseAddr("10.0.0.1"))},
					{PeerIndex: 1, OriginatedAt: 1190000100,
						Attrs: wire.NewPathAttrs(wire.OriginEGP, wire.NewASPath(65002, 9, 7), netaddr.MustParseAddr("10.0.0.2"))},
				},
			},
			{
				Prefix: netaddr.MustParsePrefix("10.0.0.0/8"),
				Entries: []RIBEntry{
					{PeerIndex: 0, Attrs: wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001), netaddr.MustParseAddr("10.0.0.1"))},
				},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTable(), 1190000000); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleTable()
	if got.CollectorID != want.CollectorID || got.ViewName != want.ViewName {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Peers) != 2 || got.Peers[1].AS != 65002 {
		t.Fatalf("peers: %+v", got.Peers)
	}
	if len(got.Prefixes) != 2 {
		t.Fatalf("prefixes: %d", len(got.Prefixes))
	}
	p0 := got.Prefixes[0]
	if p0.Prefix != want.Prefixes[0].Prefix || len(p0.Entries) != 2 {
		t.Fatalf("prefix 0: %+v", p0)
	}
	if !p0.Entries[0].Attrs.Equal(want.Prefixes[0].Entries[0].Attrs) {
		t.Fatalf("attrs 0: %v", p0.Entries[0].Attrs)
	}
	if p0.Entries[1].OriginatedAt != 1190000100 || p0.Entries[1].PeerIndex != 1 {
		t.Fatalf("entry 1: %+v", p0.Entries[1])
	}
}

func TestRoundTripLargeGeneratedTable(t *testing.T) {
	routes := core.GenerateTable(core.TableGenConfig{N: 3000, Seed: 12, FirstAS: 65001})
	tbl := &Table{
		CollectorID: netaddr.MustParseAddr("10.255.0.1"),
		ViewName:    "gen",
		Peers:       []Peer{{ID: netaddr.MustParseAddr("1.1.1.1"), Addr: netaddr.MustParseAddr("10.0.0.1"), AS: 65001}},
	}
	for _, r := range routes {
		tbl.Prefixes = append(tbl.Prefixes, Prefix{
			Prefix: r.Prefix,
			Entries: []RIBEntry{{
				Attrs: wire.NewPathAttrs(wire.OriginIGP, r.Path, netaddr.MustParseAddr("10.0.0.1")),
			}},
		})
	}
	var buf bytes.Buffer
	if err := Write(&buf, tbl, 42); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Prefixes) != len(routes) {
		t.Fatalf("prefixes: %d != %d", len(got.Prefixes), len(routes))
	}
	for i := range routes {
		if got.Prefixes[i].Prefix != routes[i].Prefix {
			t.Fatalf("prefix %d: %v != %v", i, got.Prefixes[i].Prefix, routes[i].Prefix)
		}
		if !got.Prefixes[i].Entries[0].Attrs.ASPath.Equal(routes[i].Path) {
			t.Fatalf("path %d differs", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	// Valid dump to mutate.
	var buf bytes.Buffer
	if err := Write(&buf, sampleTable(), 1); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   string
	}{
		{"truncated header", func(b []byte) []byte { return b[:6] }, "truncated record header"},
		{"truncated body", func(b []byte) []byte { return b[:20] }, "truncated record body"},
		{"wrong type", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[5] = 16 // BGP4MP
			return c
		}, "unsupported record type"},
		{"wrong subtype", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[7] = 6 // RIB_GENERIC
			return c
		}, "unsupported TABLE_DUMP_V2 subtype"},
		{"empty", func([]byte) []byte { return nil }, "no PEER_INDEX_TABLE"},
	}
	for _, c := range cases {
		_, err := Read(bytes.NewReader(c.mutate(valid)))
		if err == nil {
			t.Errorf("%s: read succeeded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestRIBBeforeIndexRejected(t *testing.T) {
	// Write a dump, then strip the first record (the index).
	var buf bytes.Buffer
	if err := Write(&buf, sampleTable(), 1); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	firstLen := 12 + int(uint32(b[8])<<24|uint32(b[9])<<16|uint32(b[10])<<8|uint32(b[11]))
	if _, err := Read(bytes.NewReader(b[firstLen:])); err == nil {
		t.Fatal("RIB-before-index accepted")
	}
}

func TestBadPeerIndexRejected(t *testing.T) {
	tbl := sampleTable()
	tbl.Prefixes[0].Entries[0].PeerIndex = 99
	var buf bytes.Buffer
	if err := Write(&buf, tbl, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "references peer") {
		t.Fatalf("bad peer index: %v", err)
	}
}

func TestReadNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 3000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		Read(bytes.NewReader(b))
	}
}
