// Package mrt reads and writes routing tables in a subset of the MRT
// TABLE_DUMP_V2 format (RFC 6396): a PEER_INDEX_TABLE record followed by
// RIB_IPV4_UNICAST records, with path attributes stored as standard BGP
// attribute blocks. It lets benchmark workloads be saved, inspected with
// standard tooling conventions, and replayed — the role real BGP table
// snapshots played for the paper's table sizes.
//
// Scope: IPv4 and IPv6 unicast RIBs; peer entries use the RFC 6396 peer
// type bits, so 4-octet ASNs and IPv6 peer addresses round-trip (2-octet
// IPv4 entries keep their historical byte-identical encoding). Records
// this package does not produce (other types/subtypes) are rejected on
// read with a descriptive error.
package mrt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// MRT record types and subtypes (RFC 6396 section 4).
const (
	typeTableDumpV2       = 13
	subtypePeerIndexTable = 1
	subtypeRIBIPv4Unicast = 2
	subtypeRIBIPv6Unicast = 4
)

// Peer-type bits (RFC 6396 section 4.3.1).
const (
	peerTypeAddr6 = 0x01 // peer address is IPv6
	peerTypeAS4   = 0x02 // peer AS is 4 octets
)

// Peer is one entry of the PEER_INDEX_TABLE.
type Peer struct {
	ID   netaddr.Addr // peer BGP identifier
	Addr netaddr.Addr // peer transport address
	AS   uint32
}

// RIBEntry is one path for a prefix, attributed to a peer by index.
type RIBEntry struct {
	PeerIndex    int
	OriginatedAt uint32 // unix seconds
	Attrs        wire.PathAttrs
}

// Prefix groups the paths for one NLRI.
type Prefix struct {
	Prefix  netaddr.Prefix
	Entries []RIBEntry
}

// Table is a complete dump: the peer table and the RIB.
type Table struct {
	CollectorID netaddr.Addr
	ViewName    string
	Peers       []Peer
	Prefixes    []Prefix
}

// Write emits the table as MRT TABLE_DUMP_V2 records. timestamp stamps
// every record header (MRT headers carry wall time; pass a fixed value
// for reproducible files).
func Write(w io.Writer, t *Table, timestamp uint32) error {
	bw := bufio.NewWriter(w)
	if err := writeRecord(bw, timestamp, subtypePeerIndexTable, marshalPeerIndex(t)); err != nil {
		return err
	}
	for seq, p := range t.Prefixes {
		body, err := marshalRIB(uint32(seq), p)
		if err != nil {
			return err
		}
		subtype := uint16(subtypeRIBIPv4Unicast)
		if p.Prefix.Addr().Is6() {
			subtype = subtypeRIBIPv6Unicast
		}
		if err := writeRecord(bw, timestamp, subtype, body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRecord(w io.Writer, ts uint32, subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], ts)
	binary.BigEndian.PutUint16(hdr[4:6], typeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func marshalPeerIndex(t *Table) []byte {
	var b []byte
	b = t.CollectorID.AppendBytes(b)
	b = append(b, byte(len(t.ViewName)>>8), byte(len(t.ViewName)))
	b = append(b, t.ViewName...)
	b = append(b, byte(len(t.Peers)>>8), byte(len(t.Peers)))
	for _, p := range t.Peers {
		// Peer type 0 (IPv4 address, 2-octet AS) when the entry fits —
		// keeping legacy dumps byte-identical — with the RFC 6396 type
		// bits raised only as needed for IPv6 peers and 4-octet ASNs.
		var ptype byte
		if p.Addr.Is6() {
			ptype |= peerTypeAddr6
		}
		if p.AS > 0xFFFF {
			ptype |= peerTypeAS4
		}
		b = append(b, ptype)
		b = p.ID.AppendBytes(b)
		b = p.Addr.AppendBytes(b)
		if ptype&peerTypeAS4 != 0 {
			b = binary.BigEndian.AppendUint32(b, p.AS)
		} else {
			b = append(b, byte(p.AS>>8), byte(p.AS))
		}
	}
	return b
}

func marshalRIB(seq uint32, p Prefix) ([]byte, error) {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, seq)
	b = p.Prefix.AppendWire(b)
	b = append(b, byte(len(p.Entries)>>8), byte(len(p.Entries)))
	for _, e := range p.Entries {
		if e.PeerIndex < 0 || e.PeerIndex > 0xFFFF {
			return nil, fmt.Errorf("mrt: peer index %d out of range", e.PeerIndex)
		}
		b = append(b, byte(e.PeerIndex>>8), byte(e.PeerIndex))
		b = binary.BigEndian.AppendUint32(b, e.OriginatedAt)
		attrs := wire.MarshalAttrs(e.Attrs)
		if len(attrs) > 0xFFFF {
			return nil, fmt.Errorf("mrt: attribute block too large (%d bytes)", len(attrs))
		}
		b = append(b, byte(len(attrs)>>8), byte(len(attrs)))
		b = append(b, attrs...)
	}
	return b, nil
}

// Read parses a dump produced by Write (or any TABLE_DUMP_V2 file within
// this package's scope).
func Read(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	t := &Table{}
	sawIndex := false
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("mrt: truncated record header: %w", err)
		}
		typ := binary.BigEndian.Uint16(hdr[4:6])
		subtype := binary.BigEndian.Uint16(hdr[6:8])
		length := binary.BigEndian.Uint32(hdr[8:12])
		if length > 1<<24 {
			return nil, fmt.Errorf("mrt: implausible record length %d", length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("mrt: truncated record body: %w", err)
		}
		if typ != typeTableDumpV2 {
			return nil, fmt.Errorf("mrt: unsupported record type %d (only TABLE_DUMP_V2)", typ)
		}
		switch subtype {
		case subtypePeerIndexTable:
			if err := parsePeerIndex(t, body); err != nil {
				return nil, err
			}
			sawIndex = true
		case subtypeRIBIPv4Unicast, subtypeRIBIPv6Unicast:
			if !sawIndex {
				return nil, fmt.Errorf("mrt: RIB record before PEER_INDEX_TABLE")
			}
			fam := netaddr.FamilyV4
			if subtype == subtypeRIBIPv6Unicast {
				fam = netaddr.FamilyV6
			}
			p, err := parseRIB(t, body, fam)
			if err != nil {
				return nil, err
			}
			t.Prefixes = append(t.Prefixes, p)
		default:
			return nil, fmt.Errorf("mrt: unsupported TABLE_DUMP_V2 subtype %d", subtype)
		}
	}
	if !sawIndex {
		return nil, fmt.Errorf("mrt: no PEER_INDEX_TABLE record")
	}
	return t, nil
}

func parsePeerIndex(t *Table, b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("mrt: short PEER_INDEX_TABLE")
	}
	t.CollectorID = netaddr.AddrFromBytes(b[0:4])
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	if len(b) < 6+nameLen+2 {
		return fmt.Errorf("mrt: PEER_INDEX_TABLE name overruns record")
	}
	t.ViewName = string(b[6 : 6+nameLen])
	rest := b[6+nameLen:]
	count := int(binary.BigEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return fmt.Errorf("mrt: truncated peer entry %d", i)
		}
		ptype := rest[0]
		if ptype&^(peerTypeAddr6|peerTypeAS4) != 0 {
			return fmt.Errorf("mrt: peer entry %d has unsupported type %d", i, ptype)
		}
		addrLen, asLen := 4, 2
		if ptype&peerTypeAddr6 != 0 {
			addrLen = 16
		}
		if ptype&peerTypeAS4 != 0 {
			asLen = 4
		}
		need := 1 + 4 + addrLen + asLen
		if len(rest) < need {
			return fmt.Errorf("mrt: truncated peer entry %d", i)
		}
		p := Peer{
			ID:   netaddr.AddrFromBytes(rest[1:5]),
			Addr: netaddr.AddrFromBytes(rest[5 : 5+addrLen]),
		}
		if asLen == 4 {
			p.AS = binary.BigEndian.Uint32(rest[5+addrLen : need])
		} else {
			p.AS = uint32(binary.BigEndian.Uint16(rest[5+addrLen : need]))
		}
		t.Peers = append(t.Peers, p)
		rest = rest[need:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("mrt: %d trailing bytes in PEER_INDEX_TABLE", len(rest))
	}
	return nil
}

func parseRIB(t *Table, b []byte, fam netaddr.Family) (Prefix, error) {
	var out Prefix
	if len(b) < 5 {
		return out, fmt.Errorf("mrt: short RIB record")
	}
	b = b[4:] // sequence number (informational)
	pfx, n, err := netaddr.PrefixFromWireFamily(b, fam)
	if err != nil {
		return out, fmt.Errorf("mrt: RIB prefix: %v", err)
	}
	out.Prefix = pfx
	b = b[n:]
	if len(b) < 2 {
		return out, fmt.Errorf("mrt: RIB record missing entry count")
	}
	count := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return out, fmt.Errorf("mrt: truncated RIB entry %d for %v", i, pfx)
		}
		e := RIBEntry{
			PeerIndex:    int(binary.BigEndian.Uint16(b[0:2])),
			OriginatedAt: binary.BigEndian.Uint32(b[2:6]),
		}
		if e.PeerIndex >= len(t.Peers) {
			return out, fmt.Errorf("mrt: RIB entry references peer %d of %d", e.PeerIndex, len(t.Peers))
		}
		alen := int(binary.BigEndian.Uint16(b[6:8]))
		if len(b) < 8+alen {
			return out, fmt.Errorf("mrt: RIB entry %d attributes overrun record", i)
		}
		attrs, err := wire.UnmarshalAttrs(b[8 : 8+alen])
		if err != nil {
			return out, fmt.Errorf("mrt: RIB entry %d: %v", i, err)
		}
		e.Attrs = attrs
		out.Entries = append(out.Entries, e)
		b = b[8+alen:]
	}
	if len(b) != 0 {
		return out, fmt.Errorf("mrt: %d trailing bytes in RIB record for %v", len(b), pfx)
	}
	return out, nil
}
