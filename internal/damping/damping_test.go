package damping

import (
	"testing"
	"time"

	"bgpbench/internal/netaddr"
)

// fakeClock is a controllable time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestDamper() (*Damper, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	return New(Config{}, clk.now), clk
}

var (
	peerX = netaddr.MustParseAddr("10.0.0.1")
	pfx   = netaddr.MustParsePrefix("192.0.2.0/24")
)

func TestSingleFlapNotSuppressed(t *testing.T) {
	d, _ := newTestDamper()
	if d.Flap(peerX, pfx) {
		t.Fatal("one flap (penalty 1000 < 2000) should not suppress")
	}
	if got := d.Penalty(peerX, pfx); got != 1000 {
		t.Fatalf("penalty = %v, want 1000", got)
	}
}

func TestRepeatedFlapsSuppress(t *testing.T) {
	d, _ := newTestDamper()
	d.Flap(peerX, pfx)
	if !d.Flap(peerX, pfx) {
		t.Fatal("second flap (penalty 2000 >= 2000) should suppress")
	}
	if !d.Suppressed(peerX, pfx) {
		t.Fatal("route should be suppressed")
	}
}

func TestDecayReleasesSuppression(t *testing.T) {
	d, clk := newTestDamper()
	for i := 0; i < 3; i++ {
		d.Flap(peerX, pfx) // penalty 3000
	}
	if !d.Suppressed(peerX, pfx) {
		t.Fatal("should be suppressed at penalty 3000")
	}
	// 3000 decays below the 750 reuse limit after two half-lives
	// (3000 -> 1500 -> 750); go exactly two half-lives and check, then one
	// more to be safely below.
	clk.advance(30 * time.Minute)
	if d.Suppressed(peerX, pfx) && d.Penalty(peerX, pfx) > 750.01 {
		t.Fatalf("penalty %v after two half-lives, want <= 750", d.Penalty(peerX, pfx))
	}
	clk.advance(15 * time.Minute)
	if d.Suppressed(peerX, pfx) {
		t.Fatal("suppression should lift below the reuse limit")
	}
}

func TestPenaltyCeilingBoundsSuppression(t *testing.T) {
	d, clk := newTestDamper()
	// Hammer the route: penalty must cap at the ceiling so suppression
	// cannot exceed MaxSuppress (60 min).
	for i := 0; i < 100; i++ {
		d.Flap(peerX, pfx)
	}
	ceiling := Config{}.withDefaults().ceiling()
	if got := d.Penalty(peerX, pfx); got > ceiling+0.01 {
		t.Fatalf("penalty %v exceeds ceiling %v", got, ceiling)
	}
	clk.advance(61 * time.Minute)
	if d.Suppressed(peerX, pfx) {
		t.Fatal("suppression must lift within MaxSuppress of the last flap")
	}
}

func TestIndependentPeersAndPrefixes(t *testing.T) {
	d, _ := newTestDamper()
	peerY := netaddr.MustParseAddr("10.0.0.2")
	other := netaddr.MustParsePrefix("198.51.100.0/24")
	d.Flap(peerX, pfx)
	d.Flap(peerX, pfx)
	if !d.Suppressed(peerX, pfx) {
		t.Fatal("peerX/pfx should be suppressed")
	}
	if d.Suppressed(peerY, pfx) {
		t.Fatal("same prefix from another peer must be independent")
	}
	if d.Suppressed(peerX, other) {
		t.Fatal("another prefix from the same peer must be independent")
	}
}

func TestForgetClearsPeerState(t *testing.T) {
	d, _ := newTestDamper()
	peerY := netaddr.MustParseAddr("10.0.0.2")
	d.Flap(peerX, pfx)
	d.Flap(peerY, pfx)
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	d.Forget(peerX)
	if d.Len() != 1 {
		t.Fatalf("Len after Forget = %d", d.Len())
	}
	if d.Penalty(peerX, pfx) != 0 {
		t.Fatal("forgotten peer retains penalty")
	}
}

func TestFullyDecayedEntriesGarbageCollected(t *testing.T) {
	d, clk := newTestDamper()
	d.Flap(peerX, pfx)
	clk.advance(24 * time.Hour)
	if d.Suppressed(peerX, pfx) {
		t.Fatal("fully decayed route suppressed")
	}
	if d.Len() != 0 {
		t.Fatalf("decayed entry not collected: Len = %d", d.Len())
	}
}

func TestFlapsCounter(t *testing.T) {
	d, _ := newTestDamper()
	d.Flap(peerX, pfx)
	d.Flap(peerX, pfx)
	if d.Flaps() != 2 {
		t.Fatalf("Flaps = %d", d.Flaps())
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Penalty != 1000 || c.SuppressLimit != 2000 || c.ReuseLimit != 750 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.HalfLife != 15*time.Minute || c.MaxSuppress != 60*time.Minute {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// Ceiling: reuse * 2^(60/15) = 750 * 16 = 12000.
	if got := c.ceiling(); got != 12000 {
		t.Fatalf("ceiling = %v, want 12000", got)
	}
}

func TestNilClockDefaultsToWallTime(t *testing.T) {
	d := New(Config{}, nil)
	d.Flap(peerX, pfx)
	if d.Penalty(peerX, pfx) <= 0 {
		t.Fatal("penalty not recorded with wall clock")
	}
}
