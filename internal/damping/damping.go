// Package damping implements BGP route-flap damping (RFC 2439): routes
// that flap — are repeatedly withdrawn and re-announced, or whose
// attributes keep changing — accumulate a penalty that decays
// exponentially; while the penalty exceeds the suppress threshold the
// route is not used or propagated. Route instability is the phenomenon
// the paper's motivation cites (Labovitz et al.); damping is the
// countermeasure deployed routers of the era applied, and the router in
// this repository can enable it per neighbour.
package damping

import (
	"math"
	"sync"
	"time"

	"bgpbench/internal/netaddr"
)

// Config holds the damping parameters. Zero values take the conventional
// defaults (Cisco-style): penalty 1000 per flap, suppress above 2000,
// reuse below 750, 15-minute half-life, 60-minute maximum suppression.
type Config struct {
	Penalty       float64
	SuppressLimit float64
	ReuseLimit    float64
	HalfLife      time.Duration
	MaxSuppress   time.Duration
}

func (c Config) withDefaults() Config {
	if c.Penalty == 0 {
		c.Penalty = 1000
	}
	if c.SuppressLimit == 0 {
		c.SuppressLimit = 2000
	}
	if c.ReuseLimit == 0 {
		c.ReuseLimit = 750
	}
	if c.HalfLife == 0 {
		c.HalfLife = 15 * time.Minute
	}
	if c.MaxSuppress == 0 {
		c.MaxSuppress = 60 * time.Minute
	}
	return c
}

// ceiling is the maximum penalty: the value that decays to the reuse
// limit in exactly MaxSuppress (RFC 2439 section 4.2).
func (c Config) ceiling() float64 {
	halfLives := c.MaxSuppress.Seconds() / c.HalfLife.Seconds()
	return c.ReuseLimit * math.Pow(2, halfLives)
}

// state tracks one (peer, prefix) pair.
type state struct {
	penalty    float64
	lastDecay  time.Time
	suppressed bool
}

type key struct {
	peer   netaddr.Addr
	prefix netaddr.Prefix
}

// Damper tracks flap penalties per (peer, prefix). It is safe for
// concurrent use.
type Damper struct {
	cfg     Config
	ceiling float64
	now     func() time.Time

	mu      sync.Mutex
	entries map[key]*state
	flaps   uint64
}

// New builds a damper; a nil clock uses time.Now.
func New(cfg Config, clock func() time.Time) *Damper {
	if clock == nil {
		clock = time.Now
	}
	c := cfg.withDefaults()
	return &Damper{
		cfg:     c,
		ceiling: c.ceiling(),
		now:     clock,
		entries: make(map[key]*state),
	}
}

// decay applies exponential decay since the last update.
func (d *Damper) decay(s *state, now time.Time) {
	dt := now.Sub(s.lastDecay).Seconds()
	if dt <= 0 {
		return
	}
	s.penalty *= math.Pow(0.5, dt/d.cfg.HalfLife.Seconds())
	s.lastDecay = now
	if s.suppressed && s.penalty < d.cfg.ReuseLimit {
		s.suppressed = false
	}
	if s.penalty < 1 {
		s.penalty = 0
	}
}

// Flap records one instability event (withdrawal, or re-announcement
// with changed attributes) and reports whether the route is now
// suppressed.
func (d *Damper) Flap(peer netaddr.Addr, prefix netaddr.Prefix) bool {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flaps++
	k := key{peer: peer, prefix: prefix}
	s := d.entries[k]
	if s == nil {
		s = &state{lastDecay: now}
		d.entries[k] = s
	}
	d.decay(s, now)
	s.penalty += d.cfg.Penalty
	if s.penalty > d.ceiling {
		s.penalty = d.ceiling
	}
	if s.penalty >= d.cfg.SuppressLimit {
		s.suppressed = true
	}
	return s.suppressed
}

// Suppressed reports whether the route is currently suppressed (after
// applying decay).
func (d *Damper) Suppressed(peer netaddr.Addr, prefix netaddr.Prefix) bool {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.entries[key{peer: peer, prefix: prefix}]
	if s == nil {
		return false
	}
	d.decay(s, now)
	if s.penalty == 0 && !s.suppressed {
		delete(d.entries, key{peer: peer, prefix: prefix})
	}
	return s.suppressed
}

// Penalty returns the current (decayed) penalty, for diagnostics.
func (d *Damper) Penalty(peer netaddr.Addr, prefix netaddr.Prefix) float64 {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.entries[key{peer: peer, prefix: prefix}]
	if s == nil {
		return 0
	}
	d.decay(s, now)
	return s.penalty
}

// Forget clears all state learned from a peer (session reset).
func (d *Damper) Forget(peer netaddr.Addr) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k := range d.entries {
		if k.peer == peer {
			delete(d.entries, k)
		}
	}
}

// Len returns the number of tracked (peer, prefix) pairs.
func (d *Damper) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Flaps returns the total flap events recorded.
func (d *Damper) Flaps() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flaps
}
