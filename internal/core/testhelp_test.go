package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/session"
	"bgpbench/internal/wire"
)

// testSpeaker is a minimal in-package benchmark speaker used by the router
// tests (the full speaker package lives above core in the import graph).
type testSpeaker struct {
	sess        *session.Session
	localID     netaddr.Addr
	established chan struct{}

	prefixesIn  atomic.Uint64
	withdrawsIn atomic.Uint64

	mu           sync.Mutex
	sampleUpdate wire.Update
}

func (s *testSpeaker) Established(*session.Session) {
	select {
	case s.established <- struct{}{}:
	default:
	}
}

func (s *testSpeaker) Update(_ *session.Session, u wire.Update) {
	s.prefixesIn.Add(uint64(len(u.NLRI)))
	s.withdrawsIn.Add(uint64(len(u.Withdrawn)))
	if len(u.NLRI) > 0 {
		s.mu.Lock()
		s.sampleUpdate = u
		s.mu.Unlock()
	}
}

func (s *testSpeaker) Down(*session.Session, error) {}

func (s *testSpeaker) stop() { s.sess.Stop() }

func (s *testSpeaker) announce(t *testing.T, routes []Route, perMsg int) {
	t.Helper()
	for _, u := range Updates(routes, s.localID, perMsg) {
		if err := s.sess.Send(u); err != nil {
			t.Fatalf("announce: %v", err)
		}
	}
}

func (s *testSpeaker) withdraw(t *testing.T, routes []Route, perMsg int) {
	t.Helper()
	for _, u := range Withdrawals(routes, perMsg) {
		if err := s.sess.Send(u); err != nil {
			t.Fatalf("withdraw: %v", err)
		}
	}
}

func mustStartRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	return r
}

func tryDialSpeaker(r *Router, as uint32, id string) (*testSpeaker, error) {
	sp := &testSpeaker{established: make(chan struct{}, 1)}
	sp.localID = netaddr.MustParseAddr(id)
	sp.sess = session.New(session.Config{
		FSM: fsm.Config{
			LocalAS:  as,
			LocalID:  sp.localID,
			HoldTime: 90,
		},
		DialTarget: r.ListenAddr(),
		Handler:    sp,
		Name:       "test-speaker",
	})
	sp.sess.Start()
	select {
	case <-sp.established:
		return sp, nil
	case <-time.After(5 * time.Second):
		sp.sess.Stop()
		return nil, errTimeout
	}
}

func dialSpeaker(t *testing.T, r *Router, as uint32, id string) *testSpeaker {
	t.Helper()
	sp, err := tryDialSpeaker(r, as, id)
	if err != nil {
		t.Fatalf("speaker as%d: %v", as, err)
	}
	return sp
}

var errTimeout = timeoutError{}

type timeoutError struct{}

func (timeoutError) Error() string { return "timeout waiting for session" }

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before timeout")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
