package core

import (
	"fmt"
	"sync"
	"time"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/rib"
	"bgpbench/internal/wire"
)

// This file implements update groups: peers whose export treatment is
// provably identical (same eBGP-vs-iBGP handling, behavior-equal export
// route map — see rib.GroupKeyFor) share one Adj-RIB-Out and one
// emission pipeline. Each route change is exported once per group
// instead of once per peer, each emission run is marshaled once through
// the shard's cross-group marshal cache (marshalcache.go), and the
// framed bytes are fanned out to every member session as a
// reference-counted session.SharedPayload. This turns emission from
// O(peers × prefixes) into O(distinct runs) + a per-peer byte copy at
// the transport, which is what makes hundreds of peering sessions over
// DFZ-sized tables plausible.
//
// Concurrency model: all per-shard group state (groupShard) is owned by
// that shard's worker goroutine, exactly like per-peer Adj-RIB-Out
// partitions. Even the per-group MRAI flush runs on the shard workers —
// the flusher goroutine only enqueues workGroupFlush items — so the
// group tables need no locks. Whole-table work (group rebuilds, member
// catch-up replays) runs in bounded chunks on the same workers
// (groupCatchup) instead of stop-the-world walks.

const (
	// catchupChunk bounds how many snapshot keys one catch-up chunk
	// processes, keeping the shard's worst-case pause independent of
	// table size.
	catchupChunk = 2048
	// catchupForceEvery forces one catch-up chunk per this many queued
	// work items, so catch-ups advance even under sustained update load.
	catchupForceEvery = 8
)

// updateGroup is one update group: the set of peers sharing a canonical
// export-policy key, with per-shard state owned by the shard workers.
type updateGroup struct {
	key    string
	ebgp   bool
	export *policy.RouteMap // first-seen map; behavior-equal to every member's
	// as4 is the members' negotiated wire mode and afis their negotiated
	// family set; both are folded into the group key because the fan-out
	// shares marshaled bytes, whose encoding depends on both.
	as4  bool
	afis [2]bool

	shards []groupShard

	// flusherOnce starts the group's MRAI flusher on first membership
	// (only when Config.MRAI > 0).
	flusherOnce sync.Once
}

// groupShard is shard i's partition of a group: the shared Adj-RIB-Out,
// the memoized export transform, current members, MRAI-pending
// transitions, and worker-owned scratch. Touched only by shard worker i.
//
//bgplint:owned-by shard-worker
type groupShard struct {
	adjOut      *rib.GroupAdjOut
	exportCache map[exportKey]*wire.PathAttrs
	members     map[netaddr.Addr]*peerState
	// pending accumulates MRAI-coalesced transitions: first-old is
	// preserved and last-new overwritten, so a flush emits exactly the
	// net transition (and suppresses flaps that return to the start).
	pending map[netaddr.Prefix]groupTransition

	// Scratch reused across emission runs.
	dirty      []netaddr.Addr
	acts       []emitItem // clean-member action stream
	dacts      []emitItem // per-dirty-member action stream
	pfx        []netaddr.Prefix
	flushItems []groupEmitItem
}

// groupTransition is one MRAI-pending prefix transition on a group:
// the entry before the first change and after the last.
type groupTransition struct {
	old rib.GroupRoute
	new rib.GroupRoute
}

// groupEmitItem is one group-table transition accumulated during a work
// batch; a zero GroupRoute (nil Attrs) means "absent".
type groupEmitItem struct {
	prefix netaddr.Prefix
	old    rib.GroupRoute
	new    rib.GroupRoute
}

// emitGroup accumulates one group's transitions across a work batch.
type emitGroup struct {
	g     *updateGroup
	items []groupEmitItem
}

// groupEmitBuf is the grouped analogue of emitBuf: per-group transition
// lists that flush once at batch end.
type groupEmitBuf struct {
	groups []emitGroup
	n      int
}

func (b *groupEmitBuf) add(g *updateGroup, p netaddr.Prefix, old, new rib.GroupRoute) {
	it := groupEmitItem{prefix: p, old: old, new: new}
	for i := 0; i < b.n; i++ {
		if b.groups[i].g == g {
			b.groups[i].items = append(b.groups[i].items, it)
			return
		}
	}
	if b.n < len(b.groups) {
		eg := &b.groups[b.n]
		eg.g = g
		eg.items = append(eg.items[:0], it)
	} else {
		b.groups = append(b.groups, emitGroup{g: g, items: []groupEmitItem{it}})
	}
	b.n++
}

// sameAttrs compares attribute pointers: pointer equality first (attrs
// are interned, so this is the common case), deep equality as a guard.
func sameAttrs(a, b *wire.PathAttrs) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.Equal(*b)
}

// groupFor returns (creating if needed) the update group for the given
// export treatment, and ensures its MRAI flusher is running when MRAI
// is configured. The group adopts the first-seen export map; any later
// member mapping to the same key has a behavior-equal map by
// construction of the canonical key.
func (r *Router) groupFor(ebgp bool, export *policy.RouteMap, as4 bool, afis [2]bool) *updateGroup {
	key := rib.GroupKeyFor(ebgp, export) + fmt.Sprintf("|as4=%t|afis=%t,%t", as4, afis[0], afis[1])
	r.mu.Lock()
	g := r.groups[key]
	if g == nil {
		g = &updateGroup{key: key, ebgp: ebgp, export: export, as4: as4, afis: afis, shards: make([]groupShard, r.nshards)}
		r.groups[key] = g
	}
	r.mu.Unlock()
	if r.cfg.MRAI > 0 {
		g.flusherOnce.Do(func() {
			r.wg.Add(1)
			go r.groupFlusher(g)
		})
	}
	return g
}

// snapshotGroupsInto appends the current update groups to buf, reusing
// its capacity; the grouped analogue of snapshotPeersInto.
func (r *Router) snapshotGroupsInto(buf []*updateGroup) []*updateGroup {
	r.mu.Lock()
	for _, g := range r.groups {
		buf = append(buf, g)
	}
	r.mu.Unlock()
	return buf
}

// groupExportAttrs is the group-scoped mirror of exportAttrs: split
// horizon, export policy, and eBGP transforms depend only on the
// candidate and the group's key fields, never on an individual member,
// which is exactly why members can share the result.
func (r *Router) groupExportAttrs(si int, g *updateGroup, p netaddr.Prefix, c rib.Candidate) (*wire.PathAttrs, bool) {
	// Never export a family the group's members did not negotiate.
	if !g.afis[p.Family()] {
		return nil, false
	}
	// iBGP split-horizon: do not re-advertise iBGP routes to iBGP peers.
	if !c.Peer.EBGP && !g.ebgp {
		return nil, false
	}
	sh := &g.shards[si]
	cacheable := g.export == nil
	key := exportKey{attrs: c.Attrs, srcEBGP: c.Peer.EBGP}
	if cacheable {
		if out, ok := sh.exportCache[key]; ok {
			return out, true
		}
	}
	attrs, ok := g.export.Apply(p, *c.Attrs)
	if !ok {
		return nil, false
	}
	var out *wire.PathAttrs
	if g.ebgp {
		a := attrs.Clone()
		a.ASPath = a.ASPath.Prepend(r.cfg.AS)
		a.NextHop, a.HasNextHop = r.nextHopSelf(a), true
		// LOCAL_PREF is not sent on eBGP sessions.
		a.HasLocalPref, a.LocalPref = false, 0
		out = r.interner.Intern(a)
	} else {
		out = r.interner.Intern(attrs)
	}
	if cacheable {
		sh.exportCache[key] = out
	}
	return out, true
}

// applyChangeGrouped propagates one Loc-RIB transition into every
// group's shared Adj-RIB-Out on this shard, recording the transition for
// emission. Groups with no members on the shard are skipped entirely:
// their tables go stale and are rebuilt from the Loc-RIB when a first
// member joins again.
func (r *Router) applyChangeGrouped(si int, ch rib.Change, geb *groupEmitBuf, groups []*updateGroup) {
	for _, g := range groups {
		sh := &g.shards[si]
		if len(sh.members) == 0 {
			continue
		}
		if ch.New != nil {
			attrs, ok := r.groupExportAttrs(si, g, ch.Prefix, *ch.New)
			if !ok {
				if old, had := sh.adjOut.Withdraw(ch.Prefix); had {
					geb.add(g, ch.Prefix, old, rib.GroupRoute{})
				}
				continue
			}
			if old, _, changed := sh.adjOut.Advertise(ch.Prefix, attrs, ch.New.Peer.Addr); changed {
				geb.add(g, ch.Prefix, old, rib.GroupRoute{Attrs: attrs, Origin: ch.New.Peer.Addr})
			}
		} else {
			if old, had := sh.adjOut.Withdraw(ch.Prefix); had {
				geb.add(g, ch.Prefix, old, rib.GroupRoute{})
			}
		}
	}
}

// flushGroupEmits drains the batch's accumulated group transitions: with
// MRAI they merge into the group's pending set (worker-owned, lock-free),
// otherwise each group's run is emitted immediately.
func (r *Router) flushGroupEmits(si int, geb *groupEmitBuf) {
	for i := 0; i < geb.n; i++ {
		eg := &geb.groups[i]
		if r.cfg.MRAI > 0 {
			sh := &eg.g.shards[si]
			if sh.pending == nil {
				sh.pending = make(map[netaddr.Prefix]groupTransition)
			}
			for _, it := range eg.items {
				if t, ok := sh.pending[it.prefix]; ok {
					t.new = it.new
					sh.pending[it.prefix] = t
				} else {
					sh.pending[it.prefix] = groupTransition{old: it.old, new: it.new}
				}
			}
		} else {
			r.emitGroupItems(si, eg.g, eg.items)
		}
		eg.g = nil
		eg.items = eg.items[:0]
	}
	geb.n = 0
}

// memberEmitAction computes what one transition means for a member with
// the given BGP ID: presence in the member's view is "the entry exists
// and the member is not its originator". The zero Addr acts as a
// sentinel "originates nothing" member, yielding the stream every
// non-originating (clean) member shares.
func memberEmitAction(it groupEmitItem, member netaddr.Addr) (emitItem, bool) {
	oldIn := it.old.Attrs != nil && it.old.Origin != member
	newIn := it.new.Attrs != nil && it.new.Origin != member
	switch {
	case oldIn && !newIn:
		return emitItem{prefix: it.prefix, attrs: nil}, true
	case newIn && (!oldIn || !sameAttrs(it.old.Attrs, it.new.Attrs)):
		return emitItem{prefix: it.prefix, attrs: it.new.Attrs}, true
	}
	return emitItem{}, false
}

// emitGroupItems is the fan-out core: it partitions the group's members
// into "dirty" (an originator of some transition in the run, whose view
// differs from the shared stream) and "clean" (everyone else), computes
// and marshals the clean stream once, and fans the framed bytes out to
// every clean member as one reference-counted payload. Dirty members —
// at most the handful of distinct originators in the run — get an exact
// per-member replay through the classic path.
func (r *Router) emitGroupItems(si int, g *updateGroup, items []groupEmitItem) {
	if len(items) == 0 {
		return
	}
	sh := &g.shards[si]
	members := sh.members
	if len(members) == 0 {
		return
	}

	// Dirty set: members appearing as an originator in the run.
	sh.dirty = sh.dirty[:0]
	for _, it := range items {
		if it.old.Attrs != nil {
			sh.dirty = addDirty(sh.dirty, it.old.Origin, members)
		}
		if it.new.Attrs != nil {
			sh.dirty = addDirty(sh.dirty, it.new.Origin, members)
		}
	}

	// Clean stream: the view of a member that originates nothing.
	cleanCount := len(members) - len(sh.dirty)
	if cleanCount > 0 {
		sh.acts = sh.acts[:0]
		for _, it := range items {
			if a, ok := memberEmitAction(it, netaddr.Addr{}); ok {
				sh.acts = append(sh.acts, a)
			}
		}
		if len(sh.acts) > 0 {
			r.fanOutClean(si, g, cleanCount)
		}
	}

	// Dirty members: exact per-member replay.
	for _, addr := range sh.dirty {
		ps := members[addr]
		sh.dacts = sh.dacts[:0]
		for _, it := range items {
			if a, ok := memberEmitAction(it, addr); ok {
				sh.dacts = append(sh.dacts, a)
			}
		}
		if len(sh.dacts) > 0 {
			pushEmitRuns(ps, sh.dacts, r.cfg.ExportBatch)
		}
	}
}

// fanOutClean packs the shard's prepared clean action stream (sh.acts)
// into emission runs and pushes each run's framed bytes to every clean
// member. Runs are obtained from the shard's cross-group marshal cache:
// a run another group (or an earlier batch) already produced is fanned
// out again by reference instead of being re-marshaled, so marshal bytes
// scale with distinct runs, not groups × prefixes. On a marshal failure
// (a run exceeding the wire's message bound) the remaining stream falls
// back to per-member pushes, which fail exactly as the ungrouped path
// would.
func (r *Router) fanOutClean(si int, g *updateGroup, cleanCount int) {
	sh := &g.shards[si]
	s := r.shards[si]
	limit := r.cfg.ExportBatch
	totalBytes := 0
	pushed := false
	for i := 0; i < len(sh.acts); {
		// Pack one run: consecutive withdrawals, or consecutive
		// announcements sharing an interned attribute block, chunked at
		// the export batch limit — byte-identical packing to pushEmitRuns.
		j := i + 1
		attrs := sh.acts[i].attrs
		sh.pfx = sh.pfx[:0]
		if attrs == nil {
			for j < len(sh.acts) && sh.acts[j].attrs == nil && j-i < limit {
				j++
			}
		} else {
			for j < len(sh.acts) && sh.acts[j].attrs == attrs && j-i < limit {
				j++
			}
		}
		for k := i; k < j; k++ {
			sh.pfx = append(sh.pfx, sh.acts[k].prefix)
		}
		p, err := s.mcache.payloadFor(r, g.as4, attrs, sh.pfx, cleanCount)
		if err != nil {
			for addr, ps := range sh.members {
				if isDirtyMember(sh.dirty, addr) {
					continue
				}
				pushEmitRuns(ps, sh.acts[i:], limit)
			}
			break
		}
		totalBytes += len(p.Bytes())
		for addr, ps := range sh.members {
			if isDirtyMember(sh.dirty, addr) {
				continue
			}
			ps.out.pushShared(p)
		}
		pushed = true
		i = j
	}
	if !pushed {
		return
	}
	r.groupRuns.Add(1)
	r.groupSends.Add(uint64(cleanCount))
	r.groupBytesBuilt.Add(uint64(totalBytes))
	if cleanCount > 1 {
		r.groupBytesSaved.Add(uint64(totalBytes * (cleanCount - 1)))
	}
}

// addDirty appends an originating member to the dirty set once.
func addDirty(dirty []netaddr.Addr, o netaddr.Addr, members map[netaddr.Addr]*peerState) []netaddr.Addr {
	if o.IsZero() {
		return dirty
	}
	if _, isMember := members[o]; !isMember {
		return dirty
	}
	for _, d := range dirty {
		if d == o {
			return dirty
		}
	}
	return append(dirty, o)
}

func isDirtyMember(dirty []netaddr.Addr, addr netaddr.Addr) bool {
	for _, d := range dirty {
		if d == addr {
			return true
		}
	}
	return false
}

// processGroupFlush drains a group's MRAI-pending transitions on shard
// si. It runs on the shard worker (enqueued by the group flusher), so
// pending/members/adjOut remain worker-owned. Net-no-op transitions
// (the table returned to its pre-window state) are suppressed and
// counted — the grouped analogue of per-peer MRAI suppression.
func (r *Router) processGroupFlush(si int, g *updateGroup) {
	sh := &g.shards[si]
	if len(sh.pending) == 0 {
		return
	}
	pending := sh.pending
	sh.pending = nil
	items := sh.flushItems[:0]
	for p, t := range pending {
		if t.old.Attrs == t.new.Attrs && t.old.Origin == t.new.Origin {
			r.groupSuppressed.Add(1)
			continue
		}
		items = append(items, groupEmitItem{prefix: p, old: t.old, new: t.new})
	}
	r.emitGroupItems(si, g, items)
	sh.flushItems = items[:0]
}

// groupFlusher ticks every MRAI and schedules a flush of the group's
// pending transitions on every shard worker.
func (r *Router) groupFlusher(g *updateGroup) {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.MRAI)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			for i := range r.shards {
				if !r.send(i, workItem{kind: workGroupFlush, group: g}) {
					return
				}
			}
		}
	}
}

// processPeerUpGrouped registers a grouped peer on shard si. The first
// member on a shard gets a fresh group table plus a chunked rebuild from
// the Loc-RIB (the table may be missing or stale: changes are not
// applied to member-less groups); the rebuild's own emissions double as
// the member's catch-up replay, since every entry it advertises into the
// empty table fans out to the membership. Later members join the live
// table and get a chunked replay of their view of it. Either way the
// work is bounded per chunk and interleaves with the shard's queue
// instead of stalling it for the whole table.
func (r *Router) processPeerUpGrouped(si int, ps *peerState) {
	g := ps.group
	sh := &g.shards[si]
	r.rib.Shard(si).AddPeer(ps.info)
	if sh.members == nil {
		sh.members = make(map[netaddr.Addr]*peerState)
	}
	if len(sh.members) == 0 {
		sh.adjOut = rib.NewGroupAdjOut()
		sh.exportCache = make(map[exportKey]*wire.PathAttrs)
		sh.pending = nil
		sh.members[ps.info.Addr] = ps
		r.scheduleGroupRebuild(si, g)
		return
	}
	sh.members[ps.info.Addr] = ps
	r.scheduleMemberReplay(si, ps)
}

// groupCatchup is one in-progress chunked catch-up on a shard: a rebuild
// of a group's table from the Loc-RIB (member == nil), or a replay of
// one member's view of the group table. prefixes is a sorted snapshot of
// the KEY SET only; each chunk re-reads the current entry for every key
// at processing time, so state that changed after the snapshot is never
// replayed stale — live changes and catch-up chunks are serialized on
// the same shard worker, and a prefix processed by both simply yields an
// idempotent duplicate.
//
//bgplint:owned-by shard-worker
type groupCatchup struct {
	g        *updateGroup
	member   *peerState // nil: whole-group rebuild from the Loc-RIB
	prefixes []netaddr.Prefix
	cursor   int
	start    time.Time
}

// scheduleGroupRebuild snapshots shard si's Loc-RIB key set and queues a
// chunked rebuild of g's freshly reset table. Any older catch-up for the
// group is dropped: it refers to the previous table generation.
func (r *Router) scheduleGroupRebuild(si int, g *updateGroup) {
	s := r.shards[si]
	s.catchups = dropCatchups(s.catchups, func(c *groupCatchup) bool { return c.g == g })
	pfx := r.rib.Shard(si).LocPrefixesInto(nil)
	if len(pfx) == 0 {
		return
	}
	r.groupRebuilds.Add(1)
	s.catchups = append(s.catchups, &groupCatchup{g: g, prefixes: pfx, start: time.Now()})
}

// scheduleMemberReplay snapshots the group table's key set and queues a
// chunked replay of ps's view of it (join catch-up and ROUTE-REFRESH).
// An older replay still queued for the same member is superseded.
func (r *Router) scheduleMemberReplay(si int, ps *peerState) {
	s := r.shards[si]
	s.catchups = dropCatchups(s.catchups, func(c *groupCatchup) bool { return c.member == ps })
	pfx := ps.group.shards[si].adjOut.PrefixesInto(nil)
	if len(pfx) == 0 {
		return
	}
	r.groupRebuilds.Add(1)
	s.catchups = append(s.catchups, &groupCatchup{g: ps.group, member: ps, prefixes: pfx, start: time.Now()})
}

// dropCatchups removes the catch-ups matching drop, preserving order.
func dropCatchups(cs []*groupCatchup, drop func(*groupCatchup) bool) []*groupCatchup {
	out := cs[:0]
	for _, c := range cs {
		if !drop(c) {
			out = append(out, c)
		}
	}
	for i := len(out); i < len(cs); i++ {
		cs[i] = nil
	}
	return out
}

// runCatchupChunk advances the shard's oldest catch-up by one bounded
// chunk, retiring it when done. Called by the shard worker whenever its
// queue idles, and forcibly every few work items under sustained load so
// catch-ups cannot starve.
func (r *Router) runCatchupChunk(si int, s *shard) {
	if len(s.catchups) == 0 {
		return
	}
	if r.processCatchupChunk(si, s.catchups[0]) {
		copy(s.catchups, s.catchups[1:])
		s.catchups[len(s.catchups)-1] = nil
		s.catchups = s.catchups[:len(s.catchups)-1]
	}
}

// drainGroupCatchups runs every catch-up touching group g to completion:
// the barrier the Adj-RIB-Out dump needs so a snapshot taken right after
// a join still reflects the full table.
func (r *Router) drainGroupCatchups(si int, s *shard, g *updateGroup) {
	for i := 0; i < len(s.catchups); {
		c := s.catchups[i]
		if c.g != g {
			i++
			continue
		}
		for !r.processCatchupChunk(si, c) {
		}
		s.catchups = append(s.catchups[:i], s.catchups[i+1:]...)
	}
}

// processCatchupChunk runs one bounded chunk of a catch-up, reporting
// whether the catch-up is finished (completed or abandoned).
func (r *Router) processCatchupChunk(si int, c *groupCatchup) bool {
	sh := &c.g.shards[si]
	if c.member == nil {
		return r.rebuildChunk(si, c, sh)
	}
	return r.replayChunk(si, c, sh)
}

// rebuildChunk advances a whole-group rebuild: re-read each snapshot key
// from the Loc-RIB, export it into the (fresh) group table, and emit the
// resulting transitions to the membership. A key whose best route
// vanished since the snapshot is skipped — the table never advertised
// it, so there is nothing to withdraw; a key a live change already
// advertised re-reads identically and Advertise reports no change.
func (r *Router) rebuildChunk(si int, c *groupCatchup, sh *groupShard) bool {
	if len(sh.members) == 0 {
		// Everyone left mid-rebuild: abandon. A future first member
		// resets the table and schedules a fresh rebuild.
		return true
	}
	end := c.cursor + catchupChunk
	if end > len(c.prefixes) {
		end = len(c.prefixes)
	}
	shardRIB := r.rib.Shard(si)
	items := sh.flushItems[:0]
	for _, p := range c.prefixes[c.cursor:end] {
		cand, ok := shardRIB.Lookup(p)
		if !ok {
			continue
		}
		attrs, ok := r.groupExportAttrs(si, c.g, p, cand)
		if !ok {
			continue
		}
		if old, _, changed := sh.adjOut.Advertise(p, attrs, cand.Peer.Addr); changed {
			items = append(items, groupEmitItem{prefix: p, old: old, new: rib.GroupRoute{Attrs: attrs, Origin: cand.Peer.Addr}})
		}
	}
	r.emitGroupItems(si, c.g, items)
	sh.flushItems = items[:0]
	c.cursor = end
	r.groupRebuildChunks.Add(1)
	if c.cursor >= len(c.prefixes) {
		r.rebuildHist.observe(time.Since(c.start))
		return true
	}
	return false
}

// replayChunk advances a member catch-up replay: re-read each snapshot
// key from the group table and stream the member's view of it. Runs
// sharing an interned attribute block pack into one UPDATE and come from
// the shard's marshal cache, so members joining the same group replay
// the same bytes without re-marshaling them.
func (r *Router) replayChunk(si int, c *groupCatchup, sh *groupShard) bool {
	addr := c.member.info.Addr
	if sh.members[addr] != c.member {
		// The member left (or its slot was re-established): abandon.
		return true
	}
	end := c.cursor + catchupChunk
	if end > len(c.prefixes) {
		end = len(c.prefixes)
	}
	s := r.shards[si]
	limit := r.cfg.ExportBatch
	pfx := sh.pfx[:0]
	var runAttrs *wire.PathAttrs
	//bgplint:allow(shardowner) reason=flush is a function-local closure called only below in this same worker-owned frame; the catch-up never leaves shard worker si
	flush := func() {
		if len(pfx) == 0 {
			return
		}
		if p, err := s.mcache.payloadFor(r, c.g.as4, runAttrs, pfx, 1); err == nil {
			c.member.out.pushShared(p)
		} else {
			// Over-bound run: push the unmarshaled UPDATE and let the
			// session layer fail it exactly as the ungrouped path would.
			c.member.out.push(wire.Update{Attrs: *runAttrs, NLRI: append([]netaddr.Prefix(nil), pfx...)})
		}
		pfx = pfx[:0]
	}
	for _, p := range c.prefixes[c.cursor:end] {
		gr, ok := sh.adjOut.Lookup(p)
		if !ok || gr.Origin == addr {
			continue
		}
		if len(pfx) > 0 && (gr.Attrs != runAttrs || len(pfx) >= limit) {
			flush()
		}
		if len(pfx) == 0 {
			runAttrs = gr.Attrs
		}
		pfx = append(pfx, p)
	}
	flush()
	sh.pfx = pfx[:0]
	c.cursor = end
	r.groupRebuildChunks.Add(1)
	if c.cursor >= len(c.prefixes) {
		r.rebuildHist.observe(time.Since(c.start))
		return true
	}
	return false
}

// UpdateNeighbor replaces the stored configuration for a neighbor AS at
// runtime. It applies to sessions established after the call — an
// already-established session keeps the config (and update group) it
// came up with until it re-establishes, which is how a policy change
// moves a peer between groups.
func (r *Router) UpdateNeighbor(n NeighborConfig) {
	r.mu.Lock()
	r.neighbors[n.AS] = n
	r.mu.Unlock()
}

// neighborConfig reads the stored configuration for a neighbor AS.
func (r *Router) neighborConfig(as uint32) (NeighborConfig, bool) {
	r.mu.Lock()
	n, ok := r.neighbors[as]
	r.mu.Unlock()
	return n, ok
}

// UpdateGroupsEnabled reports whether the router runs grouped emission.
func (r *Router) UpdateGroupsEnabled() bool { return r.cfg.UpdateGroups }

// GroupStats is an operational snapshot of the update-group subsystem.
type GroupStats struct {
	Enabled bool
	// Groups is the number of distinct export-policy groups seen.
	Groups int
	// Runs counts shared emission runs computed and marshaled once;
	// Sends counts the member sessions those runs were fanned out to.
	// Sends/Runs is the fan-out ratio (≈ members per group when every
	// member is clean).
	Runs, Sends uint64
	// BytesBuilt is the total size of marshaled shared payloads;
	// BytesSaved is the marshal work avoided versus per-peer emission
	// (payload size × (recipients−1)).
	BytesBuilt, BytesSaved uint64
	// Suppressed counts MRAI net-no-op transitions dropped before
	// emission.
	Suppressed uint64
	// BytesMarshaled is the bytes actually encoded by the shared marshal
	// cache (misses only); BytesBuilt / BytesMarshaled is the marshal
	// amplification the cache removed. CacheHits and CacheMisses count
	// cache probes.
	BytesMarshaled         uint64
	CacheHits, CacheMisses uint64
	// Rebuilds counts chunked catch-ups scheduled (group rebuilds and
	// member replays); RebuildChunks the bounded chunks they ran in.
	Rebuilds, RebuildChunks uint64
}

// FanoutRatio returns Sends/Runs, the mean number of sessions each
// shared emission run reached.
func (g GroupStats) FanoutRatio() float64 {
	if g.Runs == 0 {
		return 0
	}
	return float64(g.Sends) / float64(g.Runs)
}

// GroupStats returns the update-group counters.
func (r *Router) GroupStats() GroupStats {
	r.mu.Lock()
	n := len(r.groups)
	r.mu.Unlock()
	return GroupStats{
		Enabled:        r.cfg.UpdateGroups,
		Groups:         n,
		Runs:           r.groupRuns.Load(),
		Sends:          r.groupSends.Load(),
		BytesBuilt:     r.groupBytesBuilt.Load(),
		BytesSaved:     r.groupBytesSaved.Load(),
		Suppressed:     r.groupSuppressed.Load(),
		BytesMarshaled: r.groupBytesMarshaled.Load(),
		CacheHits:      r.groupCacheHits.Load(),
		CacheMisses:    r.groupCacheMisses.Load(),
		Rebuilds:       r.groupRebuilds.Load(),
		RebuildChunks:  r.groupRebuildChunks.Load(),
	}
}

// RebuildLatency returns the rebuild/catch-up latency histogram.
func (r *Router) RebuildLatency() RebuildHist { return r.rebuildHist.snapshot() }
