package core

import (
	"sync/atomic"
	"time"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/session"
	"bgpbench/internal/wire"
)

// This file implements the cross-group shared marshal cache and its slab
// allocator. Grouped emission packs route changes into runs (one framed
// UPDATE each); the bytes of a run depend only on (interned attribute
// pointer, prefix sequence, wire mode) — nothing group- or peer-specific
// survives into the message. Different update groups therefore produce
// byte-identical runs whenever their export policies leave a route's
// attributes unchanged (the common case in DFZ-like workloads, and always
// the case for withdrawal runs, which carry no attributes at all). The
// cache marshals each distinct run once globally and hands every later
// consumer — another group in the same work batch, or another member's
// chunked catch-up replay — additional references to the same payload, so
// marshal bytes scale with distinct runs instead of groups × prefixes.
//
// Payload bytes are carved out of per-shard slab arenas rather than
// per-run pooled buffers: a slab is one large pooled block holding many
// consecutive runs, refcounted by the payloads carved from it plus one
// "open" reference while the shard still appends. When the last payload
// drains, the slab as a whole returns to the pool — one pool round-trip
// per ~32 runs instead of one per run.
//
// Ownership: everything except payload release is owned by the shard
// worker (no locks); payload Release and thus slab refcounting run on
// sender goroutines (atomic).

const (
	// slabSize is the arena block size. Each run is at most one BGP
	// message (wire.MaxMsgLen), so a slab holds ~32 runs.
	slabSize = 128 << 10

	// marshalCacheMaxEntries and marshalCacheMaxPrefixes bound one
	// shard's cache: entry count, and total prefixes held for exact-match
	// verification. Crossing either bound clears the whole cache (the
	// reuse pattern is bursty — groups of one work batch, members of one
	// join wave — so evict-all is both cheap and fair).
	marshalCacheMaxEntries  = 8192
	marshalCacheMaxPrefixes = 1 << 18
)

// payloadSlab is one arena block. buf[:used] holds carved payloads; refs
// counts carved payloads plus one open reference held while the shard
// worker still appends.
type payloadSlab struct {
	r    *Router
	buf  []byte
	used int
	refs atomic.Int32
}

// free drops one carved-payload reference; wired as the SharedPayload
// free callback, so it runs (on a sender goroutine) after the last member
// session wrote the run. The last reference returns the slab to the pool.
func (s *payloadSlab) free(_ []byte) { s.releaseRef() }

func (s *payloadSlab) releaseRef() {
	n := s.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("core: payload slab over-released")
	}
	s.r.slabPool.Put(s)
}

// getSlab returns an open slab with recycled capacity and the arena's
// open reference already held.
func (r *Router) getSlab() *payloadSlab {
	//bgplint:allow(pooledbuf) reason=audited ownership transfer: the slab rides inside the shard's marshal cache and returns to the pool when its payload refcount drains (releaseRef)
	s := r.slabPool.Get().(*payloadSlab)
	s.r = r
	s.used = 0
	s.refs.Store(1)
	//bgplint:allow(pooledbuf) reason=audited ownership transfer: callers park the slab in marshalCache.slab; every carved payload holds a counted reference
	return s
}

// runKey identifies one packed emission run: the interned attribute
// pointer (nil for a withdrawal run), the wire mode, and a hash + length
// of the prefix sequence. Interned attribute blocks are immutable and
// never recycled, so pointer identity is stable for the cache's lifetime;
// the prefix hash is verified against a stored copy on every hit, so a
// hash collision degrades to a miss, never to wrong bytes.
type runKey struct {
	attrs *wire.PathAttrs
	as4   bool
	h     uint64
	n     int
}

// runEntry is one cached run: the exact prefix sequence (hit
// verification) and the shared payload, on which the cache holds one
// reference.
type runEntry struct {
	pfx []netaddr.Prefix
	p   *session.SharedPayload
}

// marshalCache is one shard's run cache plus its open slab. Owned by the
// shard worker.
//
//bgplint:owned-by shard-worker
type marshalCache struct {
	m        map[runKey]*runEntry
	prefixes int
	slab     *payloadSlab
}

// runHash is FNV-1a over the prefix sequence.
func runHash(pfx []netaddr.Prefix) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, p := range pfx {
		a := p.Addr()
		mix(a.Hi())
		mix(a.Lo())
		mix(uint64(p.Len())<<8 | uint64(p.Family()))
	}
	return h
}

func prefixesEqual(a, b []netaddr.Prefix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// payloadFor returns one framed UPDATE for the packed run (attrs == nil
// means a withdrawal run) carrying `recipients` transferable references.
// A hit bumps the refcount of bytes marshaled earlier — for another
// group, or for another member's replay chunk; a miss marshals once into
// the shard's slab. A non-nil error means the run exceeds the wire
// message bound; the caller falls back to per-member emission, failing
// exactly as the ungrouped path would.
func (c *marshalCache) payloadFor(r *Router, as4 bool, attrs *wire.PathAttrs, pfx []netaddr.Prefix, recipients int) (*session.SharedPayload, error) {
	key := runKey{attrs: attrs, as4: as4, h: runHash(pfx), n: len(pfx)}
	if c.m == nil {
		c.m = make(map[runKey]*runEntry)
	}
	if e, ok := c.m[key]; ok && prefixesEqual(e.pfx, pfx) {
		e.p.AddRefs(recipients)
		r.groupCacheHits.Add(1)
		return e.p, nil
	}

	var u wire.Update
	if attrs == nil {
		u.Withdrawn = pfx
	} else {
		u.Attrs = *attrs
		u.NLRI = pfx
	}
	s := c.slab
	if s == nil || len(s.buf)-s.used < wire.MaxMsgLen {
		c.rotate(r)
		s = c.slab
	}
	dst := s.buf[s.used:s.used:len(s.buf)]
	b, err := wire.AppendMessageMode(dst, u, as4)
	if err != nil {
		return nil, err
	}
	r.groupCacheMisses.Add(1)
	r.groupBytesMarshaled.Add(uint64(len(b)))
	if len(b) > len(s.buf)-s.used {
		// The marshal outgrew the slab tail and reallocated (cannot
		// happen while messages respect wire.MaxMsgLen; defensive): the
		// bytes live in their own heap block, so no slab reference.
		p := session.NewSharedPayload(b, 1, 1, recipients+1, nil)
		c.insert(key, pfx, p)
		return p, nil
	}
	s.used += len(b)
	s.refs.Add(1)
	// Audited ownership transfer: the payload's refcount returns the
	// slab to the pool via payloadSlab.free after the last member
	// session writes it.
	p := session.NewSharedPayload(b, 1, 1, recipients+1, s.free)
	c.insert(key, pfx, p)
	return p, nil
}

// insert stores a run under the cache's own reference (included in the
// payload's initial refcount by payloadFor), clearing everything first
// when a bound is hit.
func (c *marshalCache) insert(key runKey, pfx []netaddr.Prefix, p *session.SharedPayload) {
	if len(c.m) >= marshalCacheMaxEntries || c.prefixes+len(pfx) > marshalCacheMaxPrefixes {
		c.clear()
	}
	if old, ok := c.m[key]; ok {
		// Same key, different run (hash collision): replace the entry.
		c.prefixes -= len(old.pfx)
		old.p.Release()
	}
	c.m[key] = &runEntry{pfx: append([]netaddr.Prefix(nil), pfx...), p: p}
	c.prefixes += len(pfx)
}

// clear releases every cached reference. Payloads still referenced by
// in-flight sends survive until their recipients release them.
func (c *marshalCache) clear() {
	for k, e := range c.m {
		e.p.Release()
		delete(c.m, k)
	}
	c.prefixes = 0
}

// shutdown drops every reference the cache holds: one per cached run
// plus the open slab's arena reference. The shard worker defers it on
// exit; without it the cached payloads pin their slabs forever and the
// arena blocks leak to GC instead of returning to the pool. Payloads
// still held by in-flight sends survive until their recipients release
// them, exactly as with clear().
func (c *marshalCache) shutdown() {
	c.clear()
	if c.slab != nil {
		c.slab.releaseRef()
		c.slab = nil
	}
}

// rotate closes the current slab (dropping the arena's open reference)
// and opens a fresh one.
func (c *marshalCache) rotate(r *Router) {
	if c.slab != nil {
		c.slab.releaseRef()
	}
	// Audited ownership transfer: the open slab is parked in the cache;
	// its refcount returns it to the pool when the carved payloads
	// drain.
	c.slab = r.getSlab()
}

// rebuildBuckets are the upper bounds (seconds) of the rebuild-latency
// histogram, chosen to straddle the chunked walk times of 10k..1M-prefix
// tables.
var rebuildBuckets = [...]float64{0.001, 0.01, 0.1, 1, 10}

// rebuildHist is a fixed-bucket histogram of group rebuild / catch-up
// replay wall times, written lock-free by the shard workers.
type rebuildHist struct {
	counts   [len(rebuildBuckets) + 1]atomic.Uint64
	sumNanos atomic.Uint64
	total    atomic.Uint64
}

func (h *rebuildHist) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(rebuildBuckets) && sec > rebuildBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(uint64(d.Nanoseconds()))
	h.total.Add(1)
}

// RebuildHist is a snapshot of the rebuild-latency histogram in
// Prometheus terms: Counts[i] observations at most Bounds[i] seconds,
// with Counts[len(Bounds)] the overflow bucket.
type RebuildHist struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

func (h *rebuildHist) snapshot() RebuildHist {
	out := RebuildHist{
		Bounds: rebuildBuckets[:],
		Counts: make([]uint64, len(h.counts)),
		Sum:    float64(h.sumNanos.Load()) / 1e9,
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}
