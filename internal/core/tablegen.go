// Package core implements the BGP router under test — sessions, import and
// export policy, the decision process over the three RIBs, and FIB
// installation — together with the deterministic workload generators both
// benchmark substrates (live and modeled) feed it with.
package core

import (
	"math/rand"
	"sort"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// Route is one generated routing-table entry: a prefix and the AS path a
// speaker announces it with.
type Route struct {
	Prefix netaddr.Prefix
	Path   wire.ASPath
}

// prefixLengthWeights approximates the CIDR length distribution of the
// mid-2000s global routing table: dominated by /24s with mass at /16 and
// the /19-/23 aggregates.
var prefixLengthWeights = []struct {
	length int
	weight int
}{
	{8, 1}, {12, 1}, {14, 1}, {15, 1},
	{16, 12}, {17, 3}, {18, 4}, {19, 7},
	{20, 8}, {21, 8}, {22, 10}, {23, 10}, {24, 54},
}

// TableGenConfig parameterizes the synthetic table generator.
type TableGenConfig struct {
	// N is the number of distinct prefixes.
	N int
	// Seed makes generation deterministic; equal seeds give equal tables.
	Seed int64
	// MinPathLen / MaxPathLen bound AS-path lengths (inclusive). Defaults
	// are 2 and 5: paths of at least 2 leave room for the "shorter path"
	// variants used by Scenarios 7-8.
	MinPathLen, MaxPathLen int
	// FirstAS, when nonzero, forces every path's first (neighbour) AS,
	// matching routes as announced by one speaker.
	FirstAS uint32
	// Family selects the address family of the generated prefixes. The
	// zero value (FamilyV4) reproduces the historical IPv4 tables
	// byte-for-byte; FamilyV6 draws prefixes from 2000::/3 with a
	// /48-dominated length mix.
	Family netaddr.Family
	// AttrGroups, when > 1, draws every route's AS path from a pool of
	// this many distinct paths with a Zipf-distributed sharing profile
	// (s = 1.2): a few heavy transit paths cover much of the table and a
	// long tail of paths covers the rest, approximating the DFZ's
	// attribute-sharing skew — the realistic middle ground between
	// UniformPath (one attribute block) and the default one-fresh-path-
	// per-route worst case. Routes sharing a path are kept consecutive so
	// Updates still packs them into shared-attribute messages. Values
	// below 2 keep the historical per-route paths, so pinned digests are
	// unaffected.
	AttrGroups int
}

// prefixLengthWeightsV6 approximates the IPv6 global-table length mix:
// dominated by /48 assignments with mass at the /32 allocations.
var prefixLengthWeightsV6 = []struct {
	length int
	weight int
}{
	{29, 1}, {32, 14}, {36, 4}, {40, 7},
	{44, 8}, {46, 3}, {47, 2}, {48, 55}, {56, 4}, {64, 2},
}

// GenerateTable produces a deterministic synthetic routing table with a
// realistic prefix-length mix, unique prefixes, and loop-free AS paths.
func GenerateTable(cfg TableGenConfig) []Route {
	if cfg.MinPathLen == 0 {
		cfg.MinPathLen = 2
	}
	if cfg.MaxPathLen == 0 {
		cfg.MaxPathLen = 5
	}
	if cfg.MaxPathLen < cfg.MinPathLen {
		cfg.MaxPathLen = cfg.MinPathLen
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	weights := prefixLengthWeights
	if cfg.Family == netaddr.FamilyV6 {
		weights = prefixLengthWeightsV6
	}
	totalWeight := 0
	for _, w := range weights {
		totalWeight += w.weight
	}
	pickLen := func() int {
		x := rng.Intn(totalWeight)
		for _, w := range weights {
			if x < w.weight {
				return w.length
			}
			x -= w.weight
		}
		return 24
	}

	seen := make(map[netaddr.Prefix]bool, cfg.N)
	out := make([]Route, 0, cfg.N)
	for len(out) < cfg.N {
		l := pickLen()
		var a netaddr.Addr
		if cfg.Family == netaddr.FamilyV6 {
			// Global unicast: force the 2000::/3 block, randomize the rest
			// of the top 64 bits (generated lengths never exceed /64).
			hi := rng.Uint64()&^(uint64(7)<<61) | uint64(1)<<61
			a = netaddr.AddrFrom128(hi, 0)
		} else {
			// Keep generated space inside 1.0.0.0/8 .. 223.0.0.0/8
			// (unicast). This arm must stay byte-identical to the
			// historical v4-only generator: equal seeds must keep giving
			// equal tables across releases.
			v := rng.Uint32()
			o1 := byte(v >> 24)
			if o1 == 0 || o1 >= 224 {
				continue
			}
			a = netaddr.AddrFromV4(v)
		}
		p := netaddr.PrefixFrom(a, l)
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, Route{Prefix: p, Path: genPath(rng, cfg)})
	}
	if cfg.AttrGroups > 1 {
		// DFZ-style attribute sharing: re-draw every path from a Zipf-
		// weighted pool. This is a post-pass over the fully generated
		// table so the prefix stream above stays byte-identical to the
		// historical generator for any AttrGroups value. The sampled pool
		// indices are sorted before assignment, which keeps routes
		// sharing a path consecutive (Updates packs consecutive same-path
		// routes into one message) without touching the prefix order.
		pool := make([]wire.ASPath, cfg.AttrGroups)
		for i := range pool {
			pool[i] = genPath(rng, cfg)
		}
		z := rand.NewZipf(rng, 1.2, 1, uint64(cfg.AttrGroups-1))
		idx := make([]uint64, len(out))
		for i := range idx {
			idx[i] = z.Uint64()
		}
		sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
		for i := range out {
			out[i].Path = pool[idx[i]]
		}
	}
	return out
}

// genPath builds a loop-free AS_SEQUENCE.
func genPath(rng *rand.Rand, cfg TableGenConfig) wire.ASPath {
	n := cfg.MinPathLen
	if cfg.MaxPathLen > cfg.MinPathLen {
		n += rng.Intn(cfg.MaxPathLen - cfg.MinPathLen + 1)
	}
	asns := make([]uint32, 0, n)
	used := make(map[uint32]bool, n)
	if cfg.FirstAS != 0 {
		asns = append(asns, cfg.FirstAS)
		used[cfg.FirstAS] = true
	}
	for len(asns) < n {
		a := uint32(1 + rng.Intn(64000))
		if used[a] {
			continue
		}
		used[a] = true
		asns = append(asns, a)
	}
	return wire.NewASPath(asns...)
}

// Lengthen returns a copy of the route whose AS path is extra hops longer
// (prepending fresh ASNs after the first hop is replaced by newFirstAS).
// It models the same destination advertised by a different neighbour with
// a less attractive path — the Scenario 5-6 workload.
func Lengthen(r Route, newFirstAS uint32, extra int, seed int64) Route {
	// The v4 seed mix must remain int64(uint32 address value): it feeds
	// deterministic workloads whose digests are pinned by conformance.
	a := r.Prefix.Addr()
	mix := int64(a.V4()) //bgplint:allow(afifamily) reason=v6 addresses take the Hi^Lo mix below; v4 mix is digest-pinned
	if !a.Is4() {
		mix = int64(a.Hi() ^ a.Lo())
	}
	rng := rand.New(rand.NewSource(seed ^ mix))
	asns := flatten(r.Path)
	out := make([]uint32, 0, len(asns)+extra)
	out = append(out, newFirstAS)
	for i := 0; i < extra; i++ {
		out = append(out, uint32(1+rng.Intn(64000)))
	}
	// Keep the original path after the first hop so the origin AS is
	// unchanged (same destination network).
	if len(asns) > 1 {
		out = append(out, asns[1:]...)
	} else {
		out = append(out, asns...)
	}
	return Route{Prefix: r.Prefix, Path: wire.NewASPath(out...)}
}

// Shorten returns a copy of the route with a strictly shorter AS path via
// a different first hop — the Scenario 7-8 workload (the router must
// replace its best route and update the FIB). Paths of length <= 1 are
// returned with length 1.
func Shorten(r Route, newFirstAS uint32) Route {
	asns := flatten(r.Path)
	var out []uint32
	switch {
	case len(asns) <= 1:
		out = []uint32{newFirstAS}
	case len(asns) == 2:
		out = []uint32{newFirstAS}
	default:
		out = append([]uint32{newFirstAS}, asns[2:]...)
	}
	return Route{Prefix: r.Prefix, Path: wire.NewASPath(out...)}
}

func flatten(p wire.ASPath) []uint32 {
	var out []uint32
	for _, s := range p.Segments {
		out = append(out, s.ASNs...)
	}
	return out
}

// Updates converts routes into UPDATE messages with at most
// prefixesPerMsg NLRI entries each, grouping only routes that share a
// path. prefixesPerMsg is the paper's packet-size axis: 1 for "small
// packets", 500 for "large packets" (large updates group by path).
//
// When grouping, routes with distinct paths are never merged; with
// prefixesPerMsg == 1 each route gets its own message regardless.
func Updates(routes []Route, nextHop netaddr.Addr, prefixesPerMsg int) []wire.Update {
	if prefixesPerMsg < 1 {
		prefixesPerMsg = 1
	}
	var out []wire.Update
	if prefixesPerMsg == 1 {
		for _, r := range routes {
			out = append(out, wire.Update{
				Attrs: wire.NewPathAttrs(wire.OriginIGP, r.Path, nextHop),
				NLRI:  []netaddr.Prefix{r.Prefix},
			})
		}
		return out
	}
	// Group consecutive routes by identical path to share one attribute
	// block, capped at prefixesPerMsg and the wire-format size limit.
	i := 0
	for i < len(routes) {
		j := i + 1
		for j < len(routes) && j-i < prefixesPerMsg && routes[j].Path.Equal(routes[i].Path) {
			j++
		}
		u := wire.Update{Attrs: wire.NewPathAttrs(wire.OriginIGP, routes[i].Path, nextHop)}
		for _, r := range routes[i:j] {
			u.NLRI = append(u.NLRI, r.Prefix)
		}
		out = append(out, u)
		i = j
	}
	return out
}

// Withdrawals converts routes into withdrawal UPDATEs with at most
// prefixesPerMsg withdrawn prefixes each.
func Withdrawals(routes []Route, prefixesPerMsg int) []wire.Update {
	if prefixesPerMsg < 1 {
		prefixesPerMsg = 1
	}
	var out []wire.Update
	for i := 0; i < len(routes); i += prefixesPerMsg {
		j := i + prefixesPerMsg
		if j > len(routes) {
			j = len(routes)
		}
		var u wire.Update
		for _, r := range routes[i:j] {
			u.Withdrawn = append(u.Withdrawn, r.Prefix)
		}
		out = append(out, u)
	}
	return out
}

// UniformPath rewrites every route to share one AS path, letting large
// UPDATEs actually pack prefixesPerMsg prefixes (the paper's large-packet
// scenarios pack 500 prefixes into one UPDATE, which requires a shared
// attribute block).
func UniformPath(routes []Route, path wire.ASPath) []Route {
	out := make([]Route, len(routes))
	for i, r := range routes {
		out[i] = Route{Prefix: r.Prefix, Path: path}
	}
	return out
}
