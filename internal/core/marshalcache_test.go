package core

import (
	"testing"
	"time"
)

// TestMarshalCacheDrainsOnStop is the regression test for the shutdown
// leak found by the refbalance audit: shard workers used to return on
// Stop without dropping the marshal cache's payload references or the
// open slab's arena reference, so every slab with a cached run stayed
// pinned forever (lost to GC instead of returning to the pool). After
// Stop, every shard's cache must be empty and every slab's refcount
// must drain to zero.
func TestMarshalCacheDrainsOnStop(t *testing.T) {
	cfg := testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65100, Export: medPolicy(0)},
		NeighborConfig{AS: 65101, Export: medPolicy(0)},
	)
	cfg.UpdateGroups = true
	cfg.Shards = 4
	r := mustStartRouter(t, cfg)

	feeder := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer feeder.stop()
	a := dialRecv(t, r, 65100, "10.8.0.1", 0)
	defer a.stop()
	b := dialRecv(t, r, 65101, "10.8.0.2", 0)
	defer b.stop()

	table := groupTestTable(300)
	feeder.announce(t, table, 40)
	n := len(table)
	waitFor(t, 10*time.Second, func() bool {
		return r.RIBLen() == n && a.len() == n && b.len() == n
	})

	// The grouped path must actually have populated the caches, or the
	// test proves nothing. Collect the open slabs so their refcounts can
	// be checked after the workers exit.
	var slabs []*payloadSlab
	cached := 0
	for _, s := range r.shards {
		cached += len(s.mcache.m)
		if s.mcache.slab != nil {
			slabs = append(slabs, s.mcache.slab)
		}
	}
	if cached == 0 || len(slabs) == 0 {
		t.Fatalf("workload never exercised the marshal cache: %d entries, %d open slabs", cached, len(slabs))
	}

	r.Stop()

	for i, s := range r.shards {
		if got := len(s.mcache.m); got != 0 {
			t.Errorf("shard %d: %d cached runs survived Stop", i, got)
		}
		if s.mcache.slab != nil {
			t.Errorf("shard %d: open slab survived Stop", i)
		}
	}
	// Payload references held by in-flight sender goroutines drain
	// shortly after the sessions stop; poll rather than assert once.
	waitFor(t, 5*time.Second, func() bool {
		for _, sl := range slabs {
			if sl.refs.Load() != 0 {
				return false
			}
		}
		return true
	})
}
