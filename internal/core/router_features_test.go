package core

import (
	"testing"
	"time"

	"bgpbench/internal/damping"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

func TestRouterFlapDampingSuppressesUnstableRoute(t *testing.T) {
	cfg := testRouterConfig(NeighborConfig{AS: 65001})
	// Suppress below two full penalties: with default limits the second
	// flap lands at 2000 minus epsilon of decay, so real configurations
	// need three flaps; 1800 makes two flaps suppress deterministically.
	cfg.Damping = &damping.Config{SuppressLimit: 1800}
	r := mustStartRouter(t, cfg)
	defer r.Stop()
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	route := []Route{{
		Prefix: netaddr.MustParsePrefix("192.0.2.0/24"),
		Path:   wire.NewASPath(65001, 7),
	}}

	// Announce; withdraw (flap 1); re-announce; withdraw (flap 2);
	// re-announce -> suppressed.
	sp.announce(t, route, 1)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 1 })
	sp.withdraw(t, route, 1)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 0 })
	sp.announce(t, route, 1)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 1 })
	sp.withdraw(t, route, 1)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 0 })

	sp.announce(t, route, 1)
	// The re-announcement must be suppressed: transactions advance but the
	// FIB stays empty.
	waitFor(t, 5*time.Second, func() bool { return r.Transactions() >= 5 })
	time.Sleep(20 * time.Millisecond)
	if r.FIB().Len() != 0 {
		t.Fatalf("suppressed route installed: FIB len %d", r.FIB().Len())
	}
	if r.Damper() == nil || r.Damper().Flaps() < 2 {
		t.Fatalf("damper flaps = %v", r.Damper().Flaps())
	}
}

func TestRouterDampingStableRouteUnaffected(t *testing.T) {
	cfg := testRouterConfig(NeighborConfig{AS: 65001})
	cfg.Damping = &damping.Config{}
	r := mustStartRouter(t, cfg)
	defer r.Stop()
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	routes := GenerateTable(TableGenConfig{N: 100, Seed: 9, FirstAS: 65001})
	sp.announce(t, routes, 50)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 100 })
	// Identical re-announcement is not a flap.
	sp.announce(t, routes, 50)
	waitFor(t, 5*time.Second, func() bool { return r.Transactions() == 200 })
	if got := r.Damper().Flaps(); got != 0 {
		t.Fatalf("stable routes produced %d flaps", got)
	}
	if r.FIB().Len() != 100 {
		t.Fatalf("FIB len = %d", r.FIB().Len())
	}
}

func TestRouterMRAICoalescesChurn(t *testing.T) {
	cfg := testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65002},
	)
	cfg.MRAI = 100 * time.Millisecond
	r := mustStartRouter(t, cfg)
	defer r.Stop()

	sp1 := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp1.stop()
	sp2 := dialSpeaker(t, r, 65002, "2.2.2.2")
	defer sp2.stop()

	// Churn one prefix rapidly: announce/withdraw 20 times within one MRAI
	// window, ending announced. Speaker 2 should see far fewer UPDATEs
	// than 40 — ideally the coalesced net result.
	route := []Route{{
		Prefix: netaddr.MustParsePrefix("203.0.113.0/24"),
		Path:   wire.NewASPath(65001, 9),
	}}
	for i := 0; i < 20; i++ {
		sp1.announce(t, route, 1)
		sp1.withdraw(t, route, 1)
	}
	sp1.announce(t, route, 1)
	waitFor(t, 5*time.Second, func() bool { return r.Transactions() >= 41 })

	// Wait two MRAI windows for the flush, then check the peer's view.
	waitFor(t, 5*time.Second, func() bool { return sp2.prefixesIn.Load() >= 1 })
	time.Sleep(250 * time.Millisecond)
	updates := sp2.prefixesIn.Load() + sp2.withdrawsIn.Load()
	if updates > 8 {
		t.Fatalf("MRAI sent %d route events for 41 input churns; want strong coalescing", updates)
	}
	// Final state must be correct: the route is announced.
	if sp2.prefixesIn.Load() < 1 {
		t.Fatal("net announcement never delivered")
	}
	if r.FIB().Len() != 1 {
		t.Fatalf("FIB len = %d", r.FIB().Len())
	}
}

func TestRouterMRAIBulkTransferStillBatches(t *testing.T) {
	cfg := testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65002},
	)
	cfg.MRAI = 50 * time.Millisecond
	r := mustStartRouter(t, cfg)
	defer r.Stop()

	sp1 := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp1.stop()
	routes := UniformPath(
		GenerateTable(TableGenConfig{N: 600, Seed: 10, FirstAS: 65001}),
		wire.NewASPath(65001, 70, 71),
	)
	sp1.announce(t, routes, 200)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 600 })

	sp2 := dialSpeaker(t, r, 65002, "2.2.2.2")
	defer sp2.stop()
	// Phase 2 export is immediate (not MRAI-gated).
	waitFor(t, 10*time.Second, func() bool { return sp2.prefixesIn.Load() == 600 })

	// Incremental changes flow via MRAI with attribute grouping.
	shorter := make([]Route, len(routes))
	for i, rt := range routes {
		shorter[i] = Shorten(rt, 65002)
	}
	sp1rcvBefore := sp1.prefixesIn.Load()
	sp2.announce(t, shorter, 200)
	waitFor(t, 10*time.Second, func() bool { return sp1.prefixesIn.Load() >= sp1rcvBefore+600 })
}

func TestRouterMaxPrefixesTearsDownSession(t *testing.T) {
	r := mustStartRouter(t, testRouterConfig(NeighborConfig{AS: 65001, MaxPrefixes: 100}))
	defer r.Stop()
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	routes := GenerateTable(TableGenConfig{N: 150, Seed: 14, FirstAS: 65001})
	sp.announce(t, routes, 50)

	// The session must go down and every contributed route must vanish.
	waitFor(t, 10*time.Second, func() bool { return !sp.sess.Established() })
	waitFor(t, 10*time.Second, func() bool { return r.FIB().Len() == 0 })
}

func TestRouterMaxPrefixesAllowsWithinLimit(t *testing.T) {
	r := mustStartRouter(t, testRouterConfig(NeighborConfig{AS: 65001, MaxPrefixes: 200}))
	defer r.Stop()
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	routes := GenerateTable(TableGenConfig{N: 200, Seed: 15, FirstAS: 65001})
	sp.announce(t, routes, 50)
	waitFor(t, 10*time.Second, func() bool { return r.FIB().Len() == 200 })
	if !sp.sess.Established() {
		t.Fatal("session should survive at exactly the limit")
	}
	// Withdrawals free budget: withdraw half, announce a fresh half.
	sp.withdraw(t, routes[:100], 50)
	waitFor(t, 10*time.Second, func() bool { return r.FIB().Len() == 100 })
	fresh := GenerateTable(TableGenConfig{N: 100, Seed: 16, FirstAS: 65001})
	sp.announce(t, fresh, 50)
	waitFor(t, 10*time.Second, func() bool { return r.FIB().Len() == 200 })
	if !sp.sess.Established() {
		t.Fatal("session should survive after withdraw/announce churn within limit")
	}
}

func TestRouterRIBLen(t *testing.T) {
	r := mustStartRouter(t, testRouterConfig(NeighborConfig{AS: 65001}))
	defer r.Stop()
	if got := r.RIBLen(); got != 0 {
		t.Fatalf("empty RIBLen = %d", got)
	}
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()
	routes := GenerateTable(TableGenConfig{N: 70, Seed: 17, FirstAS: 65001})
	sp.announce(t, routes, 70)
	waitFor(t, 5*time.Second, func() bool { return r.RIBLen() == 70 })
	if r.RIBLen() != r.FIB().Len() {
		t.Fatalf("RIB (%d) and FIB (%d) disagree", r.RIBLen(), r.FIB().Len())
	}
}
