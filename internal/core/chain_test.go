package core

import (
	"testing"
	"time"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// TestThreeRouterChainPropagation wires three Go routers into a transit
// chain — origin speaker -> A (AS 100) -> B (AS 200) -> C (AS 300) ->
// watcher speaker — and verifies that routes propagate hop by hop with
// correct AS-path prepending and next-hop rewriting at every eBGP edge,
// and that withdrawals ripple back through the chain.
func TestThreeRouterChainPropagation(t *testing.T) {
	newChainRouter := func(as uint32, id string, neighbors ...NeighborConfig) *Router {
		t.Helper()
		r, err := NewRouter(Config{
			AS:         as,
			ID:         netaddr.MustParseAddr(id),
			ListenAddr: "127.0.0.1:0",
			Neighbors:  neighbors,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Stop)
		return r
	}

	// Build front to back: each router dials its upstream.
	routerA := newChainRouter(100, "10.0.0.1",
		NeighborConfig{AS: 65001}, // origin speaker
		NeighborConfig{AS: 200},   // B connects inbound
	)
	routerB := newChainRouter(200, "20.0.0.1",
		NeighborConfig{AS: 100, DialTarget: routerA.ListenAddr()},
		NeighborConfig{AS: 300}, // C connects inbound
	)
	routerC2 := newChainRouter(300, "30.0.0.2",
		NeighborConfig{AS: 200, DialTarget: routerB.ListenAddr()},
		NeighborConfig{AS: 400}, // watcher speaker
	)

	origin := dialSpeaker(t, routerA, 65001, "1.1.1.1")
	defer origin.stop()
	watcher := dialSpeaker(t, routerC2, 400, "4.4.4.4")
	defer watcher.stop()

	routes := []Route{
		{Prefix: netaddr.MustParsePrefix("198.51.100.0/24"), Path: wire.NewASPath(65001, 7000)},
		{Prefix: netaddr.MustParsePrefix("203.0.113.0/24"), Path: wire.NewASPath(65001, 7000, 7001)},
	}
	origin.announce(t, routes, 1)

	// The watcher at the end of the chain must receive both routes.
	waitFor(t, 15*time.Second, func() bool { return watcher.prefixesIn.Load() >= 2 })

	// Path correctness: 300 200 100 65001 ...
	watcher.mu.Lock()
	sample := watcher.sampleUpdate
	watcher.mu.Unlock()
	path := sample.Attrs.ASPath
	flat := []uint32{}
	for _, seg := range path.Segments {
		flat = append(flat, seg.ASNs...)
	}
	if len(flat) < 4 || flat[0] != 300 || flat[1] != 200 || flat[2] != 100 || flat[3] != 65001 {
		t.Fatalf("end-to-end AS path = %v, want 300 200 100 65001 ...", path)
	}
	// Next hop at the last edge is router C's next-hop-self.
	if sample.Attrs.NextHop != netaddr.MustParseAddr("30.0.0.2") {
		t.Fatalf("next hop = %v, want 30.0.0.2", sample.Attrs.NextHop)
	}

	// Every router along the chain installed the routes.
	for name, r := range map[string]*Router{"A": routerA, "B": routerB, "C": routerC2} {
		waitFor(t, 10*time.Second, func() bool { return r.FIB().Len() >= 2 })
		_ = name
	}

	// Withdrawal ripples to the watcher.
	origin.withdraw(t, routes, 1)
	waitFor(t, 15*time.Second, func() bool { return watcher.withdrawsIn.Load() >= 2 })
	waitFor(t, 10*time.Second, func() bool { return routerC2.FIB().Len() == 0 })
}
