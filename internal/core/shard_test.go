package core

import (
	"testing"
	"time"

	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/rib"
	"bgpbench/internal/wire"
)

// runShardedWorkload drives one router through a deterministic two-speaker
// stream — full table from speaker 1, competing variants from speaker 2,
// then a partial withdrawal — and returns the settled Loc-RIB and FIB.
func runShardedWorkload(t *testing.T, shards int) ([]LocRoute, map[netaddr.Prefix]fib.Entry) {
	t.Helper()
	return runShardedWorkloadBatch(t, shards, 0, 0)
}

// runShardedWorkloadBatch is runShardedWorkload with explicit
// batched-dispatch knobs (0 = router defaults, negative = disabled).
func runShardedWorkloadBatch(t *testing.T, shards, batchUpdates int, batchDelay time.Duration) ([]LocRoute, map[netaddr.Prefix]fib.Entry) {
	t.Helper()
	r := mustStartRouter(t, Config{
		AS:              65000,
		ID:              netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr:      "127.0.0.1:0",
		Shards:          shards,
		BatchMaxUpdates: batchUpdates,
		BatchMaxDelay:   batchDelay,
		Neighbors: []NeighborConfig{
			{AS: 65001},
			{AS: 65002},
		},
	})
	defer r.Stop()
	sp1 := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp1.stop()
	sp2 := dialSpeaker(t, r, 65002, "2.2.2.2")
	defer sp2.stop()

	table := GenerateTable(TableGenConfig{N: 1500, Seed: 9, FirstAS: 65001})
	n := uint64(len(table))

	// Speaker 2 competes: shorter paths for the first half (these win),
	// longer for the second half (these lose).
	variant := make([]Route, len(table))
	for i, rt := range table {
		if i < len(table)/2 {
			variant[i] = Shorten(rt, 65002)
		} else {
			variant[i] = Lengthen(rt, 65002, 2, 9)
		}
	}
	withdrawn := table[:len(table)/4]

	sp1.announce(t, table, 50)
	sp2.announce(t, variant, 50)
	sp1.withdraw(t, withdrawn, 50)

	target := 2*n + uint64(len(withdrawn))
	waitFor(t, 30*time.Second, func() bool { return r.Transactions() >= target })

	// DumpLocRIB is a per-shard barrier: everything queued ahead of it,
	// including the FIB batch commits, has been processed when it returns.
	loc := r.DumpLocRIB()
	fibDump := make(map[netaddr.Prefix]fib.Entry)
	r.FIB().Walk(func(p netaddr.Prefix, e fib.Entry) bool {
		fibDump[p] = e
		return true
	})
	return loc, fibDump
}

// TestShardedEquivalence: the sharded router (N=4) must converge to exactly
// the same Loc-RIB and forwarding table as the single-worker pipeline (N=1)
// on the same deterministic update stream.
func TestShardedEquivalence(t *testing.T) {
	locSingle, fibSingle := runShardedWorkload(t, 1)
	locSharded, fibSharded := runShardedWorkload(t, 4)
	assertSameState(t, locSingle, fibSingle, locSharded, fibSharded)
}

// assertSameState fails unless two settled (Loc-RIB, FIB) snapshots are
// identical row for row.
func assertSameState(t *testing.T, locWant []LocRoute, fibWant map[netaddr.Prefix]fib.Entry, locGot []LocRoute, fibGot map[netaddr.Prefix]fib.Entry) {
	t.Helper()
	if len(locWant) != len(locGot) {
		t.Fatalf("Loc-RIB sizes differ: want=%d got=%d", len(locWant), len(locGot))
	}
	for i := range locWant {
		a, b := locWant[i], locGot[i]
		if a.Prefix != b.Prefix || a.Peer != b.Peer {
			t.Fatalf("row %d: %v via %v != %v via %v", i, a.Prefix, a.Peer, b.Prefix, b.Peer)
		}
		if !a.Attrs.Equal(*b.Attrs) {
			t.Fatalf("row %d (%v): attrs differ", i, a.Prefix)
		}
	}
	if len(fibWant) != len(fibGot) {
		t.Fatalf("FIB sizes differ: want=%d got=%d", len(fibWant), len(fibGot))
	}
	for p, want := range fibWant {
		if got, ok := fibGot[p]; !ok || got != want {
			t.Fatalf("FIB %v = %v/%v, want %v", p, got, ok, want)
		}
	}
}

// TestShardStatsAndIntern: with multiple shards the per-shard transaction
// counters must sum to the router total, and the attribute intern table
// must dedupe the uniform-path workload to a handful of entries.
func TestShardStatsAndIntern(t *testing.T) {
	r := mustStartRouter(t, Config{
		AS:         65000,
		ID:         netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr: "127.0.0.1:0",
		Shards:     4,
		Neighbors:  []NeighborConfig{{AS: 65001}},
	})
	defer r.Stop()
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	table := UniformPath(
		GenerateTable(TableGenConfig{N: 1000, Seed: 3, FirstAS: 65001}),
		wire.NewASPath(65001, 100, 101, 102),
	)
	sp.announce(t, table, 100)
	waitFor(t, 20*time.Second, func() bool { return r.Transactions() >= uint64(len(table)) })

	if r.Shards() != 4 {
		t.Fatalf("Shards = %d", r.Shards())
	}
	stats := r.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats rows = %d", len(stats))
	}
	var sum, busy uint64
	for _, s := range stats {
		sum += s.Transactions
		if s.Transactions > 0 {
			busy++
		}
	}
	if sum != r.Transactions() {
		t.Fatalf("per-shard transactions sum %d != total %d", sum, r.Transactions())
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 shards saw work; sharding not spreading", busy)
	}
	is := r.InternStats()
	// One uniform attribute block for 1000 prefixes: the table must stay
	// tiny and almost every lookup must hit.
	if is.Size == 0 || is.Size > 4 {
		t.Fatalf("intern size = %d, want 1..4", is.Size)
	}
	if is.HitRate() < 0.9 {
		t.Fatalf("intern hit rate = %v, want >= 0.9", is.HitRate())
	}
	batches, ops := r.FIBBatchStats()
	if batches == 0 || ops < uint64(len(table)) {
		t.Fatalf("FIB batch stats = %d batches, %d ops", batches, ops)
	}
	if ops/batches < 2 {
		t.Fatalf("mean FIB batch size %d; batching not effective", ops/batches)
	}
	if r.RIBLen() != len(table) {
		t.Fatalf("RIBLen = %d, want %d", r.RIBLen(), len(table))
	}
}

// TestDuplicateNeighborASRejected: configuration validation must reject two
// neighbours with the same AS, since sessions are matched to their
// configuration by AS.
func TestDuplicateNeighborASRejected(t *testing.T) {
	_, err := NewRouter(Config{
		AS: 65000,
		ID: netaddr.MustParseAddr("10.255.0.1"),
		Neighbors: []NeighborConfig{
			{AS: 65001},
			{AS: 65001, MaxPrefixes: 10},
		},
	})
	if err == nil {
		t.Fatal("duplicate neighbor AS accepted")
	}
}

// TestShardOfPartitionStable: the prefix hash must be deterministic and
// in-range for every shard count the router can run with.
func TestShardOfPartitionStable(t *testing.T) {
	table := GenerateTable(TableGenConfig{N: 500, Seed: 1})
	for _, n := range []int{1, 2, 4, 8} {
		counts := make([]int, n)
		for _, rt := range table {
			si := rib.ShardOf(rt.Prefix, n)
			if si < 0 || si >= n {
				t.Fatalf("shard %d out of range for n=%d", si, n)
			}
			counts[si]++
		}
		if n > 1 {
			for i, c := range counts {
				if c == 0 {
					t.Fatalf("n=%d: shard %d got no prefixes", n, i)
				}
			}
		}
	}
}
