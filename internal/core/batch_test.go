package core

import (
	"testing"
	"time"

	"bgpbench/internal/netaddr"
)

// TestBatchedEquivalence: batched dispatch must converge to exactly the
// state the unbatched pipeline produces, for every combination of shard
// count and batch bound. The baseline run disables batching entirely.
func TestBatchedEquivalence(t *testing.T) {
	locBase, fibBase := runShardedWorkloadBatch(t, 1, -1, 0)
	cases := []struct {
		name       string
		shards     int
		maxUpdates int
	}{
		{"1shard-batch1", 1, 1},
		{"1shard-batch8", 1, 8},
		{"4shard-unbatched", 4, -1},
		{"4shard-batch1", 4, 1},
		{"4shard-batch8", 4, 8},
		{"4shard-batch256", 4, 256},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			loc, fibDump := runShardedWorkloadBatch(t, c.shards, c.maxUpdates, 0)
			assertSameState(t, locBase, fibBase, loc, fibDump)
		})
	}
}

// TestBatchDispatchCounters: with batching enabled, the dispatch
// counters must account for every UPDATE the router received, and the
// per-shard batch counters must be populated.
func TestBatchDispatchCounters(t *testing.T) {
	r := mustStartRouter(t, Config{
		AS:              65000,
		ID:              netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr:      "127.0.0.1:0",
		Shards:          2,
		BatchMaxUpdates: 32,
		Neighbors:       []NeighborConfig{{AS: 65001}},
	})
	defer r.Stop()
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	table := GenerateTable(TableGenConfig{N: 800, Seed: 5, FirstAS: 65001})
	sp.announce(t, table, 1) // one prefix per message: the worst dispatch case
	waitFor(t, 20*time.Second, func() bool { return r.Transactions() >= uint64(len(table)) })

	batches, updates := r.DispatchStats()
	if updates != uint64(len(table)) {
		t.Fatalf("dispatch updates = %d, want %d", updates, len(table))
	}
	if batches == 0 || batches > updates {
		t.Fatalf("dispatch batches = %d (updates %d)", batches, updates)
	}
	var shardBatches uint64
	for _, st := range r.ShardStats() {
		shardBatches += st.Batches
	}
	if shardBatches == 0 {
		t.Fatal("no per-shard batches recorded")
	}
	if mu, _ := r.BatchLimits(); mu != 32 {
		t.Fatalf("BatchLimits updates = %d, want 32", mu)
	}
}

// TestBatchLatencyBound: a lone UPDATE must not be held in a forming
// batch longer than BatchMaxDelay. With a batch bound far above one
// message and a delay of 250ms, the only flush trigger is the timer.
func TestBatchLatencyBound(t *testing.T) {
	const delay = 250 * time.Millisecond
	r := mustStartRouter(t, Config{
		AS:              65000,
		ID:              netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr:      "127.0.0.1:0",
		Shards:          2,
		BatchMaxUpdates: 10000,
		BatchMaxDelay:   delay,
		Neighbors:       []NeighborConfig{{AS: 65001}},
	})
	defer r.Stop()
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	table := GenerateTable(TableGenConfig{N: 1, Seed: 11, FirstAS: 65001})
	start := time.Now()
	sp.announce(t, table, 1)
	waitFor(t, delay+5*time.Second, func() bool { return r.Transactions() >= 1 })
	if elapsed := time.Since(start); elapsed > delay+2*time.Second {
		t.Fatalf("lone UPDATE held %v, want <= BatchMaxDelay (%v) plus slack", elapsed, delay)
	}
}
