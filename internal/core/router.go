package core

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bgpbench/internal/damping"
	"bgpbench/internal/fib"
	"bgpbench/internal/forward"
	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/rib"
	"bgpbench/internal/session"
	"bgpbench/internal/wire"
)

// NeighborConfig describes one configured peer of the router.
type NeighborConfig struct {
	// AS identifies the neighbour; inbound sessions are matched to their
	// configuration by the AS in their OPEN message.
	AS uint16
	// DialTarget, when non-empty, makes the router initiate the session.
	DialTarget string
	// Import/Export policies; nil permits everything unchanged.
	Import, Export *policy.RouteMap
	// MaxPrefixes, when positive, tears the session down (administrative
	// CEASE) if the peer contributes more than this many prefixes — the
	// standard protection against table overflow.
	MaxPrefixes int
}

// Config parameterizes a Router.
type Config struct {
	AS       uint16
	ID       netaddr.Addr
	HoldTime uint16 // default 90
	// ListenAddr ("host:port", port 0 for ephemeral) accepts inbound
	// sessions; empty disables listening.
	ListenAddr string
	// ListenWrap, when non-nil, wraps the bound listener before the
	// accept loop runs; the netem fault injector hooks in here to
	// perturb inbound transports.
	ListenWrap func(net.Listener) net.Listener
	// NextHop is the address the router advertises as NEXT_HOP on eBGP
	// exports (next-hop-self). Defaults to ID.
	NextHop   netaddr.Addr
	Neighbors []NeighborConfig
	// FIBEngine selects the lookup structure ("patricia" default).
	FIBEngine string
	// ExportBatch caps prefixes per UPDATE during initial table transfer
	// to a new peer (Phase 2 of the benchmark). Default 500.
	ExportBatch int
	// Damping enables route-flap damping (RFC 2439) with the given
	// parameters; nil disables it. Suppressed routes are removed from the
	// decision process until their penalty decays below the reuse limit.
	Damping *damping.Config
	// MRAI, when positive, coalesces outbound route changes per peer and
	// flushes them at this MinRouteAdvertisementInterval instead of
	// emitting one UPDATE per change (RFC 4271 section 9.2.1.1).
	MRAI time.Duration
	// Shards is the number of prefix-sharded decision workers. Each shard
	// owns a disjoint slice of the prefix space (a fixed hash of the
	// prefix), its own Loc-RIB partition, and its own slice of every
	// peer's Adj-RIB-Out, so shards process UPDATE bursts in parallel
	// without cross-shard locking. Defaults to GOMAXPROCS; 1 reproduces
	// the classic single-decision-worker pipeline.
	Shards int
}

// peerState is the router-side state for one established neighbour.
type peerState struct {
	info rib.PeerInfo
	cfg  NeighborConfig
	sess *session.Session
	out  *outQueue

	// adjOut holds one Adj-RIB-Out partition per shard; partition i is
	// touched only by shard worker i, so no locking is needed.
	adjOut []*rib.AdjOut
	// exportCache memoizes the per-peer export transform (AS prepend,
	// next-hop-self) keyed by canonical input attrs, one map per shard.
	// Only consulted when the peer has no export policy (policies may
	// match on prefix, which the cache cannot key).
	exportCache []map[exportKey]*wire.PathAttrs
	// pending accumulates MRAI-coalesced route changes per shard: attrs
	// to announce, or nil to withdraw. Flushed by the peer's mraiFlusher.
	pending []pendingShard

	// prefixCount tracks the routes this peer currently contributes
	// across all shards, for max-prefix enforcement.
	prefixCount atomic.Int64
	overLimit   atomic.Bool
	// downLeft counts shards that have not yet processed this peer's
	// teardown; the last one performs the final cleanup.
	downLeft atomic.Int32
}

type exportKey struct {
	attrs   *wire.PathAttrs
	srcEBGP bool
}

type pendingShard struct {
	mu sync.Mutex
	m  map[netaddr.Prefix]*wire.PathAttrs
}

// Router is a live BGP speaker: it terminates sessions, applies policy,
// runs the decision process, installs routes into a shared FIB, and
// re-advertises its Loc-RIB to peers. The paper's "router under test".
//
// The decision process is sharded: prefixes hash onto N workers, each
// owning a Loc-RIB partition (rib.Sharded) plus the matching partition of
// every peer's Adj-RIB-Out, so a burst of UPDATEs spreads across cores —
// the pipeline parallelism whose absence the paper measures in its
// single-process software routers. Peer lifecycle events (up, down,
// refresh) fan out to every shard; per-session FIFO dispatch keeps each
// shard's view of a peer ordered (up before its updates before its down).
type Router struct {
	cfg       Config
	nshards   int
	neighbors map[uint16]NeighborConfig

	rib      *rib.Sharded
	fib      *fib.Table
	fwd      *forward.Engine
	interner *wire.Intern

	listener net.Listener
	shards   []*shard
	done     chan struct{}
	wg       sync.WaitGroup
	damper   *damping.Damper // nil when damping is disabled

	mu       sync.Mutex
	peers    map[netaddr.Addr]*peerState // keyed by peer BGP ID
	sessions []*session.Session          // all sessions ever attached (for Stop)

	transactions atomic.Uint64 // prefix-level operations completed
	fibChanges   atomic.Uint64
}

// shard is one decision worker: a work queue, the per-shard transaction
// counter, and a reusable FIB-op scratch buffer.
type shard struct {
	work         chan workItem
	transactions atomic.Uint64
	fibOps       []fib.Op // scratch, owned by the shard worker
}

type workKind int

const (
	workUpdate workKind = iota
	workPeerUp
	workPeerDown
	workRefresh
	workRIBLen
	workDump
	workAdjOut
)

type workItem struct {
	kind   workKind
	peerID netaddr.Addr
	update wire.Update
	reply  chan int
	dump   chan []LocRoute
	adj    chan []AdjRoute
}

// LocRoute is one row of a Loc-RIB snapshot: the selected route for a
// prefix and the peer it was learned from.
type LocRoute struct {
	Prefix netaddr.Prefix
	Peer   netaddr.Addr
	Attrs  *wire.PathAttrs
}

// AdjRoute is one row of a per-peer Adj-RIB-Out snapshot: a prefix and
// the attributes currently advertised to that peer.
type AdjRoute struct {
	Prefix netaddr.Prefix
	Attrs  *wire.PathAttrs
}

// NewRouter validates the configuration and builds a stopped router.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.AS == 0 {
		return nil, fmt.Errorf("core: router AS must be nonzero")
	}
	if cfg.ID == 0 {
		return nil, fmt.Errorf("core: router ID must be nonzero")
	}
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 90
	}
	if cfg.NextHop == 0 {
		cfg.NextHop = cfg.ID
	}
	if cfg.FIBEngine == "" {
		cfg.FIBEngine = "patricia"
	}
	if cfg.ExportBatch == 0 {
		cfg.ExportBatch = 500
	}
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: shard count %d must be positive", cfg.Shards)
	}
	neighbors := make(map[uint16]NeighborConfig, len(cfg.Neighbors))
	for _, n := range cfg.Neighbors {
		if _, dup := neighbors[n.AS]; dup {
			return nil, fmt.Errorf("core: duplicate neighbor AS %d", n.AS)
		}
		neighbors[n.AS] = n
	}
	eng, err := fib.NewEngine(cfg.FIBEngine)
	if err != nil {
		return nil, err
	}
	table := fib.NewTable(eng)
	r := &Router{
		cfg:       cfg,
		nshards:   cfg.Shards,
		neighbors: neighbors,
		rib:       rib.NewSharded(cfg.Shards),
		fib:       table,
		fwd:       forward.New(table, nil),
		interner:  wire.NewIntern(),
		shards:    make([]*shard, cfg.Shards),
		done:      make(chan struct{}),
		peers:     make(map[netaddr.Addr]*peerState),
	}
	for i := range r.shards {
		r.shards[i] = &shard{work: make(chan workItem, 8192)}
	}
	if cfg.Damping != nil {
		r.damper = damping.New(*cfg.Damping, nil)
	}
	r.fwd.AddLocalAddr(cfg.ID)
	return r, nil
}

// Damper exposes the flap damper for diagnostics; nil when disabled.
func (r *Router) Damper() *damping.Damper { return r.damper }

// Start begins listening (if configured), dials active neighbours, and
// launches the decision workers.
func (r *Router) Start() error {
	if r.cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", r.cfg.ListenAddr)
		if err != nil {
			return err
		}
		if r.cfg.ListenWrap != nil {
			ln = r.cfg.ListenWrap(ln)
		}
		r.listener = ln
		r.wg.Add(1)
		go r.acceptLoop(ln)
	}
	for i := range r.shards {
		r.wg.Add(1)
		go r.shardWorker(i)
	}
	for _, n := range r.cfg.Neighbors {
		if n.DialTarget != "" {
			r.startSession(n, "")
		}
	}
	return nil
}

// ListenAddr returns the bound listen address ("host:port"), valid after
// Start when ListenAddr was configured.
func (r *Router) ListenAddr() string {
	if r.listener == nil {
		return ""
	}
	return r.listener.Addr().String()
}

// Stop tears down all sessions and stops the router.
func (r *Router) Stop() {
	select {
	case <-r.done:
		return
	default:
	}
	close(r.done)
	if r.listener != nil {
		r.listener.Close()
	}
	r.mu.Lock()
	sessions := append([]*session.Session(nil), r.sessions...)
	for _, p := range r.peers {
		p.out.close()
	}
	r.mu.Unlock()
	for _, s := range sessions {
		s.Stop()
	}
	r.wg.Wait()
}

// FIB exposes the shared forwarding table (read by the data plane).
func (r *Router) FIB() *fib.Table { return r.fib }

// Forwarder exposes the data-plane engine bound to the router's FIB.
func (r *Router) Forwarder() *forward.Engine { return r.fwd }

// Transactions returns the number of prefix-level routing operations
// (announcements and withdrawals) the router has completed. This is the
// paper's "transactions" numerator.
func (r *Router) Transactions() uint64 { return r.transactions.Load() }

// FIBChanges returns the number of forwarding-table changes applied.
func (r *Router) FIBChanges() uint64 { return r.fibChanges.Load() }

// Shards returns the number of decision-worker shards.
func (r *Router) Shards() int { return r.nshards }

// ShardStat is an operational snapshot of one decision shard.
type ShardStat struct {
	QueueDepth   int    // work items waiting in the shard's queue
	Transactions uint64 // prefix-level operations completed by the shard
}

// ShardStats returns a snapshot per shard, in shard order.
func (r *Router) ShardStats() []ShardStat {
	out := make([]ShardStat, r.nshards)
	for i, s := range r.shards {
		out[i] = ShardStat{QueueDepth: len(s.work), Transactions: s.transactions.Load()}
	}
	return out
}

// InternStats reports the path-attribute intern table's size and hit rate.
func (r *Router) InternStats() wire.InternStats { return r.interner.Stats() }

// FIBBatchStats reports batched FIB commits and the total ops they
// carried; ops/batches is the mean commit batch size.
func (r *Router) FIBBatchStats() (batches, ops uint64) { return r.fib.BatchStats() }

// RIBLen returns the Loc-RIB size, synchronized through every shard
// worker so queued work ahead of the query is accounted for.
func (r *Router) RIBLen() int {
	replies := make(chan int, r.nshards)
	for i := range r.shards {
		if !r.send(i, workItem{kind: workRIBLen, reply: replies}) {
			return -1
		}
	}
	total := 0
	for range r.shards {
		select {
		case n := <-replies:
			total += n
		case <-r.done:
			return -1
		}
	}
	return total
}

// DumpLocRIB snapshots the Loc-RIB across all shards, sorted by prefix.
// Like RIBLen it is a barrier: each shard answers after draining the work
// queued ahead of the request. Returns nil after Stop.
func (r *Router) DumpLocRIB() []LocRoute {
	replies := make(chan []LocRoute, r.nshards)
	for i := range r.shards {
		if !r.send(i, workItem{kind: workDump, dump: replies}) {
			return nil
		}
	}
	var all []LocRoute
	for range r.shards {
		select {
		case rs := <-replies:
			all = append(all, rs...)
		case <-r.done:
			return nil
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Prefix.Compare(all[j].Prefix) < 0 })
	return all
}

// DumpAdjOut snapshots the Adj-RIB-Out the router currently advertises
// to the peer with the given BGP ID, sorted by prefix. Like DumpLocRIB
// it is a per-shard barrier; each shard worker walks its own partition,
// so no locking races with the decision process. Returns nil when the
// peer is unknown or the router is stopped.
func (r *Router) DumpAdjOut(peerID netaddr.Addr) []AdjRoute {
	replies := make(chan []AdjRoute, r.nshards)
	for i := range r.shards {
		if !r.send(i, workItem{kind: workAdjOut, peerID: peerID, adj: replies}) {
			return nil
		}
	}
	var all []AdjRoute
	for range r.shards {
		select {
		case rs := <-replies:
			all = append(all, rs...)
		case <-r.done:
			return nil
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Prefix.Compare(all[j].Prefix) < 0 })
	return all
}

// PeerIDs returns the BGP IDs of the currently established peers in
// sorted order.
func (r *Router) PeerIDs() []netaddr.Addr {
	r.mu.Lock()
	ids := make([]netaddr.Addr, 0, len(r.peers))
	for id := range r.peers {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// send enqueues a work item on shard i, reporting false once the router
// is stopped.
func (r *Router) send(i int, w workItem) bool {
	select {
	case r.shards[i].work <- w:
		return true
	case <-r.done:
		return false
	}
}

// fanOut enqueues a peer lifecycle event on every shard.
func (r *Router) fanOut(kind workKind, peerID netaddr.Addr) {
	for i := range r.shards {
		if !r.send(i, workItem{kind: kind, peerID: peerID}) {
			return
		}
	}
}

// dispatchUpdate splits an UPDATE's prefixes by owning shard and enqueues
// the per-shard sub-updates. With one shard the message passes through
// untouched.
func (r *Router) dispatchUpdate(peerID netaddr.Addr, u wire.Update) {
	if r.nshards == 1 {
		r.send(0, workItem{kind: workUpdate, peerID: peerID, update: u})
		return
	}
	subs := make([]wire.Update, r.nshards)
	for _, p := range u.Withdrawn {
		si := rib.ShardOf(p, r.nshards)
		subs[si].Withdrawn = append(subs[si].Withdrawn, p)
	}
	for _, p := range u.NLRI {
		si := rib.ShardOf(p, r.nshards)
		subs[si].NLRI = append(subs[si].NLRI, p)
	}
	for i := range subs {
		if len(subs[i].Withdrawn) == 0 && len(subs[i].NLRI) == 0 {
			continue
		}
		subs[i].Attrs = u.Attrs
		if !r.send(i, workItem{kind: workUpdate, peerID: peerID, update: subs[i]}) {
			return
		}
	}
}

// acceptLoop attaches inbound connections to passive sessions.
func (r *Router) acceptLoop(ln net.Listener) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// The neighbour is identified after OPEN by its AS; accept with
		// PeerAS 0 and let sessionUp sort it out.
		s := r.startSession(NeighborConfig{}, "inbound")
		s.Attach(conn)
	}
}

// startSession creates and starts one session. For inbound sessions
// (label != ""), cfg is resolved later from the peer's OPEN.
func (r *Router) startSession(n NeighborConfig, label string) *session.Session {
	passive := n.DialTarget == ""
	name := label
	if name == "" {
		name = fmt.Sprintf("as%d", n.AS)
	}
	s := session.New(session.Config{
		FSM: fsm.Config{
			LocalAS:  r.cfg.AS,
			LocalID:  r.cfg.ID,
			HoldTime: r.cfg.HoldTime,
			PeerAS:   n.AS,
			Passive:  passive,
		},
		DialTarget: n.DialTarget,
		Handler:    &routerHandler{r: r},
		Name:       name,
	})
	r.mu.Lock()
	r.sessions = append(r.sessions, s)
	r.mu.Unlock()
	s.Start()
	return s
}

// routerHandler adapts session callbacks onto the shard work queues.
type routerHandler struct {
	r *Router
}

// Established registers the peer and schedules the initial table export
// on every shard.
func (h *routerHandler) Established(s *session.Session) {
	r := h.r
	open := s.PeerOpen()
	ncfg, ok := r.neighbors[open.AS]
	if !ok {
		// Unconfigured peer: terminate. Stop must not run on the session's
		// own event loop, so do it asynchronously.
		go s.Stop()
		return
	}
	ps := &peerState{
		info: rib.PeerInfo{
			Addr: open.ID, // loopback benches reuse IPs; the BGP ID is unique
			ID:   open.ID,
			AS:   open.AS,
			EBGP: open.AS != r.cfg.AS,
		},
		cfg:         ncfg,
		sess:        s,
		out:         newOutQueue(),
		adjOut:      make([]*rib.AdjOut, r.nshards),
		exportCache: make([]map[exportKey]*wire.PathAttrs, r.nshards),
		pending:     make([]pendingShard, r.nshards),
	}
	for i := range ps.adjOut {
		ps.adjOut[i] = rib.NewAdjOut()
		ps.exportCache[i] = make(map[exportKey]*wire.PathAttrs)
	}
	ps.downLeft.Store(int32(r.nshards))
	r.mu.Lock()
	if old, exists := r.peers[open.ID]; exists {
		old.out.close()
	}
	r.peers[open.ID] = ps
	r.mu.Unlock()

	r.wg.Add(1)
	go r.sender(ps)
	if r.cfg.MRAI > 0 {
		r.wg.Add(1)
		go r.mraiFlusher(ps)
	}

	r.fanOut(workPeerUp, open.ID)
}

// Update queues a received UPDATE for the decision workers.
func (h *routerHandler) Update(s *session.Session, u wire.Update) {
	h.r.dispatchUpdate(s.PeerOpen().ID, u)
}

// Refresh re-sends the peer's Adj-RIB-Out on a ROUTE-REFRESH request
// (RFC 2918).
func (h *routerHandler) Refresh(s *session.Session, _ wire.RouteRefresh) {
	h.r.fanOut(workRefresh, s.PeerOpen().ID)
}

// Down unregisters the peer and withdraws its routes.
func (h *routerHandler) Down(s *session.Session, _ error) {
	h.r.fanOut(workPeerDown, s.PeerOpen().ID)
}

// sender drains a peer's unbounded out-queue into its session, isolating
// the decision workers from transport back-pressure.
func (r *Router) sender(ps *peerState) {
	defer r.wg.Done()
	for {
		msgs, ok := ps.out.take()
		if !ok {
			return
		}
		for _, m := range msgs {
			if err := ps.sess.Send(m); err != nil {
				return
			}
		}
	}
}

// shardWorker is decision worker i: it owns Loc-RIB shard i and partition
// i of every peer's Adj-RIB-Out (the analogue of one xorp_bgp + xorp_rib
// pipeline, replicated per core).
func (r *Router) shardWorker(i int) {
	defer r.wg.Done()
	s := r.shards[i]
	for {
		select {
		case <-r.done:
			return
		case w := <-s.work:
			switch w.kind {
			case workUpdate:
				r.processUpdate(i, w.peerID, w.update)
			case workPeerUp:
				r.processPeerUp(i, w.peerID)
			case workPeerDown:
				r.processPeerDown(i, w.peerID)
			case workRefresh:
				r.processRefresh(i, w.peerID)
			case workRIBLen:
				w.reply <- r.rib.Shard(i).Len()
			case workDump:
				var routes []LocRoute
				r.rib.Shard(i).WalkLoc(func(p netaddr.Prefix, c rib.Candidate) bool {
					routes = append(routes, LocRoute{Prefix: p, Peer: c.Peer.Addr, Attrs: c.Attrs})
					return true
				})
				w.dump <- routes
			case workAdjOut:
				var routes []AdjRoute
				if ps := r.peerByID(w.peerID); ps != nil {
					ps.adjOut[i].Walk(func(p netaddr.Prefix, attrs *wire.PathAttrs) bool {
						routes = append(routes, AdjRoute{Prefix: p, Attrs: attrs})
						return true
					})
				}
				w.adj <- routes
			}
		}
	}
}

func (r *Router) peerByID(id netaddr.Addr) *peerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peers[id]
}

// snapshotPeers returns the current established peers.
func (r *Router) snapshotPeers() []*peerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*peerState, 0, len(r.peers))
	for _, p := range r.peers {
		out = append(out, p)
	}
	return out
}

// countTx accounts n prefix-level transactions to shard si.
func (r *Router) countTx(si int, n uint64) {
	if n == 0 {
		return
	}
	r.transactions.Add(n)
	r.shards[si].transactions.Add(n)
}

// processPeerUp registers the peer in shard si's RIB and exports the
// shard's Loc-RIB slice to it (Phase 2 of the benchmark methodology).
func (r *Router) processPeerUp(si int, id netaddr.Addr) {
	ps := r.peerByID(id)
	if ps == nil {
		return
	}
	shardRIB := r.rib.Shard(si)
	shardRIB.AddPeer(ps.info)

	// Initial table transfer: batch routes sharing an attribute block.
	// Attrs are interned, so "same block" is a pointer comparison.
	var batch []netaddr.Prefix
	var batchAttrs *wire.PathAttrs
	flush := func() {
		if len(batch) == 0 {
			return
		}
		ps.out.push(wire.Update{Attrs: *batchAttrs, NLRI: append([]netaddr.Prefix(nil), batch...)})
		batch = batch[:0]
	}
	shardRIB.WalkLoc(func(p netaddr.Prefix, c rib.Candidate) bool {
		attrs, ok := r.exportAttrs(si, ps, p, c)
		if !ok {
			return true
		}
		if !ps.adjOut[si].Advertise(p, attrs) {
			return true
		}
		if len(batch) > 0 && (attrs != batchAttrs || len(batch) >= r.cfg.ExportBatch) {
			flush()
		}
		if len(batch) == 0 {
			batchAttrs = attrs
		}
		batch = append(batch, p)
		return true
	})
	flush()
}

// processRefresh rebuilds and re-sends shard si's partition of the peer's
// Adj-RIB-Out from scratch: the RFC 2918 response to a ROUTE-REFRESH
// request, fanned out across shards.
func (r *Router) processRefresh(si int, id netaddr.Addr) {
	ps := r.peerByID(id)
	if ps == nil {
		return
	}
	// Reset the advertised view (and any MRAI-pending changes owned by
	// this shard) so every current route is re-sent, then reuse the
	// initial-export path.
	sh := &ps.pending[si]
	sh.mu.Lock()
	sh.m = nil
	sh.mu.Unlock()
	ps.adjOut[si] = rib.NewAdjOut()
	r.processPeerUp(si, id)
}

// processPeerDown withdraws everything the peer contributed to shard si;
// the last shard to finish performs the final peer cleanup.
func (r *Router) processPeerDown(si int, id netaddr.Addr) {
	ps := r.peerByID(id)
	if ps == nil {
		return
	}
	s := r.shards[si]
	ops := s.fibOps[:0]
	changes := r.rib.Shard(si).RemovePeer(ps.info.Addr)
	for _, ch := range changes {
		r.applyChange(si, ch, &ops)
	}
	r.commitFIB(&ops)
	s.fibOps = ops[:0]
	r.countTx(si, uint64(len(changes)))

	if ps.downLeft.Add(-1) == 0 {
		r.mu.Lock()
		// Guard against a re-established session having replaced the entry.
		if r.peers[id] == ps {
			delete(r.peers, id)
		}
		r.mu.Unlock()
		ps.out.close()
		if r.damper != nil {
			r.damper.Forget(ps.info.Addr)
		}
	}
}

// processUpdate runs import policy and the decision process on one
// (shard-local) UPDATE. FIB changes accumulate across the whole message
// and commit as one batch.
func (r *Router) processUpdate(si int, id netaddr.Addr, u wire.Update) {
	ps := r.peerByID(id)
	if ps == nil {
		return
	}
	if ps.overLimit.Load() {
		// Session is being torn down for exceeding its prefix limit;
		// ignore anything still in flight.
		r.countTx(si, uint64(len(u.Withdrawn)+len(u.NLRI)))
		return
	}
	s := r.shards[si]
	shardRIB := r.rib.Shard(si)
	ops := s.fibOps[:0]
	defer func() {
		r.commitFIB(&ops)
		s.fibOps = ops[:0]
	}()

	for _, p := range u.Withdrawn {
		had := peerHasRoute(shardRIB, ps.info.Addr, p)
		if r.damper != nil && had {
			r.damper.Flap(ps.info.Addr, p)
		}
		if ch, ok := shardRIB.Withdraw(ps.info.Addr, p); ok {
			r.applyChange(si, ch, &ops)
		}
		if had {
			ps.prefixCount.Add(-1)
		}
		r.countTx(si, 1)
	}
	if len(u.NLRI) == 0 {
		return
	}
	// Loop detection: reject paths containing our own AS.
	if u.Attrs.ASPath.Contains(r.cfg.AS) {
		r.countTx(si, uint64(len(u.NLRI)))
		return
	}
	// With no import policy the post-policy attrs are identical for every
	// prefix in the message: intern once, share the canonical pointer.
	var msgAttrs *wire.PathAttrs
	if ps.cfg.Import == nil {
		msgAttrs = r.interner.Intern(u.Attrs)
	}
	for _, p := range u.NLRI {
		attrs := msgAttrs
		if attrs == nil {
			a, ok := ps.cfg.Import.Apply(p, u.Attrs)
			if !ok {
				r.countTx(si, 1)
				continue
			}
			attrs = r.interner.Intern(a)
		}
		if r.damper != nil && r.dampAnnounce(shardRIB, ps.info.Addr, p, attrs) {
			// Suppressed: the route must not be used; drop any candidate
			// the peer previously contributed.
			if ch, ok := shardRIB.Withdraw(ps.info.Addr, p); ok {
				r.applyChange(si, ch, &ops)
			}
			r.countTx(si, 1)
			continue
		}
		had := peerHasRoute(shardRIB, ps.info.Addr, p)
		if ch, ok := shardRIB.Announce(ps.info.Addr, p, attrs); ok {
			r.applyChange(si, ch, &ops)
		}
		if !had {
			n := ps.prefixCount.Add(1)
			if ps.cfg.MaxPrefixes > 0 && n > int64(ps.cfg.MaxPrefixes) {
				// Over the limit: administratively stop the session (once).
				// The resulting Down callback withdraws everything the
				// peer contributed.
				if ps.overLimit.CompareAndSwap(false, true) {
					go ps.sess.Stop()
				}
				r.countTx(si, 1)
				return
			}
		}
		r.countTx(si, 1)
	}
}

// peerHasRoute reports whether the peer currently contributes a candidate
// for the prefix in the given RIB shard.
func peerHasRoute(shardRIB *rib.RIB, peer netaddr.Addr, p netaddr.Prefix) bool {
	for _, c := range shardRIB.Candidates(p) {
		if c.Peer.Addr == peer {
			return true
		}
	}
	return false
}

// dampAnnounce applies flap accounting to an announcement: a
// re-announcement with changed attributes counts as a flap (RFC 2439
// attribute-change event). It reports whether the route is suppressed.
// Attrs are interned, so the attribute-change check is a pointer compare.
func (r *Router) dampAnnounce(shardRIB *rib.RIB, peer netaddr.Addr, p netaddr.Prefix, attrs *wire.PathAttrs) bool {
	for _, c := range shardRIB.Candidates(p) {
		if c.Peer.Addr == peer {
			if c.Attrs != attrs && !c.Attrs.Equal(*attrs) {
				return r.damper.Flap(peer, p)
			}
			return r.damper.Suppressed(peer, p)
		}
	}
	return r.damper.Suppressed(peer, p)
}

// commitFIB flushes accumulated forwarding-table ops as one write-locked
// batch.
func (r *Router) commitFIB(ops *[]fib.Op) {
	if len(*ops) == 0 {
		return
	}
	r.fib.Apply(*ops)
	r.fibChanges.Add(uint64(len(*ops)))
	*ops = (*ops)[:0]
}

// applyChange pushes one Loc-RIB transition toward the FIB batch and to
// peers.
func (r *Router) applyChange(si int, ch rib.Change, ops *[]fib.Op) {
	// Forwarding table: batch the op; the caller commits per message.
	if ch.New != nil {
		if ch.Old == nil || ch.Old.Attrs.NextHop != ch.New.Attrs.NextHop {
			entry := fib.Entry{NextHop: ch.New.Attrs.NextHop, Port: int(ch.New.Peer.AS) % 16}
			*ops = append(*ops, fib.Op{Prefix: ch.Prefix, Entry: entry})
		}
	} else if ch.Old != nil {
		*ops = append(*ops, fib.Op{Prefix: ch.Prefix, Delete: true})
	}

	// Adj-RIB-Out propagation (this shard's partition of every peer).
	for _, ps := range r.snapshotPeers() {
		if ch.New != nil {
			// Do not advertise a route back to the peer it came from.
			if ps.info.Addr == ch.New.Peer.Addr {
				// If we previously advertised another route for this prefix
				// to that peer, withdraw it.
				if ps.adjOut[si].Withdraw(ch.Prefix) {
					r.emit(si, ps, ch.Prefix, nil)
				}
				continue
			}
			attrs, ok := r.exportAttrs(si, ps, ch.Prefix, *ch.New)
			if !ok {
				if ps.adjOut[si].Withdraw(ch.Prefix) {
					r.emit(si, ps, ch.Prefix, nil)
				}
				continue
			}
			if ps.adjOut[si].Advertise(ch.Prefix, attrs) {
				r.emit(si, ps, ch.Prefix, attrs)
			}
		} else {
			if ps.adjOut[si].Withdraw(ch.Prefix) {
				r.emit(si, ps, ch.Prefix, nil)
			}
		}
	}
}

// emit sends one route change toward a peer: immediately when MRAI is
// disabled, otherwise coalesced into the peer's per-shard pending set and
// flushed by its MRAI ticker. attrs == nil means withdraw.
func (r *Router) emit(si int, ps *peerState, p netaddr.Prefix, attrs *wire.PathAttrs) {
	if r.cfg.MRAI <= 0 {
		if attrs == nil {
			ps.out.push(wire.Update{Withdrawn: []netaddr.Prefix{p}})
		} else {
			ps.out.push(wire.Update{Attrs: *attrs, NLRI: []netaddr.Prefix{p}})
		}
		return
	}
	sh := &ps.pending[si]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[netaddr.Prefix]*wire.PathAttrs)
	}
	sh.m[p] = attrs
	sh.mu.Unlock()
}

// mraiFlusher drains a peer's pending sets every MRAI, packing
// withdrawals together and grouping announcements that share an attribute
// block.
func (r *Router) mraiFlusher(ps *peerState) {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.MRAI)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.flushPending(ps)
		}
	}
}

func (r *Router) flushPending(ps *peerState) {
	var withdrawn []netaddr.Prefix
	// Attrs are interned: the canonical pointer is the grouping key, so no
	// per-route marshal is needed to coalesce shared attribute blocks.
	groups := make(map[*wire.PathAttrs]*wire.Update)
	var order []*wire.PathAttrs
	for i := range ps.pending {
		sh := &ps.pending[i]
		sh.mu.Lock()
		pending := sh.m
		sh.m = nil
		sh.mu.Unlock()
		for p, attrs := range pending {
			if attrs == nil {
				withdrawn = append(withdrawn, p)
				continue
			}
			g := groups[attrs]
			if g == nil {
				g = &wire.Update{Attrs: *attrs}
				groups[attrs] = g
				order = append(order, attrs)
			}
			g.NLRI = append(g.NLRI, p)
		}
	}
	// Withdrawals ride in one UPDATE (chunked to the batch limit).
	for i := 0; i < len(withdrawn); i += r.cfg.ExportBatch {
		j := i + r.cfg.ExportBatch
		if j > len(withdrawn) {
			j = len(withdrawn)
		}
		ps.out.push(wire.Update{Withdrawn: withdrawn[i:j]})
	}
	for _, key := range order {
		g := groups[key]
		for i := 0; i < len(g.NLRI); i += r.cfg.ExportBatch {
			j := i + r.cfg.ExportBatch
			if j > len(g.NLRI) {
				j = len(g.NLRI)
			}
			ps.out.push(wire.Update{Attrs: g.Attrs, NLRI: g.NLRI[i:j]})
		}
	}
}

// exportAttrs applies export policy and standard eBGP transformations
// (own-AS prepend, next-hop-self) for a route toward a peer, returning an
// interned canonical pointer. When the peer has no export policy the
// transform is memoized per (input attrs, source session type), so the
// per-prefix clone+prepend collapses into a map hit after first sight.
func (r *Router) exportAttrs(si int, ps *peerState, p netaddr.Prefix, c rib.Candidate) (*wire.PathAttrs, bool) {
	// iBGP split-horizon: do not re-advertise iBGP routes to iBGP peers.
	if !c.Peer.EBGP && !ps.info.EBGP {
		return nil, false
	}
	cacheable := ps.cfg.Export == nil
	key := exportKey{attrs: c.Attrs, srcEBGP: c.Peer.EBGP}
	if cacheable {
		if out, ok := ps.exportCache[si][key]; ok {
			return out, true
		}
	}
	attrs, ok := ps.cfg.Export.Apply(p, *c.Attrs)
	if !ok {
		return nil, false
	}
	var out *wire.PathAttrs
	if ps.info.EBGP {
		a := attrs.Clone()
		a.ASPath = a.ASPath.Prepend(r.cfg.AS)
		a.NextHop, a.HasNextHop = r.cfg.NextHop, true
		// LOCAL_PREF is not sent on eBGP sessions.
		a.HasLocalPref, a.LocalPref = false, 0
		out = r.interner.Intern(a)
	} else {
		out = r.interner.Intern(attrs)
	}
	if cacheable {
		ps.exportCache[si][key] = out
	}
	return out, true
}

// outQueue is an unbounded FIFO of messages with close semantics. It
// decouples the decision workers from slow peers so back-pressure on one
// session cannot deadlock route propagation.
type outQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []wire.Message
	closed bool
}

func newOutQueue() *outQueue {
	q := &outQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *outQueue) push(m wire.Message) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, m)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// take blocks for the next batch of messages; ok=false after close.
func (q *outQueue) take() ([]wire.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	items := q.items
	q.items = nil
	return items, true
}

func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
