package core

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bgpbench/internal/damping"
	"bgpbench/internal/fib"
	"bgpbench/internal/forward"
	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/rib"
	"bgpbench/internal/session"
	"bgpbench/internal/wire"
)

// NeighborConfig describes one configured peer of the router.
type NeighborConfig struct {
	// AS identifies the neighbour; inbound sessions are matched to their
	// configuration by the AS in their OPEN message.
	AS uint16
	// DialTarget, when non-empty, makes the router initiate the session.
	DialTarget string
	// Import/Export policies; nil permits everything unchanged.
	Import, Export *policy.RouteMap
	// MaxPrefixes, when positive, tears the session down (administrative
	// CEASE) if the peer contributes more than this many prefixes — the
	// standard protection against table overflow.
	MaxPrefixes int
}

// Config parameterizes a Router.
type Config struct {
	AS       uint16
	ID       netaddr.Addr
	HoldTime uint16 // default 90
	// ListenAddr ("host:port", port 0 for ephemeral) accepts inbound
	// sessions; empty disables listening.
	ListenAddr string
	// NextHop is the address the router advertises as NEXT_HOP on eBGP
	// exports (next-hop-self). Defaults to ID.
	NextHop   netaddr.Addr
	Neighbors []NeighborConfig
	// FIBEngine selects the lookup structure ("patricia" default).
	FIBEngine string
	// ExportBatch caps prefixes per UPDATE during initial table transfer
	// to a new peer (Phase 2 of the benchmark). Default 500.
	ExportBatch int
	// Damping enables route-flap damping (RFC 2439) with the given
	// parameters; nil disables it. Suppressed routes are removed from the
	// decision process until their penalty decays below the reuse limit.
	Damping *damping.Config
	// MRAI, when positive, coalesces outbound route changes per peer and
	// flushes them at this MinRouteAdvertisementInterval instead of
	// emitting one UPDATE per change (RFC 4271 section 9.2.1.1).
	MRAI time.Duration
}

// peerState is the router-side state for one established neighbour.
type peerState struct {
	info   rib.PeerInfo
	cfg    NeighborConfig
	sess   *session.Session
	adjOut *rib.AdjOut
	out    *outQueue
	// prefixCount tracks the routes this peer currently contributes, for
	// max-prefix enforcement. Owned by the decision worker.
	prefixCount int
	overLimit   bool

	// pending accumulates MRAI-coalesced route changes: attrs to announce,
	// or nil to withdraw. Guarded by pendingMu; flushed by the peer's
	// mraiFlusher goroutine.
	pendingMu sync.Mutex
	pending   map[netaddr.Prefix]*wire.PathAttrs
}

// Router is a live BGP speaker: it terminates sessions, applies policy,
// runs the decision process, installs routes into a shared FIB, and
// re-advertises its Loc-RIB to peers. The paper's "router under test".
type Router struct {
	cfg Config

	rib *rib.RIB
	fib *fib.Table
	fwd *forward.Engine

	listener net.Listener
	work     chan workItem
	done     chan struct{}
	wg       sync.WaitGroup
	damper   *damping.Damper // nil when damping is disabled

	mu       sync.Mutex
	peers    map[netaddr.Addr]*peerState // keyed by peer BGP ID
	sessions []*session.Session          // all sessions ever attached (for Stop)

	transactions atomic.Uint64 // prefix-level operations completed
	fibChanges   atomic.Uint64
}

type workKind int

const (
	workUpdate workKind = iota
	workPeerUp
	workPeerDown
	workRefresh
	workRIBLen
)

type workItem struct {
	kind   workKind
	peerID netaddr.Addr
	update wire.Update
	reply  chan int
}

// NewRouter validates the configuration and builds a stopped router.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.AS == 0 {
		return nil, fmt.Errorf("core: router AS must be nonzero")
	}
	if cfg.ID == 0 {
		return nil, fmt.Errorf("core: router ID must be nonzero")
	}
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 90
	}
	if cfg.NextHop == 0 {
		cfg.NextHop = cfg.ID
	}
	if cfg.FIBEngine == "" {
		cfg.FIBEngine = "patricia"
	}
	if cfg.ExportBatch == 0 {
		cfg.ExportBatch = 500
	}
	eng, err := fib.NewEngine(cfg.FIBEngine)
	if err != nil {
		return nil, err
	}
	table := fib.NewTable(eng)
	r := &Router{
		cfg:   cfg,
		rib:   rib.New(),
		fib:   table,
		fwd:   forward.New(table, nil),
		work:  make(chan workItem, 8192),
		done:  make(chan struct{}),
		peers: make(map[netaddr.Addr]*peerState),
	}
	if cfg.Damping != nil {
		r.damper = damping.New(*cfg.Damping, nil)
	}
	r.fwd.AddLocalAddr(cfg.ID)
	return r, nil
}

// Damper exposes the flap damper for diagnostics; nil when disabled.
func (r *Router) Damper() *damping.Damper { return r.damper }

// Start begins listening (if configured), dials active neighbours, and
// launches the decision worker.
func (r *Router) Start() error {
	if r.cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", r.cfg.ListenAddr)
		if err != nil {
			return err
		}
		r.listener = ln
		r.wg.Add(1)
		go r.acceptLoop(ln)
	}
	r.wg.Add(1)
	go r.worker()
	for _, n := range r.cfg.Neighbors {
		if n.DialTarget != "" {
			r.startSession(n, "")
		}
	}
	return nil
}

// ListenAddr returns the bound listen address ("host:port"), valid after
// Start when ListenAddr was configured.
func (r *Router) ListenAddr() string {
	if r.listener == nil {
		return ""
	}
	return r.listener.Addr().String()
}

// Stop tears down all sessions and stops the router.
func (r *Router) Stop() {
	select {
	case <-r.done:
		return
	default:
	}
	close(r.done)
	if r.listener != nil {
		r.listener.Close()
	}
	r.mu.Lock()
	sessions := append([]*session.Session(nil), r.sessions...)
	for _, p := range r.peers {
		p.out.close()
	}
	r.mu.Unlock()
	for _, s := range sessions {
		s.Stop()
	}
	r.wg.Wait()
}

// FIB exposes the shared forwarding table (read by the data plane).
func (r *Router) FIB() *fib.Table { return r.fib }

// Forwarder exposes the data-plane engine bound to the router's FIB.
func (r *Router) Forwarder() *forward.Engine { return r.fwd }

// Transactions returns the number of prefix-level routing operations
// (announcements and withdrawals) the router has completed. This is the
// paper's "transactions" numerator.
func (r *Router) Transactions() uint64 { return r.transactions.Load() }

// FIBChanges returns the number of forwarding-table changes applied.
func (r *Router) FIBChanges() uint64 { return r.fibChanges.Load() }

// RIBLen returns the Loc-RIB size.
func (r *Router) RIBLen() int {
	res := make(chan int, 1)
	select {
	case r.work <- workItem{kind: workRIBLen, reply: res}:
		return <-res
	case <-r.done:
		return -1
	}
}

// acceptLoop attaches inbound connections to passive sessions.
func (r *Router) acceptLoop(ln net.Listener) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// The neighbour is identified after OPEN by its AS; accept with
		// PeerAS 0 and let sessionUp sort it out.
		s := r.startSession(NeighborConfig{}, "inbound")
		s.Attach(conn)
	}
}

// startSession creates and starts one session. For inbound sessions
// (label != ""), cfg is resolved later from the peer's OPEN.
func (r *Router) startSession(n NeighborConfig, label string) *session.Session {
	passive := n.DialTarget == ""
	name := label
	if name == "" {
		name = fmt.Sprintf("as%d", n.AS)
	}
	s := session.New(session.Config{
		FSM: fsm.Config{
			LocalAS:  r.cfg.AS,
			LocalID:  r.cfg.ID,
			HoldTime: r.cfg.HoldTime,
			PeerAS:   n.AS,
			Passive:  passive,
		},
		DialTarget: n.DialTarget,
		Handler:    &routerHandler{r: r},
		Name:       name,
	})
	r.mu.Lock()
	r.sessions = append(r.sessions, s)
	r.mu.Unlock()
	s.Start()
	return s
}

// routerHandler adapts session callbacks onto the router's work queue.
type routerHandler struct {
	r *Router
}

// Established registers the peer and schedules the initial table export.
func (h *routerHandler) Established(s *session.Session) {
	r := h.r
	open := s.PeerOpen()
	ncfg, ok := r.neighborConfigFor(open.AS)
	if !ok {
		// Unconfigured peer: terminate. Stop must not run on the session's
		// own event loop, so do it asynchronously.
		go s.Stop()
		return
	}
	ps := &peerState{
		info: rib.PeerInfo{
			Addr: open.ID, // loopback benches reuse IPs; the BGP ID is unique
			ID:   open.ID,
			AS:   open.AS,
			EBGP: open.AS != r.cfg.AS,
		},
		cfg:    ncfg,
		sess:   s,
		adjOut: rib.NewAdjOut(),
		out:    newOutQueue(),
	}
	r.mu.Lock()
	if old, exists := r.peers[open.ID]; exists {
		old.out.close()
	}
	r.peers[open.ID] = ps
	r.mu.Unlock()

	r.wg.Add(1)
	go r.sender(ps)
	if r.cfg.MRAI > 0 {
		r.wg.Add(1)
		go r.mraiFlusher(ps)
	}

	select {
	case r.work <- workItem{kind: workPeerUp, peerID: open.ID}:
	case <-r.done:
	}
}

// Update queues a received UPDATE for the decision worker.
func (h *routerHandler) Update(s *session.Session, u wire.Update) {
	r := h.r
	id := s.PeerOpen().ID
	select {
	case r.work <- workItem{kind: workUpdate, peerID: id, update: u}:
	case <-r.done:
	}
}

// Refresh re-sends the peer's Adj-RIB-Out on a ROUTE-REFRESH request
// (RFC 2918).
func (h *routerHandler) Refresh(s *session.Session, _ wire.RouteRefresh) {
	r := h.r
	select {
	case r.work <- workItem{kind: workRefresh, peerID: s.PeerOpen().ID}:
	case <-r.done:
	}
}

// Down unregisters the peer and withdraws its routes.
func (h *routerHandler) Down(s *session.Session, _ error) {
	r := h.r
	id := s.PeerOpen().ID
	select {
	case r.work <- workItem{kind: workPeerDown, peerID: id}:
	case <-r.done:
	}
}

func (r *Router) neighborConfigFor(as uint16) (NeighborConfig, bool) {
	for _, n := range r.cfg.Neighbors {
		if n.AS == as {
			return n, true
		}
	}
	return NeighborConfig{}, false
}

// sender drains a peer's unbounded out-queue into its session, isolating
// the decision worker from transport back-pressure.
func (r *Router) sender(ps *peerState) {
	defer r.wg.Done()
	for {
		msgs, ok := ps.out.take()
		if !ok {
			return
		}
		for _, m := range msgs {
			if err := ps.sess.Send(m); err != nil {
				return
			}
		}
	}
}

// worker is the single decision-process goroutine (the analogue of the
// xorp_bgp + xorp_rib processes). It owns the RIB and the Adj-RIB-Outs.
func (r *Router) worker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case w := <-r.work:
			switch w.kind {
			case workUpdate:
				r.processUpdate(w.peerID, w.update)
			case workPeerUp:
				r.processPeerUp(w.peerID)
			case workPeerDown:
				r.processPeerDown(w.peerID)
			case workRefresh:
				r.processRefresh(w.peerID)
			case workRIBLen:
				w.reply <- r.rib.Len()
			}
		}
	}
}

func (r *Router) peerByID(id netaddr.Addr) *peerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peers[id]
}

// snapshotPeers returns the current established peers.
func (r *Router) snapshotPeers() []*peerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*peerState, 0, len(r.peers))
	for _, p := range r.peers {
		out = append(out, p)
	}
	return out
}

// processPeerUp registers the peer in the RIB and exports the current
// Loc-RIB to it (Phase 2 of the benchmark methodology).
func (r *Router) processPeerUp(id netaddr.Addr) {
	ps := r.peerByID(id)
	if ps == nil {
		return
	}
	r.rib.AddPeer(ps.info)

	// Initial table transfer: batch routes sharing an attribute block.
	var batch []netaddr.Prefix
	var batchAttrs wire.PathAttrs
	flush := func() {
		if len(batch) == 0 {
			return
		}
		ps.out.push(wire.Update{Attrs: batchAttrs, NLRI: append([]netaddr.Prefix(nil), batch...)})
		batch = batch[:0]
	}
	r.rib.WalkLoc(func(p netaddr.Prefix, c rib.Candidate) bool {
		attrs, ok := r.exportAttrs(ps, p, c)
		if !ok {
			return true
		}
		if !ps.adjOut.Advertise(p, attrs) {
			return true
		}
		if len(batch) > 0 && (!attrs.Equal(batchAttrs) || len(batch) >= r.cfg.ExportBatch) {
			flush()
		}
		if len(batch) == 0 {
			batchAttrs = attrs
		}
		batch = append(batch, p)
		return true
	})
	flush()
}

// processRefresh rebuilds and re-sends the peer's Adj-RIB-Out from
// scratch: the RFC 2918 response to a ROUTE-REFRESH request.
func (r *Router) processRefresh(id netaddr.Addr) {
	ps := r.peerByID(id)
	if ps == nil {
		return
	}
	// Reset the advertised view (and any MRAI-pending changes) so every
	// current route is re-sent, then reuse the initial-export path.
	ps.pendingMu.Lock()
	ps.pending = nil
	ps.pendingMu.Unlock()
	*ps.adjOut = *rib.NewAdjOut()
	r.processPeerUp(id)
}

// processPeerDown withdraws everything learned from the peer.
func (r *Router) processPeerDown(id netaddr.Addr) {
	r.mu.Lock()
	ps := r.peers[id]
	if ps != nil {
		delete(r.peers, id)
	}
	r.mu.Unlock()
	if ps == nil {
		return
	}
	ps.out.close()
	if r.damper != nil {
		r.damper.Forget(ps.info.Addr)
	}
	changes := r.rib.RemovePeer(ps.info.Addr)
	for _, ch := range changes {
		r.applyChange(ch)
	}
	r.transactions.Add(uint64(len(changes)))
}

// processUpdate runs import policy and the decision process on one UPDATE.
func (r *Router) processUpdate(id netaddr.Addr, u wire.Update) {
	ps := r.peerByID(id)
	if ps == nil {
		return
	}
	if ps.overLimit {
		// Session is being torn down for exceeding its prefix limit;
		// ignore anything still in flight.
		r.transactions.Add(uint64(len(u.Withdrawn) + len(u.NLRI)))
		return
	}
	for _, p := range u.Withdrawn {
		had := r.peerHasRoute(ps.info.Addr, p)
		if r.damper != nil && had {
			r.damper.Flap(ps.info.Addr, p)
		}
		if ch, ok := r.rib.Withdraw(ps.info.Addr, p); ok {
			r.applyChange(ch)
		}
		if had {
			ps.prefixCount--
		}
		r.transactions.Add(1)
	}
	if len(u.NLRI) == 0 {
		return
	}
	// Loop detection: reject paths containing our own AS.
	if u.Attrs.ASPath.Contains(r.cfg.AS) {
		r.transactions.Add(uint64(len(u.NLRI)))
		return
	}
	for _, p := range u.NLRI {
		attrs, ok := ps.cfg.Import.Apply(p, u.Attrs)
		if !ok {
			r.transactions.Add(1)
			continue
		}
		if r.damper != nil && r.dampAnnounce(ps.info.Addr, p, attrs) {
			// Suppressed: the route must not be used; drop any candidate
			// the peer previously contributed.
			if ch, ok := r.rib.Withdraw(ps.info.Addr, p); ok {
				r.applyChange(ch)
			}
			r.transactions.Add(1)
			continue
		}
		had := r.peerHasRoute(ps.info.Addr, p)
		if ch, ok := r.rib.Announce(ps.info.Addr, p, attrs); ok {
			r.applyChange(ch)
		}
		if !had {
			ps.prefixCount++
			if ps.cfg.MaxPrefixes > 0 && ps.prefixCount > ps.cfg.MaxPrefixes {
				// Over the limit: administratively stop the session. The
				// resulting Down callback withdraws everything the peer
				// contributed.
				ps.overLimit = true
				r.transactions.Add(1)
				go ps.sess.Stop()
				return
			}
		}
		r.transactions.Add(1)
	}
}

// peerHasRoute reports whether the peer currently contributes a candidate
// for the prefix.
func (r *Router) peerHasRoute(peer netaddr.Addr, p netaddr.Prefix) bool {
	for _, c := range r.rib.Candidates(p) {
		if c.Peer.Addr == peer {
			return true
		}
	}
	return false
}

// dampAnnounce applies flap accounting to an announcement: a
// re-announcement with changed attributes counts as a flap (RFC 2439
// attribute-change event). It reports whether the route is suppressed.
func (r *Router) dampAnnounce(peer netaddr.Addr, p netaddr.Prefix, attrs wire.PathAttrs) bool {
	for _, c := range r.rib.Candidates(p) {
		if c.Peer.Addr == peer {
			if !c.Attrs.Equal(attrs) {
				return r.damper.Flap(peer, p)
			}
			return r.damper.Suppressed(peer, p)
		}
	}
	return r.damper.Suppressed(peer, p)
}

// applyChange pushes one Loc-RIB transition into the FIB and to peers.
func (r *Router) applyChange(ch rib.Change) {
	// Forwarding table.
	if ch.New != nil {
		entry := fib.Entry{NextHop: ch.New.Attrs.NextHop, Port: int(ch.New.Peer.AS) % 16}
		if ch.Old == nil || ch.Old.Attrs.NextHop != ch.New.Attrs.NextHop {
			r.fib.Insert(ch.Prefix, entry)
			r.fibChanges.Add(1)
		}
	} else if ch.Old != nil {
		r.fib.Delete(ch.Prefix)
		r.fibChanges.Add(1)
	}

	// Adj-RIB-Out propagation.
	for _, ps := range r.snapshotPeers() {
		if ch.New != nil {
			// Do not advertise a route back to the peer it came from.
			if ps.info.Addr == ch.New.Peer.Addr {
				// If we previously advertised another route for this prefix
				// to that peer, withdraw it.
				if ps.adjOut.Withdraw(ch.Prefix) {
					r.emit(ps, ch.Prefix, nil)
				}
				continue
			}
			attrs, ok := r.exportAttrs(ps, ch.Prefix, *ch.New)
			if !ok {
				if ps.adjOut.Withdraw(ch.Prefix) {
					r.emit(ps, ch.Prefix, nil)
				}
				continue
			}
			if ps.adjOut.Advertise(ch.Prefix, attrs) {
				r.emit(ps, ch.Prefix, &attrs)
			}
		} else {
			if ps.adjOut.Withdraw(ch.Prefix) {
				r.emit(ps, ch.Prefix, nil)
			}
		}
	}
}

// emit sends one route change toward a peer: immediately when MRAI is
// disabled, otherwise coalesced into the peer's pending set and flushed by
// its MRAI ticker. attrs == nil means withdraw.
func (r *Router) emit(ps *peerState, p netaddr.Prefix, attrs *wire.PathAttrs) {
	if r.cfg.MRAI <= 0 {
		if attrs == nil {
			ps.out.push(wire.Update{Withdrawn: []netaddr.Prefix{p}})
		} else {
			ps.out.push(wire.Update{Attrs: *attrs, NLRI: []netaddr.Prefix{p}})
		}
		return
	}
	ps.pendingMu.Lock()
	if ps.pending == nil {
		ps.pending = make(map[netaddr.Prefix]*wire.PathAttrs)
	}
	ps.pending[p] = attrs
	ps.pendingMu.Unlock()
}

// mraiFlusher drains a peer's pending set every MRAI, packing withdrawals
// together and grouping announcements that share an attribute block.
func (r *Router) mraiFlusher(ps *peerState) {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.MRAI)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.flushPending(ps)
		}
	}
}

func (r *Router) flushPending(ps *peerState) {
	ps.pendingMu.Lock()
	pending := ps.pending
	ps.pending = nil
	ps.pendingMu.Unlock()
	if len(pending) == 0 {
		return
	}
	var withdrawn []netaddr.Prefix
	groups := make(map[string]*wire.Update)
	var order []string
	for p, attrs := range pending {
		if attrs == nil {
			withdrawn = append(withdrawn, p)
			continue
		}
		key := string(wire.MarshalAttrs(*attrs))
		g := groups[key]
		if g == nil {
			g = &wire.Update{Attrs: *attrs}
			groups[key] = g
			order = append(order, key)
		}
		g.NLRI = append(g.NLRI, p)
	}
	// Withdrawals ride in one UPDATE (chunked to the batch limit).
	for i := 0; i < len(withdrawn); i += r.cfg.ExportBatch {
		j := i + r.cfg.ExportBatch
		if j > len(withdrawn) {
			j = len(withdrawn)
		}
		ps.out.push(wire.Update{Withdrawn: withdrawn[i:j]})
	}
	for _, key := range order {
		g := groups[key]
		for i := 0; i < len(g.NLRI); i += r.cfg.ExportBatch {
			j := i + r.cfg.ExportBatch
			if j > len(g.NLRI) {
				j = len(g.NLRI)
			}
			ps.out.push(wire.Update{Attrs: g.Attrs, NLRI: g.NLRI[i:j]})
		}
	}
}

// exportAttrs applies export policy and standard eBGP transformations
// (own-AS prepend, next-hop-self) for a route toward a peer.
func (r *Router) exportAttrs(ps *peerState, p netaddr.Prefix, c rib.Candidate) (wire.PathAttrs, bool) {
	// iBGP split-horizon: do not re-advertise iBGP routes to iBGP peers.
	if !c.Peer.EBGP && !ps.info.EBGP {
		return wire.PathAttrs{}, false
	}
	attrs, ok := ps.cfg.Export.Apply(p, c.Attrs)
	if !ok {
		return wire.PathAttrs{}, false
	}
	if ps.info.EBGP {
		attrs = attrs.Clone()
		attrs.ASPath = attrs.ASPath.Prepend(r.cfg.AS)
		attrs.NextHop, attrs.HasNextHop = r.cfg.NextHop, true
		// LOCAL_PREF is not sent on eBGP sessions.
		attrs.HasLocalPref, attrs.LocalPref = false, 0
	}
	return attrs, true
}

// outQueue is an unbounded FIFO of messages with close semantics. It
// decouples the decision worker from slow peers so back-pressure on one
// session cannot deadlock route propagation.
type outQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []wire.Message
	closed bool
}

func newOutQueue() *outQueue {
	q := &outQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *outQueue) push(m wire.Message) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, m)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// take blocks for the next batch of messages; ok=false after close.
func (q *outQueue) take() ([]wire.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	items := q.items
	q.items = nil
	return items, true
}

func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
