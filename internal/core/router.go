package core

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bgpbench/internal/damping"
	"bgpbench/internal/fib"
	"bgpbench/internal/forward"
	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/rib"
	"bgpbench/internal/session"
	"bgpbench/internal/wire"
)

// Default batch-dispatch bounds (see Config.BatchMaxUpdates and
// Config.BatchMaxDelay).
const (
	DefaultBatchMaxUpdates = 256
	DefaultBatchMaxDelay   = 200 * time.Microsecond
)

// NeighborConfig describes one configured peer of the router.
type NeighborConfig struct {
	// AS identifies the neighbour; inbound sessions are matched to their
	// configuration by the effective AS in their OPEN message (the
	// 4-octet capability value when present, else the 2-octet field).
	AS uint32
	// DialTarget, when non-empty, makes the router initiate the session.
	DialTarget string
	// Import/Export policies; nil permits everything unchanged.
	Import, Export *policy.RouteMap
	// MaxPrefixes, when positive, tears the session down (administrative
	// CEASE) if the peer contributes more than this many prefixes — the
	// standard protection against table overflow.
	MaxPrefixes int
}

// Config parameterizes a Router.
type Config struct {
	AS       uint32
	ID       netaddr.Addr
	HoldTime uint16 // default 90
	// ListenAddr ("host:port", port 0 for ephemeral) accepts inbound
	// sessions; empty disables listening.
	ListenAddr string
	// ListenWrap, when non-nil, wraps the bound listener before the
	// accept loop runs; the netem fault injector hooks in here to
	// perturb inbound transports.
	ListenWrap func(net.Listener) net.Listener
	// NextHop is the address the router advertises as NEXT_HOP on eBGP
	// exports (next-hop-self) for IPv4 routes. Defaults to ID.
	NextHop netaddr.Addr
	// NextHop6 is the next-hop-self address for IPv6 routes. Defaults to
	// the IPv4-mapped form of ID (::ffff:ID), which keeps dual-stack
	// configs deterministic without extra addressing.
	NextHop6  netaddr.Addr
	Neighbors []NeighborConfig
	// FIBEngine selects the lookup structure ("patricia" default;
	// "poptrie" additionally gets the lock-free snapshot read path).
	FIBEngine string
	// ExportBatch caps prefixes per UPDATE during initial table transfer
	// to a new peer (Phase 2 of the benchmark). Default 500.
	ExportBatch int
	// Damping enables route-flap damping (RFC 2439) with the given
	// parameters; nil disables it. Suppressed routes are removed from the
	// decision process until their penalty decays below the reuse limit.
	Damping *damping.Config
	// MRAI, when positive, coalesces outbound route changes per peer and
	// flushes them at this MinRouteAdvertisementInterval instead of
	// emitting one UPDATE per change (RFC 4271 section 9.2.1.1).
	MRAI time.Duration
	// Shards is the number of prefix-sharded decision workers. Each shard
	// owns a disjoint slice of the prefix space (a fixed hash of the
	// prefix), its own Loc-RIB partition, and its own slice of every
	// peer's Adj-RIB-Out, so shards process UPDATE bursts in parallel
	// without cross-shard locking. Defaults to GOMAXPROCS; 1 reproduces
	// the classic single-decision-worker pipeline.
	Shards int
	// BatchMaxUpdates bounds how many consecutive UPDATEs from one
	// session coalesce into a single shard dispatch: the whole batch is
	// split by shard once and each shard receives one multi-update work
	// item, so per-message dispatch overhead amortizes across the batch.
	// Default 256; negative disables batching (one dispatch per message).
	BatchMaxUpdates int
	// BatchMaxDelay bounds how long the session layer may hold a received
	// UPDATE while a batch accumulates. Default 200µs; negative flushes
	// whenever the session's event queue idles (batches form only under
	// backlog). Ignored when batching is disabled.
	BatchMaxDelay time.Duration
	// UpdateGroups buckets peers by canonical export-policy key
	// (rib.GroupKeyFor) so peers with identical export treatment share
	// one Adj-RIB-Out and one emission pipeline: each route change is
	// exported once per group, marshaled once, and the bytes fanned out
	// to every member session. Per-peer digests are unchanged; only the
	// amount of repeated work is. See internal/core/updategroup.go.
	UpdateGroups bool
}

// peerState is the router-side state for one established neighbour.
type peerState struct {
	info rib.PeerInfo
	cfg  NeighborConfig
	sess *session.Session
	out  *outQueue

	// afis records the address families both sides negotiated via the
	// multiprotocol capability; routes of other families are never
	// exported to this peer. Set before registration, then read-only.
	afis [2]bool

	// adjOut holds one Adj-RIB-Out partition per shard; partition i is
	// touched only by shard worker i, so no locking is needed.
	adjOut []*rib.AdjOut
	// exportCache memoizes the per-peer export transform (AS prepend,
	// next-hop-self) keyed by canonical input attrs, one map per shard.
	// Only consulted when the peer has no export policy (policies may
	// match on prefix, which the cache cannot key).
	exportCache []map[exportKey]*wire.PathAttrs
	// pending accumulates MRAI-coalesced route changes per shard: attrs
	// to announce, or nil to withdraw. Flushed by the peer's mraiFlusher.
	// Unused when the peer belongs to an update group (the group holds
	// the pending set).
	pending []pendingShard

	// group, when Config.UpdateGroups is enabled, is the update group
	// this peer emits through; its per-shard state replaces adjOut,
	// exportCache, and pending above. Set before the peer is registered
	// and never changed, so shard workers read it without locking.
	group *updateGroup

	// prefixCount tracks the routes this peer currently contributes
	// across all shards, for max-prefix enforcement.
	prefixCount atomic.Int64
	overLimit   atomic.Bool
	// downLeft counts shards that have not yet processed this peer's
	// teardown; the last one performs the final cleanup.
	downLeft atomic.Int32
}

type exportKey struct {
	attrs   *wire.PathAttrs
	srcEBGP bool
}

type pendingShard struct {
	mu sync.Mutex
	m  map[netaddr.Prefix]*wire.PathAttrs
}

// Router is a live BGP speaker: it terminates sessions, applies policy,
// runs the decision process, installs routes into a shared FIB, and
// re-advertises its Loc-RIB to peers. The paper's "router under test".
//
// The decision process is sharded: prefixes hash onto N workers, each
// owning a Loc-RIB partition (rib.Sharded) plus the matching partition of
// every peer's Adj-RIB-Out, so a burst of UPDATEs spreads across cores —
// the pipeline parallelism whose absence the paper measures in its
// single-process software routers. Peer lifecycle events (up, down,
// refresh) fan out to every shard; per-session FIFO dispatch keeps each
// shard's view of a peer ordered (up before its updates before its down).
type Router struct {
	cfg       Config
	nshards   int
	neighbors map[uint32]NeighborConfig

	rib      *rib.Sharded
	fib      fib.Shared
	fwd      *forward.Engine
	interner *wire.Intern

	listener net.Listener
	shards   []*shard
	done     chan struct{}
	wg       sync.WaitGroup
	damper   *damping.Damper // nil when damping is disabled

	mu       sync.Mutex
	peers    map[netaddr.Addr]*peerState // keyed by peer BGP ID
	sessions []*session.Session          // all sessions ever attached (for Stop)
	groups   map[string]*updateGroup     // update groups by canonical export key

	// batchPool recycles dispatchBatch buffers between session handlers
	// and shard workers, so the batched hot path allocates nothing in
	// steady state.
	batchPool       sync.Pool
	dispatchBatches atomic.Uint64 // handler batches dispatched
	dispatchUpdates atomic.Uint64 // UPDATE messages those batches carried
	fibChanges      atomic.Uint64

	// slabPool recycles the arena blocks the shared marshal cache carves
	// fan-out payloads from (see marshalcache.go).
	slabPool sync.Pool
	// Update-group counters (see GroupStats).
	groupRuns           atomic.Uint64
	groupSends          atomic.Uint64
	groupBytesBuilt     atomic.Uint64
	groupBytesSaved     atomic.Uint64
	groupSuppressed     atomic.Uint64
	groupBytesMarshaled atomic.Uint64
	groupCacheHits      atomic.Uint64
	groupCacheMisses    atomic.Uint64
	groupRebuilds       atomic.Uint64
	groupRebuildChunks  atomic.Uint64
	rebuildHist         rebuildHist
}

// shard is one decision worker: a work queue, worker-owned scratch
// buffers, and the shard's transaction counter. The counters sit behind
// cache-line padding so pollers reading one shard's counts never bounce
// the line a neighbouring shard's worker is writing.
type shard struct {
	work chan workItem

	// Scratch owned by the shard worker.
	fibOps       []fib.Op
	emit         emitBuf
	gemit        groupEmitBuf
	single       []wire.Update // one-element batch for unbatched updates
	peerScratch  []*peerState
	groupScratch []*updateGroup

	// mcache is the shard's cross-group marshal cache (marshalcache.go);
	// catchups the queue of in-progress chunked group rebuilds and member
	// replays, advanced whenever the work queue idles and forcibly every
	// catchupForceEvery items (busy counts toward the next forced chunk).
	// All worker-owned.
	mcache   marshalCache
	catchups []*groupCatchup
	busy     int

	_            [64]byte // keep the hot counters on their own line
	transactions atomic.Uint64
	batches      atomic.Uint64
	_            [48]byte
}

type workKind int

const (
	workUpdate workKind = iota
	workUpdateBatch
	workPeerUp
	workPeerDown
	workRefresh
	workRIBLen
	workDump
	workAdjOut
	workGroupFlush
)

type workItem struct {
	kind   workKind
	peerID netaddr.Addr
	update wire.Update
	batch  *dispatchBatch // with workUpdateBatch; returned to the pool by the worker
	group  *updateGroup   // with workGroupFlush
	peer   *peerState     // with workPeerDown: the exact registration to tear down
	reply  chan int
	dump   chan []LocRoute
	adj    chan []AdjRoute
}

// dispatchBatch is a pooled multi-update work item: one session handler
// batch's sub-updates for a single shard, processed run-to-completion by
// that shard's worker. The updates slice and its per-element prefix
// buffers keep their capacity across pool round-trips.
type dispatchBatch struct {
	updates []wire.Update
}

// next returns a cleared sub-update slot, reusing the slot's prefix
// buffers from earlier round-trips.
func (b *dispatchBatch) next() *wire.Update {
	if len(b.updates) < cap(b.updates) {
		b.updates = b.updates[:len(b.updates)+1]
	} else {
		b.updates = append(b.updates, wire.Update{})
	}
	u := &b.updates[len(b.updates)-1]
	u.Withdrawn = u.Withdrawn[:0]
	u.NLRI = u.NLRI[:0]
	u.Attrs = wire.PathAttrs{}
	return u
}

// LocRoute is one row of a Loc-RIB snapshot: the selected route for a
// prefix and the peer it was learned from.
type LocRoute struct {
	Prefix netaddr.Prefix
	Peer   netaddr.Addr
	Attrs  *wire.PathAttrs
}

// AdjRoute is one row of a per-peer Adj-RIB-Out snapshot: a prefix and
// the attributes currently advertised to that peer.
type AdjRoute struct {
	Prefix netaddr.Prefix
	Attrs  *wire.PathAttrs
}

// NewRouter validates the configuration and builds a stopped router.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.AS == 0 {
		return nil, fmt.Errorf("core: router AS must be nonzero")
	}
	if cfg.ID.IsZero() {
		return nil, fmt.Errorf("core: router ID must be nonzero")
	}
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 90
	}
	if cfg.NextHop.IsZero() {
		cfg.NextHop = cfg.ID
	}
	if cfg.NextHop6.IsZero() {
		//bgplint:allow(afifamily) reason=the router ID is an IPv4 identifier by RFC 4271
		cfg.NextHop6 = netaddr.AddrFrom128(0, uint64(0xffff)<<32|uint64(cfg.ID.V4()))
	}
	if cfg.FIBEngine == "" {
		cfg.FIBEngine = "patricia"
	}
	if cfg.ExportBatch == 0 {
		cfg.ExportBatch = 500
	}
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: shard count %d must be positive", cfg.Shards)
	}
	switch {
	case cfg.BatchMaxUpdates == 0:
		cfg.BatchMaxUpdates = DefaultBatchMaxUpdates
	case cfg.BatchMaxUpdates < 0:
		cfg.BatchMaxUpdates = 0 // explicit disable
	}
	switch {
	case cfg.BatchMaxDelay == 0:
		cfg.BatchMaxDelay = DefaultBatchMaxDelay
	case cfg.BatchMaxDelay < 0:
		cfg.BatchMaxDelay = 0 // flush on event-queue idle
	}
	neighbors := make(map[uint32]NeighborConfig, len(cfg.Neighbors))
	for _, n := range cfg.Neighbors {
		if _, dup := neighbors[n.AS]; dup {
			return nil, fmt.Errorf("core: duplicate neighbor AS %d", n.AS)
		}
		neighbors[n.AS] = n
	}
	eng, err := fib.NewEngine(cfg.FIBEngine)
	if err != nil {
		return nil, err
	}
	table := fib.NewShared(eng)
	r := &Router{
		cfg:       cfg,
		nshards:   cfg.Shards,
		neighbors: neighbors,
		rib:       rib.NewSharded(cfg.Shards),
		fib:       table,
		fwd:       forward.New(table, nil),
		interner:  wire.NewIntern(),
		shards:    make([]*shard, cfg.Shards),
		done:      make(chan struct{}),
		peers:     make(map[netaddr.Addr]*peerState),
		groups:    make(map[string]*updateGroup),
	}
	r.batchPool.New = func() any { return new(dispatchBatch) }
	r.slabPool.New = func() any { return &payloadSlab{buf: make([]byte, slabSize)} }
	for i := range r.shards {
		r.shards[i] = &shard{work: make(chan workItem, 8192)}
	}
	if cfg.Damping != nil {
		r.damper = damping.New(*cfg.Damping, nil)
	}
	r.fwd.AddLocalAddr(cfg.ID)
	return r, nil
}

// Damper exposes the flap damper for diagnostics; nil when disabled.
func (r *Router) Damper() *damping.Damper { return r.damper }

// Start begins listening (if configured), dials active neighbours, and
// launches the decision workers.
func (r *Router) Start() error {
	if r.cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", r.cfg.ListenAddr)
		if err != nil {
			return err
		}
		if r.cfg.ListenWrap != nil {
			ln = r.cfg.ListenWrap(ln)
		}
		r.listener = ln
		r.wg.Add(1)
		go r.acceptLoop(ln)
	}
	for i := range r.shards {
		r.wg.Add(1)
		go r.shardWorker(i)
	}
	for _, n := range r.cfg.Neighbors {
		if n.DialTarget != "" {
			r.startSession(n, "")
		}
	}
	return nil
}

// ListenAddr returns the bound listen address ("host:port"), valid after
// Start when ListenAddr was configured.
func (r *Router) ListenAddr() string {
	if r.listener == nil {
		return ""
	}
	return r.listener.Addr().String()
}

// Stop tears down all sessions and stops the router.
func (r *Router) Stop() {
	select {
	case <-r.done:
		return
	default:
	}
	close(r.done)
	if r.listener != nil {
		r.listener.Close()
	}
	r.mu.Lock()
	sessions := append([]*session.Session(nil), r.sessions...)
	for _, p := range r.peers {
		p.out.close()
	}
	r.mu.Unlock()
	for _, s := range sessions {
		s.Stop()
	}
	r.wg.Wait()
}

// FIB exposes the shared forwarding table (read by the data plane).
// Snapshot-capable engines make every method on it wait-free.
func (r *Router) FIB() fib.Shared { return r.fib }

// Forwarder exposes the data-plane engine bound to the router's FIB.
func (r *Router) Forwarder() *forward.Engine { return r.fwd }

// Transactions returns the number of prefix-level routing operations
// (announcements and withdrawals) the router has completed. This is the
// paper's "transactions" numerator. The count lives in per-shard
// counters (each written only by its shard worker) and is folded on
// read, so the hot path never contends on a global atomic.
func (r *Router) Transactions() uint64 {
	var sum uint64
	for _, s := range r.shards {
		sum += s.transactions.Load()
	}
	return sum
}

// FIBChanges returns the number of forwarding-table changes applied.
func (r *Router) FIBChanges() uint64 { return r.fibChanges.Load() }

// Shards returns the number of decision-worker shards.
func (r *Router) Shards() int { return r.nshards }

// ShardStat is an operational snapshot of one decision shard.
type ShardStat struct {
	QueueDepth   int    // work items waiting in the shard's queue
	Transactions uint64 // prefix-level operations completed by the shard
	Batches      uint64 // update work batches the shard has processed
}

// ShardStats returns a snapshot per shard, in shard order.
func (r *Router) ShardStats() []ShardStat {
	out := make([]ShardStat, r.nshards)
	for i, s := range r.shards {
		out[i] = ShardStat{
			QueueDepth:   len(s.work),
			Transactions: s.transactions.Load(),
			Batches:      s.batches.Load(),
		}
	}
	return out
}

// DispatchStats reports how many session-handler batches have been
// dispatched to the shards and how many UPDATE messages they carried;
// updates/batches is the mean coalescing factor.
func (r *Router) DispatchStats() (batches, updates uint64) {
	return r.dispatchBatches.Load(), r.dispatchUpdates.Load()
}

// BatchLimits returns the effective batch-dispatch bounds after
// defaulting (maxUpdates == 0 means batching is disabled).
func (r *Router) BatchLimits() (maxUpdates int, maxDelay time.Duration) {
	return r.cfg.BatchMaxUpdates, r.cfg.BatchMaxDelay
}

// InternStats reports the path-attribute intern table's size and hit rate.
func (r *Router) InternStats() wire.InternStats { return r.interner.Stats() }

// FIBBatchStats reports batched FIB commits and the total ops they
// carried; ops/batches is the mean commit batch size.
func (r *Router) FIBBatchStats() (batches, ops uint64) { return r.fib.BatchStats() }

// RIBLen returns the Loc-RIB size, synchronized through every shard
// worker so queued work ahead of the query is accounted for.
func (r *Router) RIBLen() int {
	replies := make(chan int, r.nshards)
	for i := range r.shards {
		if !r.send(i, workItem{kind: workRIBLen, reply: replies}) {
			return -1
		}
	}
	total := 0
	for range r.shards {
		select {
		case n := <-replies:
			total += n
		case <-r.done:
			return -1
		}
	}
	return total
}

// DumpLocRIB snapshots the Loc-RIB across all shards, sorted by prefix.
// Like RIBLen it is a barrier: each shard answers after draining the work
// queued ahead of the request. Returns nil after Stop.
func (r *Router) DumpLocRIB() []LocRoute {
	replies := make(chan []LocRoute, r.nshards)
	for i := range r.shards {
		if !r.send(i, workItem{kind: workDump, dump: replies}) {
			return nil
		}
	}
	var all []LocRoute
	for range r.shards {
		select {
		case rs := <-replies:
			all = append(all, rs...)
		case <-r.done:
			return nil
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Prefix.Compare(all[j].Prefix) < 0 })
	return all
}

// DumpAdjOut snapshots the Adj-RIB-Out the router currently advertises
// to the peer with the given BGP ID, sorted by prefix. Like DumpLocRIB
// it is a per-shard barrier; each shard worker walks its own partition,
// so no locking races with the decision process. Returns nil when the
// peer is unknown or the router is stopped.
func (r *Router) DumpAdjOut(peerID netaddr.Addr) []AdjRoute {
	replies := make(chan []AdjRoute, r.nshards)
	for i := range r.shards {
		if !r.send(i, workItem{kind: workAdjOut, peerID: peerID, adj: replies}) {
			return nil
		}
	}
	var all []AdjRoute
	for range r.shards {
		select {
		case rs := <-replies:
			all = append(all, rs...)
		case <-r.done:
			return nil
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Prefix.Compare(all[j].Prefix) < 0 })
	return all
}

// PeerIDs returns the BGP IDs of the currently established peers in
// sorted order.
func (r *Router) PeerIDs() []netaddr.Addr {
	r.mu.Lock()
	ids := make([]netaddr.Addr, 0, len(r.peers))
	for id := range r.peers {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// send enqueues a work item on shard i, reporting false once the router
// is stopped.
func (r *Router) send(i int, w workItem) bool {
	select {
	case r.shards[i].work <- w:
		return true
	case <-r.done:
		return false
	}
}

// fanOut enqueues a peer lifecycle event on every shard.
func (r *Router) fanOut(kind workKind, peerID netaddr.Addr) {
	for i := range r.shards {
		if !r.send(i, workItem{kind: kind, peerID: peerID}) {
			return
		}
	}
}

// dispatchUpdate splits an UPDATE's prefixes by owning shard and enqueues
// the per-shard sub-updates. With one shard the message passes through
// untouched.
func (r *Router) dispatchUpdate(peerID netaddr.Addr, u wire.Update) {
	if r.nshards == 1 {
		r.send(0, workItem{kind: workUpdate, peerID: peerID, update: u})
		return
	}
	subs := make([]wire.Update, r.nshards)
	for _, p := range u.Withdrawn {
		si := rib.ShardOf(p, r.nshards)
		subs[si].Withdrawn = append(subs[si].Withdrawn, p)
	}
	for _, p := range u.NLRI {
		si := rib.ShardOf(p, r.nshards)
		subs[si].NLRI = append(subs[si].NLRI, p)
	}
	for i := range subs {
		if len(subs[i].Withdrawn) == 0 && len(subs[i].NLRI) == 0 {
			continue
		}
		subs[i].Attrs = u.Attrs
		if !r.send(i, workItem{kind: workUpdate, peerID: peerID, update: subs[i]}) {
			return
		}
	}
}

// dispatchUpdateBatch splits a whole session-level batch of UPDATEs by
// owning shard in one pass and enqueues at most one pooled multi-update
// work item per shard, so dispatch cost amortizes across the batch
// instead of being paid per message. h's split scratch is safe to reuse:
// session callbacks are serialized and each session owns its handler.
func (r *Router) dispatchUpdateBatch(h *routerHandler, peerID netaddr.Addr, us []wire.Update) {
	r.dispatchBatches.Add(1)
	r.dispatchUpdates.Add(uint64(len(us)))
	if r.nshards == 1 {
		// The update structs must be copied out of the session-owned batch
		// slice before the callback returns; their payload slices are
		// single-use and safe to retain.
		b := r.getBatch()
		b.updates = append(b.updates[:0], us...)
		//bgplint:allow(pooledbuf) reason=audited ownership transfer: the shard worker Puts the batch after processing; the failure branch Puts it here
		if !r.send(0, workItem{kind: workUpdateBatch, peerID: peerID, batch: b}) {
			r.putBatch(b)
		}
		return
	}
	if h.batches == nil {
		h.batches = make([]*dispatchBatch, r.nshards)
		h.cur = make([]*wire.Update, r.nshards)
	}
	batches, cur := h.batches, h.cur
	for ui := range us {
		u := &us[ui]
		// Each source UPDATE needs its own sub-update per shard (attrs
		// differ between messages); clear the per-shard cursors.
		for i := range cur {
			cur[i] = nil
		}
		for _, p := range u.Withdrawn {
			si := rib.ShardOf(p, r.nshards)
			sub := cur[si]
			if sub == nil {
				if batches[si] == nil {
					//bgplint:allow(pooledbuf) reason=audited ownership transfer: parked in the handler scratch only until the flush loop below sends or Puts it
					batches[si] = r.getBatch()
				}
				sub = batches[si].next()
				sub.Attrs = u.Attrs
				cur[si] = sub
			}
			sub.Withdrawn = append(sub.Withdrawn, p)
		}
		for _, p := range u.NLRI {
			si := rib.ShardOf(p, r.nshards)
			sub := cur[si]
			if sub == nil {
				if batches[si] == nil {
					//bgplint:allow(pooledbuf) reason=audited ownership transfer: parked in the handler scratch only until the flush loop below sends or Puts it
					batches[si] = r.getBatch()
				}
				sub = batches[si].next()
				sub.Attrs = u.Attrs
				cur[si] = sub
			}
			sub.NLRI = append(sub.NLRI, p)
		}
	}
	for i, b := range batches {
		if b == nil {
			continue
		}
		batches[i] = nil
		if !r.send(i, workItem{kind: workUpdateBatch, peerID: peerID, batch: b}) {
			r.putBatch(b)
		}
	}
}

// acceptLoop attaches inbound connections to passive sessions.
func (r *Router) acceptLoop(ln net.Listener) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// The neighbour is identified after OPEN by its AS; accept with
		// PeerAS 0 and let sessionUp sort it out.
		s := r.startSession(NeighborConfig{}, "inbound")
		s.Attach(conn)
	}
}

// startSession creates and starts one session. For inbound sessions
// (label != ""), cfg is resolved later from the peer's OPEN.
func (r *Router) startSession(n NeighborConfig, label string) *session.Session {
	passive := n.DialTarget == ""
	name := label
	if name == "" {
		name = fmt.Sprintf("as%d", n.AS)
	}
	s := session.New(session.Config{
		FSM: fsm.Config{
			LocalAS:  r.cfg.AS,
			LocalID:  r.cfg.ID,
			HoldTime: r.cfg.HoldTime,
			PeerAS:   n.AS,
			Passive:  passive,
		},
		DialTarget:      n.DialTarget,
		Handler:         &routerHandler{r: r},
		Name:            name,
		BatchMaxUpdates: r.cfg.BatchMaxUpdates,
		BatchMaxDelay:   r.cfg.BatchMaxDelay,
	})
	r.mu.Lock()
	r.sessions = append(r.sessions, s)
	r.mu.Unlock()
	s.Start()
	return s
}

// routerHandler adapts session callbacks onto the shard work queues.
type routerHandler struct {
	r *Router
	// Batch-split scratch, reused across UpdateBatch calls. Callbacks are
	// serialized per session and each session owns its handler, so no
	// locking is needed.
	cur     []*wire.Update
	batches []*dispatchBatch
}

// Established registers the peer and schedules the initial table export
// on every shard.
func (h *routerHandler) Established(s *session.Session) {
	r := h.r
	open := s.PeerOpen()
	peerAS := open.EffectiveAS()
	ncfg, ok := r.neighborConfig(peerAS)
	if !ok {
		// Unconfigured peer: terminate. Stop must not run on the session's
		// own event loop, so do it asynchronously.
		go s.Stop()
		return
	}
	ps := &peerState{
		info: rib.PeerInfo{
			Addr: open.ID, // loopback benches reuse IPs; the BGP ID is unique
			ID:   open.ID,
			AS:   peerAS,
			EBGP: peerAS != r.cfg.AS,
		},
		afis:        s.NegotiatedFamilies(),
		cfg:         ncfg,
		sess:        s,
		out:         newOutQueue(),
		adjOut:      make([]*rib.AdjOut, r.nshards),
		exportCache: make([]map[exportKey]*wire.PathAttrs, r.nshards),
		pending:     make([]pendingShard, r.nshards),
	}
	for i := range ps.adjOut {
		ps.adjOut[i] = rib.NewAdjOut()
		ps.exportCache[i] = make(map[exportKey]*wire.PathAttrs)
	}
	if r.cfg.UpdateGroups {
		// The wire mode and negotiated family set are part of the group
		// identity: fan-out shares marshaled bytes, which depend on both.
		ps.group = r.groupFor(ps.info.EBGP, ncfg.Export, s.FourOctetAS(), ps.afis)
	}
	ps.downLeft.Store(int32(r.nshards))
	r.mu.Lock()
	if old, exists := r.peers[open.ID]; exists {
		old.out.close()
	}
	r.peers[open.ID] = ps
	r.mu.Unlock()

	r.wg.Add(1)
	go r.sender(ps)
	if r.cfg.MRAI > 0 && ps.group == nil {
		// Grouped peers flush through their group's flusher instead.
		r.wg.Add(1)
		go r.mraiFlusher(ps)
	}

	r.fanOut(workPeerUp, open.ID)
}

// Update queues a received UPDATE for the decision workers (the
// unbatched path, used when Config.BatchMaxUpdates disables batching).
func (h *routerHandler) Update(s *session.Session, u wire.Update) {
	h.r.dispatchUpdate(s.PeerOpen().ID, u)
}

// UpdateBatch queues a session-level batch of consecutive UPDATEs for
// the decision workers as one per-shard dispatch.
func (h *routerHandler) UpdateBatch(s *session.Session, us []wire.Update) {
	h.r.dispatchUpdateBatch(h, s.PeerOpen().ID, us)
}

// Refresh re-sends the peer's Adj-RIB-Out on a ROUTE-REFRESH request
// (RFC 2918).
func (h *routerHandler) Refresh(s *session.Session, _ wire.RouteRefresh) {
	h.r.fanOut(workRefresh, s.PeerOpen().ID)
}

// Down unregisters the peer and withdraws its routes. The teardown is
// bound to this session's exact peerState, resolved here before the work
// items are enqueued: a peer that bounces fast can re-establish while the
// old session's down event is still in flight, and resolving by BGP ID at
// processing time would tear down the replacement's registration instead
// (dropping its group membership and corrupting its shard-down counter).
func (h *routerHandler) Down(s *session.Session, _ error) {
	id := s.PeerOpen().ID
	r := h.r
	r.mu.Lock()
	ps := r.peers[id]
	r.mu.Unlock()
	if ps == nil || ps.sess != s {
		// A newer session already owns (or tore down) this slot; that
		// registration replaced ours wholesale, so there is nothing left
		// to unwind for this session. Routes the old session announced
		// stay keyed by the shared peer address and are overwritten as the
		// replacement session re-announces.
		return
	}
	for i := range r.shards {
		if !r.send(i, workItem{kind: workPeerDown, peerID: id, peer: ps}) {
			return
		}
	}
}

// sender drains a peer's unbounded out-queue into its session, isolating
// the decision workers from transport back-pressure.
func (r *Router) sender(ps *peerState) {
	defer r.wg.Done()
	for {
		msgs, ok := ps.out.take()
		if !ok {
			return
		}
		for i, it := range msgs {
			var err error
			if it.shared != nil {
				// Ownership of one payload reference transfers to the
				// session; SendShared releases it itself on failure.
				err = ps.sess.SendShared(it.shared)
			} else {
				err = ps.sess.Send(it.m)
			}
			if err != nil {
				// The session is gone: release the payload references the
				// remaining queued items hold before abandoning them.
				for _, rest := range msgs[i+1:] {
					if rest.shared != nil {
						rest.shared.Release()
					}
				}
				return
			}
		}
	}
}

// shardWorker is decision worker i: it owns Loc-RIB shard i and partition
// i of every peer's Adj-RIB-Out (the analogue of one xorp_bgp + xorp_rib
// pipeline, replicated per core). Chunked group catch-ups run at idle
// priority: whenever the queue is empty the worker advances the oldest
// catch-up by one bounded chunk, and under sustained load one chunk is
// forced every catchupForceEvery items so catch-ups cannot starve. The
// worker is the sole consumer of its own queue, so catch-up work must
// never be re-enqueued as work items — that could deadlock on a full
// queue.
func (r *Router) shardWorker(i int) {
	defer r.wg.Done()
	s := r.shards[i]
	// On shutdown the cache's payload references and the open slab's
	// arena reference must be dropped here, on the owning worker —
	// otherwise the slabs never drain back to the pool.
	defer s.mcache.shutdown()
	for {
		if len(s.catchups) > 0 {
			select {
			case <-r.done:
				return
			case w := <-s.work:
				r.handleWork(i, s, w)
				if s.busy++; s.busy >= catchupForceEvery {
					s.busy = 0
					r.runCatchupChunk(i, s)
				}
			default:
				r.runCatchupChunk(i, s)
			}
			continue
		}
		s.busy = 0
		select {
		case <-r.done:
			return
		case w := <-s.work:
			r.handleWork(i, s, w)
		}
	}
}

// handleWork dispatches one work item on shard i's worker.
func (r *Router) handleWork(i int, s *shard, w workItem) {
	switch w.kind {
	case workUpdate:
		s.single = append(s.single[:0], w.update)
		r.processUpdateBatch(i, w.peerID, s.single)
	case workUpdateBatch:
		r.processUpdateBatch(i, w.peerID, w.batch.updates)
		r.putBatch(w.batch)
	case workPeerUp:
		r.processPeerUp(i, w.peerID)
	case workPeerDown:
		r.processPeerDown(i, w.peer)
	case workRefresh:
		r.processRefresh(i, w.peerID)
	case workGroupFlush:
		r.processGroupFlush(i, w.group)
	case workRIBLen:
		w.reply <- r.rib.Shard(i).Len()
	case workDump:
		var routes []LocRoute
		r.rib.Shard(i).WalkLoc(func(p netaddr.Prefix, c rib.Candidate) bool {
			routes = append(routes, LocRoute{Prefix: p, Peer: c.Peer.Addr, Attrs: c.Attrs})
			return true
		})
		w.dump <- routes
	case workAdjOut:
		var routes []AdjRoute
		if ps := r.peerByID(w.peerID); ps != nil {
			collect := func(p netaddr.Prefix, attrs *wire.PathAttrs) bool {
				routes = append(routes, AdjRoute{Prefix: p, Attrs: attrs})
				return true
			}
			if ps.group != nil {
				// Grouped peer: its logical Adj-RIB-Out is the group
				// table minus its own originations. A dump is a barrier,
				// so any catch-up still filling the table (or replaying
				// it to a member) completes first. The table can be nil
				// for an instant between peer registration and this
				// shard's workPeerUp; that reads as empty.
				r.drainGroupCatchups(i, s, ps.group)
				if gsh := &ps.group.shards[i]; gsh.adjOut != nil {
					gsh.adjOut.WalkMember(ps.info.Addr, collect)
				}
			} else {
				ps.adjOut[i].Walk(collect)
			}
		}
		w.adj <- routes
	}
}

func (r *Router) peerByID(id netaddr.Addr) *peerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peers[id]
}

// snapshotPeersInto appends the current established peers to buf,
// reusing its capacity. Shard workers snapshot once per work batch
// instead of once per route change, so r.mu is off the per-prefix path.
func (r *Router) snapshotPeersInto(buf []*peerState) []*peerState {
	r.mu.Lock()
	for _, p := range r.peers {
		buf = append(buf, p)
	}
	r.mu.Unlock()
	return buf
}

// getBatch and putBatch recycle dispatch batches (and, transitively,
// their per-slot prefix buffers) between session handlers and shard
// workers.
func (r *Router) getBatch() *dispatchBatch {
	return r.batchPool.Get().(*dispatchBatch)
}

func (r *Router) putBatch(b *dispatchBatch) {
	b.updates = b.updates[:0]
	r.batchPool.Put(b)
}

// processPeerUp registers the peer in shard si's RIB and exports the
// shard's Loc-RIB slice to it (Phase 2 of the benchmark methodology).
func (r *Router) processPeerUp(si int, id netaddr.Addr) {
	ps := r.peerByID(id)
	if ps == nil {
		return
	}
	if ps.group != nil {
		r.processPeerUpGrouped(si, ps)
		return
	}
	shardRIB := r.rib.Shard(si)
	shardRIB.AddPeer(ps.info)

	// Initial table transfer: batch routes sharing an attribute block.
	// Attrs are interned, so "same block" is a pointer comparison.
	var batch []netaddr.Prefix
	var batchAttrs *wire.PathAttrs
	flush := func() {
		if len(batch) == 0 {
			return
		}
		ps.out.push(wire.Update{Attrs: *batchAttrs, NLRI: append([]netaddr.Prefix(nil), batch...)})
		batch = batch[:0]
	}
	shardRIB.WalkLoc(func(p netaddr.Prefix, c rib.Candidate) bool {
		attrs, ok := r.exportAttrs(si, ps, p, c)
		if !ok {
			return true
		}
		if !ps.adjOut[si].Advertise(p, attrs) {
			return true
		}
		if len(batch) > 0 && (attrs != batchAttrs || len(batch) >= r.cfg.ExportBatch) {
			flush()
		}
		if len(batch) == 0 {
			batchAttrs = attrs
		}
		batch = append(batch, p)
		return true
	})
	flush()
}

// processRefresh rebuilds and re-sends shard si's partition of the peer's
// Adj-RIB-Out from scratch: the RFC 2918 response to a ROUTE-REFRESH
// request, fanned out across shards.
func (r *Router) processRefresh(si int, id netaddr.Addr) {
	ps := r.peerByID(id)
	if ps == nil {
		return
	}
	if ps.group != nil {
		// Grouped peer: the shared table is authoritative; schedule a
		// chunked replay of the member's view of it. Other members are
		// untouched.
		r.scheduleMemberReplay(si, ps)
		return
	}
	// Reset the advertised view (and any MRAI-pending changes owned by
	// this shard) so every current route is re-sent, then reuse the
	// initial-export path.
	sh := &ps.pending[si]
	sh.mu.Lock()
	sh.m = nil
	sh.mu.Unlock()
	ps.adjOut[si] = rib.NewAdjOut()
	r.processPeerUp(si, id)
}

// processPeerDown withdraws everything the peer contributed to shard si;
// the last shard to finish performs the final peer cleanup. ps is the
// exact registration the downed session owned (resolved by the session
// handler, not re-looked-up by ID here), so a slot a replacement session
// has since taken over is never torn down by its predecessor's event.
func (r *Router) processPeerDown(si int, ps *peerState) {
	if ps == nil {
		return
	}
	if g := ps.group; g != nil {
		// Leave the group first so the teardown withdrawals fan out only
		// to the surviving members. Guarded by identity: a re-established
		// session may already have replaced this membership slot.
		sh := &g.shards[si]
		if sh.members[ps.info.Addr] == ps {
			delete(sh.members, ps.info.Addr)
		}
		// Drop catch-ups that can no longer deliver anything: the
		// member's own replay, and — once the shard has no members — any
		// rebuild of the group's table (a future first member resets the
		// table and schedules a fresh one).
		//bgplint:allow(shardowner) reason=dropCatchups invokes the predicate synchronously on this worker and never retains it; sh stays on shard worker si
		r.shards[si].catchups = dropCatchups(r.shards[si].catchups, func(c *groupCatchup) bool {
			return c.member == ps || (c.g == g && len(sh.members) == 0)
		})
	}
	s := r.shards[si]
	r.snapshotEmitTargets(s)
	ops := s.fibOps[:0]
	changes := r.rib.Shard(si).RemovePeer(ps.info.Addr)
	for _, ch := range changes {
		r.applyChange(si, ch, &ops, s)
	}
	r.commitFIB(&ops)
	s.fibOps = ops[:0]
	r.flushEmits(si, &s.emit)
	r.flushGroupEmits(si, &s.gemit)
	if n := uint64(len(changes)); n > 0 {
		s.transactions.Add(n)
	}

	if ps.downLeft.Add(-1) == 0 {
		r.mu.Lock()
		// Guard against a re-established session having replaced the entry.
		if r.peers[ps.info.Addr] == ps {
			delete(r.peers, ps.info.Addr)
		}
		r.mu.Unlock()
		ps.out.close()
		if r.damper != nil {
			r.damper.Forget(ps.info.Addr)
		}
	}
}

// processUpdateBatch runs the decision process over a batch of
// shard-local sub-updates from one peer, run-to-completion: FIB ops,
// Adj-RIB-Out emissions, MRAI merges, and transaction counts accumulate
// across the whole batch and each flushes exactly once at batch end.
func (r *Router) processUpdateBatch(si int, id netaddr.Addr, us []wire.Update) {
	ps := r.peerByID(id)
	if ps == nil {
		return
	}
	s := r.shards[si]
	r.snapshotEmitTargets(s)
	ops := s.fibOps[:0]
	var tx uint64
	for ui := range us {
		r.processOneUpdate(si, ps, &us[ui], &ops, s, &tx)
	}
	r.commitFIB(&ops)
	s.fibOps = ops[:0]
	r.flushEmits(si, &s.emit)
	r.flushGroupEmits(si, &s.gemit)
	if tx > 0 {
		s.transactions.Add(tx)
	}
	s.batches.Add(1)
}

// snapshotEmitTargets refreshes the shard's emission-target scratch for
// one work batch: the peer list (ungrouped mode) or the group list
// (grouped mode), so r.mu stays off the per-prefix path.
func (r *Router) snapshotEmitTargets(s *shard) {
	if r.cfg.UpdateGroups {
		s.groupScratch = r.snapshotGroupsInto(s.groupScratch[:0])
	} else {
		s.peerScratch = r.snapshotPeersInto(s.peerScratch[:0])
	}
}

// processOneUpdate runs import policy and the decision process on one
// shard-local sub-update, accumulating FIB ops, emissions, and the
// transaction count into the caller's batch state.
func (r *Router) processOneUpdate(si int, ps *peerState, u *wire.Update, ops *[]fib.Op, s *shard, tx *uint64) {
	if ps.overLimit.Load() {
		// Session is being torn down for exceeding its prefix limit;
		// ignore anything still in flight.
		*tx += uint64(len(u.Withdrawn) + len(u.NLRI))
		return
	}
	shardRIB := r.rib.Shard(si)

	for _, p := range u.Withdrawn {
		had := peerHasRoute(shardRIB, ps.info.Addr, p)
		if r.damper != nil && had {
			r.damper.Flap(ps.info.Addr, p)
		}
		if ch, ok := shardRIB.Withdraw(ps.info.Addr, p); ok {
			r.applyChange(si, ch, ops, s)
		}
		if had {
			ps.prefixCount.Add(-1)
		}
		*tx++
	}
	if len(u.NLRI) == 0 {
		return
	}
	// Loop detection: reject paths containing our own AS.
	if u.Attrs.ASPath.Contains(r.cfg.AS) {
		*tx += uint64(len(u.NLRI))
		return
	}
	// With no import policy the post-policy attrs are identical for every
	// prefix in the message: intern once, share the canonical pointer.
	var msgAttrs *wire.PathAttrs
	if ps.cfg.Import == nil {
		msgAttrs = r.interner.Intern(u.Attrs)
	}
	for _, p := range u.NLRI {
		attrs := msgAttrs
		if attrs == nil {
			a, ok := ps.cfg.Import.Apply(p, u.Attrs)
			if !ok {
				*tx++
				continue
			}
			attrs = r.interner.Intern(a)
		}
		if r.damper != nil && r.dampAnnounce(shardRIB, ps.info.Addr, p, attrs) {
			// Suppressed: the route must not be used; drop any candidate
			// the peer previously contributed.
			if ch, ok := shardRIB.Withdraw(ps.info.Addr, p); ok {
				r.applyChange(si, ch, ops, s)
			}
			*tx++
			continue
		}
		had := peerHasRoute(shardRIB, ps.info.Addr, p)
		if ch, ok := shardRIB.Announce(ps.info.Addr, p, attrs); ok {
			r.applyChange(si, ch, ops, s)
		}
		if !had {
			n := ps.prefixCount.Add(1)
			if ps.cfg.MaxPrefixes > 0 && n > int64(ps.cfg.MaxPrefixes) {
				// Over the limit: administratively stop the session (once).
				// The resulting Down callback withdraws everything the
				// peer contributed.
				if ps.overLimit.CompareAndSwap(false, true) {
					go ps.sess.Stop()
				}
				*tx++
				return
			}
		}
		*tx++
	}
}

// peerHasRoute reports whether the peer currently contributes a candidate
// for the prefix in the given RIB shard.
func peerHasRoute(shardRIB *rib.RIB, peer netaddr.Addr, p netaddr.Prefix) bool {
	for _, c := range shardRIB.Candidates(p) {
		if c.Peer.Addr == peer {
			return true
		}
	}
	return false
}

// dampAnnounce applies flap accounting to an announcement: a
// re-announcement with changed attributes counts as a flap (RFC 2439
// attribute-change event). It reports whether the route is suppressed.
// Attrs are interned, so the attribute-change check is a pointer compare.
func (r *Router) dampAnnounce(shardRIB *rib.RIB, peer netaddr.Addr, p netaddr.Prefix, attrs *wire.PathAttrs) bool {
	for _, c := range shardRIB.Candidates(p) {
		if c.Peer.Addr == peer {
			if c.Attrs != attrs && !c.Attrs.Equal(*attrs) {
				return r.damper.Flap(peer, p)
			}
			return r.damper.Suppressed(peer, p)
		}
	}
	return r.damper.Suppressed(peer, p)
}

// commitFIB flushes accumulated forwarding-table ops as one write-locked
// batch.
func (r *Router) commitFIB(ops *[]fib.Op) {
	if len(*ops) == 0 {
		return
	}
	r.fib.Apply(*ops)
	r.fibChanges.Add(uint64(len(*ops)))
	*ops = (*ops)[:0]
}

// applyChange pushes one Loc-RIB transition toward the FIB batch and
// into the emission buffers: per-peer (classic mode) or per-group
// (update groups), using the shard's snapshot scratch for the targets.
func (r *Router) applyChange(si int, ch rib.Change, ops *[]fib.Op, s *shard) {
	// Forwarding table: batch the op; the caller commits per batch.
	if ch.New != nil {
		if ch.Old == nil || ch.Old.Attrs.NextHop != ch.New.Attrs.NextHop {
			entry := fib.Entry{NextHop: ch.New.Attrs.NextHop, Port: int(ch.New.Peer.AS) % 16}
			*ops = append(*ops, fib.Op{Prefix: ch.Prefix, Entry: entry})
		}
	} else if ch.Old != nil {
		*ops = append(*ops, fib.Op{Prefix: ch.Prefix, Delete: true})
	}

	if r.cfg.UpdateGroups {
		r.applyChangeGrouped(si, ch, &s.gemit, s.groupScratch)
		return
	}

	// Adj-RIB-Out propagation (this shard's partition of every peer).
	eb := &s.emit
	for _, ps := range s.peerScratch {
		if ch.New != nil {
			// Do not advertise a route back to the peer it came from.
			if ps.info.Addr == ch.New.Peer.Addr {
				// If we previously advertised another route for this prefix
				// to that peer, withdraw it.
				if ps.adjOut[si].Withdraw(ch.Prefix) {
					eb.add(ps, ch.Prefix, nil)
				}
				continue
			}
			attrs, ok := r.exportAttrs(si, ps, ch.Prefix, *ch.New)
			if !ok {
				if ps.adjOut[si].Withdraw(ch.Prefix) {
					eb.add(ps, ch.Prefix, nil)
				}
				continue
			}
			if ps.adjOut[si].Advertise(ch.Prefix, attrs) {
				eb.add(ps, ch.Prefix, attrs)
			}
		} else {
			if ps.adjOut[si].Withdraw(ch.Prefix) {
				eb.add(ps, ch.Prefix, nil)
			}
		}
	}
}

// emitItem is one queued route change toward a peer; attrs == nil means
// withdraw.
type emitItem struct {
	prefix netaddr.Prefix
	attrs  *wire.PathAttrs
}

// emitPeer accumulates one peer's route changes across a work batch, in
// decision order.
type emitPeer struct {
	ps    *peerState
	items []emitItem
}

// emitBuf collects per-peer emissions across one work batch so each
// peer's outbound changes flush once at batch end instead of one queue
// push (or one MRAI lock take) per change. Slots and their item buffers
// are reused across batches; peers[:n] are active.
type emitBuf struct {
	peers []emitPeer
	n     int
}

// add appends a change for ps. The linear scan is over the handful of
// peers touched this batch, which is small in every benchmark topology.
func (b *emitBuf) add(ps *peerState, p netaddr.Prefix, attrs *wire.PathAttrs) {
	for i := 0; i < b.n; i++ {
		if b.peers[i].ps == ps {
			b.peers[i].items = append(b.peers[i].items, emitItem{prefix: p, attrs: attrs})
			return
		}
	}
	if b.n < len(b.peers) {
		ep := &b.peers[b.n]
		ep.ps = ps
		ep.items = append(ep.items[:0], emitItem{prefix: p, attrs: attrs})
	} else {
		b.peers = append(b.peers, emitPeer{ps: ps, items: []emitItem{{prefix: p, attrs: attrs}}})
	}
	b.n++
}

// flushEmits drains the batch's accumulated emissions. With MRAI enabled
// each peer's items merge into its pending set under a single lock take;
// otherwise consecutive runs pack into few UPDATEs while preserving the
// exact per-prefix transition order the per-change path would have
// produced.
func (r *Router) flushEmits(si int, eb *emitBuf) {
	for i := 0; i < eb.n; i++ {
		ep := &eb.peers[i]
		if r.cfg.MRAI > 0 {
			sh := &ep.ps.pending[si]
			sh.mu.Lock()
			if sh.m == nil {
				sh.m = make(map[netaddr.Prefix]*wire.PathAttrs)
			}
			for _, it := range ep.items {
				sh.m[it.prefix] = it.attrs
			}
			sh.mu.Unlock()
		} else {
			pushEmitRuns(ep.ps, ep.items, r.cfg.ExportBatch)
		}
		ep.ps = nil
		ep.items = ep.items[:0]
	}
	eb.n = 0
}

// pushEmitRuns packs a peer's ordered emissions into UPDATEs: a run of
// consecutive withdrawals shares one message, a run of consecutive
// announcements with the same interned attribute block shares one
// message, both chunked at the export batch limit. Packing never
// reorders or coalesces across a run boundary, so the peer observes the
// same per-prefix transition sequence as with one UPDATE per change.
func pushEmitRuns(ps *peerState, items []emitItem, limit int) {
	for i := 0; i < len(items); {
		j := i + 1
		if items[i].attrs == nil {
			for j < len(items) && items[j].attrs == nil && j-i < limit {
				j++
			}
			w := make([]netaddr.Prefix, j-i)
			for k := i; k < j; k++ {
				w[k-i] = items[k].prefix
			}
			ps.out.push(wire.Update{Withdrawn: w})
		} else {
			for j < len(items) && items[j].attrs == items[i].attrs && j-i < limit {
				j++
			}
			n := make([]netaddr.Prefix, j-i)
			for k := i; k < j; k++ {
				n[k-i] = items[k].prefix
			}
			ps.out.push(wire.Update{Attrs: *items[i].attrs, NLRI: n})
		}
		i = j
	}
}

// mraiFlusher drains a peer's pending sets every MRAI, packing
// withdrawals together and grouping announcements that share an attribute
// block.
func (r *Router) mraiFlusher(ps *peerState) {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.MRAI)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.flushPending(ps)
		}
	}
}

func (r *Router) flushPending(ps *peerState) {
	var withdrawn []netaddr.Prefix
	// Attrs are interned: the canonical pointer is the grouping key, so no
	// per-route marshal is needed to coalesce shared attribute blocks.
	groups := make(map[*wire.PathAttrs]*wire.Update)
	var order []*wire.PathAttrs
	for i := range ps.pending {
		sh := &ps.pending[i]
		sh.mu.Lock()
		pending := sh.m
		sh.m = nil
		sh.mu.Unlock()
		for p, attrs := range pending {
			if attrs == nil {
				withdrawn = append(withdrawn, p)
				continue
			}
			g := groups[attrs]
			if g == nil {
				g = &wire.Update{Attrs: *attrs}
				groups[attrs] = g
				order = append(order, attrs)
			}
			g.NLRI = append(g.NLRI, p)
		}
	}
	// Withdrawals ride in one UPDATE (chunked to the batch limit).
	for i := 0; i < len(withdrawn); i += r.cfg.ExportBatch {
		j := i + r.cfg.ExportBatch
		if j > len(withdrawn) {
			j = len(withdrawn)
		}
		ps.out.push(wire.Update{Withdrawn: withdrawn[i:j]})
	}
	for _, key := range order {
		g := groups[key]
		for i := 0; i < len(g.NLRI); i += r.cfg.ExportBatch {
			j := i + r.cfg.ExportBatch
			if j > len(g.NLRI) {
				j = len(g.NLRI)
			}
			ps.out.push(wire.Update{Attrs: g.Attrs, NLRI: g.NLRI[i:j]})
		}
	}
}

// exportAttrs applies export policy and standard eBGP transformations
// (own-AS prepend, next-hop-self) for a route toward a peer, returning an
// interned canonical pointer. When the peer has no export policy the
// transform is memoized per (input attrs, source session type), so the
// per-prefix clone+prepend collapses into a map hit after first sight.
func (r *Router) exportAttrs(si int, ps *peerState, p netaddr.Prefix, c rib.Candidate) (*wire.PathAttrs, bool) {
	// Never export a family the session did not negotiate.
	if !ps.afis[p.Family()] {
		return nil, false
	}
	// iBGP split-horizon: do not re-advertise iBGP routes to iBGP peers.
	if !c.Peer.EBGP && !ps.info.EBGP {
		return nil, false
	}
	cacheable := ps.cfg.Export == nil
	key := exportKey{attrs: c.Attrs, srcEBGP: c.Peer.EBGP}
	if cacheable {
		if out, ok := ps.exportCache[si][key]; ok {
			return out, true
		}
	}
	attrs, ok := ps.cfg.Export.Apply(p, *c.Attrs)
	if !ok {
		return nil, false
	}
	var out *wire.PathAttrs
	if ps.info.EBGP {
		a := attrs.Clone()
		a.ASPath = a.ASPath.Prepend(r.cfg.AS)
		a.NextHop, a.HasNextHop = r.nextHopSelf(a), true
		// LOCAL_PREF is not sent on eBGP sessions.
		a.HasLocalPref, a.LocalPref = false, 0
		out = r.interner.Intern(a)
	} else {
		out = r.interner.Intern(attrs)
	}
	if cacheable {
		ps.exportCache[si][key] = out
	}
	return out, true
}

// nextHopSelf picks the next-hop-self address matching the route's
// family: a v6 route keeps a v6 next hop (it rides MP_REACH_NLRI on the
// wire), everything else gets the classic v4 next hop. The route family
// is read from the incoming next hop, which matches the NLRI family on
// every path the router builds.
func (r *Router) nextHopSelf(a wire.PathAttrs) netaddr.Addr {
	if a.HasNextHop && a.NextHop.Is6() {
		return r.cfg.NextHop6
	}
	return r.cfg.NextHop
}

// outMsg is one queued outbound transmission: a message to marshal, or
// a shared pre-marshaled payload reference (update-group fan-out).
type outMsg struct {
	m      wire.Message
	shared *session.SharedPayload
}

// outQueue is an unbounded FIFO of outbound items with close semantics.
// It decouples the decision workers from slow peers so back-pressure on
// one session cannot deadlock route propagation. Every path that drops a
// queued item instead of delivering it releases the item's shared
// payload reference, keeping the fan-out refcounts balanced.
type outQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []outMsg
	closed bool
}

func newOutQueue() *outQueue {
	q := &outQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *outQueue) push(m wire.Message) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, outMsg{m: m})
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// pushShared queues one shared payload reference; ownership transfers to
// the queue, which releases it if the queue is already closed.
func (q *outQueue) pushShared(p *session.SharedPayload) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		p.Release()
		return
	}
	q.items = append(q.items, outMsg{shared: p})
	q.cond.Signal()
	q.mu.Unlock()
}

// take blocks for the next batch of items; ok=false after close.
func (q *outQueue) take() ([]outMsg, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	items := q.items
	q.items = nil
	return items, true
}

// close marks the queue closed and drops anything still queued (the
// session is gone), releasing queued shared payload references.
func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	items := q.items
	q.items = nil
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, it := range items {
		if it.shared != nil {
			it.shared.Release()
		}
	}
}
