package core

import (
	"testing"
	"time"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/wire"
)

// The router tests drive a live Router through loopback TCP sessions using
// raw session-level speakers from the speaker package would create an
// import cycle, so a minimal in-package harness lives in testhelp_test.go.

func testRouterConfig(neighbors ...NeighborConfig) Config {
	return Config{
		AS:         65000,
		ID:         netaddr.MustParseAddr("10.255.0.1"),
		HoldTime:   90,
		ListenAddr: "127.0.0.1:0",
		Neighbors:  neighbors,
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{ID: netaddr.MustParseAddr("1.1.1.1")}); err == nil {
		t.Error("zero AS accepted")
	}
	if _, err := NewRouter(Config{AS: 1}); err == nil {
		t.Error("zero ID accepted")
	}
	if _, err := NewRouter(Config{AS: 1, ID: netaddr.AddrFromV4(1), FIBEngine: "bogus"}); err == nil {
		t.Error("bogus FIB engine accepted")
	}
}

func TestRouterLearnsAndInstallsRoutes(t *testing.T) {
	r := mustStartRouter(t, testRouterConfig(
		NeighborConfig{AS: 65001},
	))
	defer r.Stop()

	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	routes := GenerateTable(TableGenConfig{N: 200, Seed: 1, FirstAS: 65001})
	sp.announce(t, routes, 50)

	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 200 })
	if got := r.Transactions(); got != 200 {
		t.Errorf("transactions = %d, want 200", got)
	}

	// Spot-check a FIB entry resolves to the speaker's next hop.
	e, ok := r.FIB().Lookup(routes[0].Prefix.Addr())
	if !ok || e.NextHop != netaddr.MustParseAddr("1.1.1.1") {
		t.Errorf("FIB lookup = %+v, %v", e, ok)
	}
}

func TestRouterWithdrawals(t *testing.T) {
	r := mustStartRouter(t, testRouterConfig(NeighborConfig{AS: 65001}))
	defer r.Stop()
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	routes := GenerateTable(TableGenConfig{N: 100, Seed: 2, FirstAS: 65001})
	sp.announce(t, routes, 100)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 100 })

	sp.withdraw(t, routes, 100)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 0 })
	if got := r.Transactions(); got != 200 {
		t.Errorf("transactions = %d, want 200 (100 announce + 100 withdraw)", got)
	}
}

func TestRouterPhase2Propagation(t *testing.T) {
	// Speaker 1 fills the router, then Speaker 2 connects and must receive
	// the full table (the benchmark's Phase 2).
	r := mustStartRouter(t, testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65002},
	))
	defer r.Stop()

	sp1 := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp1.stop()
	routes := GenerateTable(TableGenConfig{N: 300, Seed: 3, FirstAS: 65001})
	sp1.announce(t, routes, 100)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 300 })

	sp2 := dialSpeaker(t, r, 65002, "2.2.2.2")
	defer sp2.stop()
	waitFor(t, 10*time.Second, func() bool { return sp2.prefixesIn.Load() == 300 })

	// Exported paths must carry the router's AS prepended and the
	// router's next hop.
	sp2.mu.Lock()
	u := sp2.sampleUpdate
	sp2.mu.Unlock()
	if f, _ := u.Attrs.ASPath.First(); f != 65000 {
		t.Errorf("exported first AS = %d, want 65000", f)
	}
	if u.Attrs.NextHop != r.cfg.NextHop {
		t.Errorf("exported next hop = %v, want %v", u.Attrs.NextHop, r.cfg.NextHop)
	}
}

func TestRouterIncrementalBestPathReplacement(t *testing.T) {
	// Scenario 7/8 shape: Speaker 2 announces the same prefixes with a
	// shorter path; the router must replace best routes and re-advertise
	// to Speaker 1... but not back to Speaker 2.
	r := mustStartRouter(t, testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65002},
	))
	defer r.Stop()

	sp1 := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp1.stop()
	routes := GenerateTable(TableGenConfig{N: 100, Seed: 4, FirstAS: 65001, MinPathLen: 3, MaxPathLen: 3})
	sp1.announce(t, routes, 100)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 100 })

	sp2 := dialSpeaker(t, r, 65002, "2.2.2.2")
	defer sp2.stop()
	waitFor(t, 5*time.Second, func() bool { return sp2.prefixesIn.Load() == 100 })

	base := r.FIBChanges()
	shorter := make([]Route, len(routes))
	for i, rt := range routes {
		shorter[i] = Shorten(rt, 65002)
	}
	sp2.announce(t, shorter, 100)

	// The replacement changes next hops, so FIB changes must grow by 100.
	waitFor(t, 5*time.Second, func() bool { return r.FIBChanges() >= base+100 })
	for _, rt := range routes[:10] {
		e, ok := r.FIB().Lookup(rt.Prefix.Addr())
		if !ok || e.NextHop != netaddr.MustParseAddr("2.2.2.2") {
			t.Fatalf("FIB not switched to speaker 2: %+v %v", e, ok)
		}
	}
	// Speaker 1 receives the replacement announcements.
	waitFor(t, 5*time.Second, func() bool { return sp1.prefixesIn.Load() >= 100 })
}

func TestRouterIncrementalLongerPathNoFIBChange(t *testing.T) {
	// Scenario 5/6 shape: longer-path announcements must not alter the
	// forwarding table.
	r := mustStartRouter(t, testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65002},
	))
	defer r.Stop()

	sp1 := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp1.stop()
	routes := GenerateTable(TableGenConfig{N: 100, Seed: 5, FirstAS: 65001, MinPathLen: 3, MaxPathLen: 3})
	sp1.announce(t, routes, 100)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 100 })
	sp2 := dialSpeaker(t, r, 65002, "2.2.2.2")
	defer sp2.stop()
	waitFor(t, 5*time.Second, func() bool { return sp2.prefixesIn.Load() == 100 })

	base := r.FIBChanges()
	baseTx := r.Transactions()
	longer := make([]Route, len(routes))
	for i, rt := range routes {
		longer[i] = Lengthen(rt, 65002, 2, 99)
	}
	sp2.announce(t, longer, 100)

	// All 100 must be processed as transactions...
	waitFor(t, 5*time.Second, func() bool { return r.Transactions() >= baseTx+100 })
	// ...but the FIB must not change.
	if got := r.FIBChanges(); got != base {
		t.Errorf("FIB changes grew by %d, want 0", got-base)
	}
	for _, rt := range routes[:10] {
		e, _ := r.FIB().Lookup(rt.Prefix.Addr())
		if e.NextHop != netaddr.MustParseAddr("1.1.1.1") {
			t.Fatalf("FIB switched despite longer path")
		}
	}
}

func TestRouterPeerDownWithdrawsRoutes(t *testing.T) {
	r := mustStartRouter(t, testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65002},
	))
	defer r.Stop()

	sp1 := dialSpeaker(t, r, 65001, "1.1.1.1")
	routes := GenerateTable(TableGenConfig{N: 80, Seed: 6, FirstAS: 65001})
	sp1.announce(t, routes, 80)
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 80 })

	sp2 := dialSpeaker(t, r, 65002, "2.2.2.2")
	defer sp2.stop()
	waitFor(t, 5*time.Second, func() bool { return sp2.prefixesIn.Load() == 80 })

	sp1.stop()
	waitFor(t, 5*time.Second, func() bool { return r.FIB().Len() == 0 })
	waitFor(t, 5*time.Second, func() bool { return sp2.withdrawsIn.Load() == 80 })
}

func TestRouterImportPolicyFilters(t *testing.T) {
	deny := &policy.RouteMap{
		Name: "deny-10/8",
		Terms: []policy.Term{
			{
				Match: policy.Match{PrefixList: &policy.PrefixList{Rules: []policy.PrefixRule{
					{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), GE: 8, LE: 32, Action: policy.Permit},
				}}},
				Action: policy.Deny,
			},
		},
		DefaultPermit: true,
	}
	r := mustStartRouter(t, testRouterConfig(NeighborConfig{AS: 65001, Import: deny}))
	defer r.Stop()
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	routes := []Route{
		{Prefix: netaddr.MustParsePrefix("10.1.0.0/16"), Path: wire.NewASPath(65001, 1)},
		{Prefix: netaddr.MustParsePrefix("172.16.0.0/16"), Path: wire.NewASPath(65001, 2)},
		{Prefix: netaddr.MustParsePrefix("192.168.0.0/16"), Path: wire.NewASPath(65001, 3)},
	}
	sp.announce(t, routes, 1)
	waitFor(t, 5*time.Second, func() bool { return r.Transactions() == 3 })
	if got := r.FIB().Len(); got != 2 {
		t.Errorf("FIB len = %d, want 2 (10/8 filtered)", got)
	}
	if _, ok := r.FIB().Lookup(netaddr.MustParseAddr("10.1.2.3")); ok {
		t.Error("filtered prefix present in FIB")
	}
}

func TestRouterLoopDetection(t *testing.T) {
	r := mustStartRouter(t, testRouterConfig(NeighborConfig{AS: 65001}))
	defer r.Stop()
	sp := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer sp.stop()

	// A path containing the router's own AS (65000) must be rejected.
	looped := []Route{{
		Prefix: netaddr.MustParsePrefix("10.0.0.0/8"),
		Path:   wire.NewASPath(65001, 65000, 2),
	}}
	sp.announce(t, looped, 1)
	waitFor(t, 5*time.Second, func() bool { return r.Transactions() == 1 })
	if r.FIB().Len() != 0 {
		t.Error("looped route installed")
	}
}

func TestRouterRejectsUnknownAS(t *testing.T) {
	r := mustStartRouter(t, testRouterConfig(NeighborConfig{AS: 65001}))
	defer r.Stop()

	sp, err := tryDialSpeaker(r, 65077, "7.7.7.7")
	if err == nil {
		defer sp.stop()
		// Session may establish briefly before the router stops it; wait
		// for the teardown.
		waitFor(t, 5*time.Second, func() bool { return !sp.sess.Established() })
	}
}
