package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// TestRouterManyPeersConcurrentChurn subjects the router to four peers
// announcing and withdrawing overlapping prefixes concurrently, then
// verifies convergence: the FIB must exactly reflect the surviving best
// routes.
func TestRouterManyPeersConcurrentChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const peers = 4
	var neighbors []NeighborConfig
	for i := 0; i < peers; i++ {
		neighbors = append(neighbors, NeighborConfig{AS: uint32(65001 + i)})
	}
	r := mustStartRouter(t, testRouterConfig(neighbors...))
	defer r.Stop()

	sps := make([]*testSpeaker, peers)
	for i := range sps {
		sps[i] = dialSpeaker(t, r, uint32(65001+i), fmt.Sprintf("1.1.1.%d", i+1))
		defer sps[i].stop()
	}

	// Shared prefix universe: every peer announces all prefixes with a
	// path whose length encodes its priority, then half the peers
	// withdraw. Peer 0 has the shortest paths and must win everything it
	// keeps.
	const nPrefixes = 300
	prefixes := make([]netaddr.Prefix, nPrefixes)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFrom(netaddr.AddrFromV4(0x30000000+uint32(i)<<12), 20)
	}

	var wg sync.WaitGroup
	expectedTx := uint64(0)
	var txMu sync.Mutex
	for pi, sp := range sps {
		wg.Add(1)
		go func(pi int, sp *testSpeaker) {
			defer wg.Done()
			asns := make([]uint32, pi+1)
			for j := range asns {
				asns[j] = uint32(65001 + pi)
				if j > 0 {
					asns[j] = uint32(1000 + 100*pi + j)
				}
			}
			routes := make([]Route, nPrefixes)
			for i, p := range prefixes {
				routes[i] = Route{Prefix: p, Path: wire.NewASPath(asns...)}
			}
			sp.announce(t, routes, 50)
			n := uint64(nPrefixes)
			// Odd peers withdraw everything again.
			if pi%2 == 1 {
				sp.withdraw(t, routes, 50)
				n += nPrefixes
			}
			txMu.Lock()
			expectedTx += n
			txMu.Unlock()
		}(pi, sp)
	}
	wg.Wait()

	deadline := time.Now().Add(20 * time.Second)
	for r.Transactions() < uint64(peers)*nPrefixes {
		if time.Now().After(deadline) {
			t.Fatalf("transactions stalled at %d", r.Transactions())
		}
		time.Sleep(time.Millisecond)
	}
	txMu.Lock()
	want := expectedTx
	txMu.Unlock()
	waitFor(t, 20*time.Second, func() bool { return r.Transactions() >= want })

	// Every prefix must resolve via peer 0 (shortest path, still present).
	waitFor(t, 10*time.Second, func() bool { return r.FIB().Len() == nPrefixes })
	for _, p := range prefixes[:20] {
		e, ok := r.FIB().Lookup(p.Addr())
		if !ok || e.NextHop != netaddr.MustParseAddr("1.1.1.1") {
			t.Fatalf("prefix %v: best = %+v, %v; want via 1.1.1.1", p, e, ok)
		}
	}
}

// TestRouterSurvivesPeerFlapStorm churns session state itself: a speaker
// connects, fills the table, and disconnects, repeatedly. The router must
// end clean (empty FIB) with no goroutine wedge.
func TestRouterSurvivesPeerFlapStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := mustStartRouter(t, testRouterConfig(NeighborConfig{AS: 65001}))
	defer r.Stop()

	routes := GenerateTable(TableGenConfig{N: 200, Seed: 13, FirstAS: 65001})
	for round := 0; round < 5; round++ {
		sp := dialSpeaker(t, r, 65001, "1.1.1.1")
		sp.announce(t, routes, 100)
		waitFor(t, 10*time.Second, func() bool { return r.FIB().Len() == 200 })
		sp.stop()
		waitFor(t, 10*time.Second, func() bool { return r.FIB().Len() == 0 })
	}
	if r.Transactions() < 5*2*200 {
		t.Fatalf("transactions = %d, want >= %d", r.Transactions(), 5*2*200)
	}
}
