package core

import (
	"fmt"
	"testing"
	"time"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/rib"
	"bgpbench/internal/wire"
)

// benchPeer registers a hand-built established peer on the router,
// bypassing the TCP session machinery so benchmarks measure only the
// dispatch and decision paths. Must run before any work is enqueued.
func benchPeer(r *Router, id netaddr.Addr, as uint32) *peerState {
	ps := &peerState{
		info:        rib.PeerInfo{Addr: id, ID: id, AS: as, EBGP: true},
		afis:        [2]bool{true, true},
		cfg:         NeighborConfig{AS: as},
		out:         newOutQueue(),
		adjOut:      make([]*rib.AdjOut, r.nshards),
		exportCache: make([]map[exportKey]*wire.PathAttrs, r.nshards),
		pending:     make([]pendingShard, r.nshards),
	}
	for i := range ps.adjOut {
		ps.adjOut[i] = rib.NewAdjOut()
		ps.exportCache[i] = make(map[exportKey]*wire.PathAttrs)
	}
	ps.downLeft.Store(int32(r.nshards))
	r.mu.Lock()
	r.peers[id] = ps
	r.mu.Unlock()
	for i := 0; i < r.nshards; i++ {
		r.rib.Shard(i).AddPeer(ps.info)
	}
	return ps
}

// benchUpdates builds a ring of single-prefix UPDATEs sharing one
// attribute block — the paper's small-packet worst case for dispatch.
func benchUpdates(n int, srcID netaddr.Addr, as uint32) []wire.Update {
	table := UniformPath(
		GenerateTable(TableGenConfig{N: n, Seed: 42, FirstAS: as}),
		wire.NewASPath(as, 100, 101, 102),
	)
	return Updates(table, srcID, 1)
}

// waitTxB spins until the router has processed target transactions.
func waitTxB(b *testing.B, r *Router, target uint64) {
	b.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for r.Transactions() < target {
		if time.Now().After(deadline) {
			b.Fatalf("stalled at %d/%d transactions", r.Transactions(), target)
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// BenchmarkDispatchUpdate measures the session→shard hot path end to
// end — dispatch (per message or per batch) plus shard-worker decision
// processing — for single-prefix UPDATEs across shard counts, with
// batching off and on.
func BenchmarkDispatchUpdate(b *testing.B) {
	peerID := netaddr.MustParseAddr("1.1.1.1")
	for _, shards := range []int{1, 4} {
		for _, batch := range []int{-1, 256} {
			mode := "batched"
			if batch < 0 {
				mode = "permsg"
			}
			b.Run(fmt.Sprintf("shards=%d/%s", shards, mode), func(b *testing.B) {
				r, err := NewRouter(Config{
					AS:              65000,
					ID:              netaddr.MustParseAddr("10.255.0.1"),
					Shards:          shards,
					BatchMaxUpdates: batch,
					Neighbors:       []NeighborConfig{{AS: 65001}},
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Start(); err != nil {
					b.Fatal(err)
				}
				defer r.Stop()
				benchPeer(r, peerID, 65001)
				upds := benchUpdates(8192, peerID, 65001)
				h := &routerHandler{r: r}
				base := r.Transactions()

				b.ReportAllocs()
				b.ResetTimer()
				if batch < 0 {
					for i := 0; i < b.N; i++ {
						r.dispatchUpdate(peerID, upds[i%len(upds)])
					}
				} else {
					for sent := 0; sent < b.N; {
						lo := sent % len(upds)
						hi := lo + batch
						if hi > len(upds) {
							hi = len(upds)
						}
						if hi-lo > b.N-sent {
							hi = lo + b.N - sent
						}
						r.dispatchUpdateBatch(h, peerID, upds[lo:hi])
						sent += hi - lo
					}
				}
				waitTxB(b, r, base+uint64(b.N))
			})
		}
	}
}

// BenchmarkProcessUpdate measures the shard worker's decision-process
// core in isolation: processUpdateBatch called synchronously (no
// workers, no channels) over single-prefix sub-updates.
func BenchmarkProcessUpdate(b *testing.B) {
	peerID := netaddr.MustParseAddr("1.1.1.1")
	for _, batch := range []int{1, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			r, err := NewRouter(Config{
				AS:        65000,
				ID:        netaddr.MustParseAddr("10.255.0.1"),
				Shards:    1,
				Neighbors: []NeighborConfig{{AS: 65001}},
			})
			if err != nil {
				b.Fatal(err)
			}
			benchPeer(r, peerID, 65001)
			upds := benchUpdates(8192, peerID, 65001)

			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				lo := done % len(upds)
				hi := lo + batch
				if hi > len(upds) {
					hi = len(upds)
				}
				if hi-lo > b.N-done {
					hi = lo + b.N - done
				}
				r.processUpdateBatch(0, peerID, upds[lo:hi])
				done += hi - lo
			}
		})
	}
}
