package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"bgpbench/internal/fsm"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/rib"
	"bgpbench/internal/session"
	"bgpbench/internal/wire"
)

// medPolicy builds the export policy for test group g: one
// always-matching term setting MED 2000+g. Different g values differ in
// export behavior, so they can never share an update group.
func medPolicy(g int) *policy.RouteMap {
	med := uint32(2000 + g)
	return &policy.RouteMap{
		Name: fmt.Sprintf("test-group-%d", g),
		Terms: []policy.Term{{
			Name:   "set-med",
			Set:    policy.Set{MED: &med},
			Action: policy.Permit,
		}},
	}
}

// recvSpeaker is a receive-only peer that reconstructs its table from
// the wire stream: the decoded routes are the ground truth of what the
// router actually emitted (shared-payload corruption or aliasing would
// surface here as decode failures or wrong attributes).
type recvSpeaker struct {
	sess        *session.Session
	established chan struct{}
	// delay throttles the read loop per UPDATE, so different receivers
	// drain a shared emission run at different rates.
	delay time.Duration

	mu    sync.Mutex
	table map[netaddr.Prefix]string
	// keepLog records every decoded UPDATE (diagnostics for the churn
	// tests' failure paths).
	keepLog bool
	logs    []wire.Update
}

func (s *recvSpeaker) Established(*session.Session) {
	select {
	case s.established <- struct{}{}:
	default:
	}
}

func (s *recvSpeaker) Update(_ *session.Session, u wire.Update) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.keepLog {
		c := wire.Update{
			Withdrawn: append([]netaddr.Prefix(nil), u.Withdrawn...),
			NLRI:      append([]netaddr.Prefix(nil), u.NLRI...),
			Attrs:     u.Attrs,
		}
		s.logs = append(s.logs, c)
	}
	for _, p := range u.Withdrawn {
		delete(s.table, p)
	}
	if len(u.NLRI) > 0 {
		ab := string(wire.MarshalAttrs(u.Attrs))
		for _, p := range u.NLRI {
			s.table[p] = ab
		}
	}
}

func (s *recvSpeaker) Down(*session.Session, error) {}

func (s *recvSpeaker) stop() { s.sess.Stop() }

func (s *recvSpeaker) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.table)
}

// fingerprint renders the received table in sorted prefix order.
func (s *recvSpeaker) fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	prefixes := make([]netaddr.Prefix, 0, len(s.table))
	for p := range s.table {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })
	var b strings.Builder
	for _, p := range prefixes {
		fmt.Fprintf(&b, "%s %x\n", p, s.table[p])
	}
	return b.String()
}

func dialRecv(t *testing.T, r *Router, as uint32, id string, delay time.Duration) *recvSpeaker {
	t.Helper()
	sp := &recvSpeaker{
		established: make(chan struct{}, 1),
		delay:       delay,
		table:       make(map[netaddr.Prefix]string),
	}
	sp.sess = session.New(session.Config{
		FSM: fsm.Config{
			LocalAS:  as,
			LocalID:  netaddr.MustParseAddr(id),
			HoldTime: 90,
		},
		DialTarget: r.ListenAddr(),
		Handler:    sp,
		Name:       fmt.Sprintf("recv-as%d", as),
	})
	sp.sess.Start()
	select {
	case <-sp.established:
	case <-time.After(5 * time.Second):
		sp.sess.Stop()
		t.Fatalf("receiver as%d: timeout waiting for session", as)
	}
	return sp
}

// adjFingerprint renders one peer's Adj-RIB-Out the same way
// recvSpeaker.fingerprint renders the received table, so the router's
// view and the wire-decoded view are directly comparable.
func adjFingerprint(r *Router, id string) string {
	var b strings.Builder
	for _, rt := range r.DumpAdjOut(netaddr.MustParseAddr(id)) {
		fmt.Fprintf(&b, "%s %x\n", rt.Prefix, string(wire.MarshalAttrs(*rt.Attrs)))
	}
	return b.String()
}

// groupTestTable builds the deterministic churn workload.
func groupTestTable(n int) []Route {
	return UniformPath(
		GenerateTable(TableGenConfig{N: n, Seed: 11, FirstAS: 65001}),
		wire.NewASPath(65001, 100, 101),
	)
}

// runJoinMidStream drives the catch-up replay scenario: two receivers
// watch the first half of a table, a third joins mid-stream (its view
// is rebuilt from the group table), then the second half lands. All
// three must converge to identical tables.
func runJoinMidStream(t *testing.T, grouped bool) (recvFP, adjFP string) {
	t.Helper()
	cfg := testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65100, Export: medPolicy(0)},
		NeighborConfig{AS: 65101, Export: medPolicy(0)},
		NeighborConfig{AS: 65102, Export: medPolicy(0)},
	)
	cfg.UpdateGroups = grouped
	cfg.Shards = 4
	r := mustStartRouter(t, cfg)
	defer r.Stop()

	feeder := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer feeder.stop()
	a := dialRecv(t, r, 65100, "10.9.0.1", 0)
	defer a.stop()
	b := dialRecv(t, r, 65101, "10.9.0.2", 0)
	defer b.stop()

	table := groupTestTable(300)
	half := len(table) / 2
	feeder.announce(t, table[:half], 40)
	waitFor(t, 10*time.Second, func() bool { return r.RIBLen() == half })

	// c joins mid-stream: catch-up replay of the first half, then live
	// emission of the second.
	c := dialRecv(t, r, 65102, "10.9.0.3", 0)
	defer c.stop()
	feeder.announce(t, table[half:], 40)

	n := len(table)
	waitFor(t, 10*time.Second, func() bool {
		return r.RIBLen() == n && a.len() == n && b.len() == n && c.len() == n
	})
	fps := []string{a.fingerprint(), b.fingerprint(), c.fingerprint()}
	if fps[0] != fps[1] || fps[0] != fps[2] {
		t.Fatalf("grouped=%v: receivers in one policy group decoded different tables", grouped)
	}
	if got := adjFingerprint(r, "10.9.0.3"); got != fps[2] {
		t.Fatalf("grouped=%v: late joiner's received table differs from its Adj-RIB-Out view", grouped)
	}
	return fps[0], adjFingerprint(r, "10.9.0.1")
}

// TestGroupJoinMidStream proves the grouped catch-up replay equivalent
// to ungrouped emission: a peer joining mid-table-transfer converges to
// the same per-peer table either way, byte for byte.
func TestGroupJoinMidStream(t *testing.T) {
	plainRecv, plainAdj := runJoinMidStream(t, false)
	groupRecv, groupAdj := runJoinMidStream(t, true)
	if plainRecv != groupRecv {
		t.Errorf("received tables differ between grouped and ungrouped emission")
	}
	if plainAdj != groupAdj {
		t.Errorf("Adj-RIB-Out views differ between grouped and ungrouped emission")
	}
}

// runResetMidEmission kills one receiver's session while the emission
// stream is in flight, reconnects it, and requires full convergence:
// the rebuilt session must receive the whole group view again.
func runResetMidEmission(t *testing.T, grouped bool) (recvFP string) {
	t.Helper()
	cfg := testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65100, Export: medPolicy(0)},
		NeighborConfig{AS: 65101, Export: medPolicy(0)},
	)
	cfg.UpdateGroups = grouped
	cfg.Shards = 4
	r := mustStartRouter(t, cfg)
	defer r.Stop()

	feeder := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer feeder.stop()
	a := dialRecv(t, r, 65100, "10.9.0.1", 0)
	defer a.stop()
	b := dialRecv(t, r, 65101, "10.9.0.2", 0)

	table := groupTestTable(300)
	half := len(table) / 2
	feeder.announce(t, table[:half], 40)
	// No settling: tear b down while the first half is still emitting,
	// then keep announcing into the gap.
	b.stop()
	feeder.announce(t, table[half:], 40)

	b2 := dialRecv(t, r, 65101, "10.9.0.2", 0)
	defer b2.stop()

	n := len(table)
	waitFor(t, 10*time.Second, func() bool {
		return r.RIBLen() == n && a.len() == n && b2.len() == n
	})
	if a.fingerprint() != b2.fingerprint() {
		t.Fatalf("grouped=%v: reconnected receiver decoded a different table than its groupmate", grouped)
	}
	return a.fingerprint()
}

// TestGroupSessionResetMidEmission proves grouped emission handles a
// session reset mid-run equivalently to the per-peer path.
func TestGroupSessionResetMidEmission(t *testing.T) {
	plain := runResetMidEmission(t, false)
	groupedFP := runResetMidEmission(t, true)
	if plain != groupedFP {
		t.Errorf("received tables differ between grouped and ungrouped emission after a reset")
	}
}

// runPolicyMove reconfigures one receiver's export policy and bounces
// its session: the peer must leave its old update group and join the
// other one, after which its stream matches its new groupmates'.
func runPolicyMove(t *testing.T, grouped bool) (recvFP string) {
	t.Helper()
	cfg := testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65100, Export: medPolicy(0)},
		NeighborConfig{AS: 65101, Export: medPolicy(1)},
		NeighborConfig{AS: 65102, Export: medPolicy(0)},
	)
	cfg.UpdateGroups = grouped
	cfg.Shards = 4
	r := mustStartRouter(t, cfg)
	defer r.Stop()

	feeder := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer feeder.stop()
	a := dialRecv(t, r, 65100, "10.9.0.1", 0)
	defer a.stop()
	b := dialRecv(t, r, 65101, "10.9.0.2", 0)
	defer b.stop()
	c := dialRecv(t, r, 65102, "10.9.0.3", 0)

	table := groupTestTable(300)
	n := len(table)
	feeder.announce(t, table, 40)
	waitFor(t, 10*time.Second, func() bool {
		return r.RIBLen() == n && a.len() == n && b.len() == n && c.len() == n
	})
	if c.fingerprint() != a.fingerprint() {
		t.Fatalf("grouped=%v: groupmates a and c disagree before the move", grouped)
	}
	if c.fingerprint() == b.fingerprint() {
		t.Fatalf("grouped=%v: different policy groups produced identical streams", grouped)
	}

	// Move c from policy group 0 to group 1. Neighbor reconfiguration
	// applies at session establishment, so bounce the session.
	r.UpdateNeighbor(NeighborConfig{AS: 65102, Export: medPolicy(1)})
	c.stop()
	c2 := dialRecv(t, r, 65102, "10.9.0.3", 0)
	defer c2.stop()
	waitFor(t, 10*time.Second, func() bool { return c2.len() == n })

	if c2.fingerprint() != b.fingerprint() {
		t.Fatalf("grouped=%v: moved peer's stream does not match its new group", grouped)
	}
	if c2.fingerprint() == a.fingerprint() {
		t.Fatalf("grouped=%v: moved peer still carries its old group's stream", grouped)
	}
	if grouped {
		if gs := r.GroupStats(); gs.Groups != 3 {
			t.Errorf("GroupStats.Groups = %d, want 3 (feeder + two policy groups)", gs.Groups)
		}
	}
	return c2.fingerprint()
}

// TestGroupPolicyKeyChange proves a policy-key change moving a peer
// between update groups is equivalent to the ungrouped path.
func TestGroupPolicyKeyChange(t *testing.T) {
	plain := runPolicyMove(t, false)
	groupedFP := runPolicyMove(t, true)
	if plain != groupedFP {
		t.Errorf("received tables differ between grouped and ungrouped emission after a policy move")
	}
}

// TestGroupStressChurnAliasing is the shared-buffer aliasing hunt, run
// under the race detector by the CI race gate: 64 grouped receivers
// draining a churn stream at eight different rates while the writer
// announces and withdraws flat out. Shared emission payloads are
// refcounted across all of them; a buffer recycled while any session
// still holds it would corrupt framing (killing that session) or
// attribute bytes (diverging the decoded fingerprints below).
func TestGroupStressChurnAliasing(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const peers = 64
	const groups = 4
	neighbors := []NeighborConfig{{AS: 65001}}
	for i := 0; i < peers; i++ {
		neighbors = append(neighbors, NeighborConfig{
			AS:     uint32(65100 + i),
			Export: medPolicy(i % groups),
		})
	}
	cfg := testRouterConfig(neighbors...)
	cfg.UpdateGroups = true
	cfg.Shards = 4
	r := mustStartRouter(t, cfg)
	defer r.Stop()

	feeder := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer feeder.stop()
	recvs := make([]*recvSpeaker, peers)
	for i := range recvs {
		// Eight distinct drain rates: every shared payload is still
		// referenced by slow readers while fast ones have moved on.
		delay := time.Duration(i%8) * 100 * time.Microsecond
		recvs[i] = dialRecv(t, r, uint32(65100+i), fmt.Sprintf("10.9.%d.%d", i/200, i%200+1), delay)
		recvs[i].mu.Lock()
		recvs[i].keepLog = true
		recvs[i].mu.Unlock()
		defer recvs[i].stop()
	}

	table := groupTestTable(150)
	n := len(table)
	for round := 0; round < 3; round++ {
		feeder.announce(t, table, 30)
		feeder.withdraw(t, table[:n/2], 30)
	}
	feeder.announce(t, table, 30)

	// Quiescence sentinels (see sentinelRoutes): the count check below
	// samples receivers at different instants, so a lagging reader's
	// transient round-k full table — byte-identical to the converged
	// state under this uniform churn — can satisfy it while its final
	// withdraw/re-announce tail is still in flight.
	markers := sentinelRoutes(table, cfg.Shards)
	feeder.announce(t, markers, 30)
	total := n + len(markers)

	waitFor(t, 30*time.Second, func() bool {
		if r.RIBLen() != total {
			return false
		}
		for _, rc := range recvs {
			if rc.len() != total {
				return false
			}
		}
		return true
	})

	// Convergence content check: receivers agree within a group, the
	// router's Adj-RIB-Out view matches the decoded wire view, and the
	// grouped path actually fanned out.
	want := make([]string, groups)
	for g := range want {
		want[g] = recvs[g].fingerprint()
	}
	for i, rc := range recvs {
		if got := rc.fingerprint(); got != want[i%groups] {
			t.Fatalf("receiver %d decoded a different table than its group:\n%s",
				i, churnTrace(rc, recvs[i%groups], want[i%groups]))
		}
	}
	if got := adjFingerprint(r, "10.9.0.1"); got != want[0] {
		t.Fatalf("router Adj-RIB-Out view differs from the decoded wire view")
	}
	gs := r.GroupStats()
	if gs.Groups != groups+1 {
		t.Errorf("GroupStats.Groups = %d, want %d (receiver groups + feeder)", gs.Groups, groups+1)
	}
	if gs.FanoutRatio() < 2 {
		t.Errorf("FanoutRatio = %.2f, want >= 2 (runs should fan out to %d members)", gs.FanoutRatio(), peers/groups)
	}
}

// benchGroupPeer registers a hand-built established peer with update-
// group membership, bypassing the TCP session machinery (the grouped
// analogue of benchPeer). Must run before any work is enqueued.
func benchGroupPeer(r *Router, id netaddr.Addr, as uint32, export *policy.RouteMap) *peerState {
	ps := &peerState{
		info:        rib.PeerInfo{Addr: id, ID: id, AS: as, EBGP: true},
		afis:        [2]bool{true, true},
		cfg:         NeighborConfig{AS: as, Export: export},
		out:         newOutQueue(),
		adjOut:      make([]*rib.AdjOut, r.nshards),
		exportCache: make([]map[exportKey]*wire.PathAttrs, r.nshards),
		pending:     make([]pendingShard, r.nshards),
	}
	for i := range ps.adjOut {
		ps.adjOut[i] = rib.NewAdjOut()
		ps.exportCache[i] = make(map[exportKey]*wire.PathAttrs)
	}
	ps.downLeft.Store(int32(r.nshards))
	ps.group = r.groupFor(true, export, false, ps.afis)
	r.mu.Lock()
	r.peers[id] = ps
	r.mu.Unlock()
	for i := 0; i < r.nshards; i++ {
		r.processPeerUpGrouped(i, ps)
	}
	return ps
}

// drainOut empties every receiver's outbound queue, releasing shared
// payload references so pooled marshal buffers recycle as they would on
// a live session's write path.
func drainOut(peers []*peerState) {
	for _, ps := range peers {
		ps.out.mu.Lock()
		items := ps.out.items
		ps.out.items = nil
		ps.out.mu.Unlock()
		for _, m := range items {
			if m.shared != nil {
				m.shared.Release()
			}
		}
	}
}

// BenchmarkEmitGrouped measures the decision+emission core with many
// receivers: one feeder's churn stream processed synchronously on shard
// 0, emitted to 64 receivers in 4 policy groups — grouped emission
// (compute/marshal once per group, fan bytes out) against the per-peer
// path doing the same work 16 times per group.
func BenchmarkEmitGrouped(b *testing.B) {
	const peers = 64
	const groups = 4
	feederID := netaddr.MustParseAddr("1.1.1.1")
	for _, grouped := range []bool{false, true} {
		b.Run(fmt.Sprintf("peers=%d/grouped=%v", peers, grouped), func(b *testing.B) {
			neighbors := []NeighborConfig{{AS: 65001}}
			for i := 0; i < peers; i++ {
				neighbors = append(neighbors, NeighborConfig{
					AS:     uint32(65100 + i),
					Export: medPolicy(i % groups),
				})
			}
			r, err := NewRouter(Config{
				AS:           65000,
				ID:           netaddr.MustParseAddr("10.255.0.1"),
				Shards:       1,
				UpdateGroups: grouped,
				Neighbors:    neighbors,
			})
			if err != nil {
				b.Fatal(err)
			}
			benchPeer(r, feederID, 65001)
			receivers := make([]*peerState, peers)
			for i := range receivers {
				id := netaddr.AddrFrom4(10, 9, byte(i/200), byte(i%200+1))
				if grouped {
					receivers[i] = benchGroupPeer(r, id, uint32(65100+i), medPolicy(i%groups))
				} else {
					receivers[i] = benchPeer(r, id, uint32(65100+i))
					receivers[i].cfg.Export = medPolicy(i % groups)
				}
			}

			// Two alternating attribute variants of the same prefixes, so
			// every processed update changes the best path and emits.
			tableA := groupTestTable(2048)
			tableB := make([]Route, len(tableA))
			for i, rt := range tableA {
				tableB[i] = Lengthen(rt, 65001, 2, 7)
			}
			rings := [2][]wire.Update{
				Updates(tableA, feederID, 1),
				Updates(tableB, feederID, 1),
			}

			b.ReportAllocs()
			b.ResetTimer()
			ring, off := 0, 0
			for done := 0; done < b.N; {
				upds := rings[ring]
				hi := off + 256
				if hi > len(upds) {
					hi = len(upds)
				}
				if hi-off > b.N-done {
					hi = off + b.N - done
				}
				r.processUpdateBatch(0, feederID, upds[off:hi])
				drainOut(receivers)
				done += hi - off
				off = hi
				if off == len(upds) {
					off = 0
					ring = 1 - ring
				}
			}
		})
	}
}
