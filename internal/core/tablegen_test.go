package core

import (
	"testing"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

func TestGenerateTableDeterministic(t *testing.T) {
	a := GenerateTable(TableGenConfig{N: 500, Seed: 42})
	b := GenerateTable(TableGenConfig{N: 500, Seed: 42})
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Prefix != b[i].Prefix || !a[i].Path.Equal(b[i].Path) {
			t.Fatalf("entry %d differs between equal seeds", i)
		}
	}
	c := GenerateTable(TableGenConfig{N: 500, Seed: 43})
	same := 0
	for i := range a {
		if a[i].Prefix == c[i].Prefix {
			same++
		}
	}
	if same == 500 {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestGenerateTableUniquePrefixes(t *testing.T) {
	routes := GenerateTable(TableGenConfig{N: 5000, Seed: 7})
	seen := make(map[netaddr.Prefix]bool, len(routes))
	for _, r := range routes {
		if seen[r.Prefix] {
			t.Fatalf("duplicate prefix %v", r.Prefix)
		}
		seen[r.Prefix] = true
		o1, _, _, _ := r.Prefix.Addr().Octets()
		if o1 == 0 || o1 >= 224 {
			t.Fatalf("prefix %v outside unicast space", r.Prefix)
		}
	}
}

func TestGenerateTablePathBounds(t *testing.T) {
	routes := GenerateTable(TableGenConfig{N: 1000, Seed: 9, MinPathLen: 2, MaxPathLen: 5, FirstAS: 65001})
	for _, r := range routes {
		l := r.Path.Length()
		if l < 2 || l > 5 {
			t.Fatalf("path length %d out of [2,5]", l)
		}
		if f, _ := r.Path.First(); f != 65001 {
			t.Fatalf("first AS %d, want 65001", f)
		}
		// Loop-free.
		seen := map[uint32]bool{}
		for _, seg := range r.Path.Segments {
			for _, a := range seg.ASNs {
				if seen[a] {
					t.Fatalf("AS loop in generated path %v", r.Path)
				}
				seen[a] = true
			}
		}
	}
}

func TestGenerateTableLengthDistribution(t *testing.T) {
	routes := GenerateTable(TableGenConfig{N: 20000, Seed: 3})
	counts := map[int]int{}
	for _, r := range routes {
		counts[r.Prefix.Len()]++
	}
	// /24 should dominate (roughly half).
	if frac := float64(counts[24]) / float64(len(routes)); frac < 0.40 || frac > 0.60 {
		t.Errorf("/24 fraction = %.2f, want ~0.45-0.55", frac)
	}
	// /16 should be the second-largest coarse aggregate.
	if counts[16] == 0 || counts[16] < counts[8] {
		t.Errorf("length histogram implausible: %v", counts)
	}
}

func TestLengthenAddsHops(t *testing.T) {
	r := Route{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Path: wire.NewASPath(100, 200, 300)}
	longer := Lengthen(r, 999, 2, 1)
	if longer.Path.Length() != r.Path.Length()+2 {
		t.Fatalf("length %d, want %d", longer.Path.Length(), r.Path.Length()+2)
	}
	if f, _ := longer.Path.First(); f != 999 {
		t.Fatalf("first AS %d, want 999", f)
	}
	if o, _ := longer.Path.Origin(); o != 300 {
		t.Fatalf("origin AS changed: %d", o)
	}
	if longer.Prefix != r.Prefix {
		t.Fatal("prefix changed")
	}
	// Deterministic.
	again := Lengthen(r, 999, 2, 1)
	if !again.Path.Equal(longer.Path) {
		t.Fatal("Lengthen not deterministic")
	}
}

func TestShortenRemovesHops(t *testing.T) {
	r := Route{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Path: wire.NewASPath(100, 200, 300)}
	shorter := Shorten(r, 999)
	if shorter.Path.Length() != 2 {
		t.Fatalf("length %d, want 2", shorter.Path.Length())
	}
	if f, _ := shorter.Path.First(); f != 999 {
		t.Fatalf("first AS %d", f)
	}
	if o, _ := shorter.Path.Origin(); o != 300 {
		t.Fatalf("origin AS changed: %d", o)
	}
	// Degenerate paths.
	tiny := Shorten(Route{Prefix: r.Prefix, Path: wire.NewASPath(5)}, 999)
	if tiny.Path.Length() != 1 {
		t.Fatalf("tiny length %d", tiny.Path.Length())
	}
}

func TestUpdatesSmallPackets(t *testing.T) {
	routes := GenerateTable(TableGenConfig{N: 50, Seed: 1})
	ups := Updates(routes, netaddr.MustParseAddr("10.0.0.1"), 1)
	if len(ups) != 50 {
		t.Fatalf("updates = %d, want 50", len(ups))
	}
	for i, u := range ups {
		if len(u.NLRI) != 1 || u.NLRI[0] != routes[i].Prefix {
			t.Fatalf("update %d malformed", i)
		}
		if !u.Attrs.HasNextHop || !u.Attrs.HasOrigin {
			t.Fatalf("update %d missing mandatory attrs", i)
		}
	}
}

func TestUpdatesLargePackets(t *testing.T) {
	routes := GenerateTable(TableGenConfig{N: 1200, Seed: 1})
	shared := UniformPath(routes, wire.NewASPath(65001, 70))
	ups := Updates(shared, netaddr.MustParseAddr("10.0.0.1"), 500)
	if len(ups) != 3 {
		t.Fatalf("updates = %d, want 3 (500+500+200)", len(ups))
	}
	total := 0
	for _, u := range ups {
		if len(u.NLRI) > 500 {
			t.Fatalf("update carries %d prefixes", len(u.NLRI))
		}
		total += len(u.NLRI)
		// Every UPDATE must fit in the wire-format limit.
		if _, err := wire.Marshal(u); err != nil {
			t.Fatalf("oversized update: %v", err)
		}
	}
	if total != 1200 {
		t.Fatalf("total prefixes %d", total)
	}
}

func TestUpdatesGroupingRespectsPaths(t *testing.T) {
	routes := []Route{
		{Prefix: netaddr.MustParsePrefix("10.0.0.0/24"), Path: wire.NewASPath(1, 2)},
		{Prefix: netaddr.MustParsePrefix("10.0.1.0/24"), Path: wire.NewASPath(1, 2)},
		{Prefix: netaddr.MustParsePrefix("10.0.2.0/24"), Path: wire.NewASPath(3, 4)},
	}
	ups := Updates(routes, netaddr.MustParseAddr("10.0.0.1"), 500)
	if len(ups) != 2 {
		t.Fatalf("updates = %d, want 2 (path change forces split)", len(ups))
	}
	if len(ups[0].NLRI) != 2 || len(ups[1].NLRI) != 1 {
		t.Fatalf("grouping wrong: %d, %d", len(ups[0].NLRI), len(ups[1].NLRI))
	}
}

func TestWithdrawalsPacking(t *testing.T) {
	routes := GenerateTable(TableGenConfig{N: 1001, Seed: 2})
	ws := Withdrawals(routes, 500)
	if len(ws) != 3 {
		t.Fatalf("withdrawal messages = %d, want 3", len(ws))
	}
	total := 0
	for _, u := range ws {
		if len(u.NLRI) != 0 {
			t.Fatal("withdrawal update carries NLRI")
		}
		total += len(u.Withdrawn)
		if _, err := wire.Marshal(u); err != nil {
			t.Fatalf("oversized withdrawal: %v", err)
		}
	}
	if total != 1001 {
		t.Fatalf("total withdrawn %d", total)
	}
	// Small packets.
	ws = Withdrawals(routes[:5], 1)
	if len(ws) != 5 {
		t.Fatalf("small withdrawals = %d", len(ws))
	}
}
