package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/rib"
	"bgpbench/internal/wire"
)

// runMemberlessRebuild drives the member-less-group rebuild branch: a
// group's only member leaves, the Loc-RIB keeps churning while the
// group has nobody to emit to (its table goes stale), then a member
// joins. The join must discard the stale group state and rebuild the
// view from the live Loc-RIB via the chunked catch-up path — replaying
// the stale Adj-RIB-Out would resurrect withdrawn prefixes.
func runMemberlessRebuild(t *testing.T, grouped bool) string {
	t.Helper()
	cfg := testRouterConfig(
		NeighborConfig{AS: 65001},
		NeighborConfig{AS: 65100, Export: medPolicy(0)},
		NeighborConfig{AS: 65101, Export: medPolicy(0)},
	)
	cfg.UpdateGroups = grouped
	cfg.Shards = 4
	r := mustStartRouter(t, cfg)
	defer r.Stop()

	feeder := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer feeder.stop()
	a := dialRecv(t, r, 65100, "10.9.0.1", 0)

	table := groupTestTable(300)
	half := len(table) / 2
	feeder.announce(t, table[:half], 40)
	waitFor(t, 10*time.Second, func() bool { return r.RIBLen() == half && a.len() == half })

	// The group's only member leaves; wait for the session to tear down
	// so the group is member-less before the table moves on.
	a.stop()
	waitFor(t, 10*time.Second, func() bool { return len(r.PeerIDs()) == 1 })
	feeder.withdraw(t, table[:half/2], 40)
	feeder.announce(t, table[half:], 40)
	n := len(table) - half/2
	waitFor(t, 10*time.Second, func() bool { return r.RIBLen() == n })

	// First member joins the member-less group: its stream must be the
	// current Loc-RIB — none of the half/2 withdrawn prefixes, all of
	// the second half announced while the group was empty.
	b := dialRecv(t, r, 65101, "10.9.0.2", 0)
	defer b.stop()
	waitFor(t, 10*time.Second, func() bool { return b.len() == n })

	fp := b.fingerprint()
	if got := adjFingerprint(r, "10.9.0.2"); got != fp {
		t.Fatalf("grouped=%v: rebuilt member's received table differs from its Adj-RIB-Out view", grouped)
	}
	if grouped {
		gs := r.GroupStats()
		if gs.Rebuilds == 0 {
			t.Errorf("GroupStats.Rebuilds = 0, want > 0 (member-less join must schedule a rebuild)")
		}
		if gs.RebuildChunks == 0 {
			t.Errorf("GroupStats.RebuildChunks = 0, want > 0")
		}
		if h := r.RebuildLatency(); h.Count == 0 {
			t.Errorf("RebuildLatency().Count = 0, want > 0")
		}
	}
	return fp
}

// TestGroupMemberlessRebuild proves the member-less-group rebuild branch
// equivalent to the ungrouped path: a peer joining a group whose table
// went stale while empty converges to the same per-peer table either
// way, byte for byte.
func TestGroupMemberlessRebuild(t *testing.T) {
	plain := runMemberlessRebuild(t, false)
	groupedFP := runMemberlessRebuild(t, true)
	if plain != groupedFP {
		t.Errorf("received tables differ between grouped and ungrouped emission after a member-less rebuild")
	}
}

// sliverPolicy differentiates groups only on a /6 sliver of the v4
// space (MED 3000+g inside the sliver, everything else permitted
// unchanged), so distinct update groups export byte-identical attribute
// blocks for most routes — the regime where the cross-group marshal
// cache shares one payload across groups. Compare medPolicy, which
// differentiates every route.
func sliverPolicy(g int) *policy.RouteMap {
	med := uint32(3000 + g)
	return &policy.RouteMap{
		Name: fmt.Sprintf("sliver-group-%d", g),
		Terms: []policy.Term{{
			Name: "sliver-med",
			Match: policy.Match{PrefixList: &policy.PrefixList{
				Name: fmt.Sprintf("sliver-%d", g),
				Rules: []policy.PrefixRule{{
					Prefix: netaddr.PrefixFrom(netaddr.AddrFrom4(byte(64*g), 0, 0, 0), 6),
					GE:     6,
					Action: policy.Permit,
				}},
			}},
			Set:    policy.Set{MED: &med},
			Action: policy.Permit,
		}},
		DefaultPermit: true,
	}
}

// TestGroupMarshalCacheChurn is the marshal-cache aliasing hunt, run
// under the race detector by the CI race gate: four sliver-policy
// groups share cached payloads across groups (one marshal, refcounts
// fanned out to every group's members) while the writer churns the
// table and receivers bounce mid-stream, driving chunked member replays
// through the same cache concurrently with live emission. A payload
// freed while cached, or cached bytes mutated after insertion, would
// corrupt framing or diverge the decoded fingerprints.
func TestGroupMarshalCacheChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const peers = 16
	const groups = 4
	neighbors := []NeighborConfig{{AS: 65001}}
	for i := 0; i < peers; i++ {
		neighbors = append(neighbors, NeighborConfig{
			AS:     uint32(65100 + i),
			Export: sliverPolicy(i % groups),
		})
	}
	cfg := testRouterConfig(neighbors...)
	cfg.UpdateGroups = true
	cfg.Shards = 4
	r := mustStartRouter(t, cfg)
	defer r.Stop()

	feeder := dialSpeaker(t, r, 65001, "1.1.1.1")
	defer feeder.stop()
	recvs := make([]*recvSpeaker, peers)
	dial := func(i int) *recvSpeaker {
		delay := time.Duration(i%4) * 100 * time.Microsecond
		rc := dialRecv(t, r, uint32(65100+i), fmt.Sprintf("10.9.0.%d", i+1), delay)
		rc.mu.Lock()
		rc.keepLog = true
		rc.mu.Unlock()
		return rc
	}
	for i := range recvs {
		recvs[i] = dial(i)
	}
	defer func() {
		for _, rc := range recvs {
			rc.stop()
		}
	}()

	table := groupTestTable(150)
	n := len(table)
	for round := 0; round < 3; round++ {
		feeder.announce(t, table, 30)
		// Bounce one receiver per group mid-stream: the rejoin replays
		// the group table through the marshal cache while the churn
		// stream populates and evicts it.
		for g := 0; g < groups; g++ {
			i := round*groups%peers + g
			recvs[i].stop()
			recvs[i] = dial(i)
		}
		feeder.withdraw(t, table[:n/2], 30)
	}
	feeder.announce(t, table, 30)

	// Quiescence sentinels (see sentinelRoutes): without them, a table
	// count or even a fingerprint match is transient — every round
	// re-announces identical attribute bytes, so a bounced receiver's
	// post-replay full table is byte-identical to the converged state
	// while its withdraw/re-announce tail is still in flight.
	markers := sentinelRoutes(table, cfg.Shards)
	feeder.announce(t, markers, 30)

	total := n + len(markers)
	waitFor(t, 30*time.Second, func() bool {
		if r.RIBLen() != total {
			return false
		}
		for _, rc := range recvs {
			if rc.len() != total {
				return false
			}
		}
		return true
	})

	// Receivers agree within a group and the router's Adj-RIB-Out view
	// matches the decoded wire view.
	want := make([]string, groups)
	for g := range want {
		want[g] = recvs[g].fingerprint()
	}
	for i, rc := range recvs {
		if rc.fingerprint() != want[i%groups] {
			t.Fatalf("receiver %d decoded a different table than its group:\n%s",
				i, churnTrace(rc, recvs[i%groups], want[i%groups]))
		}
	}
	if got := adjFingerprint(r, "10.9.0.1"); got != want[0] {
		t.Fatalf("router Adj-RIB-Out view differs from the decoded wire view")
	}
	gs := r.GroupStats()
	if gs.CacheHits == 0 {
		t.Errorf("GroupStats.CacheHits = 0, want > 0 (sliver groups must share cached payloads)")
	}
	if gs.BytesMarshaled >= gs.BytesBuilt {
		t.Errorf("BytesMarshaled = %d >= BytesBuilt = %d, want cache to marshal less than it built",
			gs.BytesMarshaled, gs.BytesBuilt)
	}
}

// BenchmarkGroupRebuild measures the chunked first-member rebuild: a
// populated Loc-RIB replayed into a freshly forgotten group table, the
// cost a peer joining a member-less group pays (spread over catch-up
// chunks interleaved with live work in production; drained back-to-back
// here). The 100k variant is the bench-smoke large-table gate.
func BenchmarkGroupRebuild(b *testing.B) {
	feederID := netaddr.MustParseAddr("1.1.1.1")
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("prefixes=%d", n), func(b *testing.B) {
			r, err := NewRouter(Config{
				AS:           65000,
				ID:           netaddr.MustParseAddr("10.255.0.1"),
				Shards:       1,
				UpdateGroups: true,
				Neighbors: []NeighborConfig{
					{AS: 65001},
					{AS: 65100, Export: medPolicy(0)},
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			benchPeer(r, feederID, 65001)
			table := groupTestTable(n)
			r.processUpdateBatch(0, feederID, Updates(table, feederID, 500))

			recv := benchGroupPeer(r, netaddr.AddrFrom4(10, 9, 0, 1), 65100, medPolicy(0))
			s := r.shards[0]
			drain := func() {
				for len(s.catchups) > 0 {
					r.runCatchupChunk(0, s)
				}
				drainOut([]*peerState{recv})
			}
			drain() // the join's own rebuild, outside the timed region
			sh := &recv.group.shards[0]

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Forget the group table so the rebuild re-advertises and
				// re-emits the whole Loc-RIB, as a first-member join does.
				sh.adjOut = rib.NewGroupAdjOut()
				sh.exportCache = make(map[exportKey]*wire.PathAttrs)
				r.scheduleGroupRebuild(0, recv.group)
				drain()
			}
		})
	}
}

// churnTrace explains a diverged receiver: for each fingerprint line
// present in want but absent from rc's table, dump the shard the prefix
// hashes to plus the full announce/withdraw event trail from rc's and
// the reference receiver's decoded message logs. The trails answer the
// question the fingerprint can't: was the final announce never sent,
// reordered behind a withdraw, or decoded with the wrong bytes?
// sentinelRoutes returns one marker route per shard, colliding with
// nothing in table. Announced after a churn stream's final announce,
// the markers provide deterministic quiescence: shard workers process
// the feeder's stream in order and the per-peer out queue is FIFO, so
// a receiver that has decoded every marker has decoded everything
// every shard emitted before them.
func sentinelRoutes(table []Route, shards int) []Route {
	inTable := make(map[netaddr.Prefix]bool, len(table))
	for _, rt := range table {
		inTable[rt.Prefix] = true
	}
	var markers []Route
	covered := map[int]bool{}
	for i := 0; len(markers) < shards; i++ {
		p := netaddr.PrefixFrom(netaddr.AddrFrom4(250, byte(i), 0, 0), 24)
		if s := rib.ShardOf(p, shards); !covered[s] && !inTable[p] {
			covered[s] = true
			markers = append(markers, Route{Prefix: p, Path: wire.NewASPath(65001, 250)})
		}
	}
	return markers
}

func churnTrace(rc, ref *recvSpeaker, want string) string {
	var b strings.Builder
	for _, line := range missingLines(rc, want) {
		p := netaddr.MustParsePrefix(strings.Fields(line)[0])
		fmt.Fprintf(&b, "missing %s shard=%d\n  got:%s\n  ref:%s\n",
			line, rib.ShardOf(p, 4), eventTrail(rc, p), eventTrail(ref, p))
	}
	return b.String()
}

func missingLines(rc *recvSpeaker, want string) []string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	got := map[string]bool{}
	for p, ab := range rc.table {
		got[fmt.Sprintf("%s %x", p, ab)] = true
	}
	var out []string
	for _, line := range strings.Split(strings.TrimRight(want, "\n"), "\n") {
		if line != "" && !got[line] {
			out = append(out, line)
		}
	}
	return out
}

func eventTrail(rc *recvSpeaker, p netaddr.Prefix) string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var b strings.Builder
	for i, u := range rc.logs {
		for _, w := range u.Withdrawn {
			if w == p {
				fmt.Fprintf(&b, " [%d]w", i)
			}
		}
		for _, nl := range u.NLRI {
			if nl == p {
				fmt.Fprintf(&b, " [%d]a", i)
			}
		}
	}
	fmt.Fprintf(&b, " (of %d msgs)", len(rc.logs))
	return b.String()
}
