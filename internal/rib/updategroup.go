package rib

import (
	"fmt"
	"sort"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/wire"
)

// GroupRoute is one entry of a group's shared Adj-RIB-Out: the exported
// attributes plus the BGP identifier of the peer the route was learned
// from. A member's own view of the group table is every entry whose
// Origin differs from the member — the per-peer
// "don't advertise a route back to its originator" rule, applied at read
// time instead of being baked into per-peer copies.
type GroupRoute struct {
	Attrs  *wire.PathAttrs
	Origin netaddr.Addr
}

// GroupAdjOut is the shared Adj-RIB-Out of an update group: one table for
// every member that shares an export policy. It replaces len(members)
// per-peer AdjOut maps with a single map of (attrs, origin) pairs, so
// group emission memory is O(prefixes), not O(peers × prefixes).
//
// Like AdjOut, attribute sets are held by canonical pointer (wire.Intern)
// and change detection is pointer-first.
type GroupAdjOut struct {
	routes map[netaddr.Prefix]GroupRoute
}

// NewGroupAdjOut returns an empty shared Adj-RIB-Out.
func NewGroupAdjOut() *GroupAdjOut {
	return &GroupAdjOut{routes: make(map[netaddr.Prefix]GroupRoute)}
}

// Advertise records that attrs (learned from origin) are the group's
// current export for prefix. It returns the previous entry and reports
// whether the table changed — i.e. whether any member's view may need an
// UPDATE.
func (o *GroupAdjOut) Advertise(prefix netaddr.Prefix, attrs *wire.PathAttrs, origin netaddr.Addr) (old GroupRoute, had, changed bool) {
	old, had = o.routes[prefix]
	if had && old.Origin == origin && attrsEqual(old.Attrs, attrs) {
		return old, had, false
	}
	o.routes[prefix] = GroupRoute{Attrs: attrs, Origin: origin}
	return old, had, true
}

// Withdraw removes prefix from the group table, returning the entry the
// group held (if any).
func (o *GroupAdjOut) Withdraw(prefix netaddr.Prefix) (old GroupRoute, had bool) {
	old, had = o.routes[prefix]
	if had {
		delete(o.routes, prefix)
	}
	return old, had
}

// Lookup returns the group's current entry for prefix.
func (o *GroupAdjOut) Lookup(prefix netaddr.Prefix) (GroupRoute, bool) {
	r, ok := o.routes[prefix]
	return r, ok
}

// Len returns the number of prefixes in the group table.
func (o *GroupAdjOut) Len() int { return len(o.routes) }

// MemberLen returns the number of prefixes visible to the given member:
// every entry not originated by the member itself.
func (o *GroupAdjOut) MemberLen(member netaddr.Addr) int {
	n := 0
	for _, r := range o.routes {
		if r.Origin != member {
			n++
		}
	}
	return n
}

// PrefixesInto appends every prefix in the group table to buf (which
// should come in empty) and returns it sorted: the key snapshot a chunked
// member catch-up replay walks, re-reading each entry via Lookup at
// chunk time.
func (o *GroupAdjOut) PrefixesInto(buf []netaddr.Prefix) []netaddr.Prefix {
	for p := range o.routes {
		buf = append(buf, p)
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].Compare(buf[j]) < 0 })
	return buf
}

// Walk visits group entries in prefix order until fn returns false.
func (o *GroupAdjOut) Walk(fn func(netaddr.Prefix, GroupRoute) bool) {
	prefixes := make([]netaddr.Prefix, 0, len(o.routes))
	for p := range o.routes {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })
	for _, p := range prefixes {
		if !fn(p, o.routes[p]) {
			return
		}
	}
}

// WalkMember visits, in prefix order, the entries visible to the given
// member — the member's logical Adj-RIB-Out.
func (o *GroupAdjOut) WalkMember(member netaddr.Addr, fn func(netaddr.Prefix, *wire.PathAttrs) bool) {
	o.Walk(func(p netaddr.Prefix, r GroupRoute) bool {
		if r.Origin == member {
			return true
		}
		return fn(p, r.Attrs)
	})
}

// GroupKeyFor returns the canonical update-group key for a peer: peers
// share a group exactly when they receive byte-identical export streams,
// which requires the same eBGP-vs-iBGP treatment (next-hop-self, AS
// prepend, LOCAL_PREF stripping, split-horizon scope) and a
// behavior-equal export route map. Policy names are excluded from the
// key (see policy.CanonicalKey).
func GroupKeyFor(ebgp bool, export *policy.RouteMap) string {
	return fmt.Sprintf("ebgp=%v|%s", ebgp, policy.CanonicalKey(export))
}
