package rib

import (
	"testing"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
)

// fuzzRouteMap builds a route map from fuzz-chosen behavior parameters.
// The names are cosmetic by contract: two maps built from the same
// parameters but different names must produce the same group key.
func fuzzRouteMap(name, termName string, defPermit, deny bool,
	lp, med uint32, useLP, useMED bool,
	prependAS uint32, prependCount uint8,
	prefixOctet, ge, le uint8) *policy.RouteMap {
	set := policy.Set{}
	if useLP {
		v := lp
		set.LocalPref = &v
	}
	if useMED {
		v := med
		set.MED = &v
	}
	if prependCount%4 > 0 {
		set.PrependAS = prependAS
		set.PrependCount = int(prependCount % 4)
	}
	action := policy.Permit
	if deny {
		action = policy.Deny
	}
	var match policy.Match
	if ge%2 == 1 {
		g, l := int(ge%25), int(le%33)
		if l < g {
			g, l = l, g
		}
		match.PrefixList = &policy.PrefixList{
			Name: termName + "-pl",
			Rules: []policy.PrefixRule{{
				Prefix: netaddr.PrefixFrom(netaddr.AddrFrom4(prefixOctet, 0, 0, 0), 8),
				GE:     g, LE: l,
				Action: policy.Permit,
			}},
		}
	}
	return &policy.RouteMap{
		Name: name,
		Terms: []policy.Term{{
			Name:   termName,
			Match:  match,
			Set:    set,
			Action: action,
		}},
		DefaultPermit: defPermit,
	}
}

// FuzzGroupKey fuzzes the update-group keying contract:
//
//  1. Behaviorally equal export configurations — identical except for
//     the cosmetic map/term names — always produce identical keys, so
//     peers sharing a policy always share a group.
//  2. Configurations with differing export behavior (a flipped action,
//     a shifted MED, an extra prepend, a different eBGP transform)
//     never share a key, so a group never mixes peers whose streams
//     could diverge.
func FuzzGroupKey(f *testing.F) {
	f.Add(false, false, uint32(100), uint32(50), true, true, uint32(65010), uint8(2), uint8(10), uint8(9), uint8(24), true)
	f.Add(true, false, uint32(0), uint32(0), false, false, uint32(0), uint8(0), uint8(0), uint8(0), uint8(0), false)
	f.Add(true, true, uint32(7), uint32(9), true, false, uint32(65020), uint8(1), uint8(192), uint8(3), uint8(17), true)
	f.Fuzz(func(t *testing.T, defPermit, deny bool,
		lp, med uint32, useLP, useMED bool,
		prependAS uint32, prependCount uint8,
		prefixOctet, ge, le uint8, ebgp bool) {

		a := fuzzRouteMap("map-a", "term-a", defPermit, deny, lp, med, useLP, useMED, prependAS, prependCount, prefixOctet, ge, le)
		b := fuzzRouteMap("map-b", "term-b", defPermit, deny, lp, med, useLP, useMED, prependAS, prependCount, prefixOctet, ge, le)
		ka, kb := GroupKeyFor(ebgp, a), GroupKeyFor(ebgp, b)
		if ka != kb {
			t.Fatalf("behaviorally equal configs produced different keys:\n  %s\n  %s", ka, kb)
		}

		// Flip one behavioral knob at a time; every variant must key
		// differently from the original.
		variants := map[string]string{
			"action":         GroupKeyFor(ebgp, fuzzRouteMap("map-c", "term-c", defPermit, !deny, lp, med, useLP, useMED, prependAS, prependCount, prefixOctet, ge, le)),
			"default-permit": GroupKeyFor(ebgp, fuzzRouteMap("map-c", "term-c", !defPermit, deny, lp, med, useLP, useMED, prependAS, prependCount, prefixOctet, ge, le)),
			"med":            GroupKeyFor(ebgp, fuzzRouteMap("map-c", "term-c", defPermit, deny, lp, med+1, useLP, true, prependAS, prependCount, prefixOctet, ge, le)),
			"ebgp":           GroupKeyFor(!ebgp, a),
		}
		if useLP {
			variants["local-pref"] = GroupKeyFor(ebgp, fuzzRouteMap("map-c", "term-c", defPermit, deny, lp+1, med, true, useMED, prependAS, prependCount, prefixOctet, ge, le))
		}
		if prependCount%4 > 0 {
			variants["prepend-count"] = GroupKeyFor(ebgp, fuzzRouteMap("map-c", "term-c", defPermit, deny, lp, med, useLP, useMED, prependAS, prependCount+1, prefixOctet, ge, le))
		}
		for knob, kv := range variants {
			if knob == "med" && useMED && med+1 == med {
				continue // uint32 wrap cannot happen, but keep the guard explicit
			}
			if knob == "prepend-count" && (prependCount+1)%4 == prependCount%4 {
				continue // count wrapped to the same effective prepend depth
			}
			if kv == ka {
				t.Fatalf("differing export behavior (%s) shares a group key: %s", knob, ka)
			}
		}

		// Nil means "export unmodified" — it must never collide with any
		// constructed map's key.
		if nk := GroupKeyFor(ebgp, nil); nk == ka {
			t.Fatalf("nil policy shares a key with a constructed map: %s", ka)
		}
	})
}
