package rib

import (
	"math/rand"
	"testing"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

func peer(addr string, id string, as uint32, ebgp bool) PeerInfo {
	return PeerInfo{
		Addr: netaddr.MustParseAddr(addr),
		ID:   netaddr.MustParseAddr(id),
		AS:   as,
		EBGP: ebgp,
	}
}

func cand(p PeerInfo, attrs *wire.PathAttrs) Candidate {
	return Candidate{Peer: p, Attrs: attrs}
}

func baseAttrs(asns ...uint32) *wire.PathAttrs {
	a := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(asns...), netaddr.MustParseAddr("192.0.2.1"))
	return &a
}

var (
	peerA = peer("10.0.0.1", "1.1.1.1", 100, true)
	peerB = peer("10.0.0.2", "2.2.2.2", 200, true)
)

func TestBetterLocalPref(t *testing.T) {
	a := baseAttrs(1, 2, 3)
	a.HasLocalPref, a.LocalPref = true, 200
	b := baseAttrs(1) // shorter path, but lower pref
	b.HasLocalPref, b.LocalPref = true, 100
	if !Better(cand(peerA, a), cand(peerB, b)) {
		t.Error("higher local-pref should win over shorter path")
	}
	// Unset local-pref counts as 100.
	c := baseAttrs(1, 2, 3, 4)
	if !Better(cand(peerA, a), cand(peerB, c)) {
		t.Error("local-pref 200 should beat default 100")
	}
}

func TestBetterASPathLength(t *testing.T) {
	short := cand(peerA, baseAttrs(1, 2))
	long := cand(peerB, baseAttrs(3, 4, 5))
	if !Better(short, long) || Better(long, short) {
		t.Error("shorter AS path should win")
	}
}

func TestBetterOrigin(t *testing.T) {
	igp := baseAttrs(1, 2)
	egp := baseAttrs(1, 2)
	egp.Origin = wire.OriginEGP
	if !Better(cand(peerA, igp), cand(peerB, egp)) {
		t.Error("IGP origin should beat EGP")
	}
}

func TestBetterMEDSameNeighborOnly(t *testing.T) {
	lowMED := baseAttrs(7, 2)
	lowMED.HasMED, lowMED.MED = true, 10
	highMED := baseAttrs(7, 3)
	highMED.HasMED, highMED.MED = true, 20
	// Same neighbour AS (7): MED compares.
	if !Better(cand(peerA, lowMED), cand(peerB, highMED)) {
		t.Error("lower MED should win for same neighbour AS")
	}
	// Different neighbour AS: MED skipped, falls through to router ID.
	diffAS := baseAttrs(8, 3)
	diffAS.HasMED, diffAS.MED = true, 20
	if !Better(cand(peerA, lowMED), cand(peerB, diffAS)) {
		t.Error("tie should break on router ID (peerA lower)")
	}
	if Better(cand(peerB, diffAS), cand(peerA, lowMED)) {
		t.Error("router ID tiebreak asymmetry")
	}
}

func TestBetterEBGPOverIBGP(t *testing.T) {
	ibgpPeer := peer("10.0.0.3", "3.3.3.3", 100, false)
	a := baseAttrs(1, 2)
	if !Better(cand(peerA, a), cand(ibgpPeer, a)) {
		t.Error("eBGP should beat iBGP")
	}
}

func TestBetterRouterIDTiebreak(t *testing.T) {
	a := baseAttrs(1, 2)
	if !Better(cand(peerA, a), cand(peerB, a)) {
		t.Error("lower router ID should win")
	}
	// Same ID: peer address decides.
	b2 := peer("10.0.0.9", "1.1.1.1", 300, true)
	if !Better(cand(peerA, a), cand(b2, a)) {
		t.Error("lower peer address should win at equal IDs")
	}
}

// TestBetterIsStrictWeakOrder checks antisymmetry and totality over random
// candidate pairs from distinct peers — the property the Loc-RIB depends
// on for convergence.
func TestBetterIsStrictWeakOrder(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	randCand := func(addrLow byte) Candidate {
		attrs := baseAttrs()
		n := 1 + r.Intn(5)
		asns := make([]uint32, n)
		for i := range asns {
			asns[i] = uint32(1 + r.Intn(8))
		}
		attrs.ASPath = wire.NewASPath(asns...)
		if r.Intn(2) == 0 {
			attrs.HasLocalPref, attrs.LocalPref = true, uint32(100+r.Intn(3)*50)
		}
		if r.Intn(2) == 0 {
			attrs.HasMED, attrs.MED = true, uint32(r.Intn(3)*10)
		}
		attrs.Origin = wire.Origin(r.Intn(3))
		return cand(peer(
			"10.0.0."+string(rune('0'+addrLow)),
			"9.9.9."+string(rune('0'+addrLow)),
			uint32(100+int(addrLow)),
			r.Intn(2) == 0,
		), attrs)
	}
	for i := 0; i < 3000; i++ {
		a, b := randCand(1), randCand(2)
		ab, ba := Better(a, b), Better(b, a)
		if ab && ba {
			t.Fatalf("Better not antisymmetric: %+v vs %+v", a, b)
		}
		if !ab && !ba {
			t.Fatalf("Better not total for distinct peers: %+v vs %+v", a, b)
		}
		// Transitivity spot check with a third candidate.
		c := randCand(3)
		if Better(a, b) && Better(b, c) && !Better(a, c) {
			t.Fatalf("Better not transitive")
		}
	}
}

func TestBestEmpty(t *testing.T) {
	if Best(nil) != -1 {
		t.Error("Best(nil) != -1")
	}
}

func TestBestPicksMostPreferred(t *testing.T) {
	cands := []Candidate{
		cand(peerB, baseAttrs(1, 2, 3)),
		cand(peerA, baseAttrs(1, 2)), // shortest path: wins
		cand(peer("10.0.0.3", "3.3.3.3", 300, true), baseAttrs(1, 2, 3, 4)),
	}
	if got := Best(cands); got != 1 {
		t.Errorf("Best = %d, want 1", got)
	}
}
