package rib

import (
	"math/rand"
	"testing"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

func newRIB2() *RIB {
	r := New()
	r.AddPeer(peerA)
	r.AddPeer(peerB)
	return r
}

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func TestAnnounceWithdrawLifecycle(t *testing.T) {
	r := newRIB2()
	p := pfx("10.0.0.0/8")

	ch, ok := r.Announce(peerA.Addr, p, baseAttrs(100, 1))
	if !ok || ch.Old != nil || ch.New == nil {
		t.Fatalf("first announce: %+v %v", ch, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}

	// Duplicate announce: no change.
	if _, ok := r.Announce(peerA.Addr, p, baseAttrs(100, 1)); ok {
		t.Fatal("duplicate announce should not produce a change")
	}

	// Withdraw removes the route entirely.
	ch, ok = r.Withdraw(peerA.Addr, p)
	if !ok || ch.New != nil || ch.Old == nil {
		t.Fatalf("withdraw: %+v %v", ch, ok)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after withdraw = %d", r.Len())
	}

	// Withdraw of an absent route: no change.
	if _, ok := r.Withdraw(peerA.Addr, p); ok {
		t.Fatal("withdraw of absent route should be a no-op")
	}
}

func TestAnnounceFromUnregisteredPeerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Announce(peerA.Addr, pfx("10.0.0.0/8"), baseAttrs(1))
}

func TestTwoPeersBestSelection(t *testing.T) {
	r := newRIB2()
	p := pfx("10.0.0.0/8")

	// Peer A announces a long path (like Speaker 1 in the benchmark).
	r.Announce(peerA.Addr, p, baseAttrs(100, 1, 2, 3))
	// Peer B announces a longer path (Scenario 5/6): best must not change.
	if _, ok := r.Announce(peerB.Addr, p, baseAttrs(200, 1, 2, 3, 4)); ok {
		t.Fatal("longer path should not displace best route")
	}
	best, _ := r.Lookup(p)
	if best.Peer.Addr != peerA.Addr {
		t.Fatal("best should remain peer A")
	}

	// Peer B announces a shorter path (Scenario 7/8): best changes.
	ch, ok := r.Announce(peerB.Addr, p, baseAttrs(200, 1))
	if !ok || ch.New.Peer.Addr != peerB.Addr || ch.Old.Peer.Addr != peerA.Addr {
		t.Fatalf("shorter path should win: %+v %v", ch, ok)
	}

	// Withdrawing the new best falls back to peer A.
	ch, ok = r.Withdraw(peerB.Addr, p)
	if !ok || ch.New.Peer.Addr != peerA.Addr {
		t.Fatalf("fallback: %+v %v", ch, ok)
	}
	if len(r.Candidates(p)) != 1 {
		t.Fatalf("candidates = %d", len(r.Candidates(p)))
	}
}

func TestRemovePeer(t *testing.T) {
	r := newRIB2()
	for i := 0; i < 50; i++ {
		p := netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i)<<16), 16)
		r.Announce(peerA.Addr, p, baseAttrs(100, uint32(i+1)))
		if i%2 == 0 {
			r.Announce(peerB.Addr, p, baseAttrs(200, uint32(i+1))) // equal length; A wins on ID
		}
	}
	changes := r.RemovePeer(peerA.Addr)
	if len(changes) != 50 {
		t.Fatalf("changes = %d, want 50", len(changes))
	}
	// Prefixes with a B candidate switch; the rest are removed.
	switched, removed := 0, 0
	for _, ch := range changes {
		if ch.New != nil {
			switched++
		} else {
			removed++
		}
	}
	if switched != 25 || removed != 25 {
		t.Fatalf("switched=%d removed=%d", switched, removed)
	}
	if r.Len() != 25 {
		t.Fatalf("Len = %d, want 25", r.Len())
	}
	if len(r.Peers()) != 1 {
		t.Fatalf("Peers = %d, want 1", len(r.Peers()))
	}
}

func TestWalkLocOrderedAndComplete(t *testing.T) {
	r := newRIB2()
	want := 200
	for i := 0; i < want; i++ {
		p := netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i)<<12), 20)
		r.Announce(peerA.Addr, p, baseAttrs(100, uint32(i%7+1)))
	}
	var prev netaddr.Prefix
	count := 0
	r.WalkLoc(func(p netaddr.Prefix, c Candidate) bool {
		if count > 0 && prev.Compare(p) >= 0 {
			t.Fatalf("WalkLoc out of order: %v then %v", prev, p)
		}
		prev = p
		count++
		return true
	})
	if count != want {
		t.Fatalf("visited %d, want %d", count, want)
	}
	// Early termination.
	count = 0
	r.WalkLoc(func(netaddr.Prefix, Candidate) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

// TestLocRIBInvariant: after a random operation sequence, every Loc-RIB
// best equals the decision-process winner over its candidates, recomputed
// from scratch.
func TestLocRIBInvariant(t *testing.T) {
	r := newRIB2()
	rng := rand.New(rand.NewSource(77))
	peers := []PeerInfo{peerA, peerB}
	prefixes := make([]netaddr.Prefix, 40)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i)<<20), 12)
	}
	for op := 0; op < 5000; op++ {
		p := prefixes[rng.Intn(len(prefixes))]
		peer := peers[rng.Intn(2)]
		if rng.Intn(3) == 0 {
			r.Withdraw(peer.Addr, p)
		} else {
			n := 1 + rng.Intn(4)
			asns := make([]uint32, n)
			for i := range asns {
				asns[i] = uint32(1 + rng.Intn(10))
			}
			r.Announce(peer.Addr, p, baseAttrs(asns...))
		}
	}
	for _, p := range prefixes {
		cands := r.Candidates(p)
		best, ok := r.Lookup(p)
		if len(cands) == 0 {
			if ok {
				t.Fatalf("%v: best exists with no candidates", p)
			}
			continue
		}
		if !ok {
			t.Fatalf("%v: candidates exist but no best", p)
		}
		idx := Best(cands)
		if cands[idx].Peer.Addr != best.Peer.Addr || !attrsEqual(cands[idx].Attrs, best.Attrs) {
			t.Fatalf("%v: stored best differs from recomputed best", p)
		}
	}
	if r.Decisions() == 0 {
		t.Fatal("decision counter not incremented")
	}
}

func TestAdjOutDedup(t *testing.T) {
	o := NewAdjOut()
	p := pfx("10.0.0.0/8")
	a := baseAttrs(1, 2)

	if !o.Advertise(p, a) {
		t.Fatal("first advertise should report a change")
	}
	if o.Advertise(p, a) {
		t.Fatal("identical re-advertise should be suppressed")
	}
	b := baseAttrs(1, 2, 3)
	if !o.Advertise(p, b) {
		t.Fatal("changed attributes should report a change")
	}
	if got, ok := o.Lookup(p); !ok || !attrsEqual(got, b) {
		t.Fatal("Lookup returned wrong attrs")
	}
	if !o.Withdraw(p) {
		t.Fatal("withdraw of advertised prefix should report a change")
	}
	if o.Withdraw(p) {
		t.Fatal("double withdraw should be suppressed")
	}
	if o.Len() != 0 {
		t.Fatalf("Len = %d", o.Len())
	}
}

func TestAdjOutWalkOrdered(t *testing.T) {
	o := NewAdjOut()
	for i := 20; i > 0; i-- {
		o.Advertise(netaddr.PrefixFrom(netaddr.AddrFromV4(uint32(i)<<24), 8), baseAttrs(uint32(i)))
	}
	var prev netaddr.Prefix
	n := 0
	o.Walk(func(p netaddr.Prefix, _ *wire.PathAttrs) bool {
		if n > 0 && prev.Compare(p) >= 0 {
			t.Fatalf("Walk out of order")
		}
		prev = p
		n++
		return true
	})
	if n != 20 {
		t.Fatalf("visited %d", n)
	}
}

func TestChangeString(t *testing.T) {
	c := Candidate{Peer: peerA, Attrs: baseAttrs(1)}
	for _, ch := range []Change{
		{Prefix: pfx("10.0.0.0/8"), New: &c},
		{Prefix: pfx("10.0.0.0/8"), Old: &c},
		{Prefix: pfx("10.0.0.0/8"), Old: &c, New: &c},
	} {
		if ch.String() == "" {
			t.Error("empty Change.String()")
		}
	}
}
