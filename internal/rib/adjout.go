package rib

import (
	"sort"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// AdjOut is the Adj-RIB-Out for one peer: the routes the local speaker has
// advertised to it. It deduplicates advertisements so the session layer
// only sends UPDATEs that actually change the peer's view. Attribute sets
// are held by canonical pointer (wire.Intern), so one AdjOut entry costs a
// map slot, not a copy of the attribute block, and the dedupe check is a
// pointer comparison for interned attrs.
type AdjOut struct {
	routes map[netaddr.Prefix]*wire.PathAttrs
}

// NewAdjOut returns an empty Adj-RIB-Out.
func NewAdjOut() *AdjOut {
	return &AdjOut{routes: make(map[netaddr.Prefix]*wire.PathAttrs)}
}

// Advertise records that attrs were advertised for prefix. It reports
// whether this differs from what the peer already holds (i.e. whether an
// UPDATE must be sent).
func (o *AdjOut) Advertise(prefix netaddr.Prefix, attrs *wire.PathAttrs) bool {
	if cur, ok := o.routes[prefix]; ok && attrsEqual(cur, attrs) {
		return false
	}
	o.routes[prefix] = attrs
	return true
}

// Withdraw records the withdrawal of a prefix, reporting whether the peer
// actually held it.
func (o *AdjOut) Withdraw(prefix netaddr.Prefix) bool {
	if _, ok := o.routes[prefix]; !ok {
		return false
	}
	delete(o.routes, prefix)
	return true
}

// Lookup returns the attributes last advertised for prefix.
func (o *AdjOut) Lookup(prefix netaddr.Prefix) (*wire.PathAttrs, bool) {
	a, ok := o.routes[prefix]
	return a, ok
}

// Len returns the number of advertised prefixes.
func (o *AdjOut) Len() int { return len(o.routes) }

// Walk visits advertised routes in prefix order until fn returns false.
func (o *AdjOut) Walk(fn func(netaddr.Prefix, *wire.PathAttrs) bool) {
	prefixes := make([]netaddr.Prefix, 0, len(o.routes))
	for p := range o.routes {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })
	for _, p := range prefixes {
		if !fn(p, o.routes[p]) {
			return
		}
	}
}
