// Package rib implements the three BGP Routing Information Bases of
// RFC 4271 — the per-peer Adj-RIBs-In, the Loc-RIB, and the per-peer
// Adj-RIBs-Out — together with the decision process that selects the most
// preferred route per prefix. The paper identifies "computing the Loc-RIB
// table according to the messages received from neighbors" as the
// essential BGP operation; this package is that operation.
package rib

import (
	"fmt"
	"sort"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// Change describes one Loc-RIB best-route transition produced by an
// announce or withdraw. Old == nil means the prefix had no best route; New
// == nil means the prefix no longer has one. Old and New both non-nil with
// equal contents never occurs (no-op transitions are suppressed).
type Change struct {
	Prefix netaddr.Prefix
	Old    *Candidate
	New    *Candidate
}

// String summarizes the change.
func (c Change) String() string {
	switch {
	case c.Old == nil && c.New != nil:
		return fmt.Sprintf("%v: added via %v", c.Prefix, c.New.Peer.Addr)
	case c.Old != nil && c.New == nil:
		return fmt.Sprintf("%v: removed", c.Prefix)
	default:
		return fmt.Sprintf("%v: replaced", c.Prefix)
	}
}

type locEntry struct {
	cands []Candidate // one per peer, unordered
	best  *Candidate  // snapshot of the current best route, nil when none
}

// RIB is the full routing information base of one BGP speaker. It is not
// safe for concurrent use; the router serializes access through its
// decision goroutine, mirroring the single xorp_rib process in the paper's
// software stack.
type RIB struct {
	peers map[netaddr.Addr]PeerInfo
	loc   map[netaddr.Prefix]*locEntry

	decisions uint64 // decision process invocations, for benchmarks
}

// New returns an empty RIB.
func New() *RIB {
	return &RIB{
		peers: make(map[netaddr.Addr]PeerInfo),
		loc:   make(map[netaddr.Prefix]*locEntry),
	}
}

// AddPeer registers a peer so its routes can be tracked. Announcing from
// an unregistered peer panics: it indicates a session-layer bug.
func (r *RIB) AddPeer(p PeerInfo) {
	r.peers[p.Addr] = p
}

// Peers returns the registered peers in address order.
func (r *RIB) Peers() []PeerInfo {
	out := make([]PeerInfo, 0, len(r.peers))
	for _, p := range r.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// Announce records a route from a peer's Adj-RIB-In (post-import-policy)
// and runs the decision process for the prefix. attrs should be a
// canonical pointer (wire.Intern) shared across prefixes with the same
// path; the RIB stores it without copying. It returns the Loc-RIB change,
// if any.
func (r *RIB) Announce(peer netaddr.Addr, prefix netaddr.Prefix, attrs *wire.PathAttrs) (Change, bool) {
	pi, ok := r.peers[peer]
	if !ok {
		panic(fmt.Sprintf("rib: announce from unregistered peer %v", peer))
	}
	e := r.loc[prefix]
	if e == nil {
		e = &locEntry{}
		r.loc[prefix] = e
	}
	cand := Candidate{Peer: pi, Attrs: attrs}
	replaced := false
	for i := range e.cands {
		if e.cands[i].Peer.Addr == peer {
			e.cands[i] = cand
			replaced = true
			break
		}
	}
	if !replaced {
		e.cands = append(e.cands, cand)
	}
	return r.decide(prefix, e)
}

// Withdraw removes a peer's route for a prefix and re-runs the decision
// process. Withdrawing a route that was never announced is a no-op.
func (r *RIB) Withdraw(peer netaddr.Addr, prefix netaddr.Prefix) (Change, bool) {
	e := r.loc[prefix]
	if e == nil {
		return Change{}, false
	}
	found := false
	for i := range e.cands {
		if e.cands[i].Peer.Addr == peer {
			e.cands = append(e.cands[:i], e.cands[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return Change{}, false
	}
	return r.decide(prefix, e)
}

// RemovePeer withdraws every route learned from the peer (session down)
// and unregisters it. The returned changes are in prefix order for
// deterministic downstream processing.
func (r *RIB) RemovePeer(peer netaddr.Addr) []Change {
	var prefixes []netaddr.Prefix
	for p, e := range r.loc {
		for i := range e.cands {
			if e.cands[i].Peer.Addr == peer {
				prefixes = append(prefixes, p)
				break
			}
		}
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })
	var changes []Change
	for _, p := range prefixes {
		if ch, ok := r.Withdraw(peer, p); ok {
			changes = append(changes, ch)
		}
	}
	delete(r.peers, peer)
	return changes
}

// decide recomputes the best route for a prefix and reports the transition.
func (r *RIB) decide(prefix netaddr.Prefix, e *locEntry) (Change, bool) {
	r.decisions++
	old := e.best
	idx := Best(e.cands)
	if idx < 0 {
		e.best = nil
		delete(r.loc, prefix)
	} else {
		c := e.cands[idx]
		e.best = &c
	}
	switch {
	case old == nil && e.best == nil:
		return Change{}, false
	case old != nil && e.best != nil &&
		old.Peer.Addr == e.best.Peer.Addr && attrsEqual(old.Attrs, e.best.Attrs):
		return Change{}, false
	}
	return Change{Prefix: prefix, Old: old, New: e.best}, true
}

// attrsEqual compares two attribute pointers: pointer equality first (the
// common case with interned attribute sets), deep comparison otherwise.
func attrsEqual(a, b *wire.PathAttrs) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.Equal(*b)
}

// Lookup returns the current best route for a prefix.
func (r *RIB) Lookup(prefix netaddr.Prefix) (Candidate, bool) {
	e := r.loc[prefix]
	if e == nil || e.best == nil {
		return Candidate{}, false
	}
	return *e.best, true
}

// LocPrefixesInto appends every prefix with a best route to buf (which
// should come in empty) and returns it sorted. The chunked update-group
// rebuild snapshots the key set here, then re-reads each entry through
// Lookup at chunk-processing time so entries that changed after the
// snapshot are never replayed stale.
func (r *RIB) LocPrefixesInto(buf []netaddr.Prefix) []netaddr.Prefix {
	for p, e := range r.loc {
		if e.best == nil {
			continue
		}
		buf = append(buf, p)
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].Compare(buf[j]) < 0 })
	return buf
}

// Candidates returns all Adj-RIB-In routes for a prefix (unspecified
// order), for diagnostics and tests.
func (r *RIB) Candidates(prefix netaddr.Prefix) []Candidate {
	e := r.loc[prefix]
	if e == nil {
		return nil
	}
	return append([]Candidate(nil), e.cands...)
}

// Len returns the number of prefixes with a best route in the Loc-RIB.
func (r *RIB) Len() int { return len(r.loc) }

// Decisions returns the number of decision-process invocations.
func (r *RIB) Decisions() uint64 { return r.decisions }

// WalkLoc visits every Loc-RIB best route in prefix order until fn returns
// false. The ordering makes Phase 2 advertisement streams deterministic.
func (r *RIB) WalkLoc(fn func(netaddr.Prefix, Candidate) bool) {
	prefixes := make([]netaddr.Prefix, 0, len(r.loc))
	for p := range r.loc {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })
	for _, p := range prefixes {
		e := r.loc[p]
		if e.best == nil {
			continue
		}
		if !fn(p, *e.best) {
			return
		}
	}
}
