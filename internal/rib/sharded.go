package rib

import (
	"sort"

	"bgpbench/internal/netaddr"
)

// ShardOf maps a prefix to one of n shards. The mapping is a fixed hash of
// the (masked address, length) pair, so every operation on a prefix lands
// on the same shard regardless of which peer or message carried it — the
// invariant that lets shard workers run without cross-shard locking.
func ShardOf(p netaddr.Prefix, n int) int {
	if n <= 1 {
		return 0
	}
	a := p.Addr()
	var h uint32
	if a.Is4() {
		// Keep the historical v4 hash bit-for-bit: shard assignment feeds
		// conformance digests, which must not move for v4-only configs.
		h = a.V4()*2654435761 + uint32(p.Len())*0x9E3779B9 //bgplint:allow(afifamily) reason=guarded by Is4 above; v4 hash is digest-pinned
	} else {
		m := a.Hi()*0x9E3779B97F4A7C15 ^ a.Lo()*0xC2B2AE3D27D4EB4F
		h = uint32(m>>32) ^ uint32(m) ^ 0x80000000 // family bit keeps v6 off the v4 mapping
		h += uint32(p.Len()) * 0x9E3779B9
	}
	h ^= h >> 16
	return int(h % uint32(n))
}

// Sharded partitions the prefix space over n independent RIBs, one per
// decision worker. Each shard is single-goroutine like RIB itself; the
// wrapper adds no locking. Aggregate accessors (Len, WalkLoc) are for
// tests and diagnostics and must only run while the shards are quiescent
// or from the owning workers.
type Sharded struct {
	shards []*RIB
}

// NewSharded builds n empty shards (n < 1 is treated as 1).
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*RIB, n)}
	for i := range s.shards {
		s.shards[i] = New()
	}
	return s
}

// N returns the shard count.
func (s *Sharded) N() int { return len(s.shards) }

// Shard returns shard i.
func (s *Sharded) Shard(i int) *RIB { return s.shards[i] }

// ShardFor returns the shard owning prefix p.
func (s *Sharded) ShardFor(p netaddr.Prefix) *RIB {
	return s.shards[ShardOf(p, len(s.shards))]
}

// Len sums the Loc-RIB sizes of all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, r := range s.shards {
		n += r.Len()
	}
	return n
}

// Decisions sums the decision-process invocation counts of all shards.
func (s *Sharded) Decisions() uint64 {
	var n uint64
	for _, r := range s.shards {
		n += r.Decisions()
	}
	return n
}

// WalkLoc visits every best route across all shards in global prefix
// order until fn returns false.
func (s *Sharded) WalkLoc(fn func(netaddr.Prefix, Candidate) bool) {
	if len(s.shards) == 1 {
		s.shards[0].WalkLoc(fn)
		return
	}
	type entry struct {
		p netaddr.Prefix
		c Candidate
	}
	var all []entry
	for _, r := range s.shards {
		r.WalkLoc(func(p netaddr.Prefix, c Candidate) bool {
			all = append(all, entry{p, c})
			return true
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].p.Compare(all[j].p) < 0 })
	for _, e := range all {
		if !fn(e.p, e.c) {
			return
		}
	}
}
