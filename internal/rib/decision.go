package rib

import (
	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// DefaultLocalPref is assumed for routes that do not carry LOCAL_PREF
// (RFC 4271 recommends treating eBGP routes this way).
const DefaultLocalPref = 100

// PeerInfo identifies the peer a candidate route was learned from, with
// the fields the decision process tie-breaks on.
type PeerInfo struct {
	Addr netaddr.Addr // peer transport address
	ID   netaddr.Addr // peer BGP identifier
	AS   uint32       // peer autonomous system
	EBGP bool         // external session
}

// Candidate is one route for a prefix in an Adj-RIB-In, after import
// policy. Attrs points at a canonical attribute set (see wire.Intern), so
// candidates for the same path share one allocation and equality checks
// on interned attribute sets reduce to pointer comparisons.
type Candidate struct {
	Peer  PeerInfo
	Attrs *wire.PathAttrs
}

// effectiveLocalPref returns LOCAL_PREF or the default.
func effectiveLocalPref(a *wire.PathAttrs) uint32 {
	if a.HasLocalPref {
		return a.LocalPref
	}
	return DefaultLocalPref
}

// effectiveMED returns MED, treating absence as 0 (most preferred), the
// conventional missing-as-best interpretation.
func effectiveMED(a *wire.PathAttrs) uint32 {
	if a.HasMED {
		return a.MED
	}
	return 0
}

// Better reports whether candidate a is preferred over candidate b by the
// BGP decision process (RFC 4271 section 9.1.2.2, without IGP metric):
//
//  1. higher LOCAL_PREF;
//  2. shorter AS path — the dominant rule in practice, and the one the
//     paper's Scenario 5-8 workloads exercise;
//  3. lower ORIGIN (IGP < EGP < INCOMPLETE);
//  4. lower MED, compared only between routes from the same neighbour AS;
//  5. eBGP-learned over iBGP-learned;
//  6. lower peer BGP identifier;
//  7. lower peer address.
//
// The result is a strict weak order: Better(a,b) and Better(b,a) are never
// both true, and candidates from distinct peers always order one way.
func Better(a, b Candidate) bool {
	if la, lb := effectiveLocalPref(a.Attrs), effectiveLocalPref(b.Attrs); la != lb {
		return la > lb
	}
	if pa, pb := a.Attrs.ASPath.Length(), b.Attrs.ASPath.Length(); pa != pb {
		return pa < pb
	}
	if oa, ob := a.Attrs.Origin, b.Attrs.Origin; oa != ob {
		return oa < ob
	}
	aFirst, aok := a.Attrs.ASPath.First()
	bFirst, bok := b.Attrs.ASPath.First()
	if aok && bok && aFirst == bFirst {
		if ma, mb := effectiveMED(a.Attrs), effectiveMED(b.Attrs); ma != mb {
			return ma < mb
		}
	}
	if a.Peer.EBGP != b.Peer.EBGP {
		return a.Peer.EBGP
	}
	if a.Peer.ID != b.Peer.ID {
		return a.Peer.ID.Less(b.Peer.ID)
	}
	return a.Peer.Addr.Less(b.Peer.Addr)
}

// Best returns the index of the most preferred candidate, or -1 for an
// empty slice. Ties (identical peers) resolve to the first occurrence.
func Best(cands []Candidate) int {
	best := -1
	for i := range cands {
		if best < 0 || Better(cands[i], cands[best]) {
			best = i
		}
	}
	return best
}
