package forward

import (
	"testing"

	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/packet"
)

func newTestEngine() (*Engine, *[]int) {
	table := fib.NewTable(fib.NewPatricia())
	table.Insert(netaddr.MustParsePrefix("10.0.0.0/8"), fib.Entry{Port: 1, NextHop: netaddr.MustParseAddr("192.0.2.1")})
	table.Insert(netaddr.MustParsePrefix("10.1.0.0/16"), fib.Entry{Port: 2, NextHop: netaddr.MustParseAddr("192.0.2.2")})
	var ports []int
	e := New(table, EgressFunc(func(port int, _ netaddr.Addr, _ []byte) {
		ports = append(ports, port)
	}))
	e.AddLocalAddr(netaddr.MustParseAddr("192.0.2.254"))
	return e, &ports
}

func mkPacket(dst string, ttl uint8) []byte {
	return packet.Marshal(packet.Header{
		TTL:      ttl,
		Protocol: 17,
		Src:      netaddr.MustParseAddr("172.16.0.1"),
		Dst:      netaddr.MustParseAddr(dst),
	}, []byte("payload"))
}

func TestForwardLongestMatch(t *testing.T) {
	e, ports := newTestEngine()
	if v := e.Process(mkPacket("10.1.2.3", 64)); v != VerdictForwarded {
		t.Fatalf("verdict = %v", v)
	}
	if v := e.Process(mkPacket("10.2.2.3", 64)); v != VerdictForwarded {
		t.Fatalf("verdict = %v", v)
	}
	if len(*ports) != 2 || (*ports)[0] != 2 || (*ports)[1] != 1 {
		t.Fatalf("egress ports = %v, want [2 1]", *ports)
	}
	if got := e.Stats.Forwarded.Load(); got != 2 {
		t.Fatalf("Forwarded = %d", got)
	}
}

func TestForwardDecrementsTTLAndKeepsChecksumValid(t *testing.T) {
	table := fib.NewTable(nil)
	table.Insert(netaddr.MustParsePrefix("0.0.0.0/0"), fib.Entry{Port: 0})
	var out []byte
	e := New(table, EgressFunc(func(_ int, _ netaddr.Addr, pkt []byte) { out = pkt }))
	if v := e.Process(mkPacket("8.8.8.8", 10)); v != VerdictForwarded {
		t.Fatalf("verdict = %v", v)
	}
	h, err := packet.ParseHeader(out) // re-validates checksum
	if err != nil {
		t.Fatal(err)
	}
	if h.TTL != 9 {
		t.Fatalf("TTL = %d, want 9", h.TTL)
	}
}

func TestDropNoRoute(t *testing.T) {
	e, _ := newTestEngine()
	if v := e.Process(mkPacket("172.20.0.1", 64)); v != VerdictDropNoRoute {
		t.Fatalf("verdict = %v", v)
	}
	if e.Stats.DropNoRoute.Load() != 1 {
		t.Fatal("DropNoRoute not counted")
	}
}

func TestDropTTL(t *testing.T) {
	e, _ := newTestEngine()
	if v := e.Process(mkPacket("10.0.0.1", 1)); v != VerdictDropTTL {
		t.Fatalf("verdict = %v", v)
	}
	if v := e.Process(mkPacket("10.0.0.1", 0)); v != VerdictDropTTL {
		t.Fatalf("verdict = %v", v)
	}
	if e.Stats.DropTTL.Load() != 2 {
		t.Fatal("DropTTL not counted")
	}
}

func TestLocalDelivery(t *testing.T) {
	e, ports := newTestEngine()
	if v := e.Process(mkPacket("192.0.2.254", 64)); v != VerdictLocal {
		t.Fatalf("verdict = %v", v)
	}
	if len(*ports) != 0 {
		t.Fatal("local packet must not be transmitted")
	}
	// Local delivery happens before TTL handling: even TTL=1 is delivered.
	if v := e.Process(mkPacket("192.0.2.254", 1)); v != VerdictLocal {
		t.Fatalf("verdict = %v", v)
	}
}

func TestDropMalformed(t *testing.T) {
	e, _ := newTestEngine()
	if v := e.Process([]byte{1, 2, 3}); v != VerdictDropMalformed {
		t.Fatalf("short: %v", v)
	}
	bad := mkPacket("10.0.0.1", 64)
	bad[8]++ // corrupt TTL so the checksum fails
	if v := e.Process(bad); v != VerdictDropMalformed {
		t.Fatalf("checksum: %v", v)
	}
	if e.Stats.DropBad.Load() != 2 {
		t.Fatal("DropBad not counted")
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictForwarded:     "forwarded",
		VerdictLocal:         "local",
		VerdictDropTTL:       "drop-ttl",
		VerdictDropNoRoute:   "drop-no-route",
		VerdictDropMalformed: "drop-malformed",
		Verdict(99):          "unknown",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	e, _ := newTestEngine()
	e.Process(mkPacket("10.0.0.1", 64))
	s := e.Stats.Snapshot()
	if s.Forwarded != 1 || s.BytesForward == 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}
