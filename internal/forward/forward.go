// Package forward implements an RFC 1812-compliant IPv4 forwarding engine:
// header validation, TTL decrement with incremental checksum update, FIB
// lookup, and egress dispatch. It is the data-plane component whose
// contention with BGP processing the paper measures; the live router embeds
// it, and the benchmark's cross-traffic exercises it.
package forward

import (
	"errors"
	"sync/atomic"

	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/packet"
)

// Verdict classifies the outcome of processing one packet.
type Verdict int

// Forwarding outcomes.
const (
	VerdictForwarded Verdict = iota // sent to an egress port
	VerdictLocal                    // addressed to the router itself
	VerdictDropTTL                  // TTL expired
	VerdictDropNoRoute
	VerdictDropMalformed
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictForwarded:
		return "forwarded"
	case VerdictLocal:
		return "local"
	case VerdictDropTTL:
		return "drop-ttl"
	case VerdictDropNoRoute:
		return "drop-no-route"
	case VerdictDropMalformed:
		return "drop-malformed"
	}
	return "unknown"
}

// Stats counts per-verdict packet and byte totals. All fields are updated
// atomically; the struct can be read while the engine runs.
type Stats struct {
	Forwarded    atomic.Uint64
	Local        atomic.Uint64
	DropTTL      atomic.Uint64
	DropNoRoute  atomic.Uint64
	DropBad      atomic.Uint64
	BytesForward atomic.Uint64
}

// Snapshot is a plain-value copy of Stats.
type Snapshot struct {
	Forwarded, Local, DropTTL, DropNoRoute, DropBad, BytesForward uint64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Forwarded:    s.Forwarded.Load(),
		Local:        s.Local.Load(),
		DropTTL:      s.DropTTL.Load(),
		DropNoRoute:  s.DropNoRoute.Load(),
		DropBad:      s.DropBad.Load(),
		BytesForward: s.BytesForward.Load(),
	}
}

// Egress receives forwarded packets. Implementations must be safe for
// concurrent use if the engine is driven from multiple goroutines.
type Egress interface {
	// Transmit hands off a forwarded packet on the given port toward the
	// given next hop. The buffer is owned by the callee after the call.
	Transmit(port int, nextHop netaddr.Addr, pkt []byte)
}

// EgressFunc adapts a function to the Egress interface.
type EgressFunc func(port int, nextHop netaddr.Addr, pkt []byte)

// Transmit calls f.
func (f EgressFunc) Transmit(port int, nextHop netaddr.Addr, pkt []byte) { f(port, nextHop, pkt) }

// DiscardEgress drops all packets; used by benchmarks that only measure
// the processing cost.
var DiscardEgress Egress = EgressFunc(func(int, netaddr.Addr, []byte) {})

// Engine is the forwarding engine. It consults a shared FIB table and a
// set of local addresses (packets to which are delivered locally rather
// than forwarded).
type Engine struct {
	FIB    fib.Shared
	Egress Egress
	Stats  Stats

	local map[netaddr.Addr]bool
}

// New builds an engine over the given FIB. A nil egress discards packets.
func New(table fib.Shared, egress Egress) *Engine {
	if egress == nil {
		egress = DiscardEgress
	}
	return &Engine{FIB: table, Egress: egress, local: make(map[netaddr.Addr]bool)}
}

// AddLocalAddr registers an address owned by the router; packets addressed
// to it are delivered locally. Not safe to call concurrently with Process.
func (e *Engine) AddLocalAddr(a netaddr.Addr) { e.local[a] = true }

// Process runs the RFC 1812 forwarding path on one packet:
//
//  1. validate version, header length, total length, and header checksum;
//  2. deliver locally if the destination is one of the router's addresses;
//  3. decrement TTL, dropping expired packets (where a full router would
//     also emit ICMP Time Exceeded);
//  4. longest-prefix-match in the FIB;
//  5. update the header checksum incrementally and transmit.
//
// The packet buffer is modified in place (TTL/checksum) and ownership
// passes to the egress when the verdict is VerdictForwarded.
func (e *Engine) Process(pkt []byte) Verdict {
	if len(pkt) < packet.MinHeaderLen {
		e.Stats.DropBad.Add(1)
		return VerdictDropMalformed
	}
	if _, err := packet.ParseHeader(pkt); err != nil {
		e.Stats.DropBad.Add(1)
		return VerdictDropMalformed
	}
	dst := packet.Dst(pkt)
	if e.local[dst] {
		e.Stats.Local.Add(1)
		return VerdictLocal
	}
	if err := packet.DecrementTTL(pkt); err != nil {
		if errors.Is(err, packet.ErrTTLExpired) {
			e.Stats.DropTTL.Add(1)
			return VerdictDropTTL
		}
		e.Stats.DropBad.Add(1)
		return VerdictDropMalformed
	}
	entry, ok := e.FIB.Lookup(dst)
	if !ok {
		e.Stats.DropNoRoute.Add(1)
		return VerdictDropNoRoute
	}
	e.Stats.Forwarded.Add(1)
	e.Stats.BytesForward.Add(uint64(len(pkt)))
	e.Egress.Transmit(entry.Port, entry.NextHop, pkt)
	return VerdictForwarded
}
