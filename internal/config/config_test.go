package config

import (
	"strings"
	"testing"
	"time"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

const fullConfig = `
# benchmark router configuration
router {
    as 65000
    id 10.0.0.1
    next-hop 10.0.0.2
    listen 127.0.0.1:1790
    fib hashlen
    hold-time 30
    mrai 5s
    damping
    export-batch 100
    shards 2
    batch-updates 64
    batch-delay 150us
}

prefix-list bogons {
    permit 10.0.0.0/8 ge 8 le 32
    deny 192.0.2.0/24
    permit 192.168.0.0/16 ge 16
}

route-map deny-bogons {
    term drop { match prefix-list bogons; action deny }
    default permit
}

route-map shape-out {
    term pad {
        match neighbor-as 65001
        set prepend 65000 2
        set community 65000:100
        action permit
    }
    term limit { match max-path-len 6; set local-pref 50 }
    default deny
}

neighbor 65001 {
    import deny-bogons
    export shape-out
}

neighbor 65002 {
    dial 192.0.2.9:179
}
`

func TestParseFullConfig(t *testing.T) {
	cfg, err := Parse(fullConfig)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AS != 65000 || cfg.ID != netaddr.MustParseAddr("10.0.0.1") {
		t.Fatalf("router identity: %+v", cfg)
	}
	if cfg.NextHop != netaddr.MustParseAddr("10.0.0.2") {
		t.Errorf("next-hop = %v", cfg.NextHop)
	}
	if cfg.ListenAddr != "127.0.0.1:1790" || cfg.FIBEngine != "hashlen" {
		t.Errorf("listen/fib: %+v", cfg)
	}
	if cfg.HoldTime != 30 || cfg.MRAI != 5*time.Second || cfg.ExportBatch != 100 {
		t.Errorf("timers: hold=%d mrai=%v batch=%d", cfg.HoldTime, cfg.MRAI, cfg.ExportBatch)
	}
	if cfg.Damping == nil {
		t.Error("damping not enabled")
	}
	if cfg.Shards != 2 {
		t.Errorf("shards = %d, want 2", cfg.Shards)
	}
	if cfg.BatchMaxUpdates != 64 || cfg.BatchMaxDelay != 150*time.Microsecond {
		t.Errorf("batching: updates=%d delay=%v", cfg.BatchMaxUpdates, cfg.BatchMaxDelay)
	}
	if len(cfg.Neighbors) != 2 {
		t.Fatalf("neighbors = %d", len(cfg.Neighbors))
	}
	n1 := cfg.Neighbors[0]
	if n1.AS != 65001 || n1.Import == nil || n1.Export == nil {
		t.Fatalf("neighbor 65001: %+v", n1)
	}
	n2 := cfg.Neighbors[1]
	if n2.AS != 65002 || n2.DialTarget != "192.0.2.9:179" {
		t.Fatalf("neighbor 65002: %+v", n2)
	}
}

func TestParsedPolicySemantics(t *testing.T) {
	cfg, err := Parse(fullConfig)
	if err != nil {
		t.Fatal(err)
	}
	imp := cfg.Neighbors[0].Import
	attrs := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001, 7), netaddr.MustParseAddr("9.9.9.9"))

	// Bogon space is denied.
	if _, ok := imp.Apply(netaddr.MustParsePrefix("10.1.0.0/16"), attrs); ok {
		t.Error("bogon 10/8 accepted")
	}
	// The deny rule in the prefix list *excludes* 192.0.2/24 from the
	// match, so the route-map's drop term does not fire and the default
	// permit applies.
	if _, ok := imp.Apply(netaddr.MustParsePrefix("192.0.2.0/24"), attrs); !ok {
		t.Error("192.0.2/24 should fall through to default permit")
	}
	// Ordinary space falls to the default permit.
	if _, ok := imp.Apply(netaddr.MustParsePrefix("8.8.8.0/24"), attrs); !ok {
		t.Error("ordinary prefix denied")
	}

	exp := cfg.Neighbors[0].Export
	out, ok := exp.Apply(netaddr.MustParsePrefix("8.8.8.0/24"), attrs)
	if !ok {
		t.Fatal("export term should permit")
	}
	if out.ASPath.Length() != 4 {
		t.Errorf("prepend x2 missing: path %v", out.ASPath)
	}
	if !out.HasCommunity(wire.CommunityFrom(65000, 100)) {
		t.Error("community not set")
	}
	// Route from a different neighbour AS with a short path: second term.
	attrs2 := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(70, 7), netaddr.MustParseAddr("9.9.9.9"))
	out2, ok := exp.Apply(netaddr.MustParsePrefix("8.8.8.0/24"), attrs2)
	if !ok || !out2.HasLocalPref || out2.LocalPref != 50 {
		t.Errorf("second term: %+v %v", out2, ok)
	}
	// Long path from wrong AS: implicit default deny.
	attrs3 := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(70, 1, 2, 3, 4, 5, 6), netaddr.MustParseAddr("9.9.9.9"))
	if _, ok := exp.Apply(netaddr.MustParsePrefix("8.8.8.0/24"), attrs3); ok {
		t.Error("default deny not applied")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"no router", `neighbor 65001 { }`, "missing router"},
		{"unknown top", `bogus { }`, "unknown top-level"},
		{"bad as", `router { as hello }`, "bad number"},
		{"bad id", `router { id 1.2.3 }`, "invalid"},
		{"unknown router key", `router { color blue }`, "unknown router directive"},
		{"bad neighbor as", `router { as 1 } neighbor x { }`, "bad neighbor AS"},
		{"unknown neighbor key", `router { as 1 } neighbor 2 { frob 1 }`, "unknown neighbor directive"},
		{"undefined route-map", `router { as 1; id 1.1.1.1 } neighbor 2 { import nope }`, "unknown route-map"},
		{"undefined prefix-list", `router { as 1 } route-map m { term t { match prefix-list nope } }`, "unknown prefix-list"},
		{"bad mrai", `router { mrai banana }`, "bad mrai"},
		{"bad batch-delay", `router { batch-delay soon }`, "bad batch-delay"},
		{"bad batch-updates", `router { batch-updates many }`, "bad number"},
		{"bad shards", `router { shards few }`, "bad number"},
		{"bad prefix rule", `prefix-list p { frobnicate 10.0.0.0/8 } router { as 1 }`, "permit/deny"},
		{"bad ge", `prefix-list p { permit 10.0.0.0/8 ge x } router { as 1 }`, "bad ge"},
		{"bad community", `router { as 1 } route-map m { term t { set community zzz } }`, "bad community"},
		{"truncated block", `router { as 1`, "unexpected end"},
		{"bad action", `router { as 1 } route-map m { term t { action maybe } }`, "permit or deny"},
		// Unknown-directive rejection at every remaining nesting level: a
		// typo anywhere in a config must be a parse error, never silently
		// ignored policy.
		{"unknown route-map key", `router { as 1 } route-map m { frob t { } }`, "unknown route-map directive"},
		{"unknown term key", `router { as 1 } route-map m { term t { frob 1 } }`, "unknown term directive"},
		{"unknown match kind", `router { as 1 } route-map m { term t { match frob x } }`, "unknown match kind"},
		{"unknown set kind", `router { as 1 } route-map m { term t { set frob 1 } }`, "unknown set kind"},
		{"unknown prefix qualifier", `prefix-list p { permit 10.0.0.0/8 frob 9 } router { as 1 }`, "unknown qualifier"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("%s: parse succeeded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestMinimalConfig(t *testing.T) {
	cfg, err := Parse(`router { as 65000; id 1.1.1.1 }`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AS != 65000 || len(cfg.Neighbors) != 0 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestCommentsAndSeparators(t *testing.T) {
	cfg, err := Parse(`
# leading comment
router {
    as 65000 # trailing comment
    id 1.1.1.1;
};
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AS != 65000 || cfg.ID != netaddr.MustParseAddr("1.1.1.1") {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestASPathPatternDirective(t *testing.T) {
	cfg, err := Parse(`
router { as 65000; id 1.1.1.1 }
route-map m {
    term t { match as-path "^65001 .* 13$"; action deny }
    default permit
}
neighbor 65001 { import m }
`)
	if err != nil {
		t.Fatal(err)
	}
	imp := cfg.Neighbors[0].Import
	attrs := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001, 5, 13), netaddr.MustParseAddr("9.9.9.9"))
	if _, ok := imp.Apply(netaddr.MustParsePrefix("8.8.8.0/24"), attrs); ok {
		t.Error("matching path should be denied")
	}
	attrs2 := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(65001, 5, 14), netaddr.MustParseAddr("9.9.9.9"))
	if _, ok := imp.Apply(netaddr.MustParsePrefix("8.8.8.0/24"), attrs2); !ok {
		t.Error("non-matching path should fall to default permit")
	}
}

func TestBadASPathPatternDirective(t *testing.T) {
	_, err := Parse(`
router { as 65000 }
route-map m { term t { match as-path "not-a-pattern" } }
`)
	if err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestBatchDirectivesDisable(t *testing.T) {
	cfg, err := Parse(`
router { as 65000; id 1.1.1.1; batch-updates -1; batch-delay -1us }
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BatchMaxUpdates != -1 || cfg.BatchMaxDelay != -time.Microsecond {
		t.Fatalf("negative knobs not preserved: %+v", cfg)
	}
}

func TestMaxPrefixesDirective(t *testing.T) {
	cfg, err := Parse(`
router { as 65000; id 1.1.1.1 }
neighbor 65001 { max-prefixes 50000 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Neighbors[0].MaxPrefixes != 50000 {
		t.Fatalf("MaxPrefixes = %d", cfg.Neighbors[0].MaxPrefixes)
	}
}
