// Package config parses the router daemon's configuration file: a flat,
// section-based text format (in the spirit of classic router configs)
// declaring the local speaker, its neighbours, per-neighbour policies,
// and optional features like flap damping and MRAI.
//
// Example:
//
//	router {
//	    as 65000
//	    id 10.0.0.1
//	    listen 0.0.0.0:179
//	    fib patricia
//	    shards 4
//	    batch-updates 256
//	    batch-delay 200us
//	    mrai 30s
//	    damping
//	    update-groups
//	}
//
//	neighbor 65001 {
//	    import deny-bogons
//	    export prepend-once
//	    max-prefixes 500000
//	}
//
//	prefix-list bogons {
//	    permit 10.0.0.0/8 ge 8 le 32
//	    permit 192.168.0.0/16 ge 16 le 32
//	}
//
//	route-map deny-bogons {
//	    term drop { match prefix-list bogons; action deny }
//	    default permit
//	}
//
//	route-map prepend-once {
//	    term pad { set prepend 65000 1; action permit }
//	    default permit
//	}
//
// Match directives: prefix-list, as-contains, neighbor-as, max-path-len,
// community, and as-path "pattern" (quoted; see policy.ASPathPattern).
// Set directives: local-pref, med, prepend, community.
package config

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/damping"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/wire"
)

// Parse reads a configuration document and builds the router Config.
func Parse(text string) (core.Config, error) {
	p := &parser{
		prefixLists: map[string]*policy.PrefixList{},
		routeMaps:   map[string]*policy.RouteMap{},
	}
	if err := p.run(text); err != nil {
		return core.Config{}, err
	}
	return p.finish()
}

type neighborDecl struct {
	as          uint32
	importName  string
	exportName  string
	dialTarget  string
	maxPrefixes int
	line        int
}

type parser struct {
	cfg         core.Config
	neighbors   []neighborDecl
	prefixLists map[string]*policy.PrefixList
	routeMaps   map[string]*policy.RouteMap
	sawRouter   bool
}

// tokenize splits the document into tokens, treating braces and
// semicolons as separators and '#' as a to-end-of-line comment.
func tokenize(text string) []token {
	var out []token
	line := 1
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(text) && text[i] != '\n' {
				i++
			}
		case c == '{' || c == '}' || c == ';':
			out = append(out, token{text: string(c), line: line})
			i++
		case c == '"':
			j := i + 1
			for j < len(text) && text[j] != '"' && text[j] != '\n' {
				j++
			}
			out = append(out, token{text: text[i+1 : j], line: line})
			if j < len(text) && text[j] == '"' {
				j++
			}
			i = j
		default:
			j := i
			for j < len(text) && !strings.ContainsRune(" \t\r\n{};#", rune(text[j])) {
				j++
			}
			out = append(out, token{text: text[i:j], line: line})
			i = j
		}
	}
	return out
}

type token struct {
	text string
	line int
}

type tokens struct {
	list []token
	pos  int
}

func (t *tokens) peek() (token, bool) {
	if t.pos >= len(t.list) {
		return token{}, false
	}
	return t.list[t.pos], true
}

func (t *tokens) next() (token, bool) {
	tok, ok := t.peek()
	if ok {
		t.pos++
	}
	return tok, ok
}

func (t *tokens) expect(text string) error {
	tok, ok := t.next()
	if !ok {
		return fmt.Errorf("config: unexpected end of input, expected %q", text)
	}
	if tok.text != text {
		return fmt.Errorf("config: line %d: expected %q, got %q", tok.line, text, tok.text)
	}
	return nil
}

func (p *parser) run(text string) error {
	ts := &tokens{list: tokenize(text)}
	for {
		tok, ok := ts.next()
		if !ok {
			return nil
		}
		switch tok.text {
		case "router":
			if err := p.parseRouter(ts); err != nil {
				return err
			}
		case "neighbor":
			if err := p.parseNeighbor(ts); err != nil {
				return err
			}
		case "prefix-list":
			if err := p.parsePrefixList(ts); err != nil {
				return err
			}
		case "route-map":
			if err := p.parseRouteMap(ts); err != nil {
				return err
			}
		case ";":
			// stray separator
		default:
			return fmt.Errorf("config: line %d: unknown top-level directive %q", tok.line, tok.text)
		}
	}
}

// statement reads tokens until ';', '}' (not consumed), or end of line
// group; it returns nil at the closing brace.
func statement(ts *tokens) ([]token, bool, error) {
	var stmt []token
	for {
		tok, ok := ts.peek()
		if !ok {
			return nil, false, fmt.Errorf("config: unexpected end of input inside block")
		}
		if tok.text == "}" {
			if len(stmt) > 0 {
				return stmt, true, nil
			}
			ts.next()
			return nil, false, nil
		}
		ts.next()
		if tok.text == ";" {
			if len(stmt) > 0 {
				return stmt, true, nil
			}
			continue
		}
		if tok.text == "{" {
			return nil, false, fmt.Errorf("config: line %d: unexpected '{'", tok.line)
		}
		stmt = append(stmt, tok)
		// A statement also ends at a line break: detect via next token's
		// line number.
		if nxt, ok := ts.peek(); ok && nxt.line != tok.line && nxt.text != "{" {
			return stmt, true, nil
		}
	}
}

func (p *parser) parseRouter(ts *tokens) error {
	if err := ts.expect("{"); err != nil {
		return err
	}
	p.sawRouter = true
	for {
		stmt, ok, err := statement(ts)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		key := stmt[0]
		args := stmt[1:]
		switch key.text {
		case "as":
			v, err := argUint32(key, args)
			if err != nil {
				return err
			}
			p.cfg.AS = v
		case "id":
			a, err := argAddr(key, args)
			if err != nil {
				return err
			}
			p.cfg.ID = a
		case "next-hop":
			a, err := argAddr(key, args)
			if err != nil {
				return err
			}
			p.cfg.NextHop = a
		case "next-hop6":
			a, err := argAddr(key, args)
			if err != nil {
				return err
			}
			p.cfg.NextHop6 = a
		case "listen":
			s, err := argOne(key, args)
			if err != nil {
				return err
			}
			p.cfg.ListenAddr = s
		case "fib":
			s, err := argOne(key, args)
			if err != nil {
				return err
			}
			p.cfg.FIBEngine = s
		case "hold-time":
			v, err := argUint16(key, args)
			if err != nil {
				return err
			}
			p.cfg.HoldTime = v
		case "mrai":
			s, err := argOne(key, args)
			if err != nil {
				return err
			}
			d, err := time.ParseDuration(s)
			if err != nil {
				return fmt.Errorf("config: line %d: bad mrai %q: %v", key.line, s, err)
			}
			p.cfg.MRAI = d
		case "damping":
			p.cfg.Damping = &damping.Config{}
		case "update-groups":
			p.cfg.UpdateGroups = true
		case "export-batch":
			v, err := argInt(key, args)
			if err != nil {
				return err
			}
			p.cfg.ExportBatch = v
		case "shards":
			v, err := argInt(key, args)
			if err != nil {
				return err
			}
			p.cfg.Shards = v
		case "batch-updates":
			v, err := argInt(key, args)
			if err != nil {
				return err
			}
			p.cfg.BatchMaxUpdates = v
		case "batch-delay":
			s, err := argOne(key, args)
			if err != nil {
				return err
			}
			d, err := time.ParseDuration(s)
			if err != nil {
				return fmt.Errorf("config: line %d: bad batch-delay %q: %v", key.line, s, err)
			}
			p.cfg.BatchMaxDelay = d
		default:
			return fmt.Errorf("config: line %d: unknown router directive %q", key.line, key.text)
		}
	}
}

func (p *parser) parseNeighbor(ts *tokens) error {
	tok, ok := ts.next()
	if !ok {
		return fmt.Errorf("config: neighbor missing AS")
	}
	as, err := strconv.ParseUint(tok.text, 10, 32)
	if err != nil {
		return fmt.Errorf("config: line %d: bad neighbor AS %q", tok.line, tok.text)
	}
	decl := neighborDecl{as: uint32(as), line: tok.line}
	if err := ts.expect("{"); err != nil {
		return err
	}
	for {
		stmt, ok, err := statement(ts)
		if err != nil {
			return err
		}
		if !ok {
			p.neighbors = append(p.neighbors, decl)
			return nil
		}
		key := stmt[0]
		args := stmt[1:]
		switch key.text {
		case "import":
			decl.importName, err = argOne(key, args)
		case "export":
			decl.exportName, err = argOne(key, args)
		case "dial":
			decl.dialTarget, err = argOne(key, args)
		case "max-prefixes":
			decl.maxPrefixes, err = argInt(key, args)
		default:
			return fmt.Errorf("config: line %d: unknown neighbor directive %q", key.line, key.text)
		}
		if err != nil {
			return err
		}
	}
}

func (p *parser) parsePrefixList(ts *tokens) error {
	name, ok := ts.next()
	if !ok {
		return fmt.Errorf("config: prefix-list missing name")
	}
	if err := ts.expect("{"); err != nil {
		return err
	}
	pl := &policy.PrefixList{Name: name.text}
	for {
		stmt, ok, err := statement(ts)
		if err != nil {
			return err
		}
		if !ok {
			p.prefixLists[name.text] = pl
			return nil
		}
		rule, err := parsePrefixRule(stmt)
		if err != nil {
			return err
		}
		pl.Rules = append(pl.Rules, rule)
	}
}

// parsePrefixRule parses "permit|deny <prefix> [ge N] [le N]".
func parsePrefixRule(stmt []token) (policy.PrefixRule, error) {
	var rule policy.PrefixRule
	switch stmt[0].text {
	case "permit":
		rule.Action = policy.Permit
	case "deny":
		rule.Action = policy.Deny
	default:
		return rule, fmt.Errorf("config: line %d: prefix-list rule must start with permit/deny", stmt[0].line)
	}
	if len(stmt) < 2 {
		return rule, fmt.Errorf("config: line %d: prefix-list rule missing prefix", stmt[0].line)
	}
	pfx, err := netaddr.ParsePrefix(stmt[1].text)
	if err != nil {
		return rule, fmt.Errorf("config: line %d: %v", stmt[1].line, err)
	}
	rule.Prefix = pfx
	maxLen := pfx.Addr().Bits()
	rest := stmt[2:]
	for len(rest) >= 2 {
		v, err := strconv.Atoi(rest[1].text)
		if err != nil || v < 0 || v > maxLen {
			return rule, fmt.Errorf("config: line %d: bad %s bound %q", rest[0].line, rest[0].text, rest[1].text)
		}
		switch rest[0].text {
		case "ge":
			rule.GE = v
		case "le":
			rule.LE = v
		default:
			return rule, fmt.Errorf("config: line %d: unknown qualifier %q", rest[0].line, rest[0].text)
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		return rule, fmt.Errorf("config: line %d: trailing tokens in prefix rule", rest[0].line)
	}
	return rule, nil
}

func (p *parser) parseRouteMap(ts *tokens) error {
	name, ok := ts.next()
	if !ok {
		return fmt.Errorf("config: route-map missing name")
	}
	if err := ts.expect("{"); err != nil {
		return err
	}
	rm := &policy.RouteMap{Name: name.text}
	for {
		tok, ok := ts.next()
		if !ok {
			return fmt.Errorf("config: route-map %s: unexpected end of input", name.text)
		}
		switch tok.text {
		case "}":
			p.routeMaps[name.text] = rm
			return nil
		case ";":
		case "default":
			val, ok := ts.next()
			if !ok || (val.text != "permit" && val.text != "deny") {
				return fmt.Errorf("config: line %d: default must be permit or deny", tok.line)
			}
			rm.DefaultPermit = val.text == "permit"
		case "term":
			term, err := p.parseTerm(ts)
			if err != nil {
				return err
			}
			rm.Terms = append(rm.Terms, term)
		default:
			return fmt.Errorf("config: line %d: unknown route-map directive %q", tok.line, tok.text)
		}
	}
}

func (p *parser) parseTerm(ts *tokens) (policy.Term, error) {
	var term policy.Term
	name, ok := ts.next()
	if !ok {
		return term, fmt.Errorf("config: term missing name")
	}
	term.Name = name.text
	term.Action = policy.Permit
	if err := ts.expect("{"); err != nil {
		return term, err
	}
	for {
		stmt, ok, err := statement(ts)
		if err != nil {
			return term, err
		}
		if !ok {
			return term, nil
		}
		key := stmt[0]
		args := stmt[1:]
		switch key.text {
		case "match":
			if err := p.parseMatch(&term.Match, key, args); err != nil {
				return term, err
			}
		case "set":
			if err := parseSet(&term.Set, key, args); err != nil {
				return term, err
			}
		case "action":
			s, err := argOne(key, args)
			if err != nil {
				return term, err
			}
			switch s {
			case "permit":
				term.Action = policy.Permit
			case "deny":
				term.Action = policy.Deny
			default:
				return term, fmt.Errorf("config: line %d: action must be permit or deny", key.line)
			}
		default:
			return term, fmt.Errorf("config: line %d: unknown term directive %q", key.line, key.text)
		}
	}
}

func (p *parser) parseMatch(m *policy.Match, key token, args []token) error {
	if len(args) < 1 {
		return fmt.Errorf("config: line %d: match needs a kind", key.line)
	}
	kind := args[0].text
	rest := args[1:]
	switch kind {
	case "prefix-list":
		name, err := argOne(args[0], rest)
		if err != nil {
			return err
		}
		pl, ok := p.prefixLists[name]
		if !ok {
			return fmt.Errorf("config: line %d: unknown prefix-list %q (define it before use)", key.line, name)
		}
		m.PrefixList = pl
	case "as-contains":
		v, err := argUint32(args[0], rest)
		if err != nil {
			return err
		}
		if m.ASPath == nil {
			m.ASPath = &policy.ASPathCond{}
		}
		m.ASPath.Contains = append(m.ASPath.Contains, v)
	case "neighbor-as":
		v, err := argUint32(args[0], rest)
		if err != nil {
			return err
		}
		if m.ASPath == nil {
			m.ASPath = &policy.ASPathCond{}
		}
		m.ASPath.NeighborAS = v
	case "max-path-len":
		v, err := argInt(args[0], rest)
		if err != nil {
			return err
		}
		if m.ASPath == nil {
			m.ASPath = &policy.ASPathCond{}
		}
		m.ASPath.MaxLen = v
	case "community":
		s, err := argOne(args[0], rest)
		if err != nil {
			return err
		}
		c, err := parseCommunity(s)
		if err != nil {
			return fmt.Errorf("config: line %d: %v", key.line, err)
		}
		m.Community = append(m.Community, c)
	case "as-path":
		s, err := argOne(args[0], rest)
		if err != nil {
			return err
		}
		pat, err := policy.CompileASPathPattern(s)
		if err != nil {
			return fmt.Errorf("config: line %d: %v", key.line, err)
		}
		if m.ASPath == nil {
			m.ASPath = &policy.ASPathCond{}
		}
		m.ASPath.Pattern = pat
	default:
		return fmt.Errorf("config: line %d: unknown match kind %q", key.line, kind)
	}
	return nil
}

func parseSet(s *policy.Set, key token, args []token) error {
	if len(args) < 1 {
		return fmt.Errorf("config: line %d: set needs a kind", key.line)
	}
	kind := args[0].text
	rest := args[1:]
	switch kind {
	case "local-pref":
		v, err := argUint32(args[0], rest)
		if err != nil {
			return err
		}
		s.LocalPref = &v
	case "med":
		v, err := argUint32(args[0], rest)
		if err != nil {
			return err
		}
		s.MED = &v
	case "prepend":
		if len(rest) != 2 {
			return fmt.Errorf("config: line %d: set prepend needs AS and count", key.line)
		}
		asn, err := strconv.ParseUint(rest[0].text, 10, 32)
		if err != nil {
			return fmt.Errorf("config: line %d: bad prepend AS", rest[0].line)
		}
		count, err := strconv.Atoi(rest[1].text)
		if err != nil || count < 1 {
			return fmt.Errorf("config: line %d: bad prepend count", rest[1].line)
		}
		s.PrependAS = uint32(asn)
		s.PrependCount = count
	case "community":
		str, err := argOne(args[0], rest)
		if err != nil {
			return err
		}
		c, err := parseCommunity(str)
		if err != nil {
			return fmt.Errorf("config: line %d: %v", key.line, err)
		}
		s.AddCommunity = append(s.AddCommunity, c)
	default:
		return fmt.Errorf("config: line %d: unknown set kind %q", key.line, kind)
	}
	return nil
}

func parseCommunity(s string) (wire.Community, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, fmt.Errorf("bad community %q (want asn:value)", s)
	}
	a, err1 := strconv.ParseUint(parts[0], 10, 16)
	v, err2 := strconv.ParseUint(parts[1], 10, 16)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("bad community %q", s)
	}
	return wire.Community(uint32(a)<<16 | uint32(v)), nil
}

func (p *parser) finish() (core.Config, error) {
	if !p.sawRouter {
		return core.Config{}, fmt.Errorf("config: missing router block")
	}
	for _, d := range p.neighbors {
		n := core.NeighborConfig{AS: d.as, DialTarget: d.dialTarget, MaxPrefixes: d.maxPrefixes}
		if d.importName != "" {
			rm, ok := p.routeMaps[d.importName]
			if !ok {
				return core.Config{}, fmt.Errorf("config: line %d: unknown route-map %q", d.line, d.importName)
			}
			n.Import = rm
		}
		if d.exportName != "" {
			rm, ok := p.routeMaps[d.exportName]
			if !ok {
				return core.Config{}, fmt.Errorf("config: line %d: unknown route-map %q", d.line, d.exportName)
			}
			n.Export = rm
		}
		p.cfg.Neighbors = append(p.cfg.Neighbors, n)
	}
	return p.cfg, nil
}

// --- small argument helpers ---

func argOne(key token, args []token) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("config: line %d: %s takes exactly one argument", key.line, key.text)
	}
	return args[0].text, nil
}

func argInt(key token, args []token) (int, error) {
	s, err := argOne(key, args)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("config: line %d: bad number %q", key.line, s)
	}
	return v, nil
}

func argUint16(key token, args []token) (uint16, error) {
	s, err := argOne(key, args)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("config: line %d: bad number %q", key.line, s)
	}
	return uint16(v), nil
}

func argUint32(key token, args []token) (uint32, error) {
	s, err := argOne(key, args)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("config: line %d: bad number %q", key.line, s)
	}
	return uint32(v), nil
}

func argAddr(key token, args []token) (netaddr.Addr, error) {
	s, err := argOne(key, args)
	if err != nil {
		return netaddr.Addr{}, err
	}
	a, err := netaddr.ParseAddr(s)
	if err != nil {
		return netaddr.Addr{}, fmt.Errorf("config: line %d: %v", key.line, err)
	}
	return a, nil
}
