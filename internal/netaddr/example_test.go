package netaddr_test

import (
	"fmt"

	"bgpbench/internal/netaddr"
)

func ExampleParsePrefix() {
	p, _ := netaddr.ParsePrefix("10.1.2.3/16")
	fmt.Println(p) // masked to the network address
	fmt.Println(p.Contains(netaddr.MustParseAddr("10.1.9.9")))
	fmt.Println(p.Contains(netaddr.MustParseAddr("10.2.0.1")))
	// Output:
	// 10.1.0.0/16
	// true
	// false
}

func ExamplePrefix_AppendWire() {
	p := netaddr.MustParsePrefix("192.168.0.0/16")
	fmt.Printf("% x\n", p.AppendWire(nil))
	// Output:
	// 10 c0 a8
}
