// Package netaddr provides the address and CIDR prefix types used
// throughout the BGP benchmark. It is a small, allocation-free substrate:
// an Addr is a family-tagged 128-bit value (IPv4 occupies the top 32
// bits), a Prefix is an (address, length) pair stored masked, and both are
// comparable with ==, which keeps RIB and FIB data structures compact and
// usable as map keys for either family without boxing.
//
// Address bits are stored left-justified: bit 0 is the most significant
// bit of hi for both families. That one invariant makes every bit-level
// operation (Bit, Masked, CommonPrefixLen, the FIB engines' stride
// extraction) family-generic — the IPv4 fast path is the same code run
// over the top 32 bits.
package netaddr

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Family is an address family: IPv4 or IPv6. The zero value is IPv4, so
// zero-valued Addr and Prefix keep their historical IPv4 meaning.
type Family uint8

// The two supported address families.
const (
	FamilyV4 Family = 0
	FamilyV6 Family = 1
)

// Families lists both families in canonical (v4 first) order, the
// iteration order used wherever per-family state is walked.
var Families = [2]Family{FamilyV4, FamilyV6}

// Bits returns the address width of the family: 32 or 128.
func (f Family) Bits() int {
	if f == FamilyV6 {
		return 128
	}
	return 32
}

// AFI returns the IANA address-family identifier (RFC 4760): 1 for IPv4,
// 2 for IPv6.
func (f Family) AFI() uint16 {
	if f == FamilyV6 {
		return 2
	}
	return 1
}

// String names the family "v4" or "v6".
func (f Family) String() string {
	if f == FamilyV6 {
		return "v6"
	}
	return "v4"
}

// FamilyFromAFI maps an IANA AFI onto a Family, reporting whether the AFI
// is one of the two supported.
func FamilyFromAFI(afi uint16) (Family, bool) {
	switch afi {
	case 1:
		return FamilyV4, true
	case 2:
		return FamilyV6, true
	}
	return FamilyV4, false
}

// Addr is an IP address of either family. Bits are left-justified in
// (hi, lo): an IPv4 address occupies the top 32 bits of hi with lo zero.
// The zero value is IPv4 0.0.0.0. Addr is comparable with ==.
type Addr struct {
	hi, lo uint64
	fam    Family
}

// AddrFrom4 assembles an IPv4 Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return AddrFromV4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// AddrFromV4 builds an IPv4 Addr from its 32-bit host-byte-order value
// (the most significant byte is the first octet).
func AddrFromV4(v uint32) Addr {
	return Addr{hi: uint64(v) << 32}
}

// AddrFrom128 builds an IPv6 Addr from its two left-justified 64-bit
// halves.
func AddrFrom128(hi, lo uint64) Addr {
	return Addr{hi: hi, lo: lo, fam: FamilyV6}
}

// ZeroAddr returns the all-zeros address of the given family.
func ZeroAddr(f Family) Addr {
	return Addr{fam: f}
}

// AddrFrom16 builds an IPv6 Addr from its 16-byte big-endian form.
func AddrFrom16(b [16]byte) Addr {
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[8+i])
	}
	return AddrFrom128(hi, lo)
}

// AddrFromBytes reads a big-endian address: 4 bytes for IPv4, 16 for
// IPv6. It panics on any other length; callers are expected to have
// validated lengths (wire parsers validate before calling).
func AddrFromBytes(b []byte) Addr {
	switch len(b) {
	case 4:
		return AddrFrom4(b[0], b[1], b[2], b[3])
	case 16:
		var a [16]byte
		copy(a[:], b)
		return AddrFrom16(a)
	}
	panic(fmt.Sprintf("netaddr: AddrFromBytes on %d bytes (want 4 or 16)", len(b)))
}

// ParseAddr parses dotted-quad IPv4 ("192.0.2.1") or colon-grouped IPv6
// ("2001:db8::1") notation; any string containing a colon is parsed as
// IPv6.
func ParseAddr(s string) (Addr, error) {
	if strings.IndexByte(s, ':') >= 0 {
		return parseAddr6(s)
	}
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return Addr{}, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
	}
	var out uint32
	for _, p := range parts {
		if p == "" || (len(p) > 1 && p[0] == '0') {
			return Addr{}, fmt.Errorf("netaddr: invalid IPv4 octet %q in %q", p, s)
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return Addr{}, fmt.Errorf("netaddr: invalid IPv4 octet %q in %q", p, s)
		}
		out = out<<8 | uint32(v)
	}
	return AddrFromV4(out), nil
}

// parseAddr6 parses the hex-group IPv6 forms of RFC 4291 section 2.2
// (with at most one "::"); the embedded-IPv4 form is not supported.
func parseAddr6(s string) (Addr, error) {
	bad := func() (Addr, error) {
		return Addr{}, fmt.Errorf("netaddr: invalid IPv6 address %q", s)
	}
	var head, tail []uint16
	parseGroups := func(part string, dst *[]uint16) bool {
		if part == "" {
			return true
		}
		for _, g := range strings.Split(part, ":") {
			if g == "" || len(g) > 4 {
				return false
			}
			v, err := strconv.ParseUint(g, 16, 16)
			if err != nil {
				return false
			}
			*dst = append(*dst, uint16(v))
		}
		return true
	}
	if i := strings.Index(s, "::"); i >= 0 {
		if strings.Contains(s[i+2:], "::") {
			return bad()
		}
		if !parseGroups(s[:i], &head) || !parseGroups(s[i+2:], &tail) {
			return bad()
		}
		if len(head)+len(tail) > 7 {
			return bad()
		}
	} else {
		if !parseGroups(s, &head) || len(head) != 8 {
			return bad()
		}
	}
	var groups [8]uint16
	copy(groups[:], head)
	copy(groups[8-len(tail):], tail)
	var hi, lo uint64
	for i := 0; i < 4; i++ {
		hi = hi<<16 | uint64(groups[i])
		lo = lo<<16 | uint64(groups[4+i])
	}
	return AddrFrom128(hi, lo), nil
}

// MustParseAddr is ParseAddr for statically known inputs; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Family returns the address family.
func (a Addr) Family() Family { return a.fam }

// Is4 reports whether the address is IPv4.
func (a Addr) Is4() bool { return a.fam == FamilyV4 }

// Is6 reports whether the address is IPv6.
func (a Addr) Is6() bool { return a.fam == FamilyV6 }

// Bits returns the address width: 32 for IPv4, 128 for IPv6.
func (a Addr) Bits() int { return a.fam.Bits() }

// IsZero reports whether the address is the zero address of its family
// (0.0.0.0 or ::).
func (a Addr) IsZero() bool { return a.hi == 0 && a.lo == 0 }

// V4 returns the 32-bit host-byte-order value of an IPv4 address. It is
// the one escape hatch back to raw integer arithmetic, and the afifamily
// lint restricts its use outside this package to justified sites; prefer
// the family-generic accessors.
func (a Addr) V4() uint32 { return uint32(a.hi >> 32) }

// Hi returns the top 64 address bits (left-justified).
func (a Addr) Hi() uint64 { return a.hi }

// Lo returns the bottom 64 address bits (left-justified; always zero for
// IPv4).
func (a Addr) Lo() uint64 { return a.lo }

// Octets returns the four octets of an IPv4 address.
func (a Addr) Octets() (byte, byte, byte, byte) {
	v := a.V4()
	return byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)
}

// Bytes returns the big-endian representation: 4 bytes for IPv4, 16 for
// IPv6.
func (a Addr) Bytes() []byte {
	return a.AppendBytes(nil)
}

// AppendBytes appends the big-endian representation (4 or 16 bytes) to dst.
func (a Addr) AppendBytes(dst []byte) []byte {
	if a.Is4() {
		o1, o2, o3, o4 := a.Octets()
		return append(dst, o1, o2, o3, o4)
	}
	for i := 56; i >= 0; i -= 8 {
		dst = append(dst, byte(a.hi>>uint(i)))
	}
	for i := 56; i >= 0; i -= 8 {
		dst = append(dst, byte(a.lo>>uint(i)))
	}
	return dst
}

// String renders dotted-quad notation for IPv4 and RFC 5952 canonical
// form (lowercase hex, longest zero run compressed) for IPv6.
func (a Addr) String() string {
	if a.Is4() {
		o1, o2, o3, o4 := a.Octets()
		return fmt.Sprintf("%d.%d.%d.%d", o1, o2, o3, o4)
	}
	var groups [8]uint16
	for i := 0; i < 4; i++ {
		groups[i] = uint16(a.hi >> uint(48-16*i))
		groups[4+i] = uint16(a.lo >> uint(48-16*i))
	}
	// Longest run of zero groups, length >= 2, earliest wins (RFC 5952).
	runStart, runLen := -1, 0
	for i := 0; i < 8; {
		if groups[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && groups[j] == 0 {
			j++
		}
		if j-i > runLen {
			runStart, runLen = i, j-i
		}
		i = j
	}
	if runLen < 2 {
		runStart = -1
	}
	var sb strings.Builder
	for i := 0; i < 8; i++ {
		if i == runStart {
			sb.WriteString("::")
			i += runLen - 1
			continue
		}
		if i > 0 && !(runStart >= 0 && i == runStart+runLen) {
			sb.WriteByte(':')
		}
		sb.WriteString(strconv.FormatUint(uint64(groups[i]), 16))
	}
	return sb.String()
}

// Bit returns the i-th most significant bit (i in [0, Bits())).
func (a Addr) Bit(i int) int {
	if i < 64 {
		return int(a.hi>>(63-uint(i))) & 1
	}
	return int(a.lo>>(127-uint(i))) & 1
}

// SetBit returns the address with the i-th most significant bit set.
func (a Addr) SetBit(i int) Addr {
	if i < 64 {
		a.hi |= 1 << (63 - uint(i))
	} else {
		a.lo |= 1 << (127 - uint(i))
	}
	return a
}

// Masked returns the address with all bits past the first length cleared
// (the network address of the /length containing a). Lengths outside
// [0, Bits()] are clamped.
func (a Addr) Masked(length int) Addr {
	if length <= 0 {
		return Addr{fam: a.fam}
	}
	if length >= a.Bits() {
		return a
	}
	if length <= 64 {
		a.hi &= ^uint64(0) << (64 - uint(length))
		a.lo = 0
	} else {
		a.lo &= ^uint64(0) << (128 - uint(length))
	}
	return a
}

// CommonPrefixLen returns the number of leading bits a and b share, up to
// the family width. Addresses of different families share no bits.
func (a Addr) CommonPrefixLen(b Addr) int {
	if a.fam != b.fam {
		return 0
	}
	n := bits.LeadingZeros64(a.hi ^ b.hi)
	if n == 64 {
		n += bits.LeadingZeros64(a.lo ^ b.lo)
	}
	if max := a.Bits(); n > max {
		n = max
	}
	return n
}

// Compare orders addresses by family (IPv4 before IPv6), then
// numerically. It returns -1, 0, or +1.
func (a Addr) Compare(b Addr) int {
	switch {
	case a.fam != b.fam:
		if a.fam < b.fam {
			return -1
		}
		return 1
	case a.hi != b.hi:
		if a.hi < b.hi {
			return -1
		}
		return 1
	case a.lo != b.lo:
		if a.lo < b.lo {
			return -1
		}
		return 1
	}
	return 0
}

// Less reports whether a orders before b (family first, then value).
func (a Addr) Less(b Addr) bool { return a.Compare(b) < 0 }

// ErrBadPrefix reports a syntactically or semantically invalid prefix.
var ErrBadPrefix = errors.New("netaddr: invalid prefix")

// Prefix is a CIDR prefix of either family. The address component is
// stored already masked to the prefix length, so Prefix values compare
// with == (and differ across families even at equal bit patterns, since
// the address carries its family tag).
type Prefix struct {
	addr Addr
	len  uint8
}

// PrefixFrom builds a prefix, masking the address to the given length.
// Lengths outside [0, a.Bits()] are clamped.
func PrefixFrom(a Addr, length int) Prefix {
	if length < 0 {
		length = 0
	}
	if max := a.Bits(); length > max {
		length = max
	}
	return Prefix{addr: a.Masked(length), len: uint8(length)}
}

// ParsePrefix parses "addr/len" notation for either family.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: missing '/' in %q", ErrBadPrefix, s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %v", ErrBadPrefix, err)
	}
	l, err := strconv.Atoi(s[slash+1:])
	if err != nil || l < 0 || l > a.Bits() {
		return Prefix{}, fmt.Errorf("%w: bad length in %q", ErrBadPrefix, s)
	}
	return PrefixFrom(a, l), nil
}

// MustParsePrefix is ParsePrefix for statically known inputs; it panics on
// error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the (masked) network address.
func (p Prefix) Addr() Addr { return p.addr }

// Len returns the prefix length in bits.
func (p Prefix) Len() int { return int(p.len) }

// Family returns the prefix's address family.
func (p Prefix) Family() Family { return p.addr.fam }

// Bits returns the family address width: 32 or 128.
func (p Prefix) Bits() int { return p.addr.Bits() }

// Contains reports whether the address falls inside the prefix. An
// address of the other family never does.
func (p Prefix) Contains(a Addr) bool {
	return a.fam == p.addr.fam && a.Masked(int(p.len)) == p.addr
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.len <= q.len {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// String renders "addr/len".
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.addr, p.len)
}

// Compare orders prefixes by family (IPv4 before IPv6), then by address,
// then by length. It returns -1, 0, or +1. This is the canonical ordering
// used by RIB iteration so that update streams are deterministic.
func (p Prefix) Compare(q Prefix) int {
	if c := p.addr.Compare(q.addr); c != 0 {
		return c
	}
	switch {
	case p.len < q.len:
		return -1
	case p.len > q.len:
		return 1
	}
	return 0
}

// Sibling returns the prefix covering the adjacent half of the parent
// /(len-1): the same prefix with its last network bit flipped. The
// zero-length prefix is its own sibling.
func (p Prefix) Sibling() Prefix {
	if p.len == 0 {
		return p
	}
	a := p.addr
	i := int(p.len) - 1
	if i < 64 {
		a.hi ^= 1 << (63 - uint(i))
	} else {
		a.lo ^= 1 << (127 - uint(i))
	}
	return Prefix{addr: a, len: p.len}
}

// Host returns an address inside the prefix whose host bits are filled
// from the low bits of rnd (up to 64 host bits; any beyond stay zero).
// It is the deterministic "random host within prefix" helper the lookup
// workload generators use.
func (p Prefix) Host(rnd uint64) Addr {
	a := p.addr
	host := p.Bits() - int(p.len)
	if host <= 0 {
		return a
	}
	if host > 64 {
		host = 64
	}
	m := ^uint64(0)
	if host < 64 {
		m = 1<<uint(host) - 1
	}
	if a.Is4() {
		a.hi |= (rnd & m) << 32
	} else {
		a.lo |= rnd & m
	}
	return a
}

// WireLen returns the number of NLRI payload bytes needed to encode the
// prefix address ((len+7)/8), excluding the length octet itself.
func (p Prefix) WireLen() int {
	return (int(p.len) + 7) / 8
}

// AppendWire appends the RFC 4271 NLRI encoding (length octet followed by
// the minimal number of address bytes) to dst. The same encoding carries
// IPv6 prefixes inside MP_REACH_NLRI/MP_UNREACH_NLRI (RFC 4760); the
// address family is identified by the surrounding attribute's AFI.
func (p Prefix) AppendWire(dst []byte) []byte {
	dst = append(dst, p.len)
	n := p.WireLen()
	a := p.addr
	for i := 0; i < n; i++ {
		var b byte
		if i < 8 {
			b = byte(a.hi >> uint(56-8*i))
		} else {
			b = byte(a.lo >> uint(120-8*i))
		}
		dst = append(dst, b)
	}
	return dst
}

// PrefixFromWire decodes one IPv4 NLRI entry from b, returning the prefix
// and the number of bytes consumed.
func PrefixFromWire(b []byte) (Prefix, int, error) {
	return PrefixFromWireFamily(b, FamilyV4)
}

// PrefixFromWireFamily decodes one NLRI entry of the given family from b
// (RFC 4271 for IPv4, RFC 4760 MP NLRI for IPv6), returning the prefix
// and the number of bytes consumed.
func PrefixFromWireFamily(b []byte, f Family) (Prefix, int, error) {
	if len(b) < 1 {
		return Prefix{}, 0, fmt.Errorf("%w: empty NLRI", ErrBadPrefix)
	}
	l := int(b[0])
	if l > f.Bits() {
		return Prefix{}, 0, fmt.Errorf("%w: NLRI length %d > %d", ErrBadPrefix, l, f.Bits())
	}
	n := (l + 7) / 8
	if len(b) < 1+n {
		return Prefix{}, 0, fmt.Errorf("%w: truncated NLRI (need %d bytes, have %d)", ErrBadPrefix, 1+n, len(b))
	}
	var hi, lo uint64
	for i := 0; i < n; i++ {
		if i < 8 {
			hi |= uint64(b[1+i]) << uint(56-8*i)
		} else {
			lo |= uint64(b[1+i]) << uint(120-8*i)
		}
	}
	a := Addr{hi: hi, lo: lo, fam: f}
	return PrefixFrom(a, l), 1 + n, nil
}
