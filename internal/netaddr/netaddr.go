// Package netaddr provides IPv4 address and CIDR prefix types used
// throughout the BGP benchmark. It is a small, allocation-free substrate:
// addresses are uint32 values and prefixes are (address, length) pairs,
// which keeps RIB and FIB data structures compact and comparable.
package netaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order (the most significant byte is
// the first octet).
type Addr uint32

// AddrFrom4 assembles an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// AddrFromBytes reads a 4-byte big-endian slice. It panics if b is shorter
// than 4 bytes; callers are expected to have validated lengths.
func AddrFromBytes(b []byte) Addr {
	return AddrFrom4(b[0], b[1], b[2], b[3])
}

// ParseAddr parses dotted-quad notation ("192.0.2.1").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
	}
	var out Addr
	for _, p := range parts {
		if p == "" || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netaddr: invalid IPv4 octet %q in %q", p, s)
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("netaddr: invalid IPv4 octet %q in %q", p, s)
		}
		out = out<<8 | Addr(v)
	}
	return out, nil
}

// MustParseAddr is ParseAddr for statically known inputs; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four octets of the address.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// Bytes returns the 4-byte big-endian representation.
func (a Addr) Bytes() []byte {
	o1, o2, o3, o4 := a.Octets()
	return []byte{o1, o2, o3, o4}
}

// AppendBytes appends the big-endian representation to dst.
func (a Addr) AppendBytes(dst []byte) []byte {
	o1, o2, o3, o4 := a.Octets()
	return append(dst, o1, o2, o3, o4)
}

// String renders dotted-quad notation.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", o1, o2, o3, o4)
}

// Bit returns the i-th most significant bit (i in [0,31]).
func (a Addr) Bit(i int) int {
	return int(a>>(31-uint(i))) & 1
}

// Mask returns the network mask for a prefix length. Mask(0) is 0.
func Mask(length int) Addr {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return 0xFFFFFFFF
	}
	return Addr(0xFFFFFFFF << (32 - uint(length)))
}

// ErrBadPrefix reports a syntactically or semantically invalid prefix.
var ErrBadPrefix = errors.New("netaddr: invalid prefix")

// Prefix is an IPv4 CIDR prefix. The address component is stored already
// masked to the prefix length, so Prefix values compare with ==.
type Prefix struct {
	addr Addr
	len  uint8
}

// PrefixFrom builds a prefix, masking the address to the given length.
// Lengths outside [0,32] are clamped.
func PrefixFrom(a Addr, length int) Prefix {
	if length < 0 {
		length = 0
	}
	if length > 32 {
		length = 32
	}
	return Prefix{addr: a & Mask(length), len: uint8(length)}
}

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: missing '/' in %q", ErrBadPrefix, s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %v", ErrBadPrefix, err)
	}
	l, err := strconv.Atoi(s[slash+1:])
	if err != nil || l < 0 || l > 32 {
		return Prefix{}, fmt.Errorf("%w: bad length in %q", ErrBadPrefix, s)
	}
	return PrefixFrom(a, l), nil
}

// MustParsePrefix is ParsePrefix for statically known inputs; it panics on
// error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the (masked) network address.
func (p Prefix) Addr() Addr { return p.addr }

// Len returns the prefix length in bits.
func (p Prefix) Len() int { return int(p.len) }

// Contains reports whether the address falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&Mask(int(p.len)) == p.addr
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.len <= q.len {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// String renders "a.b.c.d/len".
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.addr, p.len)
}

// Compare orders prefixes first by address, then by length. It returns
// -1, 0, or +1. This is the canonical ordering used by RIB iteration so
// that update streams are deterministic.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.addr < q.addr:
		return -1
	case p.addr > q.addr:
		return 1
	case p.len < q.len:
		return -1
	case p.len > q.len:
		return 1
	}
	return 0
}

// WireLen returns the number of NLRI payload bytes needed to encode the
// prefix address ((len+7)/8), excluding the length octet itself.
func (p Prefix) WireLen() int {
	return (int(p.len) + 7) / 8
}

// AppendWire appends the RFC 4271 NLRI encoding (length octet followed by
// the minimal number of address bytes) to dst.
func (p Prefix) AppendWire(dst []byte) []byte {
	dst = append(dst, p.len)
	b := p.addr.Bytes()
	return append(dst, b[:p.WireLen()]...)
}

// PrefixFromWire decodes one NLRI entry from b, returning the prefix and the
// number of bytes consumed.
func PrefixFromWire(b []byte) (Prefix, int, error) {
	if len(b) < 1 {
		return Prefix{}, 0, fmt.Errorf("%w: empty NLRI", ErrBadPrefix)
	}
	l := int(b[0])
	if l > 32 {
		return Prefix{}, 0, fmt.Errorf("%w: NLRI length %d > 32", ErrBadPrefix, l)
	}
	n := (l + 7) / 8
	if len(b) < 1+n {
		return Prefix{}, 0, fmt.Errorf("%w: truncated NLRI (need %d bytes, have %d)", ErrBadPrefix, 1+n, len(b))
	}
	var a Addr
	for i := 0; i < n; i++ {
		a |= Addr(b[1+i]) << (24 - 8*uint(i))
	}
	return PrefixFrom(a, l), 1 + n, nil
}
