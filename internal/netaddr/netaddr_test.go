package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", AddrFromV4(0), true},
		{"255.255.255.255", AddrFromV4(0xFFFFFFFF), true},
		{"192.0.2.1", AddrFrom4(192, 0, 2, 1), true},
		{"10.0.0.1", AddrFrom4(10, 0, 0, 1), true},
		{"::", AddrFrom128(0, 0), true},
		{"::1", AddrFrom128(0, 1), true},
		{"2001:db8::1", AddrFrom128(0x20010db8<<32, 1), true},
		{"fe80::1:2", AddrFrom128(0xfe80<<48, 0x10002), true},
		{"1.2.3", Addr{}, false},
		{"1.2.3.4.5", Addr{}, false},
		{"256.0.0.1", Addr{}, false},
		{"-1.0.0.1", Addr{}, false},
		{"a.b.c.d", Addr{}, false},
		{"01.2.3.4", Addr{}, false},
		{"", Addr{}, false},
		{"1..2.3", Addr{}, false},
		{"::1::2", Addr{}, false},
		{"1:2:3:4:5:6:7:8:9", Addr{}, false},
		{"2001:zz::", Addr{}, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded; want error", c.in)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := AddrFromV4(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddr6StringRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := AddrFrom128(hi, lo)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrBytesRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := AddrFromV4(v)
		return AddrFromBytes(a.Bytes()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(hi, lo uint64) bool {
		a := AddrFrom128(hi, lo)
		return AddrFromBytes(a.Bytes()) == a
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrBit(t *testing.T) {
	a := MustParseAddr("128.0.0.1")
	if a.Bit(0) != 1 {
		t.Errorf("Bit(0) = %d, want 1", a.Bit(0))
	}
	if a.Bit(1) != 0 {
		t.Errorf("Bit(1) = %d, want 0", a.Bit(1))
	}
	if a.Bit(31) != 1 {
		t.Errorf("Bit(31) = %d, want 1", a.Bit(31))
	}
	b := MustParseAddr("8000::1")
	if b.Bit(0) != 1 || b.Bit(1) != 0 || b.Bit(127) != 1 || b.Bit(126) != 0 {
		t.Error("v6 Bit placement wrong")
	}
}

func TestAddrMasked(t *testing.T) {
	cases := []struct {
		addr string
		len  int
		want string
	}{
		{"255.255.255.255", 0, "0.0.0.0"},
		{"255.255.255.255", 8, "255.0.0.0"},
		{"10.1.2.3", 16, "10.1.0.0"},
		{"1.2.3.4", 32, "1.2.3.4"},
		{"2001:db8:ffff::1", 32, "2001:db8::"},
		{"2001:db8::ff", 128, "2001:db8::ff"},
		{"ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", 65, "ffff:ffff:ffff:ffff:8000::"},
	}
	for _, c := range cases {
		got := MustParseAddr(c.addr).Masked(c.len)
		if got != MustParseAddr(c.want) {
			t.Errorf("%s masked /%d = %v, want %s", c.addr, c.len, got, c.want)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.1.2.3/16")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "10.1.0.0/16" {
		t.Errorf("masking: got %s, want 10.1.0.0/16", got)
	}
	if p.Len() != 16 {
		t.Errorf("Len = %d, want 16", p.Len())
	}
	p6, err := ParsePrefix("2001:db8:ffff::1/32")
	if err != nil {
		t.Fatal(err)
	}
	if got := p6.String(); got != "2001:db8::/32" {
		t.Errorf("v6 masking: got %s, want 2001:db8::/32", got)
	}
	bad := []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "300.0.0.0/8", "2001:db8::/129"}
	for _, b := range bad {
		if _, err := ParsePrefix(b); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded; want error", b)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("192.168.0.0/16")
	if !p.Contains(MustParseAddr("192.168.42.1")) {
		t.Error("should contain 192.168.42.1")
	}
	if p.Contains(MustParseAddr("192.169.0.1")) {
		t.Error("should not contain 192.169.0.1")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("8.8.8.8")) {
		t.Error("default route should contain everything")
	}
	host := MustParsePrefix("1.2.3.4/32")
	if !host.Contains(MustParseAddr("1.2.3.4")) || host.Contains(MustParseAddr("1.2.3.5")) {
		t.Error("host route containment wrong")
	}
	p6 := MustParsePrefix("2001:db8::/32")
	if !p6.Contains(MustParseAddr("2001:db8::1")) || p6.Contains(MustParseAddr("2001:db9::1")) {
		t.Error("v6 containment wrong")
	}
	// A family mismatch is never contained, even at /0.
	if all.Contains(MustParseAddr("::1")) || MustParsePrefix("::/0").Contains(MustParseAddr("1.2.3.4")) {
		t.Error("cross-family containment must be false")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("10/8 and 10.1/16 should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("10/8 and 11/8 should not overlap")
	}
	if a.Overlaps(MustParsePrefix("::/0")) {
		t.Error("prefixes of different families never overlap")
	}
}

func TestPrefixCompare(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("shorter prefix should order first at same address")
	}
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("lower address should order first")
	}
	if a.Compare(a) != 0 {
		t.Error("Compare(self) != 0")
	}
	// All v4 prefixes order before all v6 prefixes.
	if MustParsePrefix("255.0.0.0/8").Compare(MustParsePrefix("::/0")) != -1 {
		t.Error("v4 should order before v6")
	}
}

func TestPrefixCompareIsTotalOrder(t *testing.T) {
	f := func(a1, a2 uint32, l1, l2 uint8) bool {
		p := PrefixFrom(AddrFromV4(a1), int(l1%33))
		q := PrefixFrom(AddrFromV4(a2), int(l2%33))
		// Antisymmetry and consistency with equality.
		if p.Compare(q) != -q.Compare(p) {
			return false
		}
		return (p.Compare(q) == 0) == (p == q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(h1, o1, h2, o2 uint64, l1, l2 uint8) bool {
		p := PrefixFrom(AddrFrom128(h1, o1), int(l1%129))
		q := PrefixFrom(AddrFrom128(h2, o2), int(l2%129))
		if p.Compare(q) != -q.Compare(p) {
			return false
		}
		return (p.Compare(q) == 0) == (p == q)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixWireRoundTrip(t *testing.T) {
	f := func(a uint32, l uint8) bool {
		p := PrefixFrom(AddrFromV4(a), int(l%33))
		buf := p.AppendWire(nil)
		q, n, err := PrefixFromWire(buf)
		return err == nil && n == len(buf) && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(hi, lo uint64, l uint8) bool {
		p := PrefixFrom(AddrFrom128(hi, lo), int(l%129))
		buf := p.AppendWire(nil)
		q, n, err := PrefixFromWireFamily(buf, FamilyV6)
		return err == nil && n == len(buf) && q == p
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixWireEncoding(t *testing.T) {
	p := MustParsePrefix("192.168.0.0/16")
	got := p.AppendWire(nil)
	want := []byte{16, 192, 168}
	if len(got) != len(want) {
		t.Fatalf("wire = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wire = %v, want %v", got, want)
		}
	}
	p6 := MustParsePrefix("2001:db8::/32")
	got = p6.AppendWire(nil)
	want = []byte{32, 0x20, 0x01, 0x0d, 0xb8}
	if len(got) != len(want) {
		t.Fatalf("v6 wire = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("v6 wire = %v, want %v", got, want)
		}
	}
}

func TestPrefixFromWireErrors(t *testing.T) {
	if _, _, err := PrefixFromWire(nil); err == nil {
		t.Error("empty NLRI should error")
	}
	if _, _, err := PrefixFromWire([]byte{33, 1, 2, 3, 4, 5}); err == nil {
		t.Error("length 33 should error for v4")
	}
	if _, _, err := PrefixFromWire([]byte{24, 10, 0}); err == nil {
		t.Error("truncated NLRI should error")
	}
	if _, _, err := PrefixFromWireFamily([]byte{129, 1}, FamilyV6); err == nil {
		t.Error("length 129 should error for v6")
	}
	if _, _, err := PrefixFromWireFamily([]byte{64, 1, 2, 3}, FamilyV6); err == nil {
		t.Error("truncated v6 NLRI should error")
	}
}

func TestPrefixDefaultRouteWire(t *testing.T) {
	p := MustParsePrefix("0.0.0.0/0")
	buf := p.AppendWire(nil)
	if len(buf) != 1 || buf[0] != 0 {
		t.Fatalf("default route wire = %v, want [0]", buf)
	}
	q, n, err := PrefixFromWire(buf)
	if err != nil || n != 1 || q != p {
		t.Fatalf("default route round trip failed: %v %d %v", q, n, err)
	}
}

func TestFamilyFromAFI(t *testing.T) {
	if f, ok := FamilyFromAFI(1); !ok || f != FamilyV4 {
		t.Error("AFI 1 should map to FamilyV4")
	}
	if f, ok := FamilyFromAFI(2); !ok || f != FamilyV6 {
		t.Error("AFI 2 should map to FamilyV6")
	}
	if _, ok := FamilyFromAFI(3); ok {
		t.Error("AFI 3 should not map")
	}
}

func TestHost(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	h := p.Host(^uint64(0))
	if h != MustParseAddr("10.255.255.255") {
		t.Errorf("v4 Host = %v, want 10.255.255.255", h)
	}
	if !p.Contains(p.Host(0x12345678)) {
		t.Error("Host must stay inside the prefix")
	}
	p6 := MustParsePrefix("2001:db8::/32")
	if !p6.Contains(p6.Host(0xdeadbeef)) {
		t.Error("v6 Host must stay inside the prefix")
	}
	if p6.Host(1) == p6.Addr() {
		t.Error("v6 Host should set host bits")
	}
}
