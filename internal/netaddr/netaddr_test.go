package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"192.0.2.1", AddrFrom4(192, 0, 2, 1), true},
		{"10.0.0.1", AddrFrom4(10, 0, 0, 1), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"-1.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"01.2.3.4", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded; want error", c.in)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrBytesRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		return AddrFromBytes(a.Bytes()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrBit(t *testing.T) {
	a := MustParseAddr("128.0.0.1")
	if a.Bit(0) != 1 {
		t.Errorf("Bit(0) = %d, want 1", a.Bit(0))
	}
	if a.Bit(1) != 0 {
		t.Errorf("Bit(1) = %d, want 0", a.Bit(1))
	}
	if a.Bit(31) != 1 {
		t.Errorf("Bit(31) = %d, want 1", a.Bit(31))
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		len  int
		want Addr
	}{
		{0, 0},
		{-3, 0},
		{8, 0xFF000000},
		{16, 0xFFFF0000},
		{24, 0xFFFFFF00},
		{32, 0xFFFFFFFF},
		{40, 0xFFFFFFFF},
		{1, 0x80000000},
		{31, 0xFFFFFFFE},
	}
	for _, c := range cases {
		if got := Mask(c.len); got != c.want {
			t.Errorf("Mask(%d) = %08x, want %08x", c.len, uint32(got), uint32(c.want))
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.1.2.3/16")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "10.1.0.0/16" {
		t.Errorf("masking: got %s, want 10.1.0.0/16", got)
	}
	if p.Len() != 16 {
		t.Errorf("Len = %d, want 16", p.Len())
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "300.0.0.0/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded; want error", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("192.168.0.0/16")
	if !p.Contains(MustParseAddr("192.168.42.1")) {
		t.Error("should contain 192.168.42.1")
	}
	if p.Contains(MustParseAddr("192.169.0.1")) {
		t.Error("should not contain 192.169.0.1")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("8.8.8.8")) {
		t.Error("default route should contain everything")
	}
	host := MustParsePrefix("1.2.3.4/32")
	if !host.Contains(MustParseAddr("1.2.3.4")) || host.Contains(MustParseAddr("1.2.3.5")) {
		t.Error("host route containment wrong")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("10/8 and 10.1/16 should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("10/8 and 11/8 should not overlap")
	}
}

func TestPrefixCompare(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("shorter prefix should order first at same address")
	}
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("lower address should order first")
	}
	if a.Compare(a) != 0 {
		t.Error("Compare(self) != 0")
	}
}

func TestPrefixCompareIsTotalOrder(t *testing.T) {
	f := func(a1, a2 uint32, l1, l2 uint8) bool {
		p := PrefixFrom(Addr(a1), int(l1%33))
		q := PrefixFrom(Addr(a2), int(l2%33))
		// Antisymmetry and consistency with equality.
		if p.Compare(q) != -q.Compare(p) {
			return false
		}
		return (p.Compare(q) == 0) == (p == q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixWireRoundTrip(t *testing.T) {
	f := func(a uint32, l uint8) bool {
		p := PrefixFrom(Addr(a), int(l%33))
		buf := p.AppendWire(nil)
		q, n, err := PrefixFromWire(buf)
		return err == nil && n == len(buf) && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixWireEncoding(t *testing.T) {
	p := MustParsePrefix("192.168.0.0/16")
	got := p.AppendWire(nil)
	want := []byte{16, 192, 168}
	if len(got) != len(want) {
		t.Fatalf("wire = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wire = %v, want %v", got, want)
		}
	}
}

func TestPrefixFromWireErrors(t *testing.T) {
	if _, _, err := PrefixFromWire(nil); err == nil {
		t.Error("empty NLRI should error")
	}
	if _, _, err := PrefixFromWire([]byte{33, 1, 2, 3, 4, 5}); err == nil {
		t.Error("length 33 should error")
	}
	if _, _, err := PrefixFromWire([]byte{24, 10, 0}); err == nil {
		t.Error("truncated NLRI should error")
	}
}

func TestPrefixDefaultRouteWire(t *testing.T) {
	p := MustParsePrefix("0.0.0.0/0")
	buf := p.AppendWire(nil)
	if len(buf) != 1 || buf[0] != 0 {
		t.Fatalf("default route wire = %v, want [0]", buf)
	}
	q, n, err := PrefixFromWire(buf)
	if err != nil || n != 1 || q != p {
		t.Fatalf("default route round trip failed: %v %d %v", q, n, err)
	}
}
