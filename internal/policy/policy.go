// Package policy implements BGP routing policy: prefix lists, AS-path and
// community filters, and route maps that match routes and transform their
// attributes. The paper notes that BGP route selection "is always
// policy-based"; this package is the mechanism the router applies on import
// (before the decision process) and on export (when building Adj-RIB-Out).
package policy

import (
	"fmt"
	"strings"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

// Action is the disposition of a policy term.
type Action int

// Term dispositions.
const (
	Permit Action = iota
	Deny
)

// String names the action.
func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// PrefixRule matches prefixes covered by Prefix whose length lies in
// [GE, LE]. GE/LE of 0 default to the prefix's own length and 32
// respectively when Orlonger is set, or to exact match otherwise.
type PrefixRule struct {
	Prefix netaddr.Prefix
	GE, LE int // inclusive length bounds; 0 means "unset"
	Action Action
}

// Matches reports whether p satisfies the rule's prefix condition.
func (r PrefixRule) Matches(p netaddr.Prefix) bool {
	ge, le := r.GE, r.LE
	if ge == 0 {
		ge = r.Prefix.Len()
	}
	if le == 0 {
		if r.GE == 0 {
			le = r.Prefix.Len() // exact match by default
		} else {
			le = 32
		}
	}
	if p.Len() < ge || p.Len() > le {
		return false
	}
	return r.Prefix.Contains(p.Addr()) && p.Len() >= r.Prefix.Len()
}

// PrefixList is an ordered list of prefix rules; the first matching rule
// decides. A prefix matching no rule is denied (the conventional implicit
// deny).
type PrefixList struct {
	Name  string
	Rules []PrefixRule
}

// Eval returns the action of the first matching rule, with ok=false when
// no rule matched.
func (l *PrefixList) Eval(p netaddr.Prefix) (Action, bool) {
	for _, r := range l.Rules {
		if r.Matches(p) {
			return r.Action, true
		}
	}
	return Deny, false
}

// Permits reports whether the list allows the prefix.
func (l *PrefixList) Permits(p netaddr.Prefix) bool {
	a, ok := l.Eval(p)
	return ok && a == Permit
}

// ASPathCond is a predicate over AS paths. The zero value matches
// everything; set fields combine conjunctively.
type ASPathCond struct {
	Contains   []uint32 // path must traverse all of these ASNs
	NotContain []uint32 // path must traverse none of these
	OriginAS   uint32   // last AS must equal (0 = unset)
	NeighborAS uint32   // first AS must equal (0 = unset)
	MinLen     int      // path length lower bound (0 = unset)
	MaxLen     int      // path length upper bound (0 = unset)
	// Pattern, when set, must match the flattened path (see
	// ASPathPattern for the operator-style pattern language).
	Pattern *ASPathPattern
}

// Matches evaluates the predicate.
func (c ASPathCond) Matches(p wire.ASPath) bool {
	for _, a := range c.Contains {
		if !p.Contains(a) {
			return false
		}
	}
	for _, a := range c.NotContain {
		if p.Contains(a) {
			return false
		}
	}
	if c.OriginAS != 0 {
		o, ok := p.Origin()
		if !ok || o != c.OriginAS {
			return false
		}
	}
	if c.NeighborAS != 0 {
		f, ok := p.First()
		if !ok || f != c.NeighborAS {
			return false
		}
	}
	l := p.Length()
	if c.MinLen != 0 && l < c.MinLen {
		return false
	}
	if c.MaxLen != 0 && l > c.MaxLen {
		return false
	}
	if c.Pattern != nil && !c.Pattern.Match(p) {
		return false
	}
	return true
}

// Match is the conjunctive condition of a route-map term. Nil/zero members
// are wildcards.
type Match struct {
	PrefixList *PrefixList
	ASPath     *ASPathCond
	Community  []wire.Community // route must carry all listed communities
	NextHop    *netaddr.Prefix  // next hop must fall inside
	MED        *uint32          // exact MED
}

// Matches evaluates the condition on a route.
func (m Match) Matches(p netaddr.Prefix, a wire.PathAttrs) bool {
	if m.PrefixList != nil && !m.PrefixList.Permits(p) {
		return false
	}
	if m.ASPath != nil && !m.ASPath.Matches(a.ASPath) {
		return false
	}
	for _, c := range m.Community {
		if !a.HasCommunity(c) {
			return false
		}
	}
	if m.NextHop != nil && (!a.HasNextHop || !m.NextHop.Contains(a.NextHop)) {
		return false
	}
	if m.MED != nil && (!a.HasMED || a.MED != *m.MED) {
		return false
	}
	return true
}

// Set is the attribute transformation of a route-map term. Nil members
// leave the attribute unchanged.
type Set struct {
	LocalPref      *uint32
	MED            *uint32
	NextHop        *netaddr.Addr
	PrependAS      uint32 // prepend this ASN PrependCount times
	PrependCount   int
	AddCommunity   []wire.Community
	DelCommunity   []wire.Community
	ClearCommunity bool
}

// Apply returns a transformed copy of the attributes.
func (s Set) Apply(a wire.PathAttrs) wire.PathAttrs {
	out := a.Clone()
	if s.LocalPref != nil {
		out.LocalPref, out.HasLocalPref = *s.LocalPref, true
	}
	if s.MED != nil {
		out.MED, out.HasMED = *s.MED, true
	}
	if s.NextHop != nil {
		out.NextHop, out.HasNextHop = *s.NextHop, true
	}
	for i := 0; i < s.PrependCount; i++ {
		out.ASPath = out.ASPath.Prepend(s.PrependAS)
	}
	if s.ClearCommunity {
		out.Communities = nil
	}
	for _, c := range s.DelCommunity {
		for i := 0; i < len(out.Communities); i++ {
			if out.Communities[i] == c {
				out.Communities = append(out.Communities[:i], out.Communities[i+1:]...)
				i--
			}
		}
	}
	for _, c := range s.AddCommunity {
		if !out.HasCommunity(c) {
			out.Communities = append(out.Communities, c)
		}
	}
	return out
}

// Term is one entry of a route map.
type Term struct {
	Name   string
	Match  Match
	Set    Set
	Action Action
}

// RouteMap is an ordered policy: terms are evaluated in sequence and the
// first matching term decides. A route matching no term is denied, unless
// DefaultPermit is set (useful for "modify everything" maps).
type RouteMap struct {
	Name          string
	Terms         []Term
	DefaultPermit bool
}

// Apply evaluates the map on a route, returning the (possibly transformed)
// attributes and whether the route is accepted.
func (m *RouteMap) Apply(p netaddr.Prefix, a wire.PathAttrs) (wire.PathAttrs, bool) {
	if m == nil {
		return a, true // no policy: accept unchanged
	}
	for _, t := range m.Terms {
		if !t.Match.Matches(p, a) {
			continue
		}
		if t.Action == Deny {
			return a, false
		}
		return t.Set.Apply(a), true
	}
	if m.DefaultPermit {
		return a, true
	}
	return a, false
}

// String summarizes the route map for diagnostics.
func (m *RouteMap) String() string {
	if m == nil {
		return "route-map <nil: permit all>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "route-map %s (%d terms", m.Name, len(m.Terms))
	if m.DefaultPermit {
		b.WriteString(", default permit")
	}
	b.WriteString(")")
	return b.String()
}

// AcceptAll is the identity policy.
var AcceptAll = &RouteMap{Name: "accept-all", DefaultPermit: true}

// DenyAll rejects every route.
var DenyAll = &RouteMap{Name: "deny-all"}
