package policy_test

import (
	"fmt"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/wire"
)

// ExampleRouteMap shows a typical import policy: drop a customer's more
// specifics, raise preference for the rest.
func ExampleRouteMap() {
	pref := uint32(200)
	rm := &policy.RouteMap{
		Name: "from-customer",
		Terms: []policy.Term{
			{
				Name: "no-more-specifics",
				Match: policy.Match{PrefixList: &policy.PrefixList{Rules: []policy.PrefixRule{
					{Prefix: netaddr.MustParsePrefix("203.0.113.0/24"), GE: 25, LE: 32, Action: policy.Permit},
				}}},
				Action: policy.Deny,
			},
			{
				Name:   "prefer",
				Set:    policy.Set{LocalPref: &pref},
				Action: policy.Permit,
			},
		},
	}

	attrs := wire.NewPathAttrs(wire.OriginIGP, wire.NewASPath(64512), netaddr.MustParseAddr("192.0.2.1"))

	if _, ok := rm.Apply(netaddr.MustParsePrefix("203.0.113.128/25"), attrs); !ok {
		fmt.Println("more-specific denied")
	}
	out, ok := rm.Apply(netaddr.MustParsePrefix("203.0.113.0/24"), attrs)
	fmt.Println(ok, out.LocalPref)
	// Output:
	// more-specific denied
	// true 200
}
