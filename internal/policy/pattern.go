package policy

import (
	"fmt"
	"strconv"
	"strings"

	"bgpbench/internal/wire"
)

// ASPathPattern matches AS paths the way operators write as-path filters:
// a sequence of tokens over the flattened path, where
//
//	65001   matches that exact ASN
//	.       matches any single ASN
//	.*      matches any (possibly empty) ASN sequence
//	^       anchors at the path's first ASN (start of pattern only)
//	$       anchors at the path's last ASN (end of pattern only)
//
// Without anchors the pattern matches any contiguous token subsequence,
// so "7018" behaves like the classic "_7018_" (the AS appears anywhere in
// the path, at token boundaries). Examples:
//
//	"^65001"        learned directly from AS 65001
//	"7018"          traverses AS 7018 anywhere
//	"^65001 .* 13$" from 65001, originated by 13
//	"^. .$"         exactly two hops
type ASPathPattern struct {
	src           string
	anchoredStart bool
	anchoredEnd   bool
	toks          []patternTok
}

type patternKind int

const (
	tokASN patternKind = iota
	tokAny
	tokAnySeq
)

type patternTok struct {
	kind patternKind
	asn  uint32
}

// CompileASPathPattern parses a pattern. Tokens are whitespace separated;
// "^" must be first and "$" last.
func CompileASPathPattern(src string) (*ASPathPattern, error) {
	p := &ASPathPattern{src: src}
	fields := strings.Fields(src)
	if len(fields) == 0 {
		return nil, fmt.Errorf("policy: empty as-path pattern")
	}
	if fields[0] == "^" {
		p.anchoredStart = true
		fields = fields[1:]
	} else if strings.HasPrefix(fields[0], "^") {
		p.anchoredStart = true
		fields[0] = fields[0][1:]
	}
	if n := len(fields); n > 0 {
		if fields[n-1] == "$" {
			p.anchoredEnd = true
			fields = fields[:n-1]
		} else if strings.HasSuffix(fields[n-1], "$") {
			p.anchoredEnd = true
			fields[n-1] = fields[n-1][:len(fields[n-1])-1]
		}
	}
	for _, f := range fields {
		if f == "" {
			continue
		}
		switch f {
		case ".":
			p.toks = append(p.toks, patternTok{kind: tokAny})
		case ".*":
			p.toks = append(p.toks, patternTok{kind: tokAnySeq})
		default:
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("policy: bad as-path pattern token %q in %q", f, src)
			}
			p.toks = append(p.toks, patternTok{kind: tokASN, asn: uint32(v)})
		}
	}
	if len(p.toks) == 0 && !(p.anchoredStart && p.anchoredEnd) {
		return nil, fmt.Errorf("policy: as-path pattern %q has no tokens", src)
	}
	return p, nil
}

// MustCompileASPathPattern panics on error; for statically known patterns.
func MustCompileASPathPattern(src string) *ASPathPattern {
	p, err := CompileASPathPattern(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the source pattern.
func (p *ASPathPattern) String() string { return p.src }

// Match reports whether the pattern matches the path.
func (p *ASPathPattern) Match(path wire.ASPath) bool {
	var flat []uint32
	for _, s := range path.Segments {
		flat = append(flat, s.ASNs...)
	}
	if p.anchoredStart {
		return p.matchAt(flat, 0, p.anchoredEnd)
	}
	for start := 0; start <= len(flat); start++ {
		if p.matchAt(flat[start:], 0, p.anchoredEnd) {
			return true
		}
	}
	return false
}

// matchAt matches toks[ti:] against path greedily with backtracking.
func (p *ASPathPattern) matchAt(path []uint32, ti int, toEnd bool) bool {
	if ti == len(p.toks) {
		return !toEnd || len(path) == 0
	}
	t := p.toks[ti]
	switch t.kind {
	case tokASN:
		if len(path) == 0 || path[0] != t.asn {
			return false
		}
		return p.matchAt(path[1:], ti+1, toEnd)
	case tokAny:
		if len(path) == 0 {
			return false
		}
		return p.matchAt(path[1:], ti+1, toEnd)
	case tokAnySeq:
		for skip := 0; skip <= len(path); skip++ {
			if p.matchAt(path[skip:], ti+1, toEnd) {
				return true
			}
		}
		return false
	}
	return false
}
