package policy

import (
	"fmt"
	"strings"
)

// CanonicalKey returns a canonical serialization of a route map's
// *behavior*: two maps with equal keys transform and filter every route
// identically. Names (of the map, its terms, and any prefix lists) are
// deliberately excluded — they are labels, not semantics — so that two
// differently-named copies of the same export policy compare equal. Term
// order, rule order, and community-set order are preserved because they
// are semantically significant (first match wins; Set community edits
// apply in sequence).
//
// A nil map canonicalizes to "nil", distinct from any real map: the
// caller treats nil as "export unmodified", which no RouteMap expresses
// (an empty RouteMap denies everything).
func CanonicalKey(m *RouteMap) string {
	if m == nil {
		return "nil"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rm{def=%v", m.DefaultPermit)
	for _, t := range m.Terms {
		b.WriteString(";t{")
		appendMatchKey(&b, t.Match)
		appendSetKey(&b, t.Set)
		fmt.Fprintf(&b, "a=%d}", t.Action)
	}
	b.WriteString("}")
	return b.String()
}

func appendMatchKey(b *strings.Builder, m Match) {
	b.WriteString("m{")
	if m.PrefixList != nil {
		b.WriteString("pl[")
		for i, r := range m.PrefixList.Rules {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s/%d-%d/%d", r.Prefix, r.GE, r.LE, r.Action)
		}
		b.WriteString("]")
	}
	if m.ASPath != nil {
		c := m.ASPath
		fmt.Fprintf(b, "as[c=%v,nc=%v,o=%d,n=%d,l=%d-%d", c.Contains, c.NotContain, c.OriginAS, c.NeighborAS, c.MinLen, c.MaxLen)
		if c.Pattern != nil {
			fmt.Fprintf(b, ",p=%q", c.Pattern.String())
		}
		b.WriteString("]")
	}
	if len(m.Community) > 0 {
		fmt.Fprintf(b, "com=%v", m.Community)
	}
	if m.NextHop != nil {
		fmt.Fprintf(b, "nh=%s", *m.NextHop)
	}
	if m.MED != nil {
		fmt.Fprintf(b, "med=%d", *m.MED)
	}
	b.WriteString("}")
}

func appendSetKey(b *strings.Builder, s Set) {
	b.WriteString("s{")
	if s.LocalPref != nil {
		fmt.Fprintf(b, "lp=%d,", *s.LocalPref)
	}
	if s.MED != nil {
		fmt.Fprintf(b, "med=%d,", *s.MED)
	}
	if s.NextHop != nil {
		fmt.Fprintf(b, "nh=%s,", *s.NextHop)
	}
	if s.PrependCount > 0 {
		fmt.Fprintf(b, "pp=%dx%d,", s.PrependAS, s.PrependCount)
	}
	if s.ClearCommunity {
		b.WriteString("cc,")
	}
	if len(s.DelCommunity) > 0 {
		fmt.Fprintf(b, "dc=%v,", s.DelCommunity)
	}
	if len(s.AddCommunity) > 0 {
		fmt.Fprintf(b, "ac=%v,", s.AddCommunity)
	}
	b.WriteString("}")
}
