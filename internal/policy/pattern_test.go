package policy

import (
	"testing"

	"bgpbench/internal/wire"
)

func path(asns ...uint32) wire.ASPath { return wire.NewASPath(asns...) }

func TestPatternBasics(t *testing.T) {
	cases := []struct {
		pattern string
		path    []uint32
		want    bool
	}{
		// Unanchored substring semantics (the "_asn_" idiom).
		{"7018", []uint32{1, 7018, 2}, true},
		{"7018", []uint32{1, 2, 3}, false},
		{"7018", []uint32{70, 18}, false}, // token, not text, boundaries
		{"7018 2", []uint32{1, 7018, 2}, true},
		{"7018 3", []uint32{1, 7018, 2}, false},

		// Start anchor: learned directly from.
		{"^65001", []uint32{65001, 2, 3}, true},
		{"^65001", []uint32{2, 65001, 3}, false},

		// End anchor: originated by.
		{"13$", []uint32{1, 2, 13}, true},
		{"13$", []uint32{13, 2, 1}, false},

		// Full anchoring with wildcard sequence.
		{"^65001 .* 13$", []uint32{65001, 13}, true},
		{"^65001 .* 13$", []uint32{65001, 7, 8, 13}, true},
		{"^65001 .* 13$", []uint32{65001, 7, 8}, false},
		{"^65001 .* 13$", []uint32{9, 65001, 13}, false},

		// Single-ASN wildcard: exact hop counts.
		{"^. .$", []uint32{1, 2}, true},
		{"^. .$", []uint32{1, 2, 3}, false},
		{"^. .$", []uint32{1}, false},

		// Leading wildcard sequence.
		{"^.* 99$", []uint32{99}, true},
		{"^.* 99$", []uint32{1, 2, 99}, true},

		// Empty path.
		{"^.*$", nil, true},
		{"65001", nil, false},
	}
	for _, c := range cases {
		p := MustCompileASPathPattern(c.pattern)
		if got := p.Match(path(c.path...)); got != c.want {
			t.Errorf("pattern %q on %v: got %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

func TestPatternSpansSegments(t *testing.T) {
	// The pattern operates on the flattened path: sequence + set members.
	p := wire.ASPath{Segments: []wire.ASSegment{
		{Type: wire.SegASSequence, ASNs: []uint32{100, 200}},
		{Type: wire.SegASSet, ASNs: []uint32{300, 400}},
	}}
	if !MustCompileASPathPattern("200 300").Match(p) {
		t.Error("pattern should span segment boundaries")
	}
	if !MustCompileASPathPattern("^100 .* 400$").Match(p) {
		t.Error("anchored pattern across segments failed")
	}
}

func TestPatternCompileErrors(t *testing.T) {
	for _, bad := range []string{"", "  ", "abc", "5000000000", "^ $ x"} {
		if _, err := CompileASPathPattern(bad); err == nil {
			t.Errorf("pattern %q compiled", bad)
		}
	}
	// 4-byte ASNs are valid pattern atoms.
	if !MustCompileASPathPattern("^70000").Match(path(70000, 1)) {
		t.Error("4-byte ASN atom should compile and match")
	}
	// "^$" alone: matches only the empty path.
	p, err := CompileASPathPattern("^ $")
	if err != nil {
		t.Fatalf("^ $ should compile: %v", err)
	}
	if !p.Match(path()) || p.Match(path(1)) {
		t.Error("^ $ should match exactly the empty path")
	}
}

func TestPatternInASPathCond(t *testing.T) {
	cond := ASPathCond{Pattern: MustCompileASPathPattern("^65001 .* 13$")}
	if !cond.Matches(path(65001, 5, 13)) {
		t.Error("cond with pattern should match")
	}
	if cond.Matches(path(65002, 5, 13)) {
		t.Error("cond with pattern should reject")
	}
	// Combined with other conditions (conjunctive).
	cond.MaxLen = 2
	if cond.Matches(path(65001, 5, 13)) {
		t.Error("MaxLen should also bind")
	}
}

func TestPatternString(t *testing.T) {
	if MustCompileASPathPattern("^1 .* 2$").String() != "^1 .* 2$" {
		t.Error("String() should return the source")
	}
}
