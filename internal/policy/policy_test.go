package policy

import (
	"math/rand"
	"testing"

	"bgpbench/internal/netaddr"
	"bgpbench/internal/wire"
)

func attrs(path wire.ASPath) wire.PathAttrs {
	return wire.NewPathAttrs(wire.OriginIGP, path, netaddr.MustParseAddr("192.0.2.1"))
}

func TestPrefixRuleExact(t *testing.T) {
	r := PrefixRule{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), Action: Permit}
	if !r.Matches(netaddr.MustParsePrefix("10.0.0.0/8")) {
		t.Error("exact prefix should match")
	}
	if r.Matches(netaddr.MustParsePrefix("10.1.0.0/16")) {
		t.Error("longer prefix should not match exact rule")
	}
}

func TestPrefixRuleOrlonger(t *testing.T) {
	r := PrefixRule{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), GE: 8, LE: 24}
	cases := []struct {
		p    string
		want bool
	}{
		{"10.0.0.0/8", true},
		{"10.1.0.0/16", true},
		{"10.1.2.0/24", true},
		{"10.1.2.0/25", false}, // longer than LE
		{"11.0.0.0/16", false}, // outside prefix
		{"0.0.0.0/0", false},   // shorter than the covering prefix
	}
	for _, c := range cases {
		if got := r.Matches(netaddr.MustParsePrefix(c.p)); got != c.want {
			t.Errorf("Matches(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPrefixRuleGEOnly(t *testing.T) {
	r := PrefixRule{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), GE: 16}
	if r.Matches(netaddr.MustParsePrefix("10.0.0.0/8")) {
		t.Error("/8 should fail GE 16")
	}
	if !r.Matches(netaddr.MustParsePrefix("10.0.0.0/32")) {
		t.Error("/32 should pass GE 16 with default LE 32")
	}
}

func TestPrefixListFirstMatchWins(t *testing.T) {
	l := &PrefixList{Name: "test", Rules: []PrefixRule{
		{Prefix: netaddr.MustParsePrefix("10.1.0.0/16"), GE: 16, LE: 32, Action: Deny},
		{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), GE: 8, LE: 32, Action: Permit},
	}}
	if l.Permits(netaddr.MustParsePrefix("10.1.2.0/24")) {
		t.Error("10.1.2.0/24 should be denied by the first rule")
	}
	if !l.Permits(netaddr.MustParsePrefix("10.2.0.0/16")) {
		t.Error("10.2.0.0/16 should be permitted by the second rule")
	}
	// Implicit deny.
	if l.Permits(netaddr.MustParsePrefix("192.168.0.0/16")) {
		t.Error("unmatched prefix should be implicitly denied")
	}
}

func TestASPathCond(t *testing.T) {
	p := wire.NewASPath(100, 200, 300)
	cases := []struct {
		name string
		c    ASPathCond
		want bool
	}{
		{"zero matches all", ASPathCond{}, true},
		{"contains", ASPathCond{Contains: []uint32{200}}, true},
		{"contains missing", ASPathCond{Contains: []uint32{400}}, false},
		{"not-contain hit", ASPathCond{NotContain: []uint32{200}}, false},
		{"not-contain miss", ASPathCond{NotContain: []uint32{400}}, true},
		{"origin", ASPathCond{OriginAS: 300}, true},
		{"origin wrong", ASPathCond{OriginAS: 100}, false},
		{"neighbor", ASPathCond{NeighborAS: 100}, true},
		{"neighbor wrong", ASPathCond{NeighborAS: 300}, false},
		{"min len ok", ASPathCond{MinLen: 3}, true},
		{"min len fail", ASPathCond{MinLen: 4}, false},
		{"max len ok", ASPathCond{MaxLen: 3}, true},
		{"max len fail", ASPathCond{MaxLen: 2}, false},
	}
	for _, c := range cases {
		if got := c.c.Matches(p); got != c.want {
			t.Errorf("%s: Matches = %v, want %v", c.name, got, c.want)
		}
	}
	// Origin/neighbor conditions fail on empty paths.
	if (ASPathCond{OriginAS: 1}).Matches(wire.ASPath{}) {
		t.Error("empty path should not match OriginAS")
	}
}

func TestSetApply(t *testing.T) {
	lp, med := uint32(200), uint32(50)
	nh := netaddr.MustParseAddr("10.9.9.9")
	s := Set{
		LocalPref:    &lp,
		MED:          &med,
		NextHop:      &nh,
		PrependAS:    65000,
		PrependCount: 2,
		AddCommunity: []wire.Community{wire.CommunityFrom(1, 1)},
	}
	in := attrs(wire.NewASPath(100))
	out := s.Apply(in)
	if !out.HasLocalPref || out.LocalPref != 200 {
		t.Error("local-pref not set")
	}
	if !out.HasMED || out.MED != 50 {
		t.Error("MED not set")
	}
	if out.NextHop != nh {
		t.Error("next hop not set")
	}
	if out.ASPath.String() != "65000 65000 100" {
		t.Errorf("as-path = %q", out.ASPath.String())
	}
	if !out.HasCommunity(wire.CommunityFrom(1, 1)) {
		t.Error("community not added")
	}
	// Input untouched.
	if in.HasLocalPref || in.ASPath.Length() != 1 {
		t.Error("Apply mutated its input")
	}
}

func TestSetCommunityOps(t *testing.T) {
	in := attrs(wire.NewASPath(1))
	in.Communities = []wire.Community{wire.CommunityFrom(1, 1), wire.CommunityFrom(2, 2)}

	out := Set{DelCommunity: []wire.Community{wire.CommunityFrom(1, 1)}}.Apply(in)
	if out.HasCommunity(wire.CommunityFrom(1, 1)) || !out.HasCommunity(wire.CommunityFrom(2, 2)) {
		t.Errorf("delete community: %v", out.Communities)
	}

	out = Set{ClearCommunity: true, AddCommunity: []wire.Community{wire.CommunityFrom(3, 3)}}.Apply(in)
	if len(out.Communities) != 1 || out.Communities[0] != wire.CommunityFrom(3, 3) {
		t.Errorf("clear+add community: %v", out.Communities)
	}

	// Adding an existing community is idempotent.
	out = Set{AddCommunity: []wire.Community{wire.CommunityFrom(1, 1)}}.Apply(in)
	if len(out.Communities) != 2 {
		t.Errorf("idempotent add: %v", out.Communities)
	}
}

func TestRouteMapFirstTermWins(t *testing.T) {
	lp := uint32(500)
	m := &RouteMap{Name: "import", Terms: []Term{
		{
			Match:  Match{ASPath: &ASPathCond{Contains: []uint32{666}}},
			Action: Deny,
		},
		{
			Match:  Match{},
			Set:    Set{LocalPref: &lp},
			Action: Permit,
		},
	}}
	p := netaddr.MustParsePrefix("10.0.0.0/8")

	if _, ok := m.Apply(p, attrs(wire.NewASPath(100, 666))); ok {
		t.Error("bogon AS should be denied")
	}
	out, ok := m.Apply(p, attrs(wire.NewASPath(100)))
	if !ok || out.LocalPref != 500 {
		t.Errorf("second term should permit and set local-pref: %v %v", out, ok)
	}
}

func TestRouteMapImplicitDeny(t *testing.T) {
	m := &RouteMap{Name: "strict", Terms: []Term{
		{Match: Match{ASPath: &ASPathCond{NeighborAS: 1}}, Action: Permit},
	}}
	p := netaddr.MustParsePrefix("10.0.0.0/8")
	if _, ok := m.Apply(p, attrs(wire.NewASPath(2))); ok {
		t.Error("unmatched route should be denied")
	}
	m.DefaultPermit = true
	if _, ok := m.Apply(p, attrs(wire.NewASPath(2))); !ok {
		t.Error("DefaultPermit should accept unmatched route")
	}
}

func TestNilRouteMapPermitsAll(t *testing.T) {
	var m *RouteMap
	in := attrs(wire.NewASPath(1))
	out, ok := m.Apply(netaddr.MustParsePrefix("10.0.0.0/8"), in)
	if !ok || !out.Equal(in) {
		t.Error("nil route map must be the identity policy")
	}
}

func TestAcceptAllDenyAll(t *testing.T) {
	p := netaddr.MustParsePrefix("10.0.0.0/8")
	a := attrs(wire.NewASPath(1))
	if _, ok := AcceptAll.Apply(p, a); !ok {
		t.Error("AcceptAll denied")
	}
	if _, ok := DenyAll.Apply(p, a); ok {
		t.Error("DenyAll permitted")
	}
}

func TestMatchConjunction(t *testing.T) {
	med := uint32(10)
	nhp := netaddr.MustParsePrefix("192.0.2.0/24")
	m := Match{
		ASPath:    &ASPathCond{NeighborAS: 100},
		Community: []wire.Community{wire.CommunityFrom(5, 5)},
		NextHop:   &nhp,
		MED:       &med,
	}
	a := attrs(wire.NewASPath(100))
	a.Communities = []wire.Community{wire.CommunityFrom(5, 5)}
	a.HasMED, a.MED = true, 10
	p := netaddr.MustParsePrefix("10.0.0.0/8")
	if !m.Matches(p, a) {
		t.Fatal("all conditions hold; should match")
	}
	b := a.Clone()
	b.MED = 11
	if m.Matches(p, b) {
		t.Error("MED mismatch should fail")
	}
	b = a.Clone()
	b.Communities = nil
	if m.Matches(p, b) {
		t.Error("missing community should fail")
	}
	b = a.Clone()
	b.NextHop = netaddr.MustParseAddr("10.0.0.1")
	if m.Matches(p, b) {
		t.Error("next hop outside range should fail")
	}
}

// TestRouteMapApplyIdempotent: for maps without prepend/additive actions,
// applying twice equals applying once.
func TestRouteMapApplyIdempotent(t *testing.T) {
	lp := uint32(300)
	m := &RouteMap{Name: "idem", DefaultPermit: true, Terms: []Term{
		{Match: Match{}, Set: Set{LocalPref: &lp}, Action: Permit},
	}}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		p := netaddr.PrefixFrom(netaddr.AddrFromV4(r.Uint32()), 8+r.Intn(25))
		a := attrs(wire.NewASPath(uint32(r.Intn(65535) + 1)))
		once, ok1 := m.Apply(p, a)
		twice, ok2 := m.Apply(p, once)
		if !ok1 || !ok2 || !once.Equal(twice) {
			t.Fatalf("not idempotent for %v", p)
		}
	}
}

func TestRouteMapString(t *testing.T) {
	if AcceptAll.String() == "" || (&RouteMap{Name: "x"}).String() == "" {
		t.Error("String() empty")
	}
	var nilMap *RouteMap
	if nilMap.String() == "" {
		t.Error("nil String() empty")
	}
}
