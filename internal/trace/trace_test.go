package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestSeriesAdd(t *testing.T) {
	s := &Series{Name: "x", Bucket: 1}
	s.Add(3, 2.5)
	s.Add(3, 1.5)
	s.Add(0, 1.0)
	s.Add(-1, 99) // ignored
	if len(s.Values) != 4 {
		t.Fatalf("len = %d, want 4", len(s.Values))
	}
	if s.Values[3] != 4.0 || s.Values[0] != 1.0 || s.Values[1] != 0 {
		t.Fatalf("values = %v", s.Values)
	}
	if s.Max() != 4.0 {
		t.Fatalf("Max = %v", s.Max())
	}
	if got := s.Mean(); got != 5.0/4 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestEmptySeries(t *testing.T) {
	s := &Series{}
	if s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("empty series stats should be zero")
	}
}

func TestSetGetCreatesOnce(t *testing.T) {
	set := NewSet(0.5)
	a := set.Get("cpu")
	b := set.Get("cpu")
	if a != b {
		t.Fatal("Get created a duplicate series")
	}
	set.Get("fwd")
	names := set.Names()
	if len(names) != 2 || names[0] != "cpu" || names[1] != "fwd" {
		t.Fatalf("names = %v", names)
	}
	if a.Bucket != 0.5 {
		t.Fatalf("bucket = %v", a.Bucket)
	}
}

func TestSetLen(t *testing.T) {
	set := NewSet(1)
	set.Get("a").Add(2, 1)
	set.Get("b").Add(7, 1)
	if set.Len() != 8 {
		t.Fatalf("Len = %d, want 8", set.Len())
	}
}

func TestWriteCSV(t *testing.T) {
	set := NewSet(1)
	set.Get("a").Add(0, 1)
	set.Get("a").Add(1, 2)
	set.Get("b").Add(1, 3)
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "time_s,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.000,1.0000,0.0000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1.000,2.0000,3.0000") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestRenderASCII(t *testing.T) {
	set := NewSet(1)
	for i := 0; i < 100; i++ {
		set.Get("load").Add(i, float64(i))
	}
	var buf bytes.Buffer
	set.RenderASCII(&buf, 40)
	out := buf.String()
	if !strings.Contains(out, "load") || !strings.Contains(out, "max=99") {
		t.Fatalf("render missing content: %q", out)
	}
	// Empty set renders a placeholder without panicking.
	var empty bytes.Buffer
	NewSet(1).RenderASCII(&empty, 40)
	if !strings.Contains(empty.String(), "empty") {
		t.Fatal("empty render missing placeholder")
	}
}
