// Package trace provides time-bucketed series used to regenerate the
// paper's time-domain figures: per-process CPU load (Figures 3, 4, 6a/6b)
// and forwarding rate (Figure 6c). Series are written by the platform
// simulator and rendered by cmd/bgpbench as CSV or ASCII plots.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named time series with fixed-width buckets.
type Series struct {
	Name   string
	Bucket float64 // bucket width in seconds
	Values []float64
}

// Add accumulates v into the given bucket, growing the series as needed.
func (s *Series) Add(bucket int, v float64) {
	if bucket < 0 {
		return
	}
	for len(s.Values) <= bucket {
		s.Values = append(s.Values, 0)
	}
	s.Values[bucket] += v
}

// Max returns the largest value in the series (0 for empty).
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean (0 for empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Set is a collection of series sharing a time base.
type Set struct {
	Bucket float64 // bucket width in seconds
	series map[string]*Series
	order  []string
}

// NewSet creates a set with the given bucket width in seconds.
func NewSet(bucket float64) *Set {
	return &Set{Bucket: bucket, series: make(map[string]*Series)}
}

// Get returns (creating if needed) the series with the given name.
func (t *Set) Get(name string) *Series {
	if s, ok := t.series[name]; ok {
		return s
	}
	s := &Series{Name: name, Bucket: t.Bucket}
	t.series[name] = s
	t.order = append(t.order, name)
	return s
}

// Names returns the series names in creation order.
func (t *Set) Names() []string {
	return append([]string(nil), t.order...)
}

// Len returns the number of buckets in the longest series.
func (t *Set) Len() int {
	n := 0
	for _, s := range t.series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	return n
}

// WriteCSV emits "time,<name1>,<name2>,..." rows.
func (t *Set) WriteCSV(w io.Writer) error {
	names := t.Names()
	if _, err := fmt.Fprintf(w, "time_s,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	n := t.Len()
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(names)+1)
		row = append(row, fmt.Sprintf("%.3f", float64(i)*t.Bucket))
		for _, name := range names {
			s := t.series[name]
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			row = append(row, fmt.Sprintf("%.4f", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RenderASCII draws the set as per-series sparkline rows, downsampling to
// width columns. It is the terminal rendering of the paper's CPU-load
// figures.
func (t *Set) RenderASCII(w io.Writer, width int) {
	if width <= 0 {
		width = 72
	}
	n := t.Len()
	if n == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	names := t.Names()
	sort.Strings(names)
	maxName := 0
	for _, name := range names {
		if len(name) > maxName {
			maxName = len(name)
		}
	}
	for _, name := range names {
		s := t.series[name]
		max := s.Max()
		var b strings.Builder
		for col := 0; col < width; col++ {
			lo := col * n / width
			hi := (col + 1) * n / width
			if hi <= lo {
				hi = lo + 1
			}
			v := 0.0
			for i := lo; i < hi && i < len(s.Values); i++ {
				if s.Values[i] > v {
					v = s.Values[i]
				}
			}
			idx := 0
			if max > 0 {
				idx = int(math.Ceil(v / max * float64(len(glyphs)-1)))
				if idx >= len(glyphs) {
					idx = len(glyphs) - 1
				}
			}
			b.WriteRune(glyphs[idx])
		}
		fmt.Fprintf(w, "%-*s |%s| max=%.1f\n", maxName, name, b.String(), max)
	}
	fmt.Fprintf(w, "%-*s  0s%*s%.0fs\n", maxName, "", width-2, "", float64(n)*t.Bucket)
}
