package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/speaker"
	"bgpbench/internal/wire"
)

// scalePrefixes picks the digest-equivalence table size: 20k by default
// (seconds per cell), the full 200k gate when BGPBENCH_SCALE_GATE=1 —
// the size where the grouped path's marshal cache, slab rotation, and
// chunked catch-ups all cycle many times over.
func scalePrefixes() int {
	if os.Getenv("BGPBENCH_SCALE_GATE") != "" {
		return 200_000
	}
	return 20_000
}

// sampledAdjDigest hashes every stride-th row of an Adj-RIB-Out dump
// plus the total row count. At full-table scale the complete dump is
// millions of rows across peers; a deterministic stride keeps the digest
// cheap while the row count still pins the table's cardinality, so a
// dropped or duplicated route moves the digest even when it falls
// between sampled rows.
func sampledAdjDigest(routes []core.AdjRoute, stride int) string {
	h := sha256.New()
	fmt.Fprintf(h, "rows:%d\n", len(routes))
	for i, r := range routes {
		if i%stride != 0 {
			continue
		}
		fmt.Fprintf(h, "%s ", r.Prefix)
		h.Write(wire.MarshalAttrs(*r.Attrs))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runScaleCell stands up one cell of the scale matrix — a router with 8
// receive-only peers in 4 sliver-policy groups watching a DFZ-mode table
// land over loopback — and returns the Loc-RIB digest plus each peer's
// sampled Adj-RIB-Out digest, keyed by BGP identifier.
func runScaleCell(t *testing.T, table []core.Route, shards int, grouped bool) (string, map[string]string) {
	t.Helper()
	const peers, groups = 8, 4
	neighbors := []core.NeighborConfig{{AS: liveSpeaker1AS}}
	for i := 0; i < peers; i++ {
		neighbors = append(neighbors, core.NeighborConfig{
			AS:     receiverAS(i),
			Export: fanoutPolicy(receiverGroup(i, groups)),
		})
	}
	router, err := core.NewRouter(core.Config{
		AS:           liveRouterAS,
		ID:           netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr:   "127.0.0.1:0",
		Shards:       shards,
		UpdateGroups: grouped,
		Neighbors:    neighbors,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	defer router.Stop()

	receivers := make([]*speaker.Speaker, 0, peers)
	defer func() {
		for _, rc := range receivers {
			rc.Stop()
		}
	}()
	for i := 0; i < peers; i++ {
		rc := speaker.New(speaker.Config{
			AS: receiverAS(i), ID: receiverID(i),
			Target: router.ListenAddr(), Name: fmt.Sprintf("scale-recv%d", i),
		})
		if err := rc.Connect(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		receivers = append(receivers, rc)
	}
	sp := speaker.New(speaker.Config{
		AS: liveSpeaker1AS, ID: netaddr.MustParseAddr("1.1.1.1"),
		Target: router.ListenAddr(), Name: "scale-feeder",
	})
	if err := sp.Connect(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer sp.Stop()

	if err := sp.Announce(table, LargePacket); err != nil {
		t.Fatal(err)
	}
	deadline := scaledTimeout(len(table))
	for i, rc := range receivers {
		if err := rc.WaitForPrefixes(uint64(len(table)), deadline); err != nil {
			t.Fatalf("shards=%d grouped=%v: receiver %d: %v", shards, grouped, i, err)
		}
	}

	loc := digestLocRIB(router.DumpLocRIB())
	adj := make(map[string]string, peers)
	for i := 0; i < peers; i++ {
		id := receiverID(i)
		adj[id.String()] = sampledAdjDigest(router.DumpAdjOut(id), 17)
	}
	return loc, adj
}

// TestScaleDigestEquivalence is the large-table equivalence proof: a
// DFZ-mode table (Zipf attribute sharing, so the marshal cache sees
// realistic hit rates rather than one uniform path) lands through every
// emission configuration — grouped and ungrouped, one shard and four —
// and every cell must settle to the same Loc-RIB digest and the same
// per-peer sampled Adj-RIB-Out digests. Runs at 20k prefixes by default;
// set BGPBENCH_SCALE_GATE=1 for the 200k gate. Skipped under -short.
func TestScaleDigestEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("large-table scale matrix; run without -short")
	}
	n := scalePrefixes()
	table, err := familyTableMode(AFIv4, TableDFZ, n, 11)
	if err != nil {
		t.Fatal(err)
	}

	wantLoc := ""
	var wantAdj map[string]string
	for _, shards := range []int{1, 4} {
		for _, grouped := range []bool{false, true} {
			label := fmt.Sprintf("n=%d shards=%d grouped=%v", n, shards, grouped)
			loc, adj := runScaleCell(t, table, shards, grouped)
			if wantLoc == "" {
				wantLoc, wantAdj = loc, adj
				continue
			}
			if loc != wantLoc {
				t.Errorf("%s: Loc-RIB digest diverged from first cell", label)
			}
			for id, d := range adj {
				if d != wantAdj[id] {
					t.Errorf("%s: peer %s Adj-RIB-Out digest diverged from first cell", label, id)
				}
			}
		}
	}
}
