package bench_test

import (
	"fmt"

	"bgpbench/internal/bench"
	"bgpbench/internal/platform"
)

// ExampleRunModeled reproduces one cell of the paper's Table III: the
// Pentium III under Scenario 6 (incremental announcements, large packets,
// no forwarding-table change).
func ExampleRunModeled() {
	sys, _ := platform.SystemByName("PentiumIII")
	scn, _ := bench.ScenarioByNum(6)
	res, _ := bench.RunModeled(sys, scn, 20000, platform.CrossTraffic{})
	fmt.Printf("%s: %.0f transactions/second (paper: 3636.4)\n", scn, res.TPS)
	// Output:
	// Scenario 6 (incremental-nochange, large packets): 3584 transactions/second (paper: 3636.4)
}

// ExampleScenario_Phases shows the Figure 1 phase structure of a scenario.
func ExampleScenario_Phases() {
	scn, _ := bench.ScenarioByNum(7)
	phases, measured := scn.Phases(20000)
	for i, p := range phases {
		marker := " "
		if i == measured {
			marker = "*"
		}
		fmt.Printf("%s %s: %d messages x %d prefixes\n", marker, p.Name, p.Messages, p.PrefixesPerMsg)
	}
	// Output:
	//   phase1-inject: 20000 messages x 1 prefixes
	//   phase2-export: 40 messages x 500 prefixes
	// * phase3-shorter: 20000 messages x 1 prefixes
}
