package bench

import (
	"fmt"
	"os"
	"testing"
)

// manyPeerCfg is the shared many-peer topology: 32 receive-only peers in
// 4 export-policy groups watching a 200-prefix run (small table: each
// run carries 33+ live sessions).
func manyPeerCfg(profile string, shards int, grouped bool) ConformanceConfig {
	return ConformanceConfig{
		Profile:      profile,
		Seed:         conformanceSeed,
		Shards:       shards,
		TableSize:    200,
		Peers:        32,
		PeerGroups:   4,
		UpdateGroups: grouped,
	}
}

// checkGroupDigests verifies the within-run group structure of a
// many-peer result: every receiver's Adj-RIB-Out digest is present,
// receivers sharing an export policy hold byte-identical digests, and —
// when routes are present — receivers in different groups differ (their
// policies set different MEDs).
func checkGroupDigests(t *testing.T, label string, res ConformanceResult, peers, groups int) {
	t.Helper()
	for i := 0; i < peers; i++ {
		id := receiverID(i).String()
		d, ok := res.AdjOutDigests[id]
		if !ok {
			t.Errorf("%s: receiver %d (%s) missing from AdjOutDigests", label, i, id)
			continue
		}
		rep := receiverID(receiverGroup(i, groups)).String()
		if d != res.AdjOutDigests[rep] {
			t.Errorf("%s: receiver %d digest differs from its group representative %s", label, i, rep)
		}
	}
	if res.RIBLen > 0 && groups > 1 {
		a := res.AdjOutDigests[receiverID(0).String()]
		b := res.AdjOutDigests[receiverID(1).String()]
		if a == b {
			t.Errorf("%s: receivers in different policy groups share a digest; policies not applied", label)
		}
	}
}

// TestConformanceManyPeer is the update-group equivalence proof at
// scale: 32 receive-only peers in 4 policy groups, swept across fault
// profiles, shard counts, and grouped emission on vs off. Every cell of
// one scenario must settle to identical per-peer Adj-RIB-Out digests —
// the grouped compute-once/fan-out path is byte-equivalent to the
// per-peer path. Skipped under -short.
func TestConformanceManyPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("many-peer conformance matrix is long; run without -short")
	}
	for _, scn := range []Scenario{Scenarios[3], Scenarios[7]} {
		scn := scn
		t.Run(fmt.Sprintf("scenario%d", scn.Num), func(t *testing.T) {
			t.Parallel()
			want := ""
			for _, profile := range []string{"clean", "flap-reset"} {
				for _, shards := range []int{1, 4} {
					for _, grouped := range []bool{false, true} {
						label := fmt.Sprintf("%s [%s N=%d grouped=%v]", scn, profile, shards, grouped)
						res, err := RunConformance(scn, manyPeerCfg(profile, shards, grouped))
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						checkGroupDigests(t, label, res, 32, 4)
						if want == "" {
							want = res.StateDigest()
						} else if got := res.StateDigest(); got != want {
							t.Errorf("%s: state digest diverged from first cell:\n  want %s\n  got  %s", label, want, got)
						}
					}
				}
			}
		})
	}
}

// TestConformanceManyPeerGate is the quick CI gate for grouped
// emission: one faulted scenario, grouped vs ungrouped at N=4, digests
// equal. Selected via BGPBENCH_CONFORMANCE_GATE=1 so the race run can
// execute just this test; it also runs as part of the normal suite.
func TestConformanceManyPeerGate(t *testing.T) {
	scn := Scenarios[6] // incremental-change, small packets: max message count
	cfg := manyPeerCfg("flap-reset", 4, false)
	cfg.Peers, cfg.PeerGroups = 12, 4
	plain, err := RunConformance(scn, cfg)
	if err != nil {
		t.Fatalf("%s ungrouped: %v", scn, err)
	}
	cfg.UpdateGroups = true
	grouped, err := RunConformance(scn, cfg)
	if err != nil {
		t.Fatalf("%s grouped: %v", scn, err)
	}
	checkGroupDigests(t, "ungrouped", plain, 12, 4)
	checkGroupDigests(t, "grouped", grouped, 12, 4)
	if plain.StateDigest() != grouped.StateDigest() {
		t.Fatalf("%s [flap-reset N=4]: grouped emission diverged from per-peer emission:\n  plain   loc=%s fib=%s\n  grouped loc=%s fib=%s",
			scn, plain.LocRIBDigest, plain.FIBDigest, grouped.LocRIBDigest, grouped.FIBDigest)
	}
	if plain.Faults.Resets == 0 || grouped.Faults.Resets == 0 {
		t.Fatalf("%s [flap-reset]: no resets fired (plain=%+v grouped=%+v)",
			scn, plain.Faults, grouped.Faults)
	}
	if os.Getenv("BGPBENCH_CONFORMANCE_GATE") != "" {
		t.Logf("gate: loc=%s fib=%s", grouped.LocRIBDigest, grouped.FIBDigest)
	}
}

// TestFanoutGrouping runs the many-peer emission benchmark small and
// checks the grouped path actually grouped: 8 peers in 2 groups must
// yield 2 update groups, a fan-out ratio near 4 sends per computed run,
// and nonzero bytes saved versus per-peer marshaling.
func TestFanoutGrouping(t *testing.T) {
	res, err := RunFanout(FanoutConfig{
		Peers: 8, Groups: 2, TableSize: 200, Seed: 7, UpdateGroups: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 receiver policy groups plus the injecting speaker's own group
	// (it has no export policy, so it buckets alone).
	if res.GroupCount != 3 {
		t.Errorf("GroupCount = %d, want 3 (2 receiver groups + injector)", res.GroupCount)
	}
	// Every emission run fans out to the group's members (8 peers / 2
	// groups = 4); catch-up replays for late joiners can only lower the
	// observed ratio slightly.
	if res.FanoutRatio < 3.5 {
		t.Errorf("FanoutRatio = %.2f, want ~4", res.FanoutRatio)
	}
	if res.BytesSaved == 0 {
		t.Error("BytesSaved = 0, want > 0 (shared payloads should replace per-peer marshaling)")
	}
}
