package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/netem"
	"bgpbench/internal/policy"
	"bgpbench/internal/speaker"
	"bgpbench/internal/wire"
)

// ConformanceConfig parameterizes one conformance replay: a scenario
// driven over fault-injected transports, settled, and digested.
type ConformanceConfig struct {
	// Profile names the netem fault profile ("clean", "lossy-reorder",
	// "flap-reset", ...).
	Profile string
	// Seed drives both the workload generator and the fault schedules.
	Seed int64
	// Shards is the router's decision-worker count (0 = GOMAXPROCS).
	Shards int
	// TableSize is the routing-table size in prefixes (default 600 —
	// small enough for CI, large enough that every scenario's byte
	// stream extends past the fault horizon of the named profiles).
	TableSize int
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
	// BatchMaxUpdates / BatchMaxDelay forward to the router's batched
	// dispatch knobs (0 = router defaults, negative = disable/idle-flush).
	// Digests must be identical across every setting.
	BatchMaxUpdates int
	BatchMaxDelay   time.Duration
	// Peers adds this many receive-only peer sessions (AS 65100+i) that
	// watch the run and whose Adj-RIB-Out digests land in AdjOutDigests.
	// 0 keeps the classic two-speaker topology.
	Peers int
	// PeerGroups splits the receive-only peers round-robin across this
	// many distinct export policies (each sets a different MED), so the
	// router's update-group path buckets them into exactly this many
	// groups. 0 or 1 means one shared policy.
	PeerGroups int
	// UpdateGroups enables the router's grouped emission path. Digests
	// must be identical with it on or off — that equality is the
	// equivalence proof for the compute-once/fan-out Adj-RIB-Out.
	UpdateGroups bool
	// AFI selects the workload's address-family mix: "" or "v4" (the
	// historical IPv4 workload, digests unchanged), "v6", or "dual"
	// (half IPv4, half IPv6 over the same sessions). See familyTable.
	AFI string
}

func (c *ConformanceConfig) defaults() {
	if c.TableSize == 0 {
		c.TableSize = 600
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Profile == "" {
		c.Profile = "clean"
	}
}

// ConformanceResult carries the post-convergence state digests of one
// run. Two runs of the same scenario agree on every digest iff the
// router converged to identical Loc-RIB, per-peer Adj-RIB-Out, and FIB
// contents — regardless of shard count or fault profile.
type ConformanceResult struct {
	Scenario Scenario `json:"-"`
	Profile  string   `json:"profile"`
	Shards   int      `json:"shards"`
	// AFI echoes the workload's address-family mix ("" = v4).
	AFI string `json:"afi,omitempty"`
	// LocRIBDigest hashes the selected route per prefix (prefix, peer,
	// canonical attribute bytes), in prefix order.
	LocRIBDigest string `json:"loc_rib_digest"`
	// AdjOutDigests hashes each established peer's Adj-RIB-Out, keyed by
	// the peer's BGP identifier.
	AdjOutDigests map[string]string `json:"adj_out_digests"`
	// FIBDigest hashes the forwarding table (prefix, next hop, port).
	FIBDigest string `json:"fib_digest"`
	// ScheduleDigest hashes the planned fault schedule (see
	// netem.Injector.ScheduleDigest); replay determinism means equal
	// seeds produce equal schedule digests.
	ScheduleDigest string `json:"schedule_digest"`
	// RIBLen is the settled Loc-RIB size.
	RIBLen int `json:"rib_len"`
	// Transactions and Retries report how much work the run took; faulted
	// runs inflate both, but the digests must not move.
	Transactions uint64              `json:"transactions"`
	Retries      uint64              `json:"retries"`
	Faults       netem.StatsSnapshot `json:"faults"`
	Duration     time.Duration       `json:"duration"`
}

// StateDigest folds the Loc-RIB, Adj-RIB-Out, and FIB digests into one
// comparable string.
func (r ConformanceResult) StateDigest() string {
	h := sha256.New()
	fmt.Fprintf(h, "loc:%s\nfib:%s\n", r.LocRIBDigest, r.FIBDigest)
	// AdjOutDigests is keyed by peer ID; iterate in the deterministic
	// order PeerIDs produced (reconstructed by sorting keys).
	for _, k := range sortedKeys(r.AdjOutDigests) {
		fmt.Fprintf(h, "adj[%s]:%s\n", k, r.AdjOutDigests[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RunConformance executes one scenario against a live router with the
// speakers' transports wrapped in the named fault profile, waits for
// convergence, and returns the router's state digests.
//
// Convergence detection is quiescence-based, not transaction-counting:
// faulted runs replay journals after flaps, so the total transaction
// count is not knowable up front. A phase is settled when the expected
// sessions are established, the phase's state predicate holds, and the
// router's transaction/FIB counters plus the speakers' retry counters
// have been still for an idle window.
func RunConformance(scn Scenario, cfg ConformanceConfig) (ConformanceResult, error) {
	cfg.defaults()
	out := ConformanceResult{Scenario: scn, Profile: cfg.Profile, AFI: cfg.AFI}

	table, err := familyTable(cfg.AFI, cfg.TableSize, cfg.Seed)
	if err != nil {
		return out, err
	}

	profile, ok := netem.ProfileByName(cfg.Profile)
	if !ok {
		return out, fmt.Errorf("conformance: unknown fault profile %q", cfg.Profile)
	}
	profile.Seed = cfg.Seed
	// The virtual clock makes scheduled latency and stalls free: a
	// profile with seconds of stall time settles in milliseconds.
	inj := netem.NewInjector(profile, netem.NewVirtualClock())

	neighbors := []core.NeighborConfig{
		{AS: liveSpeaker1AS},
		{AS: liveSpeaker2AS},
	}
	for i := 0; i < cfg.Peers; i++ {
		neighbors = append(neighbors, core.NeighborConfig{
			AS:     receiverAS(i),
			Export: receiverPolicy(receiverGroup(i, cfg.PeerGroups)),
		})
	}
	router, err := core.NewRouter(core.Config{
		AS:              liveRouterAS,
		ID:              netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr:      "127.0.0.1:0",
		Shards:          cfg.Shards,
		BatchMaxUpdates: cfg.BatchMaxUpdates,
		BatchMaxDelay:   cfg.BatchMaxDelay,
		UpdateGroups:    cfg.UpdateGroups,
		Neighbors:       neighbors,
	})
	if err != nil {
		return out, err
	}
	out.Shards = router.Shards()
	if err := router.Start(); err != nil {
		return out, err
	}
	defer router.Stop()

	sp1 := speaker.New(speaker.Config{
		AS: liveSpeaker1AS, ID: netaddr.MustParseAddr("1.1.1.1"),
		Target: router.ListenAddr(), Name: "speaker1",
		Dial: inj.Dial("speaker1"), Reconnect: true,
	})
	if err := sp1.Connect(10 * time.Second); err != nil {
		return out, err
	}
	defer sp1.Stop()
	var sp2 *speaker.Speaker
	defer func() {
		if sp2 != nil {
			sp2.Stop()
		}
	}()

	// Receive-only peers: they never announce, they just watch the run.
	// Their Adj-RIB-Out digests land in AdjOutDigests via PeerIDs below.
	var receivers []*speaker.Speaker
	defer func() {
		for _, rc := range receivers {
			rc.Stop()
		}
	}()
	for i := 0; i < cfg.Peers; i++ {
		name := fmt.Sprintf("recv%d", i)
		rc := speaker.New(speaker.Config{
			AS: receiverAS(i), ID: receiverID(i),
			Target: router.ListenAddr(), Name: name,
			Dial: inj.Dial(name), Reconnect: true,
		})
		if err := rc.Connect(10 * time.Second); err != nil {
			return out, err
		}
		receivers = append(receivers, rc)
	}
	receiversEstablished := func() bool {
		for _, rc := range receivers {
			if !rc.Established() {
				return false
			}
		}
		return true
	}

	//bgplint:allow(detclock) reason=wall-clock deadline over a real TCP transport; digests never depend on it
	start := time.Now()
	deadline := start.Add(cfg.Timeout)

	retries := func() uint64 {
		n := sp1.Retries()
		if sp2 != nil {
			n += sp2.Retries()
		}
		for _, rc := range receivers {
			n += rc.Retries()
		}
		return n
	}
	// settle blocks until check() holds and the run has been quiet for
	// an idle window: no transactions, no FIB changes, no reconnects,
	// and every speaker's session established.
	settle := func(phase string, check func() bool) error {
		const idle = 250 * time.Millisecond
		var last [3]uint64
		//bgplint:allow(detclock) reason=settle polling measures real elapsed quiet time, not modeled time
		stableSince := time.Now()
		for {
			cur := [3]uint64{router.Transactions(), router.FIBChanges(), retries()}
			ok := sp1.Established() && (sp2 == nil || sp2.Established()) &&
				receiversEstablished() && check()
			if cur != last || !ok {
				last = cur
				stableSince = time.Now() //bgplint:allow(detclock) reason=settle polling over a real TCP transport
			} else if time.Since(stableSince) >= idle { //bgplint:allow(detclock) reason=settle polling over a real TCP transport
				return nil
			}
			//bgplint:allow(detclock) reason=timeout guard against a hung run; never part of the digest
			if time.Now().After(deadline) {
				return fmt.Errorf("conformance %s [%s/%s]: %s did not settle after %v (tx=%d retries=%d faults=%+v)",
					scn, cfg.Profile, shardLabel(out.Shards), phase, cfg.Timeout,
					router.Transactions(), retries(), inj.Stats())
			}
			time.Sleep(2 * time.Millisecond) //bgplint:allow(detclock) reason=polling backoff, not modeled time
		}
	}

	n := uint64(len(table))
	per := scn.PrefixesPerMsg

	// Phase 1: Speaker 1 injects the table.
	if err := sp1.Announce(table, per); err != nil {
		return out, err
	}
	if err := settle("phase1-inject", func() bool { return router.RIBLen() == int(n) }); err != nil {
		return out, err
	}

	switch scn.Op {
	case OpStartUp:
		// Phase 1 only.
	case OpEnding:
		// Phase 3: withdraw everything.
		if err := sp1.Withdraw(table, per); err != nil {
			return out, err
		}
		if err := settle("phase3-withdraw", func() bool { return router.RIBLen() == 0 }); err != nil {
			return out, err
		}
	case OpIncrementalNoChange, OpIncrementalChange:
		// Phase 2: Speaker 2 connects and receives the table.
		sp2 = speaker.New(speaker.Config{
			AS: liveSpeaker2AS, ID: netaddr.MustParseAddr("2.2.2.2"),
			Target: router.ListenAddr(), Name: "speaker2",
			Dial: inj.Dial("speaker2"), Reconnect: true,
		})
		if err := sp2.Connect(10 * time.Second); err != nil {
			return out, err
		}
		if err := sp2.WaitForPrefixes(n, cfg.Timeout); err != nil {
			return out, err
		}
		// Phase 3: Speaker 2 re-announces with longer or shorter paths.
		variant := make([]core.Route, len(table))
		for i, r := range table {
			if scn.Op == OpIncrementalNoChange {
				variant[i] = core.Lengthen(r, liveSpeaker2AS, 2, cfg.Seed)
			} else {
				variant[i] = core.Shorten(r, liveSpeaker2AS)
			}
		}
		if err := sp2.Announce(variant, per); err != nil {
			return out, err
		}
		if err := settle("phase3-incremental", func() bool { return router.RIBLen() == int(n) }); err != nil {
			return out, err
		}
	}

	out.Duration = time.Since(start) //bgplint:allow(detclock) reason=reported wall-clock duration; excluded from digests
	out.RIBLen = router.RIBLen()
	out.Transactions = router.Transactions()
	out.Retries = retries()
	out.Faults = inj.Stats()
	out.ScheduleDigest = inj.ScheduleDigest()
	out.LocRIBDigest = digestLocRIB(router.DumpLocRIB())
	out.AdjOutDigests = make(map[string]string)
	for _, id := range router.PeerIDs() {
		out.AdjOutDigests[id.String()] = digestAdjOut(router.DumpAdjOut(id))
	}
	out.FIBDigest = digestFIB(router)
	return out, nil
}

func shardLabel(n int) string { return fmt.Sprintf("N=%d", n) }

// receiverAS numbers the receive-only conformance peers from 65100.
func receiverAS(i int) uint32 { return uint32(65100 + i) }

// receiverID gives receiver i a unique BGP identifier under 10.1.0.0/16
// (last octet kept nonzero).
func receiverID(i int) netaddr.Addr {
	return netaddr.AddrFrom4(10, 1, byte(i/250), byte(i%250+1))
}

// receiverGroup assigns receiver i to one of g policy groups round-robin.
func receiverGroup(i, g int) int {
	if g <= 1 {
		return 0
	}
	return i % g
}

// receiverPolicy builds the export policy for receiver group g: a single
// always-matching term that sets MED 1000+g. Different groups differ in
// export behavior (different MED), so the router's update groups can
// never merge them; receivers within a group carry behaviorally
// identical policies and must see byte-identical streams.
func receiverPolicy(g int) *policy.RouteMap {
	med := uint32(1000 + g)
	return &policy.RouteMap{
		Name: fmt.Sprintf("recv-group-%d", g),
		Terms: []policy.Term{{
			Name:   "set-med",
			Set:    policy.Set{MED: &med},
			Action: policy.Permit,
		}},
	}
}

// digestLocRIB hashes a Loc-RIB snapshot: prefix, contributing peer, and
// the canonical wire encoding of the selected attributes, in the sorted
// prefix order DumpLocRIB guarantees.
func digestLocRIB(routes []core.LocRoute) string {
	h := sha256.New()
	for _, r := range routes {
		fmt.Fprintf(h, "%s %s ", r.Prefix, r.Peer)
		h.Write(wire.MarshalAttrs(*r.Attrs))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// digestAdjOut hashes one peer's Adj-RIB-Out snapshot.
func digestAdjOut(routes []core.AdjRoute) string {
	h := sha256.New()
	for _, r := range routes {
		fmt.Fprintf(h, "%s ", r.Prefix)
		h.Write(wire.MarshalAttrs(*r.Attrs))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// digestFIB hashes the forwarding table sorted by prefix (the engine's
// walk order is implementation-defined).
func digestFIB(router *core.Router) string {
	type row struct {
		p netaddr.Prefix
		e fib.Entry
	}
	var rows []row
	router.FIB().Walk(func(p netaddr.Prefix, e fib.Entry) bool {
		rows = append(rows, row{p, e})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].p.Compare(rows[j].p) < 0 })
	h := sha256.New()
	for _, r := range rows {
		fmt.Fprintf(h, "%s %s %d\n", r.p, r.e.NextHop, r.e.Port)
	}
	return hex.EncodeToString(h.Sum(nil))
}
