package bench

import (
	"fmt"
	"io"

	"bgpbench/internal/platform"
)

// WormRow summarizes one system's survivable update rates. It quantifies
// the paper's Section V.C implications: a typical BGP load is on the
// order of 100 messages/second, network-wide events (worm outbreaks)
// raise that by 2-3 orders of magnitude, and a router that falls behind
// stops answering keepalives and takes its sessions down with it.
type WormRow struct {
	System string
	// MaxSustainedMsgsPerSec is the largest arrival rate (1-prefix
	// incremental announcements, FIB-changing) at which the backlog
	// drains within the grace window.
	MaxSustainedMsgsPerSec float64
	// MaxKeepaliveSafeMsgsPerSec additionally requires every message's
	// queueing delay to stay under the hold time (90 s), i.e. the session
	// survives the storm.
	MaxKeepaliveSafeMsgsPerSec float64
	// SurvivesTypical / SurvivesWorm: the two operating points the paper
	// names — 100 msgs/s typical, 10,000 msgs/s (two orders up) worm-like.
	SurvivesTypical bool
	SurvivesWorm    bool
}

// wormSpec builds the storm specification at a rate.
func wormSpec(rate float64) platform.OpenLoopSpec {
	return platform.OpenLoopSpec{
		Kind:           platform.KindReplace, // route changes that touch the FIB
		PrefixesPerMsg: 1,
		MsgsPerSec:     rate,
		Duration:       30,
		HoldTime:       90,
	}
}

// stormAt runs one storm and reports (sustained, keepaliveSafe).
func stormAt(sys platform.SystemConfig, rate float64) (bool, bool, error) {
	sim := platform.NewSim(sys)
	res, err := sim.RunOpenLoop(wormSpec(rate), platform.CrossTraffic{})
	if err != nil {
		return false, false, err
	}
	return res.Sustained, res.Sustained && !res.KeepaliveMissed, nil
}

// maxRate binary-searches the largest rate in [lo, hi] (msgs/s) where ok
// returns true, assuming monotonicity. Returns 0 when even lo fails.
func maxRate(lo, hi float64, ok func(float64) (bool, error)) (float64, error) {
	good, err := ok(lo)
	if err != nil {
		return 0, err
	}
	if !good {
		return 0, nil
	}
	if good, err = ok(hi); err != nil {
		return 0, err
	} else if good {
		return hi, nil
	}
	for hi/lo > 1.05 {
		mid := (lo + hi) / 2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// WormStorm computes the survivable-rate table for all four systems.
func WormStorm() ([]WormRow, error) {
	var out []WormRow
	for _, sys := range platform.Systems() {
		row := WormRow{System: sys.Name}
		sustained, err := maxRate(1, 20000, func(r float64) (bool, error) {
			s, _, err := stormAt(sys, r)
			return s, err
		})
		if err != nil {
			return nil, err
		}
		row.MaxSustainedMsgsPerSec = sustained
		safe, err := maxRate(1, 20000, func(r float64) (bool, error) {
			_, k, err := stormAt(sys, r)
			return k, err
		})
		if err != nil {
			return nil, err
		}
		row.MaxKeepaliveSafeMsgsPerSec = safe
		row.SurvivesTypical = safe >= 100
		row.SurvivesWorm = safe >= 10000
		out = append(out, row)
	}
	return out, nil
}

// WriteWormReport renders the table.
func WriteWormReport(w io.Writer, rows []WormRow) {
	fmt.Fprintln(w, "Update-storm survivability (1-prefix FIB-changing updates, 30 s storm, 90 s hold time)")
	fmt.Fprintf(w, "%-12s %18s %18s %10s %10s\n",
		"system", "sustained msg/s", "keepalive-safe", "typical", "worm")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %18.0f %18.0f %10v %10v\n",
			r.System, r.MaxSustainedMsgsPerSec, r.MaxKeepaliveSafeMsgsPerSec,
			r.SurvivesTypical, r.SurvivesWorm)
	}
	fmt.Fprintln(w, "\ntypical = 100 msgs/s (paper Sec. II); worm = 10,000 msgs/s (2 orders up)")
}
