package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/fib"
	"bgpbench/internal/netaddr"
)

// LookupConfig parameterizes a synthetic full-table lookup run: the
// data-plane side of the benchmark, complementing RunLive's control-plane
// transaction scenarios. The table is a generated 1M-prefix full table (a
// generation ahead of the paper's 244k-route snapshot), and the probe mix
// is 3/4 addresses inside installed prefixes with random host bits and
// 1/4 uniform random for miss coverage.
type LookupConfig struct {
	// TableSize is the number of installed prefixes (default 1_000_000).
	TableSize int
	// Seed makes the table and probe mix deterministic.
	Seed int64
	// Engine selects the FIB lookup structure.
	Engine string
	// Table selects the concurrency wrapper: "" or "none" benchmarks the
	// bare engine single-threaded; "rwmutex" forces the classic RWMutex
	// Table; "snapshot" requires a snapshot-capable engine and uses the
	// lock-free SnapshotTable read path.
	Table string
	// Readers is the number of concurrent lookup goroutines (default 1;
	// only meaningful with a concurrency wrapper).
	Readers int
	// Duration is the measurement window (default 2s).
	Duration time.Duration
	// ChurnBatch, when positive, runs a writer goroutine committing
	// delete+reinsert batches of this many ops flat out during the
	// measurement window, so reader throughput is measured under
	// continuous table churn. Requires a concurrency wrapper.
	ChurnBatch int
	// Family selects the address family of the generated table and probe
	// mix. The zero value is IPv4, matching historical behavior.
	Family netaddr.Family
}

func (c *LookupConfig) defaults() {
	if c.TableSize == 0 {
		c.TableSize = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 5
	}
	if c.Engine == "" {
		c.Engine = "poptrie"
	}
	if c.Readers == 0 {
		c.Readers = 1
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
}

// LookupResult reports one lookup workload execution.
type LookupResult struct {
	Engine   string
	Table    string // "none", "rwmutex", or "snapshot"
	Prefixes int
	Readers  int
	// Lookups completed across all readers in Duration.
	Lookups  uint64
	Duration time.Duration
	// ChurnBatches/ChurnOps count writer commits during the window.
	ChurnBatches uint64
	ChurnOps     uint64
	// Mem is captured after the table is loaded, before measurement: the
	// engine's resident cost for this table.
	Mem MemInfo
}

// LookupsPerSec is the headline reader throughput.
func (r LookupResult) LookupsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Lookups) / r.Duration.Seconds()
}

// NsPerLookup is the mean per-lookup latency across readers.
func (r LookupResult) NsPerLookup() float64 {
	if r.Lookups == 0 {
		return 0
	}
	return float64(r.Duration.Nanoseconds()) * float64(r.Readers) / float64(r.Lookups)
}

// lookupTarget is the read surface shared by bare engines and the
// concurrent table wrappers.
type lookupTarget interface {
	Lookup(addr netaddr.Addr) (fib.Entry, bool)
}

// LookupWorkload generates the deterministic bulk-load batch and probe
// address mix used by RunLookup (exported so tests can cross-check the
// corpus shape).
func LookupWorkload(n int, seed int64) ([]fib.Op, []netaddr.Addr) {
	return LookupWorkloadFamily(n, seed, netaddr.FamilyV4)
}

// LookupWorkloadFamily is LookupWorkload for an explicit address family.
func LookupWorkloadFamily(n int, seed int64, fam netaddr.Family) ([]fib.Op, []netaddr.Addr) {
	table := core.GenerateTable(core.TableGenConfig{N: n, Seed: seed, Family: fam})
	ops := make([]fib.Op, len(table))
	for i, r := range table {
		ops[i] = fib.Op{Prefix: r.Prefix, Entry: fib.Entry{NextHop: netaddr.AddrFromV4(uint32(i | 1)), Port: i % 16}}
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6c6f6f6b))
	addrs := make([]netaddr.Addr, 8192)
	for i := range addrs {
		if i%4 == 3 {
			if fam == netaddr.FamilyV6 {
				addrs[i] = netaddr.AddrFrom128(rng.Uint64(), rng.Uint64())
			} else {
				addrs[i] = netaddr.AddrFromV4(rng.Uint32())
			}
			continue
		}
		p := table[rng.Intn(len(table))].Prefix
		addrs[i] = p.Host(uint64(rng.Uint32()))
	}
	return ops, addrs
}

// RunLookup loads the synthetic table into the configured engine/wrapper
// and measures lookup throughput for the configured window, optionally
// under concurrent writer churn.
func RunLookup(cfg LookupConfig) (LookupResult, error) {
	cfg.defaults()
	out := LookupResult{Engine: cfg.Engine, Table: cfg.Table, Readers: cfg.Readers}
	if out.Table == "" {
		out.Table = "none"
	}

	eng, err := fib.NewEngine(cfg.Engine)
	if err != nil {
		return out, err
	}
	var target lookupTarget
	var shared fib.Shared
	switch out.Table {
	case "none":
		if cfg.Readers > 1 || cfg.ChurnBatch > 0 {
			return out, fmt.Errorf("lookup: bare engine is single-threaded; use -table rwmutex or snapshot for readers/churn")
		}
		target = eng
	case "rwmutex":
		shared = fib.NewTable(eng)
		target = shared
	case "snapshot":
		s, ok := eng.(fib.Snapshotter)
		if !ok {
			return out, fmt.Errorf("lookup: engine %q cannot snapshot; -table snapshot needs a snapshot-capable engine (poptrie)", cfg.Engine)
		}
		shared = fib.NewSnapshotTable(s)
		target = shared
	default:
		return out, fmt.Errorf("lookup: unknown table wrapper %q (none, rwmutex, snapshot)", cfg.Table)
	}

	ops, addrs := LookupWorkloadFamily(cfg.TableSize, cfg.Seed, cfg.Family)
	out.Prefixes = len(ops)
	switch {
	case shared != nil:
		shared.Apply(ops)
	default:
		eng.Apply(ops)
	}
	out.Mem = Mem()

	// Optional churn writer: delete+reinsert pairs in one batch, so every
	// published epoch still holds the full table.
	stop := make(chan struct{})
	var writerDone sync.WaitGroup
	var churnBatches, churnOps atomic.Uint64
	if cfg.ChurnBatch > 0 {
		writerDone.Add(1)
		go func() {
			defer writerDone.Done()
			rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6368726e))
			buf := make([]fib.Op, 0, cfg.ChurnBatch)
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = buf[:0]
				for len(buf)+2 <= cfg.ChurnBatch {
					op := ops[rng.Intn(len(ops))]
					buf = append(buf,
						fib.Op{Prefix: op.Prefix, Delete: true},
						fib.Op{Prefix: op.Prefix, Entry: op.Entry})
				}
				shared.Apply(buf)
				churnBatches.Add(1)
				churnOps.Add(uint64(len(buf)))
			}
		}()
	}

	var readersDone sync.WaitGroup
	var total atomic.Uint64
	deadline := make(chan struct{})
	for w := 0; w < cfg.Readers; w++ {
		readersDone.Add(1)
		go func(off int) {
			defer readersDone.Done()
			i := off
			var count uint64
			var sink int
			for {
				select {
				case <-deadline:
					total.Add(count)
					return
				default:
				}
				// Amortize the channel poll over a block of lookups.
				for k := 0; k < 512; k++ {
					e, _ := target.Lookup(addrs[i&(len(addrs)-1)])
					sink += e.Port
					i++
				}
				count += 512
			}
		}(w * 1009)
	}

	start := time.Now()
	time.Sleep(cfg.Duration)
	close(deadline)
	readersDone.Wait()
	out.Duration = time.Since(start)
	close(stop)
	writerDone.Wait()
	out.Lookups = total.Load()
	out.ChurnBatches = churnBatches.Load()
	out.ChurnOps = churnOps.Load()
	return out, nil
}
