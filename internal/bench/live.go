package bench

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/dataplane"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/netem"
	"bgpbench/internal/packet"
	"bgpbench/internal/speaker"
	"bgpbench/internal/wire"
)

// LiveConfig parameterizes a live benchmark run against the Go router —
// the "fifth system" next to the four modeled ones.
type LiveConfig struct {
	// TableSize is the routing-table size in prefixes (default 10000).
	TableSize int
	// Seed makes the workload deterministic.
	Seed int64
	// FIBEngine selects the router's lookup structure (default patricia).
	FIBEngine string
	// CrossWorkers, when positive, runs that many goroutines saturating
	// the router's forwarding engine with packets during the measured
	// phase — the live analogue of the paper's cross-traffic.
	CrossWorkers int
	// CrossPPS, when positive, instead drives a rate-controlled packet
	// source through a parallel data plane sharing the router's FIB —
	// the live analogue of Figure 5's controlled cross-traffic levels.
	// Ignored when CrossWorkers is set.
	CrossPPS float64
	// Shards sets the router's decision-worker count (0 = GOMAXPROCS,
	// 1 = the classic single-worker pipeline). Sweeping this measures how
	// the fifth system scales where the paper's four could not.
	Shards int
	// BatchMaxUpdates / BatchMaxDelay forward to the router's batched
	// dispatch knobs (0 = router defaults, negative = disable/idle-flush).
	BatchMaxUpdates int
	BatchMaxDelay   time.Duration
	// Timeout bounds each phase. Zero scales the deadline with the table
	// size (see scaledTimeout) so full-DFZ runs don't inherit the flat
	// small-table default.
	Timeout time.Duration
	// FaultProfile, when non-empty and not "clean", wraps both speakers'
	// transports in the named netem fault profile (real clock, so
	// latency/stall shaping costs wall time). Speakers run with
	// journal-replay reconnection so the scenario still completes.
	FaultProfile string
	// FaultSeed seeds the fault schedule (default: Seed).
	FaultSeed int64
	// AFI selects the workload's address-family mix: "" or "v4" (the
	// historical IPv4 workload), "v6", or "dual" (half IPv4, half IPv6
	// over the same sessions). See familyTable.
	AFI string
}

func (c *LiveConfig) defaults() {
	if c.TableSize == 0 {
		c.TableSize = 10000
	}
	if c.Timeout == 0 {
		c.Timeout = scaledTimeout(c.TableSize)
	}
	if c.FIBEngine == "" {
		c.FIBEngine = "patricia"
	}
}

// scaledTimeout derives a phase deadline from the table size: the
// historical 120s floor, plus 250µs of budget per prefix beyond the
// first 100k. Flat defaults were tuned for 5-20k-prefix tables and made
// full-DFZ runs (1M prefixes through 100 sessions) fail on the clock
// rather than on correctness; scaling keeps small-table runs identical
// while giving a 1M-prefix run a ~345s ceiling.
func scaledTimeout(n int) time.Duration {
	base := 120 * time.Second
	if n > 100_000 {
		base += time.Duration(n-100_000) * 250 * time.Microsecond
	}
	return base
}

// LiveResult reports one live scenario execution.
type LiveResult struct {
	Scenario Scenario
	Prefixes int
	// AFI echoes the workload's address-family mix ("" = v4).
	AFI string
	// Shards is the decision-worker count the router actually ran with.
	Shards int
	// BatchMaxUpdates and BatchMaxDelay are the effective batched-dispatch
	// bounds the router ran with (after defaulting; 0 updates = disabled).
	BatchMaxUpdates int
	BatchMaxDelay   time.Duration
	Duration        time.Duration
	// TPS is prefix transactions per second of the measured phase.
	TPS float64
	// FwdPacketsPerSec is the forwarding throughput sustained during the
	// measured phase when CrossWorkers > 0.
	FwdPacketsPerSec float64
	// FIBChanges observed during the whole run (sanity: scenarios 5-6 must
	// not add changes in Phase 3).
	FIBChanges uint64
	// FaultProfile and Faults report the fault regime the run executed
	// under; Retries counts speaker reconnections.
	FaultProfile string
	Faults       netem.StatsSnapshot
	Retries      uint64
}

const (
	liveRouterAS   = 65000
	liveSpeaker1AS = 65001
	liveSpeaker2AS = 65002
)

// basePathFor returns the uniform AS path Speaker 1 announces with: long
// enough (4 hops) that Scenario 7/8's shortened variants are strictly
// shorter and Scenario 5/6's lengthened variants strictly longer.
func basePathFor() wire.ASPath {
	return wire.NewASPath(liveSpeaker1AS, 100, 101, 102)
}

// RunLive executes one benchmark scenario against a freshly started Go
// router over loopback TCP and returns the measured transactions/second.
func RunLive(scn Scenario, cfg LiveConfig) (LiveResult, error) {
	cfg.defaults()
	out := LiveResult{Scenario: scn, FaultProfile: cfg.FaultProfile, AFI: cfg.AFI}

	table, err := familyTable(cfg.AFI, cfg.TableSize, cfg.Seed)
	if err != nil {
		return out, err
	}

	// Optional fault injection on both speaker transports. The live
	// benchmark measures wall-clock TPS, so the injector runs on the
	// real clock (unlike conformance runs, which use the virtual one).
	var inj *netem.Injector
	faulty := cfg.FaultProfile != "" && cfg.FaultProfile != "clean"
	if cfg.FaultProfile != "" {
		profile, ok := netem.ProfileByName(cfg.FaultProfile)
		if !ok {
			return out, fmt.Errorf("live %s: unknown fault profile %q", scn, cfg.FaultProfile)
		}
		profile.Seed = cfg.FaultSeed
		if profile.Seed == 0 {
			profile.Seed = cfg.Seed
		}
		inj = netem.NewInjector(profile, netem.NewRealClock())
	}
	speakerDial := func(name string) func(string, string, time.Duration) (net.Conn, error) {
		if inj == nil {
			return nil
		}
		return inj.Dial(name)
	}

	router, err := core.NewRouter(core.Config{
		AS:              liveRouterAS,
		ID:              netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr:      "127.0.0.1:0",
		FIBEngine:       cfg.FIBEngine,
		Shards:          cfg.Shards,
		BatchMaxUpdates: cfg.BatchMaxUpdates,
		BatchMaxDelay:   cfg.BatchMaxDelay,
		Neighbors: []core.NeighborConfig{
			{AS: liveSpeaker1AS},
			{AS: liveSpeaker2AS},
		},
	})
	if err != nil {
		return out, err
	}
	out.Shards = router.Shards()
	out.BatchMaxUpdates, out.BatchMaxDelay = router.BatchLimits()
	if err := router.Start(); err != nil {
		return out, err
	}
	defer router.Stop()

	sp1 := speaker.New(speaker.Config{
		AS: liveSpeaker1AS, ID: netaddr.MustParseAddr("1.1.1.1"),
		Target: router.ListenAddr(), Name: "speaker1",
		Dial: speakerDial("speaker1"), Reconnect: faulty,
	})
	if err := sp1.Connect(10 * time.Second); err != nil {
		return out, err
	}
	defer sp1.Stop()

	// The generated table (built above) shares one AS path so that
	// large-packet runs actually pack 500 prefixes per UPDATE (the
	// paper's large packets carry one attribute block for 500 NLRI
	// entries).
	n := uint64(len(table))

	waitTx := func(target uint64) (time.Duration, error) {
		deadline := time.Now().Add(cfg.Timeout)
		start := time.Now()
		for router.Transactions() < target {
			if time.Now().After(deadline) {
				return 0, fmt.Errorf("live %s: %d/%d transactions after %v",
					scn, router.Transactions(), target, cfg.Timeout)
			}
			time.Sleep(100 * time.Microsecond)
		}
		return time.Since(start), nil
	}

	// measure wraps a phase: optional cross-load, send, wait, timing.
	measure := func(send func() error, txTarget uint64) error {
		stopCross, fwdRate := startCross(router, cfg)
		start := time.Now()
		if err := send(); err != nil {
			stopCross()
			return err
		}
		if _, err := waitTx(txTarget); err != nil {
			stopCross()
			return err
		}
		out.Duration = time.Since(start)
		stopCross()
		out.FwdPacketsPerSec = fwdRate()
		out.Prefixes = int(n)
		out.TPS = float64(n) / out.Duration.Seconds()
		return nil
	}

	per := scn.PrefixesPerMsg
	switch scn.Op {
	case OpStartUp:
		if err := measure(func() error { return sp1.Announce(table, per) }, n); err != nil {
			return out, err
		}
	case OpEnding:
		if err := sp1.Announce(table, per); err != nil {
			return out, err
		}
		if _, err := waitTx(n); err != nil {
			return out, err
		}
		if err := measure(func() error { return sp1.Withdraw(table, per) }, 2*n); err != nil {
			return out, err
		}
	case OpIncrementalNoChange, OpIncrementalChange:
		if err := sp1.Announce(table, per); err != nil {
			return out, err
		}
		if _, err := waitTx(n); err != nil {
			return out, err
		}
		// Phase 2: Speaker 2 connects and receives the table.
		sp2 := speaker.New(speaker.Config{
			AS: liveSpeaker2AS, ID: netaddr.MustParseAddr("2.2.2.2"),
			Target: router.ListenAddr(), Name: "speaker2",
			Dial: speakerDial("speaker2"), Reconnect: faulty,
		})
		if err := sp2.Connect(10 * time.Second); err != nil {
			return out, err
		}
		defer sp2.Stop()
		if err := sp2.WaitForPrefixes(n, cfg.Timeout); err != nil {
			return out, err
		}
		// Phase 3: Speaker 2 re-announces with longer or shorter paths.
		variant := make([]core.Route, len(table))
		for i, r := range table {
			if scn.Op == OpIncrementalNoChange {
				variant[i] = core.Lengthen(r, liveSpeaker2AS, 2, cfg.Seed)
			} else {
				variant[i] = core.Shorten(r, liveSpeaker2AS)
			}
		}
		fibBefore := router.FIBChanges()
		if err := measure(func() error { return sp2.Announce(variant, per) }, 2*n); err != nil {
			return out, err
		}
		// Session flaps legitimately churn the forwarding table (withdraw
		// on down, re-add on replay), so the no-change invariant only
		// holds on clean transports.
		if !faulty && scn.Op == OpIncrementalNoChange && router.FIBChanges() != fibBefore {
			return out, fmt.Errorf("live %s: forwarding table changed (%d -> %d) in a no-change scenario",
				scn, fibBefore, router.FIBChanges())
		}
		out.Retries += sp2.Retries()
	}
	out.FIBChanges = router.FIBChanges()
	out.Retries += sp1.Retries()
	if inj != nil {
		out.Faults = inj.Stats()
	}
	return out, nil
}

// startCross selects the configured cross-traffic mode.
func startCross(router *core.Router, cfg LiveConfig) (stop func(), rate func() float64) {
	if cfg.CrossWorkers > 0 {
		return startCrossLoad(router, cfg.CrossWorkers)
	}
	if cfg.CrossPPS > 0 {
		return startCrossRate(router, cfg.CrossPPS)
	}
	return func() {}, func() float64 { return 0 }
}

// startCrossRate drives a rate-controlled source through a parallel data
// plane sharing the router's FIB.
func startCrossRate(router *core.Router, pps float64) (stop func(), rate func() float64) {
	plane, err := dataplane.New(dataplane.Config{
		Workers:    2,
		QueueDepth: 8192,
		FIB:        router.FIB(),
	})
	if err != nil {
		return func() {}, func() float64 { return 0 }
	}
	plane.Start()
	src := dataplane.NewSource(plane, pps, 1000)
	start := time.Now()
	src.Start()
	var window time.Duration
	var once sync.Once
	return func() {
			once.Do(func() {
				src.Stop()
				plane.Stop()
				window = time.Since(start)
			})
		}, func() float64 {
			if window <= 0 {
				return 0
			}
			return float64(plane.Stats().Forwarded+plane.Stats().DropNoRoute) / window.Seconds()
		}
}

// startCrossLoad saturates the router's forwarding engine with workers
// goroutines; the returned stop function halts them and rate() reports the
// mean forwarded packets/second over the load window.
func startCrossLoad(router *core.Router, workers int) (stop func(), rate func() float64) {
	if workers <= 0 {
		return func() {}, func() float64 { return 0 }
	}
	var done atomic.Bool
	var forwarded atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	fwd := router.Forwarder()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			// Pre-build a template packet; rewrite the destination per
			// iteration (cheap xorshift) and restore TTL/checksum fields.
			x := seed | 1
			for !done.Load() {
				for i := 0; i < 256; i++ {
					x ^= x << 13
					x ^= x >> 17
					x ^= x << 5
					pkt := packet.Marshal(packet.Header{
						TTL:      16,
						Protocol: 17,
						Src:      netaddr.AddrFrom4(172, 16, byte(x>>8), byte(x)),
						Dst:      netaddr.AddrFromV4(x),
					}, nil)
					fwd.Process(pkt)
				}
				forwarded.Add(256)
			}
		}(uint32(w)*2654435761 + 12345)
	}
	var window time.Duration
	return func() {
			if done.CompareAndSwap(false, true) {
				wg.Wait()
				window = time.Since(start)
			}
		}, func() float64 {
			if window <= 0 {
				return 0
			}
			return float64(forwarded.Load()) / window.Seconds()
		}
}
