package bench

import (
	"fmt"
	"time"

	"bgpbench/internal/core"
	"bgpbench/internal/netaddr"
	"bgpbench/internal/policy"
	"bgpbench/internal/speaker"
)

// FanoutConfig parameterizes a many-peer emission benchmark: one speaker
// injects a full table while N receive-only peers, split round-robin
// across G export-policy groups, drain the router's Adj-RIB-Out. The
// interesting comparison is UpdateGroups on vs off at the same peer
// count: grouped emission computes and marshals each run once per group
// and fans the bytes out, so its cost should scale with G, not N.
type FanoutConfig struct {
	// Peers is the receive-only peer count (default 100).
	Peers int
	// Groups is the number of distinct export policies the peers split
	// across (default 4).
	Groups int
	// TableSize is the routing-table size in prefixes (default 5000).
	TableSize int
	// Seed makes the workload deterministic.
	Seed int64
	// Shards is the router's decision-worker count (0 = GOMAXPROCS).
	Shards int
	// UpdateGroups selects the grouped emission path.
	UpdateGroups bool
	// Timeout bounds the whole run. Zero scales the deadline with the
	// table size (see scaledTimeout) so full-DFZ runs don't inherit the
	// flat small-table default.
	Timeout time.Duration
	// AFI selects the workload's address-family mix: "" or "v4" (the
	// historical IPv4 workload), "v6", or "dual". See familyTable.
	AFI string
	// TableMode selects the table composition: "" or "uniform" (one
	// shared AS path), or "dfz" (Zipf-weighted attribute sharing). See
	// familyTableMode.
	TableMode string
}

func (c *FanoutConfig) defaults() {
	if c.Peers == 0 {
		c.Peers = 100
	}
	if c.Groups == 0 {
		c.Groups = 4
	}
	if c.TableSize == 0 {
		c.TableSize = 5000
	}
	if c.Timeout == 0 {
		// The table-scaled base covers the grouped path, but the ungrouped
		// baseline delivers prefixes × peers transactions; budget ~5µs per
		// prefix-peer on top so full-DFZ baseline cells (1M × 100 peers is
		// ~400s on one core) don't spuriously time out.
		c.Timeout = scaledTimeout(c.TableSize) +
			time.Duration(c.TableSize)*time.Duration(c.Peers)*5*time.Microsecond
	}
}

// FanoutResult reports one many-peer emission run.
type FanoutResult struct {
	Peers        int
	Groups       int
	UpdateGroups bool
	Shards       int
	Prefixes     int
	// AFI echoes the workload's address-family mix ("" = v4).
	AFI string
	// Duration spans the first injected UPDATE to the last receiver
	// holding the full table.
	Duration time.Duration
	// TPS is injected prefix transactions per second over that window.
	TPS float64
	// NsPerPrefixPeer normalizes the window to per-(prefix, peer)
	// delivery cost — the number that must scale sublinearly in Peers
	// when grouping works.
	NsPerPrefixPeer float64
	// TableMode echoes the table composition ("" = uniform).
	TableMode string
	// GroupCount, FanoutRatio, BytesBuilt, and BytesSaved echo the
	// router's update-group counters (zero when UpdateGroups is off).
	GroupCount  int
	FanoutRatio float64
	BytesBuilt  uint64
	BytesSaved  uint64
	// BytesMarshaled is the bytes the shared marshal cache actually
	// encoded; BytesBuilt / BytesMarshaled is the cross-group marshal
	// amplification the cache removed. CacheHits / CacheMisses count
	// cache probes.
	BytesMarshaled uint64
	CacheHits      uint64
	CacheMisses    uint64
	// Mem snapshots the whole process (router + in-process speakers)
	// after the run settles.
	Mem MemInfo
}

// fanoutPolicy builds the export policy for fanout group g: set a
// group-specific MED (1000+g) on a common /6 sliver of the v4 space,
// permit everything else unchanged. Groups thus stay distinct update
// groups (policy.CanonicalKey covers the MED), while exporting
// byte-identical attribute blocks for the three quarters of the table
// outside the sliver. Because every group matches the same sliver, the
// emission runs break at the same prefixes in every group, so those
// shared runs are byte-for-byte identical — the regime where the
// router's cross-group marshal cache collapses groups × prefixes
// marshal work into one marshal per distinct run. (Per-group disjoint
// slivers would desynchronize run boundaries and defeat the cache even
// where the attribute bytes agree.) Compare receiverPolicy
// (conformance), which deliberately differentiates every route so
// grouped and ungrouped streams can be digest-compared per group.
func fanoutPolicy(g int) *policy.RouteMap {
	med := uint32(1000 + g)
	base := netaddr.AddrFrom4(64, 0, 0, 0)
	return &policy.RouteMap{
		Name: fmt.Sprintf("fanout-group-%d", g),
		Terms: []policy.Term{{
			Name: "sliver-med",
			Match: policy.Match{PrefixList: &policy.PrefixList{
				Name: fmt.Sprintf("fanout-sliver-%d", g),
				Rules: []policy.PrefixRule{{
					Prefix: netaddr.PrefixFrom(base, 6),
					GE:     6, // any more-specific within the /6
					Action: policy.Permit,
				}},
			}},
			Set:    policy.Set{MED: &med},
			Action: policy.Permit,
		}},
		DefaultPermit: true,
	}
}

// RunFanout executes one many-peer emission run over loopback TCP.
func RunFanout(cfg FanoutConfig) (FanoutResult, error) {
	cfg.defaults()
	out := FanoutResult{Peers: cfg.Peers, Groups: cfg.Groups, UpdateGroups: cfg.UpdateGroups, AFI: cfg.AFI, TableMode: cfg.TableMode}

	table, err := familyTableMode(cfg.AFI, cfg.TableMode, cfg.TableSize, cfg.Seed)
	if err != nil {
		return out, err
	}

	neighbors := []core.NeighborConfig{{AS: liveSpeaker1AS}}
	for i := 0; i < cfg.Peers; i++ {
		neighbors = append(neighbors, core.NeighborConfig{
			AS:     receiverAS(i),
			Export: fanoutPolicy(receiverGroup(i, cfg.Groups)),
		})
	}
	router, err := core.NewRouter(core.Config{
		AS:           liveRouterAS,
		ID:           netaddr.MustParseAddr("10.255.0.1"),
		ListenAddr:   "127.0.0.1:0",
		Shards:       cfg.Shards,
		UpdateGroups: cfg.UpdateGroups,
		Neighbors:    neighbors,
	})
	if err != nil {
		return out, err
	}
	out.Shards = router.Shards()
	if err := router.Start(); err != nil {
		return out, err
	}
	defer router.Stop()

	receivers := make([]*speaker.Speaker, 0, cfg.Peers)
	defer func() {
		for _, rc := range receivers {
			rc.Stop()
		}
	}()
	for i := 0; i < cfg.Peers; i++ {
		rc := speaker.New(speaker.Config{
			AS: receiverAS(i), ID: receiverID(i),
			Target: router.ListenAddr(), Name: fmt.Sprintf("recv%d", i),
		})
		if err := rc.Connect(10 * time.Second); err != nil {
			return out, err
		}
		receivers = append(receivers, rc)
	}

	sp1 := speaker.New(speaker.Config{
		AS: liveSpeaker1AS, ID: netaddr.MustParseAddr("1.1.1.1"),
		Target: router.ListenAddr(), Name: "speaker1",
	})
	if err := sp1.Connect(10 * time.Second); err != nil {
		return out, err
	}
	defer sp1.Stop()

	n := uint64(len(table))
	out.Prefixes = int(n)

	start := time.Now()
	deadline := start.Add(cfg.Timeout)
	if err := sp1.Announce(table, LargePacket); err != nil {
		return out, err
	}
	for i, rc := range receivers {
		remain := time.Until(deadline)
		if remain <= 0 {
			return out, fmt.Errorf("fanout: receiver %d/%d still draining after %v", i, cfg.Peers, cfg.Timeout)
		}
		if err := rc.WaitForPrefixes(n, remain); err != nil {
			return out, fmt.Errorf("fanout: receiver %d/%d: %w", i, cfg.Peers, err)
		}
	}
	out.Duration = time.Since(start)
	out.TPS = float64(n) / out.Duration.Seconds()
	out.NsPerPrefixPeer = float64(out.Duration.Nanoseconds()) / (float64(n) * float64(cfg.Peers))
	if gs := router.GroupStats(); gs.Enabled {
		out.GroupCount = gs.Groups
		out.FanoutRatio = gs.FanoutRatio()
		out.BytesBuilt = gs.BytesBuilt
		out.BytesSaved = gs.BytesSaved
		out.BytesMarshaled = gs.BytesMarshaled
		out.CacheHits = gs.CacheHits
		out.CacheMisses = gs.CacheMisses
	}
	out.Mem = Mem()
	return out, nil
}
