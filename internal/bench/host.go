package bench

import "runtime"

// HostInfo records the execution environment a benchmark ran under, so
// persisted results (BENCH_live.json) are comparable across machines:
// a 4-shard number from a 1-core box means something very different
// from the same number on 16 cores.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Host snapshots the current process's execution environment.
func Host() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
