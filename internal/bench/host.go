package bench

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// HostInfo records the execution environment a benchmark ran under, so
// persisted results (BENCH_live.json) are comparable across machines:
// a 4-shard number from a 1-core box means something very different
// from the same number on 16 cores.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Host snapshots the current process's execution environment.
func Host() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// MemInfo records process memory at a measurement point, so persisted
// results carry the space cost next to the throughput numbers.
type MemInfo struct {
	// AllocBytes is live heap after a forced GC: the structures' actual
	// footprint, not allocator slack.
	AllocBytes uint64 `json:"alloc_bytes"`
	// RSSBytes is the OS resident set (VmRSS), 0 where unavailable.
	RSSBytes uint64 `json:"rss_bytes,omitempty"`
}

// Mem snapshots live-heap and RSS. It runs a GC cycle first so numbers
// are comparable across runs; callers should not place it on a hot path.
func Mem() MemInfo {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemInfo{AllocBytes: ms.HeapAlloc, RSSBytes: readRSS()}
}

// readRSS parses VmRSS from /proc/self/status (linux); 0 elsewhere.
func readRSS() uint64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
