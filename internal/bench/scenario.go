// Package bench implements the paper's benchmark: the eight workload
// scenarios of Table I, the phase orchestration of Figure 1, the
// transactions-per-second metric, and the runners that regenerate every
// table and figure of the evaluation section on the modeled substrate
// (internal/platform) and the live substrate (the Go router).
package bench

import (
	"fmt"

	"bgpbench/internal/platform"
)

// SmallPacket and LargePacket are the two packet-size operating points of
// Table I: one prefix per UPDATE vs. 500 prefixes per UPDATE.
const (
	SmallPacket = 1
	LargePacket = 500
)

// Operation is the BGP operation class a scenario exercises.
type Operation int

// Scenario operation classes (the rows of Table I).
const (
	// OpStartUp injects a full table of announcements into empty RIBs.
	OpStartUp Operation = iota
	// OpEnding withdraws every previously announced prefix.
	OpEnding
	// OpIncrementalNoChange announces already-known prefixes with longer
	// AS paths: the decision process runs but the forwarding table does
	// not change.
	OpIncrementalNoChange
	// OpIncrementalChange announces already-known prefixes with shorter
	// AS paths: best routes are replaced and the forwarding table updated.
	OpIncrementalChange
)

// String names the operation.
func (o Operation) String() string {
	switch o {
	case OpStartUp:
		return "start-up"
	case OpEnding:
		return "ending"
	case OpIncrementalNoChange:
		return "incremental-nochange"
	case OpIncrementalChange:
		return "incremental-change"
	}
	return fmt.Sprintf("Operation(%d)", int(o))
}

// Scenario is one of the paper's eight benchmark scenarios (Table I).
type Scenario struct {
	Num            int
	Op             Operation
	PrefixesPerMsg int
	// FIBChanges records Table I's "Forwarding Table Changes" row.
	FIBChanges bool
}

// String renders e.g. "Scenario 5 (incremental-nochange, large packets)".
func (s Scenario) String() string {
	size := "small"
	if s.PrefixesPerMsg > 1 {
		size = "large"
	}
	return fmt.Sprintf("Scenario %d (%s, %s packets)", s.Num, s.Op, size)
}

// Scenarios lists the eight benchmark scenarios in Table I order.
var Scenarios = []Scenario{
	{Num: 1, Op: OpStartUp, PrefixesPerMsg: SmallPacket, FIBChanges: true},
	{Num: 2, Op: OpStartUp, PrefixesPerMsg: LargePacket, FIBChanges: true},
	{Num: 3, Op: OpEnding, PrefixesPerMsg: SmallPacket, FIBChanges: true},
	{Num: 4, Op: OpEnding, PrefixesPerMsg: LargePacket, FIBChanges: true},
	{Num: 5, Op: OpIncrementalNoChange, PrefixesPerMsg: SmallPacket, FIBChanges: false},
	{Num: 6, Op: OpIncrementalNoChange, PrefixesPerMsg: LargePacket, FIBChanges: false},
	{Num: 7, Op: OpIncrementalChange, PrefixesPerMsg: SmallPacket, FIBChanges: true},
	{Num: 8, Op: OpIncrementalChange, PrefixesPerMsg: LargePacket, FIBChanges: true},
}

// ScenarioByNum returns the scenario with the given 1-based number.
func ScenarioByNum(n int) (Scenario, error) {
	if n < 1 || n > len(Scenarios) {
		return Scenario{}, fmt.Errorf("bench: scenario %d out of range 1..%d", n, len(Scenarios))
	}
	return Scenarios[n-1], nil
}

// messagesFor splits a prefix count into whole messages (rounding up).
func messagesFor(prefixes, perMsg int) int {
	return (prefixes + perMsg - 1) / perMsg
}

// Phases expands a scenario into its platform phases per the methodology
// of Figure 1. tableSize is the routing-table size in prefixes. The
// returned measured index selects the phase whose duration defines the
// scenario's transactions-per-second.
func (s Scenario) Phases(tableSize int) (phases []platform.Phase, measured int) {
	per := s.PrefixesPerMsg
	switch s.Op {
	case OpStartUp:
		// Phase 1 only: the router learns the table from Speaker 1.
		return []platform.Phase{{
			Name: "phase1-inject", Kind: platform.KindAnnounce,
			Messages: messagesFor(tableSize, per), PrefixesPerMsg: per,
		}}, 0
	case OpEnding:
		// Phase 1 sets up (not measured; the paper waits for the router to
		// finish processing before Phase 3), Phase 2 is omitted, Phase 3
		// withdraws everything.
		return []platform.Phase{
			{
				Name: "phase1-inject", Kind: platform.KindAnnounce,
				Messages: messagesFor(tableSize, per), PrefixesPerMsg: per,
			},
			{
				Name: "phase3-withdraw", Kind: platform.KindWithdraw,
				Messages: messagesFor(tableSize, per), PrefixesPerMsg: per,
			},
		}, 1
	case OpIncrementalNoChange:
		return []platform.Phase{
			{
				Name: "phase1-inject", Kind: platform.KindAnnounce,
				Messages: messagesFor(tableSize, per), PrefixesPerMsg: per,
			},
			{
				Name: "phase2-export", Kind: platform.KindExport,
				Messages: messagesFor(tableSize, platform.ExportBatchSize), PrefixesPerMsg: platform.ExportBatchSize,
			},
			{
				Name: "phase3-longer", Kind: platform.KindAnnounceNoChange,
				Messages: messagesFor(tableSize, per), PrefixesPerMsg: per,
			},
		}, 2
	case OpIncrementalChange:
		return []platform.Phase{
			{
				Name: "phase1-inject", Kind: platform.KindAnnounce,
				Messages: messagesFor(tableSize, per), PrefixesPerMsg: per,
			},
			{
				Name: "phase2-export", Kind: platform.KindExport,
				Messages: messagesFor(tableSize, platform.ExportBatchSize), PrefixesPerMsg: platform.ExportBatchSize,
			},
			{
				Name: "phase3-shorter", Kind: platform.KindReplace,
				Messages: messagesFor(tableSize, per), PrefixesPerMsg: per,
			},
		}, 2
	}
	return nil, 0
}

// ModeledResult is one scenario execution on one modeled system.
type ModeledResult struct {
	System   string
	Scenario Scenario
	// TPS is the transactions/second of the measured phase (Table III).
	TPS float64
	// Measured is the measured phase's detail.
	Measured platform.PhaseResult
	// Full carries every phase and the traces for figure rendering.
	Full platform.Result
}

// RunModeled executes one scenario on a modeled system under the given
// cross-traffic and table size.
func RunModeled(sys platform.SystemConfig, scn Scenario, tableSize int, cross platform.CrossTraffic) (ModeledResult, error) {
	phases, mIdx := scn.Phases(tableSize)
	sim := platform.NewSim(sys)
	full, err := sim.RunPhases(phases, cross, 0)
	if err != nil {
		return ModeledResult{}, fmt.Errorf("%s on %s: %w", scn, sys.Name, err)
	}
	return ModeledResult{
		System:   sys.Name,
		Scenario: scn,
		TPS:      full.Phases[mIdx].TPS,
		Measured: full.Phases[mIdx],
		Full:     full,
	}, nil
}
