package bench

import (
	"fmt"
	"io"
	"math"

	"bgpbench/internal/platform"
)

// PaperTable3 holds the paper's measured Table III values (transactions
// per second without cross-traffic), indexed [scenario-1][system] in the
// paper's column order: Pentium III, Xeon, IXP2400, Cisco. These are the
// calibration targets and the reference EXPERIMENTS.md compares against.
var PaperTable3 = [8][4]float64{
	{185.2, 2105.3, 24.1, 10.7},
	{312.5, 2247.2, 36.4, 2492.9},
	{204.1, 2898.6, 26.7, 10.4},
	{344.8, 1941.7, 43.5, 2927.5},
	{1111.1, 3389.8, 85.7, 10.9},
	{3636.4, 10000.0, 230.8, 3332.3},
	{116.6, 784.3, 11.6, 10.7},
	{118.7, 673.4, 14.9, 2445.2},
}

// PaperSystemNames gives Table III's column order.
var PaperSystemNames = []string{"PentiumIII", "Xeon", "IXP2400", "Cisco"}

// Table3 runs all eight scenarios on all four modeled systems without
// cross-traffic and returns the simulated Table III, indexed like
// PaperTable3.
func Table3(tableSize int) ([8][4]float64, error) {
	var out [8][4]float64
	for si, sys := range platform.Systems() {
		for i, scn := range Scenarios {
			res, err := RunModeled(sys, scn, tableSize, platform.CrossTraffic{})
			if err != nil {
				return out, err
			}
			out[i][si] = res.TPS
		}
	}
	return out, nil
}

// WriteTable3 renders the simulated table next to the paper's values with
// the per-cell ratio, in the paper's layout.
func WriteTable3(w io.Writer, sim [8][4]float64) {
	fmt.Fprintln(w, "Table III: BGP performance without cross-traffic (transactions/second)")
	fmt.Fprintln(w, "                     PentiumIII            Xeon              IXP2400             Cisco")
	fmt.Fprintln(w, "              sim    paper ratio    sim    paper ratio   sim   paper ratio   sim    paper ratio")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(w, "Scenario %d ", i+1)
		for s := 0; s < 4; s++ {
			ratio := math.NaN()
			if PaperTable3[i][s] != 0 {
				ratio = sim[i][s] / PaperTable3[i][s]
			}
			fmt.Fprintf(w, " %8.1f %7.1f %5.2f", sim[i][s], PaperTable3[i][s], ratio)
		}
		fmt.Fprintln(w)
	}
}

// Table3Fidelity summarizes how close the simulated table is to the
// paper's: the geometric mean and worst-case of per-cell ratios
// (sim/paper, folded to >= 1).
func Table3Fidelity(sim [8][4]float64) (geoMean, worst float64) {
	logSum, n := 0.0, 0
	worst = 1.0
	for i := 0; i < 8; i++ {
		for s := 0; s < 4; s++ {
			if PaperTable3[i][s] == 0 || sim[i][s] == 0 {
				continue
			}
			r := sim[i][s] / PaperTable3[i][s]
			if r < 1 {
				r = 1 / r
			}
			logSum += math.Log(r)
			n++
			if r > worst {
				worst = r
			}
		}
	}
	if n > 0 {
		geoMean = math.Exp(logSum / float64(n))
	}
	return geoMean, worst
}
