package bench

import (
	"strings"
	"testing"

	"bgpbench/internal/platform"
)

const figTable = 3000

func TestFig3TracesHavePhaseStructure(t *testing.T) {
	results, err := Fig3(figTable)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("systems = %d", len(results))
	}
	for _, r := range results {
		if len(r.Phases) != 3 {
			t.Fatalf("%s: phases = %d, want 3", r.System, len(r.Phases))
		}
		for _, name := range []string{"cpu:bgp", "cpu:rib", "cpu:fea"} {
			found := false
			for _, n := range r.Traces.Names() {
				if n == name {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: missing trace %s", r.System, name)
			}
		}
	}
	// Ordering: Xeon completes everything fastest, IXP slowest (the
	// paper's x-axis spans: <90s, ~500s, >half hour).
	total := func(r Fig3Result) float64 {
		last := r.Phases[len(r.Phases)-1]
		return last.Start + last.Duration
	}
	byName := map[string]Fig3Result{}
	for _, r := range results {
		byName[r.System] = r
	}
	if !(total(byName["Xeon"]) < total(byName["PentiumIII"]) &&
		total(byName["PentiumIII"]) < total(byName["IXP2400"])) {
		t.Errorf("completion ordering wrong: Xeon %.1fs, PIII %.1fs, IXP %.1fs",
			total(byName["Xeon"]), total(byName["PentiumIII"]), total(byName["IXP2400"]))
	}
	// The rtrmgr overhead is a visible component on the IXP (the paper's
	// "considerable component of the total workload") and negligible on
	// the Xeon.
	ixpMgr := byName["IXP2400"].Traces.Get("cpu:rtrmgr").Mean()
	xeonMgr := byName["Xeon"].Traces.Get("cpu:rtrmgr").Mean()
	if ixpMgr < 2*xeonMgr {
		t.Errorf("IXP rtrmgr share (%.2f%%) not clearly above Xeon's (%.2f%%)", ixpMgr, xeonMgr)
	}
}

func TestFig4PacketSizeContrast(t *testing.T) {
	results, err := Fig4(figTable)
	if err != nil {
		t.Fatal(err)
	}
	small, large := results[0], results[1]
	if small.Scenario.Num != 1 || large.Scenario.Num != 2 {
		t.Fatal("scenario order wrong")
	}
	// Large packets finish the phase faster.
	if large.Phases[0].Duration >= small.Phases[0].Duration {
		t.Errorf("large packets not faster: %.1fs vs %.1fs",
			large.Phases[0].Duration, small.Phases[0].Duration)
	}
	// The paper's Figure 4 contrast: with large packets, xorp_bgp's
	// activity is compressed into an early fraction of the run.
	activeFraction := func(r Fig4Result) float64 {
		s := r.Traces.Get("cpu:bgp")
		active := 0
		for _, v := range s.Values {
			if v > 0.5 {
				active++
			}
		}
		if len(s.Values) == 0 {
			return 0
		}
		return float64(active) / float64(len(s.Values))
	}
	if af := activeFraction(large); af > activeFraction(small) {
		t.Errorf("bgp active fraction: large %.2f should be <= small %.2f",
			af, activeFraction(small))
	}
}

func TestFig5Shapes(t *testing.T) {
	series, err := Fig5(figTable, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.Scenario.Num != 2 {
			continue // one scenario suffices for the shape assertions
		}
		first := s.Points[0].TPS
		last := s.Points[len(s.Points)-1].TPS
		switch s.System {
		case "PentiumIII", "Xeon":
			if !(last < first && last > first/2) {
				t.Errorf("%s: expected gradual decline, got %.1f -> %.1f", s.System, first, last)
			}
			// Monotone non-increasing.
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].TPS > s.Points[i-1].TPS*1.01 {
					t.Errorf("%s: tps increased with load at %.0f Mbps", s.System, s.Points[i].CrossMbps)
				}
			}
		case "IXP2400":
			if last < first*0.99 || last > first*1.01 {
				t.Errorf("IXP2400: expected flat curve, got %.1f -> %.1f", first, last)
			}
		case "Cisco":
			if last > first/5 {
				t.Errorf("Cisco large packets: expected drastic drop, got %.1f -> %.1f", first, last)
			}
		}
	}
}

func TestFig6ContentionSignatures(t *testing.T) {
	results, err := Fig6(figTable, 300)
	if err != nil {
		t.Fatal(err)
	}
	noCross, withCross := results[0], results[1]
	if noCross.TPS <= withCross.TPS {
		t.Errorf("cross-traffic did not slow BGP: %.1f vs %.1f", noCross.TPS, withCross.TPS)
	}
	// The paper's Figure 6(b): interrupts total 20-30% of CPU at 300 Mbps.
	intr := withCross.Traces.Get("cpu:interrupts").Mean()
	if intr < 15 || intr > 35 {
		t.Errorf("interrupt share = %.1f%%, want ~20-30%%", intr)
	}
	// Figure 6(c): the forwarding rate dips below the offered 300 Mbps
	// during the FIB-heavy phases.
	measured := withCross.Phases[len(withCross.Phases)-1]
	if measured.ForwardedMbps >= measured.OfferedMbps-5 {
		t.Errorf("no forwarding loss under contention: %.1f of %.1f Mbps",
			measured.ForwardedMbps, measured.OfferedMbps)
	}
	// And the no-cross run has no interrupt series at all.
	for _, n := range noCross.Traces.Names() {
		if strings.Contains(n, "interrupts") {
			t.Error("interrupt trace present without cross-traffic")
		}
	}
}

func TestWriteFig5CSV(t *testing.T) {
	series := []Fig5Series{{
		System:   "PentiumIII",
		Scenario: Scenarios[0],
		Points:   []Fig5Point{{CrossMbps: 0, TPS: 185.2}, {CrossMbps: 100, TPS: 170}},
	}}
	var sb strings.Builder
	if err := WriteFig5CSV(&sb, series); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "scenario,system,cross_mbps,tps\n") {
		t.Fatalf("header wrong: %q", out)
	}
	if !strings.Contains(out, "1,PentiumIII,0,185.20") {
		t.Fatalf("row missing: %q", out)
	}
}

func TestFig3UnknownSystem(t *testing.T) {
	if _, err := Fig3(figTable, "PDP11"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

// TestWormStormSearchSmall exercises the binary search on one system with
// a reduced range so the full sweep stays out of the unit-test budget.
func TestWormStormSearchSmall(t *testing.T) {
	sys, _ := platform.SystemByName("PentiumIII")
	// At 50 msg/s the PIII sustains; at 5000 it cannot (calibrated
	// capacity is ~226/s).
	ok, safe, err := stormAt(sys, 50)
	if err != nil || !ok || !safe {
		t.Fatalf("50 msg/s: ok=%v safe=%v err=%v", ok, safe, err)
	}
	ok, _, err = stormAt(sys, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("5000 msg/s should overwhelm the PentiumIII")
	}
	rate, err := maxRate(50, 5000, func(r float64) (bool, error) {
		s, _, err := stormAt(sys, r)
		return s, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rate < 100 || rate > 500 {
		t.Fatalf("sustainable rate = %.0f, want ~226", rate)
	}
}
