package bench

import (
	"fmt"

	"bgpbench/internal/core"
	"bgpbench/internal/netaddr"
)

// Address-family selectors for the live, fanout, and conformance
// workloads (the -afi flag of cmd/bgpbench). The empty string means
// AFIv4: the historical IPv4-only workload, whose generated tables,
// byte streams, and digests are unchanged.
const (
	AFIv4   = "v4"
	AFIv6   = "v6"
	AFIDual = "dual"
)

// familyTable builds the workload table for the requested address-family
// selector. "" and AFIv4 reproduce the historical IPv4 table
// byte-for-byte; AFIv6 draws the same number of prefixes from the IPv6
// global-table length mix; AFIDual splits the table into an IPv4 half
// and an IPv6 half (generated from an offset seed so the halves are
// independent), announced over the same sessions.
func familyTable(afi string, n int, seed int64) ([]core.Route, error) {
	gen := func(n int, seed int64, fam netaddr.Family) []core.Route {
		return core.UniformPath(core.GenerateTable(core.TableGenConfig{
			N: n, Seed: seed, FirstAS: liveSpeaker1AS, Family: fam,
		}), basePathFor())
	}
	switch afi {
	case "", AFIv4:
		return gen(n, seed, netaddr.FamilyV4), nil
	case AFIv6:
		return gen(n, seed, netaddr.FamilyV6), nil
	case AFIDual:
		v6n := n / 2
		return append(gen(n-v6n, seed, netaddr.FamilyV4), gen(v6n, seed+1, netaddr.FamilyV6)...), nil
	}
	return nil, fmt.Errorf("bench: unknown AFI selector %q (want v4, v6, or dual)", afi)
}
