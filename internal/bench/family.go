package bench

import (
	"fmt"

	"bgpbench/internal/core"
	"bgpbench/internal/netaddr"
)

// Address-family selectors for the live, fanout, and conformance
// workloads (the -afi flag of cmd/bgpbench). The empty string means
// AFIv4: the historical IPv4-only workload, whose generated tables,
// byte streams, and digests are unchanged.
const (
	AFIv4   = "v4"
	AFIv6   = "v6"
	AFIDual = "dual"
)

// Table-composition selectors (the -table flag of cmd/bgpbench). The
// empty string means TableUniform: the historical one-shared-AS-path
// table, whose byte streams and digests are unchanged.
const (
	TableUniform = "uniform"
	TableDFZ     = "dfz"
)

// familyTable builds the workload table for the requested address-family
// selector. "" and AFIv4 reproduce the historical IPv4 table
// byte-for-byte; AFIv6 draws the same number of prefixes from the IPv6
// global-table length mix; AFIDual splits the table into an IPv4 half
// and an IPv6 half (generated from an offset seed so the halves are
// independent), announced over the same sessions.
func familyTable(afi string, n int, seed int64) ([]core.Route, error) {
	return familyTableMode(afi, TableUniform, n, seed)
}

// familyTableMode is familyTable with a table-composition mode: "" and
// TableUniform give every route one shared AS path (the paper's
// large-packet regime, one attribute block for the whole table);
// TableDFZ draws paths from a Zipf-weighted pool of ~n/50 distinct
// paths (floor 16), approximating the DFZ's attribute-sharing skew so
// big-table runs exercise realistic interning and marshal-cache hit
// rates instead of the uniform best case.
func familyTableMode(afi, mode string, n int, seed int64) ([]core.Route, error) {
	attrGroups := 0
	switch mode {
	case "", TableUniform:
	case TableDFZ:
		attrGroups = n / 50
		if attrGroups < 16 {
			attrGroups = 16
		}
	default:
		return nil, fmt.Errorf("bench: unknown table mode %q (want uniform or dfz)", mode)
	}
	gen := func(n int, seed int64, fam netaddr.Family) []core.Route {
		t := core.GenerateTable(core.TableGenConfig{
			N: n, Seed: seed, FirstAS: liveSpeaker1AS, Family: fam,
			AttrGroups: attrGroups,
		})
		if attrGroups == 0 {
			t = core.UniformPath(t, basePathFor())
		}
		return t
	}
	switch afi {
	case "", AFIv4:
		return gen(n, seed, netaddr.FamilyV4), nil
	case AFIv6:
		return gen(n, seed, netaddr.FamilyV6), nil
	case AFIDual:
		v6n := n / 2
		return append(gen(n-v6n, seed, netaddr.FamilyV4), gen(v6n, seed+1, netaddr.FamilyV6)...), nil
	}
	return nil, fmt.Errorf("bench: unknown AFI selector %q (want v4, v6, or dual)", afi)
}
