package bench

import (
	"testing"
	"time"
)

func liveCfg() LiveConfig {
	return LiveConfig{TableSize: 2000, Seed: 11, Timeout: 60 * time.Second}
}

func TestRunLiveAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("live benchmark takes seconds")
	}
	for _, scn := range Scenarios {
		scn := scn
		t.Run(scn.String(), func(t *testing.T) {
			res, err := RunLive(scn, liveCfg())
			if err != nil {
				t.Fatal(err)
			}
			if res.Prefixes != 2000 {
				t.Errorf("prefixes = %d", res.Prefixes)
			}
			if res.TPS <= 0 {
				t.Errorf("tps = %v", res.TPS)
			}
			t.Logf("%s: %.0f tps (%.3fs)", scn, res.TPS, res.Duration.Seconds())
			// FIB-change accounting: start-up installs, no-change must not
			// add changes in phase 3 (checked inside RunLive), replacement
			// must roughly double the change count.
			if scn.Op == OpIncrementalChange && res.FIBChanges < 2*2000 {
				t.Errorf("replacement scenario recorded only %d FIB changes", res.FIBChanges)
			}
		})
	}
}

func TestRunLiveWithCrossLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("live benchmark takes seconds")
	}
	cfg := liveCfg()
	cfg.CrossWorkers = 2
	scn, _ := ScenarioByNum(2)
	res, err := RunLive(scn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FwdPacketsPerSec <= 0 {
		t.Error("cross load reported zero forwarding throughput")
	}
	t.Logf("with cross-load: %.0f tps, %.0f pkts/s forwarded", res.TPS, res.FwdPacketsPerSec)
}

func TestRunLiveWithRateControlledCross(t *testing.T) {
	if testing.Short() {
		t.Skip("live benchmark takes seconds")
	}
	cfg := liveCfg()
	cfg.CrossPPS = 200000
	scn, _ := ScenarioByNum(2)
	res, err := RunLive(scn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FwdPacketsPerSec <= 0 {
		t.Error("rate-controlled cross load reported zero throughput")
	}
	t.Logf("rate-controlled cross: %.0f tps, %.0f pkts/s", res.TPS, res.FwdPacketsPerSec)
}
