package bench

import (
	"fmt"
	"io"

	"bgpbench/internal/platform"
	"bgpbench/internal/trace"
)

// Fig3Result reproduces Figure 3: per-process CPU load over time while a
// system runs Scenario 6 (all three phases).
type Fig3Result struct {
	System string
	Traces *trace.Set
	Phases []platform.PhaseResult
}

// Fig3 runs Scenario 6 on the named systems (the paper shows Pentium III,
// Xeon, and IXP2400) and returns their traces.
func Fig3(tableSize int, systems ...string) ([]Fig3Result, error) {
	if len(systems) == 0 {
		systems = []string{"PentiumIII", "Xeon", "IXP2400"}
	}
	scn, _ := ScenarioByNum(6)
	var out []Fig3Result
	for _, name := range systems {
		sys, ok := platform.SystemByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown system %q", name)
		}
		res, err := RunModeled(sys, scn, tableSize, platform.CrossTraffic{})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig3Result{System: name, Traces: res.Full.Traces, Phases: res.Full.Phases})
	}
	return out, nil
}

// Fig4Result reproduces Figure 4: Pentium III CPU load under Scenario 1
// (small packets) vs Scenario 2 (large packets).
type Fig4Result struct {
	Scenario Scenario
	Traces   *trace.Set
	Phases   []platform.PhaseResult
}

// Fig4 runs Scenarios 1 and 2 on the Pentium III and returns both traces.
func Fig4(tableSize int) ([2]Fig4Result, error) {
	var out [2]Fig4Result
	sys, _ := platform.SystemByName("PentiumIII")
	for i, num := range []int{1, 2} {
		scn, _ := ScenarioByNum(num)
		res, err := RunModeled(sys, scn, tableSize, platform.CrossTraffic{})
		if err != nil {
			return out, err
		}
		out[i] = Fig4Result{Scenario: scn, Traces: res.Full.Traces, Phases: res.Full.Phases}
	}
	return out, nil
}

// Fig5Point is one sample of Figure 5: a (cross-traffic, tps) pair.
type Fig5Point struct {
	CrossMbps float64
	TPS       float64
}

// Fig5Series is one curve of Figure 5: a system under one scenario swept
// across cross-traffic levels up to its forwarding capacity.
type Fig5Series struct {
	System   string
	Scenario Scenario
	Points   []Fig5Point
}

// Fig5 sweeps cross-traffic for every scenario and system, reproducing the
// paper's 8-panel figure. Steps are 100 Mbps up to each system's
// forwarding limit (the paper's x-axis), always including the limit
// itself.
func Fig5(tableSize int, stepMbps float64) ([]Fig5Series, error) {
	if stepMbps <= 0 {
		stepMbps = 100
	}
	var out []Fig5Series
	for _, scn := range Scenarios {
		for _, sys := range platform.Systems() {
			series := Fig5Series{System: sys.Name, Scenario: scn}
			levels := []float64{0}
			for m := stepMbps; m < sys.ForwardCapMbps; m += stepMbps {
				levels = append(levels, m)
			}
			levels = append(levels, sys.ForwardCapMbps)
			for _, mbps := range levels {
				res, err := RunModeled(sys, scn, tableSize, platform.CrossTraffic{Mbps: mbps})
				if err != nil {
					return nil, err
				}
				series.Points = append(series.Points, Fig5Point{CrossMbps: mbps, TPS: res.TPS})
			}
			out = append(out, series)
		}
	}
	return out, nil
}

// WriteFig5CSV emits "scenario,system,cross_mbps,tps" rows.
func WriteFig5CSV(w io.Writer, series []Fig5Series) error {
	if _, err := fmt.Fprintln(w, "scenario,system,cross_mbps,tps"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%d,%s,%.0f,%.2f\n", s.Scenario.Num, s.System, p.CrossMbps, p.TPS); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig6Result reproduces Figure 6: Pentium III running Scenario 8 without
// and with 300 Mbps of cross-traffic, including the forwarding-rate trace.
type Fig6Result struct {
	CrossMbps float64
	TPS       float64
	Traces    *trace.Set
	Phases    []platform.PhaseResult
}

// Fig6 runs Scenario 8 on the Pentium III at 0 and crossMbps (default 300).
func Fig6(tableSize int, crossMbps float64) ([2]Fig6Result, error) {
	if crossMbps <= 0 {
		crossMbps = 300
	}
	var out [2]Fig6Result
	sys, _ := platform.SystemByName("PentiumIII")
	scn, _ := ScenarioByNum(8)
	for i, mbps := range []float64{0, crossMbps} {
		res, err := RunModeled(sys, scn, tableSize, platform.CrossTraffic{Mbps: mbps})
		if err != nil {
			return out, err
		}
		out[i] = Fig6Result{
			CrossMbps: mbps,
			TPS:       res.TPS,
			Traces:    res.Full.Traces,
			Phases:    res.Full.Phases,
		}
	}
	return out, nil
}
