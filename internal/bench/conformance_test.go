package bench

import (
	"fmt"
	"os"
	"testing"
)

// gateProfiles are the profiles every scenario must pass conformance
// under (the acceptance gate); all three eventually deliver the full
// update stream, so the settled state must match the clean run.
var gateProfiles = []string{"clean", "lossy-reorder", "flap-reset"}

const conformanceSeed = 1701

// runConf executes one conformance run, failing the test on error.
func runConf(t *testing.T, scn Scenario, profile string, shards int) ConformanceResult {
	t.Helper()
	res, err := RunConformance(scn, ConformanceConfig{
		Profile: profile,
		Seed:    conformanceSeed,
		Shards:  shards,
	})
	if err != nil {
		t.Fatalf("%s [%s N=%d]: %v", scn, profile, shards, err)
	}
	return res
}

// TestConformanceMatrix is the acceptance gate: every scenario, under
// every gate profile, must settle to the same Loc-RIB/Adj-RIB-Out/FIB
// digests with one decision shard and with four — and every faulted run
// must match the clean run's digests (the profiles guarantee eventual
// delivery). Runs the full 8x3x2 matrix; skipped under -short.
func TestConformanceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full conformance matrix is long; run without -short")
	}
	for _, scn := range Scenarios {
		scn := scn
		t.Run(fmt.Sprintf("scenario%d", scn.Num), func(t *testing.T) {
			t.Parallel()
			var cleanDigest string
			for _, profile := range gateProfiles {
				single := runConf(t, scn, profile, 1)
				sharded := runConf(t, scn, profile, 4)
				if single.StateDigest() != sharded.StateDigest() {
					t.Errorf("%s [%s]: N=1 and N=4 disagree:\n  N=1 loc=%s fib=%s\n  N=4 loc=%s fib=%s",
						scn, profile,
						single.LocRIBDigest, single.FIBDigest,
						sharded.LocRIBDigest, sharded.FIBDigest)
				}
				if profile == "clean" {
					cleanDigest = single.StateDigest()
					if single.Faults.Corrupts+single.Faults.Resets+single.Faults.Reorders != 0 {
						t.Errorf("%s [clean]: faults injected: %+v", scn, single.Faults)
					}
				} else {
					if single.StateDigest() != cleanDigest {
						t.Errorf("%s [%s]: faulted state differs from clean run", scn, profile)
					}
					if profile == "flap-reset" && single.Faults.Resets == 0 {
						t.Errorf("%s [flap-reset]: no reset fired; profile exercised nothing", scn)
					}
					if profile == "lossy-reorder" && single.Faults.Corrupts+single.Faults.Reorders == 0 {
						t.Errorf("%s [lossy-reorder]: no corruption fired; profile exercised nothing", scn)
					}
				}
			}
		})
	}
}

// TestConformanceReplayDeterminism: same seed + same profile => the
// byte-identical fault schedule and identical state digests across two
// consecutive runs. This is the CI replay-determinism check.
func TestConformanceReplayDeterminism(t *testing.T) {
	scn := Scenarios[7] // incremental-change, large packets: all phases, both speakers
	for _, profile := range []string{"lossy-reorder", "flap-reset"} {
		a := runConf(t, scn, profile, 4)
		b := runConf(t, scn, profile, 4)
		if a.ScheduleDigest != b.ScheduleDigest {
			t.Errorf("[%s] fault schedules differ across runs:\n  %s\n  %s",
				profile, a.ScheduleDigest, b.ScheduleDigest)
		}
		if a.StateDigest() != b.StateDigest() {
			t.Errorf("[%s] state digests differ across runs:\n  loc %s / %s\n  fib %s / %s",
				profile, a.LocRIBDigest, b.LocRIBDigest, a.FIBDigest, b.FIBDigest)
		}
	}
}

// TestConformanceBatchingEquivalence: the batched dispatch path must
// settle to digests identical to the unbatched one. One representative
// small-packet scenario at N=4, swept across batch bounds (disabled,
// degenerate 1-update batches, and a mid-size bound), plus one faulted
// run to cover flush-before-teardown interleavings.
func TestConformanceBatchingEquivalence(t *testing.T) {
	scn := Scenarios[6] // incremental-change, small packets: max message count
	run := func(profile string, batch int) ConformanceResult {
		res, err := RunConformance(scn, ConformanceConfig{
			Profile:         profile,
			Seed:            conformanceSeed,
			Shards:          4,
			BatchMaxUpdates: batch,
		})
		if err != nil {
			t.Fatalf("%s [%s batch=%d]: %v", scn, profile, batch, err)
		}
		return res
	}
	base := run("clean", -1) // batching disabled
	for _, batch := range []int{1, 32, 256} {
		if got := run("clean", batch); got.StateDigest() != base.StateDigest() {
			t.Errorf("%s [clean]: batch=%d digests differ from unbatched:\n  loc %s / %s\n  fib %s / %s",
				scn, batch, base.LocRIBDigest, got.LocRIBDigest, base.FIBDigest, got.FIBDigest)
		}
	}
	faultBase := run("flap-reset", -1)
	if got := run("flap-reset", 32); got.StateDigest() != faultBase.StateDigest() {
		t.Errorf("%s [flap-reset]: batch=32 digests differ from unbatched", scn)
	}
}

// TestConformanceGate is the quick -race CI gate: one representative
// scenario under one faulty profile, N=1 vs N=4. Selected via
// BGPBENCH_CONFORMANCE_GATE=1 so the race run can execute just this
// test; it also runs as part of the normal suite.
func TestConformanceGate(t *testing.T) {
	scn := Scenarios[6] // incremental-change, small packets: max message count
	profile := "flap-reset"
	single := runConf(t, scn, profile, 1)
	sharded := runConf(t, scn, profile, 4)
	if single.StateDigest() != sharded.StateDigest() {
		t.Fatalf("%s [%s]: N=1 and N=4 disagree", scn, profile)
	}
	if single.Faults.Resets == 0 || sharded.Faults.Resets == 0 {
		t.Fatalf("%s [%s]: no resets fired (single=%+v sharded=%+v)",
			scn, profile, single.Faults, sharded.Faults)
	}
	if os.Getenv("BGPBENCH_CONFORMANCE_GATE") != "" {
		t.Logf("gate: loc=%s fib=%s retries=%d", single.LocRIBDigest, single.FIBDigest, single.Retries+sharded.Retries)
	}
}
