package bench

import (
	"fmt"
	"os"
	"testing"
)

// gateProfiles are the profiles every scenario must pass conformance
// under (the acceptance gate); all three eventually deliver the full
// update stream, so the settled state must match the clean run.
var gateProfiles = []string{"clean", "lossy-reorder", "flap-reset"}

const conformanceSeed = 1701

// runConf executes one conformance run, failing the test on error.
func runConf(t *testing.T, scn Scenario, profile string, shards int) ConformanceResult {
	t.Helper()
	res, err := RunConformance(scn, ConformanceConfig{
		Profile: profile,
		Seed:    conformanceSeed,
		Shards:  shards,
	})
	if err != nil {
		t.Fatalf("%s [%s N=%d]: %v", scn, profile, shards, err)
	}
	return res
}

// TestConformanceMatrix is the acceptance gate: every scenario, under
// every gate profile, must settle to the same Loc-RIB/Adj-RIB-Out/FIB
// digests with one decision shard and with four — and every faulted run
// must match the clean run's digests (the profiles guarantee eventual
// delivery). Runs the full 8x3x2 matrix; skipped under -short.
func TestConformanceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full conformance matrix is long; run without -short")
	}
	for _, scn := range Scenarios {
		scn := scn
		t.Run(fmt.Sprintf("scenario%d", scn.Num), func(t *testing.T) {
			t.Parallel()
			var cleanDigest string
			for _, profile := range gateProfiles {
				single := runConf(t, scn, profile, 1)
				sharded := runConf(t, scn, profile, 4)
				if single.StateDigest() != sharded.StateDigest() {
					t.Errorf("%s [%s]: N=1 and N=4 disagree:\n  N=1 loc=%s fib=%s\n  N=4 loc=%s fib=%s",
						scn, profile,
						single.LocRIBDigest, single.FIBDigest,
						sharded.LocRIBDigest, sharded.FIBDigest)
				}
				if profile == "clean" {
					cleanDigest = single.StateDigest()
					if single.Faults.Corrupts+single.Faults.Resets+single.Faults.Reorders != 0 {
						t.Errorf("%s [clean]: faults injected: %+v", scn, single.Faults)
					}
				} else {
					if single.StateDigest() != cleanDigest {
						t.Errorf("%s [%s]: faulted state differs from clean run", scn, profile)
					}
					if profile == "flap-reset" && single.Faults.Resets == 0 {
						t.Errorf("%s [flap-reset]: no reset fired; profile exercised nothing", scn)
					}
					if profile == "lossy-reorder" && single.Faults.Corrupts+single.Faults.Reorders == 0 {
						t.Errorf("%s [lossy-reorder]: no corruption fired; profile exercised nothing", scn)
					}
				}
			}
		})
	}
}

// TestConformanceReplayDeterminism: same seed + same profile => the
// byte-identical fault schedule and identical state digests across two
// consecutive runs. This is the CI replay-determinism check.
func TestConformanceReplayDeterminism(t *testing.T) {
	scn := Scenarios[7] // incremental-change, large packets: all phases, both speakers
	for _, profile := range []string{"lossy-reorder", "flap-reset"} {
		a := runConf(t, scn, profile, 4)
		b := runConf(t, scn, profile, 4)
		if a.ScheduleDigest != b.ScheduleDigest {
			t.Errorf("[%s] fault schedules differ across runs:\n  %s\n  %s",
				profile, a.ScheduleDigest, b.ScheduleDigest)
		}
		if a.StateDigest() != b.StateDigest() {
			t.Errorf("[%s] state digests differ across runs:\n  loc %s / %s\n  fib %s / %s",
				profile, a.LocRIBDigest, b.LocRIBDigest, a.FIBDigest, b.FIBDigest)
		}
	}
}

// TestConformanceBatchingEquivalence: the batched dispatch path must
// settle to digests identical to the unbatched one. One representative
// small-packet scenario at N=4, swept across batch bounds (disabled,
// degenerate 1-update batches, and a mid-size bound), plus one faulted
// run to cover flush-before-teardown interleavings.
func TestConformanceBatchingEquivalence(t *testing.T) {
	scn := Scenarios[6] // incremental-change, small packets: max message count
	run := func(profile string, batch int) ConformanceResult {
		res, err := RunConformance(scn, ConformanceConfig{
			Profile:         profile,
			Seed:            conformanceSeed,
			Shards:          4,
			BatchMaxUpdates: batch,
		})
		if err != nil {
			t.Fatalf("%s [%s batch=%d]: %v", scn, profile, batch, err)
		}
		return res
	}
	base := run("clean", -1) // batching disabled
	for _, batch := range []int{1, 32, 256} {
		if got := run("clean", batch); got.StateDigest() != base.StateDigest() {
			t.Errorf("%s [clean]: batch=%d digests differ from unbatched:\n  loc %s / %s\n  fib %s / %s",
				scn, batch, base.LocRIBDigest, got.LocRIBDigest, base.FIBDigest, got.FIBDigest)
		}
	}
	faultBase := run("flap-reset", -1)
	if got := run("flap-reset", 32); got.StateDigest() != faultBase.StateDigest() {
		t.Errorf("%s [flap-reset]: batch=32 digests differ from unbatched", scn)
	}
}

// TestConformanceGate is the quick -race CI gate: one representative
// scenario under one faulty profile, N=1 vs N=4. Selected via
// BGPBENCH_CONFORMANCE_GATE=1 so the race run can execute just this
// test; it also runs as part of the normal suite.
func TestConformanceGate(t *testing.T) {
	scn := Scenarios[6] // incremental-change, small packets: max message count
	profile := "flap-reset"
	single := runConf(t, scn, profile, 1)
	sharded := runConf(t, scn, profile, 4)
	if single.StateDigest() != sharded.StateDigest() {
		t.Fatalf("%s [%s]: N=1 and N=4 disagree", scn, profile)
	}
	if single.Faults.Resets == 0 || sharded.Faults.Resets == 0 {
		t.Fatalf("%s [%s]: no resets fired (single=%+v sharded=%+v)",
			scn, profile, single.Faults, sharded.Faults)
	}
	if os.Getenv("BGPBENCH_CONFORMANCE_GATE") != "" {
		t.Logf("gate: loc=%s fib=%s retries=%d", single.LocRIBDigest, single.FIBDigest, single.Retries+sharded.Retries)
	}
}

// TestConformanceDualStackGate is the dual-stack acceptance gate: a
// representative scenario, run per address-family mix, must settle to
// identical digests at N=1 vs N=4 shards and under a faulted profile —
// with IPv6 NLRI flowing end-to-end (MP_REACH/MP_UNREACH over the same
// sessions). The three mixes must also settle to three *distinct*
// states: if the v6 or dual digests collapsed onto the v4 ones, the
// IPv6 half of the workload silently went nowhere.
func TestConformanceDualStackGate(t *testing.T) {
	scn := Scenarios[6] // incremental-change, small packets: all phases
	run := func(afi, profile string, shards int) ConformanceResult {
		res, err := RunConformance(scn, ConformanceConfig{
			Profile: profile,
			Seed:    conformanceSeed,
			Shards:  shards,
			AFI:     afi,
		})
		if err != nil {
			t.Fatalf("%s [%s/%s N=%d]: %v", scn, afi, profile, shards, err)
		}
		return res
	}
	digests := map[string]string{}
	for _, afi := range []string{AFIv4, AFIv6, AFIDual} {
		clean := run(afi, "clean", 1)
		if clean.RIBLen == 0 {
			t.Fatalf("[%s] settled with an empty Loc-RIB", afi)
		}
		if sharded := run(afi, "clean", 4); sharded.StateDigest() != clean.StateDigest() {
			t.Errorf("[%s] N=1 and N=4 disagree:\n  loc %s / %s\n  fib %s / %s",
				afi, clean.LocRIBDigest, sharded.LocRIBDigest, clean.FIBDigest, sharded.FIBDigest)
		}
		if faulted := run(afi, "flap-reset", 4); faulted.StateDigest() != clean.StateDigest() {
			t.Errorf("[%s] flap-reset state differs from clean run", afi)
		}
		digests[afi] = clean.StateDigest()
	}
	if digests[AFIv4] == digests[AFIv6] || digests[AFIv4] == digests[AFIDual] || digests[AFIv6] == digests[AFIDual] {
		t.Errorf("address-family mixes did not produce distinct states: %v", digests)
	}
	// The explicit "v4" selector and the zero value are the same
	// workload; their digests must agree byte-for-byte.
	if def := run("", "clean", 1); def.StateDigest() != digests[AFIv4] {
		t.Errorf("default AFI digest differs from explicit v4:\n  %s\n  %s", def.StateDigest(), digests[AFIv4])
	}
}

// TestConformanceBadAFI: an unknown selector must fail fast, before any
// router or speaker starts.
func TestConformanceBadAFI(t *testing.T) {
	_, err := RunConformance(Scenarios[0], ConformanceConfig{AFI: "v5"})
	if err == nil {
		t.Fatal("AFI \"v5\" accepted")
	}
}
