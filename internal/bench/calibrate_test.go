package bench

import (
	"os"
	"sync"
	"testing"
)

var table3Cache struct {
	once sync.Once
	sim  [8][4]float64
	err  error
}

// cachedTable3 computes the simulated Table III once per test binary.
func cachedTable3(t *testing.T) [8][4]float64 {
	t.Helper()
	table3Cache.once.Do(func() {
		table3Cache.sim, table3Cache.err = Table3(20000)
	})
	if table3Cache.err != nil {
		t.Fatal(table3Cache.err)
	}
	return table3Cache.sim
}

// TestTable3Calibration regenerates Table III on the modeled substrate and
// checks fidelity against the paper's measurements: every cell within 25%
// and a geometric-mean ratio within 10%. Run with -v for the side-by-side
// table.
func TestTable3Calibration(t *testing.T) {
	sim := cachedTable3(t)
	if testing.Verbose() {
		WriteTable3(os.Stdout, sim)
	}
	geo, worst := Table3Fidelity(sim)
	t.Logf("fidelity: geometric mean ratio %.3f, worst cell %.3f", geo, worst)
	if geo > 1.10 || worst > 1.25 {
		WriteTable3(os.Stderr, sim)
		t.Errorf("fidelity regressed: geometric mean %.3f (limit 1.10), worst %.3f (limit 1.25)", geo, worst)
	}
}

// TestTable3ShapeFindings asserts the qualitative observations the paper
// draws from Table III (Section V.A bullets), which must hold regardless
// of exact calibration:
//
//  1. the dual-core router is fastest except where the commercial router
//     wins (scenarios 2, 4, 8);
//  2. roughly an order of magnitude separates Xeon/PentiumIII and
//     PentiumIII/IXP2400;
//  3. scenarios without forwarding-table changes are faster than those
//     with (5 vs 1, 6 vs 2 per system);
//  4. large packets beat small packets on the uni-core router;
//  5. the commercial system is slower than the network processor on small
//     packets.
func TestTable3ShapeFindings(t *testing.T) {
	sim := cachedTable3(t)
	const piii, xeon, ixp, cisco = 0, 1, 2, 3

	// (1) Xeon wins everywhere except the Cisco's large-packet cells.
	for i := 0; i < 8; i++ {
		best := xeon
		for s := 0; s < 4; s++ {
			if sim[i][s] > sim[i][best] {
				best = s
			}
		}
		switch i + 1 {
		case 2, 4:
			if best != cisco {
				t.Errorf("scenario %d: expected Cisco fastest, got column %d", i+1, best)
			}
		case 8:
			if best != cisco && best != xeon {
				t.Errorf("scenario %d: expected Cisco or Xeon fastest, got column %d", i+1, best)
			}
		default:
			if best != xeon {
				t.Errorf("scenario %d: expected Xeon fastest, got column %d", i+1, best)
			}
		}
	}

	// (2) Clear performance steps Xeon -> PentiumIII -> IXP2400. (The
	// paper calls this "roughly one order of magnitude", though its own
	// Table III ratios range from ~3x to ~15x.)
	for i := 0; i < 8; i++ {
		if r := sim[i][xeon] / sim[i][piii]; r < 2.5 {
			t.Errorf("scenario %d: Xeon/PentiumIII ratio %.1f < 2.5", i+1, r)
		}
		if r := sim[i][piii] / sim[i][ixp]; r < 2.5 {
			t.Errorf("scenario %d: PentiumIII/IXP ratio %.1f < 2.5", i+1, r)
		}
	}

	// (3) No-FIB-change scenarios are faster than FIB-changing ones.
	for _, s := range []int{piii, xeon, ixp} {
		if sim[4][s] <= sim[0][s] {
			t.Errorf("system %d: scenario 5 (%.0f) not faster than scenario 1 (%.0f)", s, sim[4][s], sim[0][s])
		}
		if sim[5][s] <= sim[1][s] {
			t.Errorf("system %d: scenario 6 (%.0f) not faster than scenario 2 (%.0f)", s, sim[5][s], sim[1][s])
		}
	}

	// (4) Large packets beat small on the uni-core router.
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}} {
		if sim[pair[1]][piii] <= sim[pair[0]][piii] {
			t.Errorf("PentiumIII: scenario %d (%.0f) not faster than scenario %d (%.0f)",
				pair[1]+1, sim[pair[1]][piii], pair[0]+1, sim[pair[0]][piii])
		}
	}

	// (5) Cisco slower than IXP2400 on every small-packet scenario.
	for _, i := range []int{0, 2, 4, 6} {
		if sim[i][cisco] >= sim[i][ixp] {
			t.Errorf("scenario %d: Cisco (%.1f) not slower than IXP (%.1f)", i+1, sim[i][cisco], sim[i][ixp])
		}
	}

	// Bonus: the dual-core anomaly the raw data shows — large packets
	// *hurt* the Xeon in FIB-changing withdraw/replace scenarios.
	if sim[3][xeon] >= sim[2][xeon] {
		t.Errorf("Xeon: scenario 4 (%.0f) should be slower than scenario 3 (%.0f)", sim[3][xeon], sim[2][xeon])
	}
	if sim[7][xeon] >= sim[6][xeon] {
		t.Errorf("Xeon: scenario 8 (%.0f) should be slower than scenario 7 (%.0f)", sim[7][xeon], sim[6][xeon])
	}
}
