package bench

import (
	"fmt"
	"io"

	"bgpbench/internal/platform"
)

// Ablate runs the model-design ablations called out in DESIGN.md and
// writes a report. Each ablation flips one mechanism of the platform model
// and shows which paper observation depends on it.
func Ablate(w io.Writer, tableSize int) error {
	if err := ablateSuperlinear(w, tableSize); err != nil {
		return err
	}
	if err := ablateSMT(w, tableSize); err != nil {
		return err
	}
	if err := ablateAdjOut(w, tableSize); err != nil {
		return err
	}
	return ablatePriority(w, tableSize)
}

func runCell(sys platform.SystemConfig, num, tableSize int, cross float64) (ModeledResult, error) {
	scn, err := ScenarioByNum(num)
	if err != nil {
		return ModeledResult{}, err
	}
	return RunModeled(sys, scn, tableSize, platform.CrossTraffic{Mbps: cross})
}

// ablateSuperlinear removes the superlinear FIB batch-commit penalty from
// the Xeon and shows that the dual-core large-packet anomaly (Table III
// scenarios 4 and 8 slower than 3 and 7) disappears.
func ablateSuperlinear(w io.Writer, tableSize int) error {
	fmt.Fprintln(w, "Ablation 1: superlinear FIB batch-commit penalty (Xeon)")
	fmt.Fprintln(w, "  The paper's raw Table III shows the dual-core system slowing down with")
	fmt.Fprintln(w, "  large packets in FIB-changing scenarios. Removing the n^2 commit term")
	fmt.Fprintln(w, "  makes large packets win everywhere, as naive pipelining predicts:")
	base := platform.Xeon()
	flat := platform.Xeon()
	flat.Costs.PerFIBBatchSuperA = 0
	flat.Costs.PerFIBBatchSuperW = 0
	flat.Costs.PerFIBBatchSuperR = 0
	fmt.Fprintf(w, "  %-10s %12s %12s\n", "scenario", "with", "without")
	for _, num := range []int{3, 4, 7, 8} {
		rb, err := runCell(base, num, tableSize, 0)
		if err != nil {
			return err
		}
		rf, err := runCell(flat, num, tableSize, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10d %10.1f %12.1f\n", num, rb.TPS, rf.TPS)
	}
	fmt.Fprintln(w)
	return nil
}

// ablateSMT sweeps the SMT efficiency factor on the Xeon, quantifying how
// much of the dual-core advantage comes from the extra hardware threads.
func ablateSMT(w io.Writer, tableSize int) error {
	fmt.Fprintln(w, "Ablation 2: SMT efficiency sweep (Xeon, Scenario 1)")
	for _, eff := range []float64{0, 0.25, 0.5, 1.0} {
		sys := platform.Xeon()
		sys.SMTEfficiency = eff
		r, err := runCell(sys, 1, tableSize, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  smt=%.2f  tps=%.1f\n", eff, r.TPS)
	}
	fmt.Fprintln(w)
	return nil
}

// ablateAdjOut flips re-advertisement coalescing on the IXP2400: without
// it, the slow XScale loses the large-packet benefit in Scenario 8.
func ablateAdjOut(w io.Writer, tableSize int) error {
	fmt.Fprintln(w, "Ablation 3: re-advertisement coalescing (IXP2400, Scenarios 7-8)")
	coal := platform.IXP2400()
	solo := platform.IXP2400()
	solo.Costs.AdjOutAmortized = false
	fmt.Fprintf(w, "  %-10s %12s %12s\n", "scenario", "coalesced", "per-prefix")
	for _, num := range []int{7, 8} {
		rc, err := runCell(coal, num, tableSize, 0)
		if err != nil {
			return err
		}
		rs, err := runCell(solo, num, tableSize, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10d %10.2f %12.2f\n", num, rc.TPS, rs.TPS)
	}
	fmt.Fprintln(w)
	return nil
}

// ablatePriority inverts the kernel's forwarding-over-BGP priority on the
// Pentium III under 300 Mbps cross-traffic: BGP throughput recovers, but
// the data plane collapses — the flip side of the paper's Section V.B.
func ablatePriority(w io.Writer, tableSize int) error {
	fmt.Fprintln(w, "Ablation 4: control-plane priority inversion (PentiumIII, Scenario 8, 300 Mbps)")
	kern := platform.PentiumIII()
	ctrl := platform.PentiumIII()
	ctrl.ControlPriority = true
	rk, err := runCell(kern, 8, tableSize, 300)
	if err != nil {
		return err
	}
	rc, err := runCell(ctrl, 8, tableSize, 300)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  forwarding priority (real kernels): tps=%8.1f  fwd=%6.1f/%.0f Mbps\n",
		rk.TPS, rk.Measured.ForwardedMbps, rk.Measured.OfferedMbps)
	fmt.Fprintf(w, "  BGP priority (ablation):            tps=%8.1f  fwd=%6.1f/%.0f Mbps\n",
		rc.TPS, rc.Measured.ForwardedMbps, rc.Measured.OfferedMbps)
	fmt.Fprintln(w)
	return nil
}
