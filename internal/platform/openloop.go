package platform

import "fmt"

// OpenLoopSpec describes an open-loop update storm: UPDATE messages
// arriving at a constant rate for a fixed window, as during the
// network-wide events (worm outbreaks, route flaps) the paper cites as
// the reason peak BGP load matters. Unlike the closed benchmark phases,
// arrivals do not wait for the router: backlog builds if the router is
// too slow, exactly as a real socket buffer and peer would behave.
type OpenLoopSpec struct {
	Kind           BatchKind
	PrefixesPerMsg int
	MsgsPerSec     float64
	// Duration is the arrival window in seconds.
	Duration float64
	// HoldTime is the session hold time used for liveness analysis
	// (default 90s). When the router's processing lags its input stream
	// by more than the hold time it can no longer honor the protocol's
	// liveness expectations — keepalives and withdrawals queue behind a
	// backlog older than the session itself, and the peer declares the
	// session dead: the paper's "trigger additional events".
	HoldTime float64
	// DrainGrace bounds how long after the arrival window the router may
	// take to drain its backlog and still count as "sustained" (default:
	// Duration, i.e. 2x the window in total).
	DrainGrace float64
}

// OpenLoopResult reports how a system weathered an update storm.
type OpenLoopResult struct {
	System string
	// Offered and Processed message totals; they are equal unless the run
	// was aborted by the runaway guard.
	OfferedMsgs  int
	ProcessedTPS float64 // prefixes/second over the whole run
	DrainSeconds float64 // time from end of arrivals until idle
	Sustained    bool    // drained within the grace window
	MaxLag       float64 // worst arrival-to-completion delay of any message (s)
	MaxBacklog   int     // peak bgp input-queue length, messages
	// KeepaliveMissed: the worst processing lag exceeded the hold time, so
	// a real peer would have torn the session down mid-storm.
	KeepaliveMissed bool
}

// RunOpenLoop subjects the system to an update storm and reports
// sustainability and keepalive safety. The simulator must be fresh.
func (s *Sim) RunOpenLoop(spec OpenLoopSpec, cross CrossTraffic) (OpenLoopResult, error) {
	if spec.MsgsPerSec <= 0 || spec.Duration <= 0 {
		return OpenLoopResult{}, fmt.Errorf("platform: open loop needs positive rate and duration")
	}
	if spec.PrefixesPerMsg <= 0 {
		spec.PrefixesPerMsg = 1
	}
	if spec.HoldTime <= 0 {
		spec.HoldTime = 90
	}
	if spec.DrainGrace <= 0 {
		spec.DrainGrace = spec.Duration
	}
	res := OpenLoopResult{System: s.sys.Name}
	totalMsgs := int(spec.MsgsPerSec * spec.Duration)
	res.OfferedMsgs = totalMsgs

	interval := 1.0 / spec.MsgsPerSec
	nextArrival := 0.0
	injected := 0
	maxSim := spec.Duration + spec.DrainGrace

	c := &s.sys.Costs
	for {
		// Inject every message whose arrival time has passed.
		for injected < totalMsgs && nextArrival <= s.now {
			b := &batch{kind: spec.Kind, prefixes: spec.PrefixesPerMsg, st: stBGP, arrival: nextArrival, track: true}
			if c.PerMsgPacingNs > 0 {
				if s.pacingFree < nextArrival {
					s.pacingFree = nextArrival
				}
				b.blocked = s.pacingFree
				s.pacingFree += c.PerMsgPacingNs * 1e-9
			}
			b.rem = stageCycles(c, b)
			s.advanceZeroStages(b)
			if b.st != stDone {
				s.queues[b.st.proc()] = append(s.queues[b.st.proc()], b)
			}
			if c.RtrmgrFrac > 0 {
				if total := totalCycles(c, spec.Kind, spec.PrefixesPerMsg); total > 0 {
					rb := &batch{kind: spec.Kind, prefixes: spec.PrefixesPerMsg, st: stDone}
					rb.rem = total * c.RtrmgrFrac
					s.queues[ProcRtrmgr] = append(s.queues[ProcRtrmgr], rb)
				}
			}
			injected++
			nextArrival += interval
		}
		if bl := len(s.queues[ProcBGP]); bl > res.MaxBacklog {
			res.MaxBacklog = bl
		}
		if injected >= totalMsgs && s.idle() {
			break
		}
		if s.now > maxSim {
			// Did not drain in time: unsustainable. Record the failure and
			// stop integrating.
			res.Sustained = false
			res.MaxLag = s.maxLag
			if age := oldestPendingAge(s); age > res.MaxLag {
				res.MaxLag = age
			}
			res.KeepaliveMissed = res.MaxLag > spec.HoldTime
			if s.now > 0 {
				res.ProcessedTPS = float64(processedPrefixes(s, spec, injected)) / s.now
			}
			return res, nil
		}
		s.step(cross)
	}
	res.Sustained = true
	res.DrainSeconds = s.now - spec.Duration
	if res.DrainSeconds < 0 {
		res.DrainSeconds = 0
	}
	res.MaxLag = s.maxLag
	res.KeepaliveMissed = res.MaxLag > spec.HoldTime
	if s.now > 0 {
		res.ProcessedTPS = float64(totalMsgs*spec.PrefixesPerMsg) / s.now
	}
	return res, nil
}

// oldestPendingAge returns the age of the oldest tracked batch still in
// any queue.
func oldestPendingAge(s *Sim) float64 {
	max := 0.0
	for p := Proc(0); p < numProcs; p++ {
		for _, b := range s.queues[p] {
			if b.track {
				if age := s.now - b.arrival; age > max {
					max = age
				}
			}
		}
	}
	return max
}

// processedPrefixes estimates completed prefix work when a run is cut off.
func processedPrefixes(s *Sim, spec OpenLoopSpec, injected int) int {
	pending := 0
	for p := Proc(0); p < numProcs; p++ {
		if p == ProcRtrmgr {
			continue
		}
		for _, b := range s.queues[p] {
			_ = b
			pending++
		}
	}
	done := injected - pending
	if done < 0 {
		done = 0
	}
	return done * spec.PrefixesPerMsg
}
