package platform

import (
	"math"
	"testing"
)

// toy returns a small single-core system with simple costs for exact
// hand-checkable results.
func toy() SystemConfig {
	return SystemConfig{
		Name:           "toy",
		Cores:          1,
		ThreadsPerCore: 1,
		ClockHz:        1e6, // 1M cycles/s
		SharedDataPath: true,
		ForwardCapMbps: 100,
		CrossPktBytes:  1000,
		Costs: CostModel{
			PerMsgBGP:       100,
			PerPrefixBGP:    10,
			PerPrefixPolicy: 5,
			PerPrefixRIB:    20,
			PerFIBChange:    50,
			PerFIBBatch:     200,
			PerCrossPktIntr: 40,
			PerCrossPktFwd:  40,
		},
	}
}

func runToy(t *testing.T, sys SystemConfig, phases []Phase, cross CrossTraffic) Result {
	t.Helper()
	res, err := NewSim(sys).RunPhases(phases, cross, 3600)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestUniCoreTotalTimeEqualsTotalCycles(t *testing.T) {
	// On one core with no cross-traffic, the phase duration must equal the
	// total cycle count divided by the clock (work conservation).
	sys := toy()
	ph := Phase{Name: "p", Kind: KindAnnounce, Messages: 100, PrefixesPerMsg: 10}
	res := runToy(t, sys, []Phase{ph}, CrossTraffic{})
	wantCycles := 100 * (100 + 10*(10+5+20) + 10*50 + 200) // per msg: overhead + prefixes + fib
	wantSec := float64(wantCycles) / sys.ClockHz
	got := res.Phases[0].Duration
	if math.Abs(got-wantSec)/wantSec > 0.02 {
		t.Fatalf("duration = %.4fs, want %.4fs (±2%%)", got, wantSec)
	}
	if res.Phases[0].Prefixes != 1000 {
		t.Fatalf("prefixes = %d", res.Phases[0].Prefixes)
	}
	if res.Phases[0].TPS <= 0 {
		t.Fatal("TPS not computed")
	}
}

func TestDeterminism(t *testing.T) {
	for _, sys := range Systems() {
		phases := []Phase{
			{Name: "a", Kind: KindAnnounce, Messages: 40, PrefixesPerMsg: 500},
			{Name: "b", Kind: KindReplace, Messages: 40, PrefixesPerMsg: 500},
		}
		r1, err := NewSim(sys).RunPhases(phases, CrossTraffic{Mbps: 200}, 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := NewSim(sys).RunPhases(phases, CrossTraffic{Mbps: 200}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1.Phases {
			if r1.Phases[i].Duration != r2.Phases[i].Duration {
				t.Fatalf("%s: phase %d durations differ: %v vs %v",
					sys.Name, i, r1.Phases[i].Duration, r2.Phases[i].Duration)
			}
			if r1.Phases[i].ForwardedMbps != r2.Phases[i].ForwardedMbps {
				t.Fatalf("%s: phase %d forwarding differs", sys.Name, i)
			}
		}
	}
}

func TestLargePacketsFasterOnUniCore(t *testing.T) {
	sys := toy()
	small := []Phase{{Name: "s", Kind: KindAnnounce, Messages: 5000, PrefixesPerMsg: 1}}
	large := []Phase{{Name: "l", Kind: KindAnnounce, Messages: 10, PrefixesPerMsg: 500}}
	rs := runToy(t, sys, small, CrossTraffic{})
	rl := runToy(t, sys, large, CrossTraffic{})
	if rl.Phases[0].TPS <= rs.Phases[0].TPS {
		t.Fatalf("large packets (%.0f tps) should beat small (%.0f tps)",
			rl.Phases[0].TPS, rs.Phases[0].TPS)
	}
}

func TestCrossTrafficSlowsSharedPath(t *testing.T) {
	sys := toy()
	ph := []Phase{{Name: "p", Kind: KindAnnounce, Messages: 500, PrefixesPerMsg: 10}}
	r0 := runToy(t, sys, ph, CrossTraffic{})
	r50 := runToy(t, sys, ph, CrossTraffic{Mbps: 50})
	r100 := runToy(t, sys, ph, CrossTraffic{Mbps: 100})
	if !(r0.Phases[0].TPS > r50.Phases[0].TPS && r50.Phases[0].TPS > r100.Phases[0].TPS) {
		t.Fatalf("tps not monotonically decreasing with cross-traffic: %.0f, %.0f, %.0f",
			r0.Phases[0].TPS, r50.Phases[0].TPS, r100.Phases[0].TPS)
	}
}

func TestCrossTrafficIgnoredOnDedicatedDataPath(t *testing.T) {
	sys := toy()
	sys.SharedDataPath = false
	sys.ForwardCapMbps = 1000
	ph := []Phase{{Name: "p", Kind: KindAnnounce, Messages: 500, PrefixesPerMsg: 10}}
	r0 := runToy(t, sys, ph, CrossTraffic{})
	r1k := runToy(t, sys, ph, CrossTraffic{Mbps: 1000})
	if math.Abs(r0.Phases[0].TPS-r1k.Phases[0].TPS)/r0.Phases[0].TPS > 0.01 {
		t.Fatalf("dedicated data path must isolate control plane: %.0f vs %.0f",
			r0.Phases[0].TPS, r1k.Phases[0].TPS)
	}
	// And forwarding achieves the full offered rate.
	if got := r1k.Phases[0].ForwardedMbps; math.Abs(got-1000) > 1 {
		t.Fatalf("forwarded = %.1f Mbps, want 1000", got)
	}
}

func TestForwardingCapClampsOffered(t *testing.T) {
	sys := toy() // cap 100 Mbps
	ph := []Phase{{Name: "p", Kind: KindAnnounce, Messages: 100, PrefixesPerMsg: 10}}
	r := runToy(t, sys, ph, CrossTraffic{Mbps: 500})
	if r.Phases[0].OfferedMbps != 100 {
		t.Fatalf("offered = %.1f, want clamped 100", r.Phases[0].OfferedMbps)
	}
}

func TestMultiCorePipelineSpeedup(t *testing.T) {
	// The same workload on 1 core vs 4 cores: the pipeline must speed up,
	// but by less than 4x (single stage can't exceed one core).
	uni := toy()
	quad := toy()
	quad.Cores = 4
	ph := []Phase{{Name: "p", Kind: KindAnnounce, Messages: 2000, PrefixesPerMsg: 10}}
	ru := runToy(t, uni, ph, CrossTraffic{})
	rq := runToy(t, quad, ph, CrossTraffic{})
	speedup := rq.Phases[0].TPS / ru.Phases[0].TPS
	if speedup < 1.3 || speedup > 4 {
		t.Fatalf("4-core speedup = %.2f, want in (1.3, 4)", speedup)
	}
}

func TestPacingBoundsThroughput(t *testing.T) {
	sys := toy()
	sys.Costs.PerMsgPacingNs = 100e6 // 100ms per message -> 10 msgs/s max
	ph := []Phase{{Name: "p", Kind: KindAnnounce, Messages: 50, PrefixesPerMsg: 1}}
	r := runToy(t, sys, ph, CrossTraffic{})
	if tps := r.Phases[0].TPS; tps > 10.5 || tps < 9 {
		t.Fatalf("paced tps = %.2f, want ~10", tps)
	}
	// Pacing is wall time, not CPU: cross-traffic must not change it.
	r2 := runToy(t, sys, ph, CrossTraffic{Mbps: 100})
	if math.Abs(r2.Phases[0].TPS-r.Phases[0].TPS) > 0.5 {
		t.Fatalf("pacing should be immune to cross-traffic: %.2f vs %.2f",
			r2.Phases[0].TPS, r.Phases[0].TPS)
	}
}

func TestFIBContentionCausesForwardingLoss(t *testing.T) {
	// With FIBLockFwdPenalty, heavy fea activity must reduce the achieved
	// forwarding rate below the offered rate (Figure 6c).
	sys := toy()
	sys.Costs.FIBLockFwdPenalty = 2.0
	ph := []Phase{{Name: "p", Kind: KindAnnounce, Messages: 200, PrefixesPerMsg: 100}}
	r := runToy(t, sys, ph, CrossTraffic{Mbps: 50})
	if r.Phases[0].ForwardedMbps >= r.Phases[0].OfferedMbps-0.5 {
		t.Fatalf("expected forwarding loss: forwarded %.1f vs offered %.1f",
			r.Phases[0].ForwardedMbps, r.Phases[0].OfferedMbps)
	}
	// Without the penalty there is no loss at this load.
	sys.Costs.FIBLockFwdPenalty = 0
	r2 := runToy(t, sys, ph, CrossTraffic{Mbps: 50})
	if r2.Phases[0].ForwardedMbps < r2.Phases[0].OfferedMbps-0.5 {
		t.Fatalf("unexpected loss without penalty: %.1f vs %.1f",
			r2.Phases[0].ForwardedMbps, r2.Phases[0].OfferedMbps)
	}
}

func TestTracesRecorded(t *testing.T) {
	sys := toy()
	ph := []Phase{{Name: "p", Kind: KindAnnounce, Messages: 2000, PrefixesPerMsg: 10}}
	r := runToy(t, sys, ph, CrossTraffic{Mbps: 50})
	names := map[string]bool{}
	for _, n := range r.Traces.Names() {
		names[n] = true
	}
	for _, want := range []string{"cpu:bgp", "cpu:rib", "cpu:fea", "cpu:interrupts", "fwd_mbps"} {
		if !names[want] {
			t.Errorf("missing trace series %q (have %v)", want, r.Traces.Names())
		}
	}
	// CPU traces on one core must not exceed 100% per bucket by much.
	for _, n := range r.Traces.Names() {
		if len(n) > 4 && n[:4] == "cpu:" && n != "cpu:interrupts" {
			if m := r.Traces.Get(n).Max(); m > 101 {
				t.Errorf("series %s exceeds 100%%: %.1f", n, m)
			}
		}
	}
}

func TestRtrmgrOverhead(t *testing.T) {
	with := toy()
	with.Costs.RtrmgrFrac = 0.5
	without := toy()
	ph := []Phase{{Name: "p", Kind: KindAnnounce, Messages: 500, PrefixesPerMsg: 10}}
	rw := runToy(t, with, ph, CrossTraffic{})
	ro := runToy(t, without, ph, CrossTraffic{})
	ratio := rw.Phases[0].Duration / ro.Phases[0].Duration
	if ratio < 1.4 || ratio > 1.6 {
		t.Fatalf("rtrmgr 50%% overhead changed duration by %.2fx, want ~1.5x", ratio)
	}
	if rw.TotalBusyCycles[ProcRtrmgr] == 0 {
		t.Fatal("rtrmgr did no work")
	}
}

func TestPhaseBoundaries(t *testing.T) {
	sys := toy()
	phases := []Phase{
		{Name: "one", Kind: KindAnnounce, Messages: 100, PrefixesPerMsg: 10},
		{Name: "two", Kind: KindWithdraw, Messages: 100, PrefixesPerMsg: 10},
	}
	r := runToy(t, sys, phases, CrossTraffic{})
	if len(r.Phases) != 2 {
		t.Fatalf("phases = %d", len(r.Phases))
	}
	if r.Phases[1].Start < r.Phases[0].Duration {
		t.Fatalf("phase 2 starts at %.3f before phase 1 ends at %.3f",
			r.Phases[1].Start, r.Phases[0].Duration)
	}
	if r.Phases[0].Name != "one" || r.Phases[1].Name != "two" {
		t.Fatal("phase names lost")
	}
}

func TestRunawayGuard(t *testing.T) {
	sys := toy()
	sys.Costs.PerMsgPacingNs = 3600e9 // absurd pacing: 1 hour per message
	_, err := NewSim(sys).RunPhases(
		[]Phase{{Name: "p", Kind: KindAnnounce, Messages: 10, PrefixesPerMsg: 1}},
		CrossTraffic{}, 5 /* seconds */)
	if err == nil {
		t.Fatal("expected runaway guard error")
	}
}

func TestSystemByName(t *testing.T) {
	for _, name := range []string{"PentiumIII", "Xeon", "IXP2400", "Cisco"} {
		if _, ok := SystemByName(name); !ok {
			t.Errorf("system %q not found", name)
		}
	}
	if _, ok := SystemByName("Cray"); ok {
		t.Error("unknown system resolved")
	}
}

func TestProcNames(t *testing.T) {
	want := map[Proc]string{ProcBGP: "bgp", ProcPolicy: "policy", ProcRIB: "rib", ProcFEA: "fea", ProcRtrmgr: "rtrmgr"}
	for p, n := range want {
		if p.String() != n {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), n)
		}
	}
}

func TestStageCyclesReplacePerPrefixCommit(t *testing.T) {
	c := &CostModel{PerFIBChange: 100, PerFIBBatch: 1000}
	ann := &batch{kind: KindAnnounce, prefixes: 500, st: stFEA}
	rep := &batch{kind: KindReplace, prefixes: 500, st: stFEA}
	a := stageCycles(c, ann)
	r := stageCycles(c, rep)
	if a != 500*100+1000 {
		t.Errorf("announce fea cycles = %v", a)
	}
	if r != 500*(100+1000) {
		t.Errorf("replace fea cycles = %v (per-prefix commits expected)", r)
	}
}

// TestQuantumInsensitivity: halving the scheduling quantum must not move
// phase durations by more than a few percent — the fluid model's results
// are about work conservation, not step size.
func TestQuantumInsensitivity(t *testing.T) {
	phases := []Phase{
		{Name: "p1", Kind: KindAnnounce, Messages: 40, PrefixesPerMsg: 500},
		{Name: "p3", Kind: KindReplace, Messages: 40, PrefixesPerMsg: 500},
	}
	for _, sys := range []SystemConfig{PentiumIII(), Xeon()} {
		a := NewSim(sys)
		a.SetQuantum(1e-3)
		ra, err := a.RunPhases(phases, CrossTraffic{Mbps: 100}, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := NewSim(sys)
		b.SetQuantum(0.5e-3)
		rb, err := b.RunPhases(phases, CrossTraffic{Mbps: 100}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ra.Phases {
			da, db := ra.Phases[i].Duration, rb.Phases[i].Duration
			if da == 0 || db == 0 {
				t.Fatalf("%s phase %d: zero duration", sys.Name, i)
			}
			diff := (da - db) / da
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.05 {
				t.Errorf("%s phase %d: quantum sensitivity %.1f%% (%.3fs vs %.3fs)",
					sys.Name, i, 100*diff, da, db)
			}
		}
	}
}

// TestTableSizeScalesLinearly: doubling the table roughly doubles phase
// duration (tps is size-invariant), which is what lets the benchmark use
// smaller tables than the paper's 180k.
func TestTableSizeScalesLinearly(t *testing.T) {
	sys := PentiumIII()
	run := func(msgs int) float64 {
		res, err := NewSim(sys).RunPhases([]Phase{
			{Name: "p", Kind: KindAnnounce, Messages: msgs, PrefixesPerMsg: 500},
		}, CrossTraffic{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Phases[0].TPS
	}
	small, large := run(10), run(40)
	diff := (small - large) / large
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Fatalf("tps not size-invariant: %.1f vs %.1f", small, large)
	}
}

// TestControlPriorityAblation: inverting the kernel's priority order gives
// BGP its full throughput back at the cost of the data plane.
func TestControlPriorityAblation(t *testing.T) {
	phases := []Phase{{Name: "p", Kind: KindReplace, Messages: 2000, PrefixesPerMsg: 1}}
	kern := PentiumIII()
	ctrl := PentiumIII()
	ctrl.ControlPriority = true
	cross := CrossTraffic{Mbps: 300}

	rk, err := NewSim(kern).RunPhases(phases, cross, 0)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewSim(ctrl).RunPhases(phases, cross, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Phases[0].TPS <= rk.Phases[0].TPS {
		t.Errorf("control priority should speed BGP: %.1f vs %.1f",
			rc.Phases[0].TPS, rk.Phases[0].TPS)
	}
	if rc.Phases[0].ForwardedMbps >= rk.Phases[0].ForwardedMbps {
		t.Errorf("control priority should hurt forwarding: %.1f vs %.1f Mbps",
			rc.Phases[0].ForwardedMbps, rk.Phases[0].ForwardedMbps)
	}
}
